module bistro

go 1.22
