package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRunTail pages a fake data plane to the head: two non-empty
// pages, then the empty caught-up page, with the bearer token and
// advancing cursor on every request.
func TestRunTail(t *testing.T) {
	var gotFrom []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/feeds/market/BPS" {
			http.NotFound(w, r)
			return
		}
		if auth := r.Header.Get("Authorization"); auth != "Bearer t0k3n" {
			http.Error(w, "bad token", http.StatusUnauthorized)
			return
		}
		from := r.URL.Query().Get("from")
		gotFrom = append(gotFrom, from)
		w.Header().Set("Content-Type", "application/json")
		switch from {
		case "", "1":
			fmt.Fprint(w, `{"feed":"market/BPS","from":1,"head":4,"next":3,"entries":[
				{"seq":1,"name":"a.csv","size":10,"crc":1,"time":"2010-09-25T04:51:00Z"},
				{"seq":2,"name":"b.csv","size":20,"crc":2,"time":"2010-09-25T04:52:00Z","archived":true}]}`)
		case "3":
			fmt.Fprint(w, `{"feed":"market/BPS","from":3,"head":4,"next":5,"entries":[
				{"seq":4,"name":"c.csv","size":30,"crc":3,"time":"2010-09-25T04:53:00Z"}]}`)
		default:
			fmt.Fprintf(w, `{"feed":"market/BPS","from":%s,"head":4,"next":%s,"entries":[]}`, from, from)
		}
	}))
	defer srv.Close()

	var b strings.Builder
	addr := strings.TrimPrefix(srv.URL, "http://")
	next, err := runTail(addr, "t0k3n", "market/BPS", "1", false, time.Millisecond, time.Second, &b)
	if err != nil {
		t.Fatalf("runTail: %v", err)
	}
	if next != 5 {
		t.Fatalf("next cursor = %d, want 5", next)
	}
	if len(gotFrom) != 3 || gotFrom[0] != "1" || gotFrom[1] != "3" || gotFrom[2] != "5" {
		t.Fatalf("cursors requested = %v, want [1 3 5]", gotFrom)
	}
	out := b.String()
	for _, want := range []string{"a.csv", "b.csv", "c.csv", "archived", "staged"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n != 3 {
		t.Fatalf("printed %d lines, want 3:\n%s", n, out)
	}
}

// TestRunTailAuthError surfaces the server's status on a bad token.
func TestRunTailAuthError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="bistro"`)
		http.Error(w, `{"error":"unauthorized"}`, http.StatusUnauthorized)
	}))
	defer srv.Close()
	var b strings.Builder
	addr := strings.TrimPrefix(srv.URL, "http://")
	_, err := runTail(addr, "wrong", "market/BPS", "", false, time.Millisecond, time.Second, &b)
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("err = %v, want 401", err)
	}
}
