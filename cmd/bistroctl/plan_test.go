package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const samplePlanConfig = `
feed EVENTS {
    pattern "events_%Y%m%d%H.csv.gz"
    plan {
        decompress gzip
        parse csv
        validate { columns 3 utf8 }
        extract region 1
        route region {
            "east" EAST
            default OTHER
        }
        enrich {
            table "tables/regions.csv"
            key region
            at delivery
        }
    }
}
feed EAST { }
feed OTHER { }
feed PLAIN { pattern "plain_%i.txt" }
`

func writePlanConfig(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bistro.conf")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPlanDryRun(t *testing.T) {
	path := writePlanConfig(t, samplePlanConfig)
	var b strings.Builder
	if err := runPlan(path, nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"feed EVENTS:",
		"decompress gzip",
		"parse csv records",
		"validate (columns == 3, valid utf8) else reject to quarantine",
		"extract region from column 1",
		`enrich on region from table "tables/regions.csv" (at delivery)`,
		`route on region: "east" -> EAST, default -> OTHER`,
		"derived feeds: EAST, OTHER",
		"enrich deferred to delivery",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "PLAIN") {
		t.Errorf("plan-less feed printed:\n%s", out)
	}
}

func TestRunPlanFeedFilter(t *testing.T) {
	path := writePlanConfig(t, samplePlanConfig)
	var b strings.Builder
	if err := runPlan(path, []string{"EVENTS"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "feed EVENTS:") {
		t.Errorf("filtered output missing EVENTS:\n%s", b.String())
	}
	if err := runPlan(path, []string{"EAST"}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "no plan declared for EAST") {
		t.Errorf("expected no-plan error for EAST, got %v", err)
	}
}

func TestRunPlanRejectsBrokenConfig(t *testing.T) {
	path := writePlanConfig(t, `
feed A { pattern "a" plan { split B } }
feed B { plan { split A } }
`)
	if err := runPlan(path, nil, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestRunPlanNoPlans(t *testing.T) {
	path := writePlanConfig(t, `feed PLAIN { pattern "plain_%i.txt" }`)
	var b strings.Builder
	if err := runPlan(path, nil, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no plans declared") {
		t.Errorf("output = %q", b.String())
	}
}
