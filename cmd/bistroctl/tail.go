package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// tailPage mirrors the HTTP data plane's GET /feeds/<name> response
// (internal/httpfeed.logPage) with just the fields the renderer uses.
type tailPage struct {
	Feed    string `json:"feed"`
	From    uint64 `json:"from"`
	Head    uint64 `json:"head"`
	Next    uint64 `json:"next"`
	Entries []struct {
		Seq      uint64    `json:"seq"`
		Name     string    `json:"name"`
		Size     int64     `json:"size"`
		Checksum uint32    `json:"crc"`
		Time     time.Time `json:"time"`
		Archived bool      `json:"archived"`
	} `json:"entries"`
}

// runTail consumes a feed's log over the HTTP pull data plane: it
// pages from the given cursor to the head, printing one line per
// entry, and in follow mode keeps polling the tail like `tail -f`.
// It returns the next cursor so scripted callers can resume.
func runTail(httpAddr, token, feed, from string, follow bool, interval, timeout time.Duration, w io.Writer) (uint64, error) {
	client := &http.Client{Timeout: timeout}
	cursor := from
	etag := ""
	for {
		u := fmt.Sprintf("http://%s/feeds/%s?limit=512", httpAddr, feed)
		if cursor != "" {
			u += "&from=" + url.QueryEscape(cursor)
		}
		req, err := http.NewRequest(http.MethodGet, u, nil)
		if err != nil {
			return 0, err
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusNotModified {
			resp.Body.Close()
			time.Sleep(interval)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return 0, fmt.Errorf("%s: %s: %s", u, resp.Status, string(body))
		}
		var page tailPage
		err = json.NewDecoder(resp.Body).Decode(&page)
		etag = resp.Header.Get("ETag")
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("decode page: %w", err)
		}
		for _, e := range page.Entries {
			where := "staged"
			if e.Archived {
				where = "archived"
			}
			fmt.Fprintf(w, "%8d  %s  %10d  crc=%08x  %s  %s\n",
				e.Seq, e.Time.Format(time.RFC3339), e.Size, e.Checksum, where, e.Name)
		}
		cursor = strconv.FormatUint(page.Next, 10)
		if len(page.Entries) > 0 {
			// More history may be waiting; fetch the next page at once.
			continue
		}
		if !follow {
			return page.Next, nil
		}
		time.Sleep(interval)
	}
}
