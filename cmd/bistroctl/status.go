package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// statusDoc mirrors the /statusz JSON document (internal/server.Status)
// with just the fields the renderer uses, so bistroctl does not link
// the whole server package.
type statusDoc struct {
	Time time.Time `json:"time"`
	Node struct {
		Name          string   `json:"name"`
		Role          string   `json:"role"`
		Ready         bool     `json:"ready"`
		PromotedFrom  []string `json:"promoted_from"`
		ReplicationOK *bool    `json:"replication_ok"`
		ReplicationHW uint64   `json:"replication_hw"`
		Epoch         uint64   `json:"epoch"`
		Standby       string   `json:"standby"`
	} `json:"node"`
	Feeds map[string]struct {
		Files     int64
		Bytes     int64
		Delivered int64
		Failures  int64
	} `json:"feeds"`
	Unmatched   int64 `json:"unmatched"`
	Subscribers map[string]struct {
		Delivered int64
		Bytes     int64
		Failures  int64
		Offline   bool
		Circuit   string
		Partition int
	} `json:"subscribers"`
	Receipts struct {
		Files       int
		Expired     int
		Quarantined int
		Feeds       int
		Commits     int
		WALBytes    int64
	} `json:"receipts"`
	Partitions []struct {
		Name     string `json:"name"`
		Realtime int    `json:"realtime"`
		Backfill int    `json:"backfill"`
		Delayed  int    `json:"delayed"`
	} `json:"partitions"`
	Inflight int `json:"inflight"`
	Alarms   []struct {
		Feed    string
		Message string
		At      time.Time
	} `json:"alarms"`
}

// runStatus fetches /statusz from the admin endpoint and renders it.
func runStatus(addr string, timeout time.Duration, w io.Writer) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/statusz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, string(body))
	}
	var doc statusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decode /statusz: %w", err)
	}
	renderStatus(&doc, w)
	return nil
}

// renderStatus writes the human-readable status report.
func renderStatus(doc *statusDoc, w io.Writer) {
	fmt.Fprintf(w, "bistro status at %s\n", doc.Time.Format(time.RFC3339))
	n := doc.Node
	line := fmt.Sprintf("node: role=%s ready=%t", n.Role, n.Ready)
	if n.Name != "" {
		line = fmt.Sprintf("node: %s role=%s ready=%t", n.Name, n.Role, n.Ready)
	}
	if n.Epoch > 0 {
		line += fmt.Sprintf(" epoch=%d", n.Epoch)
	}
	if len(n.PromotedFrom) > 0 {
		line += fmt.Sprintf(" promoted_from=%v", n.PromotedFrom)
	}
	if n.ReplicationOK != nil {
		state := "DOWN"
		if *n.ReplicationOK {
			state = "ok"
		}
		line += fmt.Sprintf(" replication=%s hw=%d", state, n.ReplicationHW)
		if n.Standby != "" {
			line += fmt.Sprintf(" standby=%s", n.Standby)
		}
	}
	fmt.Fprintln(w, line)
	fmt.Fprintln(w, "== feeds ==")
	feedNames := make([]string, 0, len(doc.Feeds))
	for name := range doc.Feeds {
		feedNames = append(feedNames, name)
	}
	sort.Strings(feedNames)
	for _, name := range feedNames {
		f := doc.Feeds[name]
		fmt.Fprintf(w, "%s: files=%d bytes=%d delivered=%d failures=%d\n",
			name, f.Files, f.Bytes, f.Delivered, f.Failures)
	}
	fmt.Fprintf(w, "unmatched: %d\n", doc.Unmatched)
	fmt.Fprintln(w, "== subscribers ==")
	subNames := make([]string, 0, len(doc.Subscribers))
	for name := range doc.Subscribers {
		subNames = append(subNames, name)
	}
	sort.Strings(subNames)
	for _, name := range subNames {
		s := doc.Subscribers[name]
		state := "online"
		if s.Offline {
			state = "OFFLINE"
		}
		fmt.Fprintf(w, "%s: delivered=%d bytes=%d failures=%d partition=%d circuit=%s %s\n",
			name, s.Delivered, s.Bytes, s.Failures, s.Partition, s.Circuit, state)
	}
	fmt.Fprintln(w, "== scheduler ==")
	for _, p := range doc.Partitions {
		fmt.Fprintf(w, "%s: realtime=%d backfill=%d delayed=%d\n",
			p.Name, p.Realtime, p.Backfill, p.Delayed)
	}
	fmt.Fprintf(w, "inflight: %d\n", doc.Inflight)
	r := doc.Receipts
	fmt.Fprintf(w, "== receipts ==\nfiles=%d expired=%d quarantined=%d feeds=%d commits=%d wal_bytes=%d\n",
		r.Files, r.Expired, r.Quarantined, r.Feeds, r.Commits, r.WALBytes)
	if len(doc.Alarms) > 0 {
		fmt.Fprintln(w, "== alarms ==")
		for _, a := range doc.Alarms {
			fmt.Fprintf(w, "%s %s: %s\n", a.At.Format(time.RFC3339), a.Feed, a.Message)
		}
	}
}
