package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// replayDoc picks the replay session array out of the /statusz
// document (internal/server.Status → internal/replay.SessionStatus).
type replayDoc struct {
	Replay []struct {
		Subscriber string    `json:"subscriber"`
		Feeds      []string  `json:"feeds"`
		From       time.Time `json:"from"`
		Started    time.Time `json:"started"`
		Total      int       `json:"total"`
		Streamed   int       `json:"streamed"`
		Skipped    int       `json:"skipped"`
		Delivered  int       `json:"delivered"`
		Watermark  time.Time `json:"watermark"`
		Done       bool      `json:"done"`
	} `json:"replay"`
}

// runReplay fetches /statusz and renders the replay sessions: one line
// per subscriber with watermark and catch-up progress.
func runReplay(addr string, timeout time.Duration, w io.Writer) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/statusz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, string(body))
	}
	var doc replayDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decode /statusz: %w", err)
	}
	renderReplay(&doc, w)
	return nil
}

// renderReplay writes the human-readable replay session report.
func renderReplay(doc *replayDoc, w io.Writer) {
	if len(doc.Replay) == 0 {
		fmt.Fprintln(w, "no replay sessions")
		return
	}
	for _, s := range doc.Replay {
		state := "replaying"
		if s.Done {
			state = "live"
		}
		// Settled = receipted deliveries + files the live path owns.
		settled := s.Delivered + s.Skipped
		fmt.Fprintf(w, "%s: %s from=%s started=%s progress=%d/%d streamed=%d skipped=%d",
			s.Subscriber, state,
			s.From.Format(time.RFC3339), s.Started.Format(time.RFC3339),
			settled, s.Total, s.Streamed, s.Skipped)
		if !s.Watermark.IsZero() {
			fmt.Fprintf(w, " watermark=%s", s.Watermark.Format(time.RFC3339))
		}
		fmt.Fprintf(w, " feeds=%v\n", s.Feeds)
	}
}
