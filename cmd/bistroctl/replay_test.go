package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sampleReplayJSON is a /statusz document with two replay sessions:
// one mid-catch-up, one already handed off to live delivery.
const sampleReplayJSON = `{
  "time": "2010-09-25T04:51:00Z",
  "replay": [
    {
      "subscriber": "wh",
      "feeds": ["SNMP/CPU"],
      "from": "2010-09-22T00:00:00Z",
      "started": "2010-09-25T04:50:00Z",
      "total": 144,
      "streamed": 100,
      "skipped": 10,
      "delivered": 80,
      "watermark": "2010-09-24T10:00:00Z",
      "done": false
    },
    {
      "subscriber": "analyst",
      "feeds": ["SNMP/BPS", "SNMP/CPU"],
      "from": "2010-09-24T00:00:00Z",
      "started": "2010-09-25T04:40:00Z",
      "total": 48,
      "streamed": 40,
      "skipped": 8,
      "delivered": 40,
      "watermark": "2010-09-25T03:00:00Z",
      "done": true
    }
  ]
}`

func TestRenderReplay(t *testing.T) {
	var doc replayDoc
	if err := json.Unmarshal([]byte(sampleReplayJSON), &doc); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	renderReplay(&doc, &b)
	out := b.String()
	for _, want := range []string{
		"wh: replaying from=2010-09-22T00:00:00Z",
		"progress=90/144 streamed=100 skipped=10",
		"watermark=2010-09-24T10:00:00Z",
		"analyst: live",
		"progress=48/48",
		"feeds=[SNMP/BPS SNMP/CPU]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered replay missing %q:\n%s", want, out)
		}
	}
}

func TestRenderReplayEmpty(t *testing.T) {
	var b strings.Builder
	renderReplay(&replayDoc{}, &b)
	if !strings.Contains(b.String(), "no replay sessions") {
		t.Fatalf("output = %q", b.String())
	}
}

func TestRunReplayAgainstHTTP(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/statusz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(sampleReplayJSON))
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	var b strings.Builder
	if err := runReplay(addr, 2*time.Second, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wh: replaying") {
		t.Fatalf("unexpected output:\n%s", b.String())
	}
}

func TestRunReplayErrorPaths(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	var b strings.Builder
	if err := runReplay(addr, 2*time.Second, &b); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}
