package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"bistro/internal/config"
	"bistro/internal/plan"
)

// runPlan is the plan dry-run: parse a config file, compile every
// plan {} block exactly as the server would at startup (so cycle
// detection, operator wiring, and unknown-feed checks all fire), and
// print each planned feed's compiled operator chain without touching
// a server. With feed arguments, only those feeds print.
func runPlan(path string, feeds []string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cfg, err := config.Parse(string(data))
	if err != nil {
		return err
	}
	set, err := plan.Compile(cfg, plan.Options{})
	if err != nil {
		return err
	}
	want := make(map[string]bool, len(feeds))
	for _, f := range feeds {
		want[f] = true
	}
	printed := 0
	for _, f := range cfg.Feeds {
		p := set.For(f.Path)
		if p == nil || (len(want) > 0 && !want[f.Path]) {
			continue
		}
		if printed > 0 {
			fmt.Fprintln(w)
		}
		printed++
		fmt.Fprintf(w, "feed %s:\n", f.Path)
		// Print the declared chain from the config: the compiled program
		// hoists the at-delivery enrich out of the ingest op list, and a
		// dry run should show the operator order as written.
		for i, op := range f.Plan.Ops {
			fmt.Fprintf(w, "  %2d. %s\n", i+1, describeOp(op))
		}
		if ts := p.Targets(); len(ts) > 0 {
			fmt.Fprintf(w, "   -> derived feeds: %s\n", strings.Join(ts, ", "))
		}
		if p.DeliveryTransform() != nil {
			fmt.Fprintf(w, "   -> enrich deferred to delivery: the join runs once per push, staged files stay lean\n")
		}
	}
	if printed == 0 {
		if len(want) > 0 {
			keys := make([]string, 0, len(want))
			for k := range want {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return fmt.Errorf("no plan declared for %s", strings.Join(keys, ", "))
		}
		fmt.Fprintln(w, "no plans declared")
	}
	return nil
}

// describeOp renders one compiled operator as a single line.
func describeOp(op config.PlanOp) string {
	switch op.Kind {
	case config.OpDecompress:
		return "decompress " + op.Codec
	case config.OpSplit:
		return "split whole stream -> " + op.Target
	case config.OpParse:
		return "parse " + op.Framing + " records"
	case config.OpValidate:
		rules := make([]string, len(op.Rules))
		for i, r := range op.Rules {
			switch r.Kind {
			case "columns":
				rules[i] = fmt.Sprintf("columns == %d", r.Count)
			case "utf8":
				rules[i] = "valid utf8"
			default: // require, numeric
				rules[i] = r.Field + " " + r.Kind
			}
		}
		return "validate (" + strings.Join(rules, ", ") + ") else reject to quarantine"
	case config.OpExtract:
		src := fmt.Sprintf("column %d", op.Column)
		if op.Key != "" {
			src = fmt.Sprintf("key %q", op.Key)
		}
		return fmt.Sprintf("extract %s from %s", op.Field, src)
	case config.OpEnrich:
		place := "at ingest"
		if op.AtDelivery {
			place = "at delivery"
		}
		return fmt.Sprintf("enrich on %s from table %q (%s)", op.Field, op.Table, place)
	case config.OpRoute:
		var cases []string
		for _, c := range op.Cases {
			cases = append(cases, fmt.Sprintf("%q -> %s", c.Value, c.Target))
		}
		def := "default stays primary"
		if op.Target != "" {
			def = "default -> " + op.Target
		}
		return fmt.Sprintf("route on %s: %s, %s", op.Field, strings.Join(cases, ", "), def)
	}
	return op.Kind.String()
}
