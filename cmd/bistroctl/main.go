// Command bistroctl is the source-side client for a Bistro server: it
// uploads files into the landing zone, announces files deposited via a
// shared filesystem, marks end-of-batch punctuation, and renders the
// server's live status from the admin endpoint.
//
// Usage:
//
//	bistroctl -server host:port upload file1 [file2 ...]
//	bistroctl -server host:port ready rel/path1 [rel/path2 ...]
//	bistroctl -server host:port eob [feed]
//	bistroctl -server host:port watch dir       # agent mode: poll dir, upload new files
//	bistroctl -admin host:port status           # render /statusz from the admin endpoint
//	bistroctl -admin host:port replay           # list replay sessions and their watermarks
//	bistroctl -http host:port -token T tail feed  # page a feed's log over the pull data plane
//	bistroctl plan config-file [feed ...]       # dry-run: print compiled plan operator chains
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"bistro/internal/sourceclient"
)

func main() {
	var (
		serverAddr = flag.String("server", "127.0.0.1:9400", "Bistro server address")
		adminAddr  = flag.String("admin", "127.0.0.1:9090", "Bistro admin endpoint address (status)")
		name       = flag.String("name", "bistroctl", "source name")
		timeout    = flag.Duration("timeout", 10*time.Second, "operation timeout")
		interval   = flag.Duration("interval", 2*time.Second, "watch/tail poll interval")
		remove     = flag.Bool("remove", false, "watch: delete local files after upload")
		httpAddr   = flag.String("http", "127.0.0.1:9480", "Bistro HTTP data plane address (tail)")
		token      = flag.String("token", "", "tail: bearer token for the HTTP data plane")
		from       = flag.String("from", "", "tail: starting cursor (sequence number or RFC3339 time)")
		follow     = flag.Bool("follow", false, "tail: keep polling for new entries")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// status and replay talk HTTP to the admin endpoint, not the feed
	// protocol — handle them before dialing the protocol listener.
	if args[0] == "status" {
		if err := runStatus(*adminAddr, *timeout, os.Stdout); err != nil {
			fatal("status: %v", err)
		}
		return
	}
	if args[0] == "replay" {
		if err := runReplay(*adminAddr, *timeout, os.Stdout); err != nil {
			fatal("replay: %v", err)
		}
		return
	}
	// plan is fully offline: it compiles a config the way the server
	// would and prints the operator chains.
	if args[0] == "plan" {
		if len(args) < 2 {
			usage()
		}
		if err := runPlan(args[1], args[2:], os.Stdout); err != nil {
			fatal("plan: %v", err)
		}
		return
	}
	if args[0] == "tail" {
		if len(args) != 2 {
			usage()
		}
		next, err := runTail(*httpAddr, *token, args[1], *from, *follow, *interval, *timeout, os.Stdout)
		if err != nil {
			fatal("tail: %v", err)
		}
		fmt.Fprintf(os.Stderr, "bistroctl: caught up; resume with -from %d\n", next)
		return
	}

	client, err := sourceclient.Dial(*serverAddr, *name, *timeout)
	if err != nil {
		fatal("%v", err)
	}
	defer client.Close()

	switch args[0] {
	case "upload":
		if len(args) < 2 {
			usage()
		}
		for _, path := range args[1:] {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal("read %s: %v", path, err)
			}
			if err := client.Upload(filepath.Base(path), data); err != nil {
				fatal("upload %s: %v", path, err)
			}
			fmt.Printf("uploaded %s (%d bytes)\n", filepath.Base(path), len(data))
		}
	case "ready":
		if len(args) < 2 {
			usage()
		}
		for _, rel := range args[1:] {
			if err := client.FileReady(rel); err != nil {
				fatal("ready %s: %v", rel, err)
			}
			fmt.Printf("announced %s\n", rel)
		}
	case "watch":
		if len(args) != 2 {
			usage()
		}
		stop := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			close(stop)
		}()
		fmt.Fprintf(os.Stderr, "bistroctl: watching %s (every %s)\n", args[1], *interval)
		err := client.WatchDir(args[1], sourceclient.WatchOptions{
			Interval: *interval,
			Stop:     stop,
			Remove:   *remove,
			OnUpload: func(name string, err error) {
				if err != nil {
					fmt.Fprintf(os.Stderr, "bistroctl: upload %s: %v\n", name, err)
					return
				}
				fmt.Printf("uploaded %s\n", name)
			},
		})
		if err != nil {
			fatal("%v", err)
		}
	case "eob":
		feed := ""
		if len(args) > 1 {
			feed = args[1]
		}
		if err := client.EndOfBatch(feed); err != nil {
			fatal("eob: %v", err)
		}
		fmt.Println("end-of-batch sent")
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bistroctl -server host:port {upload files... | ready paths... | eob [feed] | watch dir}")
	fmt.Fprintln(os.Stderr, "       bistroctl -admin host:port {status | replay}")
	fmt.Fprintln(os.Stderr, "       bistroctl -http host:port -token T tail feed [-from cursor] [-follow]")
	fmt.Fprintln(os.Stderr, "       bistroctl plan config-file [feed ...]   # dry-run: print compiled operator chains")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bistroctl: "+format+"\n", args...)
	os.Exit(1)
}
