package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sampleStatusJSON is a /statusz document as the server emits it
// (internal/server.Status marshalled with Go field names).
const sampleStatusJSON = `{
  "time": "2010-09-25T04:51:00Z",
  "feeds": {
    "SNMP/BPS": {"Files": 3, "Bytes": 120, "Delivered": 2, "Failures": 1}
  },
  "unmatched": 4,
  "subscribers": {
    "wh":   {"Delivered": 2, "Bytes": 120, "Failures": 0, "Offline": false, "Circuit": "closed", "Partition": 1},
    "down": {"Delivered": 0, "Bytes": 0, "Failures": 5, "Offline": true, "Circuit": "open", "Partition": 0}
  },
  "receipts": {"Files": 3, "Expired": 0, "Quarantined": 1, "Feeds": 1, "Commits": 5, "WALBytes": 512},
  "partitions": [
    {"name": "interactive", "realtime": 0, "backfill": 0, "delayed": 2}
  ],
  "inflight": 1,
  "alarms": [
    {"Feed": "SNMP/BPS", "Message": "no data for 10m0s", "At": "2010-09-25T04:50:00Z"}
  ]
}`

func TestRenderStatus(t *testing.T) {
	var doc statusDoc
	if err := json.Unmarshal([]byte(sampleStatusJSON), &doc); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	renderStatus(&doc, &b)
	out := b.String()
	for _, want := range []string{
		"SNMP/BPS: files=3 bytes=120 delivered=2 failures=1",
		"unmatched: 4",
		"down: delivered=0 bytes=0 failures=5 partition=0 circuit=open OFFLINE",
		"wh: delivered=2 bytes=120 failures=0 partition=1 circuit=closed online",
		"interactive: realtime=0 backfill=0 delayed=2",
		"inflight: 1",
		"files=3 expired=0 quarantined=1 feeds=1 commits=5 wal_bytes=512",
		"SNMP/BPS: no data for 10m0s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered status missing %q:\n%s", want, out)
		}
	}
}

func TestRunStatusAgainstHTTP(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/statusz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(sampleStatusJSON))
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	var b strings.Builder
	if err := runStatus(addr, 2*time.Second, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wh: delivered=2") {
		t.Fatalf("unexpected output:\n%s", b.String())
	}
}

func TestRunStatusErrorPaths(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	var b strings.Builder
	if err := runStatus(addr, 2*time.Second, &b); err == nil ||
		!strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}
