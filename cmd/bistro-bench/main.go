// Command bistro-bench regenerates the paper-reproduction experiment
// tables E1–E18 (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	bistro-bench            # run everything at full scale
//	bistro-bench -quick     # reduced workloads
//	bistro-bench -e e4,e5   # selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bistro/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced workload sizes")
		only  = flag.String("e", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	runners := experiments.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	opts := experiments.Options{Quick: *quick}
	failed := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		table, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n\n", strings.ToUpper(r.ID), err)
			failed++
			continue
		}
		fmt.Print(table.Format())
		fmt.Printf("(%s in %.1fs)\n\n", strings.ToUpper(r.ID), time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
