// Command bistro-analyze runs Bistro's feed analyzer offline over a
// filename log (SIGMOD'11 §5): it discovers atomic feeds in the
// stream, suggests feed definitions, and — when given an installed
// configuration — reports likely false negatives among unmatched files
// and subfeed/outlier breakdowns of matched files.
//
// Input is one file per line: either a bare filename or
// "filename<TAB>RFC3339-arrival-time".
//
// Usage:
//
//	bistro-analyze [-config bistro.conf] < filenames.log
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bistro/internal/analyzer"
	"bistro/internal/classifier"
	"bistro/internal/config"
	"bistro/internal/discovery"
	"bistro/internal/pattern"
)

func main() {
	var (
		configPath = flag.String("config", "", "installed configuration (enables FN/FP analysis)")
		minSupport = flag.Int("min-support", 2, "drop discovered feeds with fewer files")
		emitConfig = flag.Bool("emit-config", false, "print discovered feeds as ready-to-install configuration")
	)
	flag.Parse()

	var cfg *config.Config
	if *configPath != "" {
		src, err := os.ReadFile(*configPath)
		if err != nil {
			fatal("read config: %v", err)
		}
		cfg, err = config.Parse(string(src))
		if err != nil {
			fatal("%v", err)
		}
	}

	var class *classifier.Classifier
	if cfg != nil {
		class = classifier.New(cfg.Feeds, classifier.Options{})
	}

	opts := discovery.DefaultOptions()
	opts.MinSupport = *minSupport
	var unmatched []discovery.Observation
	matched := make(map[string][]discovery.Observation)
	total := 0

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		var arrived time.Time
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			name = line[:i]
			if ts, err := time.Parse(time.RFC3339, strings.TrimSpace(line[i+1:])); err == nil {
				arrived = ts
			}
		}
		obs := discovery.Observation{Name: name, Arrived: arrived}
		total++
		if class == nil {
			unmatched = append(unmatched, obs)
			continue
		}
		paths := class.FeedPaths(name)
		if len(paths) == 0 {
			unmatched = append(unmatched, obs)
			continue
		}
		for _, p := range paths {
			matched[p] = append(matched[p], obs)
		}
	}
	if err := scanner.Err(); err != nil {
		fatal("read input: %v", err)
	}

	fmt.Printf("analyzed %d filenames (%d unmatched)\n\n", total, len(unmatched))

	an := discovery.New(opts)
	for _, o := range unmatched {
		an.Add(o)
	}
	feeds := an.Feeds()
	fmt.Printf("== discovered atomic feeds (%d) ==\n", len(feeds))
	for _, f := range feeds {
		fmt.Printf("  %s\n", f.Describe())
		for _, ex := range f.Examples {
			fmt.Printf("      e.g. %s\n", ex)
		}
	}

	if *emitConfig && len(feeds) > 0 {
		fmt.Printf("\n== suggested configuration ==\n%s", suggestedConfig(feeds))
	}

	groups := analyzer.GroupFeeds(feeds, 0.8)
	multi := 0
	for _, g := range groups {
		if len(g.Members) > 1 {
			multi++
		}
	}
	if multi > 0 {
		fmt.Printf("\n== suggested feed groups (%d) ==\n", multi)
		for gi, g := range groups {
			if len(g.Members) < 2 {
				continue
			}
			fmt.Printf("  group %d (similarity >= %.2f):\n", gi+1, g.Similarity)
			for _, m := range g.Members {
				fmt.Printf("    %s\n", feeds[m].Pattern)
			}
		}
	}

	if cfg == nil {
		return
	}
	var defs []analyzer.FeedDef
	for _, f := range cfg.Feeds {
		for _, p := range f.Patterns {
			defs = append(defs, analyzer.FeedDef{Name: f.Path, Pattern: p})
		}
	}
	fns := analyzer.DetectFalseNegatives(defs, unmatched, analyzer.Options{Discovery: opts})
	fmt.Printf("\n== possible false negatives (%d) ==\n", len(fns))
	for _, fn := range fns {
		fmt.Printf("  feed %s (pattern %s)\n    unmatched cluster: %s (similarity %.2f)\n",
			fn.Feed, fn.FeedPattern, fn.Suggested.Pattern, fn.Similarity)
	}

	fmt.Printf("\n== subfeed / false-positive analysis ==\n")
	for feed, obs := range matched {
		rep := analyzer.DetectFalsePositives(feed, obs, analyzer.Options{Discovery: opts})
		fmt.Print(rep.Format())
	}
}

// suggestedConfig renders discovered feeds as a parseable config
// fragment, naming each feed after its leading literal.
func suggestedConfig(feeds []discovery.AtomicFeed) string {
	cfg := &config.Config{Groups: map[string][]string{}}
	used := map[string]bool{}
	for i, af := range feeds {
		p, err := pattern.Compile(af.Pattern)
		if err != nil {
			continue
		}
		name := feedName(af, i, used)
		f := &config.Feed{
			Name:          name,
			Path:          name,
			Patterns:      []*pattern.Pattern{p},
			ExpectPeriod:  af.Period,
			ExpectSources: af.SourcesPerPeriod,
		}
		cfg.Feeds = append(cfg.Feeds, f)
	}
	return config.Format(cfg)
}

func feedName(af discovery.AtomicFeed, i int, used map[string]bool) string {
	base := ""
	for _, fd := range af.Fields {
		if fd.Type == discovery.FieldLiteral && fd.Literal != "" {
			base = strings.ToUpper(fd.Literal)
			break
		}
	}
	if base == "" || !isIdent(base) {
		base = "NEWFEED"
	}
	name := base
	for n := 2; used[name]; n++ {
		name = fmt.Sprintf("%s%d", base, n)
	}
	used[name] = true
	return name
}

func isIdent(s string) bool {
	for i, r := range s {
		if r >= 'A' && r <= 'Z' || r == '_' || (i > 0 && r >= '0' && r <= '9') {
			continue
		}
		return false
	}
	return s != ""
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bistro-analyze: "+format+"\n", args...)
	os.Exit(1)
}
