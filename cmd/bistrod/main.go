// Command bistrod runs a Bistro data feed management server: it loads
// a configuration file, opens the work area (landing, staging,
// receipts, archive), and serves the source/subscriber protocol until
// interrupted.
//
// Usage:
//
//	bistrod -config bistro.conf -root /var/bistro [-listen :9400] [-node a]
//
// With a cluster block in the configuration, -node selects which node
// of the topology this process is (overriding the block's self), so
// every node in a cluster can share one configuration file.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bistro/internal/config"
	"bistro/internal/server"
)

func main() {
	var (
		configPath = flag.String("config", "bistro.conf", "configuration file")
		root       = flag.String("root", "bistro-data", "server work area")
		listen     = flag.String("listen", "", "protocol listen address (empty: no listener)")
		scanEvery  = flag.Duration("scan", 5*time.Second, "landing fallback scan interval")
		logPath    = flag.String("log", "", "activity log file (empty: stderr)")
		deadline   = flag.Duration("deadline", time.Minute, "per-file delivery target")
		analyze    = flag.Duration("analyze", 0, "feed-analyzer interval (0 disables)")
		node       = flag.String("node", "", "cluster node name (overrides the config's cluster.self)")
	)
	flag.Parse()

	src, err := os.ReadFile(*configPath)
	if err != nil {
		fatal("read config: %v", err)
	}
	cfg, err := config.Parse(string(src))
	if err != nil {
		fatal("%v", err)
	}

	logW := os.Stderr
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fatal("open log: %v", err)
		}
		defer f.Close()
		logW = f
	}

	srv, err := server.New(server.Options{
		Config:          cfg,
		Root:            *root,
		Listen:          *listen,
		ScanInterval:    *scanEvery,
		Deadline:        *deadline,
		AnalyzeInterval: *analyze,
		LogWriter:       logW,
		NodeName:        *node,
	})
	if err != nil {
		fatal("%v", err)
	}
	if err := srv.Start(); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "bistrod: %d feeds, %d subscribers, root %s",
		len(cfg.Feeds), len(cfg.Subscribers), *root)
	if addr := srv.Addr(); addr != "" {
		fmt.Fprintf(os.Stderr, ", listening on %s", addr)
	}
	if addr := srv.AdminAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, ", admin on http://%s", addr)
	}
	fmt.Fprintln(os.Stderr)

	// SIGUSR1 dumps a monitoring snapshot to stderr.
	status := make(chan os.Signal, 1)
	signal.Notify(status, syscall.SIGUSR1)
	go func() {
		for range status {
			fmt.Fprint(os.Stderr, srv.StatusSummary())
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "bistrod: shutting down")
	srv.Stop()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bistrod: "+format+"\n", args...)
	os.Exit(1)
}
