// Command bistro-sub runs a Bistro subscriber daemon: it accepts
// pushed files, availability notifications, and (optionally) remote
// trigger invocations from a Bistro server, writing received files
// under a destination directory.
//
// Usage:
//
//	bistro-sub -listen :9401 -dest /data/incoming [-triggers]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"bistro/internal/protocol"
	"bistro/internal/subclient"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:9401", "listen address")
		dest     = flag.String("dest", "incoming", "destination directory")
		name     = flag.String("name", "bistro-sub", "subscriber name")
		triggers = flag.Bool("triggers", false, "allow remote trigger execution")
		verbose  = flag.Bool("v", true, "log received files")
	)
	flag.Parse()

	opts := subclient.Options{
		Name:          *name,
		DestDir:       *dest,
		AllowTriggers: *triggers,
	}
	if *verbose {
		opts.OnFile = func(rel string) {
			fmt.Printf("received %s\n", rel)
		}
		opts.OnNotify = func(n protocol.Notify) {
			fmt.Printf("notified %s (feed %s, %d bytes)\n", n.Name, n.Feed, n.Size)
		}
	}
	d, err := subclient.Start(*listen, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bistro-sub: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bistro-sub: listening on %s, writing to %s\n", d.Addr(), *dest)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	d.Stop()
}
