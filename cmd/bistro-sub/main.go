// Command bistro-sub runs a Bistro subscriber daemon: it accepts
// pushed files, availability notifications, and (optionally) remote
// trigger invocations from a Bistro server, writing received files
// under a destination directory.
//
// With -server and -subscribe it additionally registers itself with
// the server at runtime — "SUBSCRIBE <feeds> [FROM <ts>]" — so a
// daemon can join (and, with -from, catch up on archived history)
// without a config change on the server.
//
// Usage:
//
//	bistro-sub -listen :9401 -dest /data/incoming [-triggers]
//	bistro-sub -listen :9401 -dest /data/incoming -server host:9400 -subscribe SNMP/CPU,SNMP/BPS [-from 2010-09-22T00:00:00Z]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bistro/internal/protocol"
	"bistro/internal/subclient"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9401", "listen address")
		dest      = flag.String("dest", "incoming", "destination directory")
		name      = flag.String("name", "bistro-sub", "subscriber name")
		triggers  = flag.Bool("triggers", false, "allow remote trigger execution")
		verbose   = flag.Bool("v", true, "log received files")
		server    = flag.String("server", "", "Bistro server address to SUBSCRIBE with at startup")
		subscribe = flag.String("subscribe", "", "comma-separated feed or group paths to subscribe to")
		subdir    = flag.String("subdir", "in", "destination prefix under -dest for subscribed deliveries (must be relative)")
		from      = flag.String("from", "", "replay archived history from this RFC3339 timestamp")
		class     = flag.String("class", "", "scheduling class hint (interactive, bulk)")
		timeout   = flag.Duration("timeout", 10*time.Second, "subscribe timeout")
	)
	flag.Parse()

	opts := subclient.Options{
		Name:          *name,
		DestDir:       *dest,
		AllowTriggers: *triggers,
	}
	if *verbose {
		opts.OnFile = func(rel string) {
			fmt.Printf("received %s\n", rel)
		}
		opts.OnNotify = func(n protocol.Notify) {
			fmt.Printf("notified %s (feed %s, %d bytes)\n", n.Name, n.Feed, n.Size)
		}
	}
	d, err := subclient.Start(*listen, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bistro-sub: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bistro-sub: listening on %s, writing to %s\n", d.Addr(), *dest)

	if *server != "" {
		// The spec's Dest is remote-relative: the daemon resolves every
		// delivered path under its own -dest root and rejects absolute
		// paths, so the local dest dir must not be echoed back here.
		if filepath.IsAbs(*subdir) {
			fmt.Fprintf(os.Stderr, "bistro-sub: -subdir %q must be relative (it is resolved under -dest)\n", *subdir)
			os.Exit(1)
		}
		spec := subclient.SubscribeSpec{
			Name:  *name,
			Host:  d.Addr(),
			Dest:  *subdir,
			Class: *class,
		}
		for _, f := range strings.Split(*subscribe, ",") {
			if f = strings.TrimSpace(f); f != "" {
				spec.Feeds = append(spec.Feeds, f)
			}
		}
		if *from != "" {
			ts, err := time.Parse(time.RFC3339, *from)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bistro-sub: bad -from %q: %v\n", *from, err)
				os.Exit(1)
			}
			spec.From = ts
		}
		if err := subclient.Subscribe(*server, spec, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "bistro-sub: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bistro-sub: subscribed to %v on %s\n", spec.Feeds, *server)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	d.Stop()
}
