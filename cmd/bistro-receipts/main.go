// Command bistro-receipts inspects a Bistro server's receipt database
// offline: overall statistics, the files recorded for a feed, and a
// subscriber's outstanding delivery queue. Point it at the server's
// receipts directory (<root>/receipts) while the server is stopped, or
// at a backup restored by the archiver.
//
// Usage:
//
//	bistro-receipts -dir bistro-data/receipts stats
//	bistro-receipts -dir bistro-data/receipts feed SNMP/BPS
//	bistro-receipts -dir bistro-data/receipts pending wh SNMP/BPS[,SNMP/PPS...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bistro/internal/receipts"
)

func main() {
	dir := flag.String("dir", "bistro-data/receipts", "receipts directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	store, err := receipts.Open(*dir, receipts.Options{NoSync: true})
	if err != nil {
		fatal("%v", err)
	}
	defer store.Close()

	switch args[0] {
	case "stats":
		st := store.Stats()
		fmt.Printf("files:        %d\n", st.Files)
		fmt.Printf("expired:      %d\n", st.Expired)
		fmt.Printf("feeds:        %d\n", st.Feeds)
		fmt.Printf("subscribers:  %d\n", st.Subscribers)
		fmt.Printf("wal bytes:    %d\n", st.WALBytes)
	case "feed":
		if len(args) != 2 {
			usage()
		}
		files := store.FilesInFeed(args[1])
		fmt.Printf("%d unexpired files in %s:\n", len(files), args[1])
		for _, f := range files {
			fmt.Printf("  %6d  %s  %8d bytes  arrived %s\n",
				f.ID, f.Name, f.Size, f.Arrived.UTC().Format(time.RFC3339))
		}
	case "pending":
		if len(args) != 3 {
			usage()
		}
		feeds := strings.Split(args[2], ",")
		pend := store.PendingFor(args[1], feeds)
		fmt.Printf("%d files pending for %s:\n", len(pend), args[1])
		for _, f := range pend {
			fmt.Printf("  %6d  %s\n", f.ID, f.StagedPath)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bistro-receipts -dir DIR {stats | feed PATH | pending SUB FEEDS}")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bistro-receipts: "+format+"\n", args...)
	os.Exit(1)
}
