GO ?= go

.PHONY: build test race bench-smoke cluster-race fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -l -w .

# One iteration of the full-server experiment benchmarks (E14 ingest
# scaling, E15 historical replay, E16 standby failover, E17
# self-healing failover, E18 channel fan-out, E19 HTTP pull plane,
# E20 plan enrichment placement) as a smoke test that the
# quantitative harness runs end to end. BENCH_10.json at the repo
# root is the tracked record of the last run, diffable across
# changes; CI regenerates and uploads it as an artifact.
bench-smoke:
	$(GO) test -json -run '^$$' -bench 'BenchmarkE1[4589]|BenchmarkE16|BenchmarkE17|BenchmarkE20' -benchtime=1x . | tee BENCH_10.json

# Race-mode pass over the clustering layer and its replication stress
# tests: concurrent group-commit shipping, the seeded failover
# property harness, and the two-node routing tests.
cluster-race:
	$(GO) test -race -count=1 ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestCluster' ./internal/server/
	$(GO) test -race -count=1 -run 'TestE16|TestE12StandbyPromotion|TestE17' ./internal/experiments/
