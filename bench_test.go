// Benchmarks regenerating the paper-reproduction experiments.
// Each benchmark runs the corresponding experiment from
// internal/experiments at reduced (Quick) scale and reports its key
// figure as a custom metric; `go run ./cmd/bistro-bench` prints the
// full tables at full scale. See DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded results.
package bistro

import (
	"strconv"
	"strings"
	"testing"

	"bistro/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration.
func runExperiment(b *testing.B, run func(experiments.Options) (experiments.Table, error)) experiments.Table {
	b.Helper()
	var table experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = run(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return table
}

// metric parses a leading float out of a table cell like "23x" or
// "1.59s" or "0.873".
func metric(cell string) float64 {
	end := 0
	for end < len(cell) && (cell[end] == '.' || cell[end] == '-' || (cell[end] >= '0' && cell[end] <= '9')) {
		end++
	}
	v, _ := strconv.ParseFloat(cell[:end], 64)
	return v
}

func BenchmarkE1PullScan(b *testing.B) {
	t := runExperiment(b, experiments.E1PullScan)
	last := t.Rows[len(t.Rows)-1]
	b.ReportMetric(metric(last[len(last)-1]), "notify_speedup_x")
}

func BenchmarkE2RsyncVsReceipts(b *testing.B) {
	t := runExperiment(b, experiments.E2RsyncVsReceipts)
	for _, row := range t.Rows {
		if strings.HasPrefix(row[0], "cron") {
			continue
		}
		b.ReportMetric(metric(row[len(row)-1]), "receipts_speedup_x")
	}
}

func BenchmarkE3Propagation(b *testing.B) {
	t := runExperiment(b, experiments.E3Propagation)
	for _, row := range t.Rows {
		if row[0] == "scan" {
			b.ReportMetric(metric(row[len(row)-1]), "scaled_max_s")
		}
	}
}

func BenchmarkE4Scheduler(b *testing.B) {
	t := runExperiment(b, experiments.E4Scheduler)
	for _, row := range t.Rows {
		if strings.HasPrefix(row[0], "partitioned") {
			b.ReportMetric(metric(row[1]), "partitioned_fast_max_tardy_s")
		}
		if strings.HasPrefix(row[0], "global-fifo") {
			b.ReportMetric(metric(row[1]), "global_fifo_fast_max_tardy_s")
		}
	}
}

func BenchmarkE5Backfill(b *testing.B) {
	t := runExperiment(b, experiments.E5Backfill)
	for _, row := range t.Rows {
		switch row[0] {
		case "concurrent":
			b.ReportMetric(metric(row[4]), "concurrent_max_tardy_s")
		case "in-order":
			b.ReportMetric(metric(row[4]), "inorder_max_tardy_s")
		}
	}
}

func BenchmarkE6Batching(b *testing.B) {
	t := runExperiment(b, experiments.E6Batching)
	for _, row := range t.Rows {
		if strings.HasPrefix(row[0], "hybrid") {
			b.ReportMetric(metric(row[2]), "hybrid_broken_batches")
			b.ReportMetric(metric(row[3]), "hybrid_mean_delay_s")
		}
	}
}

func BenchmarkE7Classifier(b *testing.B) {
	t := runExperiment(b, experiments.E7Classifier)
	for _, row := range t.Rows {
		if row[1] == "true" {
			b.ReportMetric(metric(row[2]), "indexed_files_per_sec")
		}
	}
}

func BenchmarkE8Discovery(b *testing.B) {
	t := runExperiment(b, experiments.E8Discovery)
	var minRecall = 1.0
	rows := 0
	for _, row := range t.Rows {
		if row[0] == "(junk)" || row[1] == "(not recovered)" {
			continue
		}
		rows++
		if r := metric(row[3]); r < minRecall {
			minRecall = r
		}
	}
	if rows > 0 {
		b.ReportMetric(minRecall, "min_recall")
	}
}

func BenchmarkE9FalseNegatives(b *testing.B) {
	t := runExperiment(b, experiments.E9FalseNegatives)
	for _, row := range t.Rows {
		if strings.HasPrefix(row[0], "bistro") {
			b.ReportMetric(metric(row[1]), "bistro_accuracy")
			b.ReportMetric(metric(row[5]), "bistro_margin")
		}
		if strings.HasPrefix(row[0], "edit") {
			b.ReportMetric(metric(row[5]), "editdist_margin")
		}
	}
}

func BenchmarkE10Recovery(b *testing.B) {
	t := runExperiment(b, experiments.E10Recovery)
	for _, row := range t.Rows {
		if row[0] == "duplicates" {
			b.ReportMetric(metric(row[1]), "duplicates")
		}
		if strings.HasPrefix(row[0], "wal commits/sec (group") {
			b.ReportMetric(metric(row[1]), "wal_group_commits_per_sec")
		}
	}
}

func BenchmarkE14ParallelIngest(b *testing.B) {
	t := runExperiment(b, experiments.E14ParallelIngest)
	last := t.Rows[len(t.Rows)-1]
	b.ReportMetric(metric(last[4]), "ingest_speedup_x")
	b.ReportMetric(metric(last[3]), "ingest_files_per_sec")
}

func BenchmarkE15HistoricalReplay(b *testing.B) {
	t := runExperiment(b, experiments.E15HistoricalReplay)
	for _, row := range t.Rows {
		// The uncapped row shows the sustainable catch-up throughput.
		if row[1] == "none" {
			b.ReportMetric(metric(row[3]), "catchup_files_per_sec")
			b.ReportMetric(metric(row[4]), "live_p99_ms")
			b.ReportMetric(metric(row[5]), "duplicates")
		}
	}
}

func BenchmarkE16Failover(b *testing.B) {
	t := runExperiment(b, experiments.E16Failover)
	for _, row := range t.Rows {
		switch row[0] {
		case "acked arrivals lost after promotion":
			b.ReportMetric(metric(row[1]), "acked_lost")
		case "duplicate writes at subscriber":
			b.ReportMetric(metric(row[1]), "app_duplicates")
		case "takeover time mean":
			b.ReportMetric(metric(row[1]), "takeover_mean_ms")
		}
	}
}

func BenchmarkE17SelfHealing(b *testing.B) {
	t := runExperiment(b, experiments.E17SelfHealing)
	for _, row := range t.Rows {
		switch row[0] {
		case "acked arrivals lost after promotion":
			b.ReportMetric(metric(row[1]), "acked_lost")
		case "duplicate writes at subscriber":
			b.ReportMetric(metric(row[1]), "app_duplicates")
		case "fenced frames counted by survivor":
			b.ReportMetric(metric(row[1]), "fenced")
		case "takeover detect+promote mean":
			b.ReportMetric(metric(row[1]), "takeover_detect_mean_ms")
		}
	}
}

func BenchmarkE18FanOut(b *testing.B) {
	t := runExperiment(b, experiments.E18FanOut)
	var chanBytes, indivBytes float64
	for _, row := range t.Rows {
		// bytes/file at the widest width of each mode; the channel's
		// must stay at the file size while the individual path's grows
		// with the subscriber count.
		switch row[1] {
		case "channel":
			chanBytes = metric(row[3])
		case "individual":
			indivBytes = metric(row[3])
		}
		b.ReportMetric(metric(row[5]), "duplicates")
		b.ReportMetric(metric(row[6]), "missed")
	}
	b.ReportMetric(chanBytes, "channel_bytes_per_file")
	if chanBytes > 0 {
		b.ReportMetric(indivBytes/chanBytes, "individual_read_amplification_x")
	}
}

func BenchmarkE19HTTPPull(b *testing.B) {
	t := runExperiment(b, experiments.E19HTTPPull)
	for _, row := range t.Rows {
		// The widest poll row carries the headline figures; the push
		// row is the contrast.
		if row[0] == "poll" && row[1] == "300" {
			b.ReportMetric(metric(row[3]), "poll_p99_propagation_ms")
			b.ReportMetric(metric(row[4]), "poll_cpu_per_client_ms")
			b.ReportMetric(metric(row[6]), "duplicates")
			b.ReportMetric(metric(row[7]), "missed")
		}
		if row[0] == "push" {
			b.ReportMetric(metric(row[3]), "push_p99_propagation_ms")
		}
	}
}

func BenchmarkE20EnrichmentPlacement(b *testing.B) {
	t := runExperiment(b, experiments.E20EnrichmentPlacement)
	var ingJoins, delJoins, ingStaged, delStaged float64
	for _, row := range t.Rows {
		switch row[0] {
		case "at-ingest":
			ingStaged = metric(row[2])
			ingJoins = metric(row[4])
		case "at-delivery":
			delStaged = metric(row[2])
			delJoins = metric(row[4])
			b.ReportMetric(metric(row[5]), "at_delivery_p95_ms")
		}
	}
	if ingJoins > 0 {
		b.ReportMetric(delJoins/ingJoins, "delivery_join_amplification_x")
	}
	if ingStaged > 0 {
		b.ReportMetric(delStaged/ingStaged, "lean_staging_ratio")
	}
}

func BenchmarkE13Overhead(b *testing.B) {
	t := runExperiment(b, experiments.E13Overhead)
	for _, row := range t.Rows {
		if strings.HasPrefix(row[0], "classifier") {
			b.ReportMetric(metric(strings.TrimPrefix(row[3], "+")), "classifier_overhead_pct")
		}
		if strings.HasPrefix(row[0], "delivery") {
			b.ReportMetric(metric(strings.TrimPrefix(row[3], "+")), "delivery_overhead_pct")
		}
	}
}
