package bistro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bistro"
)

// TestPublicAPIEndToEnd exercises the exported surface the way a
// downstream user would: parse a configuration, run a server, deposit
// through the landing zone, observe delivery, run the analyzer.
func TestPublicAPIEndToEnd(t *testing.T) {
	root := t.TempDir()
	cfg, err := bistro.ParseConfig(`
feedgroup SNMP {
    feed CPU {
        pattern "CPU_POLL%i_%Y%m%d%H%M.txt"
        normalize "%Y/%m/%d/CPU_POLL%i_%H%M.txt"
    }
}
subscriber wh {
    dest "wh-in"
    subscribe SNMP
}
`)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := bistro.NewServer(bistro.ServerOptions{
		Config:       cfg,
		Root:         root,
		ScanInterval: -1,
		NoSync:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Deposit("CPU_POLL1_201009250451.txt", []byte("cpu,42\n")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(root, "wh-in", "SNMP", "CPU", "2010", "09", "25", "CPU_POLL1_0451.txt")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(want); err == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	data, err := os.ReadFile(want)
	if err != nil {
		t.Fatalf("not delivered: %v", err)
	}
	if string(data) != "cpu,42\n" {
		t.Fatalf("content = %q", data)
	}

	// Unmatched traffic drives the analyzer.
	for i := 0; i < 4; i++ {
		srv.Deposit(fmt.Sprintf("MEM_PROBE%d_201009250451.dat", i%2+1), []byte("x"))
	}
	rep := srv.Analyze()
	if len(rep.NewFeeds) == 0 {
		t.Fatal("analyzer found nothing")
	}
}

func TestPublicPatternAPI(t *testing.T) {
	p, err := bistro.CompilePattern("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz")
	if err != nil {
		t.Fatal(err)
	}
	fields, ok := p.Match("MEMORY_POLLER1_2010092504_51.csv.gz")
	if !ok {
		t.Fatal("no match")
	}
	ts, ok := fields.Time.Timestamp(time.UTC)
	if !ok || ts.Hour() != 4 || ts.Minute() != 51 {
		t.Fatalf("timestamp = %v", ts)
	}
	if _, err := bistro.CompilePattern("%Q"); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestPublicDiscoveryAPI(t *testing.T) {
	d := bistro.NewFeedDiscovery()
	base := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		ts := base.Add(time.Duration(i) * time.Hour)
		d.Add(bistro.Observation{
			Name:    fmt.Sprintf("BPS_poller%d_%s.csv", i%2+1, ts.Format("2006010215")),
			Arrived: ts,
		})
	}
	feeds := d.Feeds()
	if len(feeds) != 1 {
		t.Fatalf("feeds = %d", len(feeds))
	}
	groups := bistro.GroupFeeds(feeds, 0.8)
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
}

// Example demonstrates the minimal Bistro pipeline.
func Example() {
	root, _ := os.MkdirTemp("", "bistro-example-*")
	defer os.RemoveAll(root)

	cfg, _ := bistro.ParseConfig(`
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
`)
	srv, _ := bistro.NewServer(bistro.ServerOptions{
		Config: cfg, Root: root, ScanInterval: -1, NoSync: true,
	})
	srv.Start()
	defer srv.Stop()

	srv.Deposit("CPU_POLL1_201009250451.txt", []byte("cpu,42\n"))
	dest := filepath.Join(root, "in", "CPU", "CPU_POLL1_201009250451.txt")
	for i := 0; i < 1000; i++ {
		if _, err := os.Stat(dest); err == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	data, _ := os.ReadFile(dest)
	fmt.Printf("delivered: %s", data)
	// Output: delivered: cpu,42
}
