// Analyzer walkthrough: the feed-discovery workflow of §5.
//
// An operator receives a large aggregate feed whose composition nobody
// documented (the paper's everyday reality at AT&T). This example:
//
//  1. generates a day of traffic from six undocumented subfeeds across
//     several naming conventions, plus junk files;
//  2. runs atomic-feed discovery and prints the suggested definitions
//     with inferred cadence and fleet size;
//  3. groups structurally similar feeds into a suggested feed group;
//  4. then simulates a source-side software update (capitalization
//     rename) and shows false-negative detection linking the "new"
//     unmatched cluster back to its original feed.
//
// Run with: go run ./examples/analyzer
package main

import (
	"fmt"
	"time"

	"bistro"
	"bistro/internal/analyzer"
	"bistro/internal/workload"
)

func main() {
	start := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	specs := workload.SNMPFleet(4, 5*time.Minute)
	gen := workload.New(1, specs...)
	files := gen.Window(start, start.Add(24*time.Hour))

	// 1-2. Discover the aggregate feed's composition.
	disc := bistro.NewFeedDiscovery()
	for _, f := range files {
		disc.Add(bistro.Observation{Name: f.Name, Arrived: f.Arrive, Size: int64(f.Size)})
	}
	for i := 0; i < 30; i++ { // junk the analyzer must keep apart
		disc.Add(bistro.Observation{Name: fmt.Sprintf("core.%d.dump", i), Arrived: start})
	}
	feeds := disc.Feeds()
	fmt.Printf("discovered %d atomic feeds in %d files:\n", len(feeds), disc.Total())
	for _, f := range feeds {
		fmt.Printf("  %s\n", f.Describe())
	}

	// 3. Suggest feed groups.
	groups := bistro.GroupFeeds(feeds, 0.8)
	fmt.Println("\nsuggested feed groups:")
	for gi, g := range groups {
		if len(g.Members) < 2 {
			continue
		}
		fmt.Printf("  group %d:\n", gi+1)
		for _, m := range g.Members {
			fmt.Printf("    %s\n", feeds[m].Pattern)
		}
	}

	// 4. Feed evolution: the MEMORY pollers get a firmware update that
	// renames their output; the installed definitions stop matching.
	var defs []analyzer.FeedDef
	for _, sp := range specs {
		defs = append(defs, analyzer.FeedDef{
			Name:    sp.Name,
			Pattern: bistro.MustCompilePattern(sp.Convention.Pattern(sp.Name)),
		})
	}
	var unmatched []bistro.Observation
	for _, f := range gen.Window(start.Add(24*time.Hour), start.Add(30*time.Hour)) {
		if f.Feed != "MEMORY" {
			continue
		}
		renamed := workload.EvolveCapitalize.Rename(f.Name)
		if renamed == f.Name {
			continue
		}
		unmatched = append(unmatched, bistro.Observation{Name: renamed, Arrived: f.Arrive})
	}
	reports := analyzer.DetectFalseNegatives(defs, unmatched, analyzer.Options{})
	fmt.Printf("\nafter the firmware update, %d files stopped matching; analyzer says:\n", len(unmatched))
	for _, r := range reports {
		fmt.Printf("  feed %s probably renamed its files:\n    old: %s\n    new: %s (similarity %.2f, %d files)\n",
			r.Feed, r.FeedPattern, r.Suggested.Pattern, r.Similarity, r.Suggested.Support)
	}
}
