// Shipping company: the motivating scenario from the paper's
// introduction (§1).
//
// Four source feeds — package drop-off logs from shipping centers,
// barcode scans from trucks and warehouses, GPS readings from delivery
// trucks, and electronic delivery signatures — are distributed to
// three analyst groups:
//
//   - marketing (Atlanta) takes only the drop-off feed;
//   - operations (Dallas) takes barcode scans and truck GPS;
//   - the corporate warehouse subscribes to everything.
//
// The example also shows the feed analyzer at work: the signature
// devices get a software update mid-run that renames their output
// files, and Bistro's analyzer links the resulting unmatched cluster
// back to the SIGNATURES feed as a suggested definition fix.
//
// Run with: go run ./examples/shipping
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bistro"
)

func main() {
	root, err := os.MkdirTemp("", "bistro-shipping-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	cfg, err := bistro.ParseConfig(`
feedgroup PACKAGES {
    feed DROPOFFS   { pattern "dropoff_center%i_%Y%m%d%H.log.gz" }
    feed BARCODES   { pattern "scan_%s_%Y%m%d%H%M.csv" }
    feed GPS        { pattern "gps_truck%i_%Y%m%d%H%M.csv" }
    feed SIGNATURES { pattern "sig_device%i_%Y%m%d.dat" }
}

subscriber marketing {
    dest "marketing-in"
    subscribe PACKAGES/DROPOFFS
}

subscriber operations {
    dest "operations-in"
    subscribe PACKAGES/BARCODES
    subscribe PACKAGES/GPS
    class interactive
}

subscriber corporate {
    dest "corporate-in"
    subscribe PACKAGES
}
`)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := bistro.NewServer(bistro.ServerOptions{
		Config:       cfg,
		Root:         root,
		ScanInterval: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	day := time.Date(2010, 12, 30, 8, 0, 0, 0, time.UTC)
	deposit := func(name string) {
		if err := srv.Deposit(name, []byte("payload for "+name+"\n")); err != nil {
			log.Fatalf("deposit %s: %v", name, err)
		}
	}

	// Morning traffic from every source type.
	for h := 0; h < 3; h++ {
		ts := day.Add(time.Duration(h) * time.Hour)
		for c := 1; c <= 2; c++ {
			deposit(fmt.Sprintf("dropoff_center%d_%s.log.gz", c, ts.Format("2006010215")))
		}
		for _, site := range []string{"atl", "dfw"} {
			deposit(fmt.Sprintf("scan_%s_%s.csv", site, ts.Format("200601021504")))
		}
		for truck := 1; truck <= 3; truck++ {
			deposit(fmt.Sprintf("gps_truck%d_%s.csv", truck, ts.Format("200601021504")))
		}
		deposit(fmt.Sprintf("sig_device%d_%s.dat", h+1, ts.Format("20060102")))
	}

	// The signature devices get a firmware update and change their
	// naming convention: these no longer match PACKAGES/SIGNATURES.
	for d := 1; d <= 3; d++ {
		deposit(fmt.Sprintf("sig_Device%d_%s.dat", d, day.Format("20060102")))
		deposit(fmt.Sprintf("sig_Device%d_%s.dat", d, day.Add(24*time.Hour).Format("20060102")))
	}

	// Drain.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Store().DeliveredCount("corporate") >= 24 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("per-analyst deliveries:")
	for _, sub := range []string{"marketing", "operations", "corporate"} {
		fmt.Printf("  %-10s %d files\n", sub, srv.Store().DeliveredCount(sub))
	}
	fmt.Printf("unmatched files: %d\n\n", srv.Logger().Unmatched())

	rep := srv.Analyze()
	fmt.Println("feed analyzer report:")
	for _, nf := range rep.NewFeeds {
		fmt.Printf("  new feed candidate: %s\n", nf.Describe())
	}
	for _, fn := range rep.FalseNegatives {
		fmt.Printf("  possible false negative for feed %s:\n    unmatched files look like %s (similarity %.2f)\n",
			fn.Feed, fn.Suggested.Pattern, fn.Similarity)
	}
}
