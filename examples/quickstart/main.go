// Quickstart: the minimal end-to-end Bistro pipeline.
//
// One feed, one local subscriber with a per-file trigger. A source
// deposits a file; Bistro classifies it, normalizes it into staging,
// records the arrival receipt, delivers it to the subscriber's
// directory, records the delivery receipt, and fires the trigger.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bistro"
)

func main() {
	root, err := os.MkdirTemp("", "bistro-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	cfg, err := bistro.ParseConfig(`
feed CPU {
    pattern "CPU_POLL%i_%Y%m%d%H%M.txt"
    normalize "%Y/%m/%d/CPU_POLL%i_%H%M.txt"
}

subscriber warehouse {
    dest "warehouse-in"
    subscribe CPU
    trigger perfile exec "echo loaded: %f"
}
`)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := bistro.NewServer(bistro.ServerOptions{
		Config:       cfg,
		Root:         root,
		ScanInterval: -1, // we deposit explicitly; no fallback scan needed
		LogWriter:    os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	// A source deposits one measurement file.
	name := "CPU_POLL1_201009250451.txt"
	if err := srv.Deposit(name, []byte("router_a,cpu,42\n")); err != nil {
		log.Fatal(err)
	}

	// Wait for the delivery receipt.
	dest := filepath.Join(root, "warehouse-in", "CPU", "2010", "09", "25", "CPU_POLL1_0451.txt")
	for i := 0; i < 500; i++ {
		if _, err := os.Stat(dest); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	content, err := os.ReadFile(dest)
	if err != nil {
		log.Fatalf("file was not delivered: %v", err)
	}
	fmt.Printf("\ndelivered to %s\ncontent: %s", dest, content)
	fmt.Printf("receipts: %+v\n", srv.Store().Stats())
}
