// Cascade: a two-tier distributed feed delivery network (§3).
//
// An edge Bistro server collects poller files and pushes its CPU feed
// over TCP to a core Bistro server (a Bistro acting as a subscriber of
// another Bistro). The core server classifies the cascaded files into
// its own feed definitions and delivers them to a local analyst
// subscriber — demonstrating how cooperating feed managers scale
// distribution and shield low-bandwidth links.
//
// Run with: go run ./examples/cascade
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bistro"
)

func main() {
	coreRoot, err := os.MkdirTemp("", "bistro-core-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(coreRoot)
	edgeRoot, err := os.MkdirTemp("", "bistro-edge-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(edgeRoot)

	// Core server: receives cascaded files, serves its own analysts.
	coreCfg, err := bistro.ParseConfig(`
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber analyst { dest "analyst-in" subscribe CPU }
`)
	if err != nil {
		log.Fatal(err)
	}
	core, err := bistro.NewServer(bistro.ServerOptions{
		Config:       coreCfg,
		Root:         coreRoot,
		ScanInterval: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Start(); err != nil {
		log.Fatal(err)
	}
	defer core.Stop()

	// The core's ingress daemon: pushed files land in the core's
	// landing zone and are ingested immediately (no polling anywhere).
	relay, err := bistro.StartSubscriber("127.0.0.1:0", bistro.SubscriberOptions{
		Name:    "core-ingress",
		DestDir: core.Landing().Dir(),
		OnFile: func(rel string) {
			base := filepath.Base(filepath.FromSlash(rel))
			if base != rel {
				os.Rename(
					filepath.Join(core.Landing().Dir(), filepath.FromSlash(rel)),
					filepath.Join(core.Landing().Dir(), base),
				)
			}
			if err := core.Landing().FileReady(base); err != nil {
				log.Printf("core ingest %s: %v", base, err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer relay.Stop()

	// Edge server: subscribes the core (via the relay daemon) to CPU.
	edgeCfg, err := bistro.ParseConfig(fmt.Sprintf(`
feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M.txt" }
subscriber core {
    host "%s"
    dest ""
    subscribe CPU
}
`, relay.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	edge, err := bistro.NewServer(bistro.ServerOptions{
		Config:       edgeCfg,
		Root:         edgeRoot,
		ScanInterval: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := edge.Start(); err != nil {
		log.Fatal(err)
	}
	defer edge.Stop()

	// Pollers deposit at the edge.
	ts := time.Date(2010, 9, 25, 4, 51, 0, 0, time.UTC)
	for p := 1; p <= 3; p++ {
		name := fmt.Sprintf("CPU_POLL%d_%s.txt", p, ts.Format("200601021504"))
		if err := edge.Deposit(name, []byte(fmt.Sprintf("poller%d,cpu,17\n", p))); err != nil {
			log.Fatal(err)
		}
	}

	// Wait for the files to traverse edge -> core -> analyst.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if core.Store().DeliveredCount("analyst") == 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Printf("edge deliveries to core:   %d\n", edge.Store().DeliveredCount("core"))
	fmt.Printf("core deliveries to analyst: %d\n", core.Store().DeliveredCount("analyst"))
	entries, _ := os.ReadDir(filepath.Join(coreRoot, "analyst-in", "CPU"))
	fmt.Println("analyst received:")
	for _, e := range entries {
		fmt.Printf("  %s\n", e.Name())
	}
}
