// SNMP pipeline: the paper's running example end to end.
//
// A fleet of SNMP pollers emits per-statistic measurement files every
// interval. Bistro classifies them into an SNMP feed group (BPS, PPS,
// CPU, MEMORY), normalizes them into daily directories, and delivers:
//
//   - a billing application subscribes only to BPS;
//   - a capacity-planning warehouse subscribes to the whole SNMP group
//     with a hybrid count+timeout batch trigger, so it reloads each
//     partition once per interval instead of once per file;
//   - a visualizer subscribes to CPU with hybrid notify (push-pull).
//
// The pollers mark end-of-batch punctuation, so warehouse batches
// close exactly at interval boundaries even when a poller is missing.
//
// Run with: go run ./examples/snmp
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"bistro"
	"bistro/internal/workload"
)

func main() {
	root, err := os.MkdirTemp("", "bistro-snmp-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	cfg, err := bistro.ParseConfig(`
feedgroup SNMP {
    feed BPS    { pattern "BPS_POLLER%i_%Y%m%d%H_%M.csv.gz" }
    feed PPS    { pattern "PPS_POLL%i_%Y%m%d%H%M.txt" }
    feed CPU    { pattern "%Y/%m/%d/CPU_poller%i_%H%M.csv" }
    feed MEMORY { pattern "MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz" }
}

subscriber billing {
    dest "billing-in"
    subscribe SNMP/BPS
}

subscriber warehouse {
    dest "warehouse-in"
    subscribe SNMP
    trigger batch count 3 timeout 30s exec "echo warehouse load: %f"
}

subscriber visualizer {
    dest "viz-in"
    subscribe SNMP/CPU
    method notify
    class interactive
}
`)
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	delivered := map[string]int{}
	srv, err := bistro.NewServer(bistro.ServerOptions{
		Config:       cfg,
		Root:         root,
		ScanInterval: -1,
		OnEvent: func(ev bistro.DeliveryEvent) {
			mu.Lock()
			delivered[ev.Subscriber]++
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	// Three pollers, four statistics, six 5-minute intervals.
	start := time.Date(2010, 9, 25, 4, 0, 0, 0, time.UTC)
	gen := workload.New(1,
		workload.FeedSpec{Name: "BPS", Sources: 3, Period: 5 * time.Minute, Convention: workload.ConvUnderscoreTS},
		workload.FeedSpec{Name: "PPS", Sources: 3, Period: 5 * time.Minute, Convention: workload.ConvCompactTS},
		workload.FeedSpec{Name: "CPU", Sources: 3, Period: 5 * time.Minute, Convention: workload.ConvDatedDirs},
		workload.FeedSpec{Name: "MEMORY", Sources: 3, Period: 5 * time.Minute, Convention: workload.ConvUnderscoreTS},
	)
	files := gen.Window(start, start.Add(30*time.Minute))
	fmt.Printf("depositing %d files from 3 pollers x 4 statistics x 6 intervals\n", len(files))
	lastInterval := time.Time{}
	for _, f := range files {
		if !lastInterval.IsZero() && !f.DataTime.Equal(lastInterval) {
			// Interval boundary: sources punctuate their feeds.
			for _, feed := range []string{"SNMP/BPS", "SNMP/PPS", "SNMP/CPU", "SNMP/MEMORY"} {
				srv.Punctuate(feed)
			}
		}
		lastInterval = f.DataTime
		if err := srv.Deposit(f.Name, workload.Payload(f)); err != nil {
			log.Fatalf("deposit %s: %v", f.Name, err)
		}
	}

	// Wait for deliveries to drain: billing wants 18 BPS files,
	// warehouse wants all 72, visualizer is notified for 18 CPU files.
	want := map[string]int{"billing": 18, "warehouse": 72, "visualizer": 18}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := true
		for sub, n := range want {
			if delivered[sub] < n {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("\nper-feed monitoring summary:")
	fmt.Print(srv.Logger().Summary())
	mu.Lock()
	fmt.Printf("deliveries: billing=%d warehouse=%d visualizer(notify)=%d\n",
		delivered["billing"], delivered["warehouse"], delivered["visualizer"])
	mu.Unlock()
}
