package subclient

// Cluster-aware subscription: a subscriber configured with every
// node's address can resolve which node owns a feed through any live
// node, subscribe at the owner (following redirects when its guess is
// stale), and — after a failover — re-resolve and re-subscribe at the
// promoted survivor. Combined with DedupByID on the daemon this gives
// exactly-once delivery across a kill -9 of the feed's owner.

import (
	"fmt"
	"strings"
	"time"

	"bistro/internal/protocol"
)

// maxRedirects bounds redirect-following during Subscribe. Shard maps
// disagree only transiently (mid-failover), so one or two hops settle
// every real case; the bound turns a routing bug into an error instead
// of a loop.
const maxRedirects = 3

// Cluster locates feed owners across a set of Bistro nodes.
type Cluster struct {
	// Nodes are the protocol addresses of the cluster's nodes, in any
	// order. Dead nodes are skipped during resolution.
	Nodes []string
	// Timeout bounds each dial and round trip (default 5s).
	Timeout time.Duration
}

func (c *Cluster) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Second
}

// Resolve asks the cluster which node owns feed, querying every
// configured node and preferring the answer with the highest cluster
// epoch: mid-failover a revived stale owner and the promoted survivor
// briefly disagree, and the higher epoch is by construction the node
// that holds the fencing token (first answer wins on ties). Only a
// total outage fails.
func (c *Cluster) Resolve(feed string) (protocol.Resolved, error) {
	var (
		errs []string
		best protocol.Resolved
		got  bool
	)
	for _, addr := range c.Nodes {
		res, err := resolveAt(addr, feed, c.timeout())
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", addr, err))
			continue
		}
		if !got || res.Epoch > best.Epoch {
			best, got = res, true
		}
	}
	if got {
		return best, nil
	}
	return protocol.Resolved{}, fmt.Errorf("subclient: resolve %s: no node answered (%s)",
		feed, strings.Join(errs, "; "))
}

// resolveAt performs one Resolve round trip against a single node.
func resolveAt(addr, feed string, timeout time.Duration) (protocol.Resolved, error) {
	conn, err := protocol.Dial(addr, timeout)
	if err != nil {
		return protocol.Resolved{}, err
	}
	defer conn.Close()
	if err := conn.Call(protocol.Hello{Role: "subscriber"}); err != nil {
		return protocol.Resolved{}, err
	}
	if err := conn.Send(protocol.Resolve{Feed: feed}); err != nil {
		return protocol.Resolved{}, err
	}
	reply, err := conn.Recv()
	if err != nil {
		return protocol.Resolved{}, err
	}
	res, ok := reply.(protocol.Resolved)
	if !ok {
		return protocol.Resolved{}, fmt.Errorf("expected Resolved, got %T", reply)
	}
	return res, nil
}

// Subscribe registers spec at the node owning its first feed,
// following redirects when the resolved node's shard map disagrees
// (e.g. a promotion it has not heard about lands the subscription on
// the survivor). Re-issuing the same spec after a failover is safe:
// subscriptions are keyed by name, so the promoted node treats it as
// an update, and QueueBackfill covers anything missed in between.
// Mid-failover a resolved address can go dark between Resolve and
// Subscribe (or answer with a fencing refusal); the outer loop
// re-resolves a few times before giving up.
const maxResolveAttempts = 4

func (c *Cluster) Subscribe(spec SubscribeSpec) error {
	if len(spec.Feeds) == 0 {
		return fmt.Errorf("subclient: subscribe: at least one feed required")
	}
	var lastErr error
	for attempt := 0; attempt < maxResolveAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
		}
		res, err := c.Resolve(spec.Feeds[0])
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.subscribeAt(res.Addr, spec); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// subscribeAt subscribes at addr, following redirects when the node's
// shard map disagrees with the resolution.
func (c *Cluster) subscribeAt(addr string, spec SubscribeSpec) error {
	for hop := 0; ; hop++ {
		redirect, err := subscribeOnce(addr, spec, c.timeout())
		if err == nil {
			return nil
		}
		if redirect == "" || hop >= maxRedirects {
			return fmt.Errorf("subclient: subscribe via %s: %w", addr, err)
		}
		addr = redirect
	}
}

// subscribeOnce issues one Subscribe round trip, returning the
// redirect target when the node declines as a non-owner.
func subscribeOnce(addr string, spec SubscribeSpec, timeout time.Duration) (string, error) {
	conn, err := protocol.Dial(addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if err := conn.Call(protocol.Hello{Role: "subscriber", Name: spec.Name}); err != nil {
		return "", err
	}
	if err := conn.Send(protocol.Subscribe{
		Name:  spec.Name,
		Host:  spec.Host,
		Dest:  spec.Dest,
		Feeds: spec.Feeds,
		From:  spec.From,
		Class: spec.Class,
	}); err != nil {
		return "", err
	}
	reply, err := conn.Recv()
	if err != nil {
		return "", err
	}
	ack, ok := reply.(protocol.Ack)
	if !ok {
		return "", fmt.Errorf("expected Ack, got %T", reply)
	}
	if !ack.OK {
		return ack.Redirect, fmt.Errorf("remote error: %s", ack.Error)
	}
	return "", nil
}
