package subclient

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bistro/internal/protocol"
)

func startDaemon(t *testing.T, opts Options) *Daemon {
	t.Helper()
	if opts.DestDir == "" {
		opts.DestDir = t.TempDir()
	}
	d, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

func dial(t *testing.T, d *Daemon) *protocol.Conn {
	t.Helper()
	conn, err := protocol.Dial(d.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func deliver(name string, data []byte) protocol.Deliver {
	return protocol.Deliver{
		FileID: 1, Feed: "F", Name: name, Data: data,
		CRC: crc32.ChecksumIEEE(data),
	}
}

func TestDeliverWritesFile(t *testing.T) {
	dest := t.TempDir()
	d := startDaemon(t, Options{Name: "s", DestDir: dest})
	conn := dial(t, d)
	if err := conn.Call(deliver("in/CPU/f.txt", []byte("payload"))); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dest, "in", "CPU", "f.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("content = %q", got)
	}
	if rx := d.Received(); len(rx) != 1 || rx[0] != "in/CPU/f.txt" {
		t.Fatalf("received = %v", rx)
	}
}

func TestDeliverRejectsBadChecksum(t *testing.T) {
	d := startDaemon(t, Options{Name: "s"})
	conn := dial(t, d)
	m := deliver("f.txt", []byte("x"))
	m.CRC++
	err := conn.Call(m)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeliverRejectsEscapingPath(t *testing.T) {
	d := startDaemon(t, Options{Name: "s"})
	conn := dial(t, d)
	for _, p := range []string{"../evil", "/abs"} {
		if err := conn.Call(deliver(p, []byte("x"))); err == nil {
			t.Fatalf("path %q accepted", p)
		}
	}
}

func TestOnFileCallback(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	d := startDaemon(t, Options{
		Name: "s",
		OnFile: func(rel string) {
			mu.Lock()
			seen = append(seen, rel)
			mu.Unlock()
		},
	})
	conn := dial(t, d)
	if err := conn.Call(deliver("a.txt", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "a.txt" {
		t.Fatalf("seen = %v", seen)
	}
}

func TestNotify(t *testing.T) {
	var mu sync.Mutex
	var got []protocol.Notify
	d := startDaemon(t, Options{
		Name: "s",
		OnNotify: func(n protocol.Notify) {
			mu.Lock()
			got = append(got, n)
			mu.Unlock()
		},
	})
	conn := dial(t, d)
	if err := conn.Call(protocol.Notify{FileID: 9, Feed: "F", Name: "x", Size: 5}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(got) != 1 || got[0].FileID != 9 {
		t.Fatalf("notify = %v", got)
	}
	mu.Unlock()
	if ns := d.Notifications(); len(ns) != 1 {
		t.Fatalf("notifications = %v", ns)
	}
}

func TestTriggerDisabledByDefault(t *testing.T) {
	d := startDaemon(t, Options{Name: "s"})
	conn := dial(t, d)
	err := conn.Call(protocol.Trigger{Command: "true"})
	if err == nil || !strings.Contains(err.Error(), "not allowed") {
		t.Fatalf("err = %v", err)
	}
}

func TestTriggerAllowed(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "fired")
	d := startDaemon(t, Options{Name: "s", AllowTriggers: true})
	conn := dial(t, d)
	if err := conn.Call(protocol.Trigger{Command: "touch " + marker}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatal("trigger did not run")
	}
	// Failing command returns the error.
	if err := conn.Call(protocol.Trigger{Command: "exit 9"}); err == nil {
		t.Fatal("failing trigger acked OK")
	}
}

func TestTriggerHandlerOverride(t *testing.T) {
	var mu sync.Mutex
	var cmds []string
	d := startDaemon(t, Options{
		Name: "s",
		OnTrigger: func(cmd string, paths []string) error {
			mu.Lock()
			cmds = append(cmds, cmd)
			mu.Unlock()
			return nil
		},
	})
	conn := dial(t, d)
	if err := conn.Call(protocol.Trigger{Command: "load x", Paths: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(cmds) != 1 || cmds[0] != "load x" {
		t.Fatalf("cmds = %v", cmds)
	}
}

func TestHelloAndUnknownMessage(t *testing.T) {
	d := startDaemon(t, Options{Name: "s"})
	conn := dial(t, d)
	if err := conn.Call(protocol.Hello{Role: "server", Name: "srv"}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Call(protocol.Fetch{FileID: 1}); err == nil {
		t.Fatal("daemon should reject Fetch")
	}
}

func TestStartRequiresDest(t *testing.T) {
	if _, err := Start("127.0.0.1:0", Options{Name: "s"}); err == nil {
		t.Fatal("missing dest accepted")
	}
}

func TestStopUnblocksConnections(t *testing.T) {
	d := startDaemon(t, Options{Name: "s"})
	conn := dial(t, d)
	if err := conn.Call(deliver("f", []byte("x"))); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		d.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on open connection")
	}
}

func TestConcurrentDeliveries(t *testing.T) {
	dest := t.TempDir()
	d := startDaemon(t, Options{Name: "s", DestDir: dest})
	const workers = 4
	const each = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := protocol.Dial(d.Addr(), time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			for i := 0; i < each; i++ {
				name := filepath.Join("w", string(rune('a'+w)), "f", time.Now().Format("150405.000000000"))
				data := []byte{byte(w), byte(i)}
				if err := conn.Call(deliver(name+string(rune('0'+i%10)), data)); err != nil {
					t.Errorf("deliver: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(d.Received()); got != workers*each {
		t.Fatalf("received = %d, want %d", got, workers*each)
	}
}

func TestChunkedStreamDelivery(t *testing.T) {
	dest := t.TempDir()
	d := startDaemon(t, Options{Name: "s", DestDir: dest})
	conn := dial(t, d)

	payload := make([]byte, 300<<10) // forces several 100KB chunks below
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := conn.Send(protocol.DeliverBegin{
		FileID: 5, Feed: "F", Name: "big/file.bin",
		Size: int64(len(payload)), CRC: crc32.ChecksumIEEE(payload),
	}); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(payload); off += 100 << 10 {
		end := off + 100<<10
		if end > len(payload) {
			end = len(payload)
		}
		if err := conn.Send(protocol.DeliverChunk{Data: payload[off:end]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Send(protocol.DeliverEnd{}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := reply.(protocol.Ack); !ok || !ack.OK {
		t.Fatalf("reply = %#v", reply)
	}
	got, err := os.ReadFile(filepath.Join(dest, "big", "file.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("size = %d", len(got))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("content mismatch at %d", i)
		}
	}
	// The connection is reusable afterwards.
	if err := conn.Call(protocol.Hello{Role: "server"}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedStreamBadChecksum(t *testing.T) {
	d := startDaemon(t, Options{Name: "s", DestDir: t.TempDir()})
	conn := dial(t, d)
	payload := []byte("streamed")
	if err := conn.Send(protocol.DeliverBegin{
		FileID: 6, Name: "f.bin", Size: int64(len(payload)), CRC: 0xBAD,
	}); err != nil {
		t.Fatal(err)
	}
	conn.Send(protocol.DeliverChunk{Data: payload})
	conn.Send(protocol.DeliverEnd{})
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := reply.(protocol.Ack); !ok || ack.OK {
		t.Fatalf("bad stream acked OK: %#v", reply)
	}
	// Connection still usable (framing intact).
	if err := conn.Call(protocol.Hello{Role: "server"}); err != nil {
		t.Fatal(err)
	}
}
