// Package subclient implements the Bistro subscriber daemon: the
// lightweight process running on a subscriber host that accepts pushed
// files, availability notifications, and remote trigger invocations
// from a Bistro server (SIGMOD'11 §4.1), acknowledging each so the
// server can record delivery receipts.
//
// It is used by cmd/bistro-sub, by the examples, and — pointed at
// another Bistro server's landing directory — to cascade servers into
// a distributed feed delivery network (§3).
package subclient

import (
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"bistro/internal/protocol"
)

// Options configure a Daemon.
type Options struct {
	// Name is the subscriber name announced to servers.
	Name string
	// DestDir is where pushed files are written.
	DestDir string
	// AllowTriggers permits remote trigger execution (via /bin/sh).
	AllowTriggers bool
	// OnFile, when set, is called after each pushed file is written
	// (relative path). Cascading servers ingest from here.
	OnFile func(relPath string)
	// OnNotify receives availability notifications (hybrid push-pull).
	OnNotify func(n protocol.Notify)
	// OnTrigger, when set, handles remote triggers instead of the
	// shell (tests, embedded subscribers).
	OnTrigger func(command string, paths []string) error
	// DedupByID suppresses re-deliveries of a file id already written:
	// the duplicate is acknowledged (the server records its receipt and
	// stops retrying) but not rewritten and OnFile does not fire again.
	// Failover re-sends anything acknowledged inside the owner's last
	// unreplicated instant, so clustered subscribers turn at-least-once
	// re-sends into exactly-once application here.
	DedupByID bool
}

// Daemon is a running subscriber endpoint.
type Daemon struct {
	opts Options
	ln   net.Listener

	mu       sync.Mutex
	received []string
	notified []protocol.Notify
	seen     map[uint64]bool // delivered file ids (DedupByID)
	dups     int
	conns    map[*protocol.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves until Stop.
func Start(addr string, opts Options) (*Daemon, error) {
	if opts.DestDir == "" {
		return nil, fmt.Errorf("subclient: destination directory required")
	}
	if err := os.MkdirAll(opts.DestDir, 0o755); err != nil {
		return nil, fmt.Errorf("subclient: mkdir: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("subclient: listen: %w", err)
	}
	d := &Daemon{opts: opts, ln: ln, conns: make(map[*protocol.Conn]struct{}), seen: make(map[uint64]bool)}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, nil
}

// Addr returns the daemon's listen address.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Stop closes the listener and waits for handlers.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	for c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	d.ln.Close()
	d.wg.Wait()
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		c, err := d.ln.Accept()
		if err != nil {
			return
		}
		conn := protocol.NewConn(c)
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serve(conn)
			d.mu.Lock()
			delete(d.conns, conn)
			d.mu.Unlock()
		}()
	}
}

// serve handles one server connection until it closes.
func (d *Daemon) serve(conn *protocol.Conn) {
	defer conn.Close()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		var ack protocol.Ack
		switch m := msg.(type) {
		case protocol.Hello:
			ack = protocol.Ack{OK: true}
		case protocol.Deliver:
			ack = d.handleDeliver(m)
		case protocol.DeliverBegin:
			ack = d.handleStream(conn, m)
		case protocol.Notify:
			ack = d.handleNotify(m)
		case protocol.Trigger:
			ack = d.handleTrigger(m)
		default:
			ack = protocol.Ack{OK: false, Error: fmt.Sprintf("unexpected message %T", msg)}
		}
		if err := conn.Send(ack); err != nil {
			return
		}
	}
}

// handleStream receives a chunked transfer opened by DeliverBegin,
// writing to a temp file and renaming into place once the checksum
// verifies at DeliverEnd.
func (d *Daemon) handleStream(conn *protocol.Conn, m protocol.DeliverBegin) protocol.Ack {
	if d.isDuplicate(m.FileID) {
		drainStream(conn)
		return protocol.Ack{OK: true}
	}
	rel := filepath.FromSlash(m.Name)
	if filepath.IsAbs(rel) || strings.HasPrefix(filepath.Clean(rel), "..") {
		drainStream(conn)
		return protocol.Ack{OK: false, Error: "invalid path"}
	}
	dst := filepath.Join(d.opts.DestDir, rel)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		drainStream(conn)
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".bistro-rx-*")
	if err != nil {
		drainStream(conn)
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	crc := crc32.NewIEEE()
	var size int64
	fail := func(msg string) protocol.Ack {
		tmp.Close()
		os.Remove(tmp.Name())
		return protocol.Ack{OK: false, Error: msg}
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			return fail("stream interrupted: " + err.Error())
		}
		switch c := msg.(type) {
		case protocol.DeliverChunk:
			if _, err := tmp.Write(c.Data); err != nil {
				drainStream(conn)
				return fail(err.Error())
			}
			crc.Write(c.Data)
			size += int64(len(c.Data))
		case protocol.DeliverEnd:
			if size != m.Size || crc.Sum32() != m.CRC {
				return fail(fmt.Sprintf("stream verification failed: %d/%d bytes", size, m.Size))
			}
			if err := tmp.Close(); err != nil {
				os.Remove(tmp.Name())
				return protocol.Ack{OK: false, Error: err.Error()}
			}
			if err := os.Rename(tmp.Name(), dst); err != nil {
				os.Remove(tmp.Name())
				return protocol.Ack{OK: false, Error: err.Error()}
			}
			d.mu.Lock()
			d.received = append(d.received, m.Name)
			d.mu.Unlock()
			d.markDelivered(m.FileID)
			if d.opts.OnFile != nil {
				d.opts.OnFile(m.Name)
			}
			return protocol.Ack{OK: true}
		default:
			return fail(fmt.Sprintf("unexpected %T inside stream", msg))
		}
	}
}

// drainStream consumes a broken stream's remaining chunks so the
// connection returns to message framing before the error Ack.
func drainStream(conn *protocol.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		if _, done := msg.(protocol.DeliverEnd); done {
			return
		}
	}
}

// isDuplicate checks (and records a suppressed hit for) an already
// delivered file id.
func (d *Daemon) isDuplicate(fileID uint64) bool {
	if !d.opts.DedupByID || fileID == 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[fileID] {
		d.dups++
		return true
	}
	return false
}

// markDelivered records a file id after its content is in place.
func (d *Daemon) markDelivered(fileID uint64) {
	if !d.opts.DedupByID || fileID == 0 {
		return
	}
	d.mu.Lock()
	d.seen[fileID] = true
	d.mu.Unlock()
}

func (d *Daemon) handleDeliver(m protocol.Deliver) protocol.Ack {
	if d.isDuplicate(m.FileID) {
		return protocol.Ack{OK: true}
	}
	if crc32.ChecksumIEEE(m.Data) != m.CRC {
		return protocol.Ack{OK: false, Error: "checksum mismatch"}
	}
	rel := filepath.FromSlash(m.Name)
	if filepath.IsAbs(rel) || strings.HasPrefix(filepath.Clean(rel), "..") {
		return protocol.Ack{OK: false, Error: "invalid path"}
	}
	dst := filepath.Join(d.opts.DestDir, rel)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".bistro-rx-*")
	if err != nil {
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	if _, err := tmp.Write(m.Data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	d.mu.Lock()
	d.received = append(d.received, m.Name)
	d.mu.Unlock()
	d.markDelivered(m.FileID)
	if d.opts.OnFile != nil {
		d.opts.OnFile(m.Name)
	}
	return protocol.Ack{OK: true}
}

func (d *Daemon) handleNotify(m protocol.Notify) protocol.Ack {
	d.mu.Lock()
	d.notified = append(d.notified, m)
	d.mu.Unlock()
	if d.opts.OnNotify != nil {
		d.opts.OnNotify(m)
	}
	return protocol.Ack{OK: true}
}

func (d *Daemon) handleTrigger(m protocol.Trigger) protocol.Ack {
	if d.opts.OnTrigger != nil {
		if err := d.opts.OnTrigger(m.Command, m.Paths); err != nil {
			return protocol.Ack{OK: false, Error: err.Error()}
		}
		return protocol.Ack{OK: true}
	}
	if !d.opts.AllowTriggers {
		return protocol.Ack{OK: false, Error: "triggers not allowed"}
	}
	out, err := exec.Command("/bin/sh", "-c", m.Command).CombinedOutput()
	if err != nil {
		return protocol.Ack{OK: false, Error: fmt.Sprintf("%v: %s", err, strings.TrimSpace(string(out)))}
	}
	return protocol.Ack{OK: true}
}

// Received returns the pushed file names so far.
func (d *Daemon) Received() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.received))
	copy(out, d.received)
	return out
}

// DuplicatesSuppressed reports how many re-deliveries DedupByID
// swallowed (acknowledged without rewriting).
func (d *Daemon) DuplicatesSuppressed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dups
}

// Notifications returns the notifications received so far.
func (d *Daemon) Notifications() []protocol.Notify {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]protocol.Notify, len(d.notified))
	copy(out, d.notified)
	return out
}
