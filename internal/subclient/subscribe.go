package subclient

import (
	"fmt"
	"time"

	"bistro/internal/protocol"
)

// SubscribeSpec describes a runtime subscription request.
type SubscribeSpec struct {
	// Name is the subscriber identity (delivery receipts key on it).
	Name string
	// Host is this daemon's listen address the server should push to;
	// empty requests local-directory delivery at Dest on the server
	// host.
	Host string
	// Dest is the destination path prefix.
	Dest string
	// Feeds are feed or feed-group paths.
	Feeds []string
	// From, when non-zero, asks for historical replay from the archive:
	// SUBSCRIBE ... FROM <ts>.
	From time.Time
	// Class is the scheduling class hint ("interactive", "bulk").
	Class string
}

// Subscribe registers spec with the Bistro server at serverAddr,
// returning once the server has accepted the subscription (and, for a
// FROM request, started the replay session).
func Subscribe(serverAddr string, spec SubscribeSpec, timeout time.Duration) error {
	if spec.Name == "" {
		return fmt.Errorf("subclient: subscribe: name required")
	}
	if len(spec.Feeds) == 0 {
		return fmt.Errorf("subclient: subscribe: at least one feed required")
	}
	conn, err := protocol.Dial(serverAddr, timeout)
	if err != nil {
		return fmt.Errorf("subclient: subscribe: %w", err)
	}
	defer conn.Close()
	if err := conn.Call(protocol.Hello{Role: "subscriber", Name: spec.Name}); err != nil {
		return fmt.Errorf("subclient: hello: %w", err)
	}
	if err := conn.Call(protocol.Subscribe{
		Name:  spec.Name,
		Host:  spec.Host,
		Dest:  spec.Dest,
		Feeds: spec.Feeds,
		From:  spec.From,
		Class: spec.Class,
	}); err != nil {
		return fmt.Errorf("subclient: subscribe: %w", err)
	}
	return nil
}
