// Package diskfault is the disk-level analog of internal/netsim: a
// filesystem seam threaded through Bistro's storage path (receipt WAL
// and checkpoints, staging promotion, archive moves, landing deposits)
// so that real code and tests share one I/O surface, plus a
// fault-injecting implementation driven by a seeded RNG.
//
// The fault model covers the failure classes a data feed manager
// actually meets on disks: injected write/sync/rename errors, ENOSPC
// with partial writes, and — the interesting one — a simulated power
// cut. In power-cut mode the Faulty filesystem journals every
// not-yet-durable state change (data beyond the last fsync, creates,
// renames and removes whose parent directory was never fsynced) and,
// on Crash, rolls the real on-disk tree back to exactly the durable
// prefix, optionally tearing the unsynced tail of the last written
// block. Code that survives this model survives a real power cut on a
// POSIX filesystem with strict fsync semantics.
//
// Model simplifications (documented, deliberate):
//   - fsync of a file makes its *data* durable; its directory entry
//     needs a separate SyncDir of the parent (strict POSIX — ext4's
//     auto_da_alloc leniency is NOT assumed, so missing dir syncs are
//     caught).
//   - a rename becomes durable when the destination's parent directory
//     is synced.
//   - truncation is applied immediately and is not rolled back (every
//     truncate in the storage path is followed by an fsync on the same
//     handle before anything depends on it).
//   - directory creation survives crashes (MkdirAll is not journaled).
package diskfault

import (
	"io"
	"os"
	"path/filepath"
)

// File is the file-handle surface Bistro's storage path needs;
// *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Name() string
}

// FS is the filesystem abstraction. All paths are interpreted like the
// corresponding os functions.
type FS interface {
	// OpenFile is the generalized open.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens for reading.
	Open(name string) (File, error)
	// Create truncates or creates for writing.
	Create(name string) (File, error)
	// CreateTemp creates a fresh temp file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making its entries (creates, renames,
	// removes) durable.
	SyncDir(dir string) error
}

// osFS is the passthrough implementation backed by the real
// filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// nosyncFS wraps an FS making every Sync and SyncDir a no-op — for
// tests and simulations where durability is irrelevant and fsync cost
// is not.
type nosyncFS struct{ FS }

// NoSync returns fsys with all syncs disabled.
func NoSync(fsys FS) FS { return nosyncFS{fsys} }

func (n nosyncFS) SyncDir(string) error { return nil }

func (n nosyncFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := n.FS.OpenFile(name, flag, perm)
	return nosyncFile{f}, err
}
func (n nosyncFS) Open(name string) (File, error) {
	f, err := n.FS.Open(name)
	return nosyncFile{f}, err
}
func (n nosyncFS) Create(name string) (File, error) {
	f, err := n.FS.Create(name)
	return nosyncFile{f}, err
}
func (n nosyncFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := n.FS.CreateTemp(dir, pattern)
	return nosyncFile{f}, err
}

type nosyncFile struct{ File }

func (f nosyncFile) Sync() error { return nil }

// WriteFile writes data to name via fsys (no fsync — callers that need
// durability sync explicitly).
func WriteFile(fsys FS, name string, data []byte, perm os.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// ReadFile reads the whole of name via fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteDurable writes data and makes it fully durable: file contents
// fsynced, then the parent directory entry fsynced.
func WriteDurable(fsys FS, name string, data []byte, perm os.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(name))
}
