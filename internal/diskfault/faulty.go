package diskfault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Injected error sentinels; callers classify with errors.Is.
var (
	// ErrCrashed is returned by every operation after the simulated
	// power cut fires.
	ErrCrashed = errors.New("diskfault: simulated power failure")
	// ErrInjectedWrite is a transient injected write error.
	ErrInjectedWrite = errors.New("diskfault: injected write error")
	// ErrInjectedSync is a transient injected fsync error.
	ErrInjectedSync = errors.New("diskfault: injected sync error")
	// ErrInjectedRename is a transient injected rename error.
	ErrInjectedRename = errors.New("diskfault: injected rename error")
	// ErrNoSpace is an injected out-of-space error (after a partial
	// write, like the real thing).
	ErrNoSpace = errors.New("diskfault: injected ENOSPC (no space left on device)")
)

// Options configure a Faulty filesystem. All probabilities are per
// operation and drawn from the seeded RNG, so a run is reproducible
// given the same seed and operation order.
type Options struct {
	// Seed feeds the RNG (0 uses a fixed default).
	Seed int64
	// WriteErrProb is the probability a Write fails outright (nothing
	// written).
	WriteErrProb float64
	// SyncErrProb is the probability a Sync or SyncDir fails (and does
	// not make anything durable).
	SyncErrProb float64
	// RenameErrProb is the probability a Rename fails (not performed).
	RenameErrProb float64
	// ENOSPCProb is the probability a Write hits ENOSPC after writing a
	// random prefix.
	ENOSPCProb float64
	// PowerCut enables durability tracking: Crash (or the CrashAfter
	// trigger) rolls the on-disk tree back to the fsync-covered state.
	PowerCut bool
	// TornWrites lets Crash keep a garbled prefix of the unsynced tail
	// of a file instead of discarding it cleanly — the torn-block
	// behaviour of real disks. Checksummed formats must detect this.
	TornWrites bool
	// LieSyncSubstr, when non-empty, makes Sync/SyncDir on any path
	// containing the substring succeed WITHOUT recording durability —
	// a deliberate reintroduction of the non-durable-rename bug class,
	// used to prove the crash harness can detect it.
	LieSyncSubstr string
}

// metaOp kinds in the durability journal.
const (
	opCreate byte = iota + 1
	opRename
	opRemove
)

// metaOp is one not-yet-durable directory-level change.
type metaOp struct {
	kind byte
	// dir is the directory whose SyncDir makes the op durable.
	dir string
	// path is the created/removed path, or the rename destination.
	path string
	// old is the rename source.
	old string
	// saved holds overwritten or removed content for crash rollback.
	saved    []byte
	hasSaved bool
}

// fileState tracks one path's durable length.
type fileState struct {
	size   int64 // current length as written through this FS
	synced int64 // length covered by the last successful fsync
}

// Faulty wraps a base filesystem with fault injection and power-cut
// simulation. Safe for concurrent use.
type Faulty struct {
	base FS
	opts Options

	mu         sync.Mutex
	rng        *rand.Rand
	crashed    bool
	crashAfter int64 // countdown of mutating ops until crash; 0 = disarmed
	files      map[string]*fileState
	journal    []metaOp
	injected   int
	ops        int64
}

// NewFaulty wraps base (usually OS()) with the configured faults.
func NewFaulty(base FS, opts Options) *Faulty {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Faulty{
		base:  base,
		opts:  opts,
		rng:   rand.New(rand.NewSource(seed)),
		files: make(map[string]*fileState),
	}
}

// SetCrashAfter arms the power cut: the n-th subsequent mutating
// operation (write, sync, rename, remove, create) fails with
// ErrCrashed and every operation after it refuses. n <= 0 disarms.
func (f *Faulty) SetCrashAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfter = n
}

// Crashed reports whether the power cut has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns how many mutating operations have been issued (useful
// for sizing SetCrashAfter windows).
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// InjectedErrors returns how many transient errors were injected.
func (f *Faulty) InjectedErrors() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// countOp ticks the crash countdown. Returns true when this operation
// is the one the power cut interrupts (or the cut already happened).
// Caller holds f.mu.
func (f *Faulty) countOp() bool {
	if f.crashed {
		return true
	}
	f.ops++
	if f.crashAfter > 0 {
		f.crashAfter--
		if f.crashAfter == 0 {
			f.crashed = true
			return true
		}
	}
	return false
}

// roll draws an injection decision. Caller holds f.mu.
func (f *Faulty) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if f.rng.Float64() < p {
		f.injected++
		return true
	}
	return false
}

func (f *Faulty) lying(path string) bool {
	return f.opts.LieSyncSubstr != "" && strings.Contains(path, f.opts.LieSyncSubstr)
}

// state returns (creating if needed) the durability state for path.
// Caller holds f.mu.
func (f *Faulty) state(path string, size int64) *fileState {
	st := f.files[path]
	if st == nil {
		st = &fileState{size: size, synced: size}
		f.files[path] = st
	}
	return st
}

// snapshot reads a file's current content through the base FS for
// crash rollback. Caller holds f.mu.
func (f *Faulty) snapshot(path string) ([]byte, bool) {
	data, err := ReadFile(f.base, path)
	if err != nil {
		return nil, false
	}
	return data, true
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = filepath.Clean(name)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR|os.O_APPEND|os.O_CREATE|os.O_TRUNC) != 0
	var existed bool
	var size int64
	if f.opts.PowerCut && writable {
		if st, err := f.base.Stat(name); err == nil {
			existed = true
			size = st.Size()
		}
	}
	bf, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	ff := &faultyFile{fs: f, f: bf, path: name}
	if f.opts.PowerCut && writable {
		switch {
		case !existed:
			// A brand-new file: both the entry and all data are volatile.
			f.journal = append(f.journal, metaOp{kind: opCreate, dir: filepath.Dir(name), path: name})
			f.files[name] = &fileState{}
			ff.st = f.files[name]
		case flag&os.O_TRUNC != 0:
			// Truncating an existing file destroys durable content: save
			// it so a crash before the replacing dir sync can restore it.
			saved, ok := f.snapshot(name)
			f.journal = append(f.journal, metaOp{kind: opCreate, dir: filepath.Dir(name), path: name, saved: saved, hasSaved: ok})
			f.files[name] = &fileState{}
			ff.st = f.files[name]
		default:
			ff.st = f.state(name, size)
		}
		if flag&os.O_APPEND != 0 {
			ff.off = ff.st.size
		}
	}
	return ff, nil
}

func (f *Faulty) Open(name string) (File, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.base.Open(filepath.Clean(name))
}

func (f *Faulty) Create(name string) (File, error) {
	return f.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	if f.countOp() {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.mu.Unlock()
	bf, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	name := filepath.Clean(bf.Name())
	f.mu.Lock()
	defer f.mu.Unlock()
	ff := &faultyFile{fs: f, f: bf, path: name}
	if f.opts.PowerCut {
		f.journal = append(f.journal, metaOp{kind: opCreate, dir: filepath.Dir(name), path: name})
		f.files[name] = &fileState{}
		ff.st = f.files[name]
	}
	return ff, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	f.mu.Lock()
	if f.countOp() {
		f.mu.Unlock()
		return ErrCrashed
	}
	if f.roll(f.opts.RenameErrProb) {
		f.mu.Unlock()
		return fmt.Errorf("rename %s -> %s: %w", oldpath, newpath, ErrInjectedRename)
	}
	op := metaOp{kind: opRename, dir: filepath.Dir(newpath), path: newpath, old: oldpath}
	if f.opts.PowerCut {
		if _, err := f.base.Stat(newpath); err == nil {
			op.saved, op.hasSaved = f.snapshot(newpath)
		}
	}
	f.mu.Unlock()
	if err := f.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opts.PowerCut {
		f.journal = append(f.journal, op)
		if st, ok := f.files[oldpath]; ok {
			f.files[newpath] = st
			delete(f.files, oldpath)
		} else if st, err := f.base.Stat(newpath); err == nil {
			f.files[newpath] = &fileState{size: st.Size(), synced: st.Size()}
		}
	}
	return nil
}

func (f *Faulty) Remove(name string) error {
	name = filepath.Clean(name)
	f.mu.Lock()
	if f.countOp() {
		f.mu.Unlock()
		return ErrCrashed
	}
	var op metaOp
	if f.opts.PowerCut {
		op = metaOp{kind: opRemove, dir: filepath.Dir(name), path: name}
		op.saved, op.hasSaved = f.snapshot(name)
	}
	f.mu.Unlock()
	if err := f.base.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opts.PowerCut {
		f.journal = append(f.journal, op)
		delete(f.files, name)
	}
	return nil
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.base.MkdirAll(path, perm)
}

func (f *Faulty) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.base.Stat(name)
}

func (f *Faulty) SyncDir(dir string) error {
	dir = filepath.Clean(dir)
	f.mu.Lock()
	if f.countOp() {
		f.mu.Unlock()
		return ErrCrashed
	}
	if f.roll(f.opts.SyncErrProb) {
		f.mu.Unlock()
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjectedSync)
	}
	if f.lying(dir) {
		f.mu.Unlock()
		return nil // lies: reports success, journal keeps the ops volatile
	}
	if f.opts.PowerCut {
		// Entries in dir are now durable: drop their journal records.
		kept := f.journal[:0]
		for _, op := range f.journal {
			if op.dir != dir {
				kept = append(kept, op)
			}
		}
		f.journal = kept
	}
	f.mu.Unlock()
	return f.base.SyncDir(dir)
}

// Crash applies the simulated power cut to the real tree: every
// journaled (non-durable) create/rename/remove is rolled back in
// reverse order, then every tracked file is truncated to its last
// fsynced length (optionally keeping a torn prefix of the unsynced
// tail). After Crash the filesystem refuses all further operations;
// recovery code reopens the tree through a fresh FS.
func (f *Faulty) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	if !f.opts.PowerCut {
		return nil
	}
	// Metadata rollback, newest first.
	for i := len(f.journal) - 1; i >= 0; i-- {
		op := f.journal[i]
		switch op.kind {
		case opCreate:
			if op.hasSaved {
				// A durable file was truncated/overwritten in place;
				// restore the old durable content.
				if err := WriteFile(f.base, op.path, op.saved, 0o644); err != nil {
					return fmt.Errorf("diskfault: crash rollback restore %s: %w", op.path, err)
				}
				f.files[op.path] = &fileState{size: int64(len(op.saved)), synced: int64(len(op.saved))}
			} else {
				f.base.Remove(op.path)
				delete(f.files, op.path)
			}
		case opRename:
			if _, err := f.base.Stat(op.path); err == nil {
				if err := f.base.Rename(op.path, op.old); err != nil {
					return fmt.Errorf("diskfault: crash rollback rename %s: %w", op.path, err)
				}
				if st, ok := f.files[op.path]; ok {
					f.files[op.old] = st
					delete(f.files, op.path)
				}
			}
			if op.hasSaved {
				if err := WriteFile(f.base, op.path, op.saved, 0o644); err != nil {
					return fmt.Errorf("diskfault: crash rollback restore %s: %w", op.path, err)
				}
			}
		case opRemove:
			if op.hasSaved {
				if err := f.base.MkdirAll(op.dir, 0o755); err != nil {
					return fmt.Errorf("diskfault: crash rollback mkdir %s: %w", op.dir, err)
				}
				if err := WriteFile(f.base, op.path, op.saved, 0o644); err != nil {
					return fmt.Errorf("diskfault: crash rollback resurrect %s: %w", op.path, err)
				}
			}
		}
	}
	f.journal = nil
	// Data rollback: discard everything beyond the fsync horizon.
	for path, st := range f.files {
		real, err := f.base.Stat(path)
		if err != nil {
			continue // rolled back above, or never materialized
		}
		if real.Size() <= st.synced {
			continue
		}
		keep := st.synced
		if f.opts.TornWrites && real.Size() > st.synced && f.rng.Intn(2) == 0 {
			// A torn tail: some sectors of the in-flight write hit the
			// platter. Keep a random prefix and garble one byte in it so
			// checksummed formats must catch it.
			keep = st.synced + f.rng.Int63n(real.Size()-st.synced+1)
		}
		bf, err := f.base.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("diskfault: crash truncate open %s: %w", path, err)
		}
		if err := bf.Truncate(keep); err != nil {
			bf.Close()
			return fmt.Errorf("diskfault: crash truncate %s: %w", path, err)
		}
		if keep > st.synced {
			// Garble one byte inside the torn region.
			pos := st.synced + f.rng.Int63n(keep-st.synced)
			if _, err := bf.Seek(pos, io.SeekStart); err == nil {
				bf.Write([]byte{byte(f.rng.Intn(256))})
			}
		}
		bf.Close()
	}
	f.files = make(map[string]*fileState)
	return nil
}

// faultyFile wraps one handle, tracking the write frontier.
type faultyFile struct {
	fs   *Faulty
	f    File
	path string
	st   *fileState // nil unless power-cut tracking is on
	off  int64
}

func (ff *faultyFile) Name() string { return ff.f.Name() }

func (ff *faultyFile) Read(p []byte) (int, error) {
	ff.fs.mu.Lock()
	crashed := ff.fs.crashed
	ff.fs.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	n, err := ff.f.Read(p)
	ff.off += int64(n)
	return n, err
}

func (ff *faultyFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := ff.f.Seek(offset, whence)
	if err == nil {
		ff.off = pos
	}
	return pos, err
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	if fs.countOp() {
		// The power dies during this write: a random prefix may reach
		// the disk surface before the cut.
		n := 0
		if len(p) > 0 {
			n = fs.rng.Intn(len(p) + 1)
		}
		fs.mu.Unlock()
		if n > 0 {
			ff.f.Write(p[:n])
			fs.mu.Lock()
			if ff.st != nil {
				if end := ff.off + int64(n); end > ff.st.size {
					ff.st.size = end
				}
			}
			fs.mu.Unlock()
		}
		return 0, ErrCrashed
	}
	if fs.roll(fs.opts.WriteErrProb) {
		fs.mu.Unlock()
		return 0, fmt.Errorf("write %s: %w", ff.path, ErrInjectedWrite)
	}
	if fs.roll(fs.opts.ENOSPCProb) {
		n := 0
		if len(p) > 0 {
			n = fs.rng.Intn(len(p))
		}
		fs.mu.Unlock()
		if n > 0 {
			n, _ = ff.f.Write(p[:n])
			fs.mu.Lock()
			ff.off += int64(n)
			if ff.st != nil && ff.off > ff.st.size {
				ff.st.size = ff.off
			}
			fs.mu.Unlock()
		}
		return n, fmt.Errorf("write %s: %w", ff.path, ErrNoSpace)
	}
	fs.mu.Unlock()
	n, err := ff.f.Write(p)
	fs.mu.Lock()
	ff.off += int64(n)
	if ff.st != nil && ff.off > ff.st.size {
		ff.st.size = ff.off
	}
	fs.mu.Unlock()
	return n, err
}

func (ff *faultyFile) Truncate(size int64) error {
	fs := ff.fs
	fs.mu.Lock()
	if fs.countOp() {
		fs.mu.Unlock()
		return ErrCrashed
	}
	fs.mu.Unlock()
	if err := ff.f.Truncate(size); err != nil {
		return err
	}
	fs.mu.Lock()
	if ff.st != nil {
		ff.st.size = size
		if ff.st.synced > size {
			ff.st.synced = size
		}
	}
	fs.mu.Unlock()
	return nil
}

func (ff *faultyFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	if fs.countOp() {
		fs.mu.Unlock()
		return ErrCrashed
	}
	if fs.roll(fs.opts.SyncErrProb) {
		fs.mu.Unlock()
		return fmt.Errorf("sync %s: %w", ff.path, ErrInjectedSync)
	}
	if fs.lying(ff.path) {
		fs.mu.Unlock()
		return nil // lies: data stays volatile
	}
	fs.mu.Unlock()
	if err := ff.f.Sync(); err != nil {
		return err
	}
	fs.mu.Lock()
	if ff.st != nil {
		ff.st.synced = ff.st.size
	}
	fs.mu.Unlock()
	return nil
}

func (ff *faultyFile) Close() error { return ff.f.Close() }
