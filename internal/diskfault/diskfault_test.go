package diskfault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	p := filepath.Join(dir, "a.txt")
	if err := WriteDurable(fsys, p, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fsys, p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := fsys.Rename(p, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
}

// An unsynced write vanishes at the crash; a synced one survives.
func TestPowerCutDiscardsUnsyncedData(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Options{PowerCut: true})
	p := filepath.Join(dir, "wal")
	f, err := fsys.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fsys.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, p); string(got) != "durable" {
		t.Fatalf("after crash: %q, want %q", got, "durable")
	}
	if _, err := fsys.Open(p); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: %v, want ErrCrashed", err)
	}
}

// A create whose directory was never synced is rolled back entirely.
func TestPowerCutRollsBackUnsyncedCreate(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Options{PowerCut: true})
	p := filepath.Join(dir, "new.txt")
	f, err := fsys.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	f.Sync() // data synced, but the dir entry never is
	f.Close()
	if err := fsys.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("unsynced create survived crash: %v", err)
	}
}

// The promote idiom (temp + fsync + rename + dir sync) survives; the
// same sequence without the dir sync does not.
func TestPowerCutRenameDurability(t *testing.T) {
	for _, dirSync := range []bool{true, false} {
		dir := t.TempDir()
		fsys := NewFaulty(OS(), Options{PowerCut: true})
		tmp, err := fsys.CreateTemp(dir, ".tmp-*")
		if err != nil {
			t.Fatal(err)
		}
		tmp.Write([]byte("payload"))
		if err := tmp.Sync(); err != nil {
			t.Fatal(err)
		}
		tmpName := tmp.Name()
		tmp.Close()
		dst := filepath.Join(dir, "final.txt")
		if err := fsys.Rename(tmpName, dst); err != nil {
			t.Fatal(err)
		}
		if dirSync {
			if err := fsys.SyncDir(dir); err != nil {
				t.Fatal(err)
			}
		}
		if err := fsys.Crash(); err != nil {
			t.Fatal(err)
		}
		_, err = os.Stat(dst)
		if dirSync && err != nil {
			t.Fatalf("durable rename lost: %v", err)
		}
		if !dirSync {
			if err == nil {
				t.Fatal("non-durable rename survived the crash")
			}
			// The temp file's own dir entry was never synced either, so
			// strict POSIX loses it too: nothing of the promote remains.
			if _, terr := os.Stat(tmpName); terr == nil {
				t.Fatal("unsynced temp create survived the crash")
			}
		}
	}
}

// A rename that overwrote a durable file rolls back to the old
// content when the replacing rename was never made durable.
func TestPowerCutRenameOverwriteRestoresOld(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Options{PowerCut: true})
	dst := filepath.Join(dir, "ckpt")
	if err := WriteDurable(fsys, dst, []byte("old-checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "ckpt.tmp")
	if err := WriteDurable(fsys, src, []byte("new-checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	// no SyncDir: the rename is volatile
	if err := fsys.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, dst); string(got) != "old-checkpoint" {
		t.Fatalf("after crash: %q, want the pre-rename checkpoint", got)
	}
}

// A non-durable remove can resurrect the file at the crash.
func TestPowerCutRemoveResurrects(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Options{PowerCut: true})
	p := filepath.Join(dir, "landing.csv")
	if err := WriteDurable(fsys, p, []byte("rows"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(p); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, p); string(got) != "rows" {
		t.Fatalf("removed file not resurrected: %q", got)
	}
}

// SetCrashAfter interrupts the n-th mutating operation and everything
// after it.
func TestCrashAfterCountdown(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Options{PowerCut: true})
	p := filepath.Join(dir, "f")
	f, err := fsys.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fsys.SetCrashAfter(3)
	if _, err := f.Write([]byte("one")); err != nil { // op 1
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrCrashed) { // op 3: the cut
		t.Fatalf("3rd op: %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-cut op: %v, want ErrCrashed", err)
	}
	if !fsys.Crashed() {
		t.Fatal("not crashed")
	}
}

// Torn writes keep a garbled prefix of the unsynced tail: length may
// exceed the synced horizon but content beyond it is untrustworthy.
func TestPowerCutTornWrites(t *testing.T) {
	torn := false
	for seed := int64(1); seed < 30 && !torn; seed++ {
		dir := t.TempDir()
		fsys := NewFaulty(OS(), Options{PowerCut: true, TornWrites: true, Seed: seed})
		p := filepath.Join(dir, "wal")
		f, err := fsys.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("base"))
		f.Sync()
		fsys.SyncDir(dir)
		f.Write([]byte("unsynced-tail-unsynced-tail"))
		f.Close()
		if err := fsys.Crash(); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, p)
		if len(got) < 4 || string(got[:3]) != "bas" {
			// the garbled byte may land anywhere in the torn region; the
			// synced prefix itself must keep its length
			t.Fatalf("synced prefix truncated: %q", got)
		}
		if len(got) > 4 {
			torn = true
		}
	}
	if !torn {
		t.Fatal("no seed produced a torn tail")
	}
}

// A lying sync reports success but leaves the data volatile — the
// deliberate reintroduction of the non-durable-promote bug.
func TestLieSyncLosesData(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Options{PowerCut: true, LieSyncSubstr: "liar"})
	p := filepath.Join(dir, "liar.dat")
	f, err := fsys.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	if err := f.Sync(); err != nil {
		t.Fatal(err) // reports success
	}
	f.Close()
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Crash(); err != nil {
		t.Fatal(err)
	}
	// The dir entry was made durable by the honest SyncDir... but wait:
	// the create op lives in dir, which contains "liar"? No — the dir
	// itself has no "liar" in its name, so the entry IS durable; only
	// the file's data sync lied, so the content is empty.
	if _, err := os.Stat(p); err == nil {
		if got := readAll(t, p); len(got) != 0 {
			t.Fatalf("lying sync preserved data: %q", got)
		}
	}
}

// Injected errors: ENOSPC yields a partial write; write errors write
// nothing; both are classifiable.
func TestInjectedErrors(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Options{Seed: 7, ENOSPCProb: 1})
	f, err := fsys.OpenFile(filepath.Join(dir, "full"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if n >= 10 {
		t.Fatalf("ENOSPC wrote everything (n=%d)", n)
	}
	f.Close()

	fsys2 := NewFaulty(OS(), Options{Seed: 7, WriteErrProb: 1})
	f2, err := fsys2.OpenFile(filepath.Join(dir, "err"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("x")); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("want injected write error, got %v", err)
	}
	f2.Close()
	if fsys2.InjectedErrors() == 0 {
		t.Fatal("injection not counted")
	}
}

// NoSync wrapping keeps data but never records durability cost — and
// composes with the seam (sanity for test configurations).
func TestNoSyncWrapper(t *testing.T) {
	dir := t.TempDir()
	fsys := NoSync(OS())
	p := filepath.Join(dir, "x")
	f, err := fsys.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("y"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, p); string(got) != "y" {
		t.Fatalf("data lost: %q", got)
	}
}

// Seek-aware write-frontier tracking: appends after a replay-style
// seek extend the synced horizon correctly.
func TestSeekTracking(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Options{PowerCut: true})
	p := filepath.Join(dir, "wal")
	f, err := fsys.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("0123456789"))
	f.Sync()
	fsys.SyncDir(dir)
	// replay-style: seek to start, read, seek to end, append, sync
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	io.ReadFull(f, buf)
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("ABCDE"))
	f.Sync()
	f.Close()
	if err := fsys.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, p); string(got) != "0123456789ABCDE" {
		t.Fatalf("synced append lost: %q", got)
	}
}
