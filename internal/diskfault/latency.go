package diskfault

import (
	"os"
	"time"
)

// latencyFS wraps an FS adding a fixed delay to every Sync and
// SyncDir — a model of real fsync cost for experiments that measure
// how batching and parallelism amortize it (E14). Unlike NoSync it
// changes nothing about durability; unlike Faulty it injects no
// failures, so measured differences come purely from how many fsyncs
// the code under test issues and how many proceed concurrently.
type latencyFS struct {
	FS
	d time.Duration
}

// Latency returns fsys with every fsync (file and directory) taking at
// least d of wall time.
func Latency(fsys FS, d time.Duration) FS { return latencyFS{fsys, d} }

func (l latencyFS) SyncDir(dir string) error {
	time.Sleep(l.d)
	return l.FS.SyncDir(dir)
}

func (l latencyFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := l.FS.OpenFile(name, flag, perm)
	return latencyFile{f, l.d}, err
}
func (l latencyFS) Open(name string) (File, error) {
	f, err := l.FS.Open(name)
	return latencyFile{f, l.d}, err
}
func (l latencyFS) Create(name string) (File, error) {
	f, err := l.FS.Create(name)
	return latencyFile{f, l.d}, err
}
func (l latencyFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := l.FS.CreateTemp(dir, pattern)
	return latencyFile{f, l.d}, err
}

type latencyFile struct {
	File
	d time.Duration
}

func (f latencyFile) Sync() error {
	time.Sleep(f.d)
	return f.File.Sync()
}
