// Package clock provides an injectable time source so that every
// time-dependent Bistro component (schedulers, batch detectors, retry
// policies, expiry windows) can run either against the wall clock or
// inside a deterministic simulation.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source abstraction used throughout Bistro.
// The zero value is not usable; construct a Real or Simulated clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time
	// after d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
	// NewTimer returns a timer firing after d.
	NewTimer(d time.Duration) Timer
}

// Timer mirrors the subset of time.Timer Bistro uses.
type Timer interface {
	// C returns the channel on which the timer fires.
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the
	// timer was still pending.
	Stop() bool
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// NewReal returns a wall-clock Clock.
func NewReal() Real { return Real{} }

func (Real) Now() time.Time                         { return time.Now() }
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (Real) Sleep(d time.Duration)                  { time.Sleep(d) }
func (Real) NewTimer(d time.Duration) Timer         { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }
func (rt realTimer) Stop() bool          { return rt.t.Stop() }

// Simulated is a deterministic Clock whose time only moves when Advance
// is called. Timers fire synchronously during Advance in timestamp
// order, which makes scheduler and batching experiments reproducible.
type Simulated struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    int64
}

// NewSimulated returns a simulated clock starting at start.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Now returns the current simulated time.
func (s *Simulated) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves simulated time forward by d, firing every timer whose
// deadline falls within the advanced window, in deadline order.
func (s *Simulated) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	for len(s.timers) > 0 && !s.timers[0].when.After(target) {
		t := heap.Pop(&s.timers).(*simTimer)
		if t.stopped {
			continue
		}
		s.now = t.when
		t.fired = true
		ch := t.ch
		when := t.when
		s.mu.Unlock()
		ch <- when
		s.mu.Lock()
	}
	s.now = target
	s.mu.Unlock()
}

// AdvanceTo moves simulated time to t (no-op if t is in the past).
func (s *Simulated) AdvanceTo(t time.Time) {
	s.mu.Lock()
	now := s.now
	s.mu.Unlock()
	if t.After(now) {
		s.Advance(t.Sub(now))
	}
}

// After returns a channel that fires when the simulation advances past d.
func (s *Simulated) After(d time.Duration) <-chan time.Time {
	return s.NewTimer(d).C()
}

// Sleep blocks the calling goroutine until the simulation advances past d.
// It must be paired with Advance calls from another goroutine.
func (s *Simulated) Sleep(d time.Duration) { <-s.After(d) }

// NewTimer returns a timer firing once the simulation has advanced by d.
func (s *Simulated) NewTimer(d time.Duration) Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &simTimer{
		clock: s,
		when:  s.now.Add(d),
		ch:    make(chan time.Time, 1),
		seq:   s.seq,
	}
	s.seq++
	heap.Push(&s.timers, t)
	return t
}

// PendingTimers reports how many unfired, unstopped timers exist.
// Useful in tests asserting that components cleaned up after themselves.
func (s *Simulated) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.timers {
		if !t.stopped && !t.fired {
			n++
		}
	}
	return n
}

type simTimer struct {
	clock   *Simulated
	when    time.Time
	ch      chan time.Time
	seq     int64
	index   int
	stopped bool
	fired   bool
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

func (t *simTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// timerHeap orders timers by deadline, then creation order for
// determinism among equal deadlines.
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
