package clock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

func TestSimulatedNow(t *testing.T) {
	c := NewSimulated(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	c.Advance(90 * time.Second)
	if got := c.Now(); !got.Equal(epoch.Add(90 * time.Second)) {
		t.Fatalf("Now() after Advance = %v", got)
	}
}

func TestSimulatedTimerFireTimes(t *testing.T) {
	c := NewSimulated(epoch)
	durations := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	chans := make([]<-chan time.Time, len(durations))
	for i, d := range durations {
		chans[i] = c.After(d)
	}
	c.Advance(5 * time.Second)
	for i, ch := range chans {
		select {
		case got := <-ch:
			want := epoch.Add(durations[i])
			if !got.Equal(want) {
				t.Errorf("timer %d fired at %v, want %v", i, got, want)
			}
		default:
			t.Errorf("timer %d did not fire", i)
		}
	}
	if got := c.PendingTimers(); got != 0 {
		t.Errorf("PendingTimers = %d after all fired", got)
	}
}

func TestSimulatedTimerStop(t *testing.T) {
	c := NewSimulated(epoch)
	tm := c.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should return true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should return false")
	}
	c.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestSimulatedAdvanceTo(t *testing.T) {
	c := NewSimulated(epoch)
	target := epoch.Add(time.Hour)
	c.AdvanceTo(target)
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo: now = %v, want %v", c.Now(), target)
	}
	// Moving to the past is a no-op.
	c.AdvanceTo(epoch)
	if !c.Now().Equal(target) {
		t.Fatalf("AdvanceTo past moved the clock: %v", c.Now())
	}
}

func TestSimulatedEqualDeadlinesFireInCreationOrder(t *testing.T) {
	c := NewSimulated(epoch)
	const n = 8
	chans := make([]<-chan time.Time, n)
	for i := range chans {
		chans[i] = c.After(time.Second)
	}
	done := make(chan int, n)
	var wg sync.WaitGroup
	for i, ch := range chans {
		wg.Add(1)
		go func(i int, ch <-chan time.Time) {
			defer wg.Done()
			<-ch
			done <- i
		}(i, ch)
	}
	time.Sleep(10 * time.Millisecond)
	c.Advance(time.Second)
	wg.Wait()
	close(done)
	seen := map[int]bool{}
	for i := range done {
		seen[i] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d of %d timers fired", len(seen), n)
	}
}

func TestPendingTimers(t *testing.T) {
	c := NewSimulated(epoch)
	t1 := c.NewTimer(time.Second)
	c.NewTimer(2 * time.Second)
	if got := c.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers = %d, want 2", got)
	}
	t1.Stop()
	if got := c.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers after stop = %d, want 1", got)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("real Now() too old: %v", now)
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	c.Sleep(time.Millisecond)
}
