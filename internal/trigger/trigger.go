// Package trigger implements Bistro's notification/trigger engine
// (SIGMOD'11 §4.1). Subscribers register a lightweight program to be
// invoked when new feed data is available, either per delivered file
// or per batch (with count/timeout/punctuation batch detection
// delegated to the batch package). Triggers run locally on the Bistro
// server or remotely on the subscriber host, whichever the
// configuration requests — the Invoker abstraction carries out the
// actual execution so the server, tests, and simulations can each
// supply their own.
package trigger

import (
	"fmt"
	"os/exec"
	"strings"
	"sync"
	"time"

	"bistro/internal/batch"
	"bistro/internal/clock"
	"bistro/internal/config"
	"bistro/internal/metrics"
)

// Metrics holds the trigger engine's instrumentation. Nil (or any nil
// field) disables that series.
type Metrics struct {
	// Fired counts trigger invocations attempted.
	Fired *metrics.Counter
	// Failures counts invocations whose command failed.
	Failures *metrics.Counter
}

// NewMetrics registers the trigger metric families on r using the
// canonical names catalogued in docs/OBSERVABILITY.md.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Fired:    r.Counter("bistro_trigger_fired_total", "Trigger invocations attempted."),
		Failures: r.Counter("bistro_trigger_failures_total", "Trigger invocations that failed."),
	}
}

// Invocation is one rendered trigger firing.
type Invocation struct {
	// Subscriber and Feed identify the stream that fired.
	Subscriber string
	Feed       string
	// Command is the command line with %f expanded.
	Command string
	// Paths are the delivered file paths in the batch (length 1 for
	// per-file triggers).
	Paths []string
	// Reason is why the batch closed (ReasonCount for per-file).
	Reason batch.CloseReason
	// At is the firing time.
	At time.Time
	// Remote requests execution on the subscriber host.
	Remote bool
}

// Invoker executes trigger invocations.
type Invoker interface {
	Invoke(inv Invocation) error
}

// InvokerFunc adapts a function to the Invoker interface.
type InvokerFunc func(inv Invocation) error

// Invoke calls f.
func (f InvokerFunc) Invoke(inv Invocation) error { return f(inv) }

// ExecInvoker runs local trigger commands through the shell. Remote
// invocations are rejected — the server routes those through the
// delivery protocol instead.
type ExecInvoker struct{}

// Invoke runs the command via /bin/sh -c.
func (ExecInvoker) Invoke(inv Invocation) error {
	if inv.Remote {
		return fmt.Errorf("trigger: ExecInvoker cannot run remote trigger for %s", inv.Subscriber)
	}
	cmd := exec.Command("/bin/sh", "-c", inv.Command)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("trigger: %s for %s failed: %w (output: %s)",
			inv.Command, inv.Subscriber, err, strings.TrimSpace(string(out)))
	}
	return nil
}

// Engine routes delivered-file events into per-(subscriber, feed)
// batch detectors and fires rendered invocations.
type Engine struct {
	clk     clock.Clock
	invoker Invoker
	// OnError, when set, receives trigger execution failures; they are
	// otherwise dropped (a failing subscriber script must not wedge
	// delivery).
	OnError func(inv Invocation, err error)
	// Metrics, when non-nil, counts firings and failures. Set it before
	// the first delivery.
	Metrics *Metrics

	mu        sync.Mutex
	detectors map[string]*detectorEntry
}

type detectorEntry struct {
	det  *batch.Detector
	spec config.TriggerSpec
}

// NewEngine returns a trigger engine using clk for batch timeouts.
func NewEngine(clk clock.Clock, invoker Invoker) *Engine {
	return &Engine{
		clk:       clk,
		invoker:   invoker,
		detectors: make(map[string]*detectorEntry),
	}
}

func key(sub, feed string) string { return sub + "\x00" + feed }

// FileDelivered reports a delivered file for trigger processing.
func (e *Engine) FileDelivered(sub, feed string, spec config.TriggerSpec, f batch.File) {
	switch spec.Mode {
	case config.TriggerNone:
		return
	case config.TriggerPerFile:
		e.fire(sub, feed, spec, batch.Batch{
			Files:  []batch.File{f},
			Opened: f.Arrived,
			Closed: e.clk.Now(),
			Reason: batch.ReasonCount,
		})
	case config.TriggerBatch:
		e.detector(sub, feed, spec).Add(f)
	}
}

// Punctuate closes the open batch for (sub, feed) in response to a
// source end-of-batch marker propagated downstream.
func (e *Engine) Punctuate(sub, feed string) {
	e.mu.Lock()
	ent := e.detectors[key(sub, feed)]
	e.mu.Unlock()
	if ent != nil {
		ent.det.Punctuate()
	}
}

// PunctuateFeed closes open batches for every subscriber of feed.
func (e *Engine) PunctuateFeed(feed string) {
	e.mu.Lock()
	var ents []*detectorEntry
	for k, ent := range e.detectors {
		if strings.HasSuffix(k, "\x00"+feed) {
			ents = append(ents, ent)
		}
	}
	e.mu.Unlock()
	for _, ent := range ents {
		ent.det.Punctuate()
	}
}

// Flush closes every open batch (server drain/shutdown).
func (e *Engine) Flush() {
	e.mu.Lock()
	ents := make([]*detectorEntry, 0, len(e.detectors))
	for _, ent := range e.detectors {
		ents = append(ents, ent)
	}
	e.mu.Unlock()
	for _, ent := range ents {
		ent.det.Flush()
	}
}

// detector returns (creating if needed) the batch detector for a
// (subscriber, feed) stream.
func (e *Engine) detector(sub, feed string, spec config.TriggerSpec) *batch.Detector {
	k := key(sub, feed)
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.detectors[k]; ok {
		return ent.det
	}
	det := batch.NewDetector(
		batch.Spec{Count: spec.Count, Timeout: spec.Timeout},
		e.clk,
		func(b batch.Batch) { e.fire(sub, feed, spec, b) },
	)
	e.detectors[k] = &detectorEntry{det: det, spec: spec}
	return det
}

// fire renders and executes one invocation.
func (e *Engine) fire(sub, feed string, spec config.TriggerSpec, b batch.Batch) {
	paths := make([]string, len(b.Files))
	for i, f := range b.Files {
		paths[i] = f.Name
	}
	inv := Invocation{
		Subscriber: sub,
		Feed:       feed,
		Command:    RenderCommand(spec.Exec, paths),
		Paths:      paths,
		Reason:     b.Reason,
		At:         b.Closed,
		Remote:     spec.Remote,
	}
	if m := e.Metrics; m != nil {
		m.Fired.Inc()
	}
	if err := e.invoker.Invoke(inv); err != nil {
		if m := e.Metrics; m != nil {
			m.Failures.Inc()
		}
		if e.OnError != nil {
			e.OnError(inv, err)
		}
	}
}

// RenderCommand expands %f in a trigger command template to the
// space-joined delivered paths ("%%" yields a literal percent).
func RenderCommand(tmpl string, paths []string) string {
	joined := strings.Join(paths, " ")
	var b strings.Builder
	for i := 0; i < len(tmpl); i++ {
		if tmpl[i] == '%' && i+1 < len(tmpl) {
			switch tmpl[i+1] {
			case 'f':
				b.WriteString(joined)
				i++
				continue
			case '%':
				b.WriteByte('%')
				i++
				continue
			}
		}
		b.WriteByte(tmpl[i])
	}
	return b.String()
}
