package trigger

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bistro/internal/batch"
	"bistro/internal/clock"
	"bistro/internal/config"
)

var t0 = time.Date(2011, 6, 12, 10, 0, 0, 0, time.UTC)

type recorder struct {
	mu   sync.Mutex
	invs []Invocation
}

func (r *recorder) Invoke(inv Invocation) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.invs = append(r.invs, inv)
	return nil
}

func (r *recorder) get() []Invocation {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Invocation, len(r.invs))
	copy(out, r.invs)
	return out
}

func f(name string, at time.Time) batch.File {
	return batch.File{Name: name, Arrived: at, DataTime: at}
}

func TestPerFileTrigger(t *testing.T) {
	clk := clock.NewSimulated(t0)
	rec := &recorder{}
	e := NewEngine(clk, rec)
	spec := config.TriggerSpec{Mode: config.TriggerPerFile, Exec: "load %f"}
	e.FileDelivered("viz", "CPU", spec, f("a.csv", t0))
	e.FileDelivered("viz", "CPU", spec, f("b.csv", t0))
	invs := rec.get()
	if len(invs) != 2 {
		t.Fatalf("invocations = %d, want 2", len(invs))
	}
	if invs[0].Command != "load a.csv" || invs[1].Command != "load b.csv" {
		t.Fatalf("commands = %q, %q", invs[0].Command, invs[1].Command)
	}
}

func TestBatchTriggerCount(t *testing.T) {
	clk := clock.NewSimulated(t0)
	rec := &recorder{}
	e := NewEngine(clk, rec)
	spec := config.TriggerSpec{Mode: config.TriggerBatch, Count: 3, Exec: "load %f"}
	for _, n := range []string{"p1.csv", "p2.csv", "p3.csv"} {
		e.FileDelivered("wh", "BPS", spec, f(n, t0))
	}
	invs := rec.get()
	if len(invs) != 1 {
		t.Fatalf("invocations = %d, want 1", len(invs))
	}
	if invs[0].Command != "load p1.csv p2.csv p3.csv" {
		t.Fatalf("command = %q", invs[0].Command)
	}
	if invs[0].Reason != batch.ReasonCount {
		t.Fatalf("reason = %v", invs[0].Reason)
	}
}

func TestBatchTriggerIsolatedPerSubscriberAndFeed(t *testing.T) {
	clk := clock.NewSimulated(t0)
	rec := &recorder{}
	e := NewEngine(clk, rec)
	spec := config.TriggerSpec{Mode: config.TriggerBatch, Count: 2, Exec: "x %f"}
	e.FileDelivered("a", "BPS", spec, f("1", t0))
	e.FileDelivered("b", "BPS", spec, f("2", t0))
	e.FileDelivered("a", "PPS", spec, f("3", t0))
	if len(rec.get()) != 0 {
		t.Fatal("streams bled into each other")
	}
	e.FileDelivered("a", "BPS", spec, f("4", t0))
	invs := rec.get()
	if len(invs) != 1 || invs[0].Subscriber != "a" || invs[0].Feed != "BPS" {
		t.Fatalf("invs = %+v", invs)
	}
}

func TestPunctuateClosesBatch(t *testing.T) {
	clk := clock.NewSimulated(t0)
	rec := &recorder{}
	e := NewEngine(clk, rec)
	spec := config.TriggerSpec{Mode: config.TriggerBatch, Count: 100, Timeout: time.Hour, Exec: "x %f"}
	e.FileDelivered("wh", "BPS", spec, f("1", t0))
	e.Punctuate("wh", "BPS")
	invs := rec.get()
	if len(invs) != 1 || invs[0].Reason != batch.ReasonPunctuation {
		t.Fatalf("invs = %+v", invs)
	}
	// Punctuating an unknown stream is a no-op.
	e.Punctuate("nobody", "BPS")
}

func TestPunctuateFeedHitsAllSubscribers(t *testing.T) {
	clk := clock.NewSimulated(t0)
	rec := &recorder{}
	e := NewEngine(clk, rec)
	spec := config.TriggerSpec{Mode: config.TriggerBatch, Count: 100, Exec: "x %f"}
	e.FileDelivered("a", "BPS", spec, f("1", t0))
	e.FileDelivered("b", "BPS", spec, f("2", t0))
	e.FileDelivered("c", "PPS", spec, f("3", t0))
	e.PunctuateFeed("BPS")
	invs := rec.get()
	if len(invs) != 2 {
		t.Fatalf("invs = %+v", invs)
	}
}

func TestTimeoutTriggerWithSimulatedClock(t *testing.T) {
	clk := clock.NewSimulated(t0)
	rec := &recorder{}
	e := NewEngine(clk, rec)
	spec := config.TriggerSpec{Mode: config.TriggerBatch, Count: 3, Timeout: 10 * time.Minute, Exec: "x %f"}
	e.FileDelivered("wh", "BPS", spec, f("1", clk.Now()))
	e.FileDelivered("wh", "BPS", spec, f("2", clk.Now()))
	clk.Advance(10 * time.Minute)
	deadline := time.Now().Add(2 * time.Second)
	for len(rec.get()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	invs := rec.get()
	if len(invs) != 1 || invs[0].Reason != batch.ReasonTimeout || len(invs[0].Paths) != 2 {
		t.Fatalf("invs = %+v", invs)
	}
}

func TestFlush(t *testing.T) {
	clk := clock.NewSimulated(t0)
	rec := &recorder{}
	e := NewEngine(clk, rec)
	spec := config.TriggerSpec{Mode: config.TriggerBatch, Count: 100, Exec: "x %f"}
	e.FileDelivered("a", "BPS", spec, f("1", t0))
	e.FileDelivered("b", "PPS", spec, f("2", t0))
	e.Flush()
	if got := len(rec.get()); got != 2 {
		t.Fatalf("flush fired %d", got)
	}
}

func TestTriggerNoneIsSilent(t *testing.T) {
	clk := clock.NewSimulated(t0)
	rec := &recorder{}
	e := NewEngine(clk, rec)
	e.FileDelivered("a", "BPS", config.TriggerSpec{}, f("1", t0))
	if len(rec.get()) != 0 {
		t.Fatal("TriggerNone fired")
	}
}

func TestOnError(t *testing.T) {
	clk := clock.NewSimulated(t0)
	boom := errors.New("boom")
	e := NewEngine(clk, InvokerFunc(func(Invocation) error { return boom }))
	var mu sync.Mutex
	var failed []Invocation
	e.OnError = func(inv Invocation, err error) {
		if !errors.Is(err, boom) {
			t.Errorf("err = %v", err)
		}
		mu.Lock()
		failed = append(failed, inv)
		mu.Unlock()
	}
	spec := config.TriggerSpec{Mode: config.TriggerPerFile, Exec: "x"}
	e.FileDelivered("a", "BPS", spec, f("1", t0))
	mu.Lock()
	defer mu.Unlock()
	if len(failed) != 1 {
		t.Fatalf("failed = %d", len(failed))
	}
}

func TestRenderCommand(t *testing.T) {
	tests := []struct {
		tmpl  string
		paths []string
		want  string
	}{
		{"load %f", []string{"a", "b"}, "load a b"},
		{"load %f into %f", []string{"x"}, "load x into x"},
		{"echo 100%% %f", []string{"p"}, "echo 100% p"},
		{"noexpand", nil, "noexpand"},
		{"trail%", nil, "trail%"},
	}
	for _, tc := range tests {
		if got := RenderCommand(tc.tmpl, tc.paths); got != tc.want {
			t.Errorf("RenderCommand(%q) = %q, want %q", tc.tmpl, got, tc.want)
		}
	}
}

func TestExecInvokerRunsCommand(t *testing.T) {
	dir := t.TempDir()
	marker := filepath.Join(dir, "fired")
	inv := Invocation{Subscriber: "s", Command: "touch " + marker}
	if err := (ExecInvoker{}).Invoke(inv); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("trigger did not run: %v", err)
	}
}

func TestExecInvokerFailure(t *testing.T) {
	inv := Invocation{Subscriber: "s", Command: "exit 3"}
	if err := (ExecInvoker{}).Invoke(inv); err == nil {
		t.Fatal("expected failure")
	}
}

func TestExecInvokerRejectsRemote(t *testing.T) {
	err := (ExecInvoker{}).Invoke(Invocation{Remote: true, Command: "true"})
	if err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("err = %v", err)
	}
}
