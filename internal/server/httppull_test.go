package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"bistro/internal/workload"
)

const httpPullConfig = `
window 1h
archive "arch"
feed BPS { pattern "BPS_POLLER%i_%Y%m%d%H_%M.csv.gz" }
subscriber wh { dest "in" subscribe BPS retry 20ms }

http {
    listen "127.0.0.1:0"
    principal tool {
        token "t0k3n"
        feed BPS
    }
}
`

type pullPage struct {
	Feed    string `json:"feed"`
	From    uint64 `json:"from"`
	Head    uint64 `json:"head"`
	Next    uint64 `json:"next"`
	Entries []struct {
		Seq      uint64 `json:"seq"`
		Name     string `json:"name"`
		Size     int64  `json:"size"`
		Archived bool   `json:"archived"`
	} `json:"entries"`
}

func pullOnce(t *testing.T, addr, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+addr+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer t0k3n")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestHTTPPullEndToEnd drives the whole wired plane: deposit through
// the landing pipeline, poll the log, fetch content, push a file in
// over HTTP, and read stats.
func TestHTTPPullEndToEnd(t *testing.T) {
	s := newServer(t, httpPullConfig, nil)
	addr := s.HTTPAddr()
	if addr == "" {
		t.Fatal("no HTTP data plane address")
	}
	if err := s.Deposit("BPS_POLLER1_2010092504_51.csv.gz", []byte("a,b\n")); err != nil {
		t.Fatal(err)
	}
	resp, body := pullOnce(t, addr, "/feeds/BPS")
	if resp.StatusCode != 200 {
		t.Fatalf("log status %d: %s", resp.StatusCode, body)
	}
	var page pullPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 1 || page.Entries[0].Name != "BPS_POLLER1_2010092504_51.csv.gz" {
		t.Fatalf("page = %+v", page)
	}
	resp, body = pullOnce(t, addr, fmt.Sprintf("/feeds/BPS/files/%d", page.Entries[0].Seq))
	if resp.StatusCode != 200 || string(body) != "a,b\n" {
		t.Fatalf("content status %d body %q", resp.StatusCode, body)
	}

	// Push a second file in over HTTP: it flows through the same
	// landing -> classify -> staging pipeline and shows up in the log.
	req, err := http.NewRequest("POST", "http://"+addr+"/feeds/BPS?name=BPS_POLLER2_2010092504_52.csv.gz",
		bytes.NewReader([]byte("c,d\n")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer t0k3n")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 201 {
		t.Fatalf("ingest status %d", presp.StatusCode)
	}
	resp, body = pullOnce(t, addr, fmt.Sprintf("/feeds/BPS?from=%d", page.Next))
	if resp.StatusCode != 200 {
		t.Fatalf("second poll status %d", resp.StatusCode)
	}
	var page2 pullPage
	if err := json.Unmarshal(body, &page2); err != nil {
		t.Fatal(err)
	}
	if len(page2.Entries) != 1 || page2.Entries[0].Name != "BPS_POLLER2_2010092504_52.csv.gz" {
		t.Fatalf("page2 = %+v", page2)
	}

	resp, body = pullOnce(t, addr, "/feeds/BPS/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st struct {
		Files int `json:"files"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Files != 2 {
		t.Fatalf("stats = %s", body)
	}

	// Wrong token against the live plane.
	req, _ = http.NewRequest("GET", "http://"+addr+"/feeds/BPS", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	bad, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 401 {
		t.Fatalf("bad token status %d", bad.StatusCode)
	}
}

// TestHTTPChurnExactlyOnce is the race-mode churn guarantee: pollers
// paginating by cursor against live ingest — while expiry archives
// staged files and compaction folds their receipts — observe every
// file id exactly once. The log view must never show a transient hole
// (a poller's cursor passing an id that is momentarily in neither the
// staging window nor the manifest).
func TestHTTPChurnExactlyOnce(t *testing.T) {
	s := newServer(t, httpPullConfig, func(o *Options) { o.ExpiryInterval = -1 })
	addr := s.HTTPAddr()

	start := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	gen := workload.New(9, workload.FeedSpec{
		Name: "BPS", Sources: 3, Period: 5 * time.Minute,
		Convention: workload.ConvUnderscoreTS, SizeBytes: 64,
	})
	files := gen.Window(start, start.Add(time.Hour))

	const pollers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})
	seen := make([]map[uint64]int, pollers)
	for p := 0; p < pollers; p++ {
		seen[p] = make(map[uint64]int)
		wg.Add(1)
		go func(mine map[uint64]int) {
			defer wg.Done()
			var from uint64
			poll := func() int {
				_, body := pullOnce(t, addr, fmt.Sprintf("/feeds/BPS?from=%d&limit=7", from))
				var page pullPage
				if json.Unmarshal(body, &page) != nil {
					return 0
				}
				for _, e := range page.Entries {
					mine[e.Seq]++
				}
				from = page.Next
				return len(page.Entries)
			}
			for {
				select {
				case <-stop:
					// Catch-up: page to the settled head so slow
					// pollers drain the tail.
					for poll() > 0 {
					}
					return
				default:
					poll()
				}
			}
		}(seen[p])
	}

	// Live ingest with expiry + compaction churning underneath: the
	// 2010 data times are ancient against the wall clock, so every
	// file is expiry-eligible the moment it is staged.
	for i, f := range files {
		if err := s.Deposit(f.Name, workload.Payload(f)); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if _, err := s.Archiver().ExpireOnce(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.CompactReceipts(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Compaction folds delivered receipts away as it runs, so the
	// delivered count is not a usable progress signal; wait for the
	// delivery queues to drain instead.
	waitLong(t, "queues drained", func() bool {
		sched := s.Engine().Scheduler()
		for i := range sched.Partitions() {
			if sched.QueueLen(i, 0)+sched.QueueLen(i, 1) > 0 {
				return false
			}
		}
		return true
	})
	if _, err := s.Archiver().ExpireOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompactReceipts(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// The settled log is the reference: every deposited file, by id.
	ref := make(map[uint64]bool)
	for _, e := range s.FeedHTTPLog("BPS") {
		ref[e.Seq] = true
	}
	if len(ref) != len(files) {
		t.Fatalf("settled log has %d ids, deposited %d", len(ref), len(files))
	}
	for p, mine := range seen {
		for id, n := range mine {
			if n != 1 {
				t.Errorf("poller %d saw id %d %d times", p, id, n)
			}
			if !ref[id] {
				t.Errorf("poller %d saw unknown id %d", p, id)
			}
		}
		if len(mine) != len(ref) {
			t.Errorf("poller %d saw %d ids, want %d", p, len(mine), len(ref))
		}
	}
}
