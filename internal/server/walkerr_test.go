package server

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"testing"
)

// The staging walks (orphan sweep, stale-tmp cleanup, unmatched
// reprocessing) must treat a WRAPPED fs.ErrNotExist as a vanished
// entry, not a walk failure — os.IsNotExist does not see through
// wrapping; errors.Is must.
func TestWalksTolerateWrappedNotExist(t *testing.T) {
	prev := walkDir
	walkDir = func(root string, fn fs.WalkDirFunc) error {
		if err := fn(filepath.Join(root, "ghost"), nil,
			fmt.Errorf("walk %s: entry vanished: %w", root, fs.ErrNotExist)); err != nil {
			return err
		}
		return filepath.WalkDir(root, fn)
	}
	t.Cleanup(func() { walkDir = prev })

	s := newServer(t, testConfig, nil)
	rep, err := s.Reconcile()
	if err != nil {
		t.Fatalf("reconcile aborted on a wrapped not-exist: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("reconcile over a clean root reported %s", rep)
	}
	if _, err := s.ReprocessUnmatched(); err != nil {
		t.Fatalf("unmatched reprocess aborted on a wrapped not-exist: %v", err)
	}
}
