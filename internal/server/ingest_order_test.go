package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

const shardedConfig = `
ingest {
    workers 4
    group_commit { max_batch 16 max_delay 1ms }
}

feed CPU { pattern "src%i/CPU_%Y%m%d%H%M%S.txt" }
subscriber wh { dest "in" subscribe CPU }
`

// TestShardedIngestPerSourceOrder is the pipeline's ordering property
// test: under random arrival interleavings across concurrent sources,
// with 4 shard workers and the group-commit flush window enabled (real
// fsyncs, so acknowledgements ride actual batch flushes), every
// source's receipts must carry strictly increasing IDs in its arrival
// order — the hash partitioning may interleave sources arbitrarily but
// must never reorder within one.
func TestShardedIngestPerSourceOrder(t *testing.T) {
	const sources, files = 6, 25
	s := newServer(t, shardedConfig, func(o *Options) {
		o.NoSync = false // group commit only fsyncs when syncs are real
	})

	rng := rand.New(rand.NewSource(1106))
	jitter := make([][]time.Duration, sources)
	for i := range jitter {
		jitter[i] = make([]time.Duration, files)
		for j := range jitter[i] {
			jitter[i][j] = time.Duration(rng.Intn(200)) * time.Microsecond
		}
	}
	base := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for src := 0; src < sources; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < files; i++ {
				time.Sleep(jitter[src][i])
				ts := base.Add(time.Duration(src*files+i) * time.Second)
				name := fmt.Sprintf("src%d/CPU_%s.txt", src+1, ts.Format("20060102150405"))
				if err := s.Deposit(name, []byte("x")); err != nil {
					t.Errorf("deposit %s: %v", name, err)
					return
				}
			}
		}(src)
	}
	wg.Wait()

	// Receipt IDs are assigned at commit; a source's next deposit only
	// starts after the previous one is acked, so per-source IDs must be
	// strictly increasing in deposit order and all present.
	type rec struct {
		seq string
		id  uint64
	}
	bySrc := make(map[string][]rec)
	for _, meta := range s.Store().AllFiles() {
		key := meta.Name[:4] // "srcN"
		bySrc[key] = append(bySrc[key], rec{meta.Name, meta.ID})
	}
	for src := 0; src < sources; src++ {
		key := fmt.Sprintf("src%d", src+1)
		got := bySrc[key]
		if len(got) != files {
			t.Fatalf("%s: %d receipts, want %d", key, len(got), files)
		}
		// AllFiles returns receipts in ID (commit) order; the
		// timestamped names encode each source's deposit order, so
		// commit order and arrival order must agree per source.
		for i := 1; i < len(got); i++ {
			if got[i].seq <= got[i-1].seq {
				t.Fatalf("%s receipts out of arrival order: %s (id %d) committed after %s (id %d)",
					key, got[i].seq, got[i].id, got[i-1].seq, got[i-1].id)
			}
		}
	}
}
