package server

import (
	"fmt"
	"io"
	"sync"
	"time"

	"bistro/internal/backoff"
	"bistro/internal/clock"
	"bistro/internal/protocol"
	"bistro/internal/transport"
)

// compositeTransport routes subscribers with configured hosts over TCP
// and the rest to local destination directories. Routing is mutable at
// runtime (AddSubscriber).
type compositeTransport struct {
	local  *transport.LocalDir
	remote *tcpTransport

	mu    sync.RWMutex
	hosts map[string]string // subscriber -> host:port
}

// setHost registers (or clears) a subscriber's remote route.
func (c *compositeTransport) setHost(sub, host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if host == "" {
		delete(c.hosts, sub)
		return
	}
	c.hosts[sub] = host
}

// hostOf looks up a subscriber's remote route.
func (c *compositeTransport) hostOf(sub string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.hosts[sub]
	return h, ok
}

func (c *compositeTransport) Deliver(sub string, f transport.File) error {
	if host, ok := c.hostOf(sub); ok {
		return c.remote.deliver(host, f)
	}
	return c.local.Deliver(sub, f)
}

func (c *compositeTransport) Notify(sub string, f transport.File) error {
	if host, ok := c.hostOf(sub); ok {
		return c.remote.notify(host, f)
	}
	return c.local.Notify(sub, f)
}

func (c *compositeTransport) Trigger(sub string, command string, paths []string) error {
	if host, ok := c.hostOf(sub); ok {
		return c.remote.trigger(host, command, paths)
	}
	return c.local.Trigger(sub, command, paths)
}

func (c *compositeTransport) Ping(sub string) error {
	if host, ok := c.hostOf(sub); ok {
		return c.remote.ping(host)
	}
	return c.local.Ping(sub)
}

var _ transport.Transport = (*compositeTransport)(nil)

// tcpTransport pushes protocol messages to subscriber daemons,
// maintaining one connection per host. Redials are gated by a per-host
// backoff: after a dial failure, further attempts inside the backoff
// window fail fast instead of re-paying the connect timeout — the
// delivery engine's own retry schedule decides when to come back.
type tcpTransport struct {
	timeout time.Duration
	clk     clock.Clock
	pol     backoff.Policy

	mu    sync.Mutex
	conns map[string]*protocol.Conn
	gates map[string]*dialGate
}

// dialGate throttles redial attempts to one unreachable host.
type dialGate struct {
	bo        *backoff.Backoff
	notBefore time.Time
	lastErr   error
}

func newTCPTransport(timeout time.Duration, clk clock.Clock, pol backoff.Policy) *tcpTransport {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &tcpTransport{
		timeout: timeout,
		clk:     clk,
		pol:     pol.WithDefaults(),
		conns:   make(map[string]*protocol.Conn),
		gates:   make(map[string]*dialGate),
	}
}

// withConn runs fn holding the (cached) connection to host, dropping
// the connection on any error so the next call redials. The lock is
// held across the exchange: the protocol is strictly request/response
// per connection.
func (t *tcpTransport) withConn(host string, fn func(*protocol.Conn) error) error {
	t.mu.Lock()
	conn, ok := t.conns[host]
	if !ok {
		g := t.gates[host]
		if g != nil && t.clk.Now().Before(g.notBefore) {
			err := g.lastErr
			t.mu.Unlock()
			return fmt.Errorf("server: dial %s suppressed by backoff: %w", host, err)
		}
		var err error
		conn, err = protocol.Dial(host, t.timeout)
		if err != nil {
			if g == nil {
				g = &dialGate{bo: backoff.New(t.pol, backoff.Seed(host))}
				t.gates[host] = g
			}
			g.notBefore = t.clk.Now().Add(g.bo.Next())
			g.lastErr = err
			t.mu.Unlock()
			return err
		}
		delete(t.gates, host) // dialed fine: forget the backoff history
		conn.Timeout = t.timeout
		t.conns[host] = conn
	}
	defer t.mu.Unlock()
	if err := fn(conn); err != nil {
		conn.Close()
		delete(t.conns, host)
		return err
	}
	return nil
}

// call sends a request and awaits the Ack.
func (t *tcpTransport) call(host string, msg any) error {
	return t.withConn(host, func(conn *protocol.Conn) error {
		return conn.Call(msg)
	})
}

// streamChunk is the chunk size for large-file transfers.
const streamChunk = 256 << 10

func (t *tcpTransport) deliver(host string, f transport.File) error {
	if f.Data != nil {
		return t.call(host, protocol.Deliver{
			FileID: f.FileID,
			Feed:   f.Feed,
			Name:   f.Name,
			Data:   f.Data,
			CRC:    f.CRC,
		})
	}
	// Large file: stream in chunks under one connection hold.
	return t.withConn(host, func(conn *protocol.Conn) error {
		src, err := f.Open()
		if err != nil {
			return err
		}
		defer src.Close()
		if err := conn.Send(protocol.DeliverBegin{
			FileID: f.FileID, Feed: f.Feed, Name: f.Name, Size: f.Size, CRC: f.CRC,
		}); err != nil {
			return err
		}
		buf := make([]byte, streamChunk)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				if err := conn.Send(protocol.DeliverChunk{Data: buf[:n]}); err != nil {
					return err
				}
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return fmt.Errorf("server: stream read: %w", rerr)
			}
		}
		if err := conn.Send(protocol.DeliverEnd{}); err != nil {
			return err
		}
		reply, err := conn.Recv()
		if err != nil {
			return err
		}
		ack, ok := reply.(protocol.Ack)
		if !ok {
			return fmt.Errorf("server: expected Ack, got %T", reply)
		}
		if !ack.OK {
			return fmt.Errorf("server: remote error: %s", ack.Error)
		}
		return nil
	})
}

func (t *tcpTransport) notify(host string, f transport.File) error {
	return t.call(host, protocol.Notify{
		FileID: f.FileID,
		Feed:   f.Feed,
		Name:   f.Name,
		Size:   f.Size,
	})
}

func (t *tcpTransport) trigger(host string, command string, paths []string) error {
	return t.call(host, protocol.Trigger{Command: command, Paths: paths})
}

func (t *tcpTransport) ping(host string) error {
	return t.call(host, protocol.Hello{Role: "server", Name: "ping"})
}

// close shuts every cached connection.
func (t *tcpTransport) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for host, c := range t.conns {
		c.Close()
		delete(t.conns, host)
	}
}
