package server

import (
	"testing"
	"time"

	"bistro/internal/clock"
	"bistro/internal/netsim"
	"bistro/internal/workload"
)

// TestSoakPipeline pushes a realistic multi-feed, multi-subscriber
// workload through a server while one subscriber flaps, then verifies
// the §4.2 guarantee: every matched file is delivered to every
// interested subscriber exactly once.
func TestSoakPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfgSrc := `
feedgroup SNMP {
    feed BPS    { pattern "BPS_POLLER%i_%Y%m%d%H_%M.csv.gz" }
    feed PPS    { pattern "PPS_POLL%i_%Y%m%d%H%M.txt" }
    feed CPU    { pattern "%Y/%m/%d/CPU_poller%i_%H%M.csv" }
}
subscriber steady  { dest "steady-in"  subscribe SNMP }
subscriber flappy  { dest "flappy-in"  subscribe SNMP retry 1 }
subscriber partial { dest "partial-in" subscribe SNMP/BPS class interactive }
`
	// The flappy subscriber runs over a simulated transport so its
	// outages are injectable; the others use it too for uniformity.
	ns := netsim.New(clock.NewReal())
	for _, name := range []string{"steady", "flappy", "partial"} {
		ns.Register(name, netsim.HostConfig{})
	}
	s := newServer(t, cfgSrc, func(o *Options) {
		o.Transport = ns
		o.Deadline = 5 * time.Second
	})

	start := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	gen := workload.New(77,
		workload.FeedSpec{Name: "BPS", Sources: 4, Period: 5 * time.Minute, Convention: workload.ConvUnderscoreTS, SizeBytes: 512},
		workload.FeedSpec{Name: "PPS", Sources: 4, Period: 5 * time.Minute, Convention: workload.ConvCompactTS, SizeBytes: 512},
		workload.FeedSpec{Name: "CPU", Sources: 4, Period: 5 * time.Minute, Convention: workload.ConvDatedDirs, SizeBytes: 512},
	)
	files := gen.Window(start, start.Add(2*time.Hour))
	bpsCount := 0
	for _, f := range files {
		if f.Feed == "BPS" {
			bpsCount++
		}
	}

	// Deposit with the flappy subscriber going down twice mid-stream.
	for i, f := range files {
		switch i {
		case len(files) / 4:
			ns.SetDown("flappy", true)
		case len(files) / 2:
			ns.SetDown("flappy", false)
		case 3 * len(files) / 4:
			ns.SetDown("flappy", true)
		}
		if err := s.Deposit(f.Name, workload.Payload(f)); err != nil {
			t.Fatalf("deposit %s: %v", f.Name, err)
		}
	}
	ns.SetDown("flappy", false)

	total := len(files)
	waitLong(t, "steady complete", func() bool { return s.Store().DeliveredCount("steady") == total })
	waitLong(t, "partial complete", func() bool { return s.Store().DeliveredCount("partial") == bpsCount })
	waitLong(t, "flappy complete", func() bool { return s.Store().DeliveredCount("flappy") == total })

	// Exactly-once: the simulated transport saw each file once per
	// subscriber.
	for _, sub := range []string{"steady", "flappy"} {
		seen := map[uint64]int{}
		for _, f := range ns.Delivered(sub) {
			seen[f.FileID]++
		}
		if len(seen) != total {
			t.Fatalf("%s: %d distinct files, want %d", sub, len(seen), total)
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("%s: file %d delivered %d times", sub, id, n)
			}
		}
	}
	if got := s.Logger().Unmatched(); got != 0 {
		t.Fatalf("unmatched = %d", got)
	}
}

func waitLong(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSoakWithExpiry exercises delivery racing window expiry: files
// whose data times are ancient relative to the wall clock expire while
// the queue drains; deliveries of already-expired staged files fail
// softly and the pipeline never wedges.
func TestSoakWithExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfgSrc := `
window 1h
archive "arch"
feed BPS { pattern "BPS_POLLER%i_%Y%m%d%H_%M.csv.gz" }
subscriber wh { dest "in" subscribe BPS }
`
	s := newServer(t, cfgSrc, func(o *Options) { o.ExpiryInterval = -1 })
	start := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	gen := workload.New(5, workload.FeedSpec{
		Name: "BPS", Sources: 3, Period: 5 * time.Minute,
		Convention: workload.ConvUnderscoreTS, SizeBytes: 128,
	})
	files := gen.Window(start, start.Add(time.Hour))
	for i, f := range files {
		if err := s.Deposit(f.Name, workload.Payload(f)); err != nil {
			t.Fatal(err)
		}
		// Expire aggressively mid-stream.
		if i%7 == 0 {
			if _, err := s.Archiver().ExpireOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Drain: every file is either delivered or expired; the engine
	// settles with empty queues.
	waitLong(t, "queues drained", func() bool {
		sched := s.Engine().Scheduler()
		for i := range sched.Partitions() {
			if sched.QueueLen(i, 0)+sched.QueueLen(i, 1) > 0 {
				return false
			}
		}
		return true
	})
	stats := s.Store().Stats()
	if stats.Files != len(files) {
		t.Fatalf("receipts = %d, want %d", stats.Files, len(files))
	}
	// Final expiry pass archives everything (2010 data vs wall clock).
	if _, err := s.Archiver().ExpireOnce(); err != nil {
		t.Fatal(err)
	}
	if got := s.Store().Stats().Expired; got != len(files) {
		t.Fatalf("expired = %d, want %d", got, len(files))
	}
}
