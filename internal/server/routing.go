package server

// This file is the routing layer: the protocol accept loop plus the
// thin cluster shim in front of the node-local core. On a single-node
// server every request is handled locally and none of this costs
// anything; with a cluster block, uploads for feeds another node owns
// are forwarded peer-to-peer, subscriptions to remotely-owned feeds
// are redirected, and Resolve lets any client locate a feed's owner
// through any live node.

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bistro/internal/cluster"
	"bistro/internal/diskfault"
	"bistro/internal/protocol"
)

// acceptLoop serves the source/subscriber protocol.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		conn := protocol.NewConn(c)
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// serveConn handles one peer connection.
func (s *Server) serveConn(conn *protocol.Conn) {
	defer conn.Close()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		var ack protocol.Ack
		switch m := msg.(type) {
		case protocol.Hello:
			ack = protocol.Ack{OK: true}
		case protocol.Upload:
			ack = s.handleUpload(m)
		case protocol.FileReady:
			ack = s.handleFileReady(m)
		case protocol.EndOfBatch:
			s.punctuateFromSource(m.Feed)
			ack = protocol.Ack{OK: true}
		case protocol.Subscribe:
			ack = s.handleSubscribe(m)
		case protocol.Rejoin:
			ack = s.handleRejoin(m)
		case protocol.Resolve:
			if err := conn.Send(s.resolveFeed(m.Feed)); err != nil {
				return
			}
			continue // Resolve answers with Resolved, not Ack
		case protocol.Fetch:
			s.serveFetch(conn, m)
			continue // serveFetch writes its own reply
		default:
			ack = protocol.Ack{OK: false, Error: fmt.Sprintf("unexpected message %T", msg)}
		}
		if err := conn.Send(ack); err != nil {
			return
		}
	}
}

// routeFor classifies a deposited filename and reports the owning node
// when it is not this one. Unmatched files (and everything on a
// single-node server) stay local.
func (s *Server) routeFor(name string) (cluster.Node, bool) {
	if s.shard == nil || s.shard.SelfName() == "" {
		return cluster.Node{}, false
	}
	matches := s.class.Classify(name)
	if len(matches) == 0 {
		return cluster.Node{}, false
	}
	owner := s.shard.Owner(matches[0].Feed.Path)
	if owner.Name == s.shard.SelfName() {
		return cluster.Node{}, false
	}
	return owner, true
}

// handleUpload deposits an uploaded file, forwarding it to the feed's
// owner first when a shard map says it belongs elsewhere. Relayed
// uploads are never forwarded again: during a failover the sender's
// and receiver's maps can briefly disagree, and a one-hop rule turns
// that into a single misplaced file instead of a forwarding loop.
func (s *Server) handleUpload(m protocol.Upload) protocol.Ack {
	if ack, fenced := s.fenceRelayed(m); fenced {
		return ack
	}
	if owner, remote := s.routeFor(filepath.ToSlash(m.Name)); remote && !m.Relayed {
		fwd := m
		fwd.Relayed = true
		fwd.Epoch = s.shard.Epoch()
		if err := s.peers.call(owner.Addr, fwd); err != nil {
			return protocol.Ack{OK: false, Error: fmt.Sprintf("forward to %s: %v", owner.Name, err)}
		}
		s.logger.Logf("cluster", "upload %s forwarded to owner %s", m.Name, owner.Name)
		return protocol.Ack{OK: true}
	}
	if err := s.land.Deposit(m.Name, m.Data); err != nil {
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	return protocol.Ack{OK: true}
}

// fenceRelayed refuses a relayed upload stamped with a stale cluster
// epoch: a partitioned old owner forwarding through its outdated shard
// map must not deposit here after a failover moved ownership on. The
// epoch is deliberately NOT observed from uploads — a fenced node must
// learn the new topology by rejoining, not by inheriting the epoch and
// slipping past the fence.
func (s *Server) fenceRelayed(m protocol.Upload) (protocol.Ack, bool) {
	if s.shard == nil || !m.Relayed || m.Epoch == 0 {
		return protocol.Ack{}, false
	}
	cur := s.shard.Epoch()
	if m.Epoch >= cur {
		return protocol.Ack{}, false
	}
	if s.clusterM != nil {
		s.clusterM.Fenced.Inc()
	}
	s.logger.Raise("cluster", fmt.Sprintf(
		"fenced relayed upload %s: sender epoch %d, ours %d", m.Name, m.Epoch, cur))
	return protocol.Ack{
		OK:    false,
		Error: fmt.Sprintf("fenced: stale epoch %d (node is at %d)", m.Epoch, cur),
		Epoch: cur,
	}, true
}

// handleRejoin adopts the sender as this node's new warm standby
// (online re-seed). The ack carries our epoch so the rejoiner seeds
// its fence floor before any replication frame arrives.
func (s *Server) handleRejoin(m protocol.Rejoin) protocol.Ack {
	if s.shard == nil {
		return protocol.Ack{OK: false, Error: "not clustered"}
	}
	if err := s.AttachStandby(m.StandbyAddr); err != nil {
		return protocol.Ack{OK: false, Error: err.Error(), Epoch: s.shard.Epoch()}
	}
	s.logger.Logf("cluster", "node %s rejoined as standby at %s", m.Node, m.StandbyAddr)
	return protocol.Ack{OK: true, Epoch: s.shard.Epoch()}
}

// handleFileReady ingests a shared-filesystem deposit, shipping the
// bytes to the owning node when the feed is sharded elsewhere (the
// landing zone is node-local, so a cross-shard FileReady becomes a
// relayed Upload).
func (s *Server) handleFileReady(m protocol.FileReady) protocol.Ack {
	name := filepath.ToSlash(m.Path)
	if owner, remote := s.routeFor(name); remote {
		src := filepath.Join(s.land.Dir(), filepath.FromSlash(m.Path))
		data, err := diskfault.ReadFile(s.fs, src)
		if err != nil {
			return protocol.Ack{OK: false, Error: err.Error()}
		}
		fwd := protocol.Upload{
			Name: name, Data: data, CRC: crc32.ChecksumIEEE(data),
			Relayed: true, Epoch: s.shard.Epoch(),
		}
		if err := s.peers.call(owner.Addr, fwd); err != nil {
			return protocol.Ack{OK: false, Error: fmt.Sprintf("forward to %s: %v", owner.Name, err)}
		}
		if err := s.fs.Remove(src); err != nil {
			s.logger.Logf("cluster", "clear forwarded %s: %v", name, err)
		}
		s.logger.Logf("cluster", "deposit %s forwarded to owner %s", name, owner.Name)
		return protocol.Ack{OK: true}
	}
	if err := s.land.FileReady(m.Path); err != nil {
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	return protocol.Ack{OK: true}
}

// handleSubscribe serves a runtime SUBSCRIBE, redirecting the client
// to the owning node when every requested feed lives on one other
// node. Mixed requests are served locally for the local share.
func (s *Server) handleSubscribe(m protocol.Subscribe) protocol.Ack {
	if addr, redirect := s.subscribeRedirect(m.Feeds); redirect {
		return protocol.Ack{OK: false, Error: "feeds owned by another node", Redirect: addr}
	}
	if err := s.SubscribeRemote(m); err != nil {
		return protocol.Ack{OK: false, Error: err.Error()}
	}
	return protocol.Ack{OK: true}
}

// subscribeRedirect expands the requested feeds (groups to leaves) and
// returns the owner's address when none of them is local and all of
// them resolve to the same remote node.
func (s *Server) subscribeRedirect(feeds []string) (string, bool) {
	if s.shard == nil || s.shard.SelfName() == "" {
		return "", false
	}
	anyLocal := false
	owners := make(map[string]cluster.Node)
	for _, f := range feeds {
		for _, leaf := range s.expandFeed(f) {
			owner := s.shard.Owner(leaf)
			if owner.Name == s.shard.SelfName() {
				anyLocal = true
			} else {
				owners[owner.Name] = owner
			}
		}
	}
	if anyLocal || len(owners) != 1 {
		return "", false
	}
	for _, owner := range owners {
		return owner.Addr, true
	}
	return "", false
}

// expandFeed resolves a feed-group path to its leaves (a leaf resolves
// to itself).
func (s *Server) expandFeed(path string) []string {
	if leaves, ok := s.cfg.Groups[path]; ok && len(leaves) > 0 {
		return leaves
	}
	return []string{path}
}

// resolveFeed answers Resolve: which node owns this feed. A
// single-node server claims everything; feed groups resolve through
// their first leaf.
func (s *Server) resolveFeed(feed string) protocol.Resolved {
	if s.shard == nil {
		return protocol.Resolved{Addr: s.Addr(), Owner: true}
	}
	target := feed
	if leaves := s.expandFeed(feed); len(leaves) > 0 {
		target = leaves[0]
	}
	owner := s.shard.Owner(target)
	return protocol.Resolved{
		Node:    owner.Name,
		Addr:    owner.Addr,
		Standby: owner.Standby,
		Owner:   owner.Name == s.shard.SelfName(),
		Epoch:   s.shard.Epoch(),
	}
}

// punctuateFromSource fans an end-of-batch marker out to the named
// feed, or to every feed when the source does not say. Punctuation is
// node-local: sources punctuate the node that ingested their files.
func (s *Server) punctuateFromSource(feed string) {
	if feed != "" {
		s.engine.Punctuate(feed)
		return
	}
	for _, f := range s.cfg.Feeds {
		s.engine.Punctuate(f.Path)
	}
}

// serveFetch answers a hybrid-pull retrieval with the staged content,
// falling back to the archiver for files expired from the retention
// window — the long-horizon analysis path of §4.2.
func (s *Server) serveFetch(conn *protocol.Conn, m protocol.Fetch) {
	meta, ok := s.store.File(m.FileID)
	if !ok {
		conn.Send(protocol.Ack{OK: false, Error: "unknown file id"})
		return
	}
	data, err := os.ReadFile(filepath.Join(s.stage, filepath.FromSlash(meta.StagedPath)))
	if err != nil {
		rc, aerr := s.arch.Open(meta.StagedPath)
		if aerr != nil {
			conn.Send(protocol.Ack{OK: false, Error: err.Error()})
			return
		}
		data, aerr = io.ReadAll(rc)
		rc.Close()
		if aerr != nil {
			conn.Send(protocol.Ack{OK: false, Error: aerr.Error()})
			return
		}
	}
	conn.Send(protocol.Deliver{
		FileID: meta.ID,
		Feed:   firstOf(meta.Feeds),
		Name:   meta.StagedPath,
		Data:   data,
		CRC:    meta.Checksum,
	})
}

func firstOf(xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[0]
}

// peerPool keeps one protocol connection per peer node for forwarded
// uploads, redialing on failure.
type peerPool struct {
	timeout time.Duration

	mu    sync.Mutex
	conns map[string]*protocol.Conn
}

func newPeerPool(timeout time.Duration) *peerPool {
	return &peerPool{timeout: timeout, conns: make(map[string]*protocol.Conn)}
}

// call sends one request to the peer and waits for its Ack, retrying
// once on a fresh connection when a pooled one has gone stale.
func (p *peerPool) call(addr string, msg any) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if conn, ok := p.conns[addr]; ok {
		if err := conn.Call(msg); err == nil {
			return nil
		}
		conn.Close()
		delete(p.conns, addr)
	}
	conn, err := protocol.Dial(addr, p.timeout)
	if err != nil {
		return err
	}
	if err := conn.Call(msg); err != nil {
		conn.Close()
		return err
	}
	p.conns[addr] = conn
	return nil
}

func (p *peerPool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, conn := range p.conns {
		conn.Close()
		delete(p.conns, addr)
	}
}
