package server

import (
	"os"
	"path/filepath"
	"testing"
)

const channelConfig = `
window 72h

feedgroup SNMP {
    feed BPS {
        pattern "BPS_poller%i_%Y%m%d%H%M.csv"
        normalize "%Y/%m/%d/BPS_poller%i_%H%M.csv"
    }
}

subscriber wh1 {
    dest "wh1-in"
    subscribe SNMP/BPS
}

subscriber wh2 {
    dest "wh2-in"
    subscribe SNMP/BPS
}

channels {
    group ticks {
        feed SNMP/BPS
        member wh1
        member wh2
    }
}
`

// A channels block in the config must route the feed through the group
// broker: both members get the file, the receipt is a single group
// record (no per-member receipts), and /statusz reports channel stats.
func TestChannelConfigDeliversViaGroup(t *testing.T) {
	s := newServer(t, channelConfig, nil)
	if err := s.Deposit("BPS_poller1_201009250451.csv", []byte("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	rel := filepath.Join("SNMP", "BPS", "2010", "09", "25", "BPS_poller1_0451.csv")
	for _, dest := range []string{"wh1-in", "wh2-in"} {
		want := filepath.Join(s.root, dest, rel)
		waitFor(t, "channel delivery to "+dest, func() bool {
			_, err := os.Stat(want)
			return err == nil
		})
	}
	for _, sub := range []string{"wh1", "wh2"} {
		if !s.Store().Delivered(1, sub) {
			t.Fatalf("%s not credited with file 1", sub)
		}
		if n := s.Store().DeliveredCount(sub); n != 0 {
			t.Fatalf("%s holds %d individual receipts, want 0 (group receipt only)", sub, n)
		}
	}
	if _, ok := s.Store().GroupCovers("ticks", 1); !ok {
		t.Fatal("group receipt for ticks does not cover file 1")
	}
	st := s.Status()
	if len(st.Channels) != 1 {
		t.Fatalf("statusz channels = %+v, want one entry", st.Channels)
	}
	cs := st.Channels[0]
	if cs.Name != "ticks" || cs.Members != 2 || cs.Attached != 2 || cs.Frontier != 1 {
		t.Fatalf("channel stats = %+v", cs)
	}
}
