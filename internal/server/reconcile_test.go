package server

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bistro/internal/feedlog"
)

const reconcileConfig = `
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
`

// depositAndStop runs a server over root, ingests one CPU file, waits
// for delivery, and shuts down — leaving a consistent root for the
// reconcile tests to damage.
func depositAndStop(t *testing.T, root string) (stagedPath string) {
	t.Helper()
	s, err := New(Options{Config: mustConfig(t, reconcileConfig), Root: root, ScanInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Deposit("CPU_POLL1_201009250451.txt", []byte("payload"))
	waitFor(t, "delivery", func() bool {
		st, _ := s.Logger().Stats("CPU")
		return st.Delivered == 1
	})
	s.Stop()
	return filepath.Join(root, "staging", "CPU", "CPU_POLL1_201009250451.txt")
}

func TestReconcileQuarantinesMissingStagedFile(t *testing.T) {
	root := t.TempDir()
	staged := depositAndStop(t, root)
	if err := os.Remove(staged); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var alarms []feedlog.Alarm
	cfg2 := reconcileConfig + `subscriber late { dest "late-in" subscribe CPU }` + "\n"
	s2, err := New(Options{
		Config: mustConfig(t, cfg2), Root: root, ScanInterval: -1,
		OnAlarm: func(a feedlog.Alarm) {
			mu.Lock()
			alarms = append(alarms, a)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Store().Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	// The latecomer's backfill must exclude the quarantined arrival.
	if pend := s2.Store().PendingFor("late", []string{"CPU"}); len(pend) != 0 {
		t.Fatalf("quarantined arrival still pending: %+v", pend)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(alarms) == 0 || !strings.Contains(alarms[0].Message, "quarantined") {
		t.Fatalf("expected a quarantine alarm, got %+v", alarms)
	}
}

func TestReconcileMovesCorruptStagedFileToQuarantine(t *testing.T) {
	root := t.TempDir()
	staged := depositAndStop(t, root)
	if err := os.WriteFile(staged, []byte("garbage that fails the checksum"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{Config: mustConfig(t, reconcileConfig), Root: root, ScanInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Store().Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	want := filepath.Join(root, "quarantine", "CPU", "CPU_POLL1_201009250451.txt")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("corrupt file not moved to quarantine: %v", err)
	}
	if _, err := os.Stat(staged); !os.IsNotExist(err) {
		t.Fatal("corrupt file still in staging")
	}
}

func TestReconcileReingestsIdentityOrphan(t *testing.T) {
	// A crash between the staging rename and the arrival commit leaves
	// a staged file with no receipt; when current definitions still map
	// it to the same path, reconcile records a fresh arrival and
	// backfill delivers it.
	root := t.TempDir()
	orphan := filepath.Join(root, "staging", "CPU", "CPU_POLL2_201009250452.txt")
	if err := os.MkdirAll(filepath.Dir(orphan), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphan, []byte("orphan payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newServer(t, reconcileConfig, func(o *Options) { o.Root = root })
	want := filepath.Join(root, "in", "CPU", "CPU_POLL2_201009250452.txt")
	waitFor(t, "orphan backfill delivery", func() bool {
		_, err := os.Stat(want)
		return err == nil
	})
	if got := s.Store().Stats().Files; got != 1 {
		t.Fatalf("store files = %d, want 1", got)
	}
}

func TestReconcileQuarantinesUnidentifiableOrphan(t *testing.T) {
	root := t.TempDir()
	orphan := filepath.Join(root, "staging", "CPU", "not-a-cpu-file.bin")
	if err := os.MkdirAll(filepath.Dir(orphan), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphan, []byte("???"), 0o644); err != nil {
		t.Fatal(err)
	}

	newServer(t, reconcileConfig, func(o *Options) { o.Root = root })
	want := filepath.Join(root, "quarantine", "orphans", "CPU", "not-a-cpu-file.bin")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("orphan not quarantined: %v", err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan still in staging")
	}
}

func TestStartRemovesStaleTempFiles(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "staging", "CPU")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, ".bistro-tmp-12345")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	newServer(t, reconcileConfig, func(o *Options) { o.Root = root })
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived startup")
	}
}

func TestQuarantineDirConfigKnob(t *testing.T) {
	root := t.TempDir()
	staged := depositAndStop(t, root)
	if err := os.WriteFile(staged, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := `quarantine "sickbay"` + "\n" + reconcileConfig
	s2, err := New(Options{Config: mustConfig(t, cfg), Root: root, ScanInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(root, "sickbay", "CPU", "CPU_POLL1_201009250451.txt")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("configured quarantine dir not used: %v", err)
	}
}
