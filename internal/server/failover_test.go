package server

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bistro/internal/cluster"
	"bistro/internal/protocol"
	"bistro/internal/sourceclient"
)

// TestRelayedUploadEpochFencing is the satellite cross-epoch relay
// matrix: a stale-epoch relayed upload is refused (fenced, counted,
// epoch NOT learned from the sender), while same-epoch, newer-epoch,
// and epoch-zero relays follow the one-hop rule and land locally.
func TestRelayedUploadEpochFencing(t *testing.T) {
	_, nodeB, _, feedB := startTwoNodeCluster(t)

	// Simulate a failover elsewhere: node b's map has moved to epoch 5.
	nodeB.shard.ObserveEpoch(5)

	conn, err := protocol.Dial(nodeB.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Call(protocol.Hello{Role: "source", Name: "peer"}); err != nil {
		t.Fatal(err)
	}
	relay := func(name string, epoch uint64) protocol.Ack {
		t.Helper()
		data := []byte("relayed\n")
		if err := conn.Send(protocol.Upload{
			Name: name, Data: data, CRC: crc32of(data), Relayed: true, Epoch: epoch,
		}); err != nil {
			t.Fatal(err)
		}
		reply, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		ack, ok := reply.(protocol.Ack)
		if !ok {
			t.Fatalf("expected Ack, got %T", reply)
		}
		return ack
	}

	// Old owner (epoch 1) relaying to the moved-on node: refused.
	ack := relay(feedB+"_201009250451.txt", 1)
	if ack.OK {
		t.Fatal("stale-epoch relayed upload must be refused")
	}
	if !strings.Contains(ack.Error, "fenced") {
		t.Fatalf("refusal should say fenced, got %q", ack.Error)
	}
	if ack.Epoch != 5 {
		t.Fatalf("fencing ack should carry our epoch 5, got %d", ack.Epoch)
	}
	if got := nodeB.Metrics().Counter("bistro_cluster_fenced_total", "").Value(); got != 1 {
		t.Fatalf("fenced counter = %d, want 1", got)
	}

	// Same epoch: accepted (normal peer forwarding).
	if ack := relay(feedB+"_201009250452.txt", 5); !ack.OK {
		t.Fatalf("same-epoch relay refused: %s", ack.Error)
	}
	// Newer epoch (we are the stale side — e.g. the promoted node relays
	// a misplaced file back): accepted under the one-hop rule, and the
	// epoch is deliberately NOT absorbed from an upload.
	if ack := relay(feedB+"_201009250453.txt", 6); !ack.OK {
		t.Fatalf("newer-epoch relay refused: %s", ack.Error)
	}
	if got := nodeB.shard.Epoch(); got != 5 {
		t.Fatalf("upload must not teach the node a new epoch: got %d, want 5", got)
	}
	// Epoch zero (pre-fencing sender): accepted.
	if ack := relay(feedB+"_201009250454.txt", 0); !ack.OK {
		t.Fatalf("epoch-zero relay refused: %s", ack.Error)
	}
	waitFor(t, "accepted relays ingested", func() bool {
		return nodeB.Store().Stats().Files == 3
	})
}

// TestPromoteStandbyErrorPaths (satellite): the three ways a promotion
// can be mis-invoked must fail with a telling error, not a panic or a
// half-started server.
func TestPromoteStandbyErrorPaths(t *testing.T) {
	newStandby := func() *cluster.Standby {
		t.Helper()
		st, err := cluster.StartStandby("127.0.0.1:0", cluster.StandbyOptions{Root: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	feedOnly := `feed CPU { pattern "cpu_%Y%m%d.csv" }` + "\n"

	// 1. Config without a cluster block.
	_, _, err := PromoteStandby(newStandby(), "a", Options{
		Config: mustConfig(t, feedOnly), Root: t.TempDir(), ScanInterval: -1, NoSync: true,
	})
	if err == nil || !strings.Contains(err.Error(), "no cluster block") {
		t.Fatalf("missing cluster block: err = %v", err)
	}

	// 2. Cluster block but no node identity (no self, no NodeName).
	anon := feedOnly + `cluster { node "a" { addr "x:1" } node "b" { addr "x:2" } }`
	_, _, err = PromoteStandby(newStandby(), "a", Options{
		Config: mustConfig(t, anon), Root: t.TempDir(), ScanInterval: -1, NoSync: true,
	})
	if err == nil || !strings.Contains(err.Error(), "node identity unset") {
		t.Fatalf("unset identity: err = %v", err)
	}

	// 3. Promote of an unknown failed node is rejected by the shard map.
	named := feedOnly + `cluster { self "b" node "a" { addr "x:1" } node "b" { addr "x:2" } }`
	_, _, err = PromoteStandby(newStandby(), "ghost", Options{
		Config: mustConfig(t, named), Root: t.TempDir(), ScanInterval: -1, NoSync: true,
	})
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown failed node: err = %v", err)
	}
}

// TestAutoFailoverAndRejoin is the self-healing loop in miniature:
// owner a replicates to a standby-for-b, dies, the standby promotes
// itself on lease expiry (epoch bump), and a fresh node a rejoins as
// the survivor's standby via the online re-seed — all unattended.
func TestAutoFailoverAndRejoin(t *testing.T) {
	feedA, feedB := splitFeeds(t)
	addrA, addrB := reserveAddr(t), reserveAddr(t)
	sbAddr := reserveAddr(t)
	cfgSrc := fmt.Sprintf(`
cluster {
    self "a"
    failover {
        lease 600ms
        heartbeat 120ms
        auto on
    }
    node "a" { addr "%s" standby "%s" }
    node "b" { addr "%s" }
}
feed %s { pattern "%s_%%Y%%m%%d%%H%%M.txt" }
feed %s { pattern "%s_%%Y%%m%%d%%H%%M.txt" }
`, addrA, sbAddr, addrB, feedA, feedA, feedB, feedB)

	cfg := mustConfig(t, cfgSrc)
	sn, err := StartStandbyNode(sbAddr, t.TempDir(), StandbyNodeOptions{
		Server: Options{
			Config: mustConfig(t, cfgSrc), NodeName: "b", Listen: addrB,
			Root: "", ScanInterval: -1, NoSync: true,
		},
		Failed: "a",
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	owner, err := New(Options{
		Config: cfg, Root: t.TempDir(), Listen: addrA, ScanInterval: -1, NoSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Start(); err != nil {
		owner.Stop()
		t.Fatal(err)
	}
	if err := owner.Deposit(feedA+"_201009250451.txt", []byte("before\n")); err != nil {
		owner.Stop()
		t.Fatal(err)
	}
	waitFor(t, "deposit ingested on owner", func() bool {
		return owner.Store().Stats().Files == 1
	})

	// Kill the owner. No operator: lease expiry must promote.
	owner.Stop()
	var promoted *Server
	waitFor(t, "automatic promotion", func() bool {
		srv, _, perr, ok := sn.Promoted()
		if !ok {
			return false
		}
		if perr != nil {
			t.Fatalf("promotion failed: %v", perr)
		}
		promoted = srv
		return true
	})
	defer promoted.Stop()
	if got := promoted.shard.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}
	ns := promoted.nodeStatus()
	if ns.Role != "promoted" || ns.Epoch != 2 {
		t.Fatalf("promoted node status = %+v", ns)
	}
	// The shipped history is served by the survivor.
	if got := promoted.Store().Stats().Files; got != 1 {
		t.Fatalf("promoted store has %d files, want 1", got)
	}

	// The failed node returns empty-handed and rejoins as b's standby.
	sn2, err := RejoinAsStandby(addrB, "127.0.0.1:0", t.TempDir(), StandbyNodeOptions{
		Server: Options{
			Config: mustConfig(t, cfgSrc), NodeName: "a",
			ScanInterval: -1, NoSync: true,
		},
		Failed: "b",
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sn2.Close()
	if got := sn2.Standby().Epoch(); got != 2 {
		t.Fatalf("rejoined standby fence floor = %d, want 2", got)
	}
	waitFor(t, "survivor ships to rejoined standby", func() bool {
		sh := promoted.getShipper()
		return sh != nil && sh.Healthy() && sh.Addr() == sn2.Standby().Addr()
	})
	ns = promoted.nodeStatus()
	if ns.Standby != sn2.Standby().Addr() {
		t.Fatalf("status standby = %q, want %q", ns.Standby, sn2.Standby().Addr())
	}

	// Post-reseed traffic is replicated: acked ⟹ staged on the standby.
	src, err := sourceclient.Dial(promoted.Addr(), "poller1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Upload(feedA+"_201009250455.txt", []byte("after\n")); err != nil {
		t.Fatalf("deposit after re-seed: %v", err)
	}
	waitFor(t, "post-reseed ingest", func() bool {
		return promoted.Store().Stats().Files == 2
	})
	waitFor(t, "standby caught up", func() bool {
		sh := promoted.getShipper()
		return sh != nil && sh.AckedHW() == sn2.Standby().HW() && sh.AckedHW() > 0
	})
	// The pre-failover file re-seeded onto the fresh standby's staging.
	staged := 0
	err = filepath.WalkDir(filepath.Join(sn2.Standby().Root(), "staging"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			staged++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if staged == 0 {
		t.Fatal("re-seeded standby has no staged payloads")
	}
}
