package server

import (
	"strconv"
	"time"

	"bistro/internal/backoff"
	"bistro/internal/delivery"
	"bistro/internal/feedlog"
	"bistro/internal/metrics"
	"bistro/internal/receipts"
	"bistro/internal/replay"
	"bistro/internal/scheduler"
)

// serverMetrics holds the gauge families the server refreshes from
// component snapshots at scrape time (RefreshMetrics). Keeping these
// out of the hot paths means instrumentation there stays a handful of
// atomic adds; everything derivable from an existing Stats() call is
// paid for only when someone actually scrapes /metrics.
type serverMetrics struct {
	// Per-subscriber delivery state.
	breaker *metrics.GaugeVec // 0=closed 1=half-open 2=open
	offline *metrics.GaugeVec // 1 when flagged offline

	// Scheduler load.
	queueDepth *metrics.GaugeVec // {partition, lane}
	delayed    *metrics.GaugeVec // {partition}
	inflight   *metrics.Gauge

	// Receipt store.
	files       *metrics.Gauge
	expired     *metrics.Gauge
	quarantined *metrics.Gauge
	feeds       *metrics.Gauge

	// Per-feed monitoring counters mirrored from feedlog.
	feedFiles     *metrics.GaugeVec
	feedBytes     *metrics.GaugeVec
	feedDelivered *metrics.GaugeVec
	feedFailures  *metrics.GaugeVec
	unmatched     *metrics.Gauge
	alarms        *metrics.Gauge

	// Startup reconciliation outcome (set once per Start).
	reconcile *metrics.GaugeVec // {kind}
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		breaker: r.GaugeVec("bistro_delivery_breaker_state",
			"Circuit breaker state per subscriber (0=closed, 1=half-open, 2=open).", "subscriber"),
		offline: r.GaugeVec("bistro_delivery_subscriber_offline",
			"1 when the subscriber is flagged offline.", "subscriber"),
		queueDepth: r.GaugeVec("bistro_scheduler_queue_depth",
			"Jobs waiting per scheduler partition and lane.", "partition", "lane"),
		delayed: r.GaugeVec("bistro_scheduler_delayed_depth",
			"Jobs parked in the delay heap per partition (retry backoff).", "partition"),
		inflight: r.Gauge("bistro_scheduler_inflight",
			"Jobs claimed by delivery workers right now."),
		files: r.Gauge("bistro_receipts_files",
			"Arrival receipts within the retention window."),
		expired: r.Gauge("bistro_receipts_expired",
			"Receipts past the retention window."),
		quarantined: r.Gauge("bistro_receipts_quarantined",
			"Receipts excluded from delivery by reconciliation."),
		feeds: r.Gauge("bistro_receipts_feeds",
			"Distinct feeds with at least one receipt."),
		feedFiles: r.GaugeVec("bistro_feed_files",
			"Classified arrivals per feed.", "feed"),
		feedBytes: r.GaugeVec("bistro_feed_bytes",
			"Classified arrival volume per feed.", "feed"),
		feedDelivered: r.GaugeVec("bistro_feed_delivered",
			"Successful deliveries per feed across subscribers.", "feed"),
		feedFailures: r.GaugeVec("bistro_feed_delivery_failures",
			"Failed delivery attempts per feed.", "feed"),
		unmatched: r.Gauge("bistro_classifier_unmatched_files",
			"Files no feed definition claimed (quarantined for reprocessing)."),
		alarms: r.Gauge("bistro_alarms_total",
			"Monitoring alarms raised since startup."),
		reconcile: r.GaugeVec("bistro_reconcile_outcomes",
			"Startup reconciliation outcomes by kind.", "kind"),
	}
}

// breakerStateValue encodes a breaker state string as a gauge value.
func breakerStateValue(state string) int64 {
	switch state {
	case backoff.HalfOpen.String():
		return 1
	case backoff.Open.String():
		return 2
	default:
		return 0
	}
}

// RefreshMetrics re-derives every snapshot-backed gauge from component
// state. The admin server calls it before each /metrics scrape; tests
// may call it directly.
func (s *Server) RefreshMetrics() {
	m := s.metrics
	if m == nil {
		return
	}
	for name, st := range s.engine.Stats() {
		m.breaker.With(name).Set(breakerStateValue(st.Circuit))
		var off int64
		if st.Offline {
			off = 1
		}
		m.offline.With(name).Set(off)
	}
	sched := s.engine.Scheduler()
	for i, pc := range sched.Partitions() {
		name := pc.Name
		if name == "" {
			name = strconv.Itoa(i)
		}
		m.queueDepth.With(name, "realtime").Set(int64(sched.QueueLen(i, scheduler.LaneRealtime)))
		m.queueDepth.With(name, "backfill").Set(int64(sched.QueueLen(i, scheduler.LaneBackfill)))
		m.delayed.With(name).Set(int64(sched.DelayedLen(i)))
	}
	m.inflight.Set(int64(sched.InflightTotal()))
	st := s.store.Stats()
	m.files.Set(int64(st.Files))
	m.expired.Set(int64(st.Expired))
	m.quarantined.Set(int64(st.Quarantined))
	m.feeds.Set(int64(st.Feeds))
	for feed, fs := range s.logger.AllStats() {
		m.feedFiles.With(feed).Set(fs.Files)
		m.feedBytes.With(feed).Set(fs.Bytes)
		m.feedDelivered.With(feed).Set(fs.Delivered)
		m.feedFailures.With(feed).Set(fs.Failures)
	}
	m.unmatched.Set(s.logger.Unmatched())
	m.alarms.Set(int64(len(s.logger.Alarms())))
}

// recordReconcile publishes one startup reconciliation report.
func (s *Server) recordReconcile(rep *ReconcileReport) {
	m := s.metrics
	if m == nil || rep == nil {
		return
	}
	m.reconcile.With("checked").Set(int64(rep.Checked))
	m.reconcile.With("missing").Set(int64(rep.Missing))
	m.reconcile.With("corrupt").Set(int64(rep.Corrupt))
	m.reconcile.With("archive_moves").Set(int64(rep.ArchiveMoves))
	m.reconcile.With("reingested").Set(int64(rep.Reingested))
	m.reconcile.With("orphaned").Set(int64(rep.Orphaned))
}

// Metrics exposes the server's metric registry (admin endpoint, tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// PartitionStatus is one scheduler partition's live load in a Status
// snapshot.
type PartitionStatus struct {
	Name     string `json:"name"`
	Realtime int    `json:"realtime"`
	Backfill int    `json:"backfill"`
	Delayed  int    `json:"delayed"`
}

// NodeStatus describes the node's cluster position in a Status
// snapshot.
type NodeStatus struct {
	// Name is the node name ("" on a single-node server).
	Name string `json:"name,omitempty"`
	// Role is "single", "owner", or "promoted" (serving another node's
	// shards after a failover).
	Role string `json:"role"`
	// Ready mirrors /readyz: startup reconciliation (and, when
	// promoted, shipped-WAL replay) has completed.
	Ready bool `json:"ready"`
	// PromotedFrom lists failed nodes whose shards this node serves.
	PromotedFrom []string `json:"promoted_from,omitempty"`
	// ReplicationOK is true while the standby stream is up (absent
	// when the node has no standby).
	ReplicationOK *bool `json:"replication_ok,omitempty"`
	// ReplicationHW is the standby's acknowledged high-watermark.
	ReplicationHW uint64 `json:"replication_hw,omitempty"`
	// Epoch is the cluster ownership epoch this node's shard map holds
	// (the fencing token; bumps on every promotion).
	Epoch uint64 `json:"epoch,omitempty"`
	// Standby is the replication address this node currently ships to
	// (changes when a rejoined node is adopted).
	Standby string `json:"standby,omitempty"`
}

// Status is the structured snapshot served at /statusz and rendered by
// `bistroctl status`.
type Status struct {
	Time        time.Time                           `json:"time"`
	Node        NodeStatus                          `json:"node"`
	Feeds       map[string]feedlog.FeedStats        `json:"feeds"`
	Unmatched   int64                               `json:"unmatched"`
	Subscribers map[string]delivery.SubscriberStats `json:"subscribers"`
	Channels    []delivery.ChannelStats             `json:"channels,omitempty"`
	Receipts    receipts.Stats                      `json:"receipts"`
	Partitions  []PartitionStatus                   `json:"partitions"`
	Inflight    int                                 `json:"inflight"`
	Replay      []replay.SessionStatus              `json:"replay,omitempty"`
	Alarms      []feedlog.Alarm                     `json:"alarms,omitempty"`
}

// nodeStatus assembles the cluster half of a Status snapshot.
func (s *Server) nodeStatus() NodeStatus {
	ns := NodeStatus{Role: "single", Ready: s.Ready() == nil}
	if s.shard == nil {
		return ns
	}
	ns.Name = s.shard.SelfName()
	ns.Role = "owner"
	ns.Epoch = s.shard.Epoch()
	if from := s.shard.PromotedFrom(ns.Name); len(from) > 0 {
		ns.Role = "promoted"
		ns.PromotedFrom = from
	}
	if sh := s.getShipper(); sh != nil {
		ok := sh.Healthy()
		ns.ReplicationOK = &ok
		ns.ReplicationHW = sh.AckedHW()
		ns.Standby = sh.Addr()
	}
	return ns
}

// maxStatusAlarms bounds the alarm tail included in a Status snapshot.
const maxStatusAlarms = 20

// Status assembles the live structured snapshot behind /statusz.
func (s *Server) Status() Status {
	sched := s.engine.Scheduler()
	parts := sched.Partitions()
	ps := make([]PartitionStatus, len(parts))
	for i, pc := range parts {
		name := pc.Name
		if name == "" {
			name = strconv.Itoa(i)
		}
		ps[i] = PartitionStatus{
			Name:     name,
			Realtime: sched.QueueLen(i, scheduler.LaneRealtime),
			Backfill: sched.QueueLen(i, scheduler.LaneBackfill),
			Delayed:  sched.DelayedLen(i),
		}
	}
	alarms := s.logger.Alarms()
	if len(alarms) > maxStatusAlarms {
		alarms = alarms[len(alarms)-maxStatusAlarms:]
	}
	var sessions []replay.SessionStatus
	if s.replay != nil {
		sessions = s.replay.Sessions()
	}
	return Status{
		Time:        s.clk.Now(),
		Node:        s.nodeStatus(),
		Feeds:       s.logger.AllStats(),
		Unmatched:   s.logger.Unmatched(),
		Subscribers: s.engine.Stats(),
		Channels:    s.engine.ChannelStats(),
		Receipts:    s.store.Stats(),
		Partitions:  ps,
		Inflight:    sched.InflightTotal(),
		Replay:      sessions,
		Alarms:      alarms,
	}
}
