package server

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"time"

	"bistro/internal/classifier"
	"bistro/internal/normalize"
	"bistro/internal/receipts"
)

// walkDir is filepath.WalkDir behind a seam so tests can inject walk
// errors (wrapped not-exist shapes in particular).
var walkDir = filepath.WalkDir

// ReconcileReport summarizes one startup reconciliation pass over the
// receipt database and the staging/archive trees.
type ReconcileReport struct {
	// Checked is how many arrival receipts were cross-checked.
	Checked int
	// Missing arrivals had no staged (or archived) file; quarantined in
	// the DB so they never enter a delivery queue.
	Missing int
	// Corrupt arrivals failed their recorded size or checksum; the file
	// moved to the quarantine directory and the receipt was quarantined.
	Corrupt int
	// ArchiveMoves re-ran interrupted staging→archive moves for expired
	// receipts whose staged file still lingered.
	ArchiveMoves int
	// Reingested orphan staged files had no receipt but still matched a
	// feed at their recorded path; a fresh arrival was recorded.
	Reingested int
	// Orphaned staged files had no receipt and no identity match; moved
	// under quarantine/orphans.
	Orphaned int
}

// Clean reports whether the pass found nothing to repair.
func (r *ReconcileReport) Clean() bool {
	return r.Missing == 0 && r.Corrupt == 0 && r.ArchiveMoves == 0 &&
		r.Reingested == 0 && r.Orphaned == 0
}

func (r *ReconcileReport) String() string {
	return fmt.Sprintf("checked=%d missing=%d corrupt=%d archive_moves=%d reingested=%d orphaned=%d",
		r.Checked, r.Missing, r.Corrupt, r.ArchiveMoves, r.Reingested, r.Orphaned)
}

// Reconcile cross-checks every arrival receipt against the staging and
// archive trees, and the staging tree against the receipts (§4.2: the
// receipt database is the source of truth for what the server owes its
// subscribers — but after a crash the payloads it points at may not
// have survived). Divergences are repaired or quarantined, never left
// to fail a transfer mid-stream:
//
//   - arrival with no staged file → receipt quarantined, alarm raised;
//   - arrival whose staged file fails its recorded size/checksum →
//     file moved under the quarantine directory, receipt quarantined,
//     alarm raised;
//   - expired receipt whose staged file lingers (archive move
//     interrupted) → the move is re-run;
//   - staged file with no receipt → re-ingested when it still maps to
//     the same staged path under current feed definitions, otherwise
//     moved under quarantine/orphans.
//
// Run it from Start before the delivery engine computes backfill
// queues, so quarantined ids are already excluded.
func (s *Server) Reconcile() (*ReconcileReport, error) {
	rep := &ReconcileReport{}
	known := make(map[string]bool)
	for _, meta := range s.store.AllFiles() {
		known[meta.StagedPath] = true
		if s.store.Quarantined(meta.ID) {
			continue
		}
		staged := filepath.Join(s.stage, filepath.FromSlash(meta.StagedPath))
		if s.store.IsExpired(meta.ID) {
			// Only divergence possible: the staged copy should be gone.
			if _, err := s.fs.Stat(staged); err == nil {
				if err := s.arch.MoveExpired(meta); err != nil {
					s.logger.Logf("reconcile", "archive move %s: %v", meta.StagedPath, err)
				} else {
					rep.ArchiveMoves++
				}
			}
			continue
		}
		rep.Checked++
		if _, err := s.fs.Stat(staged); err != nil {
			if err := s.quarantineReceipt(meta, "staged file missing"); err != nil {
				return rep, err
			}
			rep.Missing++
			continue
		}
		crc, n, err := normalize.ChecksumFileFS(s.fs, staged)
		if err != nil || n != meta.Size || crc != meta.Checksum {
			reason := fmt.Sprintf("staged file corrupt (size %d/%d, crc %08x/%08x)",
				n, meta.Size, crc, meta.Checksum)
			if err != nil {
				reason = fmt.Sprintf("staged file unreadable: %v", err)
			}
			if qerr := s.moveToQuarantine(staged, meta.StagedPath); qerr != nil {
				s.logger.Logf("reconcile", "quarantine move %s: %v", meta.StagedPath, qerr)
			}
			if err := s.quarantineReceipt(meta, reason); err != nil {
				return rep, err
			}
			rep.Corrupt++
		}
	}

	// Orphan sweep: staged files no receipt points at. A crash between
	// the staging rename and the arrival commit leaves exactly this.
	err := walkDir(s.stage, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			// Entries can vanish mid-walk; the error may arrive wrapped
			// (an fs layer annotating the path), so match by identity.
			if errors.Is(werr, fs.ErrNotExist) {
				return nil
			}
			return werr
		}
		if d.IsDir() {
			// _unmatched has its own reprocessing pass.
			if d.Name() == "_unmatched" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		rel, rerr := filepath.Rel(s.stage, path)
		if rerr != nil {
			return rerr
		}
		name := filepath.ToSlash(rel)
		if known[name] {
			return nil
		}
		if s.reingestOrphan(name, path) {
			rep.Reingested++
			return nil
		}
		if err := s.moveToQuarantine(path, filepath.Join("orphans", rel)); err != nil {
			s.logger.Logf("reconcile", "orphan quarantine %s: %v", name, err)
			return nil
		}
		s.logger.Logf("reconcile", "orphan staged file %s moved to quarantine", name)
		rep.Orphaned++
		return nil
	})
	return rep, err
}

// quarantineReceipt durably excludes an arrival from delivery and
// raises a per-feed alarm.
func (s *Server) quarantineReceipt(meta receipts.FileMeta, reason string) error {
	if err := s.store.RecordQuarantine(meta.ID); err != nil {
		return fmt.Errorf("server: quarantine %s: %w", meta.StagedPath, err)
	}
	for _, feed := range meta.Feeds {
		s.logger.Raise(feed, fmt.Sprintf("reconcile quarantined %s: %s", meta.StagedPath, reason))
	}
	return nil
}

// moveToQuarantine relocates a diverged file under the quarantine
// directory, preserving its staging-relative path, durably.
func (s *Server) moveToQuarantine(src, rel string) error {
	dst := filepath.Join(s.quar, filepath.FromSlash(rel))
	if err := s.fs.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	if err := s.fs.Rename(src, dst); err != nil {
		return err
	}
	return s.fs.SyncDir(filepath.Dir(dst))
}

// reingestOrphan records a fresh arrival for a staged file that has no
// receipt, provided current feed definitions still map it to the same
// staged path (identity check — otherwise we cannot know what the file
// is and it goes to quarantine). The delivery engine is not running
// yet; engine.Start's backfill picks the new receipt up.
func (s *Server) reingestOrphan(name, path string) bool {
	// Staged paths carry the feed-path prefix the classifier patterns
	// never see, so try the name both whole and with each feed's prefix
	// stripped.
	candidates := []string{name}
	for _, f := range s.cfg.Feeds {
		if suffix, ok := strings.CutPrefix(name, f.Path+"/"); ok {
			candidates = append(candidates, suffix)
		}
	}
	for _, cand := range candidates {
		matches := s.class.Classify(cand)
		if len(matches) == 0 {
			continue
		}
		primary := matches[0]
		stagedName, err := normalize.StagedName(primary.Feed, cand, primary.Fields)
		if err != nil || filepath.ToSlash(stagedName) != name {
			continue
		}
		return s.recordOrphanArrival(cand, name, path, matches)
	}
	return false
}

// recordOrphanArrival writes the fresh receipt for a re-ingested
// orphan.
func (s *Server) recordOrphanArrival(name, stagedPath, path string, matches []classifier.Match) bool {
	primary := matches[0]
	crc, size, err := normalize.ChecksumFileFS(s.fs, path)
	if err != nil {
		return false
	}
	feeds := make([]string, len(matches))
	for i, m := range matches {
		feeds[i] = m.Feed.Path
	}
	var dataTime time.Time
	if ts, ok := primary.Fields.Time.Timestamp(time.UTC); ok {
		dataTime = ts
	}
	meta := receipts.FileMeta{
		Name:       name,
		StagedPath: stagedPath,
		Feeds:      feeds,
		Size:       size,
		Checksum:   crc,
		Arrived:    s.clk.Now(),
		DataTime:   dataTime,
	}
	if _, err := s.store.RecordArrival(meta); err != nil {
		s.logger.Logf("reconcile", "reingest %s: %v", stagedPath, err)
		return false
	}
	s.logger.Logf("reconcile", "orphan staged file %s re-ingested", stagedPath)
	return true
}

// cleanStaleTmp removes `.bistro-tmp-*` droppings left by a crash
// mid-normalize (staging) or mid-plan (staging and the quarantine
// tree, where plan reject sinks write). They are by construction not
// yet referenced by any receipt.
func (s *Server) cleanStaleTmp() int {
	var removed int
	for _, root := range []string{s.stage, s.quar} {
		walkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					return nil
				}
				return err
			}
			if d.IsDir() {
				return nil
			}
			if strings.HasPrefix(d.Name(), ".bistro-tmp-") {
				if s.fs.Remove(path) == nil {
					removed++
				}
			}
			return nil
		})
	}
	return removed
}
