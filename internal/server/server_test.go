package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bistro/internal/config"
	"bistro/internal/delivery"
	"bistro/internal/feedlog"
	"bistro/internal/protocol"
	"bistro/internal/sourceclient"
	"bistro/internal/subclient"
)

const testConfig = `
window 72h

feedgroup SNMP {
    feed BPS {
        pattern "BPS_poller%i_%Y%m%d%H%M.csv"
        normalize "%Y/%m/%d/BPS_poller%i_%H%M.csv"
    }
    feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
}

subscriber wh {
    dest "wh-in"
    subscribe SNMP
}
`

func mustConfig(t *testing.T, src string) *config.Config {
	t.Helper()
	cfg, err := config.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newServer(t *testing.T, cfgSrc string, mutate func(*Options)) *Server {
	t.Helper()
	opts := Options{
		Config:       mustConfig(t, cfgSrc),
		Root:         t.TempDir(),
		ScanInterval: -1, // tests drive ingest explicitly
		NoSync:       true,
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEndToEndLocalDelivery(t *testing.T) {
	s := newServer(t, testConfig, nil)
	if err := s.Deposit("BPS_poller1_201009250451.csv", []byte("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	// Normalized into daily directories per the feed's template, then
	// delivered under the subscriber's dest.
	want := filepath.Join(s.root, "wh-in", "SNMP", "BPS", "2010", "09", "25", "BPS_poller1_0451.csv")
	waitFor(t, "delivered file", func() bool {
		_, err := os.Stat(want)
		return err == nil
	})
	got, _ := os.ReadFile(want)
	if string(got) != "a,b\n1,2\n" {
		t.Fatalf("content = %q", got)
	}
	// Landing is empty; receipts recorded.
	entries, _ := os.ReadDir(s.land.Dir())
	if len(entries) != 0 {
		t.Fatalf("landing not empty: %v", entries)
	}
	if stats := s.Store().Stats(); stats.Files != 1 {
		t.Fatalf("store stats = %+v", stats)
	}
	fs, ok := s.Logger().Stats("SNMP/BPS")
	if !ok || fs.Files != 1 {
		t.Fatalf("feed stats = %+v", fs)
	}
}

func TestUnmatchedFilesQuarantined(t *testing.T) {
	s := newServer(t, testConfig, nil)
	if err := s.Deposit("random-junk.tmp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s.stage, "_unmatched", "random-junk.tmp")); err != nil {
		t.Fatal("unmatched file not quarantined")
	}
	if s.Logger().Unmatched() != 1 {
		t.Fatal("unmatched not counted")
	}
	if stats := s.Store().Stats(); stats.Files != 0 {
		t.Fatal("unmatched file got a receipt")
	}
}

func TestAnalyzerReportFindsNewFeedAndFalseNegative(t *testing.T) {
	s := newServer(t, testConfig, nil)
	// A renamed BPS feed (capital P in Poller breaks %i after 'poller').
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("BPS_Poller%d_2010092504%02d.csv", i%2+1, i)
		if err := s.Deposit(name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// And a matched stream so subfeed analysis has input.
	for i := 0; i < 4; i++ {
		s.Deposit(fmt.Sprintf("CPU_POLL1_2010092504%02d.txt", i), []byte("y"))
	}
	rep := s.Analyze()
	if len(rep.NewFeeds) == 0 {
		t.Fatal("no new feeds discovered")
	}
	if len(rep.FalseNegatives) == 0 {
		t.Fatal("no false negatives detected")
	}
	if rep.FalseNegatives[0].Feed != "SNMP/BPS" {
		t.Fatalf("false negative linked to %s", rep.FalseNegatives[0].Feed)
	}
	if len(rep.Subfeeds) == 0 {
		t.Fatal("no subfeed reports")
	}
}

func TestProtocolUploadAndPush(t *testing.T) {
	// Full network path: source uploads via TCP; server classifies and
	// pushes to a subscriber daemon over TCP.
	subDir := t.TempDir()
	daemon, err := subclient.Start("127.0.0.1:0", subclient.Options{Name: "wh", DestDir: subDir})
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Stop()

	cfgSrc := fmt.Sprintf(`
feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M.txt" }
subscriber wh {
    host "%s"
    dest "in"
    subscribe CPU
}
`, daemon.Addr())
	s := newServer(t, cfgSrc, func(o *Options) { o.Listen = "127.0.0.1:0" })

	src, err := sourceclient.Dial(s.Addr(), "poller1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Upload("CPU_POLL1_201009250451.txt", []byte("cpu=42\n")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(subDir, "in", "CPU", "CPU_POLL1_201009250451.txt")
	waitFor(t, "pushed file", func() bool {
		_, err := os.Stat(want)
		return err == nil
	})
	got, _ := os.ReadFile(want)
	if string(got) != "cpu=42\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestSourcePunctuationFiresBatchTrigger(t *testing.T) {
	marker := filepath.Join(t.TempDir(), "fired")
	cfgSrc := fmt.Sprintf(`
feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M.txt" }
subscriber wh {
    dest "in"
    subscribe CPU
    trigger batch count 100 timeout 1h exec "touch %s"
}
`, marker)
	s := newServer(t, cfgSrc, func(o *Options) { o.Listen = "127.0.0.1:0" })

	src, err := sourceclient.Dial(s.Addr(), "poller1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 3; i++ {
		if err := src.Upload(fmt.Sprintf("CPU_POLL%d_201009250451.txt", i+1), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Deliveries happen, batch stays open (count 100, timeout 1h).
	waitFor(t, "deliveries", func() bool {
		st, _ := s.Logger().Stats("CPU")
		return st.Delivered == 3
	})
	if _, err := os.Stat(marker); err == nil {
		t.Fatal("trigger fired before punctuation")
	}
	if err := src.EndOfBatch("CPU"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "trigger marker", func() bool {
		_, err := os.Stat(marker)
		return err == nil
	})
}

func TestRestartBackfillsMissedHistory(t *testing.T) {
	root := t.TempDir()
	cfg := `
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
`
	opts := Options{Config: mustConfig(t, cfg), Root: root, ScanInterval: -1, NoSync: false}
	s1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	s1.Deposit("CPU_POLL1_201009250451.txt", []byte("v1"))
	waitFor(t, "first delivery", func() bool {
		st, _ := s1.Logger().Stats("CPU")
		return st.Delivered == 1
	})
	s1.Stop()

	// Second server instance over the same root with an additional
	// subscriber: the receipt DB knows the history; the newcomer gets
	// backfilled, the old subscriber does not get duplicates.
	cfg2 := `
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
subscriber late { dest "late-in" subscribe CPU }
`
	s2, err := New(Options{Config: mustConfig(t, cfg2), Root: root, ScanInterval: -1, NoSync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(root, "late-in", "CPU", "CPU_POLL1_201009250451.txt")
	waitFor(t, "latecomer backfill", func() bool {
		_, err := os.Stat(want)
		return err == nil
	})
	if got := s2.Store().DeliveredCount("wh"); got != 1 {
		t.Fatalf("wh delivered count = %d (duplicate?)", got)
	}
}

func TestCascadedServers(t *testing.T) {
	// Server A pushes feed files to server B (a Bistro acting as a
	// subscriber of another Bistro); B classifies and delivers them to
	// its own local subscriber.
	rootB := t.TempDir()
	cfgB := `
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber analyst { dest "analyst-in" subscribe CPU }
`
	b, err := New(Options{Config: mustConfig(t, cfgB), Root: rootB, ScanInterval: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}

	// B's ingress: a subscriber daemon that deposits into B's landing.
	relay, err := subclient.Start("127.0.0.1:0", subclient.Options{
		Name:    "bistroB",
		DestDir: b.Landing().Dir(),
		OnFile: func(rel string) {
			// Upstream delivers under its staging layout ("CPU/...");
			// flatten to the bare filename B's patterns expect.
			base := filepath.Base(filepath.FromSlash(rel))
			if base != rel {
				os.Rename(
					filepath.Join(b.Landing().Dir(), filepath.FromSlash(rel)),
					filepath.Join(b.Landing().Dir(), base),
				)
			}
			b.Landing().FileReady(base)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Stop()

	cfgA := fmt.Sprintf(`
feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M.txt" }
subscriber bistroB {
    host "%s"
    dest ""
    subscribe CPU
}
`, relay.Addr())
	a := newServer(t, cfgA, nil)
	if err := a.Deposit("CPU_POLL7_201009250451.txt", []byte("cascade")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(rootB, "analyst-in", "CPU", "CPU_POLL7_201009250451.txt")
	waitFor(t, "cascaded delivery", func() bool {
		_, err := os.Stat(want)
		return err == nil
	})
	got, _ := os.ReadFile(want)
	if string(got) != "cascade" {
		t.Fatalf("content = %q", got)
	}
}

func TestWindowExpiryMovesToArchive(t *testing.T) {
	cfgSrc := `
window 1h
archive "arch"
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
`
	s := newServer(t, cfgSrc, func(o *Options) { o.ExpiryInterval = -1 })
	// Data time far in the past relative to the wall clock.
	if err := s.Deposit("CPU_POLL1_201009250451.txt", []byte("old")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery", func() bool {
		st, _ := s.Logger().Stats("CPU")
		return st.Delivered == 1
	})
	n, err := s.Archiver().ExpireOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("expired = %d", n)
	}
	if _, err := os.Stat(filepath.Join(s.root, "arch", "CPU", "CPU_POLL1_201009250451.txt")); err != nil {
		t.Fatal("expired file not in archive")
	}
}

func TestMultiFeedFileDeliveredToBothFeedSubscribers(t *testing.T) {
	cfgSrc := `
feed ALL  { pattern "*_%Y%m%d%H%M.csv" }
feed BPS  { pattern "BPS_poller%i_%Y%m%d%H%M.csv" }
subscriber everything { dest "all-in" subscribe ALL }
subscriber billing    { dest "bill-in" subscribe BPS }
`
	s := newServer(t, cfgSrc, nil)
	if err := s.Deposit("BPS_poller1_201009250451.csv", []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both deliveries", func() bool {
		return s.Store().DeliveredCount("everything") == 1 &&
			s.Store().DeliveredCount("billing") == 1
	})
}

func TestDeliveryEventsReachTap(t *testing.T) {
	var events []delivery.Event
	done := make(chan struct{}, 16)
	s := newServer(t, testConfig, func(o *Options) {
		o.OnEvent = func(ev delivery.Event) {
			events = append(events, ev) // serialized by engine emit? copy via channel below
			done <- struct{}{}
		}
	})
	s.Deposit("CPU_POLL1_201009250451.txt", []byte("x"))
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("no events")
	}
}

func TestHybridPullFetch(t *testing.T) {
	// A notify-method subscriber is told a file exists, then pulls it
	// through the protocol at a time of its choosing (§4.1 hybrid
	// push-pull).
	subDir := t.TempDir()
	daemon, err := subclient.Start("127.0.0.1:0", subclient.Options{Name: "viz", DestDir: subDir})
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Stop()

	cfgSrc := fmt.Sprintf(`
feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M.txt" }
subscriber viz {
    host "%s"
    dest "in"
    subscribe CPU
    method notify
}
`, daemon.Addr())
	s := newServer(t, cfgSrc, func(o *Options) { o.Listen = "127.0.0.1:0" })

	if err := s.Deposit("CPU_POLL1_201009250451.txt", []byte("pull me")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "notification", func() bool { return len(daemon.Notifications()) == 1 })
	n := daemon.Notifications()[0]

	// The subscriber fetches when it pleases.
	conn, err := protocolDial(t, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(protocol.Fetch{FileID: n.FileID}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := reply.(protocol.Deliver)
	if !ok {
		t.Fatalf("reply = %#v", reply)
	}
	if string(d.Data) != "pull me" {
		t.Fatalf("data = %q", d.Data)
	}
	// Unknown id errors.
	if err := conn.Send(protocol.Fetch{FileID: 99999}); err != nil {
		t.Fatal(err)
	}
	reply, err = conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := reply.(protocol.Ack); !ok || ack.OK {
		t.Fatalf("unknown id reply = %#v", reply)
	}
}

func protocolDial(t *testing.T, addr string) (*protocol.Conn, error) {
	t.Helper()
	return protocol.Dial(addr, 2*time.Second)
}

func TestAnalyzeSuggestsGroups(t *testing.T) {
	s := newServer(t, testConfig, nil)
	// Two structurally identical unmatched feeds — the analyzer should
	// suggest bundling them.
	for i := 0; i < 6; i++ {
		ts := fmt.Sprintf("2010092504%02d", i)
		s.Deposit(fmt.Sprintf("LINKUTIL_probe%d_%s.dat", i%2+1, ts), []byte("x"))
		s.Deposit(fmt.Sprintf("LINKLOSS_probe%d_%s.dat", i%2+1, ts), []byte("x"))
	}
	rep := s.Analyze()
	if len(rep.NewFeeds) < 2 {
		t.Fatalf("new feeds = %d", len(rep.NewFeeds))
	}
	foundPair := false
	for _, g := range rep.SuggestedGroups {
		if len(g.Members) >= 2 {
			foundPair = true
		}
	}
	if !foundPair {
		t.Fatalf("no multi-member group suggested: %+v", rep.SuggestedGroups)
	}
}

func TestFetchFallsBackToArchive(t *testing.T) {
	cfgSrc := `
window 1h
archive "arch"
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
`
	s := newServer(t, cfgSrc, func(o *Options) {
		o.Listen = "127.0.0.1:0"
		o.ExpiryInterval = -1
	})
	if err := s.Deposit("CPU_POLL1_201009250451.txt", []byte("historical")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery", func() bool {
		st, _ := s.Logger().Stats("CPU")
		return st.Delivered == 1
	})
	// Find the file id, then expire the window (the 2010 data time is
	// far outside a 1h window relative to the wall clock).
	files := s.Store().FilesInFeed("CPU")
	if len(files) != 1 {
		t.Fatalf("files = %d", len(files))
	}
	id := files[0].ID
	if n, err := s.Archiver().ExpireOnce(); err != nil || n != 1 {
		t.Fatalf("expire = %d, %v", n, err)
	}
	// A long-horizon subscriber can still pull the file: the server
	// serves it from the archive.
	conn, err := protocolDial(t, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(protocol.Fetch{FileID: id}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := reply.(protocol.Deliver)
	if !ok {
		t.Fatalf("reply = %#v", reply)
	}
	if string(d.Data) != "historical" {
		t.Fatalf("data = %q", d.Data)
	}
}

func TestRevisedDefinitionClaimsQuarantinedFiles(t *testing.T) {
	// Run 1: no feed matches these files; they are quarantined.
	root := t.TempDir()
	cfg1 := `
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
`
	s1, err := New(Options{Config: mustConfig(t, cfg1), Root: root, ScanInterval: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s1.Deposit(fmt.Sprintf("MEM_PROBE%d_201009250451.dat", i), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s1.Logger().Unmatched(); got != 3 {
		t.Fatalf("unmatched = %d", got)
	}
	s1.Stop()

	// Run 2: a revised configuration adds a feed covering them; the
	// quarantined files must be claimed and delivered.
	cfg2 := `
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
feed MEM { pattern "MEM_PROBE%i_%Y%m%d%H%M.dat" }
subscriber wh { dest "in" subscribe CPU subscribe MEM }
`
	s2, err := New(Options{Config: mustConfig(t, cfg2), Root: root, ScanInterval: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		want := filepath.Join(root, "in", "MEM", fmt.Sprintf("MEM_PROBE%d_201009250451.dat", i))
		waitFor(t, "revised-definition delivery", func() bool {
			_, err := os.Stat(want)
			return err == nil
		})
	}
	// The quarantine is empty of claimed files.
	entries, _ := os.ReadDir(filepath.Join(root, "staging", "_unmatched"))
	if len(entries) != 0 {
		t.Fatalf("quarantine not drained: %v", entries)
	}
}

func TestMonitorLoopRaisesAlarms(t *testing.T) {
	var mu sync.Mutex
	var alarms []feedlog.Alarm
	cfgSrc := `
feed CPU {
    pattern "CPU_POLL%i_%Y%m%d%H%M.txt"
    expect 5m 3
}
subscriber wh { dest "in" subscribe CPU }
`
	s := newServer(t, cfgSrc, func(o *Options) {
		o.MonitorInterval = 10 * time.Millisecond
		o.OnAlarm = func(a feedlog.Alarm) {
			mu.Lock()
			alarms = append(alarms, a)
			mu.Unlock()
		}
	})
	// One file from a 3-source fleet, with a data time in the distant
	// past: the interval closes immediately and is incomplete, and the
	// feed goes stale relative to its 5m cadence.
	if err := s.Deposit("CPU_POLL1_201009250451.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "monitoring alarms", func() bool {
		mu.Lock()
		defer mu.Unlock()
		hasIncomplete := false
		for _, a := range alarms {
			if strings.Contains(a.Message, "incomplete") {
				hasIncomplete = true
			}
		}
		return hasIncomplete
	})
}

func TestSubscriberDaemonRestartRecovers(t *testing.T) {
	// A remote subscriber daemon dies mid-stream and comes back on the
	// same address: the cached connection breaks, the prober detects
	// recovery, and the receipt-driven backfill delivers what was
	// missed — over real TCP.
	subDir := t.TempDir()
	daemon, err := subclient.Start("127.0.0.1:0", subclient.Options{Name: "wh", DestDir: subDir})
	if err != nil {
		t.Fatal(err)
	}
	addr := daemon.Addr()

	cfgSrc := fmt.Sprintf(`
feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M.txt" }
subscriber wh {
    host "%s"
    dest "in"
    subscribe CPU
    retry 1
}
`, addr)
	s := newServer(t, cfgSrc, nil)

	if err := s.Deposit("CPU_POLL1_201009250451.txt", []byte("one")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first delivery", func() bool { return s.Store().DeliveredCount("wh") == 1 })

	// Kill the daemon; deposit while it is down.
	daemon.Stop()
	if err := s.Deposit("CPU_POLL2_201009250451.txt", []byte("two")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "offline detection", func() bool { return s.Engine().Offline("wh") })

	// Restart on the same address; the prober reconnects and backfills.
	daemon2, err := subclient.Start(addr, subclient.Options{Name: "wh", DestDir: subDir})
	if err != nil {
		t.Fatal(err)
	}
	defer daemon2.Stop()
	waitFor(t, "backfill after restart", func() bool { return s.Store().DeliveredCount("wh") == 2 })
	got, err := os.ReadFile(filepath.Join(subDir, "in", "CPU", "CPU_POLL2_201009250451.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("content = %q", got)
	}
}

func TestStreamingDeliveryOverTCP(t *testing.T) {
	// Force every transfer through the chunked path and push a file
	// larger than one chunk end to end.
	subDir := t.TempDir()
	daemon, err := subclient.Start("127.0.0.1:0", subclient.Options{Name: "wh", DestDir: subDir})
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Stop()
	cfgSrc := fmt.Sprintf(`
feed BLOB { pattern "blob_%%Y%%m%%d%%H%%M.bin" }
subscriber wh { host "%s" dest "in" subscribe BLOB }
`, daemon.Addr())
	s := newServer(t, cfgSrc, func(o *Options) { o.StreamThreshold = 1 })

	payload := make([]byte, 600<<10)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if err := s.Deposit("blob_201009250451.bin", payload); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(subDir, "in", "BLOB", "blob_201009250451.bin")
	waitFor(t, "streamed delivery", func() bool {
		st, err := os.Stat(want)
		return err == nil && st.Size() == int64(len(payload))
	})
	got, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("content mismatch at byte %d", i)
		}
	}
}

func TestStatusSummary(t *testing.T) {
	s := newServer(t, testConfig, nil)
	s.Deposit("CPU_POLL1_201009250451.txt", []byte("x"))
	waitFor(t, "delivery", func() bool {
		st, _ := s.Logger().Stats("SNMP/CPU")
		return st.Delivered == 1
	})
	sum := s.StatusSummary()
	for _, want := range []string{"== feeds ==", "SNMP/CPU", "== subscribers ==", "wh: delivered=1", "== receipts ==", "files=1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestAnalyzeLoopRaisesFalseNegativeAlarm(t *testing.T) {
	var mu sync.Mutex
	var alarms []feedlog.Alarm
	s := newServer(t, testConfig, func(o *Options) {
		o.AnalyzeInterval = 20 * time.Millisecond
		o.OnAlarm = func(a feedlog.Alarm) {
			mu.Lock()
			alarms = append(alarms, a)
			mu.Unlock()
		}
	})
	// Renamed BPS files: unmatched, structurally similar to SNMP/BPS.
	for i := 0; i < 6; i++ {
		s.Deposit(fmt.Sprintf("BPS_Poller%d_2010092504%02d.csv", i%2+1, i), []byte("x"))
	}
	waitFor(t, "analyzer alarm", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, a := range alarms {
			if a.Feed == "SNMP/BPS" && strings.Contains(a.Message, "false negatives") {
				return true
			}
		}
		return false
	})
}

func TestConfiguredSchedulerLayout(t *testing.T) {
	cfgSrc := `
scheduler {
    partition fast { workers 1 policy edf }
    partition slow { workers 2 backfill 1 }
}
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber viz  { dest "v" subscribe CPU class interactive }
subscriber bulk { dest "b" subscribe CPU }
`
	s := newServer(t, cfgSrc, nil)
	sched := s.Engine().Scheduler()
	parts := sched.Partitions()
	if len(parts) != 2 || parts[0].Name != "fast" || parts[1].Name != "slow" || parts[1].BackfillWorkers != 1 {
		t.Fatalf("partitions = %+v", parts)
	}
	if got := sched.PartitionOf("viz"); got != 0 {
		t.Fatalf("viz partition = %d", got)
	}
	if got := sched.PartitionOf("bulk"); got != 1 {
		t.Fatalf("bulk partition = %d", got)
	}
	// The configured layout actually delivers.
	s.Deposit("CPU_POLL1_201009250451.txt", []byte("x"))
	waitFor(t, "both deliveries", func() bool {
		return s.Store().DeliveredCount("viz") == 1 && s.Store().DeliveredCount("bulk") == 1
	})
}

func TestAddSubscriberAtRuntime(t *testing.T) {
	s := newServer(t, testConfig, nil)
	// History accumulates before the newcomer exists.
	for i := 0; i < 4; i++ {
		s.Deposit(fmt.Sprintf("CPU_POLL1_2010092504%02d.txt", i), []byte("h"))
	}
	waitFor(t, "initial deliveries", func() bool { return s.Store().DeliveredCount("wh") == 4 })

	late := &config.Subscriber{
		Name:          "late",
		Dest:          "late-in",
		Subscriptions: []string{"SNMP/CPU"},
		Class:         "interactive",
	}
	if err := s.AddSubscriber(late); err != nil {
		t.Fatal(err)
	}
	// Full history backfill...
	waitFor(t, "history backfill", func() bool { return s.Store().DeliveredCount("late") == 4 })
	// ...and future real-time traffic.
	s.Deposit("CPU_POLL1_201009250599.txt", []byte("n")) // minute 99 invalid -> unmatched? use valid minute
	s.Deposit("CPU_POLL1_201009250559.txt", []byte("n"))
	waitFor(t, "new traffic to late", func() bool { return s.Store().DeliveredCount("late") >= 5 })
	if _, err := os.Stat(filepath.Join(s.root, "late-in", "SNMP", "CPU", "CPU_POLL1_201009250400.txt")); err != nil {
		t.Fatalf("backfilled file missing: %v", err)
	}
	// Duplicate registration and unknown feeds are rejected.
	if err := s.AddSubscriber(late); err == nil {
		t.Fatal("duplicate subscriber accepted")
	}
	if err := s.AddSubscriber(&config.Subscriber{Name: "x", Subscriptions: []string{"NOPE"}}); err == nil {
		t.Fatal("unknown feed accepted")
	}
}

func TestSubscribeFromReplaysArchivedHistory(t *testing.T) {
	cfgSrc := `
window 1h
archive "arch"

replay {
    rate 500
}

feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
`
	s := newServer(t, cfgSrc, func(o *Options) {
		o.ExpiryInterval = -1 // expiry and compaction driven explicitly
		o.Listen = "127.0.0.1:0"
	})

	// History: data times two days before the wall clock, far outside
	// the 1h window. No subscriber exists yet, so nothing is delivered.
	old := time.Now().UTC().Add(-48 * time.Hour)
	var histNames []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("CPU_POLL1_%s.txt", old.Add(time.Duration(i)*time.Minute).Format("200601021504"))
		histNames = append(histNames, name)
		if err := s.Deposit(name, []byte("hist:"+name)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Archiver().ExpireOnce(); err != nil || n != 5 {
		t.Fatalf("expired = %d, %v", n, err)
	}
	if s.Archiver().Manifest().Len() != 5 {
		t.Fatalf("manifest entries = %d", s.Archiver().Manifest().Len())
	}
	// Fold the archived receipts: the manifest becomes their only
	// record, so replay must work through the HistoryMeta seam.
	if n, err := s.CompactReceipts(); err != nil || n != 5 {
		t.Fatalf("compacted = %d, %v", n, err)
	}
	if st := s.Store().Stats(); st.Files != 0 {
		t.Fatalf("receipts not folded: %+v", st)
	}

	// One live file inside the window.
	liveName := fmt.Sprintf("CPU_POLL2_%s.txt", time.Now().UTC().Format("200601021504"))
	if err := s.Deposit(liveName, []byte("live")); err != nil {
		t.Fatal(err)
	}

	// SUBSCRIBE CPU FROM three days ago, over the wire.
	err := subclient.Subscribe(s.Addr(), subclient.SubscribeSpec{
		Name:  "wh",
		Dest:  "wh-in",
		Feeds: []string{"CPU"},
		From:  time.Now().UTC().Add(-72 * time.Hour),
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, "replay session handoff", func() bool {
		ss := s.Replay().Sessions()
		return len(ss) == 1 && ss[0].Done
	})
	ss := s.Replay().Sessions()[0]
	if ss.Total != 5 || ss.Streamed != 5 || ss.Skipped != 0 || ss.Delivered != 5 {
		t.Fatalf("session = %+v", ss)
	}
	waitFor(t, "live delivery", func() bool {
		_, err := os.Stat(filepath.Join(s.root, "wh-in", "CPU", liveName))
		return err == nil
	})
	// Every archived file arrived, with content intact, exactly once.
	for _, name := range histNames {
		got, err := os.ReadFile(filepath.Join(s.root, "wh-in", "CPU", name))
		if err != nil {
			t.Fatalf("replayed file missing: %v", err)
		}
		if string(got) != "hist:"+name {
			t.Fatalf("replayed content = %q", got)
		}
	}
	entries, err := os.ReadDir(filepath.Join(s.root, "wh-in", "CPU"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("delivered %d files, want 6 (5 archive + 1 live)", len(entries))
	}
	// The session shows up in the structured status snapshot.
	if st := s.Status(); len(st.Replay) != 1 || st.Replay[0].Subscriber != "wh" {
		t.Fatalf("status replay = %+v", st.Replay)
	}
	// Re-subscribing with the same FROM is idempotent: everything is
	// receipted as delivered now, so the new session skips it all.
	err = subclient.Subscribe(s.Addr(), subclient.SubscribeSpec{
		Name:  "wh",
		Dest:  "wh-in",
		Feeds: []string{"CPU"},
		From:  time.Now().UTC().Add(-72 * time.Hour),
	}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-subscription session", func() bool {
		ss := s.Replay().Sessions()
		return len(ss) == 1 && ss[0].Done && ss[0].Skipped == 5
	})
	if entries, _ = os.ReadDir(filepath.Join(s.root, "wh-in", "CPU")); len(entries) != 6 {
		t.Fatalf("re-subscription duplicated deliveries: %d files", len(entries))
	}
}

func TestSubscribeFromWithoutReplayRefused(t *testing.T) {
	s := newServer(t, testConfig, func(o *Options) { o.Listen = "127.0.0.1:0" })
	err := subclient.Subscribe(s.Addr(), subclient.SubscribeSpec{
		Name:  "late",
		Dest:  "late-in",
		Feeds: []string{"SNMP/CPU"},
		From:  time.Now().Add(-24 * time.Hour),
	}, 5*time.Second)
	if err == nil {
		t.Fatal("FROM subscription accepted without a replay block")
	}
}
