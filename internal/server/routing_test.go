package server

import (
	"fmt"
	"hash/crc32"
	"net"
	"testing"
	"time"

	"bistro/internal/cluster"
	"bistro/internal/protocol"
	"bistro/internal/sourceclient"
)

func crc32of(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// reserveAddr binds and releases an ephemeral localhost address so the
// static topology can name it before the server exists.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// splitFeeds finds one feed name owned by node a and one owned by node
// b in the fixed two-node ring, so the routing tests exercise both the
// local and the forwarded path regardless of how the hash falls.
func splitFeeds(t *testing.T) (ownedByA, ownedByB string) {
	t.Helper()
	sm, err := cluster.NewShardMap(cluster.Topology{Nodes: []cluster.Node{
		{Name: "a", Addr: "x"}, {Name: "b", Addr: "x"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range []string{"CPU", "BPS", "MEM", "NET", "DISK", "FLOW"} {
		switch sm.Owner(cand).Name {
		case "a":
			if ownedByA == "" {
				ownedByA = cand
			}
		case "b":
			if ownedByB == "" {
				ownedByB = cand
			}
		}
		if ownedByA != "" && ownedByB != "" {
			return ownedByA, ownedByB
		}
	}
	t.Fatal("candidate feeds all hash to one node; extend the candidate list")
	return "", ""
}

// startTwoNodeCluster runs both nodes of a two-feed topology from one
// shared configuration text (node b via the NodeName override, as a
// second host would run it).
func startTwoNodeCluster(t *testing.T) (nodeA, nodeB *Server, feedA, feedB string) {
	t.Helper()
	feedA, feedB = splitFeeds(t)
	addrA, addrB := reserveAddr(t), reserveAddr(t)
	cfgSrc := fmt.Sprintf(`
cluster {
    self "a"
    node "a" { addr "%s" }
    node "b" { addr "%s" }
}
feed %s { pattern "%s_%%Y%%m%%d%%H%%M.txt" }
feed %s { pattern "%s_%%Y%%m%%d%%H%%M.txt" }
`, addrA, addrB, feedA, feedA, feedB, feedB)
	nodeA = newServer(t, cfgSrc, func(o *Options) { o.Listen = addrA })
	nodeB = newServer(t, cfgSrc, func(o *Options) {
		o.Listen = addrB
		o.NodeName = "b"
	})
	return nodeA, nodeB, feedA, feedB
}

func TestClusterUploadForwardedToOwner(t *testing.T) {
	nodeA, nodeB, feedA, feedB := startTwoNodeCluster(t)

	src, err := sourceclient.Dial(nodeA.Addr(), "poller1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// A file of the remotely-owned feed uploaded to node a must land on
	// node b; the locally-owned feed stays on a.
	if err := src.Upload(feedB+"_201009250451.txt", []byte("remote\n")); err != nil {
		t.Fatal(err)
	}
	if err := src.Upload(feedA+"_201009250451.txt", []byte("local\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "forwarded ingest on node b", func() bool {
		return nodeB.Store().Stats().Files == 1
	})
	waitFor(t, "local ingest on node a", func() bool {
		return nodeA.Store().Stats().Files == 1
	})
	for _, meta := range nodeB.Store().AllFiles() {
		if len(meta.Feeds) != 1 || meta.Feeds[0] != feedB {
			t.Fatalf("node b ingested %v, want only %s", meta.Feeds, feedB)
		}
	}
	for _, meta := range nodeA.Store().AllFiles() {
		if len(meta.Feeds) != 1 || meta.Feeds[0] != feedA {
			t.Fatalf("node a kept %v, want only %s", meta.Feeds, feedA)
		}
	}
}

func TestClusterResolveAndSubscribeRedirect(t *testing.T) {
	nodeA, _, feedA, feedB := startTwoNodeCluster(t)

	conn, err := protocol.Dial(nodeA.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Call(protocol.Hello{Role: "subscriber", Name: "wh"}); err != nil {
		t.Fatal(err)
	}

	resolve := func(feed string) protocol.Resolved {
		t.Helper()
		if err := conn.Send(protocol.Resolve{Feed: feed}); err != nil {
			t.Fatal(err)
		}
		reply, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		res, ok := reply.(protocol.Resolved)
		if !ok {
			t.Fatalf("expected Resolved, got %T", reply)
		}
		return res
	}
	if res := resolve(feedA); res.Node != "a" || !res.Owner {
		t.Fatalf("resolve %s via a = %+v, want owner a", feedA, res)
	}
	resB := resolve(feedB)
	if resB.Node != "b" || resB.Owner {
		t.Fatalf("resolve %s via a = %+v, want non-owner b", feedB, resB)
	}

	// Subscribing at the wrong node redirects to the owner's address.
	if err := conn.Send(protocol.Subscribe{Name: "wh", Dest: "in", Feeds: []string{feedB}}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := reply.(protocol.Ack)
	if !ok {
		t.Fatalf("expected Ack, got %T", reply)
	}
	if ack.OK || ack.Redirect != resB.Addr {
		t.Fatalf("subscribe to remote feed = %+v, want redirect to %s", ack, resB.Addr)
	}

	// A mixed request (one local leaf) is served locally, no redirect.
	if err := conn.Call(protocol.Subscribe{Name: "wh", Dest: "in", Feeds: []string{feedA, feedB}}); err != nil {
		t.Fatalf("mixed subscribe should be accepted locally: %v", err)
	}
}

func TestClusterRelayedUploadNeverForwardedAgain(t *testing.T) {
	// A relayed upload for a feed the receiver does not own must be
	// deposited locally (one misplaced file), not bounced back: the
	// one-hop rule is what prevents forwarding loops while shard maps
	// disagree mid-failover.
	nodeA, _, _, feedB := startTwoNodeCluster(t)

	conn, err := protocol.Dial(nodeA.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Call(protocol.Hello{Role: "source", Name: "peer"}); err != nil {
		t.Fatal(err)
	}
	data := []byte("relayed\n")
	if err := conn.Call(protocol.Upload{
		Name: feedB + "_201009250452.txt", Data: data,
		CRC: crc32of(data), Relayed: true,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "relayed upload ingested locally", func() bool {
		return nodeA.Store().Stats().Files == 1
	})
}
