package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bistro/internal/subclient"
)

// planTestConfig declares one planned feed routing into a derived
// feed that is consumed every way a leaf feed can be: a TCP push
// subscriber, a shared delivery channel, and the HTTP pull plane.
const planTestConfig = `
window 72h

feed EVENTS {
    pattern "events_%Y%m%d%H.csv"
    plan {
        parse csv
        validate { columns 2 }
        extract region 1
        route region {
            "east" EAST
        }
    }
}
feed EAST { }

subscriber wh { dest "ev-in" subscribe EVENTS }
subscriber c1 { dest "c1-in" subscribe EAST }
subscriber c2 { dest "c2-in" subscribe EAST }

channels {
    group eastg {
        feed EAST
        member c1
        member c2
    }
}

http {
    listen "127.0.0.1:0"
    principal tool {
        token "t0k3n"
        feed EAST
    }
}
`

// TestPlanDerivedFeedEndToEnd drives a routed arrival all the way out
// every data plane: the derived feed is staged, recorded with
// provenance, fanned out through its channel, and pullable over HTTP
// with correct sequence cursors.
func TestPlanDerivedFeedEndToEnd(t *testing.T) {
	s := newServer(t, planTestConfig, nil)
	input := "east,1\nwest,2\nbad\neast,3\n"
	if err := s.Deposit("events_2010092504.csv", []byte(input)); err != nil {
		t.Fatal(err)
	}

	// Primary staged output keeps only the unrouted, valid records.
	pri := filepath.Join(s.stage, "EVENTS", "events_2010092504.csv")
	if got, err := os.ReadFile(pri); err != nil || string(got) != "west,2\n" {
		t.Fatalf("primary staged = %q, %v", got, err)
	}
	// Derived staged output holds the routed records under the derived
	// feed's own staging tree.
	east := filepath.Join(s.stage, "EAST", "events_2010092504.csv")
	if got, err := os.ReadFile(east); err != nil || string(got) != "east,1\neast,3\n" {
		t.Fatalf("derived staged = %q, %v", got, err)
	}
	// The validate reject landed in the plan quarantine, tagged with
	// its reason.
	rej := filepath.Join(s.quar, "_plan", "EVENTS", "events_2010092504.csv.rejects")
	if got, err := os.ReadFile(rej); err != nil || !strings.Contains(string(got), "columns 1 (want 2)") {
		t.Fatalf("rejects = %q, %v", got, err)
	}
	// Landing is clear.
	entries, _ := os.ReadDir(s.land.Dir())
	if len(entries) != 0 {
		t.Fatalf("landing not empty: %v", entries)
	}

	// Receipts: parent + derived committed together, the derived one
	// carrying Origin provenance back to the parent.
	files := s.Store().AllFiles()
	if len(files) != 2 {
		t.Fatalf("files = %+v, want 2", files)
	}
	parent, derived := files[0], files[1]
	if parent.Feeds[0] != "EVENTS" || parent.Origin != 0 {
		t.Fatalf("parent = %+v", parent)
	}
	if derived.Feeds[0] != "EAST" || derived.Origin != parent.ID {
		t.Fatalf("derived = %+v, want origin %d", derived, parent.ID)
	}

	// The primary subscriber gets the lean primary file.
	waitFor(t, "primary delivery", func() bool {
		_, err := os.Stat(filepath.Join(s.root, "ev-in", "EVENTS", "events_2010092504.csv"))
		return err == nil
	})
	// The channel fans the derived file to both members with a group
	// receipt, like any leaf feed.
	for _, dest := range []string{"c1-in", "c2-in"} {
		want := filepath.Join(s.root, dest, "EAST", "events_2010092504.csv")
		waitFor(t, "channel delivery to "+dest, func() bool {
			got, err := os.ReadFile(want)
			return err == nil && string(got) == "east,1\neast,3\n"
		})
	}
	if _, ok := s.Store().GroupCovers("eastg", derived.ID); !ok {
		t.Fatal("group receipt does not cover the derived file")
	}

	// The HTTP pull plane serves the derived feed's log and content
	// with the derived receipt's sequence number.
	resp, body := pullOnce(t, s.HTTPAddr(), "/feeds/EAST")
	if resp.StatusCode != 200 {
		t.Fatalf("log status %d: %s", resp.StatusCode, body)
	}
	var page pullPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 1 || page.Entries[0].Seq != derived.ID {
		t.Fatalf("page = %+v, want seq %d", page, derived.ID)
	}
	resp, body = pullOnce(t, s.HTTPAddr(), fmt.Sprintf("/feeds/EAST/files/%d", derived.ID))
	if resp.StatusCode != 200 || string(body) != "east,1\neast,3\n" {
		t.Fatalf("content status %d body %q", resp.StatusCode, body)
	}
}

// TestPlanDerivedFeedTCPPush wires a real subscriber daemon to the
// derived feed: a routed record set must arrive over TCP like any
// directly-deposited file.
func TestPlanDerivedFeedTCPPush(t *testing.T) {
	subDir := t.TempDir()
	daemon, err := subclient.Start("127.0.0.1:0", subclient.Options{Name: "whE", DestDir: subDir})
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Stop()

	cfgSrc := fmt.Sprintf(`
feed EVENTS {
    pattern "events_%%Y%%m%%d%%H.csv"
    plan {
        parse csv
        extract region 1
        route region { "east" EAST }
    }
}
feed EAST { }
subscriber whE {
    host "%s"
    dest "in"
    subscribe EAST
}
`, daemon.Addr())
	s := newServer(t, cfgSrc, nil)
	if err := s.Deposit("events_2010092504.csv", []byte("east,1\nwest,2\n")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(subDir, "in", "EAST", "events_2010092504.csv")
	waitFor(t, "TCP push of derived file", func() bool {
		_, err := os.Stat(want)
		return err == nil
	})
	if got, _ := os.ReadFile(want); string(got) != "east,1\n" {
		t.Fatalf("pushed content = %q", got)
	}
}

// TestPlanEnrichAtDelivery pins IDEA's at-delivery placement: the
// staged file stays lean, and each subscriber push carries the join.
func TestPlanEnrichAtDelivery(t *testing.T) {
	cfgSrc := `
feed EVENTS {
    pattern "events_%Y%m%d%H.csv"
    plan {
        parse csv
        extract region 1
        enrich {
            table "tables/regions.csv"
            key region
            at delivery
        }
    }
}
subscriber wh { dest "in" subscribe EVENTS }
`
	s := newServer(t, cfgSrc, func(o *Options) {
		dir := filepath.Join(o.Root, "tables")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "regions.csv"), []byte("east,us\nwest,eu\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if err := s.Deposit("events_2010092504.csv", []byte("east,1\nwest,2\n")); err != nil {
		t.Fatal(err)
	}
	// Staged: lean, un-enriched.
	pri := filepath.Join(s.stage, "EVENTS", "events_2010092504.csv")
	if got, err := os.ReadFile(pri); err != nil || string(got) != "east,1\nwest,2\n" {
		t.Fatalf("staged = %q, %v (want lean records)", got, err)
	}
	// Delivered: joined per push.
	want := filepath.Join(s.root, "in", "EVENTS", "events_2010092504.csv")
	waitFor(t, "enriched delivery", func() bool {
		got, err := os.ReadFile(want)
		return err == nil && string(got) == "east,1,us\nwest,2,eu\n"
	})
}

// TestPlanlessStagingGolden pins the no-plan path byte for byte: a
// config without plan blocks must stage exactly the layout and bytes
// the pre-plan pipeline produced (golden expectations below were
// captured from the seed behavior).
func TestPlanlessStagingGolden(t *testing.T) {
	cfgSrc := `
window 72h
feedgroup SNMP {
    feed BPS {
        pattern "BPS_poller%i_%Y%m%d%H%M.csv"
        normalize "%Y/%m/%d/BPS_poller%i_%H%M.csv"
        compress gzip
    }
    feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
}
`
	s := newServer(t, cfgSrc, nil)
	deposits := map[string]string{
		"BPS_poller1_201009250451.csv": "a,b\n1,2\n",
		"CPU_POLL7_201009250452.txt":   "cpu=42\n",
		"junk.tmp":                     "x",
	}
	for name, content := range deposits {
		if err := s.Deposit(name, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	golden := map[string]string{
		filepath.Join("SNMP", "BPS", "2010", "09", "25", "BPS_poller1_0451.csv.gz"): "", // gzip: checked by size>0 below
		filepath.Join("SNMP", "CPU", "CPU_POLL7_201009250452.txt"):                  "cpu=42\n",
		filepath.Join("_unmatched", "junk.tmp"):                                     "x",
	}
	var got []string
	filepath.Walk(s.stage, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(s.stage, path)
		got = append(got, rel)
		want, ok := golden[rel]
		if !ok {
			t.Errorf("unexpected staged file %s", rel)
			return nil
		}
		data, _ := os.ReadFile(path)
		if want != "" && string(data) != want {
			t.Errorf("%s = %q, want %q", rel, data, want)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", rel)
		}
		return nil
	})
	if len(got) != len(golden) {
		t.Fatalf("staged files = %v, want %d entries", got, len(golden))
	}
}
