package server

import (
	"compress/gzip"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"time"

	"bistro/internal/classifier"
	"bistro/internal/config"
	"bistro/internal/diskfault"
	"bistro/internal/normalize"
	"bistro/internal/pattern"
	"bistro/internal/plan"
	"bistro/internal/receipts"
)

// maxPlanDepth bounds derived-feed recursion. Config resolve rejects
// cycles, so this only guards against configs built outside Parse.
const maxPlanDepth = 16

// processPlanned is processArrival's operator-DAG path: it runs the
// primary feed's compiled plan over the landing file, stages the
// primary output plus every derived output (recursively running
// derived feeds' own plans), ships them, clears landing, and commits
// the whole receipt family — parent plus derived, Origin provenance
// set — in one WAL transaction. Crash seams mirror the fixed path:
// every staged output is durable (temp + fsync + rename + dir fsync)
// before the landing file is removed, and all staged/quarantine names
// are deterministic, so a re-run after a power cut overwrites rather
// than duplicates.
func (s *Server) processPlanned(prog *plan.Program, matches []classifier.Match, root, rel string, now time.Time) ([]receipts.FileMeta, error) {
	name := filepath.ToSlash(rel)
	src := filepath.Join(root, rel)
	primary := matches[0]

	in, err := s.fs.Open(src)
	if err != nil {
		return nil, fmt.Errorf("server: open landing %s: %w", name, err)
	}
	outs, err := s.runPlanned(prog, primary.Feed, name, primary.Fields, in, 0)
	in.Close()
	if err != nil {
		return nil, fmt.Errorf("server: plan %s: %w", name, err)
	}

	for _, o := range outs {
		if err := s.shipStaged(o.staged); err != nil {
			return nil, err
		}
	}
	if err := s.fs.Remove(src); err != nil {
		return nil, fmt.Errorf("server: clear landing %s: %w", name, err)
	}

	feeds := make([]string, len(matches))
	for i, m := range matches {
		feeds[i] = m.Feed.Path
	}
	var dataTime time.Time
	if ts, ok := primary.Fields.Time.Timestamp(time.UTC); ok {
		dataTime = ts
	}
	metas := make([]receipts.FileMeta, len(outs))
	for i, o := range outs {
		metas[i] = receipts.FileMeta{
			Name:       name,
			StagedPath: o.staged,
			Feeds:      []string{o.feed.Path},
			Size:       o.size,
			Checksum:   o.crc,
			Arrived:    now,
			DataTime:   dataTime,
		}
	}
	metas[0].Feeds = feeds // the primary keeps every classified feed
	ids, err := s.store.RecordArrivalDerived(metas[0], metas[1:])
	if err != nil {
		return nil, err
	}
	for i := range metas {
		metas[i].ID = ids[i]
		if i > 0 {
			metas[i].Origin = ids[0]
		}
	}
	for _, m := range matches {
		s.logger.FileClassified(m.Feed.Path, name, metas[0].Size, dataTime)
	}
	for _, meta := range metas[1:] {
		s.logger.FileClassified(meta.Feeds[0], name, meta.Size, dataTime)
	}
	s.recordMatched(feeds, name, now, metas[0].Size)
	return metas, nil
}

// stagedOut is one committed plan output.
type stagedOut struct {
	feed   *config.Feed
	staged string // staging-relative slash path
	size   int64
	crc    uint32
}

// runPlanned executes one feed's program over content and commits its
// outputs; derived outputs whose feed declares its own plan recurse
// (the content flows through a temp file, never fully in memory). The
// returned slice always has this feed's primary output first.
func (s *Server) runPlanned(prog *plan.Program, feed *config.Feed, name string, fields *pattern.Fields, content io.Reader, depth int) ([]stagedOut, error) {
	if depth >= maxPlanDepth {
		return nil, fmt.Errorf("plan recursion depth %d exceeded at feed %s", depth, feed.Path)
	}
	var pri *stagedTemp
	derived := make(map[string]*stagedTemp)
	var rej *stagedTemp
	abort := func() {
		if pri != nil {
			pri.abort()
		}
		for _, t := range derived {
			t.abort()
		}
		if rej != nil {
			rej.abort()
		}
	}
	stats, err := prog.Run(content, plan.Sinks{
		Primary: func() (io.Writer, error) {
			t, err := s.newStagedTemp(filepath.Join(s.stage, filepath.FromSlash(feed.Path)), feed.Compress == config.CompressGzip)
			if err != nil {
				return nil, err
			}
			pri = t
			return t, nil
		},
		Derived: func(feedPath string) (io.Writer, error) {
			df, ok := s.cfg.FeedByPath(feedPath)
			if !ok {
				return nil, fmt.Errorf("unknown derived feed %s", feedPath)
			}
			// A derived feed with its own plan gets raw intermediate
			// bytes (its program applies its own output encoding).
			gz := df.Compress == config.CompressGzip && s.plans.For(feedPath) == nil
			t, err := s.newStagedTemp(filepath.Join(s.stage, filepath.FromSlash(feedPath)), gz)
			if err != nil {
				return nil, err
			}
			derived[feedPath] = t
			return t, nil
		},
		Reject: func() (io.Writer, error) {
			dst := s.planRejectPath(feed.Path, name)
			t, err := s.newStagedTemp(filepath.Dir(dst), false)
			if err != nil {
				return nil, err
			}
			rej = t
			return t, nil
		},
	})
	if err != nil {
		abort()
		return nil, err
	}

	// The first record's extracted values join the naming namespace,
	// so normalize templates with extra %s slots can consume them.
	named := fields
	if len(stats.Fields) > 0 {
		clone := *fields
		clone.Strings = append(append([]string(nil), fields.Strings...), stats.Fields...)
		named = &clone
	}
	stagedName, err := normalize.StagedName(feed, name, named)
	if err != nil {
		abort()
		return nil, err
	}
	priOut, err := pri.commit(filepath.Join(s.stage, stagedName))
	if err != nil {
		abort()
		return nil, err
	}
	outs := []stagedOut{{feed: feed, staged: filepath.ToSlash(stagedName), size: priOut.size, crc: priOut.crc}}

	targets := make([]string, 0, len(derived))
	for t := range derived {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	for _, target := range targets {
		t := derived[target]
		df, _ := s.cfg.FeedByPath(target)
		if sub := s.plans.For(target); sub != nil {
			// The derived feed has its own plan: feed the intermediate
			// through it instead of staging it directly.
			more, err := s.reprocessDerived(sub, df, name, named, t, depth+1)
			if err != nil {
				abort()
				return nil, err
			}
			outs = append(outs, more...)
			continue
		}
		dName, err := normalize.StagedName(df, name, named)
		if err != nil {
			abort()
			return nil, err
		}
		dOut, err := t.commit(filepath.Join(s.stage, dName))
		if err != nil {
			abort()
			return nil, err
		}
		outs = append(outs, stagedOut{feed: df, staged: filepath.ToSlash(dName), size: dOut.size, crc: dOut.crc})
	}
	if rej != nil {
		if _, err := rej.commit(s.planRejectPath(feed.Path, name)); err != nil {
			abort()
			return nil, err
		}
	}
	return outs, nil
}

// reprocessDerived runs a derived feed's own plan over the
// intermediate temp file a parent plan just wrote, then discards the
// intermediate.
func (s *Server) reprocessDerived(prog *plan.Program, feed *config.Feed, name string, fields *pattern.Fields, t *stagedTemp, depth int) ([]stagedOut, error) {
	if err := t.closeForRead(); err != nil {
		t.abort()
		return nil, err
	}
	defer s.fs.Remove(t.tmpName)
	in, err := s.fs.Open(t.tmpName)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return s.runPlanned(prog, feed, name, fields, in, depth)
}

// planRejectPath is the deterministic quarantine location for a
// feed's validate rejects from one arrival: re-running the same file
// after a crash overwrites, never duplicates.
func (s *Server) planRejectPath(feedPath, name string) string {
	return filepath.Join(s.quar, "_plan", filepath.FromSlash(feedPath), filepath.FromSlash(name)+".rejects")
}

// deliveryTransform is the delivery engine's seam for plans that
// defer enrichment to delivery (IDEA's at-delivery placement): it
// maps a feed to the transform its plan demands, or nil.
func (s *Server) deliveryTransform(feed string) func([]byte) ([]byte, error) {
	if p := s.plans.For(feed); p != nil {
		return p.DeliveryTransform()
	}
	return nil
}

// stagedTemp is a durable plan output being written: a temp file in
// (or near) its destination directory, CRC/size accounted at the file
// layer, optionally gzip-wrapped, committed with the same
// fsync-rename-fsync dance as normalize.ProcessFS.
type stagedTemp struct {
	s       *Server
	tmp     diskfault.File
	tmpName string
	crc     hash.Hash32
	size    int64
	zw      *gzip.Writer
	closed  bool
}

// newStagedTemp creates a temp output in dir (created as needed).
func (s *Server) newStagedTemp(dir string, gz bool) (*stagedTemp, error) {
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plan output mkdir: %w", err)
	}
	f, err := s.fs.CreateTemp(dir, ".bistro-tmp-*")
	if err != nil {
		return nil, fmt.Errorf("plan output temp: %w", err)
	}
	t := &stagedTemp{s: s, tmp: f, tmpName: f.Name(), crc: crc32.NewIEEE()}
	if gz {
		t.zw = gzip.NewWriter(fileLayer{t})
	}
	return t, nil
}

// fileLayer is the accounting layer under the optional gzip wrapper:
// receipts must describe the bytes actually staged.
type fileLayer struct{ t *stagedTemp }

func (fl fileLayer) Write(b []byte) (int, error) {
	n, err := fl.t.tmp.Write(b)
	fl.t.crc.Write(b[:n])
	fl.t.size += int64(n)
	return n, err
}

func (t *stagedTemp) Write(b []byte) (int, error) {
	if t.zw != nil {
		return t.zw.Write(b)
	}
	return fileLayer{t}.Write(b)
}

// closeForRead finalizes the temp content without renaming it —
// used when the bytes feed a derived plan instead of staging.
func (t *stagedTemp) closeForRead() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if t.zw != nil {
		if err := t.zw.Close(); err != nil {
			return fmt.Errorf("plan output gzip: %w", err)
		}
	}
	return t.tmp.Close()
}

type commitResult struct {
	size int64
	crc  uint32
}

// commit makes the output durable at dst: flush, fsync, rename, dir
// fsync — the receipt pointing at dst must survive a power cut.
func (t *stagedTemp) commit(dst string) (commitResult, error) {
	t.closed = true
	if t.zw != nil {
		if err := t.zw.Close(); err != nil {
			t.abortFile()
			return commitResult{}, fmt.Errorf("plan output gzip: %w", err)
		}
	}
	if err := t.tmp.Sync(); err != nil {
		t.abortFile()
		return commitResult{}, fmt.Errorf("plan output sync: %w", err)
	}
	if err := t.tmp.Close(); err != nil {
		t.s.fs.Remove(t.tmpName)
		return commitResult{}, fmt.Errorf("plan output close: %w", err)
	}
	if err := t.s.fs.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.s.fs.Remove(t.tmpName)
		return commitResult{}, fmt.Errorf("plan output mkdir: %w", err)
	}
	if err := t.s.fs.Rename(t.tmpName, dst); err != nil {
		t.s.fs.Remove(t.tmpName)
		return commitResult{}, fmt.Errorf("plan output rename: %w", err)
	}
	if err := t.s.fs.SyncDir(filepath.Dir(dst)); err != nil {
		return commitResult{}, fmt.Errorf("plan output sync dir: %w", err)
	}
	return commitResult{size: t.size, crc: t.crc.Sum32()}, nil
}

func (t *stagedTemp) abortFile() {
	t.tmp.Close()
	t.s.fs.Remove(t.tmpName)
}

// abort discards the temp (idempotent; safe after commit, which
// leaves nothing at tmpName).
func (t *stagedTemp) abort() {
	if !t.closed {
		t.tmp.Close()
		t.closed = true
	}
	t.s.fs.Remove(t.tmpName)
}
