package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

const adminConfig = `
window 72h

admin {
    listen "127.0.0.1:0"
}

feedgroup SNMP {
    feed BPS {
        pattern "BPS_poller%i_%Y%m%d%H%M.csv"
        normalize "%Y/%m/%d/BPS_poller%i_%H%M.csv"
    }
    feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
}

subscriber wh {
    dest "wh-in"
    subscribe SNMP
}
`

// adminGet fetches one admin endpoint and returns the body.
func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	s := newServer(t, adminConfig, nil)
	addr := s.AdminAddr()
	if addr == "" {
		t.Fatal("admin endpoint not started")
	}

	if err := s.Deposit("BPS_poller1_201009250451.csv", []byte("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.Deposit("nobody-wants-this.tmp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery", func() bool {
		st, _ := s.Logger().Stats("SNMP/BPS")
		return st.Delivered == 1
	})

	code, body := adminGet(t, addr, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = adminGet(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		// Classifier counters (hot path).
		`bistro_classifier_files_total{result="matched"} 1`,
		`bistro_classifier_files_total{result="unmatched"} 1`,
		"bistro_classifier_patterns_tried_total",
		// Per-subscriber delivery counters.
		`bistro_delivery_delivered_total{subscriber="wh"} 1`,
		`bistro_delivery_bytes_total{subscriber="wh"} 8`,
		// End-to-end propagation histogram saw the delivery.
		"# TYPE bistro_delivery_propagation_seconds histogram",
		"bistro_delivery_propagation_seconds_count 1",
		// Receipt store / WAL (arrival + delivery receipts committed).
		"# TYPE bistro_receipts_commits_total counter",
		"# TYPE bistro_receipts_fsync_seconds histogram",
		"bistro_receipts_wal_bytes",
		// Scrape-time gauges refreshed from snapshots.
		`bistro_feed_files{feed="SNMP/BPS"} 1`,
		"bistro_classifier_unmatched_files 1",
		`bistro_delivery_breaker_state{subscriber="wh"} 0`,
		`bistro_scheduler_queue_depth{partition="interactive",lane="realtime"} 0`,
		"bistro_receipts_files 1",
		// Startup reconciliation outcome.
		`bistro_reconcile_outcomes{kind="missing"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = adminGet(t, addr, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d", code)
	}
	var doc struct {
		Feeds       map[string]struct{ Files, Delivered int64 } `json:"feeds"`
		Unmatched   int64                                       `json:"unmatched"`
		Subscribers map[string]struct {
			Delivered int64
			Circuit   string
		} `json:"subscribers"`
		Receipts   struct{ Files int } `json:"receipts"`
		Partitions []struct {
			Name string `json:"name"`
		} `json:"partitions"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz decode: %v\n%s", err, body)
	}
	if doc.Feeds["SNMP/BPS"].Delivered != 1 || doc.Unmatched != 1 {
		t.Fatalf("statusz feeds = %+v unmatched=%d", doc.Feeds, doc.Unmatched)
	}
	if sub := doc.Subscribers["wh"]; sub.Delivered != 1 || sub.Circuit != "closed" {
		t.Fatalf("statusz subscriber = %+v", sub)
	}
	if doc.Receipts.Files != 1 || len(doc.Partitions) == 0 {
		t.Fatalf("statusz receipts=%+v partitions=%+v", doc.Receipts, doc.Partitions)
	}
}

func TestAdminStoppedWithServer(t *testing.T) {
	s := newServer(t, adminConfig, nil)
	addr := s.AdminAddr()
	s.Stop()
	client := &http.Client{Timeout: time.Second}
	if _, err := client.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("admin endpoint still serving after Stop")
	}
}

func TestStatusSummaryShowsQuarantineBreakerOffline(t *testing.T) {
	cfgSrc := `
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }

subscriber wh { dest "wh-in" subscribe CPU }
subscriber down {
    host "127.0.0.1:1"
    subscribe CPU
    retry 50ms
    backoff { base 5ms max 10ms threshold 1 jitter off }
}
`
	s := newServer(t, cfgSrc, nil)
	if err := s.Deposit("CPU_POLL1_201009250451.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The unreachable subscriber's breaker opens on the first refused
	// connection (threshold 1) and the engine flags it offline.
	waitFor(t, "down flagged offline", func() bool {
		return s.Engine().Offline("down")
	})
	waitFor(t, "wh delivery", func() bool {
		st, _ := s.Logger().Stats("CPU")
		return st.Delivered >= 1
	})
	// Quarantine the delivered file's receipt so the receipts line
	// shows a non-zero count.
	metas := s.Store().AllFiles()
	if len(metas) == 0 {
		t.Fatal("no receipts")
	}
	if err := s.Store().RecordQuarantine(metas[0].ID); err != nil {
		t.Fatal(err)
	}
	sum := s.StatusSummary()
	for _, want := range []string{
		"down: ",
		"OFFLINE",
		"circuit=open",
		"wh: delivered=1",
		"circuit=closed",
		"quarantined=1",
	} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	// The structured status agrees with the rendered summary.
	st := s.Status()
	if !st.Subscribers["down"].Offline || st.Subscribers["down"].Circuit != "open" {
		t.Fatalf("status subscribers = %+v", st.Subscribers)
	}
	if st.Receipts.Quarantined != 1 {
		t.Fatalf("status receipts = %+v", st.Receipts)
	}
}
