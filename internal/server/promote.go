package server

import (
	"fmt"
	"time"

	"bistro/internal/cluster"
)

// PromoteStandby turns a warm standby into the serving owner of the
// failed node's shards. The standby stops accepting replication
// traffic, its root — shipped checkpoint + WAL + staged payloads — is
// opened as a full server (receipts.Open replays the shipped WAL, and
// Start runs the same startup reconciliation any restart does, so a
// torn final batch or a staged file without a receipt is handled by
// the existing crash machinery), the shard map records the promotion,
// and the node starts serving. Returns the running server and the
// takeover time from detach to ready.
//
// opts.Root defaults to the standby's root; opts.Config must carry
// the cluster block, and opts.NodeName (or the block's self) must name
// the surviving node.
func PromoteStandby(st *cluster.Standby, failed string, opts Options) (*Server, time.Duration, error) {
	begin := time.Now()
	epoch := st.Epoch()
	if err := st.Detach(); err != nil {
		return nil, 0, fmt.Errorf("server: promote: detach standby: %w", err)
	}
	if opts.Root == "" {
		opts.Root = st.Root()
	}
	srv, err := New(opts)
	if err != nil {
		return nil, 0, fmt.Errorf("server: promote: %w", err)
	}
	if srv.shard == nil {
		srv.Stop()
		return nil, 0, fmt.Errorf("server: promote: config has no cluster block")
	}
	self := srv.shard.SelfName()
	if self == "" {
		srv.Stop()
		return nil, 0, fmt.Errorf("server: promote: node identity unset (self/NodeName)")
	}
	if failed != "" && failed != self {
		// Seed the shard map with the epoch the replication stream
		// carried, so Promote's bump fences the old owner: every epoch the
		// failed node ever stamped is now strictly below ours.
		srv.shard.ObserveEpoch(epoch)
		if err := srv.shard.Promote(failed, self); err != nil {
			srv.Stop()
			return nil, 0, err
		}
	}
	if err := srv.Start(); err != nil {
		srv.Stop()
		return nil, 0, fmt.Errorf("server: promote: start: %w", err)
	}
	srv.clusterM.Promotions.Inc()
	srv.logger.Logf("cluster", "promoted: serving shards of failed node %q", failed)
	return srv, time.Since(begin), nil
}
