package server

// This file is the self-healing half of the cluster layer: a standby
// node that promotes itself when the owner's lease expires, and the
// rejoin path that turns a recovered (or brand-new) node into the
// survivor's warm standby without stopping the survivor.

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"bistro/internal/clock"
	"bistro/internal/cluster"
	"bistro/internal/diskfault"
	"bistro/internal/metrics"
	"bistro/internal/protocol"
)

// StandbyNodeOptions configure a StandbyNode.
type StandbyNodeOptions struct {
	// Server carries the options the promoted server will start with
	// (Config with its cluster block is required; Root defaults to the
	// standby's root). NodeName (or the cluster block's self) must name
	// this node.
	Server Options
	// Failed names the node whose shards this standby covers — the
	// owner it replicates from and will succeed.
	Failed string
	// FS is the standby-side filesystem seam (nil = the real OS).
	FS diskfault.FS
	// Epoch is the initial fence floor (a re-seeded standby starts at
	// the survivor's epoch).
	Epoch uint64
	// Clock drives the lease monitor (default wall clock).
	Clock clock.Clock
	// OnPromoted, when set, runs after an automatic promotion finishes
	// (successfully or not) — on the monitor goroutine.
	OnPromoted func(srv *Server, takeover time.Duration, err error)
	// Logf, when set, receives standby lifecycle events.
	Logf func(format string, args ...any)
}

// StandbyNode bundles a warm standby with its lease monitor: the
// unattended-failover unit. When the cluster block's failover.auto is
// on, lease expiry promotes the standby through PromoteStandby with no
// operator involved; off, the monitor only observes (metrics, status)
// and promotion stays a manual call.
type StandbyNode struct {
	st   *cluster.Standby
	mon  *cluster.Monitor
	reg  *metrics.Registry
	clus *cluster.Metrics
	opts StandbyNodeOptions
	auto bool

	mu       sync.Mutex
	srv      *Server
	takeover time.Duration
	promErr  error
	promoted bool
	done     chan struct{}
}

// StartStandbyNode starts a standby listening for replication on addr,
// rooted at root, with failure detection per the config's failover
// block.
func StartStandbyNode(addr, root string, o StandbyNodeOptions) (*StandbyNode, error) {
	cfg := o.Server.Config
	if cfg == nil || cfg.Cluster == nil {
		return nil, fmt.Errorf("server: standby node: config needs a cluster block")
	}
	fo := failoverParams(cfg.Cluster)
	reg := metrics.NewRegistry()
	clus := cluster.NewMetrics(reg)
	sn := &StandbyNode{
		reg:  reg,
		clus: clus,
		opts: o,
		auto: fo.Auto,
		done: make(chan struct{}),
	}
	archDir := ""
	if cfg.ArchiveDir != "" {
		archDir = cfg.ArchiveDir
		if !filepath.IsAbs(archDir) {
			archDir = filepath.Join(root, archDir)
		}
	}
	st, err := cluster.StartStandby(addr, cluster.StandbyOptions{
		Root:       root,
		FS:         o.FS,
		Metrics:    clus,
		ArchiveDir: archDir,
		Epoch:      o.Epoch,
		Clock:      o.Clock,
		Alarm:      func(msg string) { sn.logf("standby alarm: %s", msg) },
		Logf:       o.Logf,
	})
	if err != nil {
		return nil, err
	}
	sn.st = st
	sn.mon = cluster.WatchLease(st, fo, o.Clock, sn.onLeaseExpired)
	return sn, nil
}

func (sn *StandbyNode) logf(format string, args ...any) {
	if sn.opts.Logf != nil {
		sn.opts.Logf(format, args...)
	}
}

// onLeaseExpired runs once, on the monitor goroutine. With auto off it
// only records the expiry (the LeaseExpiries counter already ticked).
func (sn *StandbyNode) onLeaseExpired() {
	if !sn.auto {
		sn.logf("owner lease expired; failover.auto is off — awaiting operator promotion")
		return
	}
	sn.logf("owner lease expired; promoting standby")
	opts := sn.opts.Server
	if opts.Root == "" {
		opts.Root = sn.st.Root()
	}
	if opts.FS == nil {
		opts.FS = sn.opts.FS
	}
	srv, takeover, err := PromoteStandby(sn.st, sn.opts.Failed, opts)
	sn.mu.Lock()
	sn.srv = srv
	sn.takeover = takeover
	sn.promErr = err
	sn.promoted = err == nil
	sn.mu.Unlock()
	close(sn.done)
	if err != nil {
		sn.logf("automatic promotion failed: %v", err)
	} else {
		sn.logf("automatic promotion complete in %s", takeover)
	}
	if sn.opts.OnPromoted != nil {
		sn.opts.OnPromoted(srv, takeover, err)
	}
}

// Promoted reports the automatic promotion's outcome; ok is false
// while the standby is still standing by.
func (sn *StandbyNode) Promoted() (srv *Server, takeover time.Duration, err error, ok bool) {
	select {
	case <-sn.done:
	default:
		return nil, 0, nil, false
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.srv, sn.takeover, sn.promErr, true
}

// Standby exposes the underlying replication receiver.
func (sn *StandbyNode) Standby() *cluster.Standby { return sn.st }

// Metrics exposes the standby-side registry (bistro_cluster_* series:
// fenced, lease expiries, failures).
func (sn *StandbyNode) Metrics() *metrics.Registry { return sn.reg }

// Close stops the monitor and, unless promotion already detached it,
// the standby. The promoted server (if any) is NOT stopped — it
// belongs to the caller via Promoted or OnPromoted.
func (sn *StandbyNode) Close() error {
	sn.mon.Stop()
	sn.mu.Lock()
	promoted := sn.promoted
	sn.mu.Unlock()
	if promoted {
		return nil
	}
	return sn.st.Close()
}

// RejoinAsStandby brings a recovered (or brand-new) node back into the
// cluster as the survivor's warm standby: start a fresh standby at
// listenAddr rooted at root, then ask the serving node at survivorAddr
// to adopt it (protocol Rejoin → survivor's AttachStandby re-seeds the
// full state while it keeps serving). o.Failed should name the
// survivor — the node this standby now watches. The returned
// StandbyNode's fence floor is seeded from the survivor's epoch.
func RejoinAsStandby(survivorAddr, listenAddr, root string, o StandbyNodeOptions) (*StandbyNode, error) {
	sn, err := StartStandbyNode(listenAddr, root, o)
	if err != nil {
		return nil, err
	}
	name := o.Server.NodeName
	if name == "" && o.Server.Config != nil && o.Server.Config.Cluster != nil {
		name = o.Server.Config.Cluster.Self
	}
	conn, err := protocol.Dial(survivorAddr, 30*time.Second)
	if err != nil {
		sn.Close()
		return nil, fmt.Errorf("server: rejoin: %w", err)
	}
	defer conn.Close()
	if err := conn.Call(protocol.Hello{Role: "node", Name: name}); err != nil {
		sn.Close()
		return nil, fmt.Errorf("server: rejoin hello: %w", err)
	}
	if err := conn.Send(protocol.Rejoin{Node: name, StandbyAddr: sn.st.Addr()}); err != nil {
		sn.Close()
		return nil, fmt.Errorf("server: rejoin: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		sn.Close()
		return nil, fmt.Errorf("server: rejoin: %w", err)
	}
	ack, okType := reply.(protocol.Ack)
	if !okType {
		sn.Close()
		return nil, fmt.Errorf("server: rejoin: expected Ack, got %T", reply)
	}
	if !ack.OK {
		sn.Close()
		return nil, fmt.Errorf("server: rejoin refused: %s", ack.Error)
	}
	sn.st.ObserveEpoch(ack.Epoch)
	return sn, nil
}
