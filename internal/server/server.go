// Package server assembles the Bistro data feed manager (SIGMOD'11
// §3): landing zones feed the classifier, matched files are normalized
// into staging, arrivals are durably logged in the receipt database,
// the delivery engine pushes (or notifies) subscribers under
// partitioned real-time scheduling, triggers fire per file or per
// batch, the archiver enforces the retention window, and the feed
// analyzer continuously watches both the unmatched stream (new-feed
// discovery, false negatives) and the matched streams (false
// positives).
//
// A server optionally listens for the source/subscriber protocol, and
// a server can itself subscribe to another server, forming the
// cascaded feed delivery network of §3.
package server

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bistro/internal/admin"
	"bistro/internal/analyzer"
	"bistro/internal/archive"
	"bistro/internal/backoff"
	"bistro/internal/classifier"
	"bistro/internal/clock"
	"bistro/internal/cluster"
	"bistro/internal/config"
	"bistro/internal/delivery"
	"bistro/internal/discovery"
	"bistro/internal/diskfault"
	"bistro/internal/feedlog"
	"bistro/internal/httpfeed"
	"bistro/internal/ingest"
	"bistro/internal/landing"
	"bistro/internal/metrics"
	"bistro/internal/normalize"
	"bistro/internal/pattern"
	"bistro/internal/plan"
	"bistro/internal/protocol"
	"bistro/internal/receipts"
	"bistro/internal/replay"
	"bistro/internal/scheduler"
	"bistro/internal/transport"
	"bistro/internal/trigger"
)

// Options configure a Server.
type Options struct {
	// Config is the parsed Bistro configuration.
	Config *config.Config
	// Root is the server work area; landing/staging/receipts/archive
	// directories are created beneath it (config dir settings are
	// interpreted relative to Root unless absolute).
	Root string
	// Clock defaults to the wall clock.
	Clock clock.Clock
	// Listen, when non-empty, serves the source/subscriber protocol on
	// this address ("127.0.0.1:0" for an ephemeral port).
	Listen string
	// ScanInterval is the landing fallback scan cadence for
	// non-cooperating sources. Default 5s; negative disables.
	ScanInterval time.Duration
	// ExpiryInterval is how often the retention window is enforced.
	// Default 1 minute; negative disables.
	ExpiryInterval time.Duration
	// MonitorInterval is how often feed progress and interval
	// completeness are checked. Default 30s; negative disables.
	MonitorInterval time.Duration
	// AnalyzeInterval runs the feed analyzer periodically, raising
	// alarms for suspected false negatives and logging new-feed
	// candidates. 0 disables (analysis stays on demand via Analyze).
	AnalyzeInterval time.Duration
	// OnAlarm taps monitoring alarms (optional).
	OnAlarm func(feedlog.Alarm)
	// Deadline is the per-file delivery target. Default 1 minute.
	Deadline time.Duration
	// StreamThreshold switches to chunked streaming delivery for
	// staged files at or above this size. Default 4 MiB.
	StreamThreshold int64
	// Transport overrides the default transport (tests, simulations).
	Transport transport.Transport
	// LogWriter receives the activity log (default io.Discard).
	LogWriter io.Writer
	// OnEvent taps delivery events (optional).
	OnEvent func(delivery.Event)
	// NoSync disables receipt fsyncs (tests and experiments).
	NoSync bool
	// FS overrides the filesystem for the storage path — receipt WAL
	// and checkpoints, staging promotion, archive moves, landing
	// deposits (fault injection, crash simulation). Default: the real
	// filesystem.
	FS diskfault.FS
	// AnalyzerSample bounds how many observations per feed (and
	// unmatched) the analyzer retains. Default 10000.
	AnalyzerSample int
	// NodeName overrides the cluster block's self entry — the usual
	// way one shared config file runs as different nodes per host.
	NodeName string
}

// Server is a running Bistro feed manager.
type Server struct {
	opts   Options
	cfg    *config.Config
	clk    clock.Clock
	fs     diskfault.FS
	root   string
	stage  string
	dbDir  string
	quar   string
	logger *feedlog.Logger

	reg     *metrics.Registry
	metrics *serverMetrics

	store  *receipts.Store
	class  *classifier.Classifier
	plans  *plan.Set
	engine *delivery.Engine
	land   *landing.Manager
	arch   *archive.Archiver
	pipe   *ingest.Pipeline
	replay *replay.Manager // nil unless the config has a replay block

	ln    net.Listener
	adm   *admin.Server       // nil unless the config has an admin block
	httpd *httpfeed.Server    // nil unless the config has an http block
	trans *compositeTransport // nil when Options.Transport overrides

	// Cluster state — all nil/zero on a single-node server (the
	// 1-shard degenerate case pays nothing for the routing layer).
	// shipper is guarded by mu: AttachStandby swaps it at runtime when
	// a recovered node rejoins as the new standby.
	shard    *cluster.ShardMap
	shipper  *cluster.Shipper // nil unless this node ships to a standby
	clusterM *cluster.Metrics
	peers    *peerPool
	failover cluster.FailoverParams

	mu        sync.Mutex
	conns     map[*protocol.Conn]struct{}
	unmatched []discovery.Observation
	matched   map[string][]discovery.Observation
	stopCh    chan struct{}
	wg        sync.WaitGroup
	stopped   bool
	readyErr  error // nil once Start finished reconciliation
}

// New builds a server (directories, receipt store, pipeline). Call
// Start to begin processing.
func New(opts Options) (*Server, error) {
	if opts.Config == nil {
		return nil, fmt.Errorf("server: config required")
	}
	if opts.Root == "" {
		return nil, fmt.Errorf("server: root directory required")
	}
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	if opts.ScanInterval == 0 {
		opts.ScanInterval = 5 * time.Second
	}
	if opts.ExpiryInterval == 0 {
		opts.ExpiryInterval = time.Minute
	}
	if opts.MonitorInterval == 0 {
		opts.MonitorInterval = 30 * time.Second
	}
	if opts.LogWriter == nil {
		opts.LogWriter = io.Discard
	}
	if opts.AnalyzerSample == 0 {
		opts.AnalyzerSample = 10000
	}
	cfg := opts.Config
	fsys := opts.FS
	if fsys == nil {
		fsys = diskfault.OS()
	}
	if opts.NoSync {
		fsys = diskfault.NoSync(fsys)
	}
	s := &Server{
		opts:    opts,
		cfg:     cfg,
		clk:     opts.Clock,
		fs:      fsys,
		root:    opts.Root,
		matched: make(map[string][]discovery.Observation),
		conns:   make(map[*protocol.Conn]struct{}),
		stopCh:  make(chan struct{}),
	}
	s.stage = s.resolveDir(cfg.StagingDir, "staging")
	s.dbDir = filepath.Join(opts.Root, "receipts")
	s.quar = s.resolveDir(cfg.QuarantineDir, "quarantine")
	for _, dir := range []string{s.stage, s.dbDir} {
		if err := s.fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: mkdir %s: %w", dir, err)
		}
	}
	s.reg = metrics.NewRegistry()
	s.metrics = newServerMetrics(s.reg)
	s.logger = feedlog.New(opts.LogWriter, s.clk)
	s.logger.OnAlarm = opts.OnAlarm
	for _, f := range cfg.Feeds {
		if f.ExpectPeriod > 0 {
			s.logger.SetExpectation(f.Path, f.ExpectPeriod, f.ExpectSources)
		}
	}
	s.readyErr = fmt.Errorf("server: starting (reconciliation pending)")

	if cfg.Cluster != nil {
		topo := cluster.Topology{Self: cfg.Cluster.Self, VNodes: cfg.Cluster.VNodes}
		if opts.NodeName != "" {
			topo.Self = opts.NodeName
		}
		for _, n := range cfg.Cluster.Nodes {
			topo.Nodes = append(topo.Nodes, cluster.Node{
				Name: n.Name, Addr: n.Addr, Standby: n.Standby,
			})
		}
		shard, err := cluster.NewShardMap(topo)
		if err != nil {
			return nil, err
		}
		s.shard = shard
		s.clusterM = cluster.NewMetrics(s.reg)
		s.peers = newPeerPool(5 * time.Second)
		s.failover = failoverParams(cfg.Cluster)
		if self, ok := shard.Self(); ok && self.Standby != "" {
			s.shipper = s.newShipper(self.Standby)
		}
	}

	store, err := receipts.Open(s.dbDir, receipts.Options{
		NoSync: opts.NoSync,
		FS:     s.fs,
		// Bound recovery time: snapshot once the WAL reaches 16 MiB.
		CheckpointBytes: 16 << 20,
		Metrics:         receipts.NewMetrics(s.reg),
		GroupCommit:     groupCommitConfig(cfg.Ingest),
	})
	if err != nil {
		return nil, err
	}
	s.store = store
	s.class = classifier.New(cfg.Feeds, classifier.Options{
		Metrics: classifier.NewMetrics(s.reg),
	})
	plans, err := plan.Compile(cfg, plan.Options{
		FS:      s.fs,
		Root:    opts.Root,
		Metrics: plan.NewMetrics(s.reg),
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	s.plans = plans

	trans := opts.Transport
	if trans == nil {
		comp := s.buildTransport()
		s.trans = comp
		trans = comp
	}
	feedPrio := make(map[string]int)
	for _, f := range cfg.Feeds {
		if f.Priority != 0 {
			feedPrio[f.Path] = f.Priority
		}
	}
	schedCfg := schedulerConfig(cfg.Scheduler)
	schedCfg.Clock = s.clk
	replayPart := 0
	if cfg.Replay != nil {
		// The replay block adds a dedicated partition so catch-up
		// streaming never competes with live delivery workers (§4.3).
		if len(schedCfg.Partitions) == 0 {
			schedCfg = delivery.DefaultSchedulerConfig()
			schedCfg.Clock = s.clk
		}
		w := cfg.Replay.Workers
		if w <= 0 {
			w = 1
		}
		schedCfg.Partitions = append(schedCfg.Partitions, scheduler.PartitionConfig{
			Name: "replay", Workers: w, Policy: scheduler.FIFO,
		})
		replayPart = len(schedCfg.Partitions) - 1
	}
	var chans []delivery.ChannelSpec
	if cfg.Channels != nil {
		for _, g := range cfg.Channels.Groups {
			chans = append(chans, delivery.ChannelSpec{
				Name:    g.Name,
				Feed:    g.Feed,
				Members: append([]string(nil), g.Members...),
			})
		}
	}
	engine, err := delivery.New(delivery.Options{
		Clock:           s.clk,
		Store:           store,
		Transport:       trans,
		Subscribers:     cfg.Subscribers,
		StagingRoot:     s.stage,
		Deadline:        opts.Deadline,
		StreamThreshold: opts.StreamThreshold,
		FeedPriority:    feedPrio,
		Scheduler:       schedCfg,
		Backoff:         cfg.Backoff.Policy(),
		OnEvent:         s.onDeliveryEvent,
		Metrics:         delivery.NewMetrics(s.reg),
		ReplayPartition: replayPart,
		FS:              s.fs,
		Channels:        chans,
		Transform:       s.deliveryTransform,
		// Both seams late-bind through s: the archiver and replay
		// manager are constructed after the engine.
		HistoryMeta: func(id uint64) (receipts.FileMeta, bool) {
			if s.replay == nil {
				return receipts.FileMeta{}, false
			}
			return s.replay.Meta(id)
		},
		ArchiveOpen: func(stagedPath string) (io.ReadCloser, error) {
			if s.arch == nil {
				return nil, fmt.Errorf("server: no archiver")
			}
			return s.arch.Open(stagedPath)
		},
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	s.engine = engine
	engine.Triggers().Metrics = trigger.NewMetrics(s.reg)

	land, err := landing.New(s.resolveDir(cfg.LandingDir, "landing"), s.IngestLanding, s.clk, opts.ScanInterval)
	if err != nil {
		store.Close()
		return nil, err
	}
	land.FS = s.fs
	s.land = land

	archRoot := ""
	if cfg.ArchiveDir != "" {
		archRoot = s.resolveDir(cfg.ArchiveDir, "archive")
	}
	arch, err := archive.New(store, s.clk, s.stage, archRoot, cfg.Window)
	if err != nil {
		store.Close()
		return nil, err
	}
	arch.FS = s.fs
	arch.Metrics = archive.NewMetrics(s.reg)
	arch.Alarm = func(msg string) { s.logger.Raise("archive", msg) }
	if s.shard != nil && archRoot != "" {
		// Ship archive promotions on the replication stream: the standby
		// mirrors the move (staged copy dropped, archived copy + manifest
		// entries written), so a promoted standby serves replay history
		// too. An error aborts the expiry pass and the next pass retries.
		arch.OnArchived = func(v receipts.FileMeta, archivedAt time.Time) error {
			sh := s.getShipper()
			if sh == nil {
				return nil
			}
			data, err := diskfault.ReadFile(s.fs, filepath.Join(archRoot, filepath.FromSlash(v.StagedPath)))
			if err != nil {
				return fmt.Errorf("server: read archived %s for replication: %w", v.StagedPath, err)
			}
			return sh.ShipArchive(v, archivedAt, data)
		}
	}
	if archRoot != "" && (cfg.Replay == nil || !cfg.Replay.NoManifest) {
		if err := arch.EnableManifest(); err != nil {
			store.Close()
			return nil, err
		}
	}
	s.arch = arch
	if cfg.Replay != nil && arch.Manifest() != nil {
		s.replay = replay.New(replay.Options{
			Clock:    s.clk,
			Store:    store,
			Manifest: arch.Manifest(),
			Submit:   engine.SubmitReplay,
			Rate:     cfg.Replay.Rate,
			Deadline: opts.Deadline,
			Metrics:  replay.NewMetrics(s.reg),
			OnEvent:  s.onReplayEvent,
		})
	}

	// The ingest pipeline is constructed (and its workers started)
	// last: Start's reconcile and unmatched-reprocess passes route
	// through it before the rest of the pipeline spins up.
	ingOpts := ingest.Options{
		Process: s.processArrival,
		Deliver: s.engine.EnqueueFile,
		Metrics: ingest.NewMetrics(s.reg),
	}
	if sp := cfg.Ingest; sp != nil {
		ingOpts.Workers = sp.Workers
		ingOpts.HandoffDepth = sp.Queue
	}
	pipe, err := ingest.New(ingOpts)
	if err != nil {
		store.Close()
		return nil, err
	}
	s.pipe = pipe
	return s, nil
}

// groupCommitConfig maps the config-language group_commit block onto
// the receipt store's flush window. An empty block keeps today's
// opportunistic group commit; when the block is present, unset fields
// default to max_batch 64 / max_delay 2ms so the window is always
// bounded in both directions (documented in docs/CONFIG.md).
func groupCommitConfig(sp *config.IngestSpec) receipts.GroupCommitConfig {
	if sp == nil || sp.GroupCommit == nil {
		return receipts.GroupCommitConfig{}
	}
	gc := receipts.GroupCommitConfig{
		MaxBatch: sp.GroupCommit.MaxBatch,
		MaxDelay: sp.GroupCommit.MaxDelay,
	}
	if gc.MaxBatch <= 0 {
		gc.MaxBatch = 64
	}
	if gc.MaxDelay <= 0 {
		gc.MaxDelay = 2 * time.Millisecond
	}
	return gc
}

// schedulerConfig converts a configuration-language scheduler block
// into the scheduler's own config (zero value when unset: the delivery
// engine falls back to its default layout).
func schedulerConfig(spec *config.SchedulerSpec) scheduler.Config {
	if spec == nil {
		return scheduler.Config{}
	}
	out := scheduler.Config{
		Backfill:      scheduler.BackfillConcurrent,
		GroupSameFile: true,
		Migration:     scheduler.MigrationConfig{Enabled: spec.Migrate},
	}
	for _, p := range spec.Partitions {
		pc := scheduler.PartitionConfig{
			Name:            p.Name,
			Workers:         p.Workers,
			BackfillWorkers: p.Backfill,
			MaxMeanService:  p.MaxService,
		}
		switch p.Policy {
		case "fifo":
			pc.Policy = scheduler.FIFO
		case "prio-edf":
			pc.Policy = scheduler.PrioEDF
		case "max-benefit":
			pc.Policy = scheduler.MaxBenefit
		default:
			pc.Policy = scheduler.EDF
		}
		out.Partitions = append(out.Partitions, pc)
	}
	return out
}

// resolveDir interprets a configured directory relative to Root.
func (s *Server) resolveDir(dir, fallback string) string {
	if dir == "" {
		dir = fallback
	}
	if filepath.IsAbs(dir) {
		return dir
	}
	return filepath.Join(s.root, dir)
}

// buildTransport wires a composite transport: TCP push for subscribers
// with hosts, local directories for the rest.
func (s *Server) buildTransport() *compositeTransport {
	local := transport.NewLocalDir()
	remote := newTCPTransport(5*time.Second, s.clk, s.cfg.Backoff.Policy())
	comp := &compositeTransport{local: local, remote: remote, hosts: make(map[string]string)}
	for _, sub := range s.cfg.Subscribers {
		if sub.Host != "" {
			comp.hosts[sub.Name] = sub.Host
			continue
		}
		// Local subscribers receive files under Root; the delivery
		// engine prefixes each file with the subscriber's dest, so the
		// transport root must not repeat it.
		if sub.Dest == "" {
			sub.Dest = filepath.Join("delivered", sub.Name)
		}
		local.Register(sub.Name, s.root)
	}
	return comp
}

// onDeliveryEvent feeds the monitoring subsystem and the caller's tap.
func (s *Server) onDeliveryEvent(ev delivery.Event) {
	switch ev.Kind {
	case delivery.EvDelivered, delivery.EvNotified:
		s.logger.Delivered(ev.Feed, ev.Subscriber, ev.Name)
	case delivery.EvDeliveryFailed:
		s.logger.DeliveryFailed(ev.Feed, ev.Subscriber, ev.Name, ev.Err)
		if errors.Is(ev.Err, delivery.ErrReceiptMissing) {
			// The receipt DB and the delivery queue disagree — the job was
			// skipped, not retried, so a human must look at it.
			s.logger.Raise(ev.Feed, fmt.Sprintf(
				"delivery to %s skipped: receipt for %s (id %d) missing or quarantined",
				ev.Subscriber, ev.Name, ev.FileID))
		}
	case delivery.EvSubscriberOffline:
		s.logger.Logf("subscriber", "%s flagged offline: %v", ev.Subscriber, ev.Err)
	case delivery.EvSubscriberOnline:
		s.logger.Logf("subscriber", "%s back online", ev.Subscriber)
	case delivery.EvBackfillQueued:
		s.logger.Logf("subscriber", "%s backfill queued: %d files", ev.Subscriber, ev.Count)
	case delivery.EvRetryScheduled:
		s.logger.Logf("subscriber", "%s retry %d for %s in %s: %v",
			ev.Subscriber, ev.Attempt, ev.Name, ev.Delay, ev.Err)
	case delivery.EvCircuitOpen:
		s.logger.Logf("subscriber", "%s circuit open (probe in %s): %v",
			ev.Subscriber, ev.Delay, ev.Err)
	case delivery.EvCircuitHalfOpen:
		s.logger.Logf("subscriber", "%s circuit half-open: probing", ev.Subscriber)
	case delivery.EvReceiptWriteFailed:
		// The subscriber has the bytes but the ledger does not know: a
		// restart re-sends (safe), but a failing receipt WAL is a
		// stop-everything disk problem — alarm, don't just log.
		s.logger.Raise("receipts", fmt.Sprintf(
			"receipt write for %s (file %d) to %s failed: %v",
			ev.Name, ev.FileID, ev.Subscriber, ev.Err))
	case delivery.EvChannelAttached:
		s.logger.Logf("channel", "%s attached to %s", ev.Subscriber, ev.Name)
	case delivery.EvChannelDetached:
		s.logger.Logf("channel", "%s detached from %s: %v", ev.Subscriber, ev.Name, ev.Err)
	}
	if s.opts.OnEvent != nil {
		s.opts.OnEvent(ev)
	}
}

// onReplayEvent logs replay session lifecycle.
func (s *Server) onReplayEvent(ev replay.Event) {
	switch ev.Kind {
	case replay.EvStarted:
		s.logger.Logf("replay", "%s: catch-up from %s (%d archived files)",
			ev.Subscriber, ev.From.Format(time.RFC3339), ev.Total)
	case replay.EvCompleted:
		s.logger.Logf("replay", "%s: caught up to live (%d streamed, %d skipped)",
			ev.Subscriber, ev.Streamed, ev.Skipped)
	}
}

// Start launches the pipeline: delivery workers, landing scanner,
// expiry loop, and (when configured) the protocol listener. Files
// quarantined as unmatched by earlier runs are re-classified first, so
// a revised feed definition disseminates everything it now matches
// (§4.2: "all the files matching new definition will be delivered").
func (s *Server) Start() error {
	if sh := s.getShipper(); sh != nil {
		// Establish replication before reconciliation so the recovery
		// commits (quarantines, re-ingests) ship like any others. A
		// failed bootstrap still arms the hooks: commits fail until the
		// background loop re-establishes the stream — an owner never
		// acknowledges an arrival its standby cannot replay.
		if err := s.bootstrapShipper(sh); err != nil {
			s.logger.Logf("cluster", "replication bootstrap: %v", err)
		} else {
			s.logger.Logf("cluster", "replicating to standby %s", sh.Addr())
		}
		s.wg.Add(1)
		go s.replicationLoop(sh)
	}
	if n := s.cleanStaleTmp(); n > 0 {
		s.logger.Logf("reconcile", "removed %d stale temp files", n)
	}
	if rep, err := s.Reconcile(); err != nil {
		s.logger.Logf("reconcile", "error: %v", err)
	} else {
		s.recordReconcile(rep)
		if !rep.Clean() {
			s.logger.Logf("reconcile", "%s", rep)
		}
	}
	if s.arch.Manifest() != nil {
		// The scan-once recovery path: any archived file whose manifest
		// append was lost (crash between move and append) is re-entered.
		byPath := make(map[string]receipts.FileMeta)
		for _, meta := range s.store.AllFiles() {
			byPath[meta.StagedPath] = meta
		}
		n, err := s.arch.ReconcileManifest(func(stagedPath string) (receipts.FileMeta, bool) {
			meta, ok := byPath[stagedPath]
			return meta, ok
		})
		if err != nil {
			s.logger.Logf("reconcile", "manifest: %v", err)
		} else if n > 0 {
			s.logger.Logf("reconcile", "manifest: recovered %d lost entries", n)
		}
	}
	if n, err := s.ReprocessUnmatched(); err != nil {
		s.logger.Logf("unmatched", "reprocess error: %v", err)
	} else if n > 0 {
		s.logger.Logf("unmatched", "revised definitions claimed %d quarantined files", n)
	}
	s.engine.Start()
	if s.opts.ScanInterval > 0 {
		s.land.Start()
	}
	if s.opts.ExpiryInterval > 0 && s.cfg.Window > 0 {
		s.wg.Add(1)
		go s.expiryLoop()
	}
	if s.opts.MonitorInterval > 0 {
		s.wg.Add(1)
		go s.monitorLoop()
	}
	if s.opts.AnalyzeInterval > 0 {
		s.wg.Add(1)
		go s.analyzeLoop()
	}
	if s.opts.Listen != "" {
		ln, err := net.Listen("tcp", s.opts.Listen)
		if err != nil {
			return fmt.Errorf("server: listen: %w", err)
		}
		s.ln = ln
		s.wg.Add(1)
		go s.acceptLoop()
	}
	if s.cfg.Admin != nil {
		adm, err := admin.Start(admin.Options{
			Listen:   s.cfg.Admin.Listen,
			Registry: s.reg,
			OnScrape: s.RefreshMetrics,
			Status:   func() any { return s.Status() },
			Healthy:  s.healthy,
			Ready:    s.Ready,
		})
		if err != nil {
			return err
		}
		s.adm = adm
		s.logger.Logf("admin", "observability endpoint on %s", adm.Addr())
	}
	if s.cfg.HTTP != nil {
		httpd, err := s.startHTTPFeed()
		if err != nil {
			return err
		}
		s.httpd = httpd
		s.logger.Logf("http", "pull data plane on %s", httpd.Addr())
	}
	s.mu.Lock()
	s.readyErr = nil
	s.mu.Unlock()
	return nil
}

// startHTTPFeed mounts the stateless HTTP pull data plane over the
// receipt store and archive manifest (config http block).
func (s *Server) startHTTPFeed() (*httpfeed.Server, error) {
	sp := s.cfg.HTTP
	feeds := make([]string, 0, len(s.cfg.Feeds))
	for _, f := range s.cfg.Feeds {
		feeds = append(feeds, f.Path)
	}
	principals := make([]*httpfeed.Principal, 0, len(sp.Principals))
	for _, pr := range sp.Principals {
		principals = append(principals, &httpfeed.Principal{
			Name: pr.Name, Token: pr.Token, Feeds: pr.Feeds,
		})
	}
	return httpfeed.Start(httpfeed.Options{
		Listen:     sp.Listen,
		Feeds:      feeds,
		Principals: principals,
		MaxBody:    sp.MaxBody,
		Registry:   s.reg,
		Clock:      s.clk.Now,
		Log:        s.FeedHTTPLog,
		Open: func(stagedPath string) (io.ReadCloser, error) {
			abs := filepath.Join(s.stage, filepath.FromSlash(stagedPath))
			f, err := s.fs.Open(abs)
			if err == nil {
				return f, nil
			}
			if errors.Is(err, fs.ErrNotExist) && s.arch != nil {
				return s.arch.Open(stagedPath)
			}
			return nil, err
		},
		Ingest: s.Deposit,
		Resolve: func(name string) []string {
			matches := s.class.Classify(name)
			feeds := make([]string, len(matches))
			for i, m := range matches {
				feeds[i] = m.Feed.Path
			}
			return feeds
		},
	})
}

// FeedHTTPLog builds a feed's consumable-log view for the HTTP data
// plane: the receipt store's staging window (expired receipts
// included until compaction folds them away) merged with the archive
// manifest. Compaction requires manifest membership, so the union
// covers every non-quarantined id with no transient hole across the
// staging-to-archive handoff.
func (s *Server) FeedHTTPLog(feed string) []httpfeed.Entry {
	staged := s.store.FeedLog(feed)
	se := make([]httpfeed.Entry, len(staged))
	for i, m := range staged {
		t := m.DataTime
		if t.IsZero() {
			t = m.Arrived
		}
		se[i] = httpfeed.Entry{Seq: m.ID, Name: m.Name, StagedPath: m.StagedPath,
			Size: m.Size, Checksum: m.Checksum, Time: t}
	}
	var ae []httpfeed.Entry
	if s.arch != nil && s.arch.Manifest() != nil {
		archived := s.arch.Manifest().EntriesSince(feed, 0)
		ae = make([]httpfeed.Entry, len(archived))
		for i, e := range archived {
			ae[i] = httpfeed.Entry{Seq: e.ID, Name: e.Name, StagedPath: e.StagedPath,
				Size: e.Size, Checksum: e.Checksum, Time: e.Key(), Archived: true}
		}
	}
	return httpfeed.MergeLogs(se, ae)
}

// HTTPAddr returns the HTTP data plane's bound address ("" when the
// config has no http block).
func (s *Server) HTTPAddr() string {
	if s.httpd == nil {
		return ""
	}
	return s.httpd.Addr()
}

// Ready gates /readyz: nil only after Start has finished startup
// reconciliation — and so, on a promoted standby, only after the
// shipped WAL was replayed and reconciled. Distinct from healthy,
// which is true for the whole up-time.
func (s *Server) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return fmt.Errorf("server stopped")
	}
	return s.readyErr
}

// failoverParams maps the config failover block onto the cluster
// layer's parameters (defaults applied — a cluster without the block
// still heartbeats at the default cadence; only Auto stays off).
func failoverParams(sp *config.ClusterSpec) cluster.FailoverParams {
	p := cluster.FailoverParams{}
	if sp != nil && sp.Failover != nil {
		p.Lease = sp.Failover.Lease
		p.Heartbeat = sp.Failover.Heartbeat
		p.Auto = sp.Failover.Auto
	}
	return p.WithDefaults()
}

// newShipper builds this node's shipper to the standby at addr.
func (s *Server) newShipper(addr string) *cluster.Shipper {
	name := ""
	if s.shard != nil {
		if self, ok := s.shard.Self(); ok {
			name = self.Name
		}
	}
	return cluster.NewShipper(addr, cluster.ShipperOptions{
		Node:    name,
		Epoch:   s.shard.Epoch,
		Metrics: s.clusterM,
		Alarm:   func(msg string) { s.logger.Raise("cluster", msg) },
	})
}

// getShipper returns the current shipper (nil when not replicating).
func (s *Server) getShipper() *cluster.Shipper {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipper
}

// bootstrapShipper establishes (or re-establishes) the replication
// stream: snapshot + staged walk + receipt history, then the archive
// backlog so a re-seeded standby also mirrors long-term storage.
func (s *Server) bootstrapShipper(sh *cluster.Shipper) error {
	if err := sh.Bootstrap(s.store, s.stage, s.fs); err != nil {
		return err
	}
	return s.shipArchiveBacklog(sh)
}

// shipArchiveBacklog re-ships every archived file still indexed by the
// receipt store (compacted receipts have the manifest as their only
// record and are not re-seeded — documented in docs/CLUSTER.md). The
// standby applies archive frames idempotently, so re-shipping after a
// reconnect is safe.
func (s *Server) shipArchiveBacklog(sh *cluster.Shipper) error {
	if s.arch == nil || s.arch.Manifest() == nil {
		return nil
	}
	archRoot := s.resolveDir(s.cfg.ArchiveDir, "archive")
	if s.cfg.ArchiveDir == "" {
		return nil
	}
	now := s.clk.Now().UTC()
	for _, meta := range s.store.AllFiles() {
		if !s.arch.Manifest().Has(meta.ID) {
			continue
		}
		data, err := diskfault.ReadFile(s.fs, filepath.Join(archRoot, filepath.FromSlash(meta.StagedPath)))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return fmt.Errorf("server: read archived %s for backlog: %w", meta.StagedPath, err)
		}
		if err := sh.ShipArchive(meta, now, data); err != nil {
			return err
		}
	}
	return nil
}

// replicationLoop keeps one shipper's stream alive: heartbeats renew
// the owner's lease while traffic is idle, and a down stream is
// re-bootstrapped under exponential backoff with jitter (a flapping
// standby must not be hammered at a fixed cadence, and the alarm for a
// persistent outage is raised once, not every tick). While the stream
// is down every shipped commit fails (strict replication), so recovery
// latency here is ingest downtime, not a durability hole. The loop
// exits when its shipper is replaced (AttachStandby spawns a new one).
func (s *Server) replicationLoop(sh *cluster.Shipper) {
	defer s.wg.Done()
	bo := backoff.New(backoff.Policy{
		Base:       200 * time.Millisecond,
		Max:        5 * time.Second,
		Multiplier: 2,
	}, backoff.Seed("rebootstrap-"+sh.Addr()))
	var retryAt time.Time
	for {
		t := s.clk.NewTimer(s.failover.Heartbeat)
		select {
		case <-s.stopCh:
			t.Stop()
			return
		case <-t.C():
		}
		if s.getShipper() != sh {
			return // replaced by AttachStandby
		}
		if sh.Healthy() {
			bo.Reset()
			retryAt = time.Time{}
			if err := sh.Heartbeat(); err != nil {
				s.logger.Logf("cluster", "heartbeat: %v", err)
			}
			continue
		}
		now := s.clk.Now()
		if !retryAt.IsZero() && now.Before(retryAt) {
			continue
		}
		if err := s.bootstrapShipper(sh); err != nil {
			s.logger.Logf("cluster", "replication re-bootstrap: %v", err)
			retryAt = now.Add(bo.Next())
		} else {
			s.logger.Logf("cluster", "replication stream re-established to %s", sh.Addr())
			bo.Reset()
			retryAt = time.Time{}
		}
	}
}

// AttachStandby adopts a new warm standby at addr while this node keeps
// serving: the current shipper (if any) is closed, a fresh one is
// swapped in — arming the commit hooks, so deposits briefly fail until
// the snapshot below lands; sources retry — and the full state
// (snapshot, staged payloads, receipt history, archive backlog) is
// re-seeded before the stream flips to live shipping. Serves the
// protocol Rejoin message; also the path a brand-new node uses to enter
// an existing cluster.
func (s *Server) AttachStandby(addr string) error {
	if s.shard == nil {
		return fmt.Errorf("server: not clustered")
	}
	sh := s.newShipper(addr)
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("server stopped")
	}
	old := s.shipper
	s.shipper = sh
	s.wg.Add(1) // under mu so Stop's wg.Wait cannot start in between
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
	err := s.bootstrapShipper(sh)
	// The loop retries a failed re-seed; the rejoiner is adopted either
	// way (its standby is already the commit hook target).
	go s.replicationLoop(sh)
	if err != nil {
		s.logger.Logf("cluster", "re-seed standby %s: %v", addr, err)
		return err
	}
	if s.clusterM != nil {
		s.clusterM.Reseeds.Inc()
	}
	s.logger.Logf("cluster", "re-seeded standby %s (hw %d)", addr, sh.AckedHW())
	return nil
}

// healthy gates /healthz: the server is healthy while it is running.
func (s *Server) healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return fmt.Errorf("server stopped")
	}
	return nil
}

// AdminAddr returns the admin endpoint's bound address ("" when the
// configuration has no admin block or Start has not run).
func (s *Server) AdminAddr() string {
	if s.adm == nil {
		return ""
	}
	return s.adm.Addr()
}

// Stop drains the pipeline and closes the receipt store.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stopCh)
	if s.adm != nil {
		s.adm.Stop()
	}
	if s.httpd != nil {
		s.httpd.Stop()
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.land.Stop()
	// Sources are quiet now; drain in-flight arrivals through the
	// shard and hand-off stages before the delivery engine goes away.
	s.pipe.Stop()
	if s.replay != nil {
		s.replay.Stop()
	}
	s.engine.Stop()
	if s.trans != nil {
		s.trans.remote.close()
	}
	if sh := s.getShipper(); sh != nil {
		sh.Close()
	}
	if s.peers != nil {
		s.peers.close()
	}
	s.wg.Wait()
	s.store.Close()
}

// Addr returns the protocol listener address ("" when not listening).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Store exposes the receipt database (monitoring, tests).
func (s *Server) Store() *receipts.Store { return s.store }

// Logger exposes the monitoring subsystem.
func (s *Server) Logger() *feedlog.Logger { return s.logger }

// Landing exposes the landing manager (deposits from local sources).
func (s *Server) Landing() *landing.Manager { return s.land }

// Archiver exposes the retention/archival component.
func (s *Server) Archiver() *archive.Archiver { return s.arch }

// Engine exposes the delivery engine.
func (s *Server) Engine() *delivery.Engine { return s.engine }

// StatusSummary renders a monitoring snapshot: per-feed counters,
// per-subscriber delivery statistics, and receipt-store state.
func (s *Server) StatusSummary() string {
	var b strings.Builder
	b.WriteString("== feeds ==\n")
	b.WriteString(s.logger.Summary())
	b.WriteString("== subscribers ==\n")
	stats := s.engine.Stats()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stats[name]
		state := "online"
		if st.Offline {
			state = "OFFLINE"
		}
		fmt.Fprintf(&b, "%s: delivered=%d bytes=%d failures=%d partition=%d circuit=%s %s\n",
			name, st.Delivered, st.Bytes, st.Failures, st.Partition, st.Circuit, state)
	}
	st := s.store.Stats()
	fmt.Fprintf(&b, "== receipts ==\nfiles=%d expired=%d quarantined=%d feeds=%d commits=%d wal_bytes=%d\n",
		st.Files, st.Expired, st.Quarantined, st.Feeds, st.Commits, st.WALBytes)
	return b.String()
}

// expiryLoop periodically enforces the retention window.
func (s *Server) expiryLoop() {
	defer s.wg.Done()
	for {
		t := s.clk.NewTimer(s.opts.ExpiryInterval)
		select {
		case <-s.stopCh:
			t.Stop()
			return
		case <-t.C():
		}
		if n, err := s.arch.ExpireOnce(); err != nil {
			s.logger.Logf("expiry", "error: %v", err)
		} else if n > 0 {
			s.logger.Logf("expiry", "expired %d files", n)
		}
		if s.arch.Manifest() != nil {
			if n, err := s.CompactReceipts(); err != nil {
				s.logger.Logf("expiry", "compaction error: %v", err)
			} else if n > 0 {
				s.logger.Logf("expiry", "compacted %d archived receipts", n)
			}
		}
	}
}

// CompactReceipts folds fully-settled history out of the receipt store
// so WAL + checkpoint size stays bounded under continuous expiry. A
// receipt is eligible when the file is recorded in the archive manifest
// (the manifest takes over as its only record), every subscriber
// interested in one of its feeds has a delivery receipt, and no active
// replay session holds it in flight.
func (s *Server) CompactReceipts() (int, error) {
	man := s.arch.Manifest()
	if man == nil {
		return 0, nil
	}
	// Snapshot feed → interested subscribers outside the store lock: the
	// eligibility callback runs under it and must stay call-free.
	s.mu.Lock()
	interested := make(map[string][]string)
	for _, sub := range s.cfg.Subscribers {
		for _, feed := range sub.Feeds {
			interested[feed] = append(interested[feed], sub.Name)
		}
	}
	s.mu.Unlock()
	return s.store.CompactExpired(func(f receipts.FileMeta, delivered func(sub string) bool) bool {
		if !man.Has(f.ID) {
			return false
		}
		if s.replay != nil && s.replay.Covers(f.ID) {
			return false
		}
		for _, feed := range f.Feeds {
			for _, sub := range interested[feed] {
				if !delivered(sub) {
					return false
				}
			}
		}
		return true
	})
}

// ReprocessUnmatched re-classifies every quarantined unmatched file
// against the current feed definitions, ingesting those that now
// match. Returns how many files a revised definition claimed.
func (s *Server) ReprocessUnmatched() (int, error) {
	quarantine := filepath.Join(s.stage, "_unmatched")
	var claimed int
	err := walkDir(quarantine, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, rerr := filepath.Rel(quarantine, path)
		if rerr != nil {
			return rerr
		}
		name := filepath.ToSlash(rel)
		if len(s.class.Classify(name)) == 0 {
			return nil // still unmatched
		}
		if ierr := s.ingestFrom(quarantine, rel); ierr != nil {
			s.logger.Logf("unmatched", "reingest %s: %v", name, ierr)
			return nil
		}
		claimed++
		return nil
	})
	return claimed, err
}

// monitorLoop periodically checks feed progress (stalls) and interval
// completeness against configured expectations (§3.2).
func (s *Server) monitorLoop() {
	defer s.wg.Done()
	for {
		t := s.clk.NewTimer(s.opts.MonitorInterval)
		select {
		case <-s.stopCh:
			t.Stop()
			return
		case <-t.C():
		}
		s.logger.CheckProgress(0)
		s.logger.CheckCompleteness(s.opts.MonitorInterval)
	}
}

// analyzeLoop periodically runs the feed analyzer, logging new-feed
// candidates and raising alarms for suspected false negatives (§5's
// proactive monitoring as a background activity).
func (s *Server) analyzeLoop() {
	defer s.wg.Done()
	for {
		t := s.clk.NewTimer(s.opts.AnalyzeInterval)
		select {
		case <-s.stopCh:
			t.Stop()
			return
		case <-t.C():
		}
		rep := s.Analyze()
		for _, nf := range rep.NewFeeds {
			s.logger.Logf("analyzer", "new feed candidate: %s", nf.Describe())
		}
		for _, fn := range rep.FalseNegatives {
			s.logger.Raise(fn.Feed, fmt.Sprintf(
				"possible false negatives: %d unmatched files look like %s (similarity %.2f)",
				fn.Suggested.Support, fn.Suggested.Pattern, fn.Similarity))
		}
		for _, sub := range rep.Subfeeds {
			for j, outlier := range sub.Outlier {
				if outlier {
					s.logger.Raise(sub.Feed, fmt.Sprintf(
						"possible false positives: subfeed %s (%d files) is a structural outlier",
						sub.Subfeeds[j].Pattern, sub.Subfeeds[j].Support))
				}
			}
		}
	}
}

// IngestLanding classifies, normalizes, records, and schedules one
// deposited file. It is the landing manager's ingest callback and the
// heart of the §3 pipeline.
func (s *Server) IngestLanding(rel string) error {
	return s.ingestFrom(s.land.Dir(), rel)
}

// ingestFrom routes a file under an arbitrary source root (the
// landing zone, or the unmatched quarantine during reprocessing)
// through the sharded pipeline and blocks until its receipt is
// durable — so the contract visible to sources is unchanged: a nil
// return still means the arrival survives a crash.
func (s *Server) ingestFrom(root, rel string) error {
	return s.pipe.Ingest(root, rel)
}

// processArrival is the pipeline's classify→normalize→commit stage:
// it classifies one file, quarantines it when unmatched (no metas),
// or stages it and records the receipt. Feeds carrying a plan {}
// block take the operator-DAG path instead (processPlanned), which
// can return several metas: the primary plus any derived files. It
// runs on shard workers, so everything it touches — classifier,
// logger, store, analyzer samples — is concurrency-safe; per-source
// ordering comes from the pipeline's hash partitioning.
func (s *Server) processArrival(root, rel string) ([]receipts.FileMeta, error) {
	name := filepath.ToSlash(rel)
	src := filepath.Join(root, rel)
	now := s.clk.Now()

	matches := s.class.Classify(name)
	if len(matches) == 0 {
		s.logger.FileUnmatched(name)
		s.recordUnmatched(name, now, fileSize(src))
		// Keep the bytes — a future revised definition may claim them —
		// but move them out of landing so scans stay cheap.
		dst := filepath.Join(s.stage, "_unmatched", rel)
		if _, err := normalize.ProcessFS(s.fs, src, dst, config.CompressNone); err != nil {
			return nil, err
		}
		return nil, s.fs.Remove(src)
	}

	primary := matches[0]
	if prog := s.plans.For(primary.Feed.Path); prog != nil {
		return s.processPlanned(prog, matches, root, rel, now)
	}
	stagedName, err := normalize.StagedName(primary.Feed, name, primary.Fields)
	if err != nil {
		return nil, fmt.Errorf("server: staging name for %s: %w", name, err)
	}
	res, err := normalize.ProcessFS(s.fs, src, filepath.Join(s.stage, stagedName), primary.Feed.Compress)
	if err != nil {
		return nil, fmt.Errorf("server: normalize %s: %w", name, err)
	}
	if err := s.shipStaged(filepath.ToSlash(stagedName)); err != nil {
		return nil, err
	}
	if err := s.fs.Remove(src); err != nil {
		return nil, fmt.Errorf("server: clear landing %s: %w", name, err)
	}

	feeds := make([]string, len(matches))
	for i, m := range matches {
		feeds[i] = m.Feed.Path
	}
	var dataTime time.Time
	if ts, ok := primary.Fields.Time.Timestamp(time.UTC); ok {
		dataTime = ts
	}
	meta := receipts.FileMeta{
		Name:       name,
		StagedPath: filepath.ToSlash(stagedName),
		Feeds:      feeds,
		Size:       res.Size,
		Checksum:   res.Checksum,
		Arrived:    now,
		DataTime:   dataTime,
	}
	id, err := s.store.RecordArrival(meta)
	if err != nil {
		return nil, err
	}
	meta.ID = id
	for _, m := range matches {
		s.logger.FileClassified(m.Feed.Path, name, res.Size, dataTime)
	}
	s.recordMatched(feeds, name, now, res.Size)
	return []receipts.FileMeta{meta}, nil
}

// shipStaged replicates one staged payload to the standby before the
// receipt that references it commits — the same staged-then-logged
// ordering the owner keeps locally. Shipping before the landing file
// is removed keeps a failed ship retryable by rescan. No-op without a
// shipper.
func (s *Server) shipStaged(stagedPath string) error {
	sh := s.getShipper()
	if sh == nil {
		return nil
	}
	data, err := diskfault.ReadFile(s.fs, filepath.Join(s.stage, filepath.FromSlash(stagedPath)))
	if err != nil {
		return fmt.Errorf("server: read staged %s for replication: %w", stagedPath, err)
	}
	return sh.ShipFile(stagedPath, data)
}

func fileSize(path string) int64 {
	if st, err := os.Stat(path); err == nil {
		return st.Size()
	}
	return 0
}

// recordUnmatched retains a bounded sample for the analyzer.
func (s *Server) recordUnmatched(name string, at time.Time, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.unmatched) < s.opts.AnalyzerSample {
		s.unmatched = append(s.unmatched, discovery.Observation{Name: name, Arrived: at, Size: size})
	}
}

func (s *Server) recordMatched(feeds []string, name string, at time.Time, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range feeds {
		if len(s.matched[f]) < s.opts.AnalyzerSample {
			s.matched[f] = append(s.matched[f], discovery.Observation{Name: name, Arrived: at, Size: size})
		}
	}
}

// AddSubscriber registers a subscriber at runtime: its interest set is
// resolved against the installed feeds, transport routing is set up,
// and the full available history is queued as backfill (§4.2). Only
// available when the server built its own transport.
func (s *Server) AddSubscriber(sub *config.Subscriber) error {
	if err := s.addSubscriberDeferred(sub); err != nil {
		return err
	}
	s.engine.QueueBackfill(sub.Name)
	return nil
}

// addSubscriberDeferred registers a subscriber without queueing its
// staged backlog — the replay handoff needs the gap between
// registration and the backfill snapshot.
func (s *Server) addSubscriberDeferred(sub *config.Subscriber) error {
	if s.trans == nil {
		return fmt.Errorf("server: runtime subscribers need the built-in transport")
	}
	if err := s.cfg.ResolveSubscriber(sub); err != nil {
		return err
	}
	if sub.Retry == 0 {
		sub.Retry = 30 * time.Second
	}
	if sub.Host != "" {
		s.trans.setHost(sub.Name, sub.Host)
	} else {
		if sub.Dest == "" {
			sub.Dest = filepath.Join("delivered", sub.Name)
		}
		s.trans.local.Register(sub.Name, s.root)
	}
	if err := s.engine.AddSubscriberDeferred(sub); err != nil {
		return err
	}
	s.mu.Lock()
	s.cfg.Subscribers = append(s.cfg.Subscribers, sub)
	s.mu.Unlock()
	s.logger.Logf("subscriber", "%s added at runtime (%d feeds)", sub.Name, len(sub.Feeds))
	return nil
}

// SubscribeRemote serves a runtime SUBSCRIBE message: register the
// subscriber (or find it, on re-subscription), snapshot its staged
// backlog as live backfill, and — when FROM asks for history older
// than the staging window — start a replay session over the archive
// with that snapshot as the skip set. The snapshot is the handoff
// watermark: everything staged at this instant belongs to the live
// path, everything older only exists in the archive manifest, and a
// file in both (archived mid-session) is claimed by exactly one side.
func (s *Server) SubscribeRemote(m protocol.Subscribe) error {
	if !m.From.IsZero() && s.replay == nil {
		return fmt.Errorf("server: FROM subscription needs an archive with a manifest (replay block + archive dir)")
	}
	s.mu.Lock()
	var sub *config.Subscriber
	for _, existing := range s.cfg.Subscribers {
		if existing.Name == m.Name {
			sub = existing
			break
		}
	}
	s.mu.Unlock()
	if sub == nil {
		sub = &config.Subscriber{
			Name:          m.Name,
			Host:          m.Host,
			Dest:          m.Dest,
			Subscriptions: append([]string(nil), m.Feeds...),
			Class:         m.Class,
		}
		if err := s.addSubscriberDeferred(sub); err != nil {
			return err
		}
	}
	skip := s.engine.QueueBackfill(sub.Name)
	if m.From.IsZero() {
		return nil
	}
	skipSet := make(map[uint64]bool, len(skip))
	for _, id := range skip {
		skipSet[id] = true
	}
	return s.replay.Start(sub.Name, sub.Feeds, m.From, skipSet)
}

// Replay exposes the replay manager (nil without a replay block).
func (s *Server) Replay() *replay.Manager { return s.replay }

// Punctuate propagates end-of-batch punctuation for a feed.
func (s *Server) Punctuate(feed string) { s.engine.Punctuate(feed) }

// AnalyzerReport is the feed analyzer's periodic output (§5).
type AnalyzerReport struct {
	// NewFeeds are suggested definitions for unmatched files (§5.1).
	NewFeeds []discovery.AtomicFeed
	// FalseNegatives link unmatched clusters to existing feeds (§5.2).
	FalseNegatives []analyzer.FalseNegative
	// Subfeeds hold the per-feed false-positive analysis (§5.3).
	Subfeeds []analyzer.SubfeedReport
	// SuggestedGroups bundles structurally similar discovered feeds
	// into candidate feed groups (the §5.1 future-work extension).
	SuggestedGroups []analyzer.FeedGroup
}

// Analyze runs the feed analyzer over the retained observation
// samples.
func (s *Server) Analyze() AnalyzerReport {
	s.mu.Lock()
	unmatched := make([]discovery.Observation, len(s.unmatched))
	copy(unmatched, s.unmatched)
	matched := make(map[string][]discovery.Observation, len(s.matched))
	for f, obs := range s.matched {
		cp := make([]discovery.Observation, len(obs))
		copy(cp, obs)
		matched[f] = cp
	}
	s.mu.Unlock()

	var defs []analyzer.FeedDef
	for _, f := range s.cfg.Feeds {
		for _, p := range f.Patterns {
			defs = append(defs, analyzer.FeedDef{Name: f.Path, Pattern: p})
		}
	}
	var rep AnalyzerReport
	an := discovery.New(discovery.DefaultOptions())
	for _, o := range unmatched {
		an.Add(o)
	}
	rep.NewFeeds = an.Feeds()
	rep.SuggestedGroups = analyzer.GroupFeeds(rep.NewFeeds, 0.8)
	rep.FalseNegatives = analyzer.DetectFalseNegatives(defs, unmatched, analyzer.Options{})
	for feed, obs := range matched {
		rep.Subfeeds = append(rep.Subfeeds, analyzer.DetectFalsePositives(feed, obs, analyzer.Options{}))
	}
	return rep
}

// Deposit is a convenience for in-process sources: write into landing
// and ingest immediately.
func (s *Server) Deposit(name string, data []byte) error {
	return s.land.Deposit(name, data)
}

// FeedPattern is a helper for tools: compile a pattern or die.
func FeedPattern(src string) (*pattern.Pattern, error) { return pattern.Compile(src) }
