package normalize

import (
	"bytes"
	"compress/gzip"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bistro/internal/config"
	"bistro/internal/pattern"
)

func TestStagedNamePassthrough(t *testing.T) {
	f := &config.Feed{Path: "SNMP/BPS"}
	got, err := StagedName(f, "BPS_poller1_2010092504.csv.gz", &pattern.Fields{})
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join("SNMP", "BPS", "BPS_poller1_2010092504.csv.gz")
	if got != want {
		t.Fatalf("staged = %q, want %q", got, want)
	}
}

func TestStagedNameNormalized(t *testing.T) {
	src := pattern.MustCompile("BPS_poller%i_%Y%m%d%H.csv.gz")
	f := &config.Feed{
		Path:      "SNMP/BPS",
		Normalize: pattern.MustCompile("%Y/%m/%d/BPS_poller%i_%H.csv.gz"),
	}
	fields, ok := src.Match("BPS_poller7_2010092504.csv.gz")
	if !ok {
		t.Fatal("no match")
	}
	got, err := StagedName(f, "BPS_poller7_2010092504.csv.gz", fields)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join("SNMP", "BPS", "2010", "09", "25", "BPS_poller7_04.csv.gz")
	if got != want {
		t.Fatalf("staged = %q, want %q", got, want)
	}
}

func TestStagedNameExtensionAdjustment(t *testing.T) {
	gz := &config.Feed{Path: "F", Compress: config.CompressGzip}
	got, _ := StagedName(gz, "data.csv", &pattern.Fields{})
	if !strings.HasSuffix(got, "data.csv.gz") {
		t.Errorf("gzip staged = %q", got)
	}
	// Already compressed name keeps one .gz.
	got, _ = StagedName(gz, "data.csv.gz", &pattern.Fields{})
	if !strings.HasSuffix(got, "data.csv.gz") || strings.HasSuffix(got, ".gz.gz") {
		t.Errorf("gzip staged = %q", got)
	}
	gunzip := &config.Feed{Path: "F", Compress: config.CompressGunzip}
	got, _ = StagedName(gunzip, "data.csv.gz", &pattern.Fields{})
	if !strings.HasSuffix(got, "data.csv") || strings.HasSuffix(got, ".gz") {
		t.Errorf("gunzip staged = %q", got)
	}
	// Bunzip2 strips either spelling of the bzip2 extension; the staged
	// name must not keep claiming an encoding the content lost.
	bunzip := &config.Feed{Path: "F", Compress: config.CompressBunzip2}
	for _, name := range []string{"data.csv.bz2", "data.csv.bzip2"} {
		got, _ = StagedName(bunzip, name, &pattern.Fields{})
		if !strings.HasSuffix(got, "data.csv") {
			t.Errorf("bunzip2 staged(%q) = %q, want .csv suffix", name, got)
		}
	}
}

func TestStagedNameRenderError(t *testing.T) {
	f := &config.Feed{
		Path:      "F",
		Normalize: pattern.MustCompile("%Y/%m/file_%i.csv"),
	}
	// Fields lack the integer the template needs.
	if _, err := StagedName(f, "x", &pattern.Fields{}); err == nil {
		t.Fatal("expected render error")
	}
}

func writeFile(t *testing.T, dir, name string, content []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProcessCopy(t *testing.T) {
	dir := t.TempDir()
	content := []byte("hello,world\n1,2\n")
	src := writeFile(t, dir, "in.csv", content)
	dst := filepath.Join(dir, "nested", "out.csv")
	res, err := Process(src, dst, config.CompressNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != int64(len(content)) {
		t.Errorf("size = %d, want %d", res.Size, len(content))
	}
	if res.Checksum != crc32.ChecksumIEEE(content) {
		t.Errorf("checksum mismatch")
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("content mismatch")
	}
}

func TestProcessGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	content := bytes.Repeat([]byte("measurement,42\n"), 1000)
	src := writeFile(t, dir, "in.csv", content)

	gzPath := filepath.Join(dir, "out.csv.gz")
	res, err := Process(src, gzPath, config.CompressGzip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size >= int64(len(content)) {
		t.Errorf("gzip did not shrink: %d >= %d", res.Size, len(content))
	}
	// Verify the staged checksum matches the staged bytes.
	sum, n, err := ChecksumFile(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if sum != res.Checksum || n != res.Size {
		t.Errorf("ChecksumFile = (%x,%d), Process said (%x,%d)", sum, n, res.Checksum, res.Size)
	}

	// Decompress back and compare content.
	plainPath := filepath.Join(dir, "back.csv")
	if _, err := Process(gzPath, plainPath, config.CompressGunzip); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("gzip round trip corrupted content")
	}
}

func TestProcessGunzipRejectsPlain(t *testing.T) {
	dir := t.TempDir()
	src := writeFile(t, dir, "plain.txt", []byte("not gzip"))
	if _, err := Process(src, filepath.Join(dir, "out"), config.CompressGunzip); err == nil {
		t.Fatal("expected gunzip error on plain content")
	}
	// Failed normalization must not leave temp droppings.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".bistro-tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestProcessMissingSource(t *testing.T) {
	dir := t.TempDir()
	if _, err := Process(filepath.Join(dir, "nope"), filepath.Join(dir, "out"), config.CompressNone); err == nil {
		t.Fatal("expected error for missing source")
	}
}

func TestProcessEmptyFile(t *testing.T) {
	dir := t.TempDir()
	src := writeFile(t, dir, "empty", nil)
	res, err := Process(src, filepath.Join(dir, "out"), config.CompressNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 0 || res.Checksum != 0 {
		t.Errorf("empty file result = %+v", res)
	}
}

func TestGzipOutputIsStandard(t *testing.T) {
	dir := t.TempDir()
	content := []byte("interop check")
	src := writeFile(t, dir, "in", content)
	gzPath := filepath.Join(dir, "out.gz")
	if _, err := Process(src, gzPath, config.CompressGzip); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Error("standard gzip reader saw different content")
	}
}

func BenchmarkProcessCopy(b *testing.B) {
	dir := b.TempDir()
	content := bytes.Repeat([]byte("x"), 64*1024)
	src := filepath.Join(dir, "in")
	if err := os.WriteFile(src, content, 0o644); err != nil {
		b.Fatal(err)
	}
	dst := filepath.Join(dir, "out")
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Process(src, dst, config.CompressNone); err != nil {
			b.Fatal(err)
		}
	}
}

// bzip2Hello is "hello\n" compressed with bzip2 (stdlib bzip2 cannot
// write, so the fixture is pre-compressed bytes).
var bzip2Hello = []byte{
	0x42, 0x5a, 0x68, 0x39, 0x31, 0x41, 0x59, 0x26, 0x53, 0x59, 0xc1, 0xc0,
	0x80, 0xe2, 0x00, 0x00, 0x01, 0x41, 0x00, 0x00, 0x10, 0x02, 0x44, 0xa0,
	0x00, 0x30, 0xcd, 0x00, 0xc3, 0x46, 0x29, 0x97, 0x17, 0x72, 0x45, 0x38,
	0x50, 0x90, 0xc1, 0xc0, 0x80, 0xe2,
}

func TestProcessBunzip2(t *testing.T) {
	dir := t.TempDir()
	src := writeFile(t, dir, "in.txt.bz2", bzip2Hello)
	dst := filepath.Join(dir, "out.txt")
	res, err := Process(src, dst, config.CompressBunzip2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Fatalf("content = %q", got)
	}
	if res.Size != 6 {
		t.Fatalf("size = %d", res.Size)
	}
}

func TestBunzip2ExtensionAdjustment(t *testing.T) {
	f := &config.Feed{Path: "F", Compress: config.CompressBunzip2}
	got, _ := StagedName(f, "poller1_soft_version.csv.bz2", &pattern.Fields{})
	if !strings.HasSuffix(got, "poller1_soft_version.csv") || strings.HasSuffix(got, ".bz2") {
		t.Fatalf("staged = %q", got)
	}
}

func TestConfigParsesBunzip2(t *testing.T) {
	// Indirect: the config keyword must map to the normalize mode.
	if config.CompressBunzip2.String() != "bunzip2" {
		t.Fatal("mode name")
	}
}
