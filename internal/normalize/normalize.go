// Package normalize implements Bistro's file normalizer (SIGMOD'11
// §3.1): it rewrites incoming filenames into the organizational layout
// a feed requests (e.g. daily directories derived from the timestamp
// fields embedded in the name) and applies content normalization
// (gzip compression or decompression) while moving files from landing
// to staging directories.
package normalize

import (
	"compress/bzip2"
	"compress/gzip"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strings"

	"bistro/internal/config"
	"bistro/internal/diskfault"
	"bistro/internal/pattern"
)

// StagedName computes the staging-relative path for a matched file.
// Feeds with a normalization template render it from the extracted
// fields; other feeds keep the original name. The feed's path prefixes
// the result so staging mirrors the feed hierarchy.
func StagedName(feed *config.Feed, name string, fields *pattern.Fields) (string, error) {
	out := name
	if feed.Normalize != nil {
		rendered, err := feed.Normalize.Render(fields)
		if err != nil {
			return "", fmt.Errorf("normalize: feed %s: %w", feed.Path, err)
		}
		out = rendered
	}
	out = adjustExtension(out, feed.Compress)
	return filepath.Join(filepath.FromSlash(feed.Path), filepath.FromSlash(out)), nil
}

// adjustExtension keeps the staged filename truthful about its
// encoding: gzip adds ".gz" when absent, gunzip strips a trailing
// ".gz"/".gzip".
func adjustExtension(name string, c config.Compression) string {
	switch c {
	case config.CompressGzip:
		if !strings.HasSuffix(name, ".gz") && !strings.HasSuffix(name, ".gzip") {
			return name + ".gz"
		}
	case config.CompressGunzip:
		if strings.HasSuffix(name, ".gz") {
			return strings.TrimSuffix(name, ".gz")
		}
		if strings.HasSuffix(name, ".gzip") {
			return strings.TrimSuffix(name, ".gzip")
		}
	case config.CompressBunzip2:
		if strings.HasSuffix(name, ".bz2") {
			return strings.TrimSuffix(name, ".bz2")
		}
		if strings.HasSuffix(name, ".bzip2") {
			return strings.TrimSuffix(name, ".bzip2")
		}
	}
	return name
}

// Result describes a normalized file.
type Result struct {
	// Size is the byte count written to the staged file.
	Size int64
	// Checksum is the CRC32 (IEEE) of the staged content.
	Checksum uint32
}

// Process copies src to dst applying the compression mode, atomically
// (write to a temp file in dst's directory, then rename). It returns
// the staged size and checksum used for delivery verification.
func Process(src, dst string, mode config.Compression) (Result, error) {
	return ProcessFS(diskfault.OS(), src, dst, mode)
}

// ProcessFS is Process over an explicit filesystem seam, and it is the
// durable variant the server uses: the receipt DB will point at dst,
// so the temp file is fsynced before the rename and the parent
// directory is fsynced after it. Without both, a power cut after the
// arrival receipt commits can leave the receipt referencing a
// truncated or missing staged file.
func ProcessFS(fsys diskfault.FS, src, dst string, mode config.Compression) (Result, error) {
	in, err := fsys.Open(src)
	if err != nil {
		return Result{}, fmt.Errorf("normalize: open source: %w", err)
	}
	defer in.Close()
	if err := fsys.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return Result{}, fmt.Errorf("normalize: mkdir: %w", err)
	}
	tmp, err := fsys.CreateTemp(filepath.Dir(dst), ".bistro-tmp-*")
	if err != nil {
		return Result{}, fmt.Errorf("normalize: temp file: %w", err)
	}
	tmpName := tmp.Name()
	res, err := transform(in, tmp, mode)
	if err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return Result{}, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return Result{}, fmt.Errorf("normalize: sync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return Result{}, fmt.Errorf("normalize: close temp: %w", err)
	}
	if err := fsys.Rename(tmpName, dst); err != nil {
		fsys.Remove(tmpName)
		return Result{}, fmt.Errorf("normalize: rename: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(dst)); err != nil {
		return Result{}, fmt.Errorf("normalize: sync dir: %w", err)
	}
	return res, nil
}

// transform streams r to w under the compression mode, accumulating
// size and checksum of the bytes written.
func transform(r io.Reader, w io.Writer, mode config.Compression) (Result, error) {
	crc := crc32.NewIEEE()
	counted := &countWriter{w: io.MultiWriter(w, crc)}
	switch mode {
	case config.CompressNone:
		if _, err := io.Copy(counted, r); err != nil {
			return Result{}, fmt.Errorf("normalize: copy: %w", err)
		}
	case config.CompressGzip:
		zw := gzip.NewWriter(counted)
		if _, err := io.Copy(zw, r); err != nil {
			return Result{}, fmt.Errorf("normalize: gzip: %w", err)
		}
		if err := zw.Close(); err != nil {
			return Result{}, fmt.Errorf("normalize: gzip close: %w", err)
		}
	case config.CompressGunzip:
		zr, err := gzip.NewReader(r)
		if err != nil {
			return Result{}, fmt.Errorf("normalize: gunzip: %w", err)
		}
		if _, err := io.Copy(counted, zr); err != nil {
			return Result{}, fmt.Errorf("normalize: gunzip copy: %w", err)
		}
		if err := zr.Close(); err != nil {
			return Result{}, fmt.Errorf("normalize: gunzip close: %w", err)
		}
	case config.CompressBunzip2:
		if _, err := io.Copy(counted, bzip2.NewReader(r)); err != nil {
			return Result{}, fmt.Errorf("normalize: bunzip2: %w", err)
		}
	default:
		return Result{}, fmt.Errorf("normalize: unknown compression mode %v", mode)
	}
	return Result{Size: counted.n, Checksum: crc.Sum32()}, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// ChecksumFile computes the CRC32 of a file's content, used by
// subscribers to verify received files.
func ChecksumFile(path string) (uint32, int64, error) {
	return ChecksumFileFS(diskfault.OS(), path)
}

// ChecksumFileFS is ChecksumFile over an explicit filesystem seam.
func ChecksumFileFS(fsys diskfault.FS, path string) (uint32, int64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("normalize: open: %w", err)
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	n, err := io.Copy(crc, f)
	if err != nil {
		return 0, 0, fmt.Errorf("normalize: checksum: %w", err)
	}
	return crc.Sum32(), n, nil
}
