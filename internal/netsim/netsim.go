// Package netsim provides a simulated subscriber transport with
// configurable per-subscriber bandwidth, latency, and failure
// injection. The paper's scheduling and reliability arguments (§4.2,
// §4.3) are about heterogeneous, unreliable subscribers; netsim lets
// tests and experiments reproduce fast/slow/flapping subscribers
// deterministically on one machine, without real remote hosts.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bistro/internal/clock"
	"bistro/internal/transport"
)

// HostConfig shapes one simulated subscriber.
type HostConfig struct {
	// Bandwidth in bytes/second governs transfer service time
	// (0 = infinite).
	Bandwidth int64
	// Latency is added to every operation.
	Latency time.Duration
	// TimeScale divides all computed durations, letting experiments
	// compress hours of simulated traffic into milliseconds of wall
	// time. 0 means 1 (no compression).
	TimeScale int64
}

// FlapWindow is one scripted outage: the host is unreachable from From
// (inclusive) until Until (exclusive), measured on the transport's
// clock. A schedule of windows models a flapping subscriber
// deterministically.
type FlapWindow struct {
	From  time.Time
	Until time.Time
}

// FaultPlan injects failures into one host's operations. Probabilities
// are per attempt and drawn from the transport's seeded RNG, so a run
// is reproducible given the same seed and operation order.
type FaultPlan struct {
	// FailProb is the probability a transfer fails outright
	// (connection refused: no service time consumed).
	FailProb float64
	// CutProb is the probability a transfer is cut mid-stream: half
	// the service time elapses, then the transfer errors.
	CutProb float64
	// SpikeProb is the probability an attempt suffers a latency spike
	// of Spike (added before bandwidth scaling's TimeScale division).
	SpikeProb float64
	// Spike is the injected extra latency.
	Spike time.Duration
	// Windows is the scripted flap schedule; the host is down inside
	// any window, regardless of SetDown.
	Windows []FlapWindow
}

// Transport is a simulated transport. It implements
// transport.Transport.
type Transport struct {
	clk clock.Clock

	mu    sync.Mutex
	rng   *rand.Rand
	hosts map[string]*host
}

type host struct {
	cfg       HostConfig
	down      bool
	plan      FaultPlan
	delivered []transport.File
	notified  []transport.File
	triggered []string
	pings     int
	busy      time.Duration // cumulative service time (for stats)
}

// New creates a simulated transport using clk for service-time sleeps.
// Fault draws use a fixed default seed; call Seed to vary it.
func New(clk clock.Clock) *Transport {
	return &Transport{clk: clk, rng: rand.New(rand.NewSource(1)), hosts: make(map[string]*host)}
}

// Seed resets the fault-injection RNG.
func (t *Transport) Seed(seed int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rng = rand.New(rand.NewSource(seed))
}

// Register adds a simulated subscriber host.
func (t *Transport) Register(sub string, cfg HostConfig) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hosts[sub] = &host{cfg: cfg}
}

// SetDown flips a subscriber's availability (failure injection).
func (t *Transport) SetDown(sub string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.hosts[sub]; ok {
		h.down = down
	}
}

// SetFaults installs a host's fault plan (replacing any previous one).
func (t *Transport) SetFaults(sub string, plan FaultPlan) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.hosts[sub]; ok {
		h.plan = plan
	}
}

// downAt reports whether the host is unreachable at time now, either
// by explicit SetDown or inside a scripted flap window.
func (h *host) downAt(now time.Time) bool {
	if h.down {
		return true
	}
	for _, w := range h.plan.Windows {
		if !now.Before(w.From) && now.Before(w.Until) {
			return true
		}
	}
	return false
}

func (t *Transport) host(sub string) (*host, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hosts[sub]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown subscriber %q", sub)
	}
	return h, nil
}

// serviceTime computes how long an operation on this host takes.
func serviceTime(cfg HostConfig, bytes int64) time.Duration {
	d := cfg.Latency
	if cfg.Bandwidth > 0 {
		d += time.Duration(bytes * int64(time.Second) / cfg.Bandwidth)
	}
	if cfg.TimeScale > 1 {
		d /= time.Duration(cfg.TimeScale)
	}
	return d
}

// Deliver simulates a transfer: sleeps the service time, fails when
// the host is down (or a fault plan injects a failure or cut).
func (t *Transport) Deliver(sub string, f transport.File) error {
	h, err := t.host(sub)
	if err != nil {
		return err
	}
	bytes := int64(len(f.Data))
	if f.Data == nil {
		bytes = f.Size
	}
	d := serviceTime(h.cfg, bytes)
	// Draw this attempt's faults up front, under the lock, so a seeded
	// run is reproducible regardless of sleep interleaving.
	t.mu.Lock()
	p := h.plan
	var fail, cut bool
	if p.SpikeProb > 0 && t.rng.Float64() < p.SpikeProb {
		spike := p.Spike
		if h.cfg.TimeScale > 1 {
			spike /= time.Duration(h.cfg.TimeScale)
		}
		d += spike
	}
	if p.FailProb > 0 && t.rng.Float64() < p.FailProb {
		fail = true
	}
	if !fail && p.CutProb > 0 && t.rng.Float64() < p.CutProb {
		cut = true
	}
	t.mu.Unlock()
	if fail {
		return fmt.Errorf("netsim: injected transfer failure to %q", sub)
	}
	if cut {
		if d/2 > 0 {
			t.clk.Sleep(d / 2)
		}
		t.mu.Lock()
		h.busy += d / 2
		t.mu.Unlock()
		return fmt.Errorf("netsim: transfer to %q cut mid-stream", sub)
	}
	if d > 0 {
		t.clk.Sleep(d)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.downAt(t.clk.Now()) {
		return fmt.Errorf("netsim: subscriber %q is down", sub)
	}
	h.busy += d
	f.Data = nil // keep memory bounded; content is not inspected
	h.delivered = append(h.delivered, f)
	return nil
}

// Notify simulates a lightweight notification (latency only).
func (t *Transport) Notify(sub string, f transport.File) error {
	h, err := t.host(sub)
	if err != nil {
		return err
	}
	d := serviceTime(h.cfg, 0)
	if d > 0 {
		t.clk.Sleep(d)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.downAt(t.clk.Now()) {
		return fmt.Errorf("netsim: subscriber %q is down", sub)
	}
	f.Data = nil
	h.notified = append(h.notified, f)
	return nil
}

// Trigger simulates running a remote command.
func (t *Transport) Trigger(sub string, command string, paths []string) error {
	h, err := t.host(sub)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.downAt(t.clk.Now()) {
		return fmt.Errorf("netsim: subscriber %q is down", sub)
	}
	h.triggered = append(h.triggered, command)
	return nil
}

// Ping probes liveness without a transfer. Every attempt is counted
// (Pings), so experiments can compare probe traffic across policies.
func (t *Transport) Ping(sub string) error {
	h, err := t.host(sub)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h.pings++
	if h.downAt(t.clk.Now()) {
		return fmt.Errorf("netsim: subscriber %q is down", sub)
	}
	return nil
}

// Pings reports how many liveness probes sub has received (successful
// or not).
func (t *Transport) Pings(sub string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.hosts[sub]; ok {
		return h.pings
	}
	return 0
}

// Delivered returns a copy of the files delivered to sub so far.
func (t *Transport) Delivered(sub string) []transport.File {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hosts[sub]
	if !ok {
		return nil
	}
	out := make([]transport.File, len(h.delivered))
	copy(out, h.delivered)
	return out
}

// Notified returns a copy of notifications sent to sub.
func (t *Transport) Notified(sub string) []transport.File {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hosts[sub]
	if !ok {
		return nil
	}
	out := make([]transport.File, len(h.notified))
	copy(out, h.notified)
	return out
}

// Triggered returns the remote commands run on sub.
func (t *Transport) Triggered(sub string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hosts[sub]
	if !ok {
		return nil
	}
	out := make([]string, len(h.triggered))
	copy(out, h.triggered)
	return out
}

// BusyTime reports cumulative simulated service time for sub.
func (t *Transport) BusyTime(sub string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.hosts[sub]; ok {
		return h.busy
	}
	return 0
}

var _ transport.Transport = (*Transport)(nil)
