// Package netsim provides a simulated subscriber transport with
// configurable per-subscriber bandwidth, latency, and failure
// injection. The paper's scheduling and reliability arguments (§4.2,
// §4.3) are about heterogeneous, unreliable subscribers; netsim lets
// tests and experiments reproduce fast/slow/flapping subscribers
// deterministically on one machine, without real remote hosts.
package netsim

import (
	"fmt"
	"sync"
	"time"

	"bistro/internal/clock"
	"bistro/internal/transport"
)

// HostConfig shapes one simulated subscriber.
type HostConfig struct {
	// Bandwidth in bytes/second governs transfer service time
	// (0 = infinite).
	Bandwidth int64
	// Latency is added to every operation.
	Latency time.Duration
	// TimeScale divides all computed durations, letting experiments
	// compress hours of simulated traffic into milliseconds of wall
	// time. 0 means 1 (no compression).
	TimeScale int64
}

// Transport is a simulated transport. It implements
// transport.Transport.
type Transport struct {
	clk clock.Clock

	mu    sync.Mutex
	hosts map[string]*host
}

type host struct {
	cfg       HostConfig
	down      bool
	delivered []transport.File
	notified  []transport.File
	triggered []string
	busy      time.Duration // cumulative service time (for stats)
}

// New creates a simulated transport using clk for service-time sleeps.
func New(clk clock.Clock) *Transport {
	return &Transport{clk: clk, hosts: make(map[string]*host)}
}

// Register adds a simulated subscriber host.
func (t *Transport) Register(sub string, cfg HostConfig) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hosts[sub] = &host{cfg: cfg}
}

// SetDown flips a subscriber's availability (failure injection).
func (t *Transport) SetDown(sub string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.hosts[sub]; ok {
		h.down = down
	}
}

func (t *Transport) host(sub string) (*host, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hosts[sub]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown subscriber %q", sub)
	}
	return h, nil
}

// serviceTime computes how long an operation on this host takes.
func serviceTime(cfg HostConfig, bytes int64) time.Duration {
	d := cfg.Latency
	if cfg.Bandwidth > 0 {
		d += time.Duration(bytes * int64(time.Second) / cfg.Bandwidth)
	}
	if cfg.TimeScale > 1 {
		d /= time.Duration(cfg.TimeScale)
	}
	return d
}

// Deliver simulates a transfer: sleeps the service time, fails when
// the host is down.
func (t *Transport) Deliver(sub string, f transport.File) error {
	h, err := t.host(sub)
	if err != nil {
		return err
	}
	bytes := int64(len(f.Data))
	if f.Data == nil {
		bytes = f.Size
	}
	d := serviceTime(h.cfg, bytes)
	if d > 0 {
		t.clk.Sleep(d)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.down {
		return fmt.Errorf("netsim: subscriber %q is down", sub)
	}
	h.busy += d
	f.Data = nil // keep memory bounded; content is not inspected
	h.delivered = append(h.delivered, f)
	return nil
}

// Notify simulates a lightweight notification (latency only).
func (t *Transport) Notify(sub string, f transport.File) error {
	h, err := t.host(sub)
	if err != nil {
		return err
	}
	d := serviceTime(h.cfg, 0)
	if d > 0 {
		t.clk.Sleep(d)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.down {
		return fmt.Errorf("netsim: subscriber %q is down", sub)
	}
	f.Data = nil
	h.notified = append(h.notified, f)
	return nil
}

// Trigger simulates running a remote command.
func (t *Transport) Trigger(sub string, command string, paths []string) error {
	h, err := t.host(sub)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.down {
		return fmt.Errorf("netsim: subscriber %q is down", sub)
	}
	h.triggered = append(h.triggered, command)
	return nil
}

// Ping probes liveness without a transfer.
func (t *Transport) Ping(sub string) error {
	h, err := t.host(sub)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h.down {
		return fmt.Errorf("netsim: subscriber %q is down", sub)
	}
	return nil
}

// Delivered returns a copy of the files delivered to sub so far.
func (t *Transport) Delivered(sub string) []transport.File {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hosts[sub]
	if !ok {
		return nil
	}
	out := make([]transport.File, len(h.delivered))
	copy(out, h.delivered)
	return out
}

// Notified returns a copy of notifications sent to sub.
func (t *Transport) Notified(sub string) []transport.File {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hosts[sub]
	if !ok {
		return nil
	}
	out := make([]transport.File, len(h.notified))
	copy(out, h.notified)
	return out
}

// Triggered returns the remote commands run on sub.
func (t *Transport) Triggered(sub string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.hosts[sub]
	if !ok {
		return nil
	}
	out := make([]string, len(h.triggered))
	copy(out, h.triggered)
	return out
}

// BusyTime reports cumulative simulated service time for sub.
func (t *Transport) BusyTime(sub string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.hosts[sub]; ok {
		return h.busy
	}
	return 0
}

var _ transport.Transport = (*Transport)(nil)
