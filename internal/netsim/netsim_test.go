package netsim

import (
	"testing"
	"time"

	"bistro/internal/clock"
	"bistro/internal/transport"
)

func TestDeliverAndRecord(t *testing.T) {
	n := New(clock.NewReal())
	n.Register("fast", HostConfig{})
	f := transport.File{FileID: 1, Feed: "F", Name: "x", Data: []byte("abc")}
	if err := n.Deliver("fast", f); err != nil {
		t.Fatal(err)
	}
	d := n.Delivered("fast")
	if len(d) != 1 || d[0].FileID != 1 {
		t.Fatalf("delivered = %+v", d)
	}
	if d[0].Data != nil {
		t.Fatal("payload retained")
	}
}

func TestDownHostFails(t *testing.T) {
	n := New(clock.NewReal())
	n.Register("s", HostConfig{})
	n.SetDown("s", true)
	if err := n.Deliver("s", transport.File{}); err == nil {
		t.Fatal("down host accepted delivery")
	}
	if err := n.Ping("s"); err == nil {
		t.Fatal("down host pingable")
	}
	if err := n.Notify("s", transport.File{}); err == nil {
		t.Fatal("down host notified")
	}
	if err := n.Trigger("s", "x", nil); err == nil {
		t.Fatal("down host triggered")
	}
	n.SetDown("s", false)
	if err := n.Ping("s"); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownHost(t *testing.T) {
	n := New(clock.NewReal())
	if err := n.Deliver("ghost", transport.File{}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestServiceTime(t *testing.T) {
	cfg := HostConfig{Bandwidth: 1000, Latency: 100 * time.Millisecond}
	if d := serviceTime(cfg, 500); d != 600*time.Millisecond {
		t.Fatalf("service time = %v", d)
	}
	scaled := cfg
	scaled.TimeScale = 100
	if d := serviceTime(scaled, 500); d != 6*time.Millisecond {
		t.Fatalf("scaled service time = %v", d)
	}
	if d := serviceTime(HostConfig{}, 1<<30); d != 0 {
		t.Fatalf("infinite bandwidth service time = %v", d)
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	n := New(clock.NewReal())
	n.Register("s", HostConfig{Bandwidth: 1 << 30, Latency: time.Millisecond})
	for i := 0; i < 3; i++ {
		if err := n.Deliver("s", transport.File{Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if busy := n.BusyTime("s"); busy < 3*time.Millisecond {
		t.Fatalf("busy = %v", busy)
	}
}

func TestNotifyIsLatencyOnly(t *testing.T) {
	// A notification must not pay the bandwidth cost of a payload.
	n := New(clock.NewReal())
	n.Register("s", HostConfig{Bandwidth: 10, Latency: 0}) // 10 B/s: payloads are expensive
	start := time.Now()
	if err := n.Notify("s", transport.File{Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("notify paid bandwidth cost")
	}
}

func TestTriggeredRecorded(t *testing.T) {
	n := New(clock.NewReal())
	n.Register("s", HostConfig{})
	if err := n.Trigger("s", "load a b", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if cmds := n.Triggered("s"); len(cmds) != 1 || cmds[0] != "load a b" {
		t.Fatalf("triggered = %v", cmds)
	}
}
