package netsim

import (
	"testing"
	"time"

	"bistro/internal/clock"
	"bistro/internal/transport"
)

func TestDeliverAndRecord(t *testing.T) {
	n := New(clock.NewReal())
	n.Register("fast", HostConfig{})
	f := transport.File{FileID: 1, Feed: "F", Name: "x", Data: []byte("abc")}
	if err := n.Deliver("fast", f); err != nil {
		t.Fatal(err)
	}
	d := n.Delivered("fast")
	if len(d) != 1 || d[0].FileID != 1 {
		t.Fatalf("delivered = %+v", d)
	}
	if d[0].Data != nil {
		t.Fatal("payload retained")
	}
}

func TestDownHostFails(t *testing.T) {
	n := New(clock.NewReal())
	n.Register("s", HostConfig{})
	n.SetDown("s", true)
	if err := n.Deliver("s", transport.File{}); err == nil {
		t.Fatal("down host accepted delivery")
	}
	if err := n.Ping("s"); err == nil {
		t.Fatal("down host pingable")
	}
	if err := n.Notify("s", transport.File{}); err == nil {
		t.Fatal("down host notified")
	}
	if err := n.Trigger("s", "x", nil); err == nil {
		t.Fatal("down host triggered")
	}
	n.SetDown("s", false)
	if err := n.Ping("s"); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownHost(t *testing.T) {
	n := New(clock.NewReal())
	if err := n.Deliver("ghost", transport.File{}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestServiceTime(t *testing.T) {
	cfg := HostConfig{Bandwidth: 1000, Latency: 100 * time.Millisecond}
	if d := serviceTime(cfg, 500); d != 600*time.Millisecond {
		t.Fatalf("service time = %v", d)
	}
	scaled := cfg
	scaled.TimeScale = 100
	if d := serviceTime(scaled, 500); d != 6*time.Millisecond {
		t.Fatalf("scaled service time = %v", d)
	}
	if d := serviceTime(HostConfig{}, 1<<30); d != 0 {
		t.Fatalf("infinite bandwidth service time = %v", d)
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	n := New(clock.NewReal())
	n.Register("s", HostConfig{Bandwidth: 1 << 30, Latency: time.Millisecond})
	for i := 0; i < 3; i++ {
		if err := n.Deliver("s", transport.File{Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if busy := n.BusyTime("s"); busy < 3*time.Millisecond {
		t.Fatalf("busy = %v", busy)
	}
}

func TestNotifyIsLatencyOnly(t *testing.T) {
	// A notification must not pay the bandwidth cost of a payload.
	n := New(clock.NewReal())
	n.Register("s", HostConfig{Bandwidth: 10, Latency: 0}) // 10 B/s: payloads are expensive
	start := time.Now()
	if err := n.Notify("s", transport.File{Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("notify paid bandwidth cost")
	}
}

func TestTriggeredRecorded(t *testing.T) {
	n := New(clock.NewReal())
	n.Register("s", HostConfig{})
	if err := n.Trigger("s", "load a b", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if cmds := n.Triggered("s"); len(cmds) != 1 || cmds[0] != "load a b" {
		t.Fatalf("triggered = %v", cmds)
	}
}

func TestInjectedFailureProbability(t *testing.T) {
	n := New(clock.NewReal())
	n.Seed(42)
	n.Register("s", HostConfig{})
	n.SetFaults("s", FaultPlan{FailProb: 0.5})
	fails := 0
	for i := 0; i < 200; i++ {
		if err := n.Deliver("s", transport.File{Data: []byte("x")}); err != nil {
			fails++
		}
	}
	if fails < 60 || fails > 140 {
		t.Fatalf("fail rate %d/200 far from 0.5", fails)
	}
	// Same seed, same operation order: identical outcome.
	m := New(clock.NewReal())
	m.Seed(42)
	m.Register("s", HostConfig{})
	m.SetFaults("s", FaultPlan{FailProb: 0.5})
	fails2 := 0
	for i := 0; i < 200; i++ {
		if err := m.Deliver("s", transport.File{Data: []byte("x")}); err != nil {
			fails2++
		}
	}
	if fails != fails2 {
		t.Fatalf("seeded runs diverged: %d vs %d", fails, fails2)
	}
}

func TestMidTransferCutConsumesHalfServiceTime(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk)
	n.Register("s", HostConfig{Bandwidth: 100}) // 1s per 100 bytes
	n.SetFaults("s", FaultPlan{CutProb: 1})
	done := make(chan error, 1)
	go func() { done <- n.Deliver("s", transport.File{Data: make([]byte, 100)}) }()
	// Full service time would be 1s; the cut errors after 500ms.
	for i := 0; i < 100; i++ {
		clk.Advance(50 * time.Millisecond)
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("cut transfer succeeded")
			}
			if got := n.BusyTime("s"); got != 500*time.Millisecond {
				t.Fatalf("busy = %s, want 500ms", got)
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatal("cut transfer never returned")
}

func TestLatencySpike(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	n := New(clk)
	n.Register("s", HostConfig{})
	n.SetFaults("s", FaultPlan{SpikeProb: 1, Spike: 2 * time.Second})
	done := make(chan error, 1)
	go func() { done <- n.Deliver("s", transport.File{Data: []byte("x")}) }()
	fired := false
	for i := 0; i < 100 && !fired; i++ {
		clk.Advance(100 * time.Millisecond)
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			fired = true
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if !fired {
		t.Fatal("spiked delivery never completed")
	}
	if now := clk.Now(); now.Before(time.Unix(2, 0)) {
		t.Fatalf("delivery completed at %s, before the 2s spike elapsed", now)
	}
}

func TestScriptedFlapWindows(t *testing.T) {
	start := time.Unix(1000, 0)
	clk := clock.NewSimulated(start)
	n := New(clk)
	n.Register("s", HostConfig{})
	n.SetFaults("s", FaultPlan{Windows: []FlapWindow{
		{From: start.Add(10 * time.Second), Until: start.Add(20 * time.Second)},
		{From: start.Add(30 * time.Second), Until: start.Add(40 * time.Second)},
	}})
	check := func(wantUp bool) {
		t.Helper()
		err := n.Ping("s")
		if wantUp && err != nil {
			t.Fatalf("at %s: ping failed: %v", clk.Now(), err)
		}
		if !wantUp && err == nil {
			t.Fatalf("at %s: ping succeeded inside flap window", clk.Now())
		}
	}
	check(true)
	clk.Advance(10 * time.Second) // t=10: first window opens
	check(false)
	clk.Advance(10 * time.Second) // t=20: recovered
	check(true)
	clk.Advance(10 * time.Second) // t=30: second window
	check(false)
	clk.Advance(10 * time.Second) // t=40: recovered again
	check(true)
	if got := n.Pings("s"); got != 5 {
		t.Fatalf("pings = %d, want 5", got)
	}
}
