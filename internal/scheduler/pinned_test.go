package scheduler

import (
	"testing"
	"time"
)

func twoPartitions() Config {
	return Config{
		Partitions: []PartitionConfig{
			{Name: "interactive", Workers: 2, Policy: EDF},
			{Name: "replay", Workers: 1, Policy: FIFO},
		},
	}
}

func TestSubmitToPinsPartition(t *testing.T) {
	s := mustNew(t, twoPartitions())
	defer s.Close()

	// Subscriber routing would put "wh" on partition 0 by default;
	// SubmitTo overrides it.
	j := &Job{FileID: 1, Subscriber: "wh", Backfill: true, Deadline: t0.Add(time.Minute)}
	if err := s.SubmitTo(1, j); err != nil {
		t.Fatal(err)
	}
	if got := s.TryNext(0, LaneRealtime); got != nil {
		t.Fatalf("pinned job visible on partition 0: %v", got)
	}
	got := s.TryNext(1, LaneRealtime)
	if len(got) != 1 || got[0].FileID != 1 {
		t.Fatalf("pinned job not on partition 1: %v", got)
	}

	// A requeue must keep the pin (retries cannot migrate onto the
	// real-time partitions).
	s.Requeue(got[0])
	if leak := s.TryNext(0, LaneRealtime); leak != nil {
		t.Fatalf("requeued pinned job leaked to partition 0: %v", leak)
	}
	got = s.TryNext(1, LaneRealtime)
	if len(got) != 1 {
		t.Fatalf("requeued pinned job lost: %v", got)
	}

	// Same for delayed requeues: the job promotes back into the pinned
	// partition's queues.
	s.RequeueAfter(got[0], s.clk.Now().Add(-time.Second))
	got = s.TryNext(1, LaneRealtime)
	if len(got) != 1 {
		t.Fatalf("delayed pinned job lost: %v", got)
	}
	s.Done(got[0])
}

func TestSubmitToRange(t *testing.T) {
	s := mustNew(t, twoPartitions())
	defer s.Close()
	if err := s.SubmitTo(2, &Job{FileID: 1}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if err := s.SubmitTo(-1, &Job{FileID: 1}); err == nil {
		t.Fatal("negative partition accepted")
	}
}

func TestUnpinnedRoutingUnchanged(t *testing.T) {
	s := mustNew(t, twoPartitions())
	defer s.Close()
	// Default routing sends unassigned subscribers to the last
	// partition; pinning is opt-in per job, not a routing change.
	s.Submit(&Job{FileID: 2, Subscriber: "bulk-sub", Deadline: t0.Add(time.Minute)})
	if got := s.TryNext(1, LaneRealtime); len(got) != 1 {
		t.Fatalf("default routing changed: %v", got)
	}
}
