package scheduler

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bistro/internal/clock"
)

var t0 = time.Date(2011, 6, 12, 10, 0, 0, 0, time.UTC)

func job(sub string, fileID uint64, deadline time.Time) *Job {
	return &Job{
		FileID:     fileID,
		Subscriber: sub,
		Size:       1000,
		Release:    t0,
		Deadline:   deadline,
	}
}

func onePartition(policy PolicyKind) Config {
	return Config{
		Partitions: []PartitionConfig{{Name: "p0", Workers: 2, Policy: policy}},
	}
}

func mustNew(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Partitions: []PartitionConfig{{Workers: 0}}}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := New(Config{Partitions: []PartitionConfig{{Workers: 2, BackfillWorkers: 2}}}); err == nil {
		t.Error("all-backfill partition accepted")
	}
}

func TestEDFOrder(t *testing.T) {
	s := mustNew(t, onePartition(EDF))
	s.Submit(job("a", 1, t0.Add(3*time.Minute)))
	s.Submit(job("b", 2, t0.Add(1*time.Minute)))
	s.Submit(job("c", 3, t0.Add(2*time.Minute)))
	var got []string
	for i := 0; i < 3; i++ {
		js := s.TryNext(0, LaneRealtime)
		if len(js) != 1 {
			t.Fatalf("claim %d = %v", i, js)
		}
		got = append(got, js[0].Subscriber)
		s.Done(js[0])
	}
	if got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Fatalf("EDF order = %v", got)
	}
}

func TestFIFOOrder(t *testing.T) {
	s := mustNew(t, onePartition(FIFO))
	// Deadlines inverted relative to submission; FIFO ignores them.
	s.Submit(job("a", 1, t0.Add(3*time.Minute)))
	s.Submit(job("b", 2, t0.Add(1*time.Minute)))
	js := s.TryNext(0, LaneRealtime)
	if js[0].Subscriber != "a" {
		t.Fatalf("FIFO popped %s", js[0].Subscriber)
	}
}

func TestPrioEDFOrder(t *testing.T) {
	s := mustNew(t, onePartition(PrioEDF))
	j1 := job("a", 1, t0.Add(time.Minute))
	j1.Priority = 1
	j2 := job("b", 2, t0.Add(2*time.Minute))
	j2.Priority = 5
	s.Submit(j1)
	s.Submit(j2)
	js := s.TryNext(0, LaneRealtime)
	if js[0].Subscriber != "b" {
		t.Fatal("priority ignored")
	}
}

func TestMaxBenefitOrder(t *testing.T) {
	s := mustNew(t, onePartition(MaxBenefit))
	small := job("a", 1, t0)
	small.Size = 10
	small.Priority = 1
	big := job("b", 2, t0)
	big.Size = 1 << 20
	big.Priority = 1
	s.Submit(big)
	s.Submit(small)
	js := s.TryNext(0, LaneRealtime)
	if js[0].Subscriber != "a" {
		t.Fatal("max-benefit should prefer the denser (smaller) job")
	}
}

func TestPartitionIsolation(t *testing.T) {
	cfg := Config{Partitions: []PartitionConfig{
		{Name: "fast", Workers: 1, Policy: EDF},
		{Name: "slow", Workers: 1, Policy: EDF},
	}}
	s := mustNew(t, cfg)
	s.AssignSubscriber("viz", 0)
	s.AssignSubscriber("archive", 1)
	s.Submit(job("viz", 1, t0))
	s.Submit(job("archive", 2, t0))
	if js := s.TryNext(0, LaneRealtime); len(js) != 1 || js[0].Subscriber != "viz" {
		t.Fatalf("fast partition claim = %v", js)
	}
	if js := s.TryNext(1, LaneRealtime); len(js) != 1 || js[0].Subscriber != "archive" {
		t.Fatalf("slow partition claim = %v", js)
	}
}

func TestUnassignedSubscriberGoesToLastPartition(t *testing.T) {
	cfg := Config{Partitions: []PartitionConfig{
		{Name: "fast", Workers: 1, Policy: EDF},
		{Name: "slow", Workers: 1, Policy: EDF},
	}}
	s := mustNew(t, cfg)
	s.Submit(job("mystery", 1, t0))
	if js := s.TryNext(0, LaneRealtime); js != nil {
		t.Fatalf("fast partition got unassigned job: %v", js)
	}
	if js := s.TryNext(1, LaneRealtime); len(js) != 1 {
		t.Fatal("slow partition missing unassigned job")
	}
}

func TestInFlightCap(t *testing.T) {
	s := mustNew(t, onePartition(EDF))
	s.Submit(job("a", 1, t0))
	s.Submit(job("a", 2, t0.Add(time.Minute)))
	s.Submit(job("b", 3, t0.Add(2*time.Minute)))
	first := s.TryNext(0, LaneRealtime)
	if first[0].Subscriber != "a" {
		t.Fatalf("first = %v", first)
	}
	// a is at its cap; the next claim must skip to b.
	second := s.TryNext(0, LaneRealtime)
	if second == nil || second[0].Subscriber != "b" {
		t.Fatalf("second = %v", second)
	}
	// Nothing else claimable.
	if js := s.TryNext(0, LaneRealtime); js != nil {
		t.Fatalf("third = %v", js)
	}
	s.Done(first[0])
	if js := s.TryNext(0, LaneRealtime); js == nil || js[0].FileID != 2 {
		t.Fatalf("after done = %v", js)
	}
}

func TestGroupSameFile(t *testing.T) {
	cfg := onePartition(EDF)
	cfg.GroupSameFile = true
	s := mustNew(t, cfg)
	s.Submit(job("a", 7, t0))
	s.Submit(job("b", 7, t0.Add(time.Minute)))
	s.Submit(job("c", 8, t0.Add(2*time.Minute)))
	js := s.TryNext(0, LaneRealtime)
	if len(js) != 2 {
		t.Fatalf("group claim = %v", js)
	}
	for _, j := range js {
		if j.FileID != 7 {
			t.Fatalf("claimed wrong file: %v", j)
		}
	}
	if rest := s.TryNext(0, LaneRealtime); len(rest) != 1 || rest[0].FileID != 8 {
		t.Fatalf("rest = %v", rest)
	}
}

func TestGroupSameFileRespectsCap(t *testing.T) {
	cfg := onePartition(EDF)
	cfg.GroupSameFile = true
	s := mustNew(t, cfg)
	s.Submit(job("a", 7, t0))
	s.Submit(job("a", 7, t0.Add(time.Second))) // same sub, same file (odd but possible)
	js := s.TryNext(0, LaneRealtime)
	if len(js) != 1 {
		t.Fatalf("cap violated in group claim: %v", js)
	}
	for _, j := range js {
		s.Done(j)
	}
}

func TestBackfillConcurrentSeparation(t *testing.T) {
	cfg := Config{
		Partitions: []PartitionConfig{{Name: "p", Workers: 2, BackfillWorkers: 1, Policy: EDF}},
		Backfill:   BackfillConcurrent,
	}
	s := mustNew(t, cfg)
	bf := job("a", 1, t0.Add(-time.Hour)) // old deadline
	bf.Backfill = true
	s.Submit(bf)
	rt := job("b", 2, t0.Add(time.Minute))
	s.Submit(rt)
	// Real-time lane prefers the real-time job despite its later
	// deadline, because backfill sits on its own queue.
	if js := s.TryNext(0, LaneRealtime); js[0].Subscriber != "b" {
		t.Fatalf("realtime lane claimed %v", js)
	}
	if js := s.TryNext(0, LaneBackfill); js[0].Subscriber != "a" {
		t.Fatalf("backfill lane claimed %v", js)
	}
}

func TestBackfillInOrderMerges(t *testing.T) {
	cfg := onePartition(EDF)
	cfg.Backfill = BackfillInOrder
	s := mustNew(t, cfg)
	bf := job("a", 1, t0.Add(-time.Hour))
	bf.Backfill = true
	s.Submit(bf)
	s.Submit(job("b", 2, t0.Add(time.Minute)))
	// Merged queue: the old backfill deadline wins under EDF —
	// exactly the starvation the paper warns about.
	if js := s.TryNext(0, LaneRealtime); js[0].Subscriber != "a" {
		t.Fatalf("in-order mode claimed %v first", js)
	}
}

func TestIdleRealtimeWorkerHelpsBackfill(t *testing.T) {
	cfg := Config{
		Partitions: []PartitionConfig{{Name: "p", Workers: 2, BackfillWorkers: 1, Policy: EDF}},
		Backfill:   BackfillConcurrent,
	}
	s := mustNew(t, cfg)
	bf := job("a", 1, t0)
	bf.Backfill = true
	s.Submit(bf)
	if js := s.TryNext(0, LaneRealtime); js == nil || !js[0].Backfill {
		t.Fatalf("idle realtime worker did not take backfill: %v", js)
	}
}

func TestRequeue(t *testing.T) {
	s := mustNew(t, onePartition(EDF))
	s.Submit(job("a", 1, t0))
	js := s.TryNext(0, LaneRealtime)
	s.Requeue(js[0])
	if got := s.QueueLen(0, LaneRealtime); got != 1 {
		t.Fatalf("queue len after requeue = %d", got)
	}
	// The requeued job is claimable again (slot released).
	if js := s.TryNext(0, LaneRealtime); js == nil {
		t.Fatal("requeued job not claimable")
	}
}

func TestDropSubscriber(t *testing.T) {
	s := mustNew(t, onePartition(EDF))
	for i := uint64(1); i <= 5; i++ {
		s.Submit(job("dead", i, t0.Add(time.Duration(i)*time.Minute)))
	}
	s.Submit(job("alive", 6, t0))
	if n := s.DropSubscriber("dead"); n != 5 {
		t.Fatalf("dropped = %d", n)
	}
	js := s.TryNext(0, LaneRealtime)
	if js[0].Subscriber != "alive" {
		t.Fatalf("claimed %v", js)
	}
	if s.TryNext(0, LaneRealtime) != nil {
		t.Fatal("dead jobs survived drop")
	}
}

func TestNextBlocksUntilSubmit(t *testing.T) {
	s := mustNew(t, onePartition(EDF))
	got := make(chan []*Job, 1)
	go func() { got <- s.Next(0, LaneRealtime) }()
	select {
	case js := <-got:
		t.Fatalf("Next returned early: %v", js)
	case <-time.After(20 * time.Millisecond):
	}
	s.Submit(job("a", 1, t0))
	select {
	case js := <-got:
		if js[0].Subscriber != "a" {
			t.Fatalf("claimed %v", js)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake")
	}
}

func TestCloseReleasesWorkers(t *testing.T) {
	s := mustNew(t, onePartition(EDF))
	done := make(chan struct{})
	go func() {
		if js := s.Next(0, LaneRealtime); js != nil {
			t.Errorf("Next after close = %v", js)
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("worker not released by Close")
	}
}

func TestConcurrentWorkers(t *testing.T) {
	cfg := Config{
		Partitions:               []PartitionConfig{{Name: "p", Workers: 4, Policy: EDF}},
		MaxInFlightPerSubscriber: 2,
	}
	s := mustNew(t, cfg)
	const jobs = 500
	var delivered sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				js := s.Next(0, LaneRealtime)
				if js == nil {
					return
				}
				for _, j := range js {
					if _, dup := delivered.LoadOrStore(j.Seq, true); dup {
						t.Errorf("job %d delivered twice", j.Seq)
					}
					s.Done(j)
				}
			}
		}()
	}
	subs := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < jobs; i++ {
		s.Submit(job(subs[i%len(subs)], uint64(i), t0.Add(time.Duration(i)*time.Second)))
	}
	// Wait for drain, then close.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.QueueLen(0, LaneRealtime) == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	wg.Wait()
	count := 0
	delivered.Range(func(_, _ any) bool { count++; return true })
	if count != jobs {
		t.Fatalf("delivered %d of %d", count, jobs)
	}
}

func TestTardiness(t *testing.T) {
	j := job("a", 1, t0)
	if d := Tardiness(j, t0.Add(-time.Second)); d != 0 {
		t.Errorf("early tardiness = %v", d)
	}
	if d := Tardiness(j, t0.Add(90*time.Second)); d != 90*time.Second {
		t.Errorf("late tardiness = %v", d)
	}
}

// Property: popping an EDF queue yields non-decreasing deadlines.
func TestQuickEDFMonotone(t *testing.T) {
	fn := func(offsets []int16) bool {
		q := newQueue(EDF)
		for i, off := range offsets {
			q.push(&Job{
				Seq:      uint64(i),
				Deadline: t0.Add(time.Duration(off) * time.Second),
			})
		}
		var prev *Job
		for {
			j := q.pop()
			if j == nil {
				break
			}
			if prev != nil && j.Deadline.Before(prev.Deadline) {
				return false
			}
			prev = j
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: popWhere never loses jobs.
func TestQuickPopWherePreserves(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 100; iter++ {
		q := newQueue(EDF)
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			q.push(&Job{Seq: uint64(i), FileID: uint64(rng.Intn(5)), Deadline: t0.Add(time.Duration(rng.Intn(100)) * time.Second)})
		}
		blocked := uint64(rng.Intn(5))
		popped := 0
		for {
			j := q.popWhere(func(j *Job) bool { return j.FileID != blocked })
			if j == nil {
				break
			}
			popped++
		}
		if popped+q.Len() != n {
			t.Fatalf("lost jobs: popped %d, left %d, want total %d", popped, q.Len(), n)
		}
		for _, j := range q.jobs {
			if j.FileID != blocked {
				t.Fatalf("unblocked job left behind: %v", j)
			}
		}
	}
}

func BenchmarkSubmitClaimEDF(b *testing.B) {
	s, _ := New(onePartition(EDF))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(job("a", uint64(i), t0.Add(time.Duration(i)*time.Second)))
		js := s.TryNext(0, LaneRealtime)
		s.Done(js[0])
	}
}

func TestRequeueAfterHidesJobUntilRelease(t *testing.T) {
	clk := clock.NewSimulated(t0)
	cfg := onePartition(EDF)
	cfg.Clock = clk
	s := mustNew(t, cfg)
	s.Submit(job("a", 1, t0.Add(time.Minute)))
	js := s.TryNext(0, LaneRealtime)
	if len(js) != 1 {
		t.Fatalf("claim = %v", js)
	}
	s.RequeueAfter(js[0], clk.Now().Add(10*time.Second))
	if got := s.TryNext(0, LaneRealtime); got != nil {
		t.Fatalf("delayed job claimable before release: %v", got)
	}
	if n := s.DelayedLen(0); n != 1 {
		t.Fatalf("DelayedLen = %d, want 1", n)
	}
	clk.Advance(10 * time.Second)
	js = s.TryNext(0, LaneRealtime)
	if len(js) != 1 || js[0].FileID != 1 {
		t.Fatalf("job not promoted at release time: %v", js)
	}
	if n := s.DelayedLen(0); n != 0 {
		t.Fatalf("DelayedLen after promotion = %d", n)
	}
}

func TestRequeueAfterOrdersByRelease(t *testing.T) {
	clk := clock.NewSimulated(t0)
	cfg := onePartition(EDF)
	cfg.Clock = clk
	s := mustNew(t, cfg)
	s.Submit(job("a", 1, t0.Add(time.Minute)))
	s.Submit(job("b", 2, t0.Add(time.Minute)))
	ja := s.TryNext(0, LaneRealtime)[0]
	jb := s.TryNext(0, LaneRealtime)[0]
	s.RequeueAfter(ja, clk.Now().Add(20*time.Second))
	s.RequeueAfter(jb, clk.Now().Add(5*time.Second))
	clk.Advance(5 * time.Second)
	js := s.TryNext(0, LaneRealtime)
	if len(js) != 1 || js[0].Subscriber != "b" {
		t.Fatalf("earlier release not promoted first: %v", js)
	}
	if got := s.TryNext(0, LaneRealtime); got != nil {
		t.Fatalf("later release promoted early: %v", got)
	}
	clk.Advance(15 * time.Second)
	js = s.TryNext(0, LaneRealtime)
	if len(js) != 1 || js[0].Subscriber != "a" {
		t.Fatalf("second release not promoted: %v", js)
	}
}

func TestRequeueAfterPastReleaseIsImmediate(t *testing.T) {
	clk := clock.NewSimulated(t0)
	cfg := onePartition(EDF)
	cfg.Clock = clk
	s := mustNew(t, cfg)
	s.Submit(job("a", 1, t0.Add(time.Minute)))
	j := s.TryNext(0, LaneRealtime)[0]
	s.RequeueAfter(j, clk.Now().Add(-time.Second))
	if got := s.TryNext(0, LaneRealtime); len(got) != 1 {
		t.Fatalf("past-release requeue not immediately claimable: %v", got)
	}
}

func TestRequeueAfterWakesBlockedWorker(t *testing.T) {
	s := mustNew(t, onePartition(EDF)) // real clock
	s.Submit(job("a", 1, t0.Add(time.Minute)))
	j := s.TryNext(0, LaneRealtime)[0]
	s.RequeueAfter(j, time.Now().Add(30*time.Millisecond))
	done := make(chan []*Job, 1)
	go func() { done <- s.Next(0, LaneRealtime) }()
	select {
	case js := <-done:
		if len(js) != 1 {
			t.Fatalf("Next = %v", js)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked worker never woke for delayed release")
	}
	s.Close()
}

func TestDropSubscriberPurgesDelayed(t *testing.T) {
	clk := clock.NewSimulated(t0)
	cfg := onePartition(EDF)
	cfg.Clock = clk
	s := mustNew(t, cfg)
	s.Submit(job("a", 1, t0.Add(time.Minute)))
	s.Submit(job("b", 2, t0.Add(time.Minute)))
	ja := s.TryNext(0, LaneRealtime)[0]
	jb := s.TryNext(0, LaneRealtime)[0]
	s.RequeueAfter(ja, clk.Now().Add(10*time.Second))
	s.RequeueAfter(jb, clk.Now().Add(10*time.Second))
	if n := s.DropSubscriber("a"); n != 1 {
		t.Fatalf("DropSubscriber = %d, want 1", n)
	}
	clk.Advance(10 * time.Second)
	js := s.TryNext(0, LaneRealtime)
	if len(js) != 1 || js[0].Subscriber != "b" {
		t.Fatalf("surviving delayed job = %v", js)
	}
}
