// Package scheduler implements Bistro's feed delivery scheduling
// (SIGMOD'11 §4.3). Delivery work is modelled as jobs — one file
// transfer to one subscriber — and scheduled under real-time policies.
//
// The package provides the classic single-queue policies the paper
// surveys (FIFO, Earliest Deadline First, prioritized EDF, and a
// Max-Benefit density policy) and Bistro's production arrangement: a
// partitioned scheduler that groups subscribers into responsiveness
// levels, gives each partition a fixed worker allocation and its own
// intra-partition policy (EDF works well on the homogeneous members of
// one partition), keeps backfill traffic on a separate sub-queue so
// reconnecting subscribers do not starve real-time delivery, and
// optionally groups queued jobs for the same file so one staged read
// fans out to several subscribers concurrently (the paper's locality
// heuristic).
package scheduler

import (
	"container/heap"
	"time"
)

// Job is one unit of delivery work: a single staged file bound for a
// single subscriber.
type Job struct {
	// Seq is a scheduler-assigned sequence number (FIFO tiebreak).
	Seq uint64
	// FileID is the receipt id of the staged file.
	FileID uint64
	// Feed is the leaf feed path.
	Feed string
	// Subscriber is the destination.
	Subscriber string
	// Path is the staged file path.
	Path string
	// Size is the staged size in bytes (drives Max-Benefit density).
	Size int64
	// Release is when the job became runnable (file arrival, or
	// subscriber reconnect for backfill).
	Release time.Time
	// Deadline is the delivery target; EDF orders by it.
	Deadline time.Time
	// Priority orders prioritized policies (higher runs first).
	Priority int
	// Backfill marks historical catch-up work.
	Backfill bool
	// Channel, when non-empty, marks a shared fan-out job: one
	// transfer of Path to every member attached to the named delivery
	// channel. Subscriber then holds the channel's synthetic queue key,
	// so the per-subscriber in-flight cap serializes a channel's
	// fan-outs (delivery-log append order = completion order).
	Channel string

	// pinned, when non-zero, fixes the job to partition pinned-1
	// regardless of subscriber assignment (set by SubmitTo; replay
	// streams archived history through a dedicated partition this way).
	// Requeues preserve it, so a retry cannot migrate onto the
	// real-time partitions.
	pinned int

	index int // heap position
}

// PolicyKind names an intra-queue scheduling policy.
type PolicyKind int

// Supported policies.
const (
	FIFO PolicyKind = iota
	EDF
	PrioEDF
	MaxBenefit
)

func (k PolicyKind) String() string {
	switch k {
	case FIFO:
		return "fifo"
	case EDF:
		return "edf"
	case PrioEDF:
		return "prio-edf"
	case MaxBenefit:
		return "max-benefit"
	default:
		return "unknown"
	}
}

// less orders jobs under a policy; true means a runs before b.
func (k PolicyKind) less(a, b *Job) bool {
	switch k {
	case EDF:
		if !a.Deadline.Equal(b.Deadline) {
			return a.Deadline.Before(b.Deadline)
		}
	case PrioEDF:
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		if !a.Deadline.Equal(b.Deadline) {
			return a.Deadline.Before(b.Deadline)
		}
	case MaxBenefit:
		// Benefit density: priority per byte. Larger density first;
		// ties fall through to FIFO order.
		da := density(a)
		db := density(b)
		if da != db {
			return da > db
		}
	}
	return a.Seq < b.Seq // FIFO and all tiebreaks
}

func density(j *Job) float64 {
	size := j.Size
	if size <= 0 {
		size = 1
	}
	p := j.Priority
	if p <= 0 {
		p = 1
	}
	return float64(p) / float64(size)
}

// queue is a policy-ordered job heap.
type queue struct {
	kind PolicyKind
	jobs []*Job
}

func newQueue(kind PolicyKind) *queue { return &queue{kind: kind} }

func (q *queue) Len() int           { return len(q.jobs) }
func (q *queue) Less(i, j int) bool { return q.kind.less(q.jobs[i], q.jobs[j]) }
func (q *queue) Swap(i, j int) {
	q.jobs[i], q.jobs[j] = q.jobs[j], q.jobs[i]
	q.jobs[i].index = i
	q.jobs[j].index = j
}
func (q *queue) Push(x any) {
	j := x.(*Job)
	j.index = len(q.jobs)
	q.jobs = append(q.jobs, j)
}
func (q *queue) Pop() any {
	old := q.jobs
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	q.jobs = old[:n-1]
	return j
}

func (q *queue) push(j *Job) { heap.Push(q, j) }

// pop removes and returns the best job, or nil when empty.
func (q *queue) pop() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return heap.Pop(q).(*Job)
}

// peek returns the best job without removing it.
func (q *queue) peek() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// popWhere removes and returns the best job satisfying ok, skipping
// (and retaining) jobs that do not. Returns nil when none qualifies.
func (q *queue) popWhere(ok func(*Job) bool) *Job {
	var skipped []*Job
	var found *Job
	for {
		j := q.pop()
		if j == nil {
			break
		}
		if ok(j) {
			found = j
			break
		}
		skipped = append(skipped, j)
	}
	for _, j := range skipped {
		q.push(j)
	}
	return found
}

// takeFile removes every queued job for the given file id (locality
// grouping: deliver one staged file to all its queued subscribers at
// once).
func (q *queue) takeFile(fileID uint64, ok func(*Job) bool) []*Job {
	var out []*Job
	// Collect matching indices first; removing by index invalidates
	// positions, so remove from a snapshot of job pointers instead.
	var matches []*Job
	for _, j := range q.jobs {
		if j.FileID == fileID && ok(j) {
			matches = append(matches, j)
		}
	}
	for _, j := range matches {
		heap.Remove(q, j.index)
		out = append(out, j)
	}
	return out
}
