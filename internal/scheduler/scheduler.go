package scheduler

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"bistro/internal/clock"
)

// BackfillMode selects how historical catch-up work shares the
// scheduler with real-time delivery (§4.3).
type BackfillMode int

// Backfill modes.
const (
	// BackfillConcurrent keeps backfill on a separate per-partition
	// queue served by reserved workers, so real-time delivery is
	// unaffected while history streams in parallel (Bistro's choice).
	BackfillConcurrent BackfillMode = iota
	// BackfillInOrder merges backfill into the main queue; under EDF
	// the old deadlines sort first, so the subscriber receives files
	// in original order at the cost of real-time tardiness (the
	// strategy the paper rejects; kept for experiment E5).
	BackfillInOrder
)

func (m BackfillMode) String() string {
	if m == BackfillInOrder {
		return "in-order"
	}
	return "concurrent"
}

// PartitionConfig sizes one responsiveness level.
type PartitionConfig struct {
	// Name labels the partition ("interactive", "bulk", ...).
	Name string
	// Workers is the fixed worker (cpu-core) allocation.
	Workers int
	// BackfillWorkers of those are reserved for the backfill queue
	// under BackfillConcurrent (0 = backfill drains only when the
	// real-time queue is empty).
	BackfillWorkers int
	// Policy orders the partition's real-time queue.
	Policy PolicyKind
	// MaxMeanService is the responsiveness band for dynamic migration:
	// a subscriber belongs in the first partition whose bound its
	// observed mean service time fits (0 = unbounded, accepts anyone).
	// Ignored unless Config.Migration.Enabled.
	MaxMeanService time.Duration
}

// Config configures a Scheduler.
type Config struct {
	// Partitions in decreasing responsiveness order. Must be non-empty.
	Partitions []PartitionConfig
	// Backfill selects the backfill strategy.
	Backfill BackfillMode
	// GroupSameFile enables the locality heuristic: popping a job also
	// claims every queued job for the same file in that partition, so
	// one staged read serves all of them concurrently.
	GroupSameFile bool
	// MaxInFlightPerSubscriber caps concurrent transfers to one
	// subscriber so a single backlogged destination cannot monopolize
	// a partition's workers. 0 means 1.
	MaxInFlightPerSubscriber int
	// Migration configures observation-driven dynamic partition
	// reassignment (the paper's §4.3 future-work extension).
	Migration MigrationConfig
	// Clock drives delayed-requeue release timers (RequeueAfter).
	// Default: the wall clock.
	Clock clock.Clock
}

// Scheduler assigns delivery jobs to partitioned worker pools.
//
// Usage: assign subscribers to partitions (AssignSubscriber), Submit
// jobs, and run workers that loop on Next/Done. Next blocks until a
// job group is available for the given partition lane.
type Scheduler struct {
	cfg Config
	clk clock.Clock

	mu       sync.Mutex
	cond     *sync.Cond
	parts    []*partition
	subPart  map[string]int
	inflight map[string]int
	seq      uint64
	closed   bool

	// Delayed-release timer bookkeeping: timerAt is the armed timer's
	// fire time (zero = none armed); timerGen invalidates stale timer
	// goroutines.
	timerAt  time.Time
	timerGen uint64

	migr *migrator
}

type partition struct {
	cfg      PartitionConfig
	realtime *queue
	backfill *queue
	// delayed holds requeued jobs whose Release (not-before retry
	// time) is still in the future, ordered by Release.
	delayed delayHeap
}

// New builds a scheduler. It validates the partition layout.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Partitions) == 0 {
		return nil, fmt.Errorf("scheduler: no partitions configured")
	}
	if cfg.MaxInFlightPerSubscriber == 0 {
		cfg.MaxInFlightPerSubscriber = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	s := &Scheduler{
		cfg:      cfg,
		clk:      cfg.Clock,
		subPart:  make(map[string]int),
		inflight: make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	s.migr = newMigrator(cfg.Migration)
	for _, pc := range cfg.Partitions {
		if pc.Workers <= 0 {
			return nil, fmt.Errorf("scheduler: partition %q needs workers", pc.Name)
		}
		if pc.BackfillWorkers >= pc.Workers {
			return nil, fmt.Errorf("scheduler: partition %q: backfill workers must leave real-time capacity", pc.Name)
		}
		s.parts = append(s.parts, &partition{
			cfg:      pc,
			realtime: newQueue(pc.Policy),
			backfill: newQueue(pc.Policy),
		})
	}
	return s, nil
}

// AssignSubscriber pins a subscriber to a partition index. Unassigned
// subscribers default to the last (least responsive) partition.
func (s *Scheduler) AssignSubscriber(sub string, part int) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("scheduler: partition %d out of range", part)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subPart[sub] = part
	return nil
}

// PartitionOf reports a subscriber's partition index.
func (s *Scheduler) PartitionOf(sub string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partitionOfLocked(sub)
}

func (s *Scheduler) partitionOfLocked(sub string) int {
	if p, ok := s.subPart[sub]; ok {
		return p
	}
	return len(s.parts) - 1
}

// Submit enqueues a job. The scheduler assigns its sequence number.
func (s *Scheduler) Submit(j *Job) {
	s.mu.Lock()
	j.Seq = s.seq
	s.seq++
	p := s.partitionForLocked(j)
	if j.Backfill && s.cfg.Backfill == BackfillConcurrent {
		p.backfill.push(j)
	} else {
		p.realtime.push(j)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// SubmitTo enqueues a job pinned to a specific partition, bypassing
// subscriber routing. Replay sessions use this to stream archived
// history through their dedicated partition so catch-up can never
// contend with real-time delivery for workers.
func (s *Scheduler) SubmitTo(part int, j *Job) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("scheduler: partition %d out of range", part)
	}
	j.pinned = part + 1
	s.Submit(j)
	return nil
}

// partitionForLocked routes a job: pinned jobs to their fixed
// partition, everything else by subscriber assignment.
func (s *Scheduler) partitionForLocked(j *Job) *partition {
	if j.pinned > 0 && j.pinned <= len(s.parts) {
		return s.parts[j.pinned-1]
	}
	return s.parts[s.partitionOfLocked(j.Subscriber)]
}

// Lane identifies which queue a worker serves.
type Lane int

// Lanes.
const (
	LaneRealtime Lane = iota
	LaneBackfill
)

// Next blocks until a job group is available in the given partition
// and lane, claiming in-flight slots for its subscribers. It returns
// nil when the scheduler is closed. Real-time workers fall back to the
// backfill queue when idle; dedicated backfill workers serve only
// backfill so catch-up always makes progress without consuming
// real-time capacity.
func (s *Scheduler) Next(part int, lane Lane) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		s.promoteDueLocked()
		p := s.parts[part]
		var jobs []*Job
		switch lane {
		case LaneRealtime:
			jobs = s.claimLocked(p, p.realtime)
			if jobs == nil {
				// Idle real-time worker helps backfill.
				jobs = s.claimLocked(p, p.backfill)
			}
		case LaneBackfill:
			jobs = s.claimLocked(p, p.backfill)
		}
		if jobs != nil {
			return jobs
		}
		s.armTimerLocked()
		s.cond.Wait()
	}
}

// TryNext is Next without blocking; nil when nothing is claimable.
func (s *Scheduler) TryNext(part int, lane Lane) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.promoteDueLocked()
	p := s.parts[part]
	var jobs []*Job
	switch lane {
	case LaneRealtime:
		jobs = s.claimLocked(p, p.realtime)
		if jobs == nil {
			jobs = s.claimLocked(p, p.backfill)
		}
	case LaneBackfill:
		jobs = s.claimLocked(p, p.backfill)
	}
	return jobs
}

// promoteDueLocked moves delayed jobs whose release time has arrived
// into their partition's lane queues.
func (s *Scheduler) promoteDueLocked() {
	now := s.clk.Now()
	for _, p := range s.parts {
		for p.delayed.Len() > 0 && !p.delayed[0].Release.After(now) {
			j := heap.Pop(&p.delayed).(*Job)
			if j.Backfill && s.cfg.Backfill == BackfillConcurrent {
				p.backfill.push(j)
			} else {
				p.realtime.push(j)
			}
		}
	}
}

// armTimerLocked makes sure a wake-up fires at the earliest pending
// release time, so workers blocked in Next pick delayed jobs up the
// moment they become runnable. Stale timers are tolerated: they fire,
// find their generation superseded (or nothing due yet), and only cost
// a broadcast.
func (s *Scheduler) armTimerLocked() {
	var earliest time.Time
	for _, p := range s.parts {
		if p.delayed.Len() == 0 {
			continue
		}
		if at := p.delayed[0].Release; earliest.IsZero() || at.Before(earliest) {
			earliest = at
		}
	}
	if earliest.IsZero() {
		return
	}
	if !s.timerAt.IsZero() && !s.timerAt.After(earliest) {
		return // an armed timer already covers this release
	}
	s.timerGen++
	gen := s.timerGen
	s.timerAt = earliest
	d := earliest.Sub(s.clk.Now())
	if d < 0 {
		d = 0
	}
	t := s.clk.NewTimer(d)
	go func() {
		<-t.C()
		s.mu.Lock()
		if s.timerGen == gen {
			s.timerAt = time.Time{}
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}()
}

// RequeueAfter returns a claimed job to its partition with a
// not-before release time (transfer failed; the backoff policy decides
// when it is worth trying again), releasing its in-flight slot. Before
// notBefore the job is invisible to Next/TryNext, so a fast-failing
// subscriber cannot spin a worker.
func (s *Scheduler) RequeueAfter(j *Job, notBefore time.Time) {
	s.mu.Lock()
	j.Release = notBefore
	p := s.partitionForLocked(j)
	if notBefore.After(s.clk.Now()) {
		heap.Push(&p.delayed, j)
		s.armTimerLocked()
	} else if j.Backfill && s.cfg.Backfill == BackfillConcurrent {
		p.backfill.push(j)
	} else {
		p.realtime.push(j)
	}
	if n := s.inflight[j.Subscriber]; n > 1 {
		s.inflight[j.Subscriber] = n - 1
	} else {
		delete(s.inflight, j.Subscriber)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// claimLocked pops the best eligible job (subscriber under its
// in-flight cap) and, with GroupSameFile, every other queued job for
// the same file whose subscriber also has capacity.
func (s *Scheduler) claimLocked(p *partition, q *queue) []*Job {
	eligible := func(j *Job) bool {
		return s.inflight[j.Subscriber] < s.cfg.MaxInFlightPerSubscriber
	}
	j := q.popWhere(eligible)
	if j == nil {
		return nil
	}
	jobs := []*Job{j}
	s.inflight[j.Subscriber]++
	if s.cfg.GroupSameFile {
		for _, extra := range q.takeFile(j.FileID, eligible) {
			jobs = append(jobs, extra)
			s.inflight[extra.Subscriber]++
		}
	}
	return jobs
}

// Done releases the in-flight slot a claimed job held. Call it once
// per job returned by Next/TryNext, whether the transfer succeeded or
// failed.
func (s *Scheduler) Done(j *Job) {
	s.mu.Lock()
	if n := s.inflight[j.Subscriber]; n > 1 {
		s.inflight[j.Subscriber] = n - 1
	} else {
		delete(s.inflight, j.Subscriber)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Requeue returns a claimed job to its queue (transfer failed, will be
// retried) and releases its slot.
func (s *Scheduler) Requeue(j *Job) {
	s.mu.Lock()
	p := s.partitionForLocked(j)
	if j.Backfill && s.cfg.Backfill == BackfillConcurrent {
		p.backfill.push(j)
	} else {
		p.realtime.push(j)
	}
	if n := s.inflight[j.Subscriber]; n > 1 {
		s.inflight[j.Subscriber] = n - 1
	} else {
		delete(s.inflight, j.Subscriber)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// DropSubscriber removes every queued job for a subscriber — delayed
// retries included (it went offline; its queue will be recomputed from
// receipts on reconnect). Returns the number of jobs dropped.
func (s *Scheduler) DropSubscriber(sub string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for _, p := range s.parts {
		for _, q := range []*queue{p.realtime, p.backfill} {
			kept := q.jobs[:0:0]
			for _, j := range q.jobs {
				if j.Subscriber == sub {
					dropped++
				} else {
					kept = append(kept, j)
				}
			}
			q.jobs = kept
			for i := range q.jobs {
				q.jobs[i].index = i
			}
			// Restore heap order after filtering.
			rebuildHeap(q)
		}
		keptD := p.delayed[:0:0]
		for _, j := range p.delayed {
			if j.Subscriber == sub {
				dropped++
			} else {
				keptD = append(keptD, j)
			}
		}
		p.delayed = keptD
		heap.Init(&p.delayed)
	}
	return dropped
}

// DelayedLen reports jobs parked in a partition's delayed-retry heap.
func (s *Scheduler) DelayedLen(part int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parts[part].delayed.Len()
}

// InflightTotal reports claimed jobs currently held by workers across
// all partitions (monitoring).
func (s *Scheduler) InflightTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, n := range s.inflight {
		total += n
	}
	return total
}

// delayHeap orders delayed jobs by release time (ties by sequence).
type delayHeap []*Job

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if !h[i].Release.Equal(h[j].Release) {
		return h[i].Release.Before(h[j].Release)
	}
	return h[i].Seq < h[j].Seq
}
func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// rebuildHeap restores heap order after bulk surgery on q.jobs.
func rebuildHeap(q *queue) { heap.Init(q) }

// QueueLen reports queued (unclaimed) jobs in a partition lane.
func (s *Scheduler) QueueLen(part int, lane Lane) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.parts[part]
	if lane == LaneBackfill {
		return p.backfill.Len()
	}
	return p.realtime.Len()
}

// Partitions returns the partition configurations.
func (s *Scheduler) Partitions() []PartitionConfig {
	out := make([]PartitionConfig, len(s.parts))
	for i, p := range s.parts {
		out[i] = p.cfg
	}
	return out
}

// Close releases all blocked workers; Next returns nil afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Tardiness is the scheduling quality measure the paper cares about:
// how late past its deadline a delivery completed (0 when on time).
func Tardiness(j *Job, finished time.Time) time.Duration {
	if finished.Before(j.Deadline) {
		return 0
	}
	return finished.Sub(j.Deadline)
}
