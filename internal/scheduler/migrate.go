package scheduler

import (
	"sync"
	"time"
)

// Dynamic subscriber partitioning is the extension the paper names as
// future work in §4.3: "Current implementation of Bistro feed manager
// only supports fixed small number of scheduling groups and does not
// support dynamic migration of subscriber from one group to another
// based on observed runtime behavior."
//
// The implementation here keeps an EWMA of each subscriber's observed
// per-transfer service time and, once enough observations exist,
// reassigns the subscriber to the first partition whose
// MaxMeanService bound accommodates it. Demotion (to a slower
// partition) happens as soon as the estimate exceeds the current
// partition's bound; promotion (to a faster one) requires the estimate
// to clear the faster bound with a 2x hysteresis margin so a flappy
// subscriber does not oscillate between groups.

// MigrationConfig tunes dynamic partition assignment.
type MigrationConfig struct {
	// Enabled turns observation-driven reassignment on.
	Enabled bool
	// Alpha is the service-time EWMA weight. Default 0.2.
	Alpha float64
	// MinObservations before any migration. Default 10.
	MinObservations int
}

func (m MigrationConfig) withDefaults() MigrationConfig {
	if m.Alpha == 0 {
		m.Alpha = 0.2
	}
	if m.MinObservations == 0 {
		m.MinObservations = 10
	}
	return m
}

// observed tracks one subscriber's service-time estimate.
type observed struct {
	ewma  time.Duration
	count int
}

// migrator holds the scheduler's migration state.
type migrator struct {
	cfg MigrationConfig
	mu  sync.Mutex
	obs map[string]*observed
}

func newMigrator(cfg MigrationConfig) *migrator {
	return &migrator{cfg: cfg.withDefaults(), obs: make(map[string]*observed)}
}

// Observe feeds one completed transfer's service time into the
// subscriber's estimate and, when migration is enabled, reassigns the
// subscriber's partition if the estimate has left its current
// partition's responsiveness band.
func (s *Scheduler) Observe(sub string, service time.Duration) {
	m := s.migr
	if m == nil {
		return
	}
	m.mu.Lock()
	o := m.obs[sub]
	if o == nil {
		o = &observed{}
		m.obs[sub] = o
	}
	if o.ewma == 0 {
		o.ewma = service
	} else {
		o.ewma = time.Duration(m.cfg.Alpha*float64(service) + (1-m.cfg.Alpha)*float64(o.ewma))
	}
	o.count++
	ready := m.cfg.Enabled && o.count >= m.cfg.MinObservations
	est := o.ewma
	m.mu.Unlock()
	if !ready {
		return
	}
	s.maybeMigrate(sub, est)
}

// ServiceEstimate exposes the current EWMA (monitoring, tests).
func (s *Scheduler) ServiceEstimate(sub string) (time.Duration, int) {
	m := s.migr
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.obs[sub]
	if o == nil {
		return 0, 0
	}
	return o.ewma, o.count
}

// maybeMigrate applies the band rules.
func (s *Scheduler) maybeMigrate(sub string, est time.Duration) {
	s.mu.Lock()
	cur := s.partitionOfLocked(sub)
	target := cur
	// Find the first (fastest) partition whose bound fits the
	// estimate. An unbounded partition accepts everyone.
	for i, p := range s.parts {
		bound := p.cfg.MaxMeanService
		if bound == 0 {
			target = i
			break
		}
		if i < cur {
			// Promotion needs hysteresis: clear the bound by 2x.
			if est <= bound/2 {
				target = i
				break
			}
			continue
		}
		if est <= bound {
			target = i
			break
		}
	}
	if target != cur {
		s.subPart[sub] = target
		// Move the subscriber's queued jobs along so they obey the new
		// partition's worker allocation immediately.
		s.moveQueuedLocked(sub, cur, target)
	}
	s.mu.Unlock()
	if target != cur {
		s.cond.Broadcast()
	}
}

// moveQueuedLocked transplants queued jobs between partitions.
func (s *Scheduler) moveQueuedLocked(sub string, from, to int) {
	src := s.parts[from]
	dst := s.parts[to]
	type lane struct{ s, d *queue }
	for _, l := range []lane{{src.realtime, dst.realtime}, {src.backfill, dst.backfill}} {
		var moved []*Job
		kept := l.s.jobs[:0:0]
		for _, j := range l.s.jobs {
			if j.Subscriber == sub {
				moved = append(moved, j)
			} else {
				kept = append(kept, j)
			}
		}
		if len(moved) == 0 {
			continue
		}
		l.s.jobs = kept
		for i := range l.s.jobs {
			l.s.jobs[i].index = i
		}
		rebuildHeap(l.s)
		for _, j := range moved {
			l.d.push(j)
		}
	}
}
