package scheduler

import (
	"testing"
	"time"
)

func migratingConfig() Config {
	return Config{
		Partitions: []PartitionConfig{
			{Name: "interactive", Workers: 1, Policy: EDF, MaxMeanService: 100 * time.Millisecond},
			{Name: "bulk", Workers: 1, Policy: EDF}, // unbounded
		},
		Migration: MigrationConfig{Enabled: true, MinObservations: 5},
	}
}

func TestObserveWithoutMigrationConfigured(t *testing.T) {
	s := mustNew(t, onePartition(EDF))
	// Migration disabled: Observe records but never moves.
	s.AssignSubscriber("a", 0)
	for i := 0; i < 50; i++ {
		s.Observe("a", time.Second)
	}
	if got := s.PartitionOf("a"); got != 0 {
		t.Fatalf("partition = %d", got)
	}
	est, n := s.ServiceEstimate("a")
	if n != 50 || est != time.Second {
		t.Fatalf("estimate = %v/%d", est, n)
	}
}

func TestDemotionAfterSlowObservations(t *testing.T) {
	s := mustNew(t, migratingConfig())
	s.AssignSubscriber("wh", 0)
	// Too few observations: no move yet.
	for i := 0; i < 4; i++ {
		s.Observe("wh", time.Second)
	}
	if got := s.PartitionOf("wh"); got != 0 {
		t.Fatal("migrated before MinObservations")
	}
	s.Observe("wh", time.Second)
	if got := s.PartitionOf("wh"); got != 1 {
		t.Fatalf("slow subscriber not demoted: partition %d", got)
	}
}

func TestPromotionNeedsHysteresis(t *testing.T) {
	s := mustNew(t, migratingConfig())
	s.AssignSubscriber("wh", 1)
	// Service just under the fast bound: not enough (needs bound/2).
	for i := 0; i < 20; i++ {
		s.Observe("wh", 90*time.Millisecond)
	}
	if got := s.PartitionOf("wh"); got != 1 {
		t.Fatalf("promoted without hysteresis margin: partition %d", got)
	}
	// Clearly fast: promote.
	for i := 0; i < 40; i++ {
		s.Observe("wh", 10*time.Millisecond)
	}
	if got := s.PartitionOf("wh"); got != 0 {
		t.Fatalf("fast subscriber not promoted: partition %d", got)
	}
}

func TestMigrationMovesQueuedJobs(t *testing.T) {
	s := mustNew(t, migratingConfig())
	s.AssignSubscriber("wh", 0)
	for i := uint64(1); i <= 3; i++ {
		s.Submit(job("wh", i, t0.Add(time.Duration(i)*time.Minute)))
	}
	if got := s.QueueLen(0, LaneRealtime); got != 3 {
		t.Fatalf("queued in p0 = %d", got)
	}
	for i := 0; i < 5; i++ {
		s.Observe("wh", time.Second) // demote
	}
	if got := s.QueueLen(0, LaneRealtime); got != 0 {
		t.Fatalf("jobs left behind in p0: %d", got)
	}
	if got := s.QueueLen(1, LaneRealtime); got != 3 {
		t.Fatalf("jobs not moved to p1: %d", got)
	}
	// EDF order preserved after the move.
	js := s.TryNext(1, LaneRealtime)
	if js == nil || js[0].FileID != 1 {
		t.Fatalf("claim after move = %v", js)
	}
}

func TestNoOscillation(t *testing.T) {
	s := mustNew(t, migratingConfig())
	s.AssignSubscriber("wh", 0)
	// Alternate just-slow and just-fast observations around the bound;
	// after the initial demotion the subscriber must stay put.
	for i := 0; i < 100; i++ {
		d := 90 * time.Millisecond
		if i%2 == 0 {
			d = 120 * time.Millisecond
		}
		s.Observe("wh", d)
	}
	if got := s.PartitionOf("wh"); got != 1 {
		t.Fatalf("expected stable demotion, partition %d", got)
	}
}
