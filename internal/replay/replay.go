// Package replay implements historical catch-up from tertiary storage
// (SIGMOD'11 §4.2–§4.3): a subscriber may subscribe FROM a timestamp
// older than the staging window, and the archiver's long-term store is
// streamed to it as a rate-capped replay session on a dedicated
// scheduler partition, concurrent with — and isolated from — live
// delivery.
//
// A session enumerates the archive manifest over [from, session
// start), so it costs O(requested range), never an archive-tree walk.
// Exactly-once across the archive/staging boundary comes from three
// rules applied per enumerated file:
//
//  1. files the live engine queued at session start (the skip set the
//     server snapshots with QueueBackfill) belong to the live path;
//  2. files already receipted as delivered to the subscriber are
//     skipped (receipts stay the source of truth — replay records the
//     same delivery receipts live delivery does);
//  3. files archived *after* the session started belong to the live
//     path too: they were staged when the live backlog was computed,
//     and the delivery engine's archive fallback serves them even if
//     they expire while queued.
//
// Everything else is submitted as a pinned replay job. The session's
// watermark is the manifest key time of the last file handed to the
// scheduler; when enumeration is done and every outstanding file has a
// delivery receipt, the session completes — the handoff point — and
// the subscriber is fully live.
package replay

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bistro/internal/archive"
	"bistro/internal/clock"
	"bistro/internal/metrics"
	"bistro/internal/receipts"
	"bistro/internal/scheduler"
)

// Metrics instruments replay sessions. Nil disables.
type Metrics struct {
	// Active is the number of running sessions.
	Active *metrics.Gauge
	// Streamed counts archived files handed to the scheduler.
	Streamed *metrics.Counter
	// Skipped counts enumerated files owned by the live path.
	Skipped *metrics.Counter
	// Bytes counts payload bytes streamed from the archive.
	Bytes *metrics.Counter
	// Completed counts sessions that reached live handoff.
	Completed *metrics.Counter
}

// NewMetrics registers the bistro_replay_* family on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Active:    r.Gauge("bistro_replay_sessions_active", "Replay sessions currently streaming."),
		Streamed:  r.Counter("bistro_replay_files_streamed_total", "Archived files submitted to the replay partition."),
		Skipped:   r.Counter("bistro_replay_files_skipped_total", "Enumerated files skipped (live-path ownership or already delivered)."),
		Bytes:     r.Counter("bistro_replay_bytes_total", "Payload bytes streamed from the archive."),
		Completed: r.Counter("bistro_replay_sessions_completed_total", "Replay sessions that reached live handoff."),
	}
}

// EventKind classifies session lifecycle events.
type EventKind int

// Session events.
const (
	EvStarted EventKind = iota
	EvCompleted
)

// Event is one session lifecycle occurrence.
type Event struct {
	Kind       EventKind
	Subscriber string
	From       time.Time
	Total      int
	Streamed   int
	Skipped    int
}

// Options configure a Manager.
type Options struct {
	// Clock paces the rate cap and completion polling.
	Clock clock.Clock
	// Store is consulted for delivery receipts (skip rule 2 and
	// completion tracking).
	Store *receipts.Store
	// Manifest enumerates archived history.
	Manifest *archive.Manifest
	// Submit hands one replay job to the scheduler (the server wires
	// Engine.SubmitReplay, which pins to the replay partition).
	Submit func(*scheduler.Job)
	// Rate caps streaming in files/second. 0 = unlimited.
	Rate int
	// Deadline is the per-job delivery horizon. Default 1 minute.
	Deadline time.Duration
	// Metrics, when set, instruments sessions.
	Metrics *Metrics
	// OnEvent receives lifecycle events (may be nil).
	OnEvent func(Event)
}

// SessionStatus is an observable snapshot of one session, shaped for
// /statusz and bistroctl replay.
type SessionStatus struct {
	Subscriber string    `json:"subscriber"`
	Feeds      []string  `json:"feeds"`
	From       time.Time `json:"from"`
	Started    time.Time `json:"started"`
	Total      int       `json:"total"`
	Streamed   int       `json:"streamed"`
	Skipped    int       `json:"skipped"`
	Delivered  int       `json:"delivered"`
	Watermark  time.Time `json:"watermark,omitempty"`
	Done       bool      `json:"done"`
}

type session struct {
	sub     string
	feeds   []string
	from    time.Time
	started time.Time

	// mutable under Manager.mu
	total       int
	streamed    int
	skipped     int
	delivered   int
	watermark   time.Time
	outstanding map[uint64]bool
	done        bool
}

// Manager runs replay sessions.
type Manager struct {
	opts Options
	clk  clock.Clock

	mu       sync.Mutex
	sessions map[string]*session
	// metas holds receipt metadata for in-flight replay jobs whose
	// receipts were compacted; the delivery engine's HistoryMeta seam
	// reads it. Refcounted: several sessions may stream the same id.
	metas    map[uint64]receipts.FileMeta
	metaRefs map[uint64]int

	wg      sync.WaitGroup
	stopCh  chan struct{}
	stopped bool
}

// New builds a Manager.
func New(opts Options) *Manager {
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	if opts.Deadline == 0 {
		opts.Deadline = time.Minute
	}
	return &Manager{
		opts:     opts,
		clk:      opts.Clock,
		sessions: make(map[string]*session),
		metas:    make(map[uint64]receipts.FileMeta),
		metaRefs: make(map[uint64]int),
		stopCh:   make(chan struct{}),
	}
}

// Start launches a replay session for sub over feeds from the given
// timestamp. skip is the live-path job set snapshotted at the same
// moment (Engine.QueueBackfill's return); those ids are never
// streamed. One session per subscriber at a time.
func (m *Manager) Start(sub string, feeds []string, from time.Time, skip map[uint64]bool) error {
	if m.opts.Manifest == nil {
		return fmt.Errorf("replay: no archive manifest configured")
	}
	started := m.clk.Now()
	// Enumerate per feed over [from, started), dedupe by id (a file in
	// several subscribed feeds has one entry per feed), order by key.
	byID := make(map[uint64]archive.Entry)
	for _, feed := range feeds {
		entries, err := m.opts.Manifest.Range(feed, from, started)
		if err != nil {
			return fmt.Errorf("replay: enumerate %s: %w", feed, err)
		}
		for _, e := range entries {
			if _, dup := byID[e.ID]; !dup {
				byID[e.ID] = e
			}
		}
	}
	entries := make([]archive.Entry, 0, len(byID))
	for _, e := range byID {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].Key().Equal(entries[j].Key()) {
			return entries[i].Key().Before(entries[j].Key())
		}
		return entries[i].ID < entries[j].ID
	})

	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return fmt.Errorf("replay: manager stopped")
	}
	if s, ok := m.sessions[sub]; ok && !s.done {
		m.mu.Unlock()
		return fmt.Errorf("replay: session already active for %q", sub)
	}
	s := &session{
		sub: sub, feeds: append([]string(nil), feeds...), from: from,
		started: started, total: len(entries),
		outstanding: make(map[uint64]bool),
	}
	m.sessions[sub] = s
	m.mu.Unlock()

	if mm := m.opts.Metrics; mm != nil {
		mm.Active.Add(1)
	}
	m.emit(Event{Kind: EvStarted, Subscriber: sub, From: from, Total: len(entries)})
	m.wg.Add(1)
	go m.run(s, entries, skip)
	return nil
}

// run is the session pump: rate-capped streaming, then completion
// polling against delivery receipts, then handoff.
func (m *Manager) run(s *session, entries []archive.Entry, skip map[uint64]bool) {
	defer m.wg.Done()
	var interval time.Duration
	if m.opts.Rate > 0 {
		interval = time.Second / time.Duration(m.opts.Rate)
	}
	for _, e := range entries {
		select {
		case <-m.stopCh:
			return
		default:
		}
		// Skip rules: live-path ownership (snapshot set, or archived
		// after session start) and receipts already on record. All
		// checks happen outside m.mu — the receipt store has its own
		// lock and CompactExpired's callback may hold it while asking
		// us Covers().
		owned := skip[e.ID] || e.ArchivedAt.After(s.started)
		delivered := m.opts.Store.Delivered(e.ID, s.sub)
		if owned || delivered {
			m.mu.Lock()
			s.skipped++
			s.watermark = e.Key()
			m.mu.Unlock()
			if mm := m.opts.Metrics; mm != nil {
				mm.Skipped.Inc()
			}
			continue
		}
		meta := e.Meta()
		m.mu.Lock()
		if m.metaRefs[e.ID] == 0 {
			m.metas[e.ID] = meta
		}
		m.metaRefs[e.ID]++
		s.outstanding[e.ID] = true
		s.streamed++
		s.watermark = e.Key()
		m.mu.Unlock()

		now := m.clk.Now()
		m.opts.Submit(&scheduler.Job{
			FileID:     e.ID,
			Feed:       e.Feed,
			Subscriber: s.sub,
			Path:       e.StagedPath,
			Size:       e.Size,
			Release:    now,
			Deadline:   now.Add(m.opts.Deadline),
			Backfill:   true,
		})
		if mm := m.opts.Metrics; mm != nil {
			mm.Streamed.Inc()
			mm.Bytes.Add(e.Size)
		}
		if interval > 0 {
			t := m.clk.NewTimer(interval)
			select {
			case <-t.C():
			case <-m.stopCh:
				t.Stop()
				return
			}
		}
	}

	// Enumeration done; wait for the outstanding tail to be receipted.
	for {
		m.mu.Lock()
		ids := make([]uint64, 0, len(s.outstanding))
		for id := range s.outstanding {
			ids = append(ids, id)
		}
		m.mu.Unlock()
		for _, id := range ids {
			if m.opts.Store.Delivered(id, s.sub) {
				m.settle(s, id)
			}
		}
		m.mu.Lock()
		remaining := len(s.outstanding)
		m.mu.Unlock()
		if remaining == 0 {
			break
		}
		t := m.clk.NewTimer(50 * time.Millisecond)
		select {
		case <-t.C():
		case <-m.stopCh:
			t.Stop()
			return
		}
	}

	m.mu.Lock()
	s.done = true
	ev := Event{Kind: EvCompleted, Subscriber: s.sub, From: s.from,
		Total: s.total, Streamed: s.streamed, Skipped: s.skipped}
	m.mu.Unlock()
	if mm := m.opts.Metrics; mm != nil {
		mm.Active.Add(-1)
		mm.Completed.Inc()
	}
	m.emit(ev)
}

// settle records one outstanding id as delivered and releases its meta
// reference.
func (m *Manager) settle(s *session, id uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !s.outstanding[id] {
		return
	}
	delete(s.outstanding, id)
	s.delivered++
	if m.metaRefs[id]--; m.metaRefs[id] <= 0 {
		delete(m.metaRefs, id)
		delete(m.metas, id)
	}
}

// Meta resolves receipt metadata for an in-flight replay job — the
// delivery engine's HistoryMeta seam for compacted history.
func (m *Manager) Meta(id uint64) (receipts.FileMeta, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	meta, ok := m.metas[id]
	return meta, ok
}

// Covers reports whether an active session holds this id in flight.
// Receipt compaction must not fold such files: their delivery receipt
// has not landed yet. Safe to call from CompactExpired's eligibility
// callback (takes only the manager lock).
func (m *Manager) Covers(id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metaRefs[id] > 0
}

// Sessions snapshots all sessions (active and completed), sorted by
// subscriber.
func (m *Manager) Sessions() []SessionStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SessionStatus, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, SessionStatus{
			Subscriber: s.sub,
			Feeds:      s.feeds,
			From:       s.from,
			Started:    s.started,
			Total:      s.total,
			Streamed:   s.streamed,
			Skipped:    s.skipped,
			Delivered:  s.delivered,
			Watermark:  s.watermark,
			Done:       s.done,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subscriber < out[j].Subscriber })
	return out
}

// Stop aborts all sessions and waits for their pumps to exit.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	close(m.stopCh)
	m.mu.Unlock()
	m.wg.Wait()
}

func (m *Manager) emit(ev Event) {
	if m.opts.OnEvent != nil {
		m.opts.OnEvent(ev)
	}
}
