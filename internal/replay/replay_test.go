package replay

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bistro/internal/archive"
	"bistro/internal/diskfault"
	"bistro/internal/receipts"
	"bistro/internal/scheduler"
)

var t0 = time.Date(2011, 6, 12, 10, 0, 0, 0, time.UTC)

type fixture struct {
	store *receipts.Store
	man   *archive.Manifest

	mu   sync.Mutex
	jobs []*scheduler.Job
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	root := t.TempDir()
	store, err := receipts.Open(filepath.Join(root, "db"), receipts.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	man, err := archive.OpenManifest(diskfault.OS(), filepath.Join(root, "manifest"))
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{store: store, man: man}
}

func (f *fixture) submit(j *scheduler.Job) {
	f.mu.Lock()
	f.jobs = append(f.jobs, j)
	f.mu.Unlock()
}

func (f *fixture) submitAndDeliver(t *testing.T, sub string) func(*scheduler.Job) {
	return func(j *scheduler.Job) {
		f.submit(j)
		if err := f.store.RecordDelivery(j.FileID, sub, t0); err != nil {
			t.Error(err)
		}
	}
}

func (f *fixture) jobIDs() []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, len(f.jobs))
	for i, j := range f.jobs {
		out[i] = j.FileID
	}
	return out
}

func entry(id uint64, feed string, key time.Time, archivedAt time.Time) archive.Entry {
	return archive.Entry{
		ID: id, Name: "f", StagedPath: feed + "/f", Feed: feed,
		Feeds: []string{feed}, Size: 10, Arrived: key, DataTime: key,
		ArchivedAt: archivedAt,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSessionStreamsInOrderAndCompletes(t *testing.T) {
	f := newFixture(t)
	arch := t0.Add(-time.Hour)
	if err := f.man.Append([]archive.Entry{
		entry(3, "F", t0.Add(-24*time.Hour), arch),
		entry(1, "F", t0.Add(-72*time.Hour), arch),
		entry(2, "F", t0.Add(-48*time.Hour), arch),
	}); err != nil {
		t.Fatal(err)
	}
	var events []Event
	var evMu sync.Mutex
	m := New(Options{
		Store: f.store, Manifest: f.man,
		Submit: f.submitAndDeliver(t, "wh"),
		OnEvent: func(ev Event) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		},
	})
	defer m.Stop()
	if err := m.Start("wh", []string{"F"}, t0.Add(-100*time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session done", func() bool {
		ss := m.Sessions()
		return len(ss) == 1 && ss[0].Done
	})
	ids := f.jobIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("stream order = %v, want [1 2 3] (key-time order)", ids)
	}
	ss := m.Sessions()[0]
	if ss.Total != 3 || ss.Streamed != 3 || ss.Delivered != 3 || ss.Skipped != 0 {
		t.Fatalf("status = %+v", ss)
	}
	if !ss.Watermark.Equal(t0.Add(-24 * time.Hour)) {
		t.Fatalf("watermark = %v", ss.Watermark)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(events) != 2 || events[0].Kind != EvStarted || events[1].Kind != EvCompleted {
		t.Fatalf("events = %+v", events)
	}
}

func TestSkipRulesExactlyOnce(t *testing.T) {
	f := newFixture(t)
	arch := t0.Add(-time.Hour)
	if err := f.man.Append([]archive.Entry{
		entry(1, "F", t0.Add(-72*time.Hour), arch), // streamed
		entry(2, "F", t0.Add(-48*time.Hour), arch), // in live skip set
		entry(3, "F", t0.Add(-24*time.Hour), arch), // already delivered
		// Archived *after* the session start: live path owns it. The
		// far-future ArchivedAt stands in for "expired mid-session".
		entry(4, "F", t0.Add(-12*time.Hour), time.Now().Add(time.Hour)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.store.RecordDelivery(3, "wh", t0); err != nil {
		t.Fatal(err)
	}
	m := New(Options{Store: f.store, Manifest: f.man, Submit: f.submitAndDeliver(t, "wh")})
	defer m.Stop()
	if err := m.Start("wh", []string{"F"}, t0.Add(-100*time.Hour), map[uint64]bool{2: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session done", func() bool {
		ss := m.Sessions()
		return len(ss) == 1 && ss[0].Done
	})
	if ids := f.jobIDs(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("streamed = %v, want [1]", ids)
	}
	ss := m.Sessions()[0]
	if ss.Skipped != 3 || ss.Streamed != 1 {
		t.Fatalf("status = %+v", ss)
	}
}

func TestMetaAndCoversDuringFlight(t *testing.T) {
	f := newFixture(t)
	if err := f.man.Append([]archive.Entry{entry(9, "F", t0.Add(-24*time.Hour), t0)}); err != nil {
		t.Fatal(err)
	}
	m := New(Options{Store: f.store, Manifest: f.man, Submit: f.submit})
	defer m.Stop()
	if err := m.Start("wh", []string{"F"}, t0.Add(-48*time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job submitted", func() bool { return len(f.jobIDs()) == 1 })
	if !m.Covers(9) {
		t.Fatal("Covers(9) false while in flight")
	}
	meta, ok := m.Meta(9)
	if !ok || meta.ID != 9 || meta.StagedPath != "F/f" {
		t.Fatalf("Meta(9) = %+v ok=%v", meta, ok)
	}
	// Delivery receipt lands → session settles, refs released.
	if err := f.store.RecordDelivery(9, "wh", t0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session done", func() bool {
		ss := m.Sessions()
		return len(ss) == 1 && ss[0].Done
	})
	if m.Covers(9) {
		t.Fatal("Covers(9) true after settle")
	}
	if _, ok := m.Meta(9); ok {
		t.Fatal("Meta(9) survives settle")
	}
}

func TestOneSessionPerSubscriber(t *testing.T) {
	f := newFixture(t)
	if err := f.man.Append([]archive.Entry{entry(1, "F", t0.Add(-24*time.Hour), t0)}); err != nil {
		t.Fatal(err)
	}
	m := New(Options{Store: f.store, Manifest: f.man, Submit: f.submit})
	defer m.Stop()
	if err := m.Start("wh", []string{"F"}, t0.Add(-48*time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("wh", []string{"F"}, t0.Add(-48*time.Hour), nil); err == nil {
		t.Fatal("second concurrent session accepted")
	}
	// A *different* subscriber is fine.
	if err := m.Start("other", []string{"F"}, t0.Add(-48*time.Hour), nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateCapPacesStreaming(t *testing.T) {
	f := newFixture(t)
	var entries []archive.Entry
	for i := uint64(1); i <= 6; i++ {
		entries = append(entries, entry(i, "F", t0.Add(-time.Duration(i)*time.Hour), t0))
	}
	if err := f.man.Append(entries); err != nil {
		t.Fatal(err)
	}
	m := New(Options{Store: f.store, Manifest: f.man, Submit: f.submitAndDeliver(t, "wh"), Rate: 100})
	defer m.Stop()
	begin := time.Now()
	if err := m.Start("wh", []string{"F"}, t0.Add(-48*time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session done", func() bool {
		ss := m.Sessions()
		return len(ss) == 1 && ss[0].Done
	})
	// 6 files at 100/s = at least 50ms of pacing (5 inter-file gaps).
	if took := time.Since(begin); took < 50*time.Millisecond {
		t.Fatalf("rate cap not applied: 6 files in %v at 100/s", took)
	}
}

func TestStartWithoutManifestRefused(t *testing.T) {
	f := newFixture(t)
	m := New(Options{Store: f.store, Submit: f.submit})
	defer m.Stop()
	if err := m.Start("wh", []string{"F"}, t0, nil); err == nil {
		t.Fatal("session without manifest accepted")
	}
}
