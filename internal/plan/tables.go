package plan

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"bistro/internal/diskfault"
)

// tableCache holds loaded side tables, shared by every program in a
// Set (and so by every ingest worker). A table reloads when the
// backing file's mtime or size changes — checked once per lookup via
// a cheap Stat, never by re-reading the file.
type tableCache struct {
	fs diskfault.FS
	mu sync.RWMutex
	// tables is keyed by resolved path.
	tables map[string]*sideTable
}

// sideTable is one loaded reference file: a CSV whose first column is
// the join key and whose remaining columns are the appended values.
type sideTable struct {
	mtime time.Time
	size  int64
	rows  map[string][]string
}

func newTableCache(fs diskfault.FS) *tableCache {
	return &tableCache{fs: fs, tables: make(map[string]*sideTable)}
}

// lookup joins key against the table at path, loading or reloading
// the table as needed. The second return reports whether the key
// matched.
func (c *tableCache) lookup(path, key string) ([]string, bool, error) {
	st, err := c.fs.Stat(path)
	if err != nil {
		return nil, false, fmt.Errorf("stat: %w", err)
	}
	c.mu.RLock()
	t := c.tables[path]
	c.mu.RUnlock()
	if t == nil || !t.mtime.Equal(st.ModTime()) || t.size != st.Size() {
		if t, err = c.load(path, st.ModTime(), st.Size()); err != nil {
			return nil, false, err
		}
	}
	vals, ok := t.rows[key]
	return vals, ok, nil
}

// load (re)reads a side table. Concurrent loaders race benignly: both
// read the same file version and install equivalent snapshots.
func (c *tableCache) load(path string, mtime time.Time, size int64) (*sideTable, error) {
	f, err := c.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = -1
	rows := make(map[string][]string)
	for {
		cols, err := cr.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("read: %w", err)
		}
		if len(cols) == 0 {
			continue
		}
		rows[cols[0]] = append([]string(nil), cols[1:]...)
	}
	t := &sideTable{mtime: mtime, size: size, rows: rows}
	c.mu.Lock()
	c.tables[path] = t
	c.mu.Unlock()
	return t, nil
}
