// Package plan compiles and executes per-feed ingestion plans: small
// operator DAGs declared in a feed's plan {} config block and run
// streaming inside the sharded ingest workers (INGESTBASE-style
// declarative ingestion; the enrich operator's ingest/delivery
// placement is IDEA's central tradeoff, measured in E20).
//
// A compiled Program reads one landing file and produces:
//
//   - a primary output (the records that stayed in the feed),
//   - zero or more derived outputs (split tees and route matches),
//     which the server stages and records like any other arrival, and
//   - an optional reject stream (validate failures), which the server
//     lands in the quarantine tree.
//
// Compilation happens once per config load; execution allocates per
// file, never per config. Side tables are cached process-wide and
// reloaded when the backing file changes (mtime/size), so enrichment
// never does per-record I/O.
package plan

import (
	"bufio"
	"compress/bzip2"
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"bistro/internal/config"
	"bistro/internal/diskfault"
	"bistro/internal/metrics"
)

// maxRecordBytes bounds one framed record; longer records reject
// rather than ballooning worker memory.
const maxRecordBytes = 1 << 20

// errRecordTooLong marks a framed record longer than maxRecordBytes;
// runRecords rejects it (a marker line, not the record — quarantining
// megabytes of unframeable bytes helps nobody) instead of failing the
// file, which would wedge the source's shard in a retry loop.
var errRecordTooLong = errors.New("record too long")

// Metrics holds the plan engine's instrumentation. Nil (or any nil
// field) disables that series at no hot-path cost.
type Metrics struct {
	// Records counts records (or whole files, for byte-stage ops)
	// flowing out of each operator, labeled feed and op.
	Records *metrics.CounterVec
	// Bytes counts bytes written to each output class, labeled feed
	// and output (primary, derived, reject).
	Bytes *metrics.CounterVec
	// Errors counts per-operator failures: validate rejects, enrich
	// table misses and load errors, unparseable records.
	Errors *metrics.CounterVec
	// OpSeconds observes per-file time spent inside each operator.
	OpSeconds *metrics.HistogramVec
}

// NewMetrics registers the plan metric families on r using the
// canonical names catalogued in docs/OBSERVABILITY.md.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Records: r.CounterVec("bistro_plan_records_total",
			"Records emitted by each plan operator.", "feed", "op"),
		Bytes: r.CounterVec("bistro_plan_bytes_total",
			"Bytes written by plan execution per output class.", "feed", "output"),
		Errors: r.CounterVec("bistro_plan_errors_total",
			"Plan operator failures (rejects, enrich misses, parse errors).", "feed", "op"),
		OpSeconds: r.HistogramVec("bistro_plan_op_seconds",
			"Per-file time spent inside each plan operator.", nil, "feed", "op"),
	}
}

// Options configure compilation.
type Options struct {
	// FS is the filesystem seam used to load side tables (nil = the
	// real filesystem).
	FS diskfault.FS
	// Root anchors relative side-table paths (the server base dir).
	Root string
	// Metrics, when non-nil, receives plan instrumentation.
	Metrics *Metrics
}

// Set holds every compiled plan in a config, keyed by feed path.
type Set struct {
	progs  map[string]*Program
	tables *tableCache
}

// Compile builds executable programs for every feed carrying a plan
// block. Config resolve already type-checked operator wiring and
// rejected cycles, so errors here indicate a config constructed
// outside Parse.
func Compile(cfg *config.Config, opts Options) (*Set, error) {
	if opts.FS == nil {
		opts.FS = diskfault.OS()
	}
	s := &Set{
		progs:  make(map[string]*Program),
		tables: newTableCache(opts.FS),
	}
	for _, f := range cfg.Feeds {
		if f.Plan == nil {
			continue
		}
		p, err := compileProgram(f, opts, s.tables)
		if err != nil {
			return nil, err
		}
		s.progs[f.Path] = p
	}
	return s, nil
}

// For returns the compiled program for a feed path, or nil when the
// feed keeps the implicit default plan.
func (s *Set) For(feed string) *Program {
	if s == nil {
		return nil
	}
	return s.progs[feed]
}

// Len reports how many feeds carry explicit plans.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.progs)
}

// Program is one feed's compiled plan.
type Program struct {
	feed    string
	ops     []config.PlanOp
	framing string // "", "lines", "csv", "json"
	tables  *tableCache
	metrics *Metrics
	// gzipOut mirrors the feed's `compress gzip` setting: the server
	// gzip-wraps staged plan output, so the delivery transform must
	// gunzip before re-framing and re-gzip its result.
	gzipOut bool
	// delivery marks the sub-program DeliveryTransform runs per push;
	// its metrics are scoped under delivery_* labels so fan-out does
	// not inflate the ingest-side operator counters.
	delivery bool

	// deliveryEnrich is set when the plan defers its enrich join to
	// the delivery engine; DeliveryTransform exposes it.
	deliveryEnrich *config.PlanOp
	// extracts lists the extract ops, needed again at delivery time to
	// recompute the join key from record content.
	extracts []config.PlanOp
	// deliveryFn is the per-push transform built once at compile time
	// (nil when the plan does all its work at ingest).
	deliveryFn func([]byte) ([]byte, error)
}

func compileProgram(f *config.Feed, opts Options, tables *tableCache) (*Program, error) {
	p := &Program{
		feed:    f.Path,
		tables:  tables,
		metrics: opts.Metrics,
		gzipOut: f.Compress == config.CompressGzip,
	}
	for _, op := range f.Plan.Ops {
		op := op
		switch op.Kind {
		case config.OpParse:
			p.framing = op.Framing
		case config.OpExtract:
			p.extracts = append(p.extracts, op)
		case config.OpEnrich:
			op.Table = absTable(opts.Root, op.Table)
			if op.AtDelivery {
				p.deliveryEnrich = &op
				continue // not executed at ingest
			}
		}
		p.ops = append(p.ops, op)
	}
	p.deliveryFn = p.buildDeliveryTransform()
	return p, nil
}

// absTable anchors a relative side-table path at the server base dir.
func absTable(root, table string) string {
	if root == "" || filepath.IsAbs(table) {
		return table
	}
	return filepath.Join(root, filepath.FromSlash(table))
}

// Feed returns the owning feed path.
func (p *Program) Feed() string { return p.feed }

// Ops returns the operator chain executed at ingest (delivery-placed
// enrich excluded), for dry-run display.
func (p *Program) Ops() []config.PlanOp { return p.ops }

// Targets returns every derived feed this program can write.
func (p *Program) Targets() []string {
	spec := config.PlanSpec{Ops: p.ops}
	return spec.Targets()
}

// Stats summarizes one execution.
type Stats struct {
	// Records is how many records the parse stage framed (0 for
	// byte-only plans).
	Records int
	// Rejected is how many records validate sent to the reject output.
	Rejected int
	// Routed maps derived feed → records (or, for split tees, bytes
	// copied) sent there.
	Routed map[string]int
	// Fields holds the extracted values of the first record that
	// survived validate, in extract declaration order; the server
	// appends them to the file's pattern.Fields strings so normalize
	// templates can consume them. When no record survives (every
	// record rejected, or the file was empty), each extract
	// contributes an empty string so naming stays deterministic.
	Fields []string
}

// Sinks supplies lazily-created outputs for one execution. Each
// function is called at most once per destination; the writers stay
// open until Run returns. Reject may be nil when the plan has no
// validate operator.
type Sinks struct {
	// Primary opens the feed's own staged output.
	Primary func() (io.Writer, error)
	// Derived opens the staged output for one derived feed.
	Derived func(feed string) (io.Writer, error)
	// Reject opens the quarantine stream for validate failures.
	Reject func() (io.Writer, error)
}

// Run executes the plan over one input stream. It is safe for
// concurrent use across files (Program is immutable; per-file state
// lives in the execution).
func (p *Program) Run(in io.Reader, sinks Sinks) (Stats, error) {
	e := &execution{prog: p, sinks: sinks, stats: Stats{Routed: make(map[string]int)}}
	err := e.run(in)
	e.observe()
	return e.stats, err
}

// execution is the per-file state of one Run.
type execution struct {
	prog  *Program
	sinks Sinks
	stats Stats

	primary io.Writer
	derived map[string]io.Writer
	reject  io.Writer

	// csv writers are buffered per output; flushed before Run returns.
	csvOut map[io.Writer]*csv.Writer

	// fieldsSet reports that stats.Fields already holds a surviving
	// record's extracts.
	fieldsSet bool

	opTime map[string]time.Duration
}

// opLabel scopes operator metric labels: the delivery-transform
// sub-program counts under delivery_* so per-push fan-out does not
// inflate the feed's ingest-side series.
func (e *execution) opLabel(op string) string {
	if e.prog.delivery {
		return "delivery_" + op
	}
	return op
}

func (e *execution) timeOp(op string, since time.Time) {
	if e.prog.metrics == nil || e.prog.metrics.OpSeconds == nil {
		return
	}
	if e.opTime == nil {
		e.opTime = make(map[string]time.Duration)
	}
	e.opTime[e.opLabel(op)] += time.Since(since)
}

func (e *execution) observe() {
	m := e.prog.metrics
	if m == nil {
		return
	}
	if m.OpSeconds != nil {
		for op, d := range e.opTime {
			m.OpSeconds.With(e.prog.feed, op).Observe(d.Seconds())
		}
	}
}

func (e *execution) countRecord(op string) {
	if m := e.prog.metrics; m != nil && m.Records != nil {
		m.Records.With(e.prog.feed, e.opLabel(op)).Inc()
	}
}

func (e *execution) countError(op string) {
	if m := e.prog.metrics; m != nil && m.Errors != nil {
		m.Errors.With(e.prog.feed, e.opLabel(op)).Inc()
	}
}

func (e *execution) countBytes(output string, n int) {
	if e.prog.delivery {
		output = "delivery"
	}
	if m := e.prog.metrics; m != nil && m.Bytes != nil && n > 0 {
		m.Bytes.With(e.prog.feed, output).Add(int64(n))
	}
}

func (e *execution) primaryOut() (io.Writer, error) {
	if e.primary == nil {
		w, err := e.sinks.Primary()
		if err != nil {
			return nil, err
		}
		e.primary = w
	}
	return e.primary, nil
}

func (e *execution) derivedOut(feed string) (io.Writer, error) {
	if w, ok := e.derived[feed]; ok {
		return w, nil
	}
	w, err := e.sinks.Derived(feed)
	if err != nil {
		return nil, err
	}
	if e.derived == nil {
		e.derived = make(map[string]io.Writer)
	}
	e.derived[feed] = w
	return w, nil
}

func (e *execution) rejectOut() (io.Writer, error) {
	if e.reject == nil {
		if e.sinks.Reject == nil {
			return nil, fmt.Errorf("plan: feed %s: no reject sink", e.prog.feed)
		}
		w, err := e.sinks.Reject()
		if err != nil {
			return nil, err
		}
		e.reject = w
	}
	return e.reject, nil
}

func (e *execution) run(in io.Reader) error {
	p := e.prog
	// Byte stage: decompress, then tee into split targets.
	r := in
	for _, op := range p.ops {
		switch op.Kind {
		case config.OpDecompress:
			start := time.Now()
			switch op.Codec {
			case "gzip":
				zr, err := gzip.NewReader(r)
				if err != nil {
					return fmt.Errorf("plan: feed %s: gzip: %w", p.feed, err)
				}
				defer zr.Close()
				r = zr
			case "bzip2":
				r = bzip2.NewReader(r)
			}
			e.timeOp("decompress", start)
			e.countRecord("decompress")
		case config.OpSplit:
			w, err := e.derivedOut(op.Target)
			if err != nil {
				return err
			}
			r = io.TeeReader(r, &countingWriter{w: w, exec: e, feed: op.Target})
			e.countRecord("split")
		}
	}
	if p.framing == "" {
		// Byte-only plan: copy the (decompressed, teed) stream to the
		// primary output.
		w, err := e.primaryOut()
		if err != nil {
			return err
		}
		n, err := io.Copy(w, r)
		e.countBytes("primary", int(n))
		if err != nil {
			return fmt.Errorf("plan: feed %s: copy: %w", p.feed, err)
		}
		return nil
	}
	return e.runRecords(r)
}

// countingWriter tracks split tee volume per derived feed.
type countingWriter struct {
	w    io.Writer
	exec *execution
	feed string
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.w.Write(b)
	cw.exec.stats.Routed[cw.feed] += n
	cw.exec.countBytes("derived", n)
	return n, err
}

// record is one framed record in flight.
type record struct {
	// cols holds lines (1 col) / csv framing.
	cols []string
	// obj holds json framing.
	obj map[string]any
	// fields are the extracted named values.
	fields map[string]string
}

// runRecords frames the stream and pushes each record through the
// record-stage operators. An unparseable record (or tail) rejects
// rather than failing the file: a poisoned deposit must not wedge its
// source's shard in a retry loop.
func (e *execution) runRecords(r io.Reader) error {
	p := e.prog
	switch p.framing {
	case "csv":
		cr := csv.NewReader(r)
		cr.FieldsPerRecord = -1
		cr.ReuseRecord = false
		for {
			start := time.Now()
			cols, err := cr.Read()
			e.timeOp("parse", start)
			if err == io.EOF {
				break
			}
			if err != nil {
				e.countError("parse")
				if rerr := e.rejectLine(fmt.Sprintf("# parse error: %v", err)); rerr != nil {
					return rerr
				}
				continue
			}
			e.countRecord("parse")
			if err := e.process(&record{cols: cols}); err != nil {
				return err
			}
		}
	default: // lines, json
		br := bufio.NewReaderSize(r, 64*1024)
		for {
			line, err := readRecordLine(br)
			if err == io.EOF {
				break
			}
			if err == errRecordTooLong {
				e.countError("parse")
				if rerr := e.rejectLine(fmt.Sprintf("# parse error: record exceeds %d bytes", maxRecordBytes)); rerr != nil {
					return rerr
				}
				continue
			}
			if err != nil {
				return fmt.Errorf("plan: feed %s: scan: %w", p.feed, err)
			}
			rec := &record{}
			if p.framing == "json" {
				start := time.Now()
				var obj map[string]any
				jerr := json.Unmarshal([]byte(line), &obj)
				e.timeOp("parse", start)
				if jerr != nil {
					e.countError("parse")
					if rerr := e.rejectLine(line); rerr != nil {
						return rerr
					}
					continue
				}
				rec.obj = obj
			} else {
				rec.cols = []string{line}
			}
			e.countRecord("parse")
			if err := e.process(rec); err != nil {
				return err
			}
		}
	}
	if e.csvOut != nil {
		for _, cw := range e.csvOut {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("plan: feed %s: flush: %w", p.feed, err)
			}
		}
	}
	// When no record survived to donate naming fields (every record
	// rejected, or the file was empty), each extract falls back to an
	// empty string so normalize templates with extra %s slots still
	// render deterministically instead of erroring the arrival into a
	// retry loop.
	if !e.fieldsSet {
		for _, op := range p.ops {
			if op.Kind == config.OpExtract {
				e.stats.Fields = append(e.stats.Fields, "")
			}
		}
	}
	// The primary output exists even when every record routed away —
	// an empty staged file is a deterministic statement that the
	// arrival carried nothing for this feed.
	_, err := e.primaryOut()
	return err
}

// readRecordLine returns the next newline-delimited record, without
// its terminator (a trailing \r is stripped, matching bufio.Scanner's
// line framing; the final line needs no terminator). A record longer
// than maxRecordBytes is consumed to its end and reported as
// errRecordTooLong so the caller can reject it and keep framing the
// rest of the stream — bufio.Scanner would stop cold at ErrTooLong.
func readRecordLine(br *bufio.Reader) (string, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		switch err {
		case bufio.ErrBufferFull:
			if len(buf) > maxRecordBytes {
				return "", drainRecordLine(br)
			}
		case nil, io.EOF:
			if err == io.EOF && len(buf) == 0 {
				return "", io.EOF
			}
			line := strings.TrimSuffix(string(buf), "\n")
			line = strings.TrimSuffix(line, "\r")
			if len(line) > maxRecordBytes {
				return "", errRecordTooLong
			}
			return line, nil
		default:
			return "", err
		}
	}
}

// drainRecordLine consumes the remainder of an oversized line without
// buffering it.
func drainRecordLine(br *bufio.Reader) error {
	for {
		_, err := br.ReadSlice('\n')
		switch err {
		case bufio.ErrBufferFull:
			// keep draining
		case nil, io.EOF:
			return errRecordTooLong
		default:
			return err
		}
	}
}

// process runs one record through validate/extract/enrich/route and
// serializes it to its destination.
func (e *execution) process(rec *record) error {
	p := e.prog
	e.stats.Records++
	dest := "" // "" = primary
	// recFields accumulates this record's extracted values; they join
	// stats.Fields only if the record survives validate, so a rejected
	// first record cannot poison (or starve) the naming namespace.
	var recFields []string
	for _, op := range p.ops {
		switch op.Kind {
		case config.OpValidate:
			start := time.Now()
			reason, ok := validateRecord(rec, op.Rules)
			e.timeOp("validate", start)
			if !ok {
				e.countError("validate")
				e.stats.Rejected++
				return e.rejectRecord(rec, reason)
			}
			e.countRecord("validate")
		case config.OpExtract:
			start := time.Now()
			v := extractField(rec, op)
			if rec.fields == nil {
				rec.fields = make(map[string]string)
			}
			rec.fields[op.Field] = v
			e.timeOp("extract", start)
			e.countRecord("extract")
			recFields = append(recFields, v)
		case config.OpEnrich:
			start := time.Now()
			vals, ok, err := p.tables.lookup(op.Table, rec.fields[op.Field])
			e.timeOp("enrich", start)
			switch {
			case err != nil && p.delivery:
				// At delivery a broken side table fails only this push
				// (visible in receipts/EvDeliveryFailed, retryable after
				// the operator repairs the table).
				return fmt.Errorf("plan: feed %s: enrich table %s: %w", p.feed, op.Table, err)
			case err != nil:
				// At ingest the same breakage must not wedge the shard
				// in a landing-file retry loop: degrade to un-enriched
				// records, counted like a miss.
				e.countError("enrich")
			case !ok:
				e.countError("enrich")
			default:
				enrichRecord(rec, vals)
				e.countRecord("enrich")
			}
		case config.OpRoute:
			start := time.Now()
			v := rec.fields[op.Field]
			matched := op.Target // default ("" = stay primary)
			for _, c := range op.Cases {
				if c.Value == v {
					matched = c.Target
					break
				}
			}
			e.timeOp("route", start)
			if matched != "" {
				dest = matched
				e.countRecord("route")
			}
		}
	}
	if !e.fieldsSet && len(recFields) > 0 {
		e.stats.Fields = recFields
		e.fieldsSet = true
	}
	var w io.Writer
	var err error
	output := "primary"
	if dest == "" {
		w, err = e.primaryOut()
	} else {
		w, err = e.derivedOut(dest)
		e.stats.Routed[dest]++
		output = "derived"
	}
	if err != nil {
		return err
	}
	return e.writeRecord(w, rec, output)
}

// validateRecord applies the rules; the first violated rule names the
// reject reason.
func validateRecord(rec *record, rules []config.PlanRule) (string, bool) {
	for _, r := range rules {
		switch r.Kind {
		case "columns":
			if len(rec.cols) != r.Count {
				return fmt.Sprintf("columns %d (want %d)", len(rec.cols), r.Count), false
			}
		case "utf8":
			for _, c := range rec.cols {
				if !utf8.ValidString(c) {
					return "invalid utf-8", false
				}
			}
		case "require":
			if rec.fields[r.Field] == "" {
				return fmt.Sprintf("missing %s", r.Field), false
			}
		case "numeric":
			if _, err := strconv.ParseInt(rec.fields[r.Field], 10, 64); err != nil {
				return fmt.Sprintf("%s not numeric", r.Field), false
			}
		}
	}
	return "", true
}

// extractField pulls the operator's source column/key out of a record.
func extractField(rec *record, op config.PlanOp) string {
	if rec.obj != nil {
		return jsonString(rec.obj[op.Key])
	}
	if op.Column >= 1 && op.Column <= len(rec.cols) {
		return rec.cols[op.Column-1]
	}
	return ""
}

// jsonString renders a JSON leaf value the way route cases and side
// tables expect to match it.
func jsonString(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case string:
		return t
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(t)
	default:
		b, _ := json.Marshal(t)
		return string(b)
	}
}

// enrichRecord appends side-table values: extra columns for
// lines/csv framing, an "_enrich" array for json.
func enrichRecord(rec *record, vals []string) {
	if rec.obj != nil {
		arr := make([]any, len(vals))
		for i, v := range vals {
			arr[i] = v
		}
		rec.obj["_enrich"] = arr
		return
	}
	rec.cols = append(rec.cols, vals...)
}

// writeRecord serializes a record under the plan's framing. CSV
// output is normalized (encoding/csv quoting); JSON objects re-marshal
// with sorted keys — both deterministic, documented in docs/PLANS.md.
func (e *execution) writeRecord(w io.Writer, rec *record, output string) error {
	switch {
	case rec.obj != nil:
		b, err := json.Marshal(rec.obj)
		if err != nil {
			return fmt.Errorf("plan: feed %s: marshal: %w", e.prog.feed, err)
		}
		b = append(b, '\n')
		n, err := w.Write(b)
		e.countBytes(output, n)
		return err
	case e.prog.framing == "csv":
		if e.csvOut == nil {
			e.csvOut = make(map[io.Writer]*csv.Writer)
		}
		cw := e.csvOut[w]
		if cw == nil {
			counted := &outputCounter{w: w, exec: e, output: output}
			cw = csv.NewWriter(counted)
			e.csvOut[w] = cw
		}
		return cw.Write(rec.cols)
	default: // lines
		n, err := io.WriteString(w, rec.cols[0]+"\n")
		e.countBytes(output, n)
		return err
	}
}

// outputCounter attributes csv.Writer bytes to an output class.
type outputCounter struct {
	w      io.Writer
	exec   *execution
	output string
}

func (oc *outputCounter) Write(b []byte) (int, error) {
	n, err := oc.w.Write(b)
	oc.exec.countBytes(oc.output, n)
	return n, err
}

// rejectRecord writes a rejected record (with its reason as a
// comment) to the quarantine stream.
func (e *execution) rejectRecord(rec *record, reason string) error {
	var raw string
	switch {
	case rec.obj != nil:
		b, _ := json.Marshal(rec.obj)
		raw = string(b)
	case e.prog.framing == "csv":
		var sb strings.Builder
		cw := csv.NewWriter(&sb)
		cw.Write(rec.cols)
		cw.Flush()
		raw = strings.TrimSuffix(sb.String(), "\n")
	default:
		raw = rec.cols[0]
	}
	return e.rejectLine(fmt.Sprintf("%s\t# reject: %s", raw, reason))
}

func (e *execution) rejectLine(line string) error {
	w, err := e.rejectOut()
	if err != nil {
		return err
	}
	n, err := io.WriteString(w, line+"\n")
	e.countBytes("reject", n)
	return err
}
