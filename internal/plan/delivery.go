package plan

import (
	"bytes"
	"io"
)

// DeliveryTransform returns the content transform the delivery engine
// must apply to this feed's staged bytes, or nil when the plan does
// all its work at ingest. Non-nil exactly when the plan declares
// `enrich { ... at delivery }` (IDEA's enrichment-at-delivery
// placement): staged files then hold lean, un-enriched records, and
// the join runs once per push delivery, trading smaller staging and
// faster ingest acks for per-delivery CPU and table lookups.
//
// The transform re-frames the staged bytes (they were serialized by
// this same program at ingest, so the framing is known), re-extracts
// the join key, applies the enrich join, and re-serializes. The
// delivery engine recomputes transfer CRC/size over the transformed
// bytes; the receipt checksum keeps describing the staged (lean)
// file.
func (p *Program) DeliveryTransform() func([]byte) ([]byte, error) {
	return p.deliveryFn
}

// buildDeliveryTransform constructs the transform once at compile
// time, so the delivery engine's per-push lookups return a shared
// closure instead of rebuilding the sub-program.
func (p *Program) buildDeliveryTransform() func([]byte) ([]byte, error) {
	if p.deliveryEnrich == nil {
		return nil
	}
	// Build a minimal program: parse + the extracts + the (ingest-
	// placed) enrich, writing everything to the primary sink.
	sub := &Program{
		feed:    p.feed,
		framing: p.framing,
		tables:  p.tables,
		metrics: p.metrics,
	}
	enrich := *p.deliveryEnrich
	enrich.AtDelivery = false
	sub.ops = append(sub.ops, p.extracts...)
	sub.ops = append(sub.ops, enrich)
	return func(data []byte) ([]byte, error) {
		var out bytes.Buffer
		_, err := sub.Run(bytes.NewReader(data), Sinks{
			Primary: func() (io.Writer, error) { return &out, nil },
		})
		if err != nil {
			return nil, err
		}
		return out.Bytes(), nil
	}
}
