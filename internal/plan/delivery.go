package plan

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// DeliveryTransform returns the content transform the delivery engine
// must apply to this feed's staged bytes, or nil when the plan does
// all its work at ingest. Non-nil exactly when the plan declares
// `enrich { ... at delivery }` (IDEA's enrichment-at-delivery
// placement): staged files then hold lean, un-enriched records, and
// the join runs once per push delivery, trading smaller staging and
// faster ingest acks for per-delivery CPU and table lookups.
//
// The transform re-frames the staged bytes (they were serialized by
// this same program at ingest, so the framing is known), re-extracts
// the join key, applies the enrich join, and re-serializes. Feeds
// staged with `compress gzip` are gunzipped first and the transformed
// records re-gzipped, so subscribers still receive the encoding the
// feed declares. The delivery engine recomputes transfer CRC/size
// over the transformed bytes; the receipt checksum keeps describing
// the staged (lean) file.
func (p *Program) DeliveryTransform() func([]byte) ([]byte, error) {
	return p.deliveryFn
}

// buildDeliveryTransform constructs the transform once at compile
// time, so the delivery engine's per-push lookups return a shared
// closure instead of rebuilding the sub-program.
func (p *Program) buildDeliveryTransform() func([]byte) ([]byte, error) {
	if p.deliveryEnrich == nil {
		return nil
	}
	// Build a minimal program: parse + the extracts + the (ingest-
	// placed) enrich, writing everything to the primary sink. The
	// delivery flag scopes its metrics under delivery_* labels so
	// per-push fan-out does not inflate the ingest-side counters.
	sub := &Program{
		feed:     p.feed,
		framing:  p.framing,
		tables:   p.tables,
		metrics:  p.metrics,
		delivery: true,
	}
	enrich := *p.deliveryEnrich
	enrich.AtDelivery = false
	sub.ops = append(sub.ops, p.extracts...)
	sub.ops = append(sub.ops, enrich)
	gzipOut := p.gzipOut
	return func(data []byte) ([]byte, error) {
		in := io.Reader(bytes.NewReader(data))
		if gzipOut {
			zr, err := gzip.NewReader(in)
			if err != nil {
				return nil, fmt.Errorf("plan: feed %s: delivery gunzip: %w", p.feed, err)
			}
			defer zr.Close()
			in = zr
		}
		var out bytes.Buffer
		var w io.Writer = &out
		var zw *gzip.Writer
		if gzipOut {
			zw = gzip.NewWriter(&out)
			w = zw
		}
		_, err := sub.Run(in, Sinks{
			Primary: func() (io.Writer, error) { return w, nil },
		})
		if err != nil {
			return nil, err
		}
		if zw != nil {
			if err := zw.Close(); err != nil {
				return nil, fmt.Errorf("plan: feed %s: delivery gzip: %w", p.feed, err)
			}
		}
		return out.Bytes(), nil
	}
}
