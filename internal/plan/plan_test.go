package plan

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bistro/internal/config"
)

// compileOne builds a Set for a single feed declaring the given ops.
func compileOne(t *testing.T, opts Options, ops ...config.PlanOp) *Program {
	t.Helper()
	return compileFeed(t, opts, &config.Feed{
		Path: "F",
		Plan: &config.PlanSpec{Ops: ops},
	})
}

// compileFeed builds a Set for one fully-specified feed.
func compileFeed(t *testing.T, opts Options, f *config.Feed) *Program {
	t.Helper()
	cfg := &config.Config{Feeds: []*config.Feed{f}}
	set, err := Compile(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := set.For(f.Path)
	if p == nil {
		t.Fatalf("no program for %s", f.Path)
	}
	return p
}

// collectSinks buffers every output in memory.
type collectSinks struct {
	primary bytes.Buffer
	derived map[string]*bytes.Buffer
	reject  bytes.Buffer
}

func (c *collectSinks) sinks() Sinks {
	return Sinks{
		Primary: func() (io.Writer, error) { return &c.primary, nil },
		Derived: func(feed string) (io.Writer, error) {
			if c.derived == nil {
				c.derived = make(map[string]*bytes.Buffer)
			}
			b := &bytes.Buffer{}
			c.derived[feed] = b
			return b, nil
		},
		Reject: func() (io.Writer, error) { return &c.reject, nil },
	}
}

func gzipBytes(t *testing.T, s string) []byte {
	t.Helper()
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	io.WriteString(zw, s)
	zw.Close()
	return b.Bytes()
}

func TestByteOnlyDecompressSplit(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpDecompress, Codec: "gzip"},
		config.PlanOp{Kind: config.OpSplit, Target: "RAW"},
	)
	var c collectSinks
	stats, err := p.Run(bytes.NewReader(gzipBytes(t, "a\nb\n")), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.primary.String(); got != "a\nb\n" {
		t.Errorf("primary = %q", got)
	}
	if got := c.derived["RAW"].String(); got != "a\nb\n" {
		t.Errorf("split copy = %q", got)
	}
	if stats.Routed["RAW"] != 4 {
		t.Errorf("routed bytes = %d, want 4", stats.Routed["RAW"])
	}
}

func TestValidateRejects(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpValidate, Rules: []config.PlanRule{{Kind: "columns", Count: 2}}},
		config.PlanOp{Kind: config.OpExtract, Field: "n", Column: 2},
		config.PlanOp{Kind: config.OpValidate, Rules: []config.PlanRule{{Kind: "numeric", Field: "n"}}},
	)
	var c collectSinks
	stats, err := p.Run(strings.NewReader("a,1\nb\nc,xyz\nd,4\n"), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.primary.String(); got != "a,1\nd,4\n" {
		t.Errorf("primary = %q", got)
	}
	rej := c.reject.String()
	if !strings.Contains(rej, "columns 1 (want 2)") || !strings.Contains(rej, "n not numeric") {
		t.Errorf("rejects = %q", rej)
	}
	if stats.Records != 4 || stats.Rejected != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRouteAndFirstRecordFields(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "region", Column: 1},
		config.PlanOp{Kind: config.OpRoute, Field: "region",
			Cases:  []config.PlanRouteCase{{Value: "east", Target: "E"}},
			Target: "OTHER"},
	)
	var c collectSinks
	stats, err := p.Run(strings.NewReader("east,1\nwest,2\neast,3\n"), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	// Every record routed somewhere (default OTHER), so the primary is
	// created but empty — the deterministic "nothing stayed" statement.
	if c.primary.Len() != 0 {
		t.Errorf("primary = %q, want empty", c.primary.String())
	}
	if got := c.derived["E"].String(); got != "east,1\neast,3\n" {
		t.Errorf("E = %q", got)
	}
	if got := c.derived["OTHER"].String(); got != "west,2\n" {
		t.Errorf("OTHER = %q", got)
	}
	if stats.Routed["E"] != 2 || stats.Routed["OTHER"] != 1 {
		t.Errorf("routed = %v", stats.Routed)
	}
	if len(stats.Fields) != 1 || stats.Fields[0] != "east" {
		t.Errorf("first-record fields = %v", stats.Fields)
	}
}

func writeTable(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEnrichJoinAndReload(t *testing.T) {
	dir := t.TempDir()
	table := writeTable(t, dir, "regions.csv", "east,us,low\nwest,eu,high\n")
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "region", Column: 1},
		config.PlanOp{Kind: config.OpEnrich, Field: "region", Table: table},
	)
	var c collectSinks
	if _, err := p.Run(strings.NewReader("east,1\nnone,2\n"), c.sinks()); err != nil {
		t.Fatal(err)
	}
	// Hit appends table values; miss passes through unchanged.
	if got := c.primary.String(); got != "east,1,us,low\nnone,2\n" {
		t.Errorf("primary = %q", got)
	}

	// Rewriting the table (new mtime/size) must be visible to the next
	// run without recompiling.
	time.Sleep(10 * time.Millisecond)
	writeTable(t, dir, "regions.csv", "none,zz,mid\n")
	var c2 collectSinks
	if _, err := p.Run(strings.NewReader("none,2\n"), c2.sinks()); err != nil {
		t.Fatal(err)
	}
	if got := c2.primary.String(); got != "none,2,zz,mid\n" {
		t.Errorf("primary after reload = %q", got)
	}
}

func TestJSONFraming(t *testing.T) {
	dir := t.TempDir()
	table := writeTable(t, dir, "hosts.csv", "h1,rack9\n")
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "json"},
		config.PlanOp{Kind: config.OpExtract, Field: "host", Key: "host"},
		config.PlanOp{Kind: config.OpEnrich, Field: "host", Table: table},
	)
	var c collectSinks
	stats, err := p.Run(strings.NewReader(
		`{"host":"h1","v":2}`+"\n"+"not json\n"), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	// Output re-marshals with sorted keys and the _enrich array.
	if got := c.primary.String(); got != `{"_enrich":["rack9"],"host":"h1","v":2}`+"\n" {
		t.Errorf("primary = %q", got)
	}
	if got := c.reject.String(); got != "not json\n" {
		t.Errorf("reject = %q", got)
	}
	if stats.Records != 1 {
		t.Errorf("records = %d", stats.Records)
	}
}

func TestDeliveryTransform(t *testing.T) {
	dir := t.TempDir()
	table := writeTable(t, dir, "t.csv", "east,us\n")
	atIngest := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "r", Column: 1},
	)
	if atIngest.DeliveryTransform() != nil {
		t.Fatal("plan without at-delivery enrich must have nil transform")
	}
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "r", Column: 1},
		config.PlanOp{Kind: config.OpEnrich, Field: "r", Table: table, AtDelivery: true},
	)
	// The ingest half leaves the staged file lean.
	var c collectSinks
	if _, err := p.Run(strings.NewReader("east,1\n"), c.sinks()); err != nil {
		t.Fatal(err)
	}
	if got := c.primary.String(); got != "east,1\n" {
		t.Errorf("staged = %q, want lean records", got)
	}
	// The delivery half joins per push.
	tr := p.DeliveryTransform()
	if tr == nil {
		t.Fatal("nil delivery transform")
	}
	out, err := tr(c.primary.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "east,1,us\n" {
		t.Errorf("transformed = %q", string(out))
	}
}

func TestOversizeRecordRejects(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "lines"},
	)
	// The oversized record must reject without failing the file — a
	// poison deposit must not wedge its source's shard — and the
	// records around it must still frame.
	in := "before\n" + strings.Repeat("x", maxRecordBytes+1) + "\nafter\n"
	var c collectSinks
	stats, err := p.Run(strings.NewReader(in), c.sinks())
	if err != nil {
		t.Fatalf("oversize record failed the file: %v", err)
	}
	if got := c.primary.String(); got != "before\nafter\n" {
		t.Errorf("primary = %q, want surrounding records", got)
	}
	if !strings.Contains(c.reject.String(), "record exceeds") {
		t.Errorf("reject = %q, want oversize marker", c.reject.String())
	}
	if stats.Records != 2 {
		t.Errorf("records = %d, want 2", stats.Records)
	}
}

func TestOversizeRecordAtEOFRejects(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "lines"},
	)
	var c collectSinks
	if _, err := p.Run(strings.NewReader(strings.Repeat("x", maxRecordBytes+1)), c.sinks()); err != nil {
		t.Fatalf("unterminated oversize record failed the file: %v", err)
	}
	if !strings.Contains(c.reject.String(), "record exceeds") {
		t.Errorf("reject = %q, want oversize marker", c.reject.String())
	}
}

func TestFieldsFromFirstSurvivingRecord(t *testing.T) {
	ops := []config.PlanOp{
		{Kind: config.OpParse, Framing: "csv"},
		{Kind: config.OpExtract, Field: "n", Column: 2},
		{Kind: config.OpValidate, Rules: []config.PlanRule{{Kind: "numeric", Field: "n"}}},
	}
	// The first record rejects; naming fields must come from the first
	// record that survives validate.
	p := compileOne(t, Options{}, ops...)
	var c collectSinks
	stats, err := p.Run(strings.NewReader("a,bad\nb,7\n"), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Fields) != 1 || stats.Fields[0] != "7" {
		t.Errorf("fields = %v, want [7]", stats.Fields)
	}

	// No survivors at all: each extract falls back to an empty string
	// so normalize templates still render deterministically.
	var c2 collectSinks
	stats, err = p.Run(strings.NewReader("a,bad\n"), c2.sinks())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Fields) != 1 || stats.Fields[0] != "" {
		t.Errorf("fallback fields = %v, want [\"\"]", stats.Fields)
	}
}

func TestEnrichTableErrorDegradesAtIngest(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "absent.csv")
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "r", Column: 1},
		config.PlanOp{Kind: config.OpEnrich, Field: "r", Table: missing},
	)
	// A broken side table must not fail the file (that would wedge the
	// shard); records pass through un-enriched.
	var c collectSinks
	if _, err := p.Run(strings.NewReader("east,1\n"), c.sinks()); err != nil {
		t.Fatalf("table error failed the file: %v", err)
	}
	if got := c.primary.String(); got != "east,1\n" {
		t.Errorf("primary = %q, want un-enriched record", got)
	}
}

func TestDeliveryTransformTableErrorFailsPush(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "absent.csv")
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "r", Column: 1},
		config.PlanOp{Kind: config.OpEnrich, Field: "r", Table: missing, AtDelivery: true},
	)
	// At delivery the same breakage fails only the push — visible and
	// retryable once the operator repairs the table.
	if _, err := p.DeliveryTransform()([]byte("east,1\n")); err == nil {
		t.Fatal("expected delivery transform error for missing table")
	}
}

func TestDeliveryTransformGzipFeed(t *testing.T) {
	dir := t.TempDir()
	table := writeTable(t, dir, "t.csv", "east,us\n")
	p := compileFeed(t, Options{}, &config.Feed{
		Path:     "F",
		Compress: config.CompressGzip,
		Plan: &config.PlanSpec{Ops: []config.PlanOp{
			{Kind: config.OpParse, Framing: "csv"},
			{Kind: config.OpExtract, Field: "r", Column: 1},
			{Kind: config.OpEnrich, Field: "r", Table: table, AtDelivery: true},
		}},
	})
	// The server stages gzip-wrapped lean records for a `compress
	// gzip` feed; the transform must gunzip, join, and re-gzip so the
	// subscriber still receives the feed's declared encoding.
	out, err := p.DeliveryTransform()(gzipBytes(t, "east,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("transformed output is not gzip: %v", err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != "east,1,us\n" {
		t.Errorf("transformed = %q, want enriched record", string(plain))
	}
}
