package plan

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bistro/internal/config"
)

// compileOne builds a Set for a single feed declaring the given ops.
func compileOne(t *testing.T, opts Options, ops ...config.PlanOp) *Program {
	t.Helper()
	cfg := &config.Config{Feeds: []*config.Feed{{
		Path: "F",
		Plan: &config.PlanSpec{Ops: ops},
	}}}
	set, err := Compile(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := set.For("F")
	if p == nil {
		t.Fatal("no program for F")
	}
	return p
}

// collectSinks buffers every output in memory.
type collectSinks struct {
	primary bytes.Buffer
	derived map[string]*bytes.Buffer
	reject  bytes.Buffer
}

func (c *collectSinks) sinks() Sinks {
	return Sinks{
		Primary: func() (io.Writer, error) { return &c.primary, nil },
		Derived: func(feed string) (io.Writer, error) {
			if c.derived == nil {
				c.derived = make(map[string]*bytes.Buffer)
			}
			b := &bytes.Buffer{}
			c.derived[feed] = b
			return b, nil
		},
		Reject: func() (io.Writer, error) { return &c.reject, nil },
	}
}

func gzipBytes(t *testing.T, s string) []byte {
	t.Helper()
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	io.WriteString(zw, s)
	zw.Close()
	return b.Bytes()
}

func TestByteOnlyDecompressSplit(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpDecompress, Codec: "gzip"},
		config.PlanOp{Kind: config.OpSplit, Target: "RAW"},
	)
	var c collectSinks
	stats, err := p.Run(bytes.NewReader(gzipBytes(t, "a\nb\n")), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.primary.String(); got != "a\nb\n" {
		t.Errorf("primary = %q", got)
	}
	if got := c.derived["RAW"].String(); got != "a\nb\n" {
		t.Errorf("split copy = %q", got)
	}
	if stats.Routed["RAW"] != 4 {
		t.Errorf("routed bytes = %d, want 4", stats.Routed["RAW"])
	}
}

func TestValidateRejects(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpValidate, Rules: []config.PlanRule{{Kind: "columns", Count: 2}}},
		config.PlanOp{Kind: config.OpExtract, Field: "n", Column: 2},
		config.PlanOp{Kind: config.OpValidate, Rules: []config.PlanRule{{Kind: "numeric", Field: "n"}}},
	)
	var c collectSinks
	stats, err := p.Run(strings.NewReader("a,1\nb\nc,xyz\nd,4\n"), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.primary.String(); got != "a,1\nd,4\n" {
		t.Errorf("primary = %q", got)
	}
	rej := c.reject.String()
	if !strings.Contains(rej, "columns 1 (want 2)") || !strings.Contains(rej, "n not numeric") {
		t.Errorf("rejects = %q", rej)
	}
	if stats.Records != 4 || stats.Rejected != 2 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRouteAndFirstRecordFields(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "region", Column: 1},
		config.PlanOp{Kind: config.OpRoute, Field: "region",
			Cases:  []config.PlanRouteCase{{Value: "east", Target: "E"}},
			Target: "OTHER"},
	)
	var c collectSinks
	stats, err := p.Run(strings.NewReader("east,1\nwest,2\neast,3\n"), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	// Every record routed somewhere (default OTHER), so the primary is
	// created but empty — the deterministic "nothing stayed" statement.
	if c.primary.Len() != 0 {
		t.Errorf("primary = %q, want empty", c.primary.String())
	}
	if got := c.derived["E"].String(); got != "east,1\neast,3\n" {
		t.Errorf("E = %q", got)
	}
	if got := c.derived["OTHER"].String(); got != "west,2\n" {
		t.Errorf("OTHER = %q", got)
	}
	if stats.Routed["E"] != 2 || stats.Routed["OTHER"] != 1 {
		t.Errorf("routed = %v", stats.Routed)
	}
	if len(stats.Fields) != 1 || stats.Fields[0] != "east" {
		t.Errorf("first-record fields = %v", stats.Fields)
	}
}

func writeTable(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEnrichJoinAndReload(t *testing.T) {
	dir := t.TempDir()
	table := writeTable(t, dir, "regions.csv", "east,us,low\nwest,eu,high\n")
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "region", Column: 1},
		config.PlanOp{Kind: config.OpEnrich, Field: "region", Table: table},
	)
	var c collectSinks
	if _, err := p.Run(strings.NewReader("east,1\nnone,2\n"), c.sinks()); err != nil {
		t.Fatal(err)
	}
	// Hit appends table values; miss passes through unchanged.
	if got := c.primary.String(); got != "east,1,us,low\nnone,2\n" {
		t.Errorf("primary = %q", got)
	}

	// Rewriting the table (new mtime/size) must be visible to the next
	// run without recompiling.
	time.Sleep(10 * time.Millisecond)
	writeTable(t, dir, "regions.csv", "none,zz,mid\n")
	var c2 collectSinks
	if _, err := p.Run(strings.NewReader("none,2\n"), c2.sinks()); err != nil {
		t.Fatal(err)
	}
	if got := c2.primary.String(); got != "none,2,zz,mid\n" {
		t.Errorf("primary after reload = %q", got)
	}
}

func TestJSONFraming(t *testing.T) {
	dir := t.TempDir()
	table := writeTable(t, dir, "hosts.csv", "h1,rack9\n")
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "json"},
		config.PlanOp{Kind: config.OpExtract, Field: "host", Key: "host"},
		config.PlanOp{Kind: config.OpEnrich, Field: "host", Table: table},
	)
	var c collectSinks
	stats, err := p.Run(strings.NewReader(
		`{"host":"h1","v":2}`+"\n"+"not json\n"), c.sinks())
	if err != nil {
		t.Fatal(err)
	}
	// Output re-marshals with sorted keys and the _enrich array.
	if got := c.primary.String(); got != `{"_enrich":["rack9"],"host":"h1","v":2}`+"\n" {
		t.Errorf("primary = %q", got)
	}
	if got := c.reject.String(); got != "not json\n" {
		t.Errorf("reject = %q", got)
	}
	if stats.Records != 1 {
		t.Errorf("records = %d", stats.Records)
	}
}

func TestDeliveryTransform(t *testing.T) {
	dir := t.TempDir()
	table := writeTable(t, dir, "t.csv", "east,us\n")
	atIngest := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "r", Column: 1},
	)
	if atIngest.DeliveryTransform() != nil {
		t.Fatal("plan without at-delivery enrich must have nil transform")
	}
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "csv"},
		config.PlanOp{Kind: config.OpExtract, Field: "r", Column: 1},
		config.PlanOp{Kind: config.OpEnrich, Field: "r", Table: table, AtDelivery: true},
	)
	// The ingest half leaves the staged file lean.
	var c collectSinks
	if _, err := p.Run(strings.NewReader("east,1\n"), c.sinks()); err != nil {
		t.Fatal(err)
	}
	if got := c.primary.String(); got != "east,1\n" {
		t.Errorf("staged = %q, want lean records", got)
	}
	// The delivery half joins per push.
	tr := p.DeliveryTransform()
	if tr == nil {
		t.Fatal("nil delivery transform")
	}
	out, err := tr(c.primary.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "east,1,us\n" {
		t.Errorf("transformed = %q", string(out))
	}
}

func TestOversizeRecordFailsScan(t *testing.T) {
	p := compileOne(t, Options{},
		config.PlanOp{Kind: config.OpParse, Framing: "lines"},
	)
	var c collectSinks
	_, err := p.Run(strings.NewReader(strings.Repeat("x", maxRecordBytes+1)), c.sinks())
	if err == nil {
		t.Fatal("expected scan error for oversize record")
	}
}
