package classifier

import (
	"fmt"
	"testing"

	"bistro/internal/config"
	"bistro/internal/pattern"
)

func feed(path string, pats ...string) *config.Feed {
	f := &config.Feed{Name: path, Path: path}
	for _, p := range pats {
		f.Patterns = append(f.Patterns, pattern.MustCompile(p))
	}
	return f
}

func testFeeds() []*config.Feed {
	return []*config.Feed{
		feed("SNMP/BPS", "BPS_poller%i_%Y%m%d%H.csv.gz"),
		feed("SNMP/PPS", "PPS_poller%i_%Y%m%d%H.csv.gz"),
		feed("SNMP/CPU", "CPU_POLL%i_%Y%m%d%H%M.txt"),
		feed("SNMP/MEMORY", "MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz"),
		// A feed with two patterns (old and new naming convention).
		feed("ALARMS", "ALARMHISTORY%i%Y%m%d%H%M.gz", "ALARMHIST2_%i_%Y%m%d%H%M.gz"),
		// A broad wildcard feed (everything CSV-ish on a date).
		feed("CATCHALL", "*_%Y%m%d%H.csv.gz"),
	}
}

func TestClassifySingleFeed(t *testing.T) {
	c := New(testFeeds(), Options{})
	ms := c.Classify("CPU_POLL2_201009251001.txt")
	if len(ms) != 1 || ms[0].Feed.Path != "SNMP/CPU" {
		t.Fatalf("matches = %+v", ms)
	}
	if len(ms[0].Fields.Ints) != 1 || ms[0].Fields.Ints[0] != 2 {
		t.Fatalf("fields = %+v", ms[0].Fields)
	}
}

func TestClassifyMultiFeedMembership(t *testing.T) {
	c := New(testFeeds(), Options{})
	// BPS files also match the wildcard CATCHALL feed.
	paths := c.FeedPaths("BPS_poller1_2010092504.csv.gz")
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want BPS + CATCHALL", paths)
	}
	has := map[string]bool{}
	for _, p := range paths {
		has[p] = true
	}
	if !has["SNMP/BPS"] || !has["CATCHALL"] {
		t.Fatalf("paths = %v", paths)
	}
}

func TestClassifyUnmatched(t *testing.T) {
	c := New(testFeeds(), Options{})
	if ms := c.Classify("core.dump.1234"); len(ms) != 0 {
		t.Fatalf("junk matched: %+v", ms)
	}
	if ms := c.Classify(""); len(ms) != 0 {
		t.Fatalf("empty name matched: %+v", ms)
	}
}

func TestClassifyMultiplePatternsSameFeedMatchOnce(t *testing.T) {
	c := New(testFeeds(), Options{})
	ms := c.Classify("ALARMHIST2_7_201009250451.gz")
	if len(ms) != 1 || ms[0].Feed.Path != "ALARMS" {
		t.Fatalf("matches = %+v", ms)
	}
}

func TestIndexAndLinearAgree(t *testing.T) {
	feeds := testFeeds()
	ci := New(feeds, Options{})
	cl := New(feeds, Options{DisablePrefixIndex: true})
	names := []string{
		"BPS_poller1_2010092504.csv.gz",
		"PPS_poller3_2010092504.csv.gz",
		"CPU_POLL2_201009251001.txt",
		"MEMORY_POLLER1_2010092504_51.csv.gz",
		"ALARMHISTORY92010092504_51.gz",
		"ALARMHISTORY9201009250451.gz",
		"weird_2010092504.csv.gz", // only CATCHALL
		"nonsense",
		"",
		"BPS_pollerX_2010092504.csv.gz", // %i fails
	}
	for _, n := range names {
		a, b := ci.FeedPaths(n), cl.FeedPaths(n)
		am := map[string]bool{}
		for _, p := range a {
			am[p] = true
		}
		if len(a) != len(b) {
			t.Fatalf("%q: index %v vs linear %v", n, a, b)
		}
		for _, p := range b {
			if !am[p] {
				t.Fatalf("%q: index %v vs linear %v", n, a, b)
			}
		}
	}
}

func TestPrefixShadowing(t *testing.T) {
	// Patterns where one literal prefix is a prefix of another must
	// both be candidates.
	feeds := []*config.Feed{
		feed("A", "LOG_%Y%m%d.gz"),
		feed("B", "LOG_EXTRA_%Y%m%d.gz"),
	}
	c := New(feeds, Options{})
	if paths := c.FeedPaths("LOG_20100925.gz"); len(paths) != 1 || paths[0] != "A" {
		t.Fatalf("paths = %v", paths)
	}
	if paths := c.FeedPaths("LOG_EXTRA_20100925.gz"); len(paths) != 1 || paths[0] != "B" {
		t.Fatalf("paths = %v", paths)
	}
}

func TestManyFeedsScale(t *testing.T) {
	var feeds []*config.Feed
	for i := 0; i < 500; i++ {
		feeds = append(feeds, feed(
			fmt.Sprintf("F%03d", i),
			fmt.Sprintf("FEED%03d_poller%%i_%%Y%%m%%d%%H.csv.gz", i),
		))
	}
	c := New(feeds, Options{})
	if c.NumPatterns() != 500 {
		t.Fatalf("patterns = %d", c.NumPatterns())
	}
	paths := c.FeedPaths("FEED123_poller4_2010092504.csv.gz")
	if len(paths) != 1 || paths[0] != "F123" {
		t.Fatalf("paths = %v", paths)
	}
}

func benchFeeds(n int) []*config.Feed {
	var feeds []*config.Feed
	for i := 0; i < n; i++ {
		feeds = append(feeds, feed(
			fmt.Sprintf("F%03d", i),
			fmt.Sprintf("FEED%03d_poller%%i_%%Y%%m%%d%%H.csv.gz", i),
		))
	}
	return feeds
}

func BenchmarkClassifyIndexed100(b *testing.B)  { benchClassify(b, 100, false) }
func BenchmarkClassifyLinear100(b *testing.B)   { benchClassify(b, 100, true) }
func BenchmarkClassifyIndexed1000(b *testing.B) { benchClassify(b, 1000, false) }
func BenchmarkClassifyLinear1000(b *testing.B)  { benchClassify(b, 1000, true) }

func benchClassify(b *testing.B, n int, linear bool) {
	c := New(benchFeeds(n), Options{DisablePrefixIndex: linear})
	name := fmt.Sprintf("FEED%03d_poller4_2010092504.csv.gz", n/2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Classify(name)) != 1 {
			b.Fatal("no match")
		}
	}
}
