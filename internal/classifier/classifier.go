// Package classifier matches incoming filenames to registered consumer
// feeds (SIGMOD'11 §3.2). A file may belong to zero, one, or several
// feeds; unmatched files flow to the feed analyzer's new-feed
// discovery.
//
// With hundreds of feeds and several patterns per feed, running every
// pattern against every filename is wasteful: nearly all patterns start
// with a distinctive literal (the feed name). The classifier therefore
// indexes patterns in a byte trie over their literal prefixes and only
// runs the full matcher on patterns whose prefix is a prefix of the
// filename. Patterns with no literal prefix (leading %s or *) are kept
// in a small always-checked list. The index can be disabled for the E7
// ablation.
package classifier

import (
	"bistro/internal/config"
	"bistro/internal/metrics"
	"bistro/internal/pattern"
)

// Metrics holds the classifier's instrumentation. All fields are
// optional; a nil Metrics (or nil field) costs the hot path nothing
// beyond one pointer test per Classify call.
type Metrics struct {
	// Matched counts Classify calls that matched at least one feed.
	Matched *metrics.Counter
	// Unmatched counts Classify calls no feed claimed.
	Unmatched *metrics.Counter
	// PatternsTried counts full pattern evaluations (the work the
	// prefix index exists to avoid).
	PatternsTried *metrics.Counter
	// PrefixIndexHits counts pattern candidates reached through the
	// prefix trie (vs. the always-checked open list or a disabled
	// index). PatternsTried − PrefixIndexHits is the unindexed residue.
	PrefixIndexHits *metrics.Counter
}

// NewMetrics registers the classifier metric families on r using the
// canonical names catalogued in docs/OBSERVABILITY.md.
func NewMetrics(r *metrics.Registry) *Metrics {
	files := r.CounterVec("bistro_classifier_files_total",
		"Classified files by result.", "result")
	return &Metrics{
		Matched:   files.With("matched"),
		Unmatched: files.With("unmatched"),
		PatternsTried: r.Counter("bistro_classifier_patterns_tried_total",
			"Full pattern evaluations performed."),
		PrefixIndexHits: r.Counter("bistro_classifier_prefix_index_hits_total",
			"Pattern candidates reached via the literal-prefix trie."),
	}
}

// Match records one successful file-to-feed classification.
type Match struct {
	// Feed is the matched feed definition.
	Feed *config.Feed
	// Pattern is the specific pattern that matched.
	Pattern *pattern.Pattern
	// Fields holds the values extracted from the filename.
	Fields *pattern.Fields
}

// Options configure a Classifier.
type Options struct {
	// DisablePrefixIndex forces the classifier to try every pattern on
	// every file (the E7 ablation baseline).
	DisablePrefixIndex bool
	// Metrics, when non-nil, receives match-rate and index-efficiency
	// counters.
	Metrics *Metrics
}

// entry pairs a pattern with its owning feed.
type entry struct {
	feed *config.Feed
	pat  *pattern.Pattern
}

// node is one trie node keyed by prefix bytes.
type node struct {
	children map[byte]*node
	// entries are patterns whose full literal prefix ends exactly here.
	entries []entry
}

// Classifier matches filenames against a fixed set of feed patterns.
// It is immutable after construction and safe for concurrent use.
type Classifier struct {
	opts Options
	all  []entry // every pattern, used when the index is disabled
	root *node
	// open holds patterns with an empty literal prefix.
	open []entry
}

// New builds a classifier over the given feeds.
func New(feeds []*config.Feed, opts Options) *Classifier {
	c := &Classifier{opts: opts, root: &node{}}
	for _, f := range feeds {
		for _, p := range f.Patterns {
			e := entry{feed: f, pat: p}
			c.all = append(c.all, e)
			prefix, _ := p.LiteralPrefix()
			if prefix == "" {
				c.open = append(c.open, e)
				continue
			}
			n := c.root
			for i := 0; i < len(prefix); i++ {
				if n.children == nil {
					n.children = make(map[byte]*node)
				}
				next, ok := n.children[prefix[i]]
				if !ok {
					next = &node{}
					n.children[prefix[i]] = next
				}
				n = next
			}
			n.entries = append(n.entries, e)
		}
	}
	return c
}

// NumPatterns returns the number of indexed patterns.
func (c *Classifier) NumPatterns() int { return len(c.all) }

// Classify returns every feed match for name, in a deterministic order
// for a given classifier and filename. A feed matches at most once even
// if several of its patterns match; the first matching pattern wins.
func (c *Classifier) Classify(name string) []Match {
	var out []Match
	// tried/indexHits accumulate locally; the hot path pays at most a
	// handful of atomic adds per call, at the end.
	var tried, indexHits int64
	seen := make(map[*config.Feed]bool)
	try := func(e entry) {
		if seen[e.feed] {
			return
		}
		tried++
		if fields, ok := e.pat.Match(name); ok {
			seen[e.feed] = true
			out = append(out, Match{Feed: e.feed, Pattern: e.pat, Fields: fields})
		}
	}
	if c.opts.DisablePrefixIndex {
		for _, e := range c.all {
			try(e)
		}
		c.countClassify(out, tried, 0)
		return out
	}
	for _, e := range c.open {
		try(e)
	}
	n := c.root
	for i := 0; i < len(name) && n != nil; i++ {
		n = n.children[name[i]]
		if n == nil {
			break
		}
		indexHits += int64(len(n.entries))
		for _, e := range n.entries {
			try(e)
		}
	}
	c.countClassify(out, tried, indexHits)
	return out
}

// countClassify flushes one Classify call's accumulated counts.
func (c *Classifier) countClassify(out []Match, tried, indexHits int64) {
	m := c.opts.Metrics
	if m == nil {
		return
	}
	if len(out) > 0 {
		m.Matched.Inc()
	} else {
		m.Unmatched.Inc()
	}
	m.PatternsTried.Add(tried)
	m.PrefixIndexHits.Add(indexHits)
}

// FeedPaths is a convenience that returns just the matched feed paths.
func (c *Classifier) FeedPaths(name string) []string {
	ms := c.Classify(name)
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Feed.Path
	}
	return out
}
