// Package classifier matches incoming filenames to registered consumer
// feeds (SIGMOD'11 §3.2). A file may belong to zero, one, or several
// feeds; unmatched files flow to the feed analyzer's new-feed
// discovery.
//
// With hundreds of feeds and several patterns per feed, running every
// pattern against every filename is wasteful: nearly all patterns start
// with a distinctive literal (the feed name). The classifier therefore
// indexes patterns in a byte trie over their literal prefixes and only
// runs the full matcher on patterns whose prefix is a prefix of the
// filename. Patterns with no literal prefix (leading %s or *) are kept
// in a small always-checked list. The index can be disabled for the E7
// ablation.
package classifier

import (
	"bistro/internal/config"
	"bistro/internal/pattern"
)

// Match records one successful file-to-feed classification.
type Match struct {
	// Feed is the matched feed definition.
	Feed *config.Feed
	// Pattern is the specific pattern that matched.
	Pattern *pattern.Pattern
	// Fields holds the values extracted from the filename.
	Fields *pattern.Fields
}

// Options configure a Classifier.
type Options struct {
	// DisablePrefixIndex forces the classifier to try every pattern on
	// every file (the E7 ablation baseline).
	DisablePrefixIndex bool
}

// entry pairs a pattern with its owning feed.
type entry struct {
	feed *config.Feed
	pat  *pattern.Pattern
}

// node is one trie node keyed by prefix bytes.
type node struct {
	children map[byte]*node
	// entries are patterns whose full literal prefix ends exactly here.
	entries []entry
}

// Classifier matches filenames against a fixed set of feed patterns.
// It is immutable after construction and safe for concurrent use.
type Classifier struct {
	opts Options
	all  []entry // every pattern, used when the index is disabled
	root *node
	// open holds patterns with an empty literal prefix.
	open []entry
}

// New builds a classifier over the given feeds.
func New(feeds []*config.Feed, opts Options) *Classifier {
	c := &Classifier{opts: opts, root: &node{}}
	for _, f := range feeds {
		for _, p := range f.Patterns {
			e := entry{feed: f, pat: p}
			c.all = append(c.all, e)
			prefix, _ := p.LiteralPrefix()
			if prefix == "" {
				c.open = append(c.open, e)
				continue
			}
			n := c.root
			for i := 0; i < len(prefix); i++ {
				if n.children == nil {
					n.children = make(map[byte]*node)
				}
				next, ok := n.children[prefix[i]]
				if !ok {
					next = &node{}
					n.children[prefix[i]] = next
				}
				n = next
			}
			n.entries = append(n.entries, e)
		}
	}
	return c
}

// NumPatterns returns the number of indexed patterns.
func (c *Classifier) NumPatterns() int { return len(c.all) }

// Classify returns every feed match for name, in a deterministic order
// for a given classifier and filename. A feed matches at most once even
// if several of its patterns match; the first matching pattern wins.
func (c *Classifier) Classify(name string) []Match {
	var out []Match
	seen := make(map[*config.Feed]bool)
	try := func(e entry) {
		if seen[e.feed] {
			return
		}
		if fields, ok := e.pat.Match(name); ok {
			seen[e.feed] = true
			out = append(out, Match{Feed: e.feed, Pattern: e.pat, Fields: fields})
		}
	}
	if c.opts.DisablePrefixIndex {
		for _, e := range c.all {
			try(e)
		}
		return out
	}
	for _, e := range c.open {
		try(e)
	}
	n := c.root
	for i := 0; i < len(name) && n != nil; i++ {
		n = n.children[name[i]]
		if n == nil {
			break
		}
		for _, e := range n.entries {
			try(e)
		}
	}
	return out
}

// FeedPaths is a convenience that returns just the matched feed paths.
func (c *Classifier) FeedPaths(name string) []string {
	ms := c.Classify(name)
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Feed.Path
	}
	return out
}
