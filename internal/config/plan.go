package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Plan operator kinds. A feed's plan {} block declares a chain of
// typed operators the ingest workers run in place of the fixed
// classify→normalize path (INGESTBASE-style declarative ingestion).
// The chain has a byte stage (decompress, split) followed by an
// optional record stage (parse, then validate/extract/enrich/route in
// written order). Feeds without a plan keep the implicit default
// plan: the historical rename+(de)compress path, byte for byte.
type PlanOpKind int

const (
	// OpDecompress decodes the input stream (gzip or bzip2) before any
	// other operator sees it.
	OpDecompress PlanOpKind = iota
	// OpSplit tees the whole byte stream (as of its position in the
	// chain) into a derived feed.
	OpSplit
	// OpParse frames the stream into records: lines, csv, or json
	// (newline-delimited objects).
	OpParse
	// OpValidate rejects records violating its rules to the plan
	// quarantine file.
	OpValidate
	// OpExtract pulls a record field into the named-field namespace
	// (the first record's values also join the file's pattern.Fields
	// strings, so normalize templates can consume them).
	OpExtract
	// OpEnrich joins records against a cached side table keyed by an
	// extracted field, at ingest or deferred to delivery.
	OpEnrich
	// OpRoute sends records whose field matches a case into derived
	// feeds; unmatched records follow default, or stay in the primary.
	OpRoute
)

func (k PlanOpKind) String() string {
	switch k {
	case OpDecompress:
		return "decompress"
	case OpSplit:
		return "split"
	case OpParse:
		return "parse"
	case OpValidate:
		return "validate"
	case OpExtract:
		return "extract"
	case OpEnrich:
		return "enrich"
	case OpRoute:
		return "route"
	}
	return "unknown"
}

// PlanRule is one validate rule.
type PlanRule struct {
	// Kind is "columns", "utf8", "require", or "numeric".
	Kind string
	// Count is the exact column count for "columns".
	Count int
	// Field names the extracted field for "require"/"numeric".
	Field string
}

// PlanRouteCase maps one field value to a derived feed.
type PlanRouteCase struct {
	Value  string
	Target string
}

// PlanOp is one operator in a plan chain. Only the fields its Kind
// reads are set.
type PlanOp struct {
	Kind PlanOpKind
	// Codec is the decompress codec: "gzip" or "bzip2".
	Codec string
	// Framing is the parse framing: "lines", "csv", or "json".
	Framing string
	// Rules are the validate rules.
	Rules []PlanRule
	// Field is the extract name, the enrich join key, or the route
	// field.
	Field string
	// Column is the 1-based source column for extract over lines/csv
	// framing (0 when Key is set).
	Column int
	// Key is the source object key for extract over json framing.
	Key string
	// Table is the enrich side-table path (CSV: key column first,
	// appended values after), resolved relative to the server base dir.
	Table string
	// AtDelivery defers the enrich join to the delivery engine instead
	// of running it inside the ingest workers.
	AtDelivery bool
	// Target is the split derived feed, or the route default ("" =
	// unmatched records stay in the primary output).
	Target string
	// Cases are the route cases, in written order.
	Cases []PlanRouteCase
}

// PlanSpec is a feed's plan {} block: the operator chain in written
// order. Validation (operator wiring, derived-feed existence, cycle
// detection) happens at resolve time so Parse rejects broken plans.
type PlanSpec struct {
	Ops []PlanOp
}

// Targets returns the derived feeds this plan writes into (split
// targets, route cases, route defaults), deduplicated and sorted.
func (ps *PlanSpec) Targets() []string {
	set := make(map[string]bool)
	for _, op := range ps.Ops {
		switch op.Kind {
		case OpSplit:
			set[op.Target] = true
		case OpRoute:
			for _, c := range op.Cases {
				set[c.Target] = true
			}
			if op.Target != "" {
				set[op.Target] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// planSpec parses a plan { ... } block. Structural rules (operator
// ordering, field wiring, target existence) are checked in
// resolvePlans, not here, so error messages can see the whole config.
func (p *parser) planSpec(feedPath string) (*PlanSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &PlanSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		var op PlanOp
		switch kw {
		case "decompress":
			op.Kind = OpDecompress
			codec, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if codec != "gzip" && codec != "bzip2" {
				return nil, p.errPrevf("feed %s plan: unknown decompress codec %q", feedPath, codec)
			}
			op.Codec = codec
		case "split":
			op.Kind = OpSplit
			if op.Target, err = p.path(); err != nil {
				return nil, err
			}
		case "parse":
			op.Kind = OpParse
			framing, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if framing != "lines" && framing != "csv" && framing != "json" {
				return nil, p.errPrevf("feed %s plan: unknown parse framing %q", feedPath, framing)
			}
			op.Framing = framing
		case "validate":
			op.Kind = OpValidate
			if op.Rules, err = p.planRules(feedPath); err != nil {
				return nil, err
			}
		case "extract":
			op.Kind = OpExtract
			if op.Field, err = p.expect(tokIdent); err != nil {
				return nil, err
			}
			switch p.tok.kind {
			case tokNumber:
				if op.Column, err = p.integer(); err != nil {
					return nil, err
				}
				if op.Column < 1 {
					return nil, p.errPrevf("feed %s plan: extract %s: column must be >= 1", feedPath, op.Field)
				}
			case tokString:
				if op.Key, err = p.expect(tokString); err != nil {
					return nil, err
				}
			default:
				return nil, p.errf("feed %s plan: extract %s: expected a column number or json key string", feedPath, op.Field)
			}
		case "enrich":
			op.Kind = OpEnrich
			if err := p.planEnrich(feedPath, &op); err != nil {
				return nil, err
			}
		case "route":
			op.Kind = OpRoute
			if err := p.planRoute(feedPath, &op); err != nil {
				return nil, err
			}
		default:
			return nil, p.errPrevf("feed %s plan: unknown operator %q", feedPath, kw)
		}
		spec.Ops = append(spec.Ops, op)
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if len(spec.Ops) == 0 {
		return nil, fmt.Errorf("config: feed %s plan: empty plan block", feedPath)
	}
	return spec, nil
}

// planRules parses a validate { ... } rule block.
func (p *parser) planRules(feedPath string) ([]PlanRule, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var rules []PlanRule
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		var r PlanRule
		r.Kind = kw
		switch kw {
		case "columns":
			if r.Count, err = p.integer(); err != nil {
				return nil, err
			}
			if r.Count < 1 {
				return nil, p.errPrevf("feed %s plan: validate columns must be >= 1", feedPath)
			}
		case "utf8":
			// No operand.
		case "require", "numeric":
			if r.Field, err = p.expect(tokIdent); err != nil {
				return nil, err
			}
		default:
			return nil, p.errPrevf("feed %s plan: unknown validate rule %q", feedPath, kw)
		}
		rules = append(rules, r)
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("config: feed %s plan: empty validate block", feedPath)
	}
	return rules, nil
}

// planEnrich parses an enrich { table "..." key FIELD [at ...] }
// block.
func (p *parser) planEnrich(feedPath string, op *PlanOp) error {
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		switch kw {
		case "table":
			if op.Table, err = p.expect(tokString); err != nil {
				return err
			}
		case "key":
			if op.Field, err = p.expect(tokIdent); err != nil {
				return err
			}
		case "at":
			where, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			switch where {
			case "ingest":
				op.AtDelivery = false
			case "delivery":
				op.AtDelivery = true
			default:
				return p.errPrevf("feed %s plan: enrich at must be ingest or delivery, got %q", feedPath, where)
			}
		default:
			return p.errPrevf("feed %s plan: unknown enrich statement %q", feedPath, kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return err
	}
	if op.Table == "" {
		return fmt.Errorf("config: feed %s plan: enrich needs a table", feedPath)
	}
	if op.Field == "" {
		return fmt.Errorf("config: feed %s plan: enrich needs a key field", feedPath)
	}
	return nil
}

// planRoute parses: FIELD { "value" TARGET ... [default TARGET] }
func (p *parser) planRoute(feedPath string, op *PlanOp) error {
	var err error
	if op.Field, err = p.expect(tokIdent); err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	seen := make(map[string]bool)
	for p.tok.kind != tokRBrace {
		switch p.tok.kind {
		case tokString:
			val, err := p.expect(tokString)
			if err != nil {
				return err
			}
			if seen[val] {
				return p.errPrevf("feed %s plan: route %s: duplicate case %q", feedPath, op.Field, val)
			}
			seen[val] = true
			target, err := p.path()
			if err != nil {
				return err
			}
			op.Cases = append(op.Cases, PlanRouteCase{Value: val, Target: target})
		case tokIdent:
			kw, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if kw != "default" {
				return p.errPrevf("feed %s plan: route %s: expected a case string or default, got %q", feedPath, op.Field, kw)
			}
			if op.Target != "" {
				return p.errPrevf("feed %s plan: route %s: duplicate default", feedPath, op.Field)
			}
			if op.Target, err = p.path(); err != nil {
				return err
			}
		default:
			return p.errf("feed %s plan: route %s: expected a case string or default", feedPath, op.Field)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return err
	}
	if len(op.Cases) == 0 {
		return fmt.Errorf("config: feed %s plan: route %s has no cases", feedPath, op.Field)
	}
	return nil
}

// resolvePlans type-checks every plan's operator wiring, verifies
// derived-feed targets exist, and rejects cycles in the feed→target
// graph. Runs inside resolve after feed uniqueness is established, so
// this is the "compile at config-resolve time" gate: a Config that
// parses has well-formed, acyclic plans.
func resolvePlans(cfg *Config, leaves map[string]bool) error {
	derivedTarget := make(map[string]bool)
	for _, f := range cfg.Feeds {
		if f.Plan == nil {
			continue
		}
		if err := checkPlanOps(f, leaves); err != nil {
			return err
		}
		for _, t := range f.Plan.Targets() {
			derivedTarget[t] = true
		}
	}
	// A pattern-less feed only ever receives derived traffic; one that
	// no plan targets can never receive a file at all.
	for _, f := range cfg.Feeds {
		if len(f.Patterns) == 0 && !derivedTarget[f.Path] {
			return fmt.Errorf("config: feed %s has no patterns and no plan routes into it", f.Path)
		}
	}
	return checkPlanCycles(cfg)
}

// checkPlanOps validates one feed's operator chain: stage ordering
// (byte ops before parse, record ops after), at-most-once decompress
// and parse, field wiring (route/enrich/require/numeric fields must be
// extracted first), and target sanity.
func checkPlanOps(f *Feed, leaves map[string]bool) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("config: feed %s plan: %s", f.Path, fmt.Sprintf(format, args...))
	}
	if f.Compress != CompressNone && f.Compress != CompressGzip {
		return bad("compress %s cannot re-encode plan output (use none or gzip)", f.Compress)
	}
	checkTarget := func(t string) error {
		if t == f.Path {
			return bad("routes into itself")
		}
		if !leaves[t] {
			return bad("unknown derived feed %q", t)
		}
		return nil
	}
	var framing string
	seenDecompress := false
	fields := make(map[string]bool)
	for i, op := range f.Plan.Ops {
		switch op.Kind {
		case OpDecompress:
			if i != 0 {
				return bad("decompress must be the first operator")
			}
			if seenDecompress {
				return bad("duplicate decompress")
			}
			seenDecompress = true
		case OpSplit:
			if framing != "" {
				return bad("split must precede parse (it tees the byte stream)")
			}
			if err := checkTarget(op.Target); err != nil {
				return err
			}
		case OpParse:
			if framing != "" {
				return bad("duplicate parse")
			}
			framing = op.Framing
		case OpValidate:
			if framing == "" {
				return bad("validate needs a parse operator before it")
			}
			for _, r := range op.Rules {
				switch r.Kind {
				case "columns":
					if framing != "csv" {
						return bad("validate columns requires csv framing")
					}
				case "require", "numeric":
					if !fields[r.Field] {
						return bad("validate %s %s: field not extracted", r.Kind, r.Field)
					}
				}
			}
		case OpExtract:
			if framing == "" {
				return bad("extract needs a parse operator before it")
			}
			if op.Key != "" && framing != "json" {
				return bad("extract %s: json key needs json framing", op.Field)
			}
			if op.Column > 0 && framing == "json" {
				return bad("extract %s: json framing extracts by key, not column", op.Field)
			}
			if fields[op.Field] {
				return bad("duplicate extract %s", op.Field)
			}
			fields[op.Field] = true
		case OpEnrich:
			if framing == "" {
				return bad("enrich needs a parse operator before it")
			}
			if !fields[op.Field] {
				return bad("enrich key %s: field not extracted", op.Field)
			}
			if op.AtDelivery && i != len(f.Plan.Ops)-1 {
				return bad("enrich at delivery must be the last operator")
			}
		case OpRoute:
			if framing == "" {
				return bad("route needs a parse operator before it")
			}
			if !fields[op.Field] {
				return bad("route %s: field not extracted", op.Field)
			}
			for _, c := range op.Cases {
				if err := checkTarget(c.Target); err != nil {
					return err
				}
			}
			if op.Target != "" {
				if err := checkTarget(op.Target); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkPlanCycles rejects cycles in the derived-feed graph (feed →
// split/route target). Derived files run their own feed's plan, so a
// cycle would recurse forever at ingest time.
func checkPlanCycles(cfg *Config) error {
	edges := make(map[string][]string)
	for _, f := range cfg.Feeds {
		if f.Plan != nil {
			edges[f.Path] = f.Plan.Targets()
		}
	}
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int)
	var stack []string
	var walk func(string) error
	walk = func(feed string) error {
		switch state[feed] {
		case done:
			return nil
		case visiting:
			i := 0
			for ; i < len(stack) && stack[i] != feed; i++ {
			}
			return fmt.Errorf("config: plan cycle: %s -> %s",
				strings.Join(stack[i:], " -> "), feed)
		}
		state[feed] = visiting
		stack = append(stack, feed)
		for _, t := range edges[feed] {
			if err := walk(t); err != nil {
				return err
			}
		}
		stack = stack[:len(stack)-1]
		state[feed] = done
		return nil
	}
	feeds := make([]string, 0, len(edges))
	for f := range edges {
		feeds = append(feeds, f)
	}
	sort.Strings(feeds)
	for _, f := range feeds {
		if err := walk(f); err != nil {
			return err
		}
	}
	return nil
}

// writePlan renders a plan block in the configuration language; part
// of Format's round-trip contract.
func writePlan(b *strings.Builder, spec *PlanSpec, ind string) {
	fmt.Fprintf(b, "%splan {\n", ind)
	in := ind + "    "
	for _, op := range spec.Ops {
		switch op.Kind {
		case OpDecompress:
			fmt.Fprintf(b, "%sdecompress %s\n", in, op.Codec)
		case OpSplit:
			fmt.Fprintf(b, "%ssplit %s\n", in, op.Target)
		case OpParse:
			fmt.Fprintf(b, "%sparse %s\n", in, op.Framing)
		case OpValidate:
			fmt.Fprintf(b, "%svalidate {\n", in)
			for _, r := range op.Rules {
				switch r.Kind {
				case "columns":
					fmt.Fprintf(b, "%s    columns %d\n", in, r.Count)
				case "utf8":
					fmt.Fprintf(b, "%s    utf8\n", in)
				default:
					fmt.Fprintf(b, "%s    %s %s\n", in, r.Kind, r.Field)
				}
			}
			fmt.Fprintf(b, "%s}\n", in)
		case OpExtract:
			if op.Key != "" {
				fmt.Fprintf(b, "%sextract %s %s\n", in, op.Field, quote(op.Key))
			} else {
				fmt.Fprintf(b, "%sextract %s %s\n", in, op.Field, strconv.Itoa(op.Column))
			}
		case OpEnrich:
			fmt.Fprintf(b, "%senrich {\n%s    table %s\n%s    key %s\n", in, in, quote(op.Table), in, op.Field)
			if op.AtDelivery {
				fmt.Fprintf(b, "%s    at delivery\n", in)
			}
			fmt.Fprintf(b, "%s}\n", in)
		case OpRoute:
			fmt.Fprintf(b, "%sroute %s {\n", in, op.Field)
			for _, c := range op.Cases {
				fmt.Fprintf(b, "%s    %s %s\n", in, quote(c.Value), c.Target)
			}
			if op.Target != "" {
				fmt.Fprintf(b, "%s    default %s\n", in, op.Target)
			}
			fmt.Fprintf(b, "%s}\n", in)
		}
	}
	fmt.Fprintf(b, "%s}\n", ind)
}
