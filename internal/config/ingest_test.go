package config

import (
	"testing"
	"time"
)

func TestIngestBlock(t *testing.T) {
	src := `
ingest {
    workers 4
    queue 128
    group_commit {
        max_batch 64
        max_delay 2ms
    }
}

feed F { pattern "f_%Y%m%d.gz" }
`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Ingest
	if sp == nil {
		t.Fatal("ingest block not parsed")
	}
	if sp.Workers != 4 || sp.Queue != 128 {
		t.Fatalf("workers/queue = %d/%d, want 4/128", sp.Workers, sp.Queue)
	}
	gc := sp.GroupCommit
	if gc == nil || gc.MaxBatch != 64 || gc.MaxDelay != 2*time.Millisecond {
		t.Fatalf("group_commit = %+v, want max_batch 64 max_delay 2ms", gc)
	}
}

func TestIngestBlockDefaults(t *testing.T) {
	cfg, err := Parse(`ingest { queue 8 }` + "\nfeed F { pattern \"f_%Y.gz\" }")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ingest.Workers != 1 {
		t.Fatalf("workers default = %d, want 1", cfg.Ingest.Workers)
	}
	if cfg.Ingest.GroupCommit != nil {
		t.Fatalf("group_commit should be nil when absent: %+v", cfg.Ingest.GroupCommit)
	}
}

func TestIngestBlockRoundTrip(t *testing.T) {
	for _, src := range []string{
		"ingest {\n    workers 4\n    queue 128\n    group_commit {\n        max_batch 64\n        max_delay 2ms\n    }\n}\n\nfeed F { pattern \"f_%Y.gz\" }",
		"ingest {\n    workers 2\n    group_commit {\n        max_delay 500us\n    }\n}\n\nfeed F { pattern \"f_%Y.gz\" }",
		"ingest {\n    workers 8\n    group_commit {\n        max_batch 16\n    }\n}\n\nfeed F { pattern \"f_%Y.gz\" }",
	} {
		orig, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		text := Format(orig)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted config does not parse: %v\n%s", err, text)
		}
		a, b := orig.Ingest, back.Ingest
		if b == nil || a.Workers != b.Workers || a.Queue != b.Queue {
			t.Fatalf("ingest lost in round trip:\n%+v\n%+v", a, b)
		}
		ga, gb := a.GroupCommit, b.GroupCommit
		if (ga == nil) != (gb == nil) {
			t.Fatalf("group_commit presence lost: %+v vs %+v", ga, gb)
		}
		if ga != nil && (ga.MaxBatch != gb.MaxBatch || ga.MaxDelay != gb.MaxDelay) {
			t.Fatalf("group_commit lost in round trip:\n%+v\n%+v", ga, gb)
		}
		if again := Format(back); again != text {
			t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, again)
		}
	}
}

func TestIngestBlockErrors(t *testing.T) {
	feed := "\nfeed F { pattern \"f_%Y.gz\" }"
	for _, src := range []string{
		`ingest { workers 0 }` + feed,
		`ingest { queue 0 }` + feed,
		`ingest { bogus 3 }` + feed,
		`ingest { group_commit { } }` + feed,
		`ingest { group_commit { max_batch 0 } }` + feed,
		`ingest { group_commit { max_delay 0s } }` + feed,
		`ingest { group_commit { bogus 1 } }` + feed,
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("bad ingest block accepted: %s", src)
		}
	}
}
