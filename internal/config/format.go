package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Format renders a Config back into configuration-language text that
// Parse accepts, reconstructing the feed-group hierarchy from feed
// paths. The analyzer uses it to emit ready-to-install snippets for
// suggested definitions; operators use it to normalize hand-edited
// files. Formatting then parsing yields an equivalent configuration.
func Format(cfg *Config) string {
	var b strings.Builder
	if cfg.Window > 0 {
		fmt.Fprintf(&b, "window %s\n", formatDuration(cfg.Window))
	}
	if cfg.LandingDir != "" && cfg.LandingDir != "landing" {
		fmt.Fprintf(&b, "landing %s\n", quote(cfg.LandingDir))
	}
	if cfg.StagingDir != "" && cfg.StagingDir != "staging" {
		fmt.Fprintf(&b, "staging %s\n", quote(cfg.StagingDir))
	}
	if cfg.ArchiveDir != "" {
		fmt.Fprintf(&b, "archive %s\n", quote(cfg.ArchiveDir))
	}
	if cfg.QuarantineDir != "" && cfg.QuarantineDir != "quarantine" {
		fmt.Fprintf(&b, "quarantine %s\n", quote(cfg.QuarantineDir))
	}
	if b.Len() > 0 {
		b.WriteString("\n")
	}

	if sp := cfg.Scheduler; sp != nil {
		b.WriteString("scheduler {\n")
		if sp.Migrate {
			b.WriteString("    migrate on\n")
		}
		for _, part := range sp.Partitions {
			fmt.Fprintf(&b, "    partition %s {\n        workers %d\n", part.Name, part.Workers)
			if part.Backfill > 0 {
				fmt.Fprintf(&b, "        backfill %d\n", part.Backfill)
			}
			if part.Policy != "" && part.Policy != "edf" {
				fmt.Fprintf(&b, "        policy %s\n", part.Policy)
			}
			if part.MaxService > 0 {
				fmt.Fprintf(&b, "        maxservice %s\n", formatDuration(part.MaxService))
			}
			b.WriteString("    }\n")
		}
		b.WriteString("}\n\n")
	}

	if cfg.Backoff != nil {
		writeBackoff(&b, cfg.Backoff, "")
		b.WriteString("\n")
	}

	if cfg.Admin != nil {
		fmt.Fprintf(&b, "admin {\n    listen %s\n}\n\n", quote(cfg.Admin.Listen))
	}

	if sp := cfg.HTTP; sp != nil {
		b.WriteString("http {\n")
		fmt.Fprintf(&b, "    listen %s\n", quote(sp.Listen))
		if sp.MaxBody > 0 {
			fmt.Fprintf(&b, "    max_body %d\n", sp.MaxBody)
		}
		for _, pr := range sp.Principals {
			fmt.Fprintf(&b, "    principal %s {\n        token %s\n", pr.Name, quote(pr.Token))
			subs := append([]string{}, pr.Subscriptions...)
			sort.Strings(subs)
			for _, path := range subs {
				fmt.Fprintf(&b, "        feed %s\n", path)
			}
			b.WriteString("    }\n")
		}
		b.WriteString("}\n\n")
	}

	if sp := cfg.Ingest; sp != nil {
		b.WriteString("ingest {\n")
		if sp.Workers > 0 {
			fmt.Fprintf(&b, "    workers %d\n", sp.Workers)
		}
		if sp.Queue > 0 {
			fmt.Fprintf(&b, "    queue %d\n", sp.Queue)
		}
		if gc := sp.GroupCommit; gc != nil {
			b.WriteString("    group_commit {\n")
			if gc.MaxBatch > 0 {
				fmt.Fprintf(&b, "        max_batch %d\n", gc.MaxBatch)
			}
			if gc.MaxDelay > 0 {
				fmt.Fprintf(&b, "        max_delay %s\n", formatDuration(gc.MaxDelay))
			}
			b.WriteString("    }\n")
		}
		b.WriteString("}\n\n")
	}

	if sp := cfg.Cluster; sp != nil {
		b.WriteString("cluster {\n")
		if sp.Self != "" {
			fmt.Fprintf(&b, "    self %s\n", quote(sp.Self))
		}
		if sp.VNodes > 0 {
			fmt.Fprintf(&b, "    vnodes %d\n", sp.VNodes)
		}
		if fo := sp.Failover; fo != nil {
			b.WriteString("    failover {\n")
			if fo.Lease > 0 {
				fmt.Fprintf(&b, "        lease %s\n", formatDuration(fo.Lease))
			}
			if fo.Heartbeat > 0 {
				fmt.Fprintf(&b, "        heartbeat %s\n", formatDuration(fo.Heartbeat))
			}
			if fo.Auto {
				b.WriteString("        auto on\n")
			}
			b.WriteString("    }\n")
		}
		for _, n := range sp.Nodes {
			fmt.Fprintf(&b, "    node %s {\n        addr %s\n", quote(n.Name), quote(n.Addr))
			if n.Standby != "" {
				fmt.Fprintf(&b, "        standby %s\n", quote(n.Standby))
			}
			b.WriteString("    }\n")
		}
		b.WriteString("}\n\n")
	}

	if sp := cfg.Replay; sp != nil {
		b.WriteString("replay {\n")
		if sp.Rate > 0 {
			fmt.Fprintf(&b, "    rate %d\n", sp.Rate)
		}
		if sp.Workers > 0 {
			fmt.Fprintf(&b, "    partition {\n        workers %d\n    }\n", sp.Workers)
		}
		if sp.NoManifest {
			b.WriteString("    manifest off\n")
		}
		b.WriteString("}\n\n")
	}

	if sp := cfg.Channels; sp != nil {
		b.WriteString("channels {\n")
		for _, g := range sp.Groups {
			fmt.Fprintf(&b, "    group %s {\n        feed %s\n", g.Name, g.Feed)
			for _, m := range g.Members {
				fmt.Fprintf(&b, "        member %s\n", m)
			}
			b.WriteString("    }\n")
		}
		b.WriteString("}\n\n")
	}

	// Rebuild the hierarchy: a trie of path segments.
	root := &groupNode{children: map[string]*groupNode{}}
	for _, f := range cfg.Feeds {
		parts := splitPath(f.Path)
		n := root
		for _, part := range parts[:len(parts)-1] {
			child := n.children[part]
			if child == nil {
				child = &groupNode{name: part, children: map[string]*groupNode{}}
				n.children[part] = child
				n.order = append(n.order, part)
			}
			n = child
		}
		n.feeds = append(n.feeds, f)
	}
	writeGroup(&b, root, 0)

	for _, s := range cfg.Subscribers {
		writeSubscriber(&b, s)
	}
	return b.String()
}

type groupNode struct {
	name     string
	children map[string]*groupNode
	order    []string
	feeds    []*Feed
}

func writeGroup(b *strings.Builder, n *groupNode, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, f := range n.feeds {
		fmt.Fprintf(b, "%sfeed %s {\n", ind, f.Name)
		for _, p := range f.Patterns {
			fmt.Fprintf(b, "%s    pattern %s\n", ind, quote(p.String()))
		}
		if f.Normalize != nil {
			fmt.Fprintf(b, "%s    normalize %s\n", ind, quote(f.Normalize.String()))
		}
		if f.Compress != CompressNone {
			fmt.Fprintf(b, "%s    compress %s\n", ind, f.Compress)
		}
		if f.ExpectPeriod > 0 {
			fmt.Fprintf(b, "%s    expect %s %d\n", ind, formatDuration(f.ExpectPeriod), f.ExpectSources)
		}
		if f.Priority != 0 {
			fmt.Fprintf(b, "%s    priority %d\n", ind, f.Priority)
		}
		if f.Plan != nil {
			writePlan(b, f.Plan, ind+"    ")
		}
		fmt.Fprintf(b, "%s}\n", ind)
	}
	for _, name := range n.order {
		child := n.children[name]
		fmt.Fprintf(b, "%sfeedgroup %s {\n", ind, name)
		writeGroup(b, child, depth+1)
		fmt.Fprintf(b, "%s}\n", ind)
	}
	if depth == 0 && (len(n.feeds) > 0 || len(n.order) > 0) {
		b.WriteString("\n")
	}
}

func writeSubscriber(b *strings.Builder, s *Subscriber) {
	fmt.Fprintf(b, "subscriber %s {\n", s.Name)
	if s.Host != "" {
		fmt.Fprintf(b, "    host %s\n", quote(s.Host))
	}
	if s.Dest != "" {
		fmt.Fprintf(b, "    dest %s\n", quote(s.Dest))
	}
	subs := append([]string{}, s.Subscriptions...)
	sort.Strings(subs)
	for _, path := range subs {
		fmt.Fprintf(b, "    subscribe %s\n", path)
	}
	if s.Method != MethodPush {
		fmt.Fprintf(b, "    method %s\n", s.Method)
	}
	switch s.Trigger.Mode {
	case TriggerPerFile:
		fmt.Fprintf(b, "    trigger perfile%s exec %s\n", remoteWord(s.Trigger), quote(s.Trigger.Exec))
	case TriggerBatch:
		fmt.Fprintf(b, "    trigger batch")
		if s.Trigger.Count > 0 {
			fmt.Fprintf(b, " count %d", s.Trigger.Count)
		}
		if s.Trigger.Timeout > 0 {
			fmt.Fprintf(b, " timeout %s", formatDuration(s.Trigger.Timeout))
		}
		fmt.Fprintf(b, "%s exec %s\n", remoteWord(s.Trigger), quote(s.Trigger.Exec))
	}
	if s.Retry != 30*time.Second && s.Retry > 0 {
		fmt.Fprintf(b, "    retry %s\n", formatDuration(s.Retry))
	}
	if s.Class != "" {
		fmt.Fprintf(b, "    class %s\n", s.Class)
	}
	if s.Backoff != nil {
		writeBackoff(b, s.Backoff, "    ")
	}
	fmt.Fprintf(b, "}\n\n")
}

// writeBackoff renders a backoff block (only the written fields).
func writeBackoff(b *strings.Builder, sp *BackoffSpec, ind string) {
	fmt.Fprintf(b, "%sbackoff {\n", ind)
	if sp.Base > 0 {
		fmt.Fprintf(b, "%s    base %s\n", ind, formatDuration(sp.Base))
	}
	if sp.Max > 0 {
		fmt.Fprintf(b, "%s    max %s\n", ind, formatDuration(sp.Max))
	}
	if sp.Multiplier > 0 {
		fmt.Fprintf(b, "%s    multiplier %s\n", ind, strconv.FormatFloat(sp.Multiplier, 'g', -1, 64))
	}
	if sp.JitterSet {
		v := "on"
		if sp.NoJitter {
			v = "off"
		}
		fmt.Fprintf(b, "%s    jitter %s\n", ind, v)
	}
	if sp.Threshold > 0 {
		fmt.Fprintf(b, "%s    threshold %d\n", ind, sp.Threshold)
	}
	if sp.Deadline > 0 {
		fmt.Fprintf(b, "%s    deadline %s\n", ind, formatDuration(sp.Deadline))
	}
	if sp.Retries > 0 {
		fmt.Fprintf(b, "%s    retries %d\n", ind, sp.Retries)
	}
	fmt.Fprintf(b, "%s}\n", ind)
}

func remoteWord(t TriggerSpec) string {
	if t.Remote {
		return " remote"
	}
	return ""
}

// formatDuration renders durations the lexer accepts (no spaces, and
// ASCII "us" for microseconds — the lexer cannot tokenize 'µ').
func formatDuration(d time.Duration) string {
	return strings.ReplaceAll(d.String(), "µ", "u")
}

// quote renders a string literal with the language's escapes.
func quote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}
