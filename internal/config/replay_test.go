package config

import "testing"

func TestReplayBlock(t *testing.T) {
	src := `
replay {
    rate 200
    partition {
        workers 2
    }
    manifest on
}

feed F { pattern "f_%Y%m%d.gz" }
`
	cfg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Replay
	if sp == nil {
		t.Fatal("replay block not parsed")
	}
	if sp.Rate != 200 || sp.Workers != 2 {
		t.Fatalf("rate/workers = %d/%d, want 200/2", sp.Rate, sp.Workers)
	}
	if sp.NoManifest {
		t.Fatal("manifest on parsed as NoManifest")
	}
}

func TestReplayBlockDefaults(t *testing.T) {
	cfg, err := Parse(`replay { }` + "\nfeed F { pattern \"f_%Y.gz\" }")
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Replay
	if sp == nil {
		t.Fatal("empty replay block not parsed")
	}
	if sp.Rate != 0 || sp.Workers != 0 || sp.NoManifest {
		t.Fatalf("defaults = %+v, want zero rate/workers, manifest on", sp)
	}
}

func TestReplayManifestOff(t *testing.T) {
	cfg, err := Parse(`replay { manifest off }` + "\nfeed F { pattern \"f_%Y.gz\" }")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Replay.NoManifest {
		t.Fatal("manifest off not recorded")
	}
}

func TestReplayBlockRoundTrip(t *testing.T) {
	for _, src := range []string{
		"replay {\n    rate 200\n    partition {\n        workers 2\n    }\n}\n\nfeed F { pattern \"f_%Y.gz\" }",
		"replay {\n    rate 50\n}\n\nfeed F { pattern \"f_%Y.gz\" }",
		"replay {\n    manifest off\n}\n\nfeed F { pattern \"f_%Y.gz\" }",
		"replay {\n}\n\nfeed F { pattern \"f_%Y.gz\" }",
	} {
		orig, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		text := Format(orig)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted config does not parse: %v\n%s", err, text)
		}
		a, b := orig.Replay, back.Replay
		if b == nil || *a != *b {
			t.Fatalf("replay lost in round trip:\n%+v\n%+v", a, b)
		}
		if again := Format(back); again != text {
			t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, again)
		}
	}
}

func TestReplayBlockErrors(t *testing.T) {
	feed := "\nfeed F { pattern \"f_%Y.gz\" }"
	for _, src := range []string{
		`replay { rate x }` + feed,
		`replay { bogus 3 }` + feed,
		`replay { manifest maybe }` + feed,
		`replay { partition { workers 0 } }` + feed,
		`replay { partition { bogus 1 } }` + feed,
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("bad replay block accepted: %s", src)
		}
	}
}
