package config

import (
	"reflect"
	"strings"
	"testing"
)

const channelsSample = `
feedgroup market {
    feed BPS { pattern "bps_%Y%m%d.csv" }
    feed PPS { pattern "pps_%Y%m%d.csv" }
}

subscriber wh1 {
    dest "in"
    subscribe market/BPS
}

subscriber wh2 {
    dest "in"
    subscribe market
}

channels {
    group ticks {
        feed market/BPS
        member wh1
        member wh2
    }
}
`

func TestChannelsBlockParses(t *testing.T) {
	cfg, err := Parse(channelsSample)
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Channels
	if sp == nil {
		t.Fatal("channels block missing")
	}
	want := []ChannelGroupSpec{
		{Name: "ticks", Feed: "market/BPS", Members: []string{"wh1", "wh2"}},
	}
	if !reflect.DeepEqual(sp.Groups, want) {
		t.Fatalf("groups = %+v, want %+v", sp.Groups, want)
	}
}

func TestChannelsBlockErrors(t *testing.T) {
	base := `
feed BPS { pattern "bps_%Y.csv" }
feed PPS { pattern "pps_%Y.csv" }
subscriber wh { dest "in" subscribe BPS }
`
	for name, block := range map[string]string{
		"empty block":       `channels { }`,
		"group no feed":     `channels { group g { member wh } }`,
		"unknown feed":      `channels { group g { feed NOPE member wh } }`,
		"group feed":        `channels { group g { feed market member wh } }`,
		"unknown member":    `channels { group g { feed BPS member ghost } }`,
		"unsubscribed":      `channels { group g { feed PPS member wh } }`,
		"dup member":        `channels { group g { feed BPS member wh member wh } }`,
		"dup group":         `channels { group g { feed BPS } group g { feed BPS } }`,
		"dup feed stmt":     `channels { group g { feed BPS feed PPS } }`,
		"unknown statement": `channels { bogus 1 }`,
		"unknown group kw":  `channels { group g { feed BPS bogus 1 } }`,
	} {
		if _, err := Parse(base + block); err == nil {
			t.Errorf("%s: bad channels block accepted", name)
		}
	}
	// Duplicate group names across two channels blocks are also caught.
	if _, err := Parse(base + "channels { group g { feed BPS } }\nchannels { group g { feed BPS } }"); err == nil {
		t.Error("duplicate group across blocks accepted")
	}
}

func TestChannelsMemberlessGroupAllowed(t *testing.T) {
	// A group with no configured members is valid: members can join at
	// runtime through the admin surface.
	cfg, err := Parse("feed BPS { pattern \"b_%Y.csv\" }\nchannels { group g { feed BPS } }")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Channels.Groups) != 1 || len(cfg.Channels.Groups[0].Members) != 0 {
		t.Fatalf("groups = %+v", cfg.Channels.Groups)
	}
}

func TestChannelsFormatRoundTrip(t *testing.T) {
	orig, err := Parse(channelsSample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	if !strings.Contains(text, "channels {") {
		t.Fatalf("formatted config lost the channels block:\n%s", text)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted config does not parse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(orig.Channels, back.Channels) {
		t.Fatalf("channels round trip: %+v vs %+v", orig.Channels, back.Channels)
	}
	if again := Format(back); again != text {
		t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, again)
	}
}
