package config

import (
	"strings"
	"testing"
)

// planConfig wraps a feed body in the boilerplate a full config needs.
func planConfig(feeds string) string {
	return "window 72h\nlanding \"landing\"\nstaging \"staging\"\n" + feeds
}

const planSample = `
feed EVENTS {
    pattern "events_%Y%m%d%H.csv.gz"
    plan {
        decompress gzip
        parse csv
        validate { columns 3 utf8 }
        extract region 1
        extract count 2
        validate { require region numeric count }
        enrich {
            table "tables/regions.csv"
            key region
        }
        route region {
            "east" EVENTS_EAST
            "west" EVENTS_WEST
            default EVENTS_OTHER
        }
    }
}
feed EVENTS_EAST { }
feed EVENTS_WEST { }
feed EVENTS_OTHER { }
`

func TestParsePlan(t *testing.T) {
	cfg, err := Parse(planConfig(planSample))
	if err != nil {
		t.Fatal(err)
	}
	f, ok := cfg.FeedByPath("EVENTS")
	if !ok || f.Plan == nil {
		t.Fatal("EVENTS plan missing")
	}
	ops := f.Plan.Ops
	if len(ops) != 8 {
		t.Fatalf("ops = %d, want 8", len(ops))
	}
	if ops[0].Kind != OpDecompress || ops[0].Codec != "gzip" {
		t.Errorf("op0 = %+v", ops[0])
	}
	if ops[1].Kind != OpParse || ops[1].Framing != "csv" {
		t.Errorf("op1 = %+v", ops[1])
	}
	if ops[2].Kind != OpValidate || len(ops[2].Rules) != 2 || ops[2].Rules[0].Count != 3 {
		t.Errorf("op2 = %+v", ops[2])
	}
	if ops[3].Kind != OpExtract || ops[3].Field != "region" || ops[3].Column != 1 {
		t.Errorf("op3 = %+v", ops[3])
	}
	if ops[6].Kind != OpEnrich || ops[6].Table != "tables/regions.csv" || ops[6].Field != "region" || ops[6].AtDelivery {
		t.Errorf("op6 = %+v", ops[6])
	}
	rt := ops[7]
	if rt.Kind != OpRoute || rt.Field != "region" || len(rt.Cases) != 2 || rt.Target != "EVENTS_OTHER" {
		t.Errorf("op7 = %+v", rt)
	}
	want := []string{"EVENTS_EAST", "EVENTS_OTHER", "EVENTS_WEST"}
	if got := f.Plan.Targets(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("targets = %v, want %v", got, want)
	}
}

func TestParsePlanEnrichAtDelivery(t *testing.T) {
	cfg, err := Parse(planConfig(`
feed L {
    pattern "l_%Y%m%d.log"
    plan {
        parse lines
        extract host 1
        enrich { table "t.csv" key host at delivery }
    }
}
`))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := cfg.FeedByPath("L")
	if op := f.Plan.Ops[2]; !op.AtDelivery {
		t.Errorf("enrich op = %+v, want AtDelivery", op)
	}
}

func TestPlanValidationErrors(t *testing.T) {
	cases := []struct {
		name, feeds, want string
	}{
		{"empty plan", `feed F { pattern "f" plan { } }`, "empty plan block"},
		{"bad codec", `feed F { pattern "f" plan { decompress lzma } }`, "unknown decompress codec"},
		{"decompress not first", `feed F { pattern "f" plan { parse lines decompress gzip } }`, "decompress must be the first"},
		{"duplicate parse", `feed F { pattern "f" plan { parse lines parse csv } }`, "duplicate parse"},
		{"validate before parse", `feed F { pattern "f" plan { validate { utf8 } } }`, "validate needs a parse"},
		{"columns without csv", `feed F { pattern "f" plan { parse lines validate { columns 2 } } }`, "columns requires csv"},
		{"route unextracted field", `feed F { pattern "f" plan { parse lines route x { "a" G } } }
feed G { pattern "g" }`, "route x: field not extracted"},
		{"enrich unextracted key", `feed F { pattern "f" plan { parse lines enrich { table "t" key x } } }`, "enrich key x: field not extracted"},
		{"duplicate extract", `feed F { pattern "f" plan { parse lines extract x 1 extract x 2 } }`, "duplicate extract x"},
		{"json key under csv", `feed F { pattern "f" plan { parse csv extract x "k" } }`, "json key needs json framing"},
		{"column under json", `feed F { pattern "f" plan { parse json extract x 1 } }`, "extracts by key, not column"},
		{"unknown target", `feed F { pattern "f" plan { split NOPE } }`, "unknown derived feed"},
		{"self target", `feed F { pattern "f" plan { split F } }`, "routes into itself"},
		{"split after parse", `feed F { pattern "f" plan { parse lines split G } }
feed G { pattern "g" }`, "split must precede parse"},
		{"at-delivery not last", `feed F { pattern "f" plan { parse lines extract x 1 enrich { table "t" key x at delivery } extract y 2 } }`, "must be the last operator"},
		{"re-encode", `feed F { pattern "f" compress gunzip plan { parse lines } }`, "cannot re-encode plan output"},
		{"orphan patternless feed", `feed F { }`, "no patterns and no plan routes into it"},
		{"cycle", `feed A { pattern "a" plan { split B } }
feed B { pattern "b" plan { split A } }`, "plan cycle: A -> B -> A"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(planConfig(c.feeds))
			if err == nil {
				t.Fatalf("Parse accepted %q", c.feeds)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestPlanDerivedChainAllowed(t *testing.T) {
	// A -> B -> C is a DAG, not a cycle; B is both a target and a
	// plan-bearing feed.
	cfg, err := Parse(planConfig(`
feed A { pattern "a_%i" plan { split B } }
feed B { plan { parse lines extract x 1 route x { "1" C } } }
feed C { }
`))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := cfg.FeedByPath("B"); f.Plan == nil {
		t.Fatal("B plan missing")
	}
}

// TestPlanFormatRoundTrip pins Format's plan rendering: a formatted
// config re-parses to a config that formats identically (the fixed
// point the fuzz target drives at scale).
func TestPlanFormatRoundTrip(t *testing.T) {
	cfg, err := Parse(planConfig(planSample + `
feed L {
    pattern "l_%Y%m%d.log.bz2"
    plan {
        decompress bzip2
        split RAW
        parse json
        extract host "host"
        enrich { table "hosts.csv" key host at delivery }
    }
}
feed RAW { }
`))
	if err != nil {
		t.Fatal(err)
	}
	text := Format(cfg)
	cfg2, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted config does not re-parse: %v\n%s", err, text)
	}
	if text2 := Format(cfg2); text2 != text {
		t.Fatalf("format not a fixed point:\n--- first\n%s\n--- second\n%s", text, text2)
	}
}
