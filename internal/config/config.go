package config

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"bistro/internal/backoff"
	"bistro/internal/pattern"
)

// Compression selects the file normalization transform for a feed.
type Compression int

// Compression modes.
const (
	CompressNone    Compression = iota // deliver bytes as received
	CompressGzip                       // gzip before staging
	CompressGunzip                     // gunzip before staging
	CompressBunzip2                    // bunzip2 before staging (decompress only; stdlib bzip2 is read-only)
)

func (c Compression) String() string {
	switch c {
	case CompressNone:
		return "none"
	case CompressGzip:
		return "gzip"
	case CompressGunzip:
		return "gunzip"
	case CompressBunzip2:
		return "bunzip2"
	default:
		return "unknown"
	}
}

// Method is a subscriber's delivery method.
type Method int

// Delivery methods.
const (
	// MethodPush transfers file content to the subscriber.
	MethodPush Method = iota
	// MethodNotify implements the hybrid push-pull approach: the
	// server pushes a notification and the subscriber retrieves the
	// file at a time of its choosing.
	MethodNotify
)

func (m Method) String() string {
	if m == MethodNotify {
		return "notify"
	}
	return "push"
}

// TriggerMode selects per-file or per-batch notification.
type TriggerMode int

// Trigger modes.
const (
	TriggerNone    TriggerMode = iota
	TriggerPerFile             // invoke for every delivered file
	TriggerBatch               // invoke at end-of-batch boundaries
)

// TriggerSpec configures subscriber notification (§2.3, §4.1).
type TriggerSpec struct {
	Mode TriggerMode
	// Count closes a batch after this many files (0 = unbounded).
	Count int
	// Timeout closes a batch this long after its first file
	// (0 = unbounded). Count and Timeout together form the paper's
	// recommended hybrid batch definition.
	Timeout time.Duration
	// Exec is the command template invoked on trigger; %f expands to
	// the delivered path(s).
	Exec string
	// Remote, when true, runs Exec on the subscriber host (via the
	// subscriber daemon); otherwise Bistro runs it locally.
	Remote bool
}

// Feed is one leaf data feed definition.
type Feed struct {
	// Name is the feed's leaf name.
	Name string
	// Path is the full hierarchy path, e.g. "SNMP/ROUTER/CPU".
	Path string
	// Patterns match incoming filenames into this feed.
	Patterns []*pattern.Pattern
	// Normalize, when set, renders matched files into this layout in
	// the staging area.
	Normalize *pattern.Pattern
	// Compress selects content normalization.
	Compress Compression
	// ExpectPeriod is the feed's expected generation interval, used by
	// monitoring to detect stalls and incomplete intervals (0 = none).
	ExpectPeriod time.Duration
	// ExpectSources is the expected file count per interval.
	ExpectSources int
	// Priority raises this feed's delivery urgency under prioritized
	// scheduling policies (0 = default). The paper's delay-sensitive
	// feeds (link faults, alarms) want this.
	Priority int
	// Plan, when set, replaces the fixed classify→normalize path with
	// a declared operator chain (see PlanSpec). Nil keeps the implicit
	// default plan, byte for byte.
	Plan *PlanSpec
}

// Subscriber is one registered feed consumer.
type Subscriber struct {
	Name string
	// Host is the subscriber daemon address (host:port); empty for
	// local-directory delivery.
	Host string
	// Dest is the destination directory (remote or local).
	Dest string
	// Subscriptions holds the feed or group paths as written.
	Subscriptions []string
	// Feeds is the resolved flat list of leaf feed paths.
	Feeds []string
	// Method selects push or hybrid notify delivery.
	Method Method
	// Trigger configures notifications.
	Trigger TriggerSpec
	// Retry is the offline-subscriber retry probe interval.
	Retry time.Duration
	// Class is the scheduling partition hint: "" (auto), "interactive",
	// or "bulk".
	Class string
	// Backoff, when non-nil, overrides the server-wide retry and
	// circuit-breaker policy for this subscriber.
	Backoff *BackoffSpec
}

// BackoffSpec is a backoff { ... } block: retry and circuit-breaker
// tuning, either server-wide or per subscriber. Zero fields mean "not
// written" and leave the level below (server policy, then the built-in
// defaults) in force; Jitter uses an explicit set-flag because off is
// a meaningful override of the jitter-on default.
type BackoffSpec struct {
	// Base is the first retry delay.
	Base time.Duration
	// Max caps the grown delay.
	Max time.Duration
	// Multiplier grows the delay per consecutive failure.
	Multiplier float64
	// NoJitter disables full jitter (meaningful when JitterSet).
	NoJitter bool
	// JitterSet records that the block spelled out jitter on|off.
	JitterSet bool
	// Threshold is the consecutive-failure count that opens the circuit
	// (and flags the subscriber offline).
	Threshold int
	// Deadline bounds one transfer attempt.
	Deadline time.Duration
	// Retries bounds bounded retry loops (dial, upload).
	Retries int
}

// Apply layers the spec's written fields over a base policy.
func (b *BackoffSpec) Apply(p backoff.Policy) backoff.Policy {
	if b == nil {
		return p
	}
	if b.Base > 0 {
		p.Base = b.Base
	}
	if b.Max > 0 {
		p.Max = b.Max
	}
	if b.Multiplier > 0 {
		p.Multiplier = b.Multiplier
	}
	if b.JitterSet {
		p.NoJitter = b.NoJitter
	}
	if b.Threshold > 0 {
		p.Threshold = b.Threshold
	}
	if b.Deadline > 0 {
		p.TransferDeadline = b.Deadline
	}
	if b.Retries > 0 {
		p.MaxRetries = b.Retries
	}
	return p
}

// Policy converts the spec into a backoff policy over the built-in
// defaults.
func (b *BackoffSpec) Policy() backoff.Policy {
	return b.Apply(backoff.Policy{})
}

// PartitionSpec is one scheduler partition from the configuration.
type PartitionSpec struct {
	// Name labels the partition; "interactive" receives subscribers
	// with class interactive.
	Name string
	// Workers is the fixed worker allocation (required, > 0).
	Workers int
	// Backfill reserves this many of the workers for backfill.
	Backfill int
	// Policy is "fifo", "edf", "prio-edf", or "max-benefit"
	// (default edf).
	Policy string
	// MaxService is the responsiveness band for dynamic migration
	// (0 = unbounded).
	MaxService time.Duration
}

// SchedulerSpec configures the delivery scheduler from the
// configuration language.
type SchedulerSpec struct {
	// Partitions in decreasing responsiveness order.
	Partitions []PartitionSpec
	// Migrate enables observation-driven partition migration.
	Migrate bool
}

// AdminSpec is an admin { ... } block: the observability HTTP endpoint
// serving /metrics (Prometheus text), /healthz, and /statusz (JSON).
type AdminSpec struct {
	// Listen is the admin HTTP address ("127.0.0.1:0" for ephemeral).
	Listen string
}

// PrincipalSpec is one principal { ... } entry in an http block: a
// named credential with a per-principal feed ACL. Subscriptions holds
// the feed or group paths as written; Feeds is the resolved flat leaf
// set the ACL is enforced against.
type PrincipalSpec struct {
	// Name identifies the principal (basic-auth username, log label).
	Name string
	// Token is the shared secret: the bearer token, or the basic-auth
	// password.
	Token string
	// Subscriptions holds the feed or group paths as written.
	Subscriptions []string
	// Feeds is the resolved flat list of leaf feed paths the principal
	// may read and write.
	Feeds []string
}

// HTTPSpec is an http { ... } block: the pull data plane exposing each
// feed as an authenticated append-only HTTP log beside the custom TCP
// protocol.
type HTTPSpec struct {
	// Listen is the HTTP data-plane address ("127.0.0.1:0" for
	// ephemeral).
	Listen string
	// MaxBody caps POST ingest bodies in bytes (0 = the server
	// default).
	MaxBody int64
	// Principals in definition order. Empty means the plane is open
	// (documented for lab use; production configs declare principals).
	Principals []*PrincipalSpec
}

// GroupCommitSpec is a group_commit { ... } block inside ingest:
// tuning for the receipt WAL's batched-fsync flush window.
type GroupCommitSpec struct {
	// MaxBatch flushes once this many receipt transactions are queued.
	MaxBatch int
	// MaxDelay is how long a flush leader waits for companion commits.
	MaxDelay time.Duration
}

// IngestSpec is an ingest { ... } block: the parallel landing→staging
// pipeline. Workers sets the sharded classification/commit stage width
// (files are hash-partitioned by source so per-source order is
// preserved); Queue bounds the hand-off queue into delivery, applying
// backpressure to sources when delivery falls behind.
type IngestSpec struct {
	// Workers is the shard count (>= 1; 1 reproduces the serial path).
	Workers int
	// Queue is the bounded delivery hand-off depth (0 = default).
	Queue int
	// GroupCommit, when non-nil, enables the WAL flush window.
	GroupCommit *GroupCommitSpec
}

// ReplaySpec is a replay { ... } block: historical catch-up from the
// archive for subscribers joining with FROM older than the staging
// window. Its presence makes the server append a dedicated replay
// partition to the scheduler layout.
type ReplaySpec struct {
	// Rate caps replay streaming in files/second (0 = unlimited).
	Rate int
	// Workers sizes the replay partition (0 = default 1).
	Workers int
	// NoManifest disables the archive manifest ("manifest off").
	// Replay sessions need the manifest, so they are refused when it
	// is off; expiry then skips manifest writes entirely.
	NoManifest bool
}

// ClusterNodeSpec is one node { ... } entry in a cluster block.
type ClusterNodeSpec struct {
	// Name is the unique node name.
	Name string
	// Addr is the node's source/subscriber protocol address.
	Addr string
	// Standby, when non-empty, is the replication listen address of
	// this node's warm standby.
	Standby string
}

// FailoverSpec is the failover { ... } sub-block of a cluster block:
// lease-based failure detection and automatic standby promotion.
type FailoverSpec struct {
	// Lease is how long a standby tolerates owner silence before
	// declaring it dead (0 = default 10s).
	Lease time.Duration
	// Heartbeat is the owner's idle lease-renewal cadence on the
	// replication stream (0 = lease/5). Must be shorter than the lease.
	Heartbeat time.Duration
	// Auto enables unattended standby promotion on lease expiry
	// ("auto on"); off, expiry is observed and alarmed but a human
	// promotes.
	Auto bool
}

// ClusterSpec is a cluster { ... } block: the static feed-sharding
// topology. Every node in the cluster loads the same block (differing
// only in which node it runs as, usually set per host with the
// daemon's -node flag), so all nodes compute the same feed→owner map.
type ClusterSpec struct {
	// Self names the node this process runs as (may be overridden at
	// startup).
	Self string
	// VNodes is the consistent-hash ring points per node (0 = default).
	VNodes int
	// Failover configures lease-based failure detection (nil = manual
	// promotion only, with default lease/heartbeat timings for status).
	Failover *FailoverSpec
	// Nodes is every daemon in the cluster, in definition order.
	Nodes []ClusterNodeSpec
}

// ChannelGroupSpec is one group { ... } entry in a channels block: a
// named shared delivery channel fanning one leaf feed out to its
// member subscribers through a single read per file, with receipts
// kept per group rather than per member.
type ChannelGroupSpec struct {
	// Name is the channel (and receipt-store subscription-group) name.
	Name string
	// Feed is the leaf feed the channel fans out.
	Feed string
	// Members are the configured member subscribers, in definition
	// order. Each must be a declared subscriber subscribed to Feed.
	Members []string
}

// ChannelsSpec is a channels { ... } block: the shared fan-out
// channels the delivery engine brokers.
type ChannelsSpec struct {
	// Groups in definition order.
	Groups []ChannelGroupSpec
}

// Config is a fully parsed and validated Bistro server configuration.
type Config struct {
	// Window is the retention window for staged files (0 = infinite).
	Window time.Duration
	// LandingDir, StagingDir, ArchiveDir locate the server work areas.
	LandingDir string
	StagingDir string
	ArchiveDir string
	// QuarantineDir is where startup reconciliation moves staged files
	// that diverge from their receipts (missing, corrupt, or orphaned).
	// Defaults to "quarantine" under the server root.
	QuarantineDir string
	// Feeds are all leaf feeds, in definition order.
	Feeds []*Feed
	// Groups maps each group path to its descendant leaf feed paths.
	Groups map[string][]string
	// Subscribers in definition order.
	Subscribers []*Subscriber
	// Scheduler, when non-nil, overrides the server's default
	// partition layout.
	Scheduler *SchedulerSpec
	// Backoff, when non-nil, sets the server-wide retry and
	// circuit-breaker policy.
	Backoff *BackoffSpec
	// Admin, when non-nil, enables the observability HTTP endpoint.
	Admin *AdminSpec
	// HTTP, when non-nil, enables the pull data plane (feeds as
	// authenticated HTTP logs).
	HTTP *HTTPSpec
	// Ingest, when non-nil, configures the parallel ingest pipeline
	// (shard workers, hand-off queue, WAL group-commit window).
	Ingest *IngestSpec
	// Replay, when non-nil, enables historical replay from the archive.
	Replay *ReplaySpec
	// Cluster, when non-nil, shards feed ownership across the listed
	// nodes; absent, the server is the single-node degenerate case.
	Cluster *ClusterSpec
	// Channels, when non-nil, declares shared per-feed delivery
	// channels (one staged read fanned out to every member).
	Channels *ChannelsSpec
}

// FeedByPath returns the feed with the given full path.
func (c *Config) FeedByPath(path string) (*Feed, bool) {
	for _, f := range c.Feeds {
		if f.Path == path {
			return f, true
		}
	}
	return nil, false
}

// SubscribersOf returns the names of subscribers interested in the
// given leaf feed path.
func (c *Config) SubscribersOf(feedPath string) []string {
	var out []string
	for _, s := range c.Subscribers {
		for _, f := range s.Feeds {
			if f == feedPath {
				out = append(out, s.Name)
				break
			}
		}
	}
	return out
}

// parser implements recursive descent over the token stream.
type parser struct {
	lex      *lexer
	tok      token
	peeked   *token
	prevLine int // line of the most recently consumed token
}

// Parse parses and validates a configuration document.
func Parse(src string) (*Config, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	cfg := &Config{Groups: make(map[string][]string)}
	for p.tok.kind != tokEOF {
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected a statement keyword, got %s", p.tok.kind)
		}
		switch p.tok.text {
		case "window":
			if err := p.advance(); err != nil {
				return nil, err
			}
			d, err := p.duration()
			if err != nil {
				return nil, err
			}
			cfg.Window = d
		case "landing":
			s, err := p.keywordString()
			if err != nil {
				return nil, err
			}
			cfg.LandingDir = s
		case "staging":
			s, err := p.keywordString()
			if err != nil {
				return nil, err
			}
			cfg.StagingDir = s
		case "archive":
			s, err := p.keywordString()
			if err != nil {
				return nil, err
			}
			cfg.ArchiveDir = s
		case "quarantine":
			s, err := p.keywordString()
			if err != nil {
				return nil, err
			}
			cfg.QuarantineDir = s
		case "feed":
			if err := p.advance(); err != nil {
				return nil, err
			}
			f, err := p.feed("")
			if err != nil {
				return nil, err
			}
			cfg.Feeds = append(cfg.Feeds, f)
		case "feedgroup":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.feedgroup("", cfg); err != nil {
				return nil, err
			}
		case "subscriber":
			if err := p.advance(); err != nil {
				return nil, err
			}
			s, err := p.subscriber()
			if err != nil {
				return nil, err
			}
			cfg.Subscribers = append(cfg.Subscribers, s)
		case "scheduler":
			if err := p.advance(); err != nil {
				return nil, err
			}
			spec, err := p.schedulerSpec()
			if err != nil {
				return nil, err
			}
			cfg.Scheduler = spec
		case "backoff":
			if err := p.advance(); err != nil {
				return nil, err
			}
			spec, err := p.backoffSpec()
			if err != nil {
				return nil, err
			}
			cfg.Backoff = spec
		case "admin":
			if err := p.advance(); err != nil {
				return nil, err
			}
			spec, err := p.adminSpec()
			if err != nil {
				return nil, err
			}
			cfg.Admin = spec
		case "http":
			if err := p.advance(); err != nil {
				return nil, err
			}
			spec, err := p.httpSpec()
			if err != nil {
				return nil, err
			}
			cfg.HTTP = spec
		case "ingest":
			if err := p.advance(); err != nil {
				return nil, err
			}
			spec, err := p.ingestSpec()
			if err != nil {
				return nil, err
			}
			cfg.Ingest = spec
		case "replay":
			if err := p.advance(); err != nil {
				return nil, err
			}
			spec, err := p.replaySpec()
			if err != nil {
				return nil, err
			}
			cfg.Replay = spec
		case "cluster":
			if err := p.advance(); err != nil {
				return nil, err
			}
			spec, err := p.clusterSpec()
			if err != nil {
				return nil, err
			}
			cfg.Cluster = spec
		case "channels":
			if err := p.advance(); err != nil {
				return nil, err
			}
			spec, err := p.channelsSpec()
			if err != nil {
				return nil, err
			}
			if cfg.Channels == nil {
				cfg.Channels = spec
			} else {
				cfg.Channels.Groups = append(cfg.Channels.Groups, spec.Groups...)
			}
		default:
			return nil, p.errf("unknown statement %q", p.tok.text)
		}
	}
	if err := resolve(cfg); err != nil {
		return nil, err
	}
	return cfg, nil
}

func (p *parser) advance() error {
	p.prevLine = p.tok.line
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("config: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

// errPrevf reports an error about the token that was just consumed
// (e.g. an unknown keyword value), so line numbers point at it rather
// than at the following token.
func (p *parser) errPrevf(format string, args ...any) error {
	return fmt.Errorf("config: line %d: %s", p.prevLine, fmt.Sprintf(format, args...))
}

// expect consumes a token of the given kind and returns its text.
func (p *parser) expect(k tokKind) (string, error) {
	if p.tok.kind != k {
		return "", p.errf("expected %s, got %s %q", k, p.tok.kind, p.tok.text)
	}
	text := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	return text, nil
}

// keywordString consumes the current keyword and a following string.
func (p *parser) keywordString() (string, error) {
	if err := p.advance(); err != nil {
		return "", err
	}
	return p.expect(tokString)
}

// duration consumes a number token and parses it as a duration;
// a bare integer means seconds.
func (p *parser) duration() (time.Duration, error) {
	text, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	if n, err := strconv.Atoi(text); err == nil {
		return time.Duration(n) * time.Second, nil
	}
	d, err := time.ParseDuration(text)
	if err != nil {
		return 0, fmt.Errorf("config: bad duration %q: %w", text, err)
	}
	return d, nil
}

// integer consumes a number token as a plain int.
func (p *parser) integer() (int, error) {
	text, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(text)
	if err != nil {
		return 0, fmt.Errorf("config: bad integer %q: %w", text, err)
	}
	return n, nil
}

// path consumes IDENT (/ IDENT)* and returns the joined path.
func (p *parser) path() (string, error) {
	part, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	out := part
	for p.tok.kind == tokSlash {
		if err := p.advance(); err != nil {
			return "", err
		}
		part, err := p.expect(tokIdent)
		if err != nil {
			return "", err
		}
		out += "/" + part
	}
	return out, nil
}

// feedgroup parses: NAME { (feed | feedgroup)* }
func (p *parser) feedgroup(prefix string, cfg *Config) error {
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	path := joinPath(prefix, name)
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	if _, ok := cfg.Groups[path]; !ok {
		cfg.Groups[path] = nil // register even if empty
	}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		switch kw {
		case "feed":
			f, err := p.feed(path)
			if err != nil {
				return err
			}
			cfg.Feeds = append(cfg.Feeds, f)
		case "feedgroup":
			if err := p.feedgroup(path, cfg); err != nil {
				return err
			}
		default:
			return p.errPrevf("unknown feedgroup statement %q", kw)
		}
	}
	return p.advance() // consume '}'
}

// feed parses: NAME { body }
func (p *parser) feed(prefix string) (*Feed, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	f := &Feed{Name: name, Path: joinPath(prefix, name)}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "pattern":
			src, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			pat, err := pattern.Compile(src)
			if err != nil {
				return nil, fmt.Errorf("config: feed %s: %w", f.Path, err)
			}
			f.Patterns = append(f.Patterns, pat)
		case "normalize":
			src, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			pat, err := pattern.Compile(src)
			if err != nil {
				return nil, fmt.Errorf("config: feed %s normalize: %w", f.Path, err)
			}
			f.Normalize = pat
		case "expect":
			if f.ExpectPeriod, err = p.duration(); err != nil {
				return nil, err
			}
			if f.ExpectSources, err = p.integer(); err != nil {
				return nil, err
			}
		case "priority":
			if f.Priority, err = p.integer(); err != nil {
				return nil, err
			}
		case "plan":
			if f.Plan != nil {
				return nil, p.errPrevf("feed %s: duplicate plan block", f.Path)
			}
			if f.Plan, err = p.planSpec(f.Path); err != nil {
				return nil, err
			}
		case "compress":
			mode, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch mode {
			case "none":
				f.Compress = CompressNone
			case "gzip":
				f.Compress = CompressGzip
			case "gunzip":
				f.Compress = CompressGunzip
			case "bunzip2":
				f.Compress = CompressBunzip2
			default:
				return nil, p.errPrevf("feed %s: unknown compress mode %q", f.Path, mode)
			}
		default:
			return nil, p.errPrevf("unknown feed statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	// A feed may omit patterns only when it is the target of some
	// plan's split/route operator — checked in resolvePlans, which can
	// see the whole config.
	return f, nil
}

// subscriber parses: NAME { body }
func (p *parser) subscriber() (*Subscriber, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	s := &Subscriber{Name: name, Retry: 30 * time.Second}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "host":
			if s.Host, err = p.expect(tokString); err != nil {
				return nil, err
			}
		case "dest":
			if s.Dest, err = p.expect(tokString); err != nil {
				return nil, err
			}
		case "subscribe":
			path, err := p.path()
			if err != nil {
				return nil, err
			}
			s.Subscriptions = append(s.Subscriptions, path)
		case "method":
			m, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch m {
			case "push":
				s.Method = MethodPush
			case "notify":
				s.Method = MethodNotify
			default:
				return nil, p.errPrevf("subscriber %s: unknown method %q", name, m)
			}
		case "retry":
			if s.Retry, err = p.duration(); err != nil {
				return nil, err
			}
		case "class":
			c, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if c != "interactive" && c != "bulk" {
				return nil, p.errPrevf("subscriber %s: unknown class %q", name, c)
			}
			s.Class = c
		case "trigger":
			if err := p.trigger(&s.Trigger); err != nil {
				return nil, err
			}
		case "backoff":
			if s.Backoff, err = p.backoffSpec(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errPrevf("unknown subscriber statement %q", kw)
		}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if len(s.Subscriptions) == 0 {
		return nil, fmt.Errorf("config: subscriber %s subscribes to nothing", name)
	}
	return s, nil
}

// trigger parses:
//
//	trigger perfile [remote] exec "cmd"
//	trigger batch (count N | timeout D | time D)+ [remote] exec "cmd"
func (p *parser) trigger(spec *TriggerSpec) error {
	mode, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	switch mode {
	case "perfile":
		spec.Mode = TriggerPerFile
	case "batch":
		spec.Mode = TriggerBatch
	default:
		return p.errPrevf("unknown trigger mode %q", mode)
	}
	for {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		switch kw {
		case "count":
			if spec.Mode != TriggerBatch {
				return p.errPrevf("count only applies to batch triggers")
			}
			if spec.Count, err = p.integer(); err != nil {
				return err
			}
		case "timeout", "time":
			if spec.Mode != TriggerBatch {
				return p.errPrevf("%s only applies to batch triggers", kw)
			}
			if spec.Timeout, err = p.duration(); err != nil {
				return err
			}
		case "remote":
			spec.Remote = true
		case "exec":
			if spec.Exec, err = p.expect(tokString); err != nil {
				return err
			}
			if spec.Mode == TriggerBatch && spec.Count == 0 && spec.Timeout == 0 {
				return p.errPrevf("batch trigger needs count and/or timeout")
			}
			return nil
		default:
			return p.errPrevf("unknown trigger option %q", kw)
		}
	}
}

// backoffSpec parses:
//
//	backoff {
//	    base D  max D  multiplier F  jitter on|off
//	    threshold N  deadline D  retries N
//	}
func (p *parser) backoffSpec() (*BackoffSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &BackoffSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "base":
			if spec.Base, err = p.duration(); err != nil {
				return nil, err
			}
		case "max":
			if spec.Max, err = p.duration(); err != nil {
				return nil, err
			}
		case "multiplier":
			text, err := p.expect(tokNumber)
			if err != nil {
				return nil, err
			}
			m, err := strconv.ParseFloat(text, 64)
			if err != nil || m < 1 {
				return nil, p.errPrevf("multiplier must be a number >= 1, got %q", text)
			}
			spec.Multiplier = m
		case "jitter":
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch v {
			case "on":
				spec.NoJitter = false
			case "off":
				spec.NoJitter = true
			default:
				return nil, p.errPrevf("jitter takes on or off, got %q", v)
			}
			spec.JitterSet = true
		case "threshold":
			if spec.Threshold, err = p.integer(); err != nil {
				return nil, err
			}
			if spec.Threshold < 1 {
				return nil, p.errPrevf("threshold must be >= 1")
			}
		case "deadline":
			if spec.Deadline, err = p.duration(); err != nil {
				return nil, err
			}
		case "retries":
			if spec.Retries, err = p.integer(); err != nil {
				return nil, err
			}
			if spec.Retries < 1 {
				return nil, p.errPrevf("retries must be >= 1")
			}
		default:
			return nil, p.errPrevf("unknown backoff statement %q", kw)
		}
	}
	return spec, p.advance() // consume '}'
}

// adminSpec parses: { listen "addr" }
func (p *parser) adminSpec() (*AdminSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &AdminSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "listen":
			if spec.Listen, err = p.expect(tokString); err != nil {
				return nil, err
			}
		default:
			return nil, p.errPrevf("unknown admin statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if spec.Listen == "" {
		return nil, fmt.Errorf("config: admin block needs listen")
	}
	return spec, nil
}

// httpSpec parses:
//
//	http {
//	    listen "addr"
//	    max_body N
//	    principal NAME { token "..." feed PATH+ }
//	}
func (p *parser) httpSpec() (*HTTPSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &HTTPSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "listen":
			if spec.Listen, err = p.expect(tokString); err != nil {
				return nil, err
			}
		case "max_body":
			n, err := p.integer()
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, p.errPrevf("http max_body must be >= 1")
			}
			spec.MaxBody = int64(n)
		case "principal":
			pr, err := p.principalSpec()
			if err != nil {
				return nil, err
			}
			spec.Principals = append(spec.Principals, pr)
		default:
			return nil, p.errPrevf("unknown http statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if spec.Listen == "" {
		return nil, fmt.Errorf("config: http block needs listen")
	}
	seen := make(map[string]bool, len(spec.Principals))
	tokens := make(map[string]string, len(spec.Principals))
	for _, pr := range spec.Principals {
		if seen[pr.Name] {
			return nil, fmt.Errorf("config: duplicate http principal %q", pr.Name)
		}
		seen[pr.Name] = true
		if other, dup := tokens[pr.Token]; dup {
			// Two principals sharing a token would make bearer
			// authentication ambiguous (the token alone names the
			// principal).
			return nil, fmt.Errorf("config: http principals %q and %q share a token", other, pr.Name)
		}
		tokens[pr.Token] = pr.Name
	}
	return spec, nil
}

// principalSpec parses: NAME { token "..." feed PATH+ }
func (p *parser) principalSpec() (*PrincipalSpec, error) {
	spec := &PrincipalSpec{}
	var err error
	if spec.Name, err = p.expect(tokIdent); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "token":
			if spec.Token, err = p.expect(tokString); err != nil {
				return nil, err
			}
		case "feed":
			path, err := p.path()
			if err != nil {
				return nil, err
			}
			spec.Subscriptions = append(spec.Subscriptions, path)
		default:
			return nil, p.errPrevf("unknown principal statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if spec.Token == "" {
		return nil, fmt.Errorf("config: http principal %s needs a token", spec.Name)
	}
	if len(spec.Subscriptions) == 0 {
		return nil, fmt.Errorf("config: http principal %s grants no feeds", spec.Name)
	}
	return spec, nil
}

// ingestSpec parses:
//
//	ingest {
//	    workers N
//	    queue N
//	    group_commit { max_batch N  max_delay D }
//	}
func (p *parser) ingestSpec() (*IngestSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &IngestSpec{Workers: 1}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "workers":
			if spec.Workers, err = p.integer(); err != nil {
				return nil, err
			}
			if spec.Workers < 1 {
				return nil, p.errPrevf("ingest workers must be >= 1")
			}
		case "queue":
			if spec.Queue, err = p.integer(); err != nil {
				return nil, err
			}
			if spec.Queue < 1 {
				return nil, p.errPrevf("ingest queue must be >= 1")
			}
		case "group_commit":
			if spec.GroupCommit, err = p.groupCommitSpec(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errPrevf("unknown ingest statement %q", kw)
		}
	}
	return spec, p.advance() // consume '}'
}

// groupCommitSpec parses: { max_batch N  max_delay D }
func (p *parser) groupCommitSpec() (*GroupCommitSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &GroupCommitSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "max_batch":
			if spec.MaxBatch, err = p.integer(); err != nil {
				return nil, err
			}
			if spec.MaxBatch < 1 {
				return nil, p.errPrevf("group_commit max_batch must be >= 1")
			}
		case "max_delay":
			if spec.MaxDelay, err = p.duration(); err != nil {
				return nil, err
			}
			if spec.MaxDelay <= 0 {
				return nil, p.errPrevf("group_commit max_delay must be > 0")
			}
		default:
			return nil, p.errPrevf("unknown group_commit statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if spec.MaxBatch == 0 && spec.MaxDelay == 0 {
		return nil, fmt.Errorf("config: group_commit block needs max_batch and/or max_delay")
	}
	return spec, nil
}

// replaySpec parses:
//
//	replay {
//	    rate N
//	    partition { workers N }
//	    manifest on|off
//	}
func (p *parser) replaySpec() (*ReplaySpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &ReplaySpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "rate":
			if spec.Rate, err = p.integer(); err != nil {
				return nil, err
			}
			if spec.Rate < 0 {
				return nil, p.errPrevf("replay rate must be >= 0")
			}
		case "partition":
			if spec.Workers, err = p.replayPartitionSpec(); err != nil {
				return nil, err
			}
		case "manifest":
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch v {
			case "on":
				spec.NoManifest = false
			case "off":
				spec.NoManifest = true
			default:
				return nil, p.errPrevf("manifest takes on or off, got %q", v)
			}
		default:
			return nil, p.errPrevf("unknown replay statement %q", kw)
		}
	}
	return spec, p.advance() // consume '}'
}

// replayPartitionSpec parses: { workers N }
func (p *parser) replayPartitionSpec() (int, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return 0, err
	}
	workers := 0
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return 0, err
		}
		switch kw {
		case "workers":
			if workers, err = p.integer(); err != nil {
				return 0, err
			}
			if workers < 1 {
				return 0, p.errPrevf("replay partition workers must be >= 1")
			}
		default:
			return 0, p.errPrevf("unknown replay partition statement %q", kw)
		}
	}
	return workers, p.advance() // consume '}'
}

// clusterSpec parses:
//
//	cluster {
//	    self "a"
//	    vnodes 64
//	    node "a" { addr "host:port" standby "host:port" }
//	    node "b" { addr "host:port" }
//	}
func (p *parser) clusterSpec() (*ClusterSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &ClusterSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "self":
			if spec.Self, err = p.expect(tokString); err != nil {
				return nil, err
			}
		case "vnodes":
			if spec.VNodes, err = p.integer(); err != nil {
				return nil, err
			}
			if spec.VNodes < 1 {
				return nil, p.errPrevf("cluster vnodes must be >= 1")
			}
		case "failover":
			fo, err := p.failoverSpec()
			if err != nil {
				return nil, err
			}
			spec.Failover = fo
		case "node":
			n, err := p.clusterNodeSpec()
			if err != nil {
				return nil, err
			}
			spec.Nodes = append(spec.Nodes, n)
		default:
			return nil, p.errPrevf("unknown cluster statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if len(spec.Nodes) == 0 {
		return nil, fmt.Errorf("config: cluster block needs at least one node")
	}
	seen := make(map[string]bool, len(spec.Nodes))
	for _, n := range spec.Nodes {
		if seen[n.Name] {
			return nil, fmt.Errorf("config: duplicate cluster node %q", n.Name)
		}
		seen[n.Name] = true
	}
	if spec.Self != "" && !seen[spec.Self] {
		return nil, fmt.Errorf("config: cluster self %q is not a listed node", spec.Self)
	}
	return spec, nil
}

// failoverSpec parses: failover { [lease DUR] [heartbeat DUR] [auto on|off] }
func (p *parser) failoverSpec() (*FailoverSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &FailoverSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "lease":
			if spec.Lease, err = p.duration(); err != nil {
				return nil, err
			}
			if spec.Lease <= 0 {
				return nil, p.errPrevf("failover lease must be positive")
			}
		case "heartbeat":
			if spec.Heartbeat, err = p.duration(); err != nil {
				return nil, err
			}
			if spec.Heartbeat <= 0 {
				return nil, p.errPrevf("failover heartbeat must be positive")
			}
		case "auto":
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch v {
			case "on":
				spec.Auto = true
			case "off":
				spec.Auto = false
			default:
				return nil, p.errPrevf("auto takes on or off, got %q", v)
			}
		default:
			return nil, p.errPrevf("unknown failover statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if spec.Lease > 0 && spec.Heartbeat > 0 && spec.Heartbeat >= spec.Lease {
		return nil, fmt.Errorf("config: failover heartbeat (%s) must be shorter than the lease (%s)",
			spec.Heartbeat, spec.Lease)
	}
	return spec, nil
}

// clusterNodeSpec parses: node "name" { addr "..." [standby "..."] }
func (p *parser) clusterNodeSpec() (ClusterNodeSpec, error) {
	n := ClusterNodeSpec{}
	var err error
	if n.Name, err = p.expect(tokString); err != nil {
		return n, err
	}
	if n.Name == "" {
		return n, p.errPrevf("cluster node needs a non-empty name")
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return n, err
	}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return n, err
		}
		switch kw {
		case "addr":
			if n.Addr, err = p.expect(tokString); err != nil {
				return n, err
			}
		case "standby":
			if n.Standby, err = p.expect(tokString); err != nil {
				return n, err
			}
		default:
			return n, p.errPrevf("unknown cluster node statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return n, err
	}
	if n.Addr == "" {
		return n, fmt.Errorf("config: cluster node %q needs addr", n.Name)
	}
	return n, nil
}

// channelsSpec parses:
//
//	channels {
//	    group ticks {
//	        feed market/bps
//	        member wh1
//	        member wh2
//	    }
//	}
func (p *parser) channelsSpec() (*ChannelsSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &ChannelsSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "group":
			g, err := p.channelGroupSpec()
			if err != nil {
				return nil, err
			}
			spec.Groups = append(spec.Groups, g)
		default:
			return nil, p.errPrevf("unknown channels statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if len(spec.Groups) == 0 {
		return nil, fmt.Errorf("config: channels block needs at least one group")
	}
	return spec, nil
}

// channelGroupSpec parses: group NAME { feed PATH member NAME+ }
func (p *parser) channelGroupSpec() (ChannelGroupSpec, error) {
	g := ChannelGroupSpec{}
	var err error
	if g.Name, err = p.expect(tokIdent); err != nil {
		return g, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return g, err
	}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return g, err
		}
		switch kw {
		case "feed":
			if g.Feed != "" {
				return g, p.errPrevf("channel group %s: duplicate feed statement", g.Name)
			}
			if g.Feed, err = p.path(); err != nil {
				return g, err
			}
		case "member":
			m, err := p.expect(tokIdent)
			if err != nil {
				return g, err
			}
			g.Members = append(g.Members, m)
		default:
			return g, p.errPrevf("unknown channel group statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return g, err
	}
	if g.Feed == "" {
		return g, fmt.Errorf("config: channel group %s needs a feed", g.Name)
	}
	return g, nil
}

// schedulerSpec parses: { [migrate on|off] partition NAME { ... }+ }
func (p *parser) schedulerSpec() (*SchedulerSpec, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	spec := &SchedulerSpec{}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw {
		case "migrate":
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch v {
			case "on":
				spec.Migrate = true
			case "off":
				spec.Migrate = false
			default:
				return nil, p.errPrevf("migrate takes on or off, got %q", v)
			}
		case "partition":
			part, err := p.partitionSpec()
			if err != nil {
				return nil, err
			}
			spec.Partitions = append(spec.Partitions, part)
		default:
			return nil, p.errPrevf("unknown scheduler statement %q", kw)
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if len(spec.Partitions) == 0 {
		return nil, fmt.Errorf("config: scheduler block needs at least one partition")
	}
	return spec, nil
}

// partitionSpec parses: NAME { workers N [backfill N] [policy P] [maxservice D] }
func (p *parser) partitionSpec() (PartitionSpec, error) {
	var out PartitionSpec
	name, err := p.expect(tokIdent)
	if err != nil {
		return out, err
	}
	out.Name = name
	out.Policy = "edf"
	if _, err := p.expect(tokLBrace); err != nil {
		return out, err
	}
	for p.tok.kind != tokRBrace {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return out, err
		}
		switch kw {
		case "workers":
			if out.Workers, err = p.integer(); err != nil {
				return out, err
			}
		case "backfill":
			if out.Backfill, err = p.integer(); err != nil {
				return out, err
			}
		case "policy":
			v, err := p.expect(tokIdent)
			if err != nil {
				return out, err
			}
			switch v {
			case "fifo", "edf", "prio-edf", "max-benefit":
				out.Policy = v
			default:
				return out, p.errPrevf("unknown policy %q", v)
			}
		case "maxservice":
			if out.MaxService, err = p.duration(); err != nil {
				return out, err
			}
		default:
			return out, p.errPrevf("unknown partition statement %q", kw)
		}
	}
	if err := p.advance(); err != nil {
		return out, err
	}
	if out.Workers <= 0 {
		return out, fmt.Errorf("config: partition %s needs workers", out.Name)
	}
	if out.Backfill >= out.Workers {
		return out, fmt.Errorf("config: partition %s: backfill must leave real-time workers", out.Name)
	}
	return out, nil
}

func joinPath(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "/" + name
}

// resolve validates feed uniqueness, builds group membership, and
// expands subscriber interest sets to leaf feeds.
func resolve(cfg *Config) error {
	seen := make(map[string]bool)
	for _, f := range cfg.Feeds {
		if seen[f.Path] {
			return fmt.Errorf("config: duplicate feed %s", f.Path)
		}
		seen[f.Path] = true
	}
	// Group membership: every ancestor group contains the leaf.
	for _, f := range cfg.Feeds {
		parts := splitPath(f.Path)
		for i := 1; i < len(parts); i++ {
			g := joinParts(parts[:i])
			cfg.Groups[g] = append(cfg.Groups[g], f.Path)
		}
	}
	for g := range cfg.Groups {
		sort.Strings(cfg.Groups[g])
	}
	for _, s := range cfg.Subscribers {
		feedSet := make(map[string]bool)
		for _, sub := range s.Subscriptions {
			if seen[sub] {
				feedSet[sub] = true
				continue
			}
			leaves, ok := cfg.Groups[sub]
			if !ok {
				return fmt.Errorf("config: subscriber %s: unknown feed or group %q", s.Name, sub)
			}
			for _, leaf := range leaves {
				feedSet[leaf] = true
			}
		}
		s.Feeds = make([]string, 0, len(feedSet))
		for f := range feedSet {
			s.Feeds = append(s.Feeds, f)
		}
		sort.Strings(s.Feeds)
	}
	if cfg.StagingDir == "" {
		cfg.StagingDir = "staging"
	}
	if cfg.LandingDir == "" {
		cfg.LandingDir = "landing"
	}
	if err := resolvePlans(cfg, seen); err != nil {
		return err
	}
	if cfg.Channels != nil {
		if err := resolveChannels(cfg, seen); err != nil {
			return err
		}
	}
	if cfg.HTTP != nil {
		if err := resolveHTTP(cfg, seen); err != nil {
			return err
		}
	}
	return nil
}

// resolveHTTP expands each principal's feed ACL to leaf feeds, exactly
// the way subscriber interest sets resolve: a written path may be a
// leaf feed or a group, and groups expand to every descendant leaf.
func resolveHTTP(cfg *Config, leaves map[string]bool) error {
	for _, pr := range cfg.HTTP.Principals {
		feedSet := make(map[string]bool)
		for _, sub := range pr.Subscriptions {
			if leaves[sub] {
				feedSet[sub] = true
				continue
			}
			grp, ok := cfg.Groups[sub]
			if !ok {
				return fmt.Errorf("config: http principal %s: unknown feed or group %q", pr.Name, sub)
			}
			for _, leaf := range grp {
				feedSet[leaf] = true
			}
		}
		pr.Feeds = make([]string, 0, len(feedSet))
		for f := range feedSet {
			pr.Feeds = append(pr.Feeds, f)
		}
		sort.Strings(pr.Feeds)
	}
	return nil
}

// resolveChannels validates the channels block against the resolved
// feeds and subscribers: every group fans out a known leaf feed to
// declared subscribers actually subscribed to it. Runs after
// subscriber subscription expansion, so group membership can be
// checked against effective leaf-feed sets.
func resolveChannels(cfg *Config, leaves map[string]bool) error {
	subsByName := make(map[string]*Subscriber, len(cfg.Subscribers))
	for _, s := range cfg.Subscribers {
		subsByName[s.Name] = s
	}
	groupSeen := make(map[string]bool)
	for _, g := range cfg.Channels.Groups {
		if groupSeen[g.Name] {
			return fmt.Errorf("config: duplicate channel group %q", g.Name)
		}
		groupSeen[g.Name] = true
		if !leaves[g.Feed] {
			return fmt.Errorf("config: channel group %s: %q is not a leaf feed", g.Name, g.Feed)
		}
		memberSeen := make(map[string]bool)
		for _, m := range g.Members {
			if memberSeen[m] {
				return fmt.Errorf("config: channel group %s: duplicate member %q", g.Name, m)
			}
			memberSeen[m] = true
			s, ok := subsByName[m]
			if !ok {
				return fmt.Errorf("config: channel group %s: unknown subscriber %q", g.Name, m)
			}
			subscribed := false
			for _, f := range s.Feeds {
				if f == g.Feed {
					subscribed = true
					break
				}
			}
			if !subscribed {
				return fmt.Errorf("config: channel group %s: member %q does not subscribe to %s", g.Name, m, g.Feed)
			}
		}
	}
	return nil
}

// ResolveSubscriber expands a subscriber's subscriptions against the
// configuration's feeds and groups, filling s.Feeds. Used when adding
// subscribers at runtime.
func (c *Config) ResolveSubscriber(s *Subscriber) error {
	if len(s.Subscriptions) == 0 {
		return fmt.Errorf("config: subscriber %s subscribes to nothing", s.Name)
	}
	leafSet := make(map[string]bool, len(c.Feeds))
	for _, f := range c.Feeds {
		leafSet[f.Path] = true
	}
	feedSet := make(map[string]bool)
	for _, sub := range s.Subscriptions {
		if leafSet[sub] {
			feedSet[sub] = true
			continue
		}
		leaves, ok := c.Groups[sub]
		if !ok {
			return fmt.Errorf("config: subscriber %s: unknown feed or group %q", s.Name, sub)
		}
		for _, leaf := range leaves {
			feedSet[leaf] = true
		}
	}
	s.Feeds = make([]string, 0, len(feedSet))
	for f := range feedSet {
		s.Feeds = append(s.Feeds, f)
	}
	sort.Strings(s.Feeds)
	return nil
}

func splitPath(p string) []string {
	var parts []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			parts = append(parts, p[start:i])
			start = i + 1
		}
	}
	return parts
}

func joinParts(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += "/" + p
	}
	return out
}
