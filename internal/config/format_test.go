package config

import (
	"reflect"
	"sort"
	"testing"
	"time"
)

// equalConfigs compares the semantically meaningful parts of two
// configurations.
func equalConfigs(t *testing.T, a, b *Config) {
	t.Helper()
	if a.Window != b.Window {
		t.Fatalf("window: %v vs %v", a.Window, b.Window)
	}
	if a.ArchiveDir != b.ArchiveDir {
		t.Fatalf("archive: %q vs %q", a.ArchiveDir, b.ArchiveDir)
	}
	if len(a.Feeds) != len(b.Feeds) {
		t.Fatalf("feeds: %d vs %d", len(a.Feeds), len(b.Feeds))
	}
	// Definition order of feeds is not semantic; compare by path.
	af := append([]*Feed{}, a.Feeds...)
	bf := append([]*Feed{}, b.Feeds...)
	sort.Slice(af, func(i, j int) bool { return af[i].Path < af[j].Path })
	sort.Slice(bf, func(i, j int) bool { return bf[i].Path < bf[j].Path })
	for i := range af {
		fa, fb := af[i], bf[i]
		if fa.Path != fb.Path || fa.Compress != fb.Compress ||
			fa.ExpectPeriod != fb.ExpectPeriod || fa.ExpectSources != fb.ExpectSources ||
			fa.Priority != fb.Priority {
			t.Fatalf("feed %d: %+v vs %+v", i, fa, fb)
		}
		if len(fa.Patterns) != len(fb.Patterns) {
			t.Fatalf("feed %s patterns: %d vs %d", fa.Path, len(fa.Patterns), len(fb.Patterns))
		}
		for j := range fa.Patterns {
			if fa.Patterns[j].String() != fb.Patterns[j].String() {
				t.Fatalf("feed %s pattern %d: %q vs %q", fa.Path, j, fa.Patterns[j], fb.Patterns[j])
			}
		}
		na, nb := "", ""
		if fa.Normalize != nil {
			na = fa.Normalize.String()
		}
		if fb.Normalize != nil {
			nb = fb.Normalize.String()
		}
		if na != nb {
			t.Fatalf("feed %s normalize: %q vs %q", fa.Path, na, nb)
		}
	}
	if len(a.Subscribers) != len(b.Subscribers) {
		t.Fatalf("subscribers: %d vs %d", len(a.Subscribers), len(b.Subscribers))
	}
	for i := range a.Subscribers {
		sa, sb := a.Subscribers[i], b.Subscribers[i]
		if sa.Name != sb.Name || sa.Host != sb.Host || sa.Dest != sb.Dest ||
			sa.Method != sb.Method || sa.Retry != sb.Retry || sa.Class != sb.Class {
			t.Fatalf("subscriber %d: %+v vs %+v", i, sa, sb)
		}
		if sa.Trigger != sb.Trigger {
			t.Fatalf("subscriber %s trigger: %+v vs %+v", sa.Name, sa.Trigger, sb.Trigger)
		}
		if !reflect.DeepEqual(sa.Feeds, sb.Feeds) {
			t.Fatalf("subscriber %s feeds: %v vs %v", sa.Name, sa.Feeds, sb.Feeds)
		}
		if !reflect.DeepEqual(sa.Backoff, sb.Backoff) {
			t.Fatalf("subscriber %s backoff: %+v vs %+v", sa.Name, sa.Backoff, sb.Backoff)
		}
	}
	if !reflect.DeepEqual(a.Backoff, b.Backoff) {
		t.Fatalf("backoff: %+v vs %+v", a.Backoff, b.Backoff)
	}
	if !reflect.DeepEqual(a.Admin, b.Admin) {
		t.Fatalf("admin: %+v vs %+v", a.Admin, b.Admin)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted config does not parse: %v\n%s", err, text)
	}
	equalConfigs(t, orig, back)
	// Idempotent: formatting the re-parsed config gives the same text.
	if again := Format(back); again != text {
		t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, again)
	}
}

func TestFormatRoundTripAllFeatures(t *testing.T) {
	src := `
window 1h30m0s
archive "arch"

admin {
    listen "127.0.0.1:9090"
}

scheduler {
    migrate on
    partition interactive { workers 2 policy prio-edf maxservice 100ms }
    partition bulk { workers 4 backfill 1 }
}

feedgroup A {
    feed LEAF {
        pattern "a_%i_%Y%m%d.csv"
        normalize "%Y/%m/a_%i.csv"
        compress gunzip
        expect 5m0s 4
        priority 7
    }
    feedgroup B {
        feed DEEP { pattern "deep_%s_%Y.bz2" compress bunzip2 }
    }
}
feed TOP { pattern "top_%Y%m%d%H%M.log" }

subscriber s1 {
    host "10.0.0.5:9401"
    dest "in"
    subscribe A
    method notify
    trigger batch count 4 timeout 10m0s remote exec "load \"%f\""
    retry 45s
    class interactive
}
subscriber s2 {
    dest "d2"
    subscribe TOP
    trigger perfile exec "echo %f"
}
`
	orig, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted config does not parse: %v\n%s", err, text)
	}
	equalConfigs(t, orig, back)
	if back.Scheduler == nil || !back.Scheduler.Migrate || len(back.Scheduler.Partitions) != 2 {
		t.Fatalf("scheduler block lost in round trip: %+v", back.Scheduler)
	}
	if back.Scheduler.Partitions[0].MaxService != 100*time.Millisecond {
		t.Fatalf("maxservice lost: %+v", back.Scheduler.Partitions[0])
	}
	if back.Admin == nil || back.Admin.Listen != "127.0.0.1:9090" {
		t.Fatalf("admin block lost in round trip: %+v", back.Admin)
	}
}

func TestAdminBlockErrors(t *testing.T) {
	for _, src := range []string{
		`admin { }` + "\nfeed F { pattern \"f_%Y.gz\" }",
		`admin { bogus "x" }` + "\nfeed F { pattern \"f_%Y.gz\" }",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("bad admin block accepted: %s", src)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	for _, d := range []time.Duration{time.Second, 90 * time.Second, time.Hour, 72 * time.Hour} {
		src := "window " + formatDuration(d) + "\nfeed F { pattern \"f_%Y.gz\" }"
		cfg, err := Parse(src)
		if err != nil {
			t.Fatalf("duration %v: %v", d, err)
		}
		if cfg.Window != d {
			t.Fatalf("duration %v round-tripped to %v", d, cfg.Window)
		}
	}
}

func TestBackoffBlockRoundTrip(t *testing.T) {
	src := `
backoff {
    base 250ms
    max 1m0s
    multiplier 1.5
    jitter off
    threshold 5
    deadline 10s
    retries 8
}

feed TOP { pattern "top_%Y.log" }

subscriber s1 {
    dest "d"
    subscribe TOP
    backoff {
        base 2s
        jitter on
    }
}
`
	orig, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := &BackoffSpec{
		Base: 250 * time.Millisecond, Max: time.Minute, Multiplier: 1.5,
		NoJitter: true, JitterSet: true, Threshold: 5,
		Deadline: 10 * time.Second, Retries: 8,
	}
	if !reflect.DeepEqual(orig.Backoff, want) {
		t.Fatalf("parsed backoff = %+v, want %+v", orig.Backoff, want)
	}
	sb := orig.Subscribers[0].Backoff
	if sb == nil || sb.Base != 2*time.Second || !sb.JitterSet || sb.NoJitter {
		t.Fatalf("subscriber backoff = %+v", sb)
	}
	text := Format(orig)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted config does not parse: %v\n%s", err, text)
	}
	equalConfigs(t, orig, back)
	if again := Format(back); again != text {
		t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, again)
	}
}

func TestBackoffSpecApply(t *testing.T) {
	spec := &BackoffSpec{Base: time.Second, Threshold: 4, NoJitter: true, JitterSet: true}
	p := spec.Policy().WithDefaults()
	if p.Base != time.Second || p.Threshold != 4 || !p.NoJitter {
		t.Fatalf("policy = %+v", p)
	}
	// Unwritten fields fall through to defaults.
	if p.Multiplier != 2 || p.Max != 30*time.Second {
		t.Fatalf("defaults not applied: %+v", p)
	}
	// Nil spec is the identity.
	var nilSpec *BackoffSpec
	base := spec.Policy()
	if got := nilSpec.Apply(base); got != base {
		t.Fatalf("nil apply changed policy: %+v", got)
	}
}

func TestBackoffBlockErrors(t *testing.T) {
	for _, src := range []string{
		`backoff { multiplier 0.5 }` + "\nfeed F { pattern \"f_%Y.gz\" }",
		`backoff { jitter maybe }` + "\nfeed F { pattern \"f_%Y.gz\" }",
		`backoff { threshold 0 }` + "\nfeed F { pattern \"f_%Y.gz\" }",
		`backoff { bogus 1 }` + "\nfeed F { pattern \"f_%Y.gz\" }",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("bad block accepted: %s", src)
		}
	}
}
