package config

import (
	"strings"
	"testing"
	"time"
)

const sample = `
# Bistro server configuration (paper running example)
window 72h
landing "landing"
staging "staging"
archive "archive"

feedgroup SNMP {
    feed BPS {
        pattern "BPS_poller%i_%Y%m%d%H.csv.gz"
        normalize "%Y/%m/%d/BPS_poller%i_%H.csv.gz"
        compress gzip
    }
    feed PPS { pattern "PPS_poller%i_%Y%m%d%H.csv.gz" }
    feedgroup ROUTER {
        feed CPU    { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
        feed MEMORY { pattern "MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz" }
    }
}

feed ALARMS {
    pattern "ALARMHISTORY%i%Y%m%d%H%M.gz"
    pattern "ALARMHIST2_%i_%Y%m%d%H%M.gz"
}

subscriber warehouse {
    host "127.0.0.1:9401"
    dest "incoming"
    subscribe SNMP
    method push
    trigger batch count 3 timeout 10m exec "bin/load %f"
    retry 45s
    class bulk
}

subscriber visualizer {
    host "127.0.0.1:9402"
    dest "viz"
    subscribe SNMP/ROUTER/CPU
    subscribe ALARMS
    method notify
    trigger perfile remote exec "refresh %f"
    class interactive
}
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Window != 72*time.Hour {
		t.Errorf("window = %v", cfg.Window)
	}
	if len(cfg.Feeds) != 5 {
		t.Fatalf("feeds = %d, want 5", len(cfg.Feeds))
	}
	cpu, ok := cfg.FeedByPath("SNMP/ROUTER/CPU")
	if !ok {
		t.Fatal("SNMP/ROUTER/CPU missing")
	}
	if cpu.Name != "CPU" || len(cpu.Patterns) != 1 {
		t.Errorf("cpu feed = %+v", cpu)
	}
	bps, _ := cfg.FeedByPath("SNMP/BPS")
	if bps.Compress != CompressGzip || bps.Normalize == nil {
		t.Errorf("bps feed = %+v", bps)
	}
	alarms, _ := cfg.FeedByPath("ALARMS")
	if len(alarms.Patterns) != 2 {
		t.Errorf("alarms patterns = %d, want 2", len(alarms.Patterns))
	}
}

func TestGroupExpansion(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SNMP/BPS", "SNMP/PPS", "SNMP/ROUTER/CPU", "SNMP/ROUTER/MEMORY"}
	got := cfg.Groups["SNMP"]
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("SNMP group = %v, want %v", got, want)
	}
	wh := cfg.Subscribers[0]
	if strings.Join(wh.Feeds, ",") != strings.Join(want, ",") {
		t.Errorf("warehouse feeds = %v", wh.Feeds)
	}
	viz := cfg.Subscribers[1]
	if strings.Join(viz.Feeds, ",") != "ALARMS,SNMP/ROUTER/CPU" {
		t.Errorf("visualizer feeds = %v", viz.Feeds)
	}
}

func TestSubscribersOf(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	subs := cfg.SubscribersOf("SNMP/ROUTER/CPU")
	if len(subs) != 2 {
		t.Fatalf("subscribers of CPU = %v", subs)
	}
	subs = cfg.SubscribersOf("SNMP/BPS")
	if len(subs) != 1 || subs[0] != "warehouse" {
		t.Fatalf("subscribers of BPS = %v", subs)
	}
}

func TestTriggerSpecs(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	wh := cfg.Subscribers[0].Trigger
	if wh.Mode != TriggerBatch || wh.Count != 3 || wh.Timeout != 10*time.Minute || wh.Exec != "bin/load %f" || wh.Remote {
		t.Errorf("warehouse trigger = %+v", wh)
	}
	viz := cfg.Subscribers[1].Trigger
	if viz.Mode != TriggerPerFile || !viz.Remote || viz.Exec != "refresh %f" {
		t.Errorf("visualizer trigger = %+v", viz)
	}
}

func TestSubscriberDefaults(t *testing.T) {
	cfg, err := Parse(`
feed F { pattern "f_%Y%m%d.gz" }
subscriber s { dest "d" subscribe F }
`)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Subscribers[0]
	if s.Method != MethodPush {
		t.Errorf("default method = %v", s.Method)
	}
	if s.Retry != 30*time.Second {
		t.Errorf("default retry = %v", s.Retry)
	}
	if s.Trigger.Mode != TriggerNone {
		t.Errorf("default trigger = %+v", s.Trigger)
	}
}

func TestBareIntegerDurationIsSeconds(t *testing.T) {
	cfg, err := Parse(`window 3600` + "\n" + `feed F { pattern "f_%Y.gz" }`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Window != time.Hour {
		t.Errorf("window = %v, want 1h", cfg.Window)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string // expected substring of the error
	}{
		{"unknown statement", `frobnicate`, "unknown statement"},
		{"feed without pattern", `feed F { }`, "no patterns"},
		{"bad pattern", `feed F { pattern "%Q" }`, "unknown conversion"},
		{"duplicate feed", `feed F { pattern "a_%Y.gz" } feed F { pattern "b_%Y.gz" }`, "duplicate feed"},
		{"unknown subscription", `feed F { pattern "a_%Y.gz" } subscriber s { dest "d" subscribe G }`, "unknown feed or group"},
		{"empty subscriber", `feed F { pattern "a_%Y.gz" } subscriber s { dest "d" }`, "subscribes to nothing"},
		{"bad method", `feed F { pattern "a_%Y.gz" } subscriber s { subscribe F method carrier_pigeon }`, "unknown method"},
		{"batch without bound", `feed F { pattern "a_%Y.gz" } subscriber s { subscribe F trigger batch exec "x" }`, "count and/or timeout"},
		{"count on perfile", `feed F { pattern "a_%Y.gz" } subscriber s { subscribe F trigger perfile count 3 exec "x" }`, "only applies to batch"},
		{"unterminated string", `landing "oops`, "unterminated string"},
		{"unterminated block", `feed F { pattern "a_%Y.gz"`, ""},
		{"bad compress", `feed F { pattern "a_%Y.gz" compress lzma }`, "unknown compress"},
		{"bad class", `feed F { pattern "a_%Y.gz" } subscriber s { subscribe F class turbo }`, "unknown class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.frag)
			}
			if tc.frag != "" && !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not contain %q", err, tc.frag)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	src := "window 1h\n\nfeed F {\n  pattern \"a_%Y.gz\"\n  compress lzma\n}\n"
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error = %v, want line 5", err)
	}
}

func TestCommentsAndEscapes(t *testing.T) {
	cfg, err := Parse(`
# full line comment
feed F { pattern "a_%Y.gz" } # trailing comment
subscriber s {
    dest "dir\\sub\"quoted\""
    subscribe F
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Subscribers[0].Dest != `dir\sub"quoted"` {
		t.Errorf("dest = %q", cfg.Subscribers[0].Dest)
	}
}

func TestDeepHierarchy(t *testing.T) {
	cfg, err := Parse(`
feedgroup A { feedgroup B { feedgroup C { feed D { pattern "d_%Y.gz" } } } }
subscriber s { dest "x" subscribe A/B }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Subscribers[0].Feeds) != 1 || cfg.Subscribers[0].Feeds[0] != "A/B/C/D" {
		t.Errorf("feeds = %v", cfg.Subscribers[0].Feeds)
	}
	for _, g := range []string{"A", "A/B", "A/B/C"} {
		if len(cfg.Groups[g]) != 1 {
			t.Errorf("group %s = %v", g, cfg.Groups[g])
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExpectStatement(t *testing.T) {
	cfg, err := Parse(`
feed BPS {
    pattern "BPS_poller%i_%Y%m%d%H%M.csv"
    expect 5m 3
}
`)
	if err != nil {
		t.Fatal(err)
	}
	f := cfg.Feeds[0]
	if f.ExpectPeriod != 5*time.Minute || f.ExpectSources != 3 {
		t.Fatalf("expect = %v/%d", f.ExpectPeriod, f.ExpectSources)
	}
	// Malformed expect statements error.
	if _, err := Parse(`feed F { pattern "f_%Y.gz" expect 5m }`); err == nil {
		t.Fatal("expect without sources accepted")
	}
}

func TestPriorityStatement(t *testing.T) {
	cfg, err := Parse(`
feed FAULTS {
    pattern "fault_%Y%m%d%H%M.log"
    priority 10
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Feeds[0].Priority != 10 {
		t.Fatalf("priority = %d", cfg.Feeds[0].Priority)
	}
}

func TestSchedulerBlock(t *testing.T) {
	cfg, err := Parse(`
scheduler {
    migrate on
    partition interactive { workers 2 policy prio-edf maxservice 100ms }
    partition bulk { workers 4 backfill 1 policy max-benefit }
}
feed F { pattern "f_%Y.gz" }
subscriber s { dest "d" subscribe F }
`)
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Scheduler
	if sp == nil || !sp.Migrate || len(sp.Partitions) != 2 {
		t.Fatalf("scheduler = %+v", sp)
	}
	p0, p1 := sp.Partitions[0], sp.Partitions[1]
	if p0.Name != "interactive" || p0.Workers != 2 || p0.Policy != "prio-edf" || p0.MaxService != 100*time.Millisecond {
		t.Fatalf("p0 = %+v", p0)
	}
	if p1.Name != "bulk" || p1.Workers != 4 || p1.Backfill != 1 || p1.Policy != "max-benefit" {
		t.Fatalf("p1 = %+v", p1)
	}
}

func TestSchedulerBlockErrors(t *testing.T) {
	cases := []string{
		`scheduler { } feed F { pattern "f_%Y.gz" }`,                                         // empty
		`scheduler { partition p { } } feed F { pattern "f_%Y.gz" }`,                         // no workers
		`scheduler { partition p { workers 2 backfill 2 } } feed F { pattern "f_%Y.gz" }`,    // all backfill
		`scheduler { partition p { workers 2 policy turbo } } feed F { pattern "f_%Y.gz" }`,  // bad policy
		`scheduler { migrate maybe partition p { workers 1 } } feed F { pattern "f_%Y.gz" }`, // bad migrate
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}
