// Package config implements the Bistro configuration language
// (SIGMOD'11 §3.1): a small declarative DSL that formally specifies
// feed hierarchies, feed filename patterns with normalization and
// compression options, and subscribers with their interest sets,
// delivery methods, notification triggers, and batch definitions —
// replacing the ad-hoc script collections the paper criticizes.
//
// Example:
//
//	window 72h
//	staging "staging"
//
//	feedgroup SNMP {
//	    feed BPS {
//	        pattern "BPS_poller%i_%Y%m%d%H.csv.gz"
//	        normalize "%Y/%m/%d/BPS_poller%i_%H.csv.gz"
//	        compress gzip
//	    }
//	    feedgroup ROUTER {
//	        feed CPU    { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
//	        feed MEMORY { pattern "MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz" }
//	    }
//	}
//
//	subscriber warehouse {
//	    host "127.0.0.1:9401"
//	    dest "incoming"
//	    subscribe SNMP/BPS
//	    subscribe SNMP/ROUTER
//	    method push
//	    trigger batch count 3 timeout 10m exec "bin/load %f"
//	    retry 30s
//	}
package config

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber // integer or duration-like (123, 10m, 72h, 30s)
	tokLBrace
	tokRBrace
	tokSlash
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokSlash:
		return "'/'"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokKind
	text string
	line int
}

// lexer scans the configuration text.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// next returns the next token or an error with line information.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '{':
			l.pos++
			return token{tokLBrace, "{", l.line}, nil
		case c == '}':
			l.pos++
			return token{tokRBrace, "}", l.line}, nil
		case c == '/':
			l.pos++
			return token{tokSlash, "/", l.line}, nil
		case c == '"':
			return l.lexString()
		case c >= '0' && c <= '9':
			return l.lexNumber()
		case isIdentStart(rune(c)):
			return l.lexIdent()
		default:
			return token{}, fmt.Errorf("config: line %d: unexpected character %q", l.line, c)
		}
	}
	return token{tokEOF, "", l.line}, nil
}

func (l *lexer) lexString() (token, error) {
	start := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{tokString, b.String(), start}, nil
		case '\n':
			return token{}, fmt.Errorf("config: line %d: unterminated string", start)
		case '\\':
			if l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return token{}, fmt.Errorf("config: line %d: unknown escape \\%c", l.line, l.src[l.pos])
				}
				l.pos++
				continue
			}
			return token{}, fmt.Errorf("config: line %d: trailing backslash", l.line)
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, fmt.Errorf("config: line %d: unterminated string", start)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isNumberChar(l.src[l.pos]) {
		l.pos++
	}
	return token{tokNumber, l.src[start:l.pos], l.line}, nil
}

// isNumberChar admits digits plus duration unit letters and dots so
// "1h30m", "2.5s" and "500ms" lex as single tokens.
func isNumberChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '.' ||
		c == 'h' || c == 'm' || c == 's' || c == 'u' || c == 'n' || c == 'd'
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return token{tokIdent, l.src[start:l.pos], l.line}, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}
