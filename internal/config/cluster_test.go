package config

import (
	"reflect"
	"strings"
	"testing"
)

const clusterSample = `
feed CPU { pattern "cpu_%Y%m%d.csv" }

cluster {
    self "a"
    vnodes 32
    node "a" {
        addr "127.0.0.1:7001"
        standby "127.0.0.1:7101"
    }
    node "b" {
        addr "127.0.0.1:7002"
    }
}
`

func TestClusterBlockParses(t *testing.T) {
	cfg, err := Parse(clusterSample)
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Cluster
	if sp == nil {
		t.Fatal("cluster block missing")
	}
	if sp.Self != "a" || sp.VNodes != 32 {
		t.Fatalf("self/vnodes = %q/%d", sp.Self, sp.VNodes)
	}
	want := []ClusterNodeSpec{
		{Name: "a", Addr: "127.0.0.1:7001", Standby: "127.0.0.1:7101"},
		{Name: "b", Addr: "127.0.0.1:7002"},
	}
	if !reflect.DeepEqual(sp.Nodes, want) {
		t.Fatalf("nodes = %+v, want %+v", sp.Nodes, want)
	}
}

func TestClusterBlockErrors(t *testing.T) {
	feed := "feed F { pattern \"f_%Y.gz\" }\n"
	for name, src := range map[string]string{
		"empty":        feed + `cluster { }`,
		"no addr":      feed + `cluster { node "a" { } }`,
		"dup node":     feed + `cluster { node "a" { addr "x:1" } node "a" { addr "x:2" } }`,
		"unknown self": feed + `cluster { self "z" node "a" { addr "x:1" } }`,
		"bad vnodes":   feed + `cluster { vnodes 0 node "a" { addr "x:1" } }`,
		"bad keyword":  feed + `cluster { bogus "x" node "a" { addr "x:1" } }`,
		"bad node kw":  feed + `cluster { node "a" { addr "x:1" bogus "y" } }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: bad cluster block accepted", name)
		}
	}
}

func TestClusterFormatRoundTrip(t *testing.T) {
	orig, err := Parse(clusterSample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	if !strings.Contains(text, "cluster {") {
		t.Fatalf("formatted config lost the cluster block:\n%s", text)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted config does not parse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(orig.Cluster, back.Cluster) {
		t.Fatalf("cluster round trip: %+v vs %+v", orig.Cluster, back.Cluster)
	}
	if again := Format(back); again != text {
		t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, again)
	}
}
