package config

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

const clusterSample = `
feed CPU { pattern "cpu_%Y%m%d.csv" }

cluster {
    self "a"
    vnodes 32
    failover {
        lease 5s
        heartbeat 1s
        auto on
    }
    node "a" {
        addr "127.0.0.1:7001"
        standby "127.0.0.1:7101"
    }
    node "b" {
        addr "127.0.0.1:7002"
    }
}
`

func TestClusterBlockParses(t *testing.T) {
	cfg, err := Parse(clusterSample)
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Cluster
	if sp == nil {
		t.Fatal("cluster block missing")
	}
	if sp.Self != "a" || sp.VNodes != 32 {
		t.Fatalf("self/vnodes = %q/%d", sp.Self, sp.VNodes)
	}
	if sp.Failover == nil {
		t.Fatal("failover block missing")
	}
	if sp.Failover.Lease != 5*time.Second || sp.Failover.Heartbeat != time.Second || !sp.Failover.Auto {
		t.Fatalf("failover = %+v", sp.Failover)
	}
	want := []ClusterNodeSpec{
		{Name: "a", Addr: "127.0.0.1:7001", Standby: "127.0.0.1:7101"},
		{Name: "b", Addr: "127.0.0.1:7002"},
	}
	if !reflect.DeepEqual(sp.Nodes, want) {
		t.Fatalf("nodes = %+v, want %+v", sp.Nodes, want)
	}
}

func TestClusterBlockErrors(t *testing.T) {
	feed := "feed F { pattern \"f_%Y.gz\" }\n"
	for name, src := range map[string]string{
		"empty":              feed + `cluster { }`,
		"no addr":            feed + `cluster { node "a" { } }`,
		"dup node":           feed + `cluster { node "a" { addr "x:1" } node "a" { addr "x:2" } }`,
		"unknown self":       feed + `cluster { self "z" node "a" { addr "x:1" } }`,
		"bad vnodes":         feed + `cluster { vnodes 0 node "a" { addr "x:1" } }`,
		"bad keyword":        feed + `cluster { bogus "x" node "a" { addr "x:1" } }`,
		"bad node kw":        feed + `cluster { node "a" { addr "x:1" bogus "y" } }`,
		"bad failover kw":    feed + `cluster { failover { bogus 1 } node "a" { addr "x:1" } }`,
		"bad auto value":     feed + `cluster { failover { auto maybe } node "a" { addr "x:1" } }`,
		"zero lease":         feed + `cluster { failover { lease 0 } node "a" { addr "x:1" } }`,
		"heartbeat >= lease": feed + `cluster { failover { lease 2s heartbeat 2s } node "a" { addr "x:1" } }`,
		"negative heartbeat": feed + `cluster { failover { heartbeat -1s } node "a" { addr "x:1" } }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: bad cluster block accepted", name)
		}
	}
}

func TestClusterFormatRoundTrip(t *testing.T) {
	orig, err := Parse(clusterSample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	if !strings.Contains(text, "cluster {") {
		t.Fatalf("formatted config lost the cluster block:\n%s", text)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted config does not parse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(orig.Cluster, back.Cluster) {
		t.Fatalf("cluster round trip: %+v vs %+v", orig.Cluster, back.Cluster)
	}
	if again := Format(back); again != text {
		t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, again)
	}
}

func TestFailoverDefaultsAndPartialBlock(t *testing.T) {
	// Only a lease: heartbeat derives downstream, auto stays off.
	cfg, err := Parse("feed F { pattern \"f_%Y.gz\" }\ncluster { failover { lease 30s } node \"a\" { addr \"x:1\" } }")
	if err != nil {
		t.Fatal(err)
	}
	fo := cfg.Cluster.Failover
	if fo == nil || fo.Lease != 30*time.Second || fo.Heartbeat != 0 || fo.Auto {
		t.Fatalf("failover = %+v", fo)
	}
	// The partial block round-trips too.
	back, err := Parse(Format(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Cluster.Failover, back.Cluster.Failover) {
		t.Fatalf("failover round trip: %+v vs %+v", cfg.Cluster.Failover, back.Cluster.Failover)
	}
	// No failover block at all: nil spec (manual-promotion cluster).
	cfg2, err := Parse("feed F { pattern \"f_%Y.gz\" }\ncluster { node \"a\" { addr \"x:1\" } }")
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Cluster.Failover != nil {
		t.Fatalf("absent failover block parsed as %+v", cfg2.Cluster.Failover)
	}
}
