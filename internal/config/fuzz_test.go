package config

import "testing"

// FuzzPlanConfig drives the config parser — plan {} grammar included —
// with arbitrary text. Invariants:
//   - Parse never panics, whatever the input;
//   - an accepted config Formats to text that re-parses (Format emits
//     only valid syntax, and resolve-time plan checks pass again on
//     their own output);
//   - Format is a fixed point after one round trip (no drift between
//     what the parser builds and what the formatter renders).
func FuzzPlanConfig(f *testing.F) {
	seeds := []string{
		"window 72h\nlanding \"l\"\nstaging \"s\"\nfeed F { pattern \"f_%i\" }\n",
		"landing \"l\"\nstaging \"s\"\nfeed F {\n pattern \"f_%i.gz\"\n plan { decompress gzip parse lines }\n}\n",
		"landing \"l\"\nstaging \"s\"\nfeed F {\n pattern \"f_%i.csv\"\n plan {\n  parse csv\n  validate { columns 2 utf8 }\n  extract r 1\n  validate { require r numeric r }\n  route r { \"a\" G default H }\n }\n}\nfeed G { }\nfeed H { }\n",
		"landing \"l\"\nstaging \"s\"\nfeed F {\n pattern \"f_%i\"\n plan { split G parse json extract h \"host\" enrich { table \"t.csv\" key h at delivery } }\n}\nfeed G { }\n",
		"landing \"l\"\nstaging \"s\"\nfeed A { pattern \"a\" plan { split B } }\nfeed B { plan { parse lines } }\n",
		"landing \"l\"\nstaging \"s\"\nfeed A { pattern \"a\" plan { split B } }\nfeed B { plan { split A } }\n",
		"feed F { pattern \"f\" plan { } }\n",
		"feed F { plan { parse lines extract x 1 route x { \"v\" F } } }\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := Parse(text)
		if err != nil {
			return
		}
		out := Format(cfg)
		cfg2, err := Parse(out)
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\n%s", err, out)
		}
		if out2 := Format(cfg2); out2 != out {
			t.Fatalf("Format not a fixed point:\n--- first\n%s\n--- second\n%s", out, out2)
		}
	})
}
