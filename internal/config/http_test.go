package config

import (
	"reflect"
	"strings"
	"testing"
)

const httpSample = `
feedgroup market {
    feed BPS { pattern "bps_%Y%m%d.csv" }
    feed PPS { pattern "pps_%Y%m%d.csv" }
}
feed ref { pattern "ref_%Y%m%d.csv" }

http {
    listen "127.0.0.1:0"
    max_body 1048576
    principal wh1 {
        token "s3cret"
        feed market/BPS
    }
    principal ops {
        token "t0ken"
        feed market
        feed ref
    }
}
`

func TestHTTPBlockParses(t *testing.T) {
	cfg, err := Parse(httpSample)
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.HTTP
	if sp == nil {
		t.Fatal("http block missing")
	}
	if sp.Listen != "127.0.0.1:0" {
		t.Fatalf("listen = %q", sp.Listen)
	}
	if sp.MaxBody != 1048576 {
		t.Fatalf("max_body = %d", sp.MaxBody)
	}
	if len(sp.Principals) != 2 {
		t.Fatalf("principals = %+v", sp.Principals)
	}
	wh1 := sp.Principals[0]
	if wh1.Name != "wh1" || wh1.Token != "s3cret" {
		t.Fatalf("principal[0] = %+v", wh1)
	}
	if !reflect.DeepEqual(wh1.Feeds, []string{"market/BPS"}) {
		t.Fatalf("wh1 feeds = %v", wh1.Feeds)
	}
	// Group paths expand to every descendant leaf, like subscriber
	// subscriptions.
	ops := sp.Principals[1]
	if !reflect.DeepEqual(ops.Feeds, []string{"market/BPS", "market/PPS", "ref"}) {
		t.Fatalf("ops feeds = %v", ops.Feeds)
	}
}

func TestHTTPBlockErrors(t *testing.T) {
	base := `
feed BPS { pattern "bps_%Y.csv" }
feed PPS { pattern "pps_%Y.csv" }
`
	for name, block := range map[string]string{
		"missing listen":    `http { principal a { token "t" feed BPS } }`,
		"bad max_body":      `http { listen "x" max_body 0 }`,
		"missing token":     `http { listen "x" principal a { feed BPS } }`,
		"no feeds":          `http { listen "x" principal a { token "t" } }`,
		"unknown feed":      `http { listen "x" principal a { token "t" feed NOPE } }`,
		"dup principal":     `http { listen "x" principal a { token "t" feed BPS } principal a { token "u" feed BPS } }`,
		"shared token":      `http { listen "x" principal a { token "t" feed BPS } principal b { token "t" feed PPS } }`,
		"unknown statement": `http { listen "x" bogus 1 }`,
		"unknown principal": `http { listen "x" principal a { token "t" feed BPS bogus 1 } }`,
	} {
		if _, err := Parse(base + block); err == nil {
			t.Errorf("%s: bad http block accepted", name)
		}
	}
}

func TestHTTPFormatRoundTrip(t *testing.T) {
	orig, err := Parse(httpSample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(orig)
	if !strings.Contains(text, "http {") {
		t.Fatalf("formatted config lost the http block:\n%s", text)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted config does not parse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(orig.HTTP, back.HTTP) {
		t.Fatalf("http round trip:\n%+v\nvs\n%+v", orig.HTTP, back.HTTP)
	}
	if again := Format(back); again != text {
		t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", text, again)
	}
}
