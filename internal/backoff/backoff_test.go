package backoff

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bistro/internal/clock"
)

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: time.Second, Max: 10 * time.Second, Multiplier: 2, NoJitter: true}
	b := New(p, 1)
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		10 * time.Second, 10 * time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: delay = %s, want %s", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != time.Second {
		t.Fatalf("after reset: delay = %s", got)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{Base: time.Second, Max: 30 * time.Second, Multiplier: 2}
	a := New(p, Seed("wh"))
	b := New(p, Seed("wh"))
	for i := 0; i < 20; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %s vs %s", i, da, db)
		}
		raw := p.WithDefaults().delay(i)
		if da <= 0 || da > raw {
			t.Fatalf("attempt %d: jittered delay %s outside (0, %s]", i, da, raw)
		}
	}
	c := New(p, Seed("other"))
	diverged := false
	d := New(p, Seed("wh"))
	for i := 0; i < 10; i++ {
		if c.Next() != d.Next() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.Base != 500*time.Millisecond || p.Max != 30*time.Second ||
		p.Multiplier != 2 || p.Threshold != 3 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestClassify(t *testing.T) {
	if Classify(errors.New("boom")) != ClassTransient {
		t.Fatal("plain error should be transient")
	}
	perm := Permanent(errors.New("unknown subscriber"))
	if Classify(perm) != ClassPermanent {
		t.Fatal("wrapped error should be permanent")
	}
	// Wrapping again (fmt %w) preserves the class.
	if Classify(fmt.Errorf("context: %w", perm)) != ClassPermanent {
		t.Fatal("class lost through wrapping")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if !errors.Is(fmt.Errorf("x: %w", ErrDeadline), ErrDeadline) {
		t.Fatal("deadline error lost identity")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	p := Policy{Base: time.Second, Max: 8 * time.Second, Multiplier: 2, NoJitter: true, Threshold: 2}
	br := NewBreaker(p, 1)
	now := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

	if !br.Allow(now) || br.State() != Closed {
		t.Fatal("new breaker should be closed")
	}
	if br.Failure(now, errors.New("f1")) {
		t.Fatal("first failure opened breaker below threshold")
	}
	if !br.Failure(now, errors.New("f2")) {
		t.Fatal("threshold failure did not open breaker")
	}
	if br.State() != Open {
		t.Fatalf("state = %s", br.State())
	}
	// Open window: base delay 1s, no probe before it elapses.
	if br.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("probe admitted inside open window")
	}
	if d := br.ProbeIn(now); d != time.Second {
		t.Fatalf("ProbeIn = %s, want 1s", d)
	}
	// After the window: exactly one half-open probe.
	at := now.Add(time.Second)
	if !br.Allow(at) {
		t.Fatal("probe not admitted after open window")
	}
	if br.State() != HalfOpen {
		t.Fatalf("state = %s, want half-open", br.State())
	}
	if br.Allow(at) {
		t.Fatal("second concurrent half-open probe admitted")
	}
	// Failed probe reopens with a grown window (2s).
	if !br.Failure(at, errors.New("probe failed")) {
		t.Fatal("failed half-open probe should report reopening")
	}
	if br.Allow(at.Add(1500 * time.Millisecond)) {
		t.Fatal("probe admitted inside grown open window")
	}
	at2 := at.Add(2 * time.Second)
	if !br.Allow(at2) {
		t.Fatal("probe not admitted after grown window")
	}
	// Successful probe closes and rewinds everything.
	br.Success()
	if br.State() != Closed || !br.Allow(at2) {
		t.Fatal("success did not close breaker")
	}
	if br.Openings() != 2 {
		t.Fatalf("openings = %d, want 2", br.Openings())
	}
	// Threshold counts reset too: one failure must not reopen.
	if br.Failure(at2, errors.New("f")) {
		t.Fatal("single failure after close reopened breaker")
	}
}

func TestBreakerOpenWindowGrowsToCap(t *testing.T) {
	p := Policy{Base: time.Second, Max: 4 * time.Second, Multiplier: 2, NoJitter: true, Threshold: 1}
	br := NewBreaker(p, 1)
	now := time.Unix(0, 0)
	windows := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second}
	for i, w := range windows {
		br.Failure(now, errors.New("x"))
		if d := br.ProbeIn(now); d != w {
			t.Fatalf("opening %d: window = %s, want %s", i, d, w)
		}
		at := now.Add(w)
		if !br.Allow(at) {
			t.Fatalf("opening %d: probe not admitted", i)
		}
		now = at
	}
}

func TestTripForcesOpen(t *testing.T) {
	br := NewBreaker(Policy{NoJitter: true}, 1)
	now := time.Unix(100, 0)
	br.Trip(now, errors.New("administrative"))
	if br.State() != Open {
		t.Fatal("trip did not open breaker")
	}
	if br.LastErr() == nil {
		t.Fatal("trip lost its error")
	}
}

func TestDoDeadline(t *testing.T) {
	clk := clock.NewSimulated(time.Unix(0, 0))
	done := make(chan error, 1)
	go func() {
		done <- Do(clk, time.Second, func() error {
			clk.Sleep(5 * time.Second) // hangs past the deadline
			return nil
		})
	}()
	// Advance past the deadline; Do must give up even though fn is
	// still blocked.
	for i := 0; i < 20; i++ {
		clk.Advance(500 * time.Millisecond)
		select {
		case err := <-done:
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("err = %v, want deadline", err)
			}
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatal("Do did not time out")
}

func TestDoFastPath(t *testing.T) {
	clk := clock.NewReal()
	if err := Do(clk, time.Second, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Do(clk, 0, func() error { return errors.New("x") }); err == nil {
		t.Fatal("no-deadline path lost the error")
	}
}
