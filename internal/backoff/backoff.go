// Package backoff implements Bistro's fault-tolerance policies for
// unreliable subscribers and peers (SIGMOD'11 §4.2–§4.3): exponential
// retry backoff with full jitter, a per-resource circuit breaker
// (closed → open → half-open), transient-vs-permanent error
// classification, and per-transfer deadlines.
//
// The paper's reliability argument is that delivery to healthy
// subscribers must continue while others fail, flap, or reconnect.
// That requires three things the naive retry loop lacks: retries must
// be spaced out (a fast-failing subscriber must not spin a delivery
// worker), repeated failure must cut the subscriber out of the hot
// path entirely (the breaker opens and a cheap probe takes over), and
// recovery must be detected promptly but economically (half-open
// probes on an exponential schedule rather than a fixed interval).
//
// Everything here is clock-injected and deterministically seedable so
// the fault-injection experiments (E11) reproduce exactly.
package backoff

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"bistro/internal/clock"
)

// Policy bundles the tunables for one resource class (a subscriber, a
// peer host, a source connection). The zero value is usable: every
// field has a production default applied by WithDefaults.
type Policy struct {
	// Base is the first retry delay. Default 500ms.
	Base time.Duration
	// Max caps the grown delay. Default 30s.
	Max time.Duration
	// Multiplier grows the delay per consecutive failure. Default 2.
	Multiplier float64
	// NoJitter disables full jitter. Jitter is on by default: each
	// delay is drawn uniformly from (0, d], which decorrelates retry
	// storms when many subscribers fail together.
	NoJitter bool
	// Threshold is the consecutive-failure count that opens the
	// circuit. Default 3.
	Threshold int
	// TransferDeadline bounds one transfer attempt; an attempt that
	// exceeds it counts as a (transient) failure. 0 disables.
	TransferDeadline time.Duration
	// MaxRetries bounds retry loops that have an end (dialing a
	// server, uploading one file). 0 means the caller's default; the
	// delivery engine's in-queue retries are unbounded by design (the
	// breaker, not a counter, decides when to stop).
	MaxRetries int
}

// WithDefaults returns the policy with zero fields replaced by
// production defaults.
func (p Policy) WithDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 500 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 30 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Threshold <= 0 {
		p.Threshold = 3
	}
	return p
}

// delay computes the raw (unjittered) delay for attempt n (0-based).
func (p Policy) delay(attempt int) time.Duration {
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			return p.Max
		}
	}
	if d > float64(p.Max) {
		return p.Max
	}
	return time.Duration(d)
}

// Seed derives a deterministic RNG seed from a resource name, so
// per-subscriber jitter is stable across runs of an experiment.
func Seed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// Backoff tracks the retry schedule for one resource. It is
// goroutine-safe.
type Backoff struct {
	mu      sync.Mutex
	policy  Policy
	attempt int
	rnd     *rand.Rand
}

// New builds a Backoff from a policy (defaults applied) and a seed
// (use Seed(name) for determinism, or any value).
func New(p Policy, seed int64) *Backoff {
	return &Backoff{policy: p.WithDefaults(), rnd: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to wait before the next attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.policy.delay(b.attempt)
	b.attempt++
	if !b.policy.NoJitter && d > 0 {
		// Full jitter: uniform in (0, d].
		d = time.Duration(b.rnd.Int63n(int64(d))) + 1
	}
	return d
}

// Peek returns the delay the next call to Next would use, without
// advancing (and without jitter).
func (b *Backoff) Peek() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.policy.delay(b.attempt)
}

// Attempt reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Reset rewinds the schedule after a success.
func (b *Backoff) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.attempt = 0
}

// Class partitions errors by retry-worthiness.
type Class int

// Error classes.
const (
	// ClassTransient errors are worth retrying: timeouts, connection
	// resets, injected faults, a subscriber mid-flap.
	ClassTransient Class = iota
	// ClassPermanent errors will not heal with time: unknown
	// subscriber, malformed request, configuration mistakes. Retrying
	// burns capacity for nothing.
	ClassPermanent
)

func (c Class) String() string {
	if c == ClassPermanent {
		return "permanent"
	}
	return "transient"
}

// permanentError marks an error as not retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Classify reports it as ClassPermanent.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// ErrDeadline is returned by Do when an attempt exceeds its deadline.
// It classifies as transient.
var ErrDeadline = errors.New("backoff: transfer deadline exceeded")

// Classify reports an error's retry class. Unknown errors default to
// transient — the breaker bounds how long optimism can last.
func Classify(err error) Class {
	var pe *permanentError
	if errors.As(err, &pe) {
		return ClassPermanent
	}
	return ClassTransient
}

// State is a circuit breaker state.
type State int

// Breaker states.
const (
	// Closed: requests flow; failures are counted.
	Closed State = iota
	// Open: requests are rejected until the open window elapses.
	Open
	// HalfOpen: one probe is admitted; its outcome decides the next
	// state.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-resource circuit breaker. Time is supplied by the
// caller (from an injected clock) so the breaker itself stays
// deterministic. It is goroutine-safe.
type Breaker struct {
	mu       sync.Mutex
	policy   Policy
	bo       *Backoff
	state    State
	fails    int       // consecutive failures while closed
	probeAt  time.Time // when Open admits a half-open probe
	lastErr  error
	openings int // cumulative closed/half-open → open transitions
}

// NewBreaker builds a breaker with the policy's threshold and an
// exponential open-window schedule derived from the same policy.
func NewBreaker(p Policy, seed int64) *Breaker {
	p = p.WithDefaults()
	return &Breaker{policy: p, bo: New(p, seed)}
}

// State reports the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Openings reports how many times the breaker has opened (including
// reopens after failed half-open probes).
func (b *Breaker) Openings() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openings
}

// Allow reports whether a request may proceed at time now. In Open it
// transitions to HalfOpen (admitting exactly one probe) once the open
// window has elapsed.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if !now.Before(b.probeAt) {
			b.state = HalfOpen
			return true
		}
		return false
	default: // HalfOpen: a probe is already in flight
		return false
	}
}

// ProbeIn reports how long until Allow will admit a probe (0 when it
// would admit one now, or when the breaker is closed).
func (b *Breaker) ProbeIn(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open || !now.Before(b.probeAt) {
		return 0
	}
	return b.probeAt.Sub(now)
}

// Success records a successful request: the breaker closes and all
// schedules rewind.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.lastErr = nil
	b.bo.Reset()
}

// Failure records a failed request at time now and returns true when
// the call transitioned the breaker to Open (from Closed past the
// threshold, or a failed half-open probe reopening it). The open
// window grows exponentially with consecutive openings.
func (b *Breaker) Failure(now time.Time, err error) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = err
	switch b.state {
	case Closed:
		b.fails++
		if b.fails < b.policy.Threshold {
			return false
		}
		b.open(now)
		return true
	case HalfOpen:
		b.open(now)
		return true
	default: // Open: a straggling in-flight failure; keep state
		return false
	}
}

// open transitions to Open under the lock.
func (b *Breaker) open(now time.Time) {
	b.state = Open
	b.openings++
	b.probeAt = now.Add(b.bo.Next())
}

// Trip forces the breaker open at time now (administrative action or
// an unambiguous hard failure).
func (b *Breaker) Trip(now time.Time, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		return
	}
	b.lastErr = err
	b.open(now)
}

// LastErr returns the most recent recorded failure.
func (b *Breaker) LastErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// Do runs fn, bounding it by deadline d on clk. When fn has not
// returned in time, Do returns ErrDeadline (transient) and abandons
// the attempt: fn keeps running in its goroutine until it finishes,
// and its late result is discarded. d <= 0 runs fn inline with no
// deadline.
func Do(clk clock.Clock, d time.Duration, fn func() error) error {
	if d <= 0 {
		return fn()
	}
	done := make(chan error, 1)
	go func() { done <- fn() }()
	t := clk.NewTimer(d)
	select {
	case err := <-done:
		t.Stop()
		return err
	case <-t.C():
		return fmt.Errorf("%w (after %s)", ErrDeadline, d)
	}
}
