package protocol

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipePair returns two connected protocol Conns.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestSendRecvRoundTrip(t *testing.T) {
	client, server := pipePair(t)
	defer client.Close()
	defer server.Close()

	msgs := []any{
		Hello{Role: "source", Name: "poller1"},
		FileReady{Path: "BPS_poller1_2010092504.csv.gz"},
		Upload{Name: "x.csv", Data: []byte("a,b\n"), CRC: 42},
		EndOfBatch{Feed: "SNMP/BPS"},
		Deliver{FileID: 7, Feed: "SNMP/BPS", Name: "f.csv", Data: []byte("zz"), CRC: 9},
		Notify{FileID: 8, Feed: "SNMP/PPS", Name: "g.csv", Size: 123},
		Fetch{FileID: 8},
		Trigger{Command: "load x", Paths: []string{"a", "b"}},
		Ack{OK: true},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range msgs {
			got, err := server.Recv()
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if err := server.Send(Ack{OK: true}); err != nil {
				t.Errorf("ack: %v", err)
				return
			}
			_ = got
		}
	}()
	for _, m := range msgs {
		if err := client.Send(m); err != nil {
			t.Fatalf("send %T: %v", m, err)
		}
		reply, err := client.Recv()
		if err != nil {
			t.Fatalf("recv ack: %v", err)
		}
		if ack, ok := reply.(Ack); !ok || !ack.OK {
			t.Fatalf("reply = %#v", reply)
		}
	}
	wg.Wait()
}

func TestMessageTypesSurviveEncoding(t *testing.T) {
	client, server := pipePair(t)
	defer client.Close()
	defer server.Close()

	go client.Send(Deliver{FileID: 99, Feed: "F", Name: "n", Data: []byte{1, 2, 3}, CRC: 77})
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := got.(Deliver)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if d.FileID != 99 || d.Feed != "F" || len(d.Data) != 3 || d.CRC != 77 {
		t.Fatalf("deliver = %+v", d)
	}
}

func TestCallSuccessAndError(t *testing.T) {
	client, server := pipePair(t)
	defer client.Close()
	defer server.Close()

	go func() {
		server.Recv()
		server.Send(Ack{OK: true})
		server.Recv()
		server.Send(Ack{OK: false, Error: "disk full"})
	}()
	if err := client.Call(FileReady{Path: "x"}); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	err := client.Call(FileReady{Path: "y"})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("call 2 err = %v", err)
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		conn := NewConn(c)
		defer conn.Close()
		msg, err := conn.Recv()
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if h, ok := msg.(Hello); !ok || h.Name != "sub1" {
			t.Errorf("hello = %#v", msg)
		}
		conn.Send(Ack{OK: true})
	}()

	conn, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Call(Hello{Role: "subscriber", Name: "sub1"}); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestRecvTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			defer c.Close()
			time.Sleep(500 * time.Millisecond)
		}
	}()
	conn, err := Dial(ln.Addr().String(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Recv(); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestSubscribeSurvivesEncoding(t *testing.T) {
	client, server := pipePair(t)
	defer client.Close()
	defer server.Close()

	from := time.Date(2011, 6, 9, 0, 0, 0, 0, time.UTC)
	go client.Send(Subscribe{
		Name: "analyst", Host: "127.0.0.1:9", Dest: "in",
		Feeds: []string{"SNMP/BPS", "LOGS"}, From: from, Class: "bulk",
	})
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got.(Subscribe)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if s.Name != "analyst" || len(s.Feeds) != 2 || !s.From.Equal(from) || s.Class != "bulk" {
		t.Fatalf("subscribe = %+v", s)
	}
}
