// Package protocol defines Bistro's lightweight communication
// interfaces (SIGMOD'11 §4.1): the source-side protocol that lets feed
// producers announce deposited files and mark end-of-batch punctuation,
// and the subscriber-side protocol used for push delivery, hybrid
// push-pull notification, remote trigger invocation, and acknowledged
// receipt.
//
// Messages travel as gob-encoded envelopes over a stream connection.
// The protocol is deliberately small: the paper's point is that the
// *existence* of these messages — "this file is ready", "this batch is
// complete", "this file was delivered" — is what removes the need for
// expensive directory polling, not any sophistication in their
// encoding.
package protocol

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// Hello identifies a connecting peer.
type Hello struct {
	// Role is "source" or "subscriber".
	Role string
	// Name is the peer's configured name.
	Name string
}

// FileReady announces that a source deposited a file into a landing
// directory (shared-filesystem sources).
type FileReady struct {
	// Path is relative to the landing directory.
	Path string
}

// Upload carries file content from a remote source that has no shared
// filesystem with the server.
type Upload struct {
	// Name is the filename as the source would have deposited it.
	Name string
	// Data is the file content.
	Data []byte
	// CRC is the IEEE CRC32 of Data.
	CRC uint32
	// Relayed marks an upload forwarded peer-to-peer by a cluster node
	// that did not own the file's feed; the receiver must not forward
	// it again (shard maps briefly disagree during failover).
	Relayed bool
	// Epoch, on a relayed upload, is the forwarding node's cluster
	// ownership epoch. A receiver whose epoch is newer refuses the
	// write (fencing): a partitioned old owner relaying with its stale
	// map must not deposit through nodes that have moved on. Zero means
	// "no epoch" and is never fenced.
	Epoch uint64
}

// EndOfBatch is source punctuation: all files for the current batch of
// the named feed (or of every feed the source contributes to, when
// Feed is empty) have been deposited.
type EndOfBatch struct {
	Feed string
}

// Deliver pushes one staged file to a subscriber.
type Deliver struct {
	// FileID is the server receipt id (echoed in acknowledgments).
	FileID uint64
	// Feed is the leaf feed path.
	Feed string
	// Name is the destination-relative path to store the file under.
	Name string
	// Data is the staged content.
	Data []byte
	// CRC is the IEEE CRC32 of Data.
	CRC uint32
}

// DeliverBegin opens a chunked transfer for a large staged file; the
// content follows as DeliverChunk messages and ends with DeliverEnd,
// answered by a single Ack once the file is durably in place.
type DeliverBegin struct {
	FileID uint64
	Feed   string
	Name   string
	Size   int64
	CRC    uint32
}

// DeliverChunk carries one slice of a chunked transfer.
type DeliverChunk struct {
	Data []byte
}

// DeliverEnd closes a chunked transfer.
type DeliverEnd struct{}

// Notify tells a hybrid push-pull subscriber that a file is available
// for retrieval at its convenience.
type Notify struct {
	FileID uint64
	Feed   string
	Name   string
	Size   int64
}

// Fetch retrieves a previously announced file (hybrid pull).
type Fetch struct {
	FileID uint64
}

// Subscribe registers (or re-registers) a subscriber at runtime —
// "SUBSCRIBE <feeds> [FROM <ts>]". With a non-zero From the server
// additionally starts a replay session streaming archived history from
// that timestamp through the dedicated replay partition, handing off
// to live delivery at the watermark.
type Subscribe struct {
	// Name is the subscriber's identity (receipts are recorded under
	// it, so reconnecting with the same name resumes exactly-once).
	Name string
	// Host is the subscriber daemon address for pushed delivery; empty
	// means local-directory delivery at Dest.
	Host string
	// Dest is the destination path prefix.
	Dest string
	// Feeds are feed or feed-group paths to subscribe to.
	Feeds []string
	// From, when non-zero, requests catch-up of history older than the
	// staging window, served from the archive.
	From time.Time
	// Class is the scheduling class ("interactive", "bulk" or empty).
	Class string
}

// Trigger asks the subscriber daemon to run a registered command on
// its host (remote trigger invocation).
type Trigger struct {
	Command string
	Paths   []string
}

// Resolve asks a cluster node which node owns a feed. Any live node
// can answer: the shard map is static configuration plus promotions,
// so clients locate shards without a coordinator.
type Resolve struct {
	// Feed is a feed or feed-group path ("" resolves the local node
	// itself).
	Feed string
}

// Resolved answers Resolve.
type Resolved struct {
	// Node is the owning node's name ("" on an unclustered server).
	Node string
	// Addr is the owning node's protocol address.
	Addr string
	// Standby is the owner's standby replication address, if any.
	Standby string
	// Owner reports whether the answering node is itself the owner.
	Owner bool
	// Epoch is the answering node's cluster ownership epoch (0 on an
	// unclustered server). When several nodes answer differently
	// mid-failover, the highest epoch has the freshest map.
	Epoch uint64
}

// Ack acknowledges any request.
type Ack struct {
	OK    bool
	Error string
	// Redirect, set with OK=false on a Subscribe to a non-owning
	// cluster node, carries the owning node's address so the client can
	// re-issue the request there.
	Redirect string
	// Epoch, when non-zero, is the responder's cluster ownership epoch
	// — on a fencing refusal it tells a stale sender how far behind it
	// is, and on a Rejoin ack it seeds the new standby's fence floor.
	Epoch uint64
}

// Rejoin asks a serving cluster node to adopt the sender as its new
// warm standby: the receiver re-seeds the standby listening at
// StandbyAddr from its live store (fresh snapshot + staged payload
// walk + archive backlog) and flips it to live shipping, all while it
// keeps serving. Sent by a recovered or brand-new node re-entering the
// cluster (server.RejoinAsStandby).
type Rejoin struct {
	// Node is the rejoining node's name.
	Node string
	// StandbyAddr is the replication listen address of the rejoiner's
	// fresh standby.
	StandbyAddr string
}

func init() {
	gob.Register(Hello{})
	gob.Register(FileReady{})
	gob.Register(Upload{})
	gob.Register(EndOfBatch{})
	gob.Register(Deliver{})
	gob.Register(DeliverBegin{})
	gob.Register(DeliverChunk{})
	gob.Register(DeliverEnd{})
	gob.Register(Notify{})
	gob.Register(Fetch{})
	gob.Register(Subscribe{})
	gob.Register(Trigger{})
	gob.Register(Resolve{})
	gob.Register(Resolved{})
	gob.Register(Rejoin{})
	gob.Register(Ack{})
}

// envelope wraps messages so gob can carry any registered type.
type envelope struct {
	Msg any
}

// Conn is a message-oriented wrapper over a stream connection.
type Conn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// Timeout bounds each send/receive (0 = none).
	Timeout time.Duration
}

// NewConn wraps an established connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// Dial connects to a Bistro endpoint.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("protocol: dial %s: %w", addr, err)
	}
	conn := NewConn(c)
	conn.Timeout = timeout
	return conn, nil
}

// Send writes one message.
func (c *Conn) Send(msg any) error {
	if c.Timeout > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.Timeout)); err != nil {
			return fmt.Errorf("protocol: set deadline: %w", err)
		}
	}
	if err := c.enc.Encode(envelope{Msg: msg}); err != nil {
		return fmt.Errorf("protocol: send: %w", err)
	}
	return nil
}

// Recv reads one message.
func (c *Conn) Recv() (any, error) {
	if c.Timeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(c.Timeout)); err != nil {
			return nil, fmt.Errorf("protocol: set deadline: %w", err)
		}
	}
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("protocol: recv: %w", err)
	}
	return env.Msg, nil
}

// Call sends a request and waits for an Ack.
func (c *Conn) Call(msg any) error {
	if err := c.Send(msg); err != nil {
		return err
	}
	reply, err := c.Recv()
	if err != nil {
		return err
	}
	ack, ok := reply.(Ack)
	if !ok {
		return fmt.Errorf("protocol: expected Ack, got %T", reply)
	}
	if !ack.OK {
		return fmt.Errorf("protocol: remote error: %s", ack.Error)
	}
	return nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }
