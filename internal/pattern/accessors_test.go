package pattern

import "testing"

// TestAccessors covers the compiled pattern's introspection surface
// (used by the classifier index and the discovery report).
func TestAccessors(t *testing.T) {
	src := "ticks_%s_%Y%m%d_%i.csv"
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != src {
		t.Fatalf("String() = %q, want %q", p.String(), src)
	}
	if len(p.Segments()) == 0 {
		t.Fatal("Segments() empty for a multi-segment pattern")
	}
	if n := p.NumStrings(); n != 1 {
		t.Fatalf("NumStrings() = %d, want 1", n)
	}
	if n := p.NumInts(); n != 1 {
		t.Fatalf("NumInts() = %d, want 1", n)
	}
	if !p.HasTimestamp() {
		t.Fatal("HasTimestamp() = false for a dated pattern")
	}

	plain, err := Compile("static.csv")
	if err != nil {
		t.Fatal(err)
	}
	if plain.HasTimestamp() {
		t.Fatal("HasTimestamp() = true for an all-literal pattern")
	}
	if plain.NumStrings() != 0 || plain.NumInts() != 0 {
		t.Fatal("literal pattern reports conversions")
	}
}
