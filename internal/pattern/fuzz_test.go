package pattern

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestAdversarialBacktracking pins the memoization fix: patterns with
// repeated bounded conversions are legal but used to backtrack
// exponentially on all-digit or all-separator names. With failed-state
// memoization each must finish in milliseconds, not hours.
func TestAdversarialBacktracking(t *testing.T) {
	cases := []struct{ src, name string }{
		{strings.Repeat("%i", 12) + "x", strings.Repeat("1", 48)},
		{strings.Repeat("%i_", 12) + "x", strings.Repeat("1", 48)},
		{strings.Repeat("%s_", 12) + "x", strings.Repeat("_", 48)},
		{strings.Repeat("*_", 12) + "x", strings.Repeat("_", 48)},
	}
	for _, c := range cases {
		p, err := Compile(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		start := time.Now()
		if p.Matches(c.name) {
			t.Fatalf("%s unexpectedly matched %s", c.src, c.name)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("%s vs %s took %v — backtracking blowup", c.src, c.name, d)
		}
	}
}

// FuzzPatternRoundTrip drives the full compile→match→render→rematch
// loop with arbitrary pattern sources and names. Invariants:
//   - Compile never panics, and a compiled pattern's String()
//     recompiles to an equivalent pattern;
//   - Match never panics and terminates (the memoized matcher);
//   - a successful Match renders via its own Fields, and the rendered
//     name matches again (round-trip: Render is Match's inverse up to
//     wildcard text and leading zeros on %i);
//   - every Match is sanctioned by the pattern's Regexp (the regexp
//     accepts a superset — it skips the calendar check).
func FuzzPatternRoundTrip(f *testing.F) {
	f.Add("CPU_POLL%i_%Y%m%d%H%M.txt", "CPU_POLL7_201009250451.txt")
	f.Add("%Y/%m/%d/poller%i.csv.gz", "2010/09/25/poller3.csv.gz")
	f.Add("MEM_%s_%y%m%d.gz", "MEM_east_100925.gz")
	f.Add("a*b%ic", "axxb12c")
	f.Add("%i%i%i", "111111")
	f.Add("%%escaped%s", "%escapedx")
	f.Add("%H%M%S", "045159")
	f.Add("*", "")
	f.Fuzz(func(t *testing.T, src, name string) {
		p, err := Compile(src)
		if err != nil {
			return
		}
		// String() must reproduce a pattern that compiles and agrees on
		// this name.
		p2, err := Compile(p.String())
		if err != nil {
			t.Fatalf("String() %q does not recompile: %v", p.String(), err)
		}
		fields, ok := p.Match(name)
		if ok2 := p2.Matches(name); ok != ok2 {
			t.Fatalf("pattern %q and its String() recompile disagree on %q: %v vs %v", src, name, ok, ok2)
		}
		if !ok {
			return
		}
		re, err := regexp.Compile(p.Regexp())
		if err != nil {
			t.Fatalf("Regexp() %q does not compile: %v", p.Regexp(), err)
		}
		if !re.MatchString(name) {
			t.Fatalf("pattern %q matched %q but Regexp() %q rejects it", src, name, p.Regexp())
		}
		rendered, err := p.Render(fields)
		if err != nil {
			t.Fatalf("pattern %q matched %q but Render failed: %v", src, name, err)
		}
		if !p.Matches(rendered) {
			t.Fatalf("pattern %q: rendered %q (from %q) does not re-match", src, rendered, name)
		}
	})
}
