package pattern

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"abc%",
		"abc%Q",
		"%s%s",     // adjacent unbounded
		"%s*",      // adjacent unbounded
		"*%s",      // adjacent unbounded
		"a%Y%Yb",   // duplicate time conversion
		"x%m_%m.t", // duplicate month
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompileOK(t *testing.T) {
	for _, src := range []string{
		"MEMORY%s.%Y%m%d.gz",
		"MEMORY_poller%i_%Y%m%d.gz",
		"TRAP__%Y%m%d_DCTAGN_klpi.txt",
		"%Y/%m/%d/poller%i.csv.gz",
		"plain-literal.txt",
		"100%%done_%Y.log",
		"*_%Y%m%d.csv.gz",
		"CPU_POLL%i_%Y%m%d%H%M.txt",
	} {
		if _, err := Compile(src); err != nil {
			t.Errorf("Compile(%q): %v", src, err)
		}
	}
}

func TestMatchPaperExamples(t *testing.T) {
	tests := []struct {
		pattern string
		name    string
		ok      bool
	}{
		{"MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz", "MEMORY_POLLER1_2010092504_51.csv.gz", true},
		{"MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz", "MEMORY_POLLER2_2010092504_59.csv.gz", true},
		{"MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz", "CPU_POLL1_201009250502.txt", false},
		{"CPU_POLL%i_%Y%m%d%H%M.txt", "CPU_POLL2_201009251001.txt", true},
		{"MEMORY_poller%i_%Y%m%d.gz", "MEMORY_poller1_20100925.gz", true},
		// The false-negative example from §5.2: capitalized Poller.
		{"MEMORY_poller%i_%Y%m%d.gz", "MEMORY_Poller1_20100926.gz", false},
		{"Poller%i_router_%s_%Y_%m_%d_%H.csv.gz", "Poller1_router_a_2010_12_30_00.csv.gz", true},
		{"TRAP__%Y%m%d_DCTAGN_klpi.txt", "TRAP__20100308_DCTAGN_klpi.txt", true},
	}
	for _, tc := range tests {
		p := MustCompile(tc.pattern)
		if got := p.Matches(tc.name); got != tc.ok {
			t.Errorf("%q.Matches(%q) = %v, want %v", tc.pattern, tc.name, got, tc.ok)
		}
	}
}

func TestMatchExtractsFields(t *testing.T) {
	p := MustCompile("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz")
	f, ok := p.Match("MEMORY_POLLER7_2010092504_51.csv.gz")
	if !ok {
		t.Fatal("no match")
	}
	if len(f.Ints) != 1 || f.Ints[0] != 7 {
		t.Fatalf("Ints = %v, want [7]", f.Ints)
	}
	ts, ok := f.Time.Timestamp(time.UTC)
	if !ok {
		t.Fatal("no timestamp")
	}
	want := time.Date(2010, 9, 25, 4, 51, 0, 0, time.UTC)
	if !ts.Equal(want) {
		t.Fatalf("timestamp = %v, want %v", ts, want)
	}
}

func TestMatchStringField(t *testing.T) {
	p := MustCompile("Poller%i_router_%s_%Y_%m_%d_%H.csv.gz")
	f, ok := p.Match("Poller1_router_a_2010_12_30_00.csv.gz")
	if !ok {
		t.Fatal("no match")
	}
	if len(f.Strings) != 1 || f.Strings[0] != "a" {
		t.Fatalf("Strings = %v, want [a]", f.Strings)
	}
}

func TestMatchRejectsBadCalendar(t *testing.T) {
	p := MustCompile("x_%Y%m%d.gz")
	if p.Matches("x_20101340.gz") { // month 13
		t.Error("matched month 13")
	}
	if p.Matches("x_20101232.gz") { // day 32
		t.Error("matched day 32")
	}
	if !p.Matches("x_20101231.gz") {
		t.Error("rejected valid date")
	}
}

func TestMatchBacktracking(t *testing.T) {
	// %i followed by fixed-width year: integer must shrink so the
	// year can match.
	p := MustCompile("f%i%Y.log")
	f, ok := p.Match("f1232011.log")
	if !ok {
		t.Fatal("no match")
	}
	if f.Ints[0] != 123 || f.Time.Year != 2011 {
		t.Fatalf("got int=%d year=%d, want 123/2011", f.Ints[0], f.Time.Year)
	}
}

func TestMatchStringGreedyBacktrack(t *testing.T) {
	p := MustCompile("%s_%Y.log")
	f, ok := p.Match("a_b_2011.log")
	if !ok {
		t.Fatal("no match")
	}
	if f.Strings[0] != "a_b" {
		t.Fatalf("greedy %%s = %q, want a_b", f.Strings[0])
	}
}

func TestStringDoesNotCrossSlash(t *testing.T) {
	p := MustCompile("%s.csv")
	if p.Matches("dir/file.csv") {
		t.Error("string conversion matched across '/'")
	}
	p2 := MustCompile("%Y/%m/%d/%s.csv")
	if !p2.Matches("2011/06/12/x.csv") {
		t.Error("hierarchical pattern failed")
	}
}

func TestWildcard(t *testing.T) {
	p := MustCompile("*_%Y%m%d.csv.gz")
	for _, name := range []string{
		"poller1_20101230.csv.gz",
		"anything-at-all_20101230.csv.gz",
		"_20101230.csv.gz", // empty wildcard
	} {
		if !p.Matches(name) {
			t.Errorf("wildcard rejected %q", name)
		}
	}
	if p.Matches("poller1_20101230.csv") {
		t.Error("wildcard matched wrong suffix")
	}
}

func TestPercentLiteral(t *testing.T) {
	p := MustCompile("load100%%_%Y.txt")
	if !p.Matches("load100%_2011.txt") {
		t.Error("percent literal failed")
	}
}

func TestYear2Pivot(t *testing.T) {
	p := MustCompile("f_%y%m%d.log")
	f, _ := p.Match("f_990101.log")
	if f == nil || f.Time.Year != 1999 {
		t.Fatalf("99 → %v, want 1999", f)
	}
	f, _ = p.Match("f_100101.log")
	if f == nil || f.Time.Year != 2010 {
		t.Fatalf("10 → %v, want 2010", f)
	}
}

func TestLiteralPrefix(t *testing.T) {
	tests := []struct {
		src      string
		prefix   string
		complete bool
	}{
		{"MEMORY%s.gz", "MEMORY", false},
		{"%s.gz", "", false},
		{"static.txt", "static.txt", true},
		{"*_x", "", false},
	}
	for _, tc := range tests {
		p := MustCompile(tc.src)
		pre, comp := p.LiteralPrefix()
		if pre != tc.prefix || comp != tc.complete {
			t.Errorf("%q.LiteralPrefix() = (%q,%v), want (%q,%v)", tc.src, pre, comp, tc.prefix, tc.complete)
		}
	}
}

func TestSpecificityOrdering(t *testing.T) {
	generic := MustCompile("*_%Y%m%d.csv.gz")
	specific := MustCompile("MEMORY_poller%i_%Y%m%d.csv.gz")
	if specific.Specificity() <= generic.Specificity() {
		t.Errorf("specific (%d) should outrank generic (%d)",
			specific.Specificity(), generic.Specificity())
	}
}

func TestRenderRoundTrip(t *testing.T) {
	p := MustCompile("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz")
	name := "MEMORY_POLLER3_2010092504_51.csv.gz"
	f, ok := p.Match(name)
	if !ok {
		t.Fatal("no match")
	}
	got, err := p.Render(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != name {
		t.Fatalf("render = %q, want %q", got, name)
	}
}

func TestRenderIntoDifferentLayout(t *testing.T) {
	// The normalizer's core move: extract with one pattern, render
	// with another (daily-directory layout).
	src := MustCompile("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz")
	dst := MustCompile("%Y/%m/%d/MEMORY_POLLER%i_%H%M.csv.gz")
	f, ok := src.Match("MEMORY_POLLER3_2010092504_51.csv.gz")
	if !ok {
		t.Fatal("no match")
	}
	got, err := dst.Render(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != "2010/09/25/MEMORY_POLLER3_0451.csv.gz" {
		t.Fatalf("render = %q", got)
	}
}

func TestRenderErrors(t *testing.T) {
	p := MustCompile("x%i_%Y.gz")
	if _, err := p.Render(&Fields{}); err == nil {
		t.Error("render with missing int should fail")
	}
	f := &Fields{Ints: []int64{1}}
	if _, err := p.Render(f); err == nil {
		t.Error("render with missing year should fail")
	}
}

func TestRegexpEquivalence(t *testing.T) {
	pats := []string{
		"MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz",
		"CPU_POLL%i_%Y%m%d%H%M.txt",
		"*_%Y%m%d.csv.gz",
		"%s.%Y%m%d.gz",
	}
	names := []string{
		"MEMORY_POLLER1_2010092504_51.csv.gz",
		"CPU_POLL2_201009251001.txt",
		"poller1_20101230.csv.gz",
		"ALARMHISTORY9.20101230.gz",
		"garbage",
		"",
	}
	for _, src := range pats {
		p := MustCompile(src)
		re := regexp.MustCompile(p.Regexp())
		for _, n := range names {
			// Regexp has no calendar validation, so only compare when
			// the regexp matches — pattern may additionally reject.
			if p.Matches(n) && !re.MatchString(n) {
				t.Errorf("pattern %q matches %q but regexp does not", src, n)
			}
			if !re.MatchString(n) && p.Matches(n) {
				t.Errorf("inconsistency for %q / %q", src, n)
			}
		}
	}
}

func TestTimePartsGranularity(t *testing.T) {
	tests := []struct {
		src  string
		name string
		want time.Duration
	}{
		{"a_%Y%m%d%H%M.t", "a_201009250451.t", time.Minute},
		{"a_%Y%m%d%H.t", "a_2010092504.t", time.Hour},
		{"a_%Y%m%d.t", "a_20100925.t", 24 * time.Hour},
		{"a_%Y.t", "a_2010.t", 365 * 24 * time.Hour},
	}
	for _, tc := range tests {
		f, ok := MustCompile(tc.src).Match(tc.name)
		if !ok {
			t.Fatalf("%q no match", tc.name)
		}
		if got := f.Time.Granularity(); got != tc.want {
			t.Errorf("%q granularity = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestTimestampDefaults(t *testing.T) {
	f, ok := MustCompile("a_%Y%m.t").Match("a_201009.t")
	if !ok {
		t.Fatal("no match")
	}
	ts, ok := f.Time.Timestamp(time.UTC)
	if !ok {
		t.Fatal("no timestamp")
	}
	want := time.Date(2010, 9, 1, 0, 0, 0, 0, time.UTC)
	if !ts.Equal(want) {
		t.Fatalf("ts = %v, want %v", ts, want)
	}
	// No time conversions at all.
	f2, _ := MustCompile("plain%i.t").Match("plain5.t")
	if _, ok := f2.Time.Timestamp(time.UTC); ok {
		t.Error("timestamp reported for pattern without time fields")
	}
}

// Property: for a random generated filename from a pattern with random
// field values, Match must succeed and Render must reproduce the name.
func TestQuickMatchRenderRoundTrip(t *testing.T) {
	p := MustCompile("FEED_%s_POLLER%i_%Y%m%d%H_%M.csv.gz")
	cfg := &quick.Config{MaxCount: 400}
	fn := func(sRaw string, iRaw uint32, tsRaw int64) bool {
		// Constrain the string field: non-empty, no '/', no digits
		// adjacent to the integer field (delimited by '_' anyway),
		// and no '_' (greedy %s would otherwise legitimately absorb
		// differently on re-match).
		s := sanitize(sRaw)
		if s == "" {
			s = "x"
		}
		ts := time.Unix(int64(uint64(tsRaw)%4102444800), 0).UTC() // < year 2100
		f := &Fields{
			Strings: []string{s},
			Ints:    []int64{int64(iRaw % 1000)},
			Time: TimeParts{
				Year: ts.Year(), Month: int(ts.Month()), Day: ts.Day(),
				Hour: ts.Hour(), Minute: ts.Minute(),
				HasYear: true, HasMonth: true, HasDay: true,
				HasHour: true, HasMinute: true,
			},
		}
		name, err := p.Render(f)
		if err != nil {
			return false
		}
		got, ok := p.Match(name)
		if !ok {
			return false
		}
		rt, err := p.Render(got)
		return err == nil && rt == name
	}
	if err := quick.Check(fn, cfg); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			b.WriteRune(r)
		}
		if b.Len() >= 12 {
			break
		}
	}
	return b.String()
}

// Property: Matches agrees with the generated Regexp on calendar-valid
// random strings drawn from an alphabet likely to produce near-misses.
func TestQuickRegexpAgreement(t *testing.T) {
	p := MustCompile("M_%i_%Y%m%d.gz")
	re := regexp.MustCompile(p.Regexp())
	rng := rand.New(rand.NewSource(42))
	alphabet := "M_0123456789.gz"
	for i := 0; i < 2000; i++ {
		n := rng.Intn(24)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		name := b.String()
		pm := p.Matches(name)
		rm := re.MatchString(name)
		if pm && !rm {
			t.Fatalf("pattern matched %q but regexp did not", name)
		}
		if rm && !pm {
			// Acceptable only when the calendar check rejected it.
			f := &Fields{}
			if p.match(name, 0, 0, f, &matchState{budget: 1 << 20}) && f.Time.Valid() {
				t.Fatalf("regexp matched %q but pattern did not, and calendar is valid", name)
			}
		}
	}
}

func BenchmarkMatchHit(b *testing.B) {
	p := MustCompile("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz")
	name := "MEMORY_POLLER1_2010092504_51.csv.gz"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Matches(name) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkMatchMiss(b *testing.B) {
	p := MustCompile("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz")
	name := "CPU_POLL1_201009250502.txt"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Matches(name) {
			b.Fatal("unexpected match")
		}
	}
}

// Property: every name matched by a pattern starts with the pattern's
// literal prefix — the invariant the classifier's trie index relies on.
func TestQuickLiteralPrefixInvariant(t *testing.T) {
	pats := []*Pattern{
		MustCompile("MEMORY_POLLER%i_%Y%m%d%H_%M.csv.gz"),
		MustCompile("CPU_POLL%i_%Y%m%d%H%M.txt"),
		MustCompile("%s_%Y%m%d.gz"),
		MustCompile("*_suffix.txt"),
		MustCompile("TRAP__%Y%m%d_DCTAGN_klpi.txt"),
	}
	rng := rand.New(rand.NewSource(11))
	alphabet := "MEMORYCPUTRAP_POL0123456789._csvgztxt-"
	for i := 0; i < 3000; i++ {
		n := rng.Intn(40)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		name := b.String()
		for _, p := range pats {
			if !p.Matches(name) {
				continue
			}
			prefix, _ := p.LiteralPrefix()
			if !strings.HasPrefix(name, prefix) {
				t.Fatalf("pattern %q matched %q without its prefix %q", p, name, prefix)
			}
		}
	}
}

// Property: Specificity is consistent with subset semantics on a
// ladder of increasingly generic patterns.
func TestSpecificityLadder(t *testing.T) {
	ladder := []string{
		"MEMORY_POLLER1_20100925.csv.gz", // all literal
		"MEMORY_POLLER%i_%Y%m%d.csv.gz",
		"MEMORY_%s_%Y%m%d.csv.gz",
		"*_%Y%m%d.csv.gz",
		"*_%i.csv.gz",
	}
	prev := int(^uint(0) >> 1)
	for _, src := range ladder {
		s := MustCompile(src).Specificity()
		if s > prev {
			t.Fatalf("specificity not decreasing at %q: %d > %d", src, s, prev)
		}
		prev = s
	}
}
