// Package pattern implements Bistro's printf-inspired feed filename
// pattern language (SIGMOD'11 §3.1).
//
// A pattern is a sequence of literal characters, conversions, and glob
// wildcards. The language deliberately trades the power of full regular
// expressions for readability and — crucially — field semantics: a
// conversion says not just "digits go here" but "this is the month of
// the measurement interval", which is what drives filename
// normalization and batch detection downstream.
//
// Supported conversions:
//
//	%s   arbitrary non-empty string not containing '/'
//	%i   decimal integer (one or more digits)
//	%Y   4-digit year        %y   2-digit year
//	%m   2-digit month       %d   2-digit day of month
//	%H   2-digit hour        %M   2-digit minute
//	%S   2-digit second
//	%%   literal percent sign
//	*    glob wildcard: any run of characters (possibly empty) not
//	     containing '/'
//
// Patterns may contain '/' literals to describe hierarchical feed
// organization, e.g. %Y/%m/%d/poller%i.csv.gz.
package pattern

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"
)

// Kind identifies a pattern segment type.
type Kind int

// Segment kinds.
const (
	KLiteral Kind = iota // literal text
	KString              // %s: non-empty string without '/'
	KInt                 // %i: decimal integer
	KYear                // %Y: 4-digit year
	KYear2               // %y: 2-digit year
	KMonth               // %m
	KDay                 // %d
	KHour                // %H
	KMinute              // %M
	KSecond              // %S
	KWild                // *: possibly-empty string without '/'
)

func (k Kind) String() string {
	switch k {
	case KLiteral:
		return "literal"
	case KString:
		return "%s"
	case KInt:
		return "%i"
	case KYear:
		return "%Y"
	case KYear2:
		return "%y"
	case KMonth:
		return "%m"
	case KDay:
		return "%d"
	case KHour:
		return "%H"
	case KMinute:
		return "%M"
	case KSecond:
		return "%S"
	case KWild:
		return "*"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// width returns the fixed match width of a kind, or 0 if variable.
func (k Kind) width() int {
	switch k {
	case KYear:
		return 4
	case KYear2, KMonth, KDay, KHour, KMinute, KSecond:
		return 2
	default:
		return 0
	}
}

// isTime reports whether the kind is a timestamp component.
func (k Kind) isTime() bool {
	switch k {
	case KYear, KYear2, KMonth, KDay, KHour, KMinute, KSecond:
		return true
	}
	return false
}

// Segment is one element of a compiled pattern.
type Segment struct {
	Kind Kind
	Lit  string // literal text when Kind == KLiteral
}

// Pattern is a compiled feed filename pattern.
type Pattern struct {
	src      string
	segs     []Segment
	nStrings int
	nInts    int
	timeKind map[Kind]bool // which time conversions appear
}

// Compile parses src into a Pattern.
func Compile(src string) (*Pattern, error) {
	if src == "" {
		return nil, fmt.Errorf("pattern: empty pattern")
	}
	// Pattern sources are configuration text; rejecting invalid UTF-8
	// here keeps every downstream rendering (Regexp in particular)
	// well-formed. Matched names stay raw bytes.
	if !utf8.ValidString(src) {
		return nil, fmt.Errorf("pattern %q: not valid UTF-8", src)
	}
	p := &Pattern{src: src, timeKind: make(map[Kind]bool)}
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			p.segs = append(p.segs, Segment{Kind: KLiteral, Lit: lit.String()})
			lit.Reset()
		}
	}
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch c {
		case '%':
			if i+1 >= len(src) {
				return nil, fmt.Errorf("pattern %q: trailing %%", src)
			}
			i++
			v := src[i]
			if v == '%' {
				lit.WriteByte('%')
				continue
			}
			k, ok := conversion(v)
			if !ok {
				return nil, fmt.Errorf("pattern %q: unknown conversion %%%c", src, v)
			}
			flush()
			p.segs = append(p.segs, Segment{Kind: k})
			switch {
			case k == KString:
				p.nStrings++
			case k == KInt:
				p.nInts++
			case k.isTime():
				if p.timeKind[k] {
					return nil, fmt.Errorf("pattern %q: duplicate time conversion %%%c", src, v)
				}
				p.timeKind[k] = true
			}
		case '*':
			flush()
			p.segs = append(p.segs, Segment{Kind: KWild})
		default:
			lit.WriteByte(c)
		}
	}
	flush()
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func conversion(c byte) (Kind, bool) {
	switch c {
	case 's':
		return KString, true
	case 'i':
		return KInt, true
	case 'Y':
		return KYear, true
	case 'y':
		return KYear2, true
	case 'm':
		return KMonth, true
	case 'd':
		return KDay, true
	case 'H':
		return KHour, true
	case 'M':
		return KMinute, true
	case 'S':
		return KSecond, true
	}
	return 0, false
}

func (p *Pattern) validate() error {
	// Two adjacent unbounded segments (e.g. %s%s or %s*) are ambiguous:
	// there is no literal anchor between them.
	prevOpen := false
	for _, s := range p.segs {
		open := s.Kind == KString || s.Kind == KWild
		if open && prevOpen {
			return fmt.Errorf("pattern %q: adjacent unbounded conversions are ambiguous", p.src)
		}
		prevOpen = open
	}
	return nil
}

// MustCompile is Compile that panics on error; for tests and constants.
func MustCompile(src string) *Pattern {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the pattern source text.
func (p *Pattern) String() string { return p.src }

// Segments returns the compiled segments (read-only).
func (p *Pattern) Segments() []Segment { return p.segs }

// NumStrings returns the count of %s conversions.
func (p *Pattern) NumStrings() int { return p.nStrings }

// NumInts returns the count of %i conversions.
func (p *Pattern) NumInts() int { return p.nInts }

// HasTimestamp reports whether the pattern contains any time conversion.
func (p *Pattern) HasTimestamp() bool { return len(p.timeKind) > 0 }

// LiteralPrefix returns the longest literal prefix the pattern requires
// of any matching filename. complete is true when the pattern is all
// literal. The classifier uses this to index patterns.
func (p *Pattern) LiteralPrefix() (prefix string, complete bool) {
	if len(p.segs) == 0 {
		return "", true
	}
	if p.segs[0].Kind != KLiteral {
		return "", false
	}
	return p.segs[0].Lit, len(p.segs) == 1
}

// Specificity scores how constrained the pattern is: literal characters
// count 3, fixed-width time conversions 2, integers 1, %s and * count 0.
// The analyzer prefers higher-specificity definitions when several
// patterns explain the same files.
func (p *Pattern) Specificity() int {
	score := 0
	for _, s := range p.segs {
		switch s.Kind {
		case KLiteral:
			score += 3 * len(s.Lit)
		case KInt:
			score++
		default:
			if s.Kind.isTime() {
				score += 2 * s.Kind.width()
			}
		}
	}
	return score
}

// Fields holds the values extracted from a successful match.
type Fields struct {
	// Strings holds the %s captures in pattern order.
	Strings []string
	// Ints holds the %i captures in pattern order.
	Ints []int64
	// Time holds the timestamp components present in the pattern.
	Time TimeParts
}

// TimeParts collects timestamp components extracted from a filename.
type TimeParts struct {
	Year, Month, Day, Hour, Minute, Second int
	HasYear, HasMonth, HasDay              bool
	HasHour, HasMinute, HasSecond          bool
}

// Valid reports whether the populated components form a plausible
// calendar timestamp (month 1-12, day 1-31, hour 0-23, minute/second
// 0-59). Components that are absent are not checked.
func (tp TimeParts) Valid() bool {
	if tp.HasMonth && (tp.Month < 1 || tp.Month > 12) {
		return false
	}
	if tp.HasDay && (tp.Day < 1 || tp.Day > 31) {
		return false
	}
	if tp.HasHour && tp.Hour > 23 {
		return false
	}
	if tp.HasMinute && tp.Minute > 59 {
		return false
	}
	if tp.HasSecond && tp.Second > 59 {
		return false
	}
	return true
}

// Timestamp assembles the components into a time.Time in loc. Missing
// low-order components default to their minimum (Jan, 1st, 00:00:00).
// ok is false when no time component at all was present.
func (tp TimeParts) Timestamp(loc *time.Location) (t time.Time, ok bool) {
	if !tp.HasYear && !tp.HasMonth && !tp.HasDay && !tp.HasHour && !tp.HasMinute && !tp.HasSecond {
		return time.Time{}, false
	}
	year := tp.Year
	if !tp.HasYear {
		year = 1970
	}
	month := time.January
	if tp.HasMonth {
		month = time.Month(tp.Month)
	}
	day := 1
	if tp.HasDay {
		day = tp.Day
	}
	return time.Date(year, month, day, tp.Hour, tp.Minute, tp.Second, 0, loc), true
}

// Granularity returns the finest time unit present in the parts, or 0
// if none: one of time.Second, time.Minute, time.Hour, 24h (day),
// 30*24h (month, approximate), 365*24h (year, approximate).
func (tp TimeParts) Granularity() time.Duration {
	switch {
	case tp.HasSecond:
		return time.Second
	case tp.HasMinute:
		return time.Minute
	case tp.HasHour:
		return time.Hour
	case tp.HasDay:
		return 24 * time.Hour
	case tp.HasMonth:
		return 30 * 24 * time.Hour
	case tp.HasYear:
		return 365 * 24 * time.Hour
	}
	return 0
}

// Match reports whether name matches the pattern and, if so, returns
// the extracted fields. Matching backtracks over variable-width
// conversions; a filename must match in its entirety.
func (p *Pattern) Match(name string) (*Fields, bool) {
	f := &Fields{}
	st := matchState{budget: 4 * (len(name) + 1) * (len(p.segs) + 1)}
	if !p.match(name, 0, 0, f, &st) {
		return nil, false
	}
	if !f.Time.Valid() {
		return nil, false
	}
	return f, true
}

// matchState bounds backtracking. Patterns like %i%i%i or repeated
// %s_ groups are legal (they have anchors or bounded runs) but
// backtrack exponentially on adversarial names; once a match exceeds
// its call budget, failed (position, segment) states are memoized so
// the search degrades to polynomial instead. The budget keeps the
// common non-backtracking match allocation-free.
type matchState struct {
	calls  int
	budget int
	failed map[int32]struct{}
}

// Matches is Match without field extraction cost for callers that only
// need the boolean.
func (p *Pattern) Matches(name string) bool {
	_, ok := p.Match(name)
	return ok
}

// match attempts to match name[pos:] against segs[si:], appending
// captures to f. On backtrack it truncates the captures it added.
// Whether (pos, si) can match is independent of the captures taken so
// far, so failed states can be memoized once backtracking blows the
// call budget.
func (p *Pattern) match(name string, pos, si int, f *Fields, st *matchState) bool {
	st.calls++
	if st.calls <= st.budget {
		return p.matchSeg(name, pos, si, f, st)
	}
	key := int32(pos*(len(p.segs)+1) + si)
	if st.failed == nil {
		st.failed = make(map[int32]struct{})
	} else if _, ok := st.failed[key]; ok {
		return false
	}
	ok := p.matchSeg(name, pos, si, f, st)
	if !ok {
		st.failed[key] = struct{}{}
	}
	return ok
}

func (p *Pattern) matchSeg(name string, pos, si int, f *Fields, st *matchState) bool {
	if si == len(p.segs) {
		return pos == len(name)
	}
	seg := p.segs[si]
	switch seg.Kind {
	case KLiteral:
		if !strings.HasPrefix(name[pos:], seg.Lit) {
			return false
		}
		return p.match(name, pos+len(seg.Lit), si+1, f, st)

	case KString, KWild:
		min := 1
		if seg.Kind == KWild {
			min = 0
		}
		// Greedy with backtracking: the capture may not contain '/'.
		limit := len(name)
		if idx := strings.IndexByte(name[pos:], '/'); idx >= 0 {
			limit = pos + idx
		}
		for end := limit; end >= pos+min; end-- {
			if seg.Kind == KString {
				f.Strings = append(f.Strings, name[pos:end])
			}
			if p.match(name, end, si+1, f, st) {
				return true
			}
			if seg.Kind == KString {
				f.Strings = f.Strings[:len(f.Strings)-1]
			}
		}
		return false

	case KInt:
		// Greedy run of digits with backtracking.
		end := pos
		for end < len(name) && isDigit(name[end]) {
			end++
		}
		for ; end > pos; end-- {
			v, err := strconv.ParseInt(name[pos:end], 10, 64)
			if err != nil {
				continue
			}
			f.Ints = append(f.Ints, v)
			if p.match(name, end, si+1, f, st) {
				return true
			}
			f.Ints = f.Ints[:len(f.Ints)-1]
		}
		return false

	default: // fixed-width time conversions
		w := seg.Kind.width()
		if pos+w > len(name) {
			return false
		}
		for i := pos; i < pos+w; i++ {
			if !isDigit(name[i]) {
				return false
			}
		}
		v, _ := strconv.Atoi(name[pos : pos+w])
		saved := f.Time
		setTimePart(&f.Time, seg.Kind, v)
		if p.match(name, pos+w, si+1, f, st) {
			return true
		}
		f.Time = saved
		return false
	}
}

func setTimePart(tp *TimeParts, k Kind, v int) {
	switch k {
	case KYear:
		tp.Year, tp.HasYear = v, true
	case KYear2:
		// Pivot 2-digit years the way strptime does: 69-99 → 19xx.
		if v >= 69 {
			tp.Year = 1900 + v
		} else {
			tp.Year = 2000 + v
		}
		tp.HasYear = true
	case KMonth:
		tp.Month, tp.HasMonth = v, true
	case KDay:
		tp.Day, tp.HasDay = v, true
	case KHour:
		tp.Hour, tp.HasHour = v, true
	case KMinute:
		tp.Minute, tp.HasMinute = v, true
	case KSecond:
		tp.Second, tp.HasSecond = v, true
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Render produces a concrete filename from the pattern and a set of
// fields, consuming %s and %i captures positionally. It is the inverse
// of Match and is used by the normalizer to rewrite filenames into a
// subscriber's preferred layout. Wildcard segments render as the empty
// string. An error is returned when f lacks a needed capture or time
// component.
func (p *Pattern) Render(f *Fields) (string, error) {
	var b strings.Builder
	si, ii := 0, 0
	for _, seg := range p.segs {
		switch seg.Kind {
		case KLiteral:
			b.WriteString(seg.Lit)
		case KWild:
			// renders empty
		case KString:
			if si >= len(f.Strings) {
				return "", fmt.Errorf("pattern %q: render needs %d string fields, have %d", p.src, si+1, len(f.Strings))
			}
			b.WriteString(f.Strings[si])
			si++
		case KInt:
			if ii >= len(f.Ints) {
				return "", fmt.Errorf("pattern %q: render needs %d int fields, have %d", p.src, ii+1, len(f.Ints))
			}
			b.WriteString(strconv.FormatInt(f.Ints[ii], 10))
			ii++
		default:
			s, err := renderTime(seg.Kind, f.Time)
			if err != nil {
				return "", fmt.Errorf("pattern %q: %w", p.src, err)
			}
			b.WriteString(s)
		}
	}
	return b.String(), nil
}

func renderTime(k Kind, tp TimeParts) (string, error) {
	switch k {
	case KYear:
		if !tp.HasYear {
			return "", fmt.Errorf("render: missing year")
		}
		return fmt.Sprintf("%04d", tp.Year), nil
	case KYear2:
		if !tp.HasYear {
			return "", fmt.Errorf("render: missing year")
		}
		return fmt.Sprintf("%02d", tp.Year%100), nil
	case KMonth:
		if !tp.HasMonth {
			return "", fmt.Errorf("render: missing month")
		}
		return fmt.Sprintf("%02d", tp.Month), nil
	case KDay:
		if !tp.HasDay {
			return "", fmt.Errorf("render: missing day")
		}
		return fmt.Sprintf("%02d", tp.Day), nil
	case KHour:
		if !tp.HasHour {
			return "", fmt.Errorf("render: missing hour")
		}
		return fmt.Sprintf("%02d", tp.Hour), nil
	case KMinute:
		if !tp.HasMinute {
			return "", fmt.Errorf("render: missing minute")
		}
		return fmt.Sprintf("%02d", tp.Minute), nil
	case KSecond:
		if !tp.HasSecond {
			return "", fmt.Errorf("render: missing second")
		}
		return fmt.Sprintf("%02d", tp.Second), nil
	}
	return "", fmt.Errorf("render: %v is not a time conversion", k)
}

// Regexp returns an anchored regular expression equivalent to the
// pattern, for interoperability with regex-based tooling.
func (p *Pattern) Regexp() string {
	var b strings.Builder
	b.WriteString("^")
	for _, seg := range p.segs {
		switch seg.Kind {
		case KLiteral:
			b.WriteString(regexp.QuoteMeta(seg.Lit))
		case KString:
			b.WriteString(`([^/]+)`)
		case KWild:
			b.WriteString(`([^/]*)`)
		case KInt:
			b.WriteString(`([0-9]+)`)
		case KYear:
			b.WriteString(`([0-9]{4})`)
		default:
			b.WriteString(`([0-9]{2})`)
		}
	}
	b.WriteString("$")
	return b.String()
}
