package httpfeed

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bistro/internal/metrics"
)

// Entry is one record in a feed's consumable log: an id-ordered view
// over the staging window and the archive manifest. Seq is the
// store-assigned file id, so cursors are stable across restarts and
// across the staging-to-archive transition.
type Entry struct {
	Seq        uint64
	Name       string
	StagedPath string
	Size       int64
	Checksum   uint32
	// Time is the log's time axis: the file's data time when the
	// pattern carried one, else its arrival — the same key the archive
	// partitions by.
	Time time.Time
	// Archived marks entries served from the manifest rather than the
	// staging window.
	Archived bool
}

// MergeLogs merges the staging-window and archived views of one feed's
// log into a single id-ordered slice, deduplicating by seq. During the
// staging-to-archive handoff a file is briefly visible in both views;
// the archived entry wins so the page reports where the bytes live.
// Both inputs must be sorted by Seq.
func MergeLogs(staged, archived []Entry) []Entry {
	out := make([]Entry, 0, len(staged)+len(archived))
	i, j := 0, 0
	for i < len(staged) && j < len(archived) {
		switch {
		case staged[i].Seq < archived[j].Seq:
			out = append(out, staged[i])
			i++
		case staged[i].Seq > archived[j].Seq:
			out = append(out, archived[j])
			j++
		default:
			out = append(out, archived[j])
			i++
			j++
		}
	}
	out = append(out, staged[i:]...)
	out = append(out, archived[j:]...)
	return out
}

// Options configures the HTTP data plane. The function seams decouple
// it from the store, archiver, and ingest pipeline the same way the
// delivery engine's do.
type Options struct {
	// Listen is the bind address ("127.0.0.1:0" for ephemeral).
	Listen string
	// Feeds is the set of leaf feed paths served; anything else is 404.
	Feeds []string
	// Principals is the ACL set. Empty leaves the plane open (lab use).
	Principals []*Principal
	// MaxBody caps POST ingest bodies in bytes (default 32 MiB).
	MaxBody int64
	// Registry receives bistro_http_* metrics when set.
	Registry *metrics.Registry
	// Clock supplies time (defaults to time.Now).
	Clock func() time.Time

	// Log returns a feed's consumable log sorted by Seq: the merged
	// staging + archive view (see MergeLogs).
	Log func(feed string) []Entry
	// Open reads a file's content by staged-relative path, falling back
	// to the archive when the staged copy has expired.
	Open func(stagedPath string) (io.ReadCloser, error)
	// Ingest deposits a pushed file, returning once its receipt is
	// durable. Nil disables POST (405).
	Ingest func(name string, data []byte) error
	// Resolve returns the feeds a deposited name would route to
	// (classification only, no side effects). Required when Ingest is
	// set: the pipeline routes deposits by name pattern, not by URL, so
	// POST /feeds/<feed> must verify the name actually routes to <feed>
	// and to nothing outside the caller's ACL before the bytes land.
	Resolve func(name string) []string

	// Server hardening knobs, overridable so the slow-loris regression
	// test can use tiny values. Zero means the package default.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	MaxHeaderBytes    int
}

const (
	defaultMaxBody  = 32 << 20
	defaultLimit    = 512
	maxLimit        = 4096
	defaultRHT      = 5 * time.Second
	defaultReadTO   = 30 * time.Second
	defaultWriteTO  = 2 * time.Minute
	defaultMaxHdr   = 64 << 10
	wwwAuthenticate = `Bearer realm="bistro"`

	// Cache lifetimes. Archived entries are closed history — the
	// manifest never withdraws an id — so they get long TTLs. Staged
	// entries can still be withdrawn by quarantine, so pages and content
	// that include them get a short TTL bounding how long a cache can
	// keep serving a withdrawn id (docs/HTTP.md "Caching semantics").
	archivedPageMaxAge    = 3600
	stagedPageMaxAge      = 300
	archivedContentMaxAge = 86400
	stagedContentMaxAge   = 600
)

// Server is a running HTTP data plane.
type Server struct {
	opts  Options
	feeds map[string]bool
	met   *Metrics
	ln    net.Listener
	srv   *http.Server

	mu     sync.Mutex
	closed bool
}

// Start binds the listener and begins serving.
func Start(opts Options) (*Server, error) {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = defaultMaxBody
	}
	if opts.ReadHeaderTimeout <= 0 {
		opts.ReadHeaderTimeout = defaultRHT
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = defaultReadTO
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = defaultWriteTO
	}
	if opts.MaxHeaderBytes <= 0 {
		opts.MaxHeaderBytes = defaultMaxHdr
	}
	if opts.Ingest != nil && opts.Resolve == nil {
		return nil, fmt.Errorf("httpfeed: Ingest requires Resolve — deposits route by name pattern and must be checked against the URL feed")
	}
	s := &Server{opts: opts, feeds: make(map[string]bool, len(opts.Feeds))}
	for _, f := range opts.Feeds {
		s.feeds[f] = true
	}
	if opts.Registry != nil {
		s.met = NewMetrics(opts.Registry)
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("httpfeed: listen: %w", err)
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/feeds/", s.handle)
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		ReadTimeout:       opts.ReadTimeout,
		WriteTimeout:      opts.WriteTimeout,
		MaxHeaderBytes:    opts.MaxHeaderBytes,
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stop closes the listener and in-flight connections.
func (s *Server) Stop() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.srv.Close()
}

// statusWriter records the status code and body bytes for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// handle authenticates, routes, and dispatches one request. Outcome
// order: 401 (bad credential) before 404 (unknown path) before 403
// (feed outside the principal's ACL) before 405 (wrong method).
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	endpoint := "other"
	start := s.opts.Clock()
	defer func() {
		if s.met != nil {
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			s.met.Requests.With(endpoint, strconv.Itoa(code)).Inc()
			s.met.Bytes.With("out").Add(sw.bytes)
			if endpoint == "log" {
				s.met.PollLatency.Observe(s.opts.Clock().Sub(start).Seconds())
			}
		}
	}()

	if len(s.opts.Principals) > 0 {
		// Responses differ per credential (ACLs), so any cache that
		// stores one must key on the Authorization header.
		sw.Header().Set("Vary", "Authorization")
	}
	pr, ok := s.authorize(sw, r)
	if !ok {
		return
	}

	feed, sub, seq, ok := s.route(strings.TrimPrefix(r.URL.Path, "/feeds/"))
	if !ok {
		writeErr(sw, http.StatusNotFound, "no such feed or file")
		return
	}
	if pr != nil && !pr.Allowed(feed) {
		writeErr(sw, http.StatusForbidden, "feed not in principal ACL")
		return
	}
	switch sub {
	case "log":
		switch r.Method {
		case http.MethodGet:
			endpoint = "log"
			s.serveLog(sw, r, feed)
		case http.MethodPost:
			endpoint = "ingest"
			s.serveIngest(sw, r, feed, pr)
		default:
			writeErr(sw, http.StatusMethodNotAllowed, "method not allowed")
		}
	case "stats":
		if r.Method != http.MethodGet {
			writeErr(sw, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		endpoint = "stats"
		s.serveStats(sw, feed)
	case "file":
		if r.Method != http.MethodGet {
			writeErr(sw, http.StatusMethodNotAllowed, "method not allowed")
			return
		}
		endpoint = "content"
		s.serveContent(sw, r, feed, seq)
	}
}

// authorize checks the request credential. It returns the matched
// principal (nil when the plane runs open) and whether to proceed.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) (*Principal, bool) {
	if len(s.opts.Principals) == 0 {
		return nil, true
	}
	header := r.Header.Get("Authorization")
	if header == "" {
		s.authFail(w, "missing credentials")
		return nil, false
	}
	user, token, err := ParseAuthorization(header)
	if err != nil {
		s.authFail(w, err.Error())
		return nil, false
	}
	pr := authenticate(s.opts.Principals, user, token)
	if pr == nil {
		s.authFail(w, "unknown credentials")
		return nil, false
	}
	return pr, true
}

func (s *Server) authFail(w http.ResponseWriter, msg string) {
	if s.met != nil {
		s.met.AuthFailures.Inc()
	}
	w.Header().Set("WWW-Authenticate", wwwAuthenticate)
	writeErr(w, http.StatusUnauthorized, msg)
}

// route resolves a path remainder (after /feeds/) against the feed
// set. Feed paths themselves contain slashes, so the full remainder is
// tried as a feed first, then the /stats and /files/<seq> suffixes.
func (s *Server) route(rest string) (feed, sub string, seq uint64, ok bool) {
	if s.feeds[rest] {
		return rest, "log", 0, true
	}
	if prefix, found := strings.CutSuffix(rest, "/stats"); found && s.feeds[prefix] {
		return prefix, "stats", 0, true
	}
	if i := strings.LastIndex(rest, "/files/"); i > 0 {
		prefix, tail := rest[:i], rest[i+len("/files/"):]
		if s.feeds[prefix] && isDigits(tail) {
			n, err := strconv.ParseUint(tail, 10, 64)
			if err == nil {
				return prefix, "file", n, true
			}
		}
	}
	return "", "", 0, false
}

// logPage is the GET /feeds/<name> response body.
type logPage struct {
	Feed string `json:"feed"`
	// From is the resolved starting sequence of this page.
	From uint64 `json:"from"`
	// Head is the highest sequence currently in the log (0 when empty).
	Head uint64 `json:"head"`
	// Next is the cursor for the next poll: pass from=<next>.
	Next    uint64      `json:"next"`
	Entries []wireEntry `json:"entries"`
}

type wireEntry struct {
	Seq      uint64    `json:"seq"`
	Name     string    `json:"name"`
	Size     int64     `json:"size"`
	Checksum uint32    `json:"crc"`
	Time     time.Time `json:"time"`
	Archived bool      `json:"archived,omitempty"`
}

func (s *Server) serveLog(w http.ResponseWriter, r *http.Request, feed string) {
	q := r.URL.Query()
	from, err := ParseFrom(q.Get("from"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := defaultLimit
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = n
	}
	if limit > maxLimit {
		limit = maxLimit
	}

	log := s.opts.Log(feed)
	var head uint64
	if len(log) > 0 {
		head = log[len(log)-1].Seq
	}
	var start int
	if from.BySeq {
		if from.Seq > head+1 {
			// The cursor points past the tail: the poller is ahead of
			// this server (stale standby, fat-fingered seq). 416 rather
			// than an empty page so the client can tell "caught up"
			// from "wrong log".
			w.Header().Set("Content-Range", fmt.Sprintf("seq */%d", head))
			writeErr(w, http.StatusRequestedRangeNotSatisfiable,
				fmt.Sprintf("from %d is past head %d", from.Seq, head))
			return
		}
		start = sort.Search(len(log), func(i int) bool { return log[i].Seq >= from.Seq })
	} else {
		// The log is sorted by seq, and data times are NOT monotone in
		// seq (late-arriving files carry older data times), so a binary
		// search over Time would land on an arbitrary index and silently
		// skip entries. Scan for the earliest seq whose time qualifies:
		// no entry with Time >= from is ever skipped, at the cost of the
		// page also carrying any older-timed stragglers after it.
		start = len(log)
		for i := range log {
			if !log[i].Time.Before(from.Time) {
				start = i
				break
			}
		}
	}
	entries := log[start:]
	if len(entries) > limit {
		entries = entries[:limit]
	}

	page := logPage{Feed: feed, Head: head}
	if from.BySeq {
		page.From = from.Seq
	} else if start < len(log) {
		page.From = log[start].Seq
	} else {
		page.From = head + 1
	}
	page.Next = page.From
	page.Entries = make([]wireEntry, len(entries))
	for i, e := range entries {
		page.Entries[i] = wireEntry{Seq: e.Seq, Name: e.Name, Size: e.Size,
			Checksum: e.Checksum, Time: e.Time, Archived: e.Archived}
	}
	if len(entries) > 0 {
		page.Next = entries[len(entries)-1].Seq + 1
	}

	// Full pages are history — their seq set only changes if quarantine
	// withdraws a staged entry — so caches may keep them: long for
	// all-archived pages (the manifest never withdraws), short for pages
	// still carrying staged entries. Partial (tail) pages revalidate:
	// the ETag covers head so an idle poll costs a 304.
	full := len(entries) == limit
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%d", feed, page.From, page.Next, page.Head, len(entries))
	etag := fmt.Sprintf(`"log-%016x"`, h.Sum64())
	if full {
		maxAge := archivedPageMaxAge
		for _, e := range entries {
			if !e.Archived {
				maxAge = stagedPageMaxAge
				break
			}
		}
		w.Header().Set("Cache-Control", s.cacheControl(maxAge, false))
	} else {
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.Header().Set("ETag", etag)
	if len(entries) > 0 {
		w.Header().Set("Last-Modified", entries[len(entries)-1].Time.UTC().Format(http.TimeFormat))
	}
	if matchETag(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

// feedStats is the GET /feeds/<name>/stats response body.
type feedStats struct {
	Feed     string    `json:"feed"`
	Head     uint64    `json:"head"`
	Files    int       `json:"files"`
	Staged   int       `json:"staged"`
	Archived int       `json:"archived"`
	Bytes    int64     `json:"bytes"`
	AsOf     time.Time `json:"as_of"`
}

func (s *Server) serveStats(w http.ResponseWriter, feed string) {
	log := s.opts.Log(feed)
	st := feedStats{Feed: feed, Files: len(log), AsOf: s.opts.Clock().UTC()}
	for _, e := range log {
		st.Bytes += e.Size
		if e.Archived {
			st.Archived++
		} else {
			st.Staged++
		}
	}
	if len(log) > 0 {
		st.Head = log[len(log)-1].Seq
	}
	w.Header().Set("Cache-Control", "no-cache")
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) serveContent(w http.ResponseWriter, r *http.Request, feed string, seq uint64) {
	log := s.opts.Log(feed)
	i := sort.Search(len(log), func(i int) bool { return log[i].Seq >= seq })
	if i == len(log) || log[i].Seq != seq {
		// Unknown, expired-and-gone, or quarantined (the log excludes
		// quarantined ids).
		writeErr(w, http.StatusNotFound, "no such file in feed")
		return
	}
	e := log[i]
	// Bytes for an id never change, but a staged id can still be
	// withdrawn by quarantine — only archived content is truly closed
	// history, so only it gets the long immutable lifetime.
	etag := fmt.Sprintf(`"%d-%08x"`, e.Seq, e.Checksum)
	w.Header().Set("ETag", etag)
	if e.Archived {
		w.Header().Set("Cache-Control", s.cacheControl(archivedContentMaxAge, true))
	} else {
		w.Header().Set("Cache-Control", s.cacheControl(stagedContentMaxAge, false))
	}
	w.Header().Set("Last-Modified", e.Time.UTC().Format(http.TimeFormat))
	if matchETag(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	rc, err := s.opts.Open(e.StagedPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			writeErr(w, http.StatusNotFound, "content no longer available")
		} else {
			writeErr(w, http.StatusInternalServerError, "content open failed")
		}
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(e.Size, 10))
	w.WriteHeader(http.StatusOK)
	io.Copy(w, rc)
}

func (s *Server) serveIngest(w http.ResponseWriter, r *http.Request, feed string, pr *Principal) {
	if s.opts.Ingest == nil {
		writeErr(w, http.StatusMethodNotAllowed, "ingest disabled")
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, "name query parameter required")
		return
	}
	// The URL names the feed the caller is authorized to write, but the
	// pipeline routes deposits by classifying `name`. Resolve the
	// routing first and refuse anything that would land outside that
	// authority — otherwise a principal whose ACL covers only feed A
	// could POST to /feeds/A with a name matching feed B's pattern and
	// write into B.
	targets := s.opts.Resolve(name)
	routed := false
	for _, t := range targets {
		if t == feed {
			routed = true
		}
		if pr != nil && !pr.Allowed(t) {
			writeErr(w, http.StatusForbidden,
				fmt.Sprintf("name routes to feed %q outside principal ACL", t))
			return
		}
	}
	if !routed {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("name %q does not route to feed %q", name, feed))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBody)
	data, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.opts.MaxBody))
		} else {
			writeErr(w, http.StatusBadRequest, "read body failed")
		}
		return
	}
	if s.met != nil {
		s.met.Bytes.With("in").Add(int64(len(data)))
	}
	if err := s.opts.Ingest(name, data); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"ok": true, "name": name})
}

// cacheControl renders a Cache-Control value for a cacheable response.
// Behind the ACL responses are private: a shared cache or CDN that
// stored one would re-serve a principal's authorized read to clients
// with no credentials at all, turning the cache into an auth bypass.
// Only the open (no-principals) plane lets shared caches participate.
func (s *Server) cacheControl(maxAge int, immutable bool) string {
	scope := "public"
	if len(s.opts.Principals) > 0 {
		scope = "private"
	}
	v := fmt.Sprintf("%s, max-age=%d", scope, maxAge)
	if immutable {
		v += ", immutable"
	}
	return v
}

// matchETag implements the If-None-Match comparison for the strong
// ETags this plane emits (list form and the * wildcard included).
func matchETag(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
