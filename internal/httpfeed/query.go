// Package httpfeed is the stateless HTTP pull data plane: every feed
// exposed as an authenticated append-only log consumable with plain
// GETs, beside the custom TCP push protocol. Range reads are backed by
// the receipt store's staging window merged with the archive manifest,
// so a poller's cursor survives server restarts and needs no session
// state on either side.
package httpfeed

import (
	"fmt"
	"strconv"
	"time"
)

// From is a parsed from= query cursor: either a sequence number (a
// store-assigned file id; the read returns entries with seq >= Seq) or
// a timestamp (the read starts at the first entry whose time is not
// before Time).
type From struct {
	// BySeq selects which field is set.
	BySeq bool
	Seq   uint64
	Time  time.Time
}

// ParseFrom parses a from= query value: a decimal sequence number, or
// an RFC 3339 timestamp (with or without fractional seconds). The
// empty string is seq 0 (the start of the log).
func ParseFrom(s string) (From, error) {
	if s == "" {
		return From{BySeq: true}, nil
	}
	if isDigits(s) {
		// strconv accepts "+1", "0x1f" etc under other bases; the digit
		// gate keeps the accepted grammar exactly ^[0-9]+$ so cursors
		// round-trip byte for byte.
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return From{}, fmt.Errorf("httpfeed: bad from sequence %q: %w", s, err)
		}
		return From{BySeq: true, Seq: n}, nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return From{}, fmt.Errorf("httpfeed: bad from cursor %q (want a sequence number or RFC 3339 time)", s)
	}
	return From{Time: t}, nil
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// String renders the cursor back into a from= value ParseFrom accepts.
func (f From) String() string {
	if f.BySeq {
		return strconv.FormatUint(f.Seq, 10)
	}
	return f.Time.Format(time.RFC3339Nano)
}
