package httpfeed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"bistro/internal/archive"
	"bistro/internal/metrics"
)

// fixture is a data plane over an in-memory log and an on-disk staging
// dir, mutable mid-test to model churn (quarantine, expiry).
type fixture struct {
	t   *testing.T
	srv *Server
	reg *metrics.Registry

	mu       sync.Mutex
	log      map[string][]Entry
	ingested []string
}

func (fx *fixture) setLog(feed string, entries []Entry) {
	fx.mu.Lock()
	defer fx.mu.Unlock()
	fx.log[feed] = entries
}

func newFixture(t *testing.T, mutate func(*Options)) *fixture {
	t.Helper()
	dir := t.TempDir()
	for name, content := range map[string]string{
		"market/BPS/one.csv": "a,b\n",
		"market/BPS/two.csv": "c,d\ne,f\n",
	} {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fx := &fixture{t: t, reg: metrics.NewRegistry(), log: map[string][]Entry{}}
	base := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	fx.log["market/BPS"] = []Entry{
		{Seq: 3, Name: "one.csv", StagedPath: "market/BPS/one.csv", Size: 4, Checksum: 0xaa, Time: base, Archived: true},
		{Seq: 5, Name: "two.csv", StagedPath: "market/BPS/two.csv", Size: 8, Checksum: 0xbb, Time: base.Add(time.Minute)},
	}
	fx.log["ref"] = nil
	opts := Options{
		Listen:   "127.0.0.1:0",
		Feeds:    []string{"market/BPS", "ref"},
		Registry: fx.reg,
		Principals: []*Principal{
			{Name: "wh1", Token: "s3cret", Feeds: []string{"market/BPS"}},
			{Name: "ops", Token: "t0ken", Feeds: []string{"market/BPS", "ref"}},
		},
		Log: func(feed string) []Entry {
			fx.mu.Lock()
			defer fx.mu.Unlock()
			return fx.log[feed]
		},
		Open: func(stagedPath string) (io.ReadCloser, error) {
			return os.Open(filepath.Join(dir, filepath.FromSlash(stagedPath)))
		},
		Ingest: func(name string, data []byte) error {
			fx.mu.Lock()
			defer fx.mu.Unlock()
			fx.ingested = append(fx.ingested, name)
			return nil
		},
		// Stand-in classifier: names route by prefix, default market/BPS.
		Resolve: func(name string) []string {
			switch {
			case strings.HasPrefix(name, "ref_"):
				return []string{"ref"}
			case strings.HasPrefix(name, "both_"):
				return []string{"market/BPS", "ref"}
			case strings.HasPrefix(name, "junk_"):
				return nil
			default:
				return []string{"market/BPS"}
			}
		},
	}
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Stop() })
	fx.srv = srv
	return fx
}

func (fx *fixture) do(method, path, auth string, body []byte, hdr map[string]string) *http.Response {
	fx.t.Helper()
	req, err := http.NewRequest(method, "http://"+fx.srv.Addr()+path, bytes.NewReader(body))
	if err != nil {
		fx.t.Fatal(err)
	}
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fx.t.Fatal(err)
	}
	fx.t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodePage(t *testing.T, resp *http.Response) logPage {
	t.Helper()
	var page logPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

const bearer = "Bearer s3cret"

// TestEndpointAuthMatrix pins every endpoint × auth outcome.
func TestEndpointAuthMatrix(t *testing.T) {
	fx := newFixture(t, nil)
	basicOps := BuildAuthorization("ops", "t0ken")
	cases := []struct {
		name         string
		method, path string
		auth         string
		want         int
	}{
		{"log ok bearer", "GET", "/feeds/market/BPS", bearer, 200},
		{"log ok basic", "GET", "/feeds/market/BPS", basicOps, 200},
		{"stats ok", "GET", "/feeds/market/BPS/stats", bearer, 200},
		{"content ok", "GET", "/feeds/market/BPS/files/5", bearer, 200},
		{"ingest ok", "POST", "/feeds/market/BPS?name=x.csv", bearer, 201},

		{"no credentials", "GET", "/feeds/market/BPS", "", 401},
		{"garbage header", "GET", "/feeds/market/BPS", "Digest nope", 401},
		{"unknown token", "GET", "/feeds/market/BPS", "Bearer wrong", 401},
		{"basic wrong user", "GET", "/feeds/market/BPS", BuildAuthorization("ghost", "t0ken"), 401},
		{"basic wrong password", "GET", "/feeds/market/BPS", BuildAuthorization("ops", "bad"), 401},

		{"feed outside ACL", "GET", "/feeds/ref", bearer, 403},
		{"stats outside ACL", "GET", "/feeds/ref/stats", bearer, 403},
		{"ingest outside ACL", "POST", "/feeds/ref?name=x.csv", bearer, 403},
		// The deposit routes by name pattern, not URL: a name that
		// resolves to a feed outside the ACL is refused even when the
		// URL feed itself is allowed (the PR 9 ACL-bypass hole).
		{"ingest name routes outside ACL", "POST", "/feeds/market/BPS?name=ref_x.csv", bearer, 403},
		{"ingest multicast partly outside ACL", "POST", "/feeds/market/BPS?name=both_x.csv", bearer, 403},
		{"ingest multicast within ACL", "POST", "/feeds/market/BPS?name=both_x.csv", basicOps, 201},
		{"ingest name routes elsewhere", "POST", "/feeds/market/BPS?name=ref_x.csv", basicOps, 400},
		{"ingest unmatched name", "POST", "/feeds/market/BPS?name=junk_x.csv", basicOps, 400},

		{"unknown feed", "GET", "/feeds/nope", bearer, 404},
		{"unknown nested feed", "GET", "/feeds/market/NOPE", bearer, 404},
		{"unknown seq", "GET", "/feeds/market/BPS/files/99", bearer, 404},
		{"files bad seq", "GET", "/feeds/market/BPS/files/xyz", bearer, 404},

		{"from past head", "GET", "/feeds/market/BPS?from=7", bearer, 416},

		{"log delete", "DELETE", "/feeds/market/BPS", bearer, 405},
		{"stats post", "POST", "/feeds/market/BPS/stats", bearer, 405},
		{"content post", "POST", "/feeds/market/BPS/files/5", bearer, 405},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := fx.do(c.method, c.path, c.auth, nil, nil)
			if resp.StatusCode != c.want {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("%s %s: status %d, want %d (%s)", c.method, c.path, resp.StatusCode, c.want, body)
			}
			if c.want == 401 && resp.Header.Get("WWW-Authenticate") == "" {
				t.Fatal("401 without WWW-Authenticate")
			}
		})
	}
}

func TestLogPagination(t *testing.T) {
	fx := newFixture(t, nil)
	// First page: everything from the start.
	page := decodePage(t, fx.do("GET", "/feeds/market/BPS", bearer, nil, nil))
	if page.Head != 5 || len(page.Entries) != 2 || page.Next != 6 {
		t.Fatalf("page = %+v", page)
	}
	if page.Entries[0].Seq != 3 || !page.Entries[0].Archived || page.Entries[1].Seq != 5 {
		t.Fatalf("entries = %+v", page.Entries)
	}
	// limit=1 then resume at next: ids with gaps, no entry skipped.
	p1 := decodePage(t, fx.do("GET", "/feeds/market/BPS?limit=1", bearer, nil, nil))
	if len(p1.Entries) != 1 || p1.Entries[0].Seq != 3 || p1.Next != 4 {
		t.Fatalf("p1 = %+v", p1)
	}
	p2 := decodePage(t, fx.do("GET", fmt.Sprintf("/feeds/market/BPS?from=%d", p1.Next), bearer, nil, nil))
	if len(p2.Entries) != 1 || p2.Entries[0].Seq != 5 || p2.Next != 6 {
		t.Fatalf("p2 = %+v", p2)
	}
	// Caught-up tail: empty 200 page, not 416.
	p3 := decodePage(t, fx.do("GET", fmt.Sprintf("/feeds/market/BPS?from=%d", p2.Next), bearer, nil, nil))
	if len(p3.Entries) != 0 || p3.Next != 6 {
		t.Fatalf("p3 = %+v", p3)
	}
	// Time cursor: starts at the first entry not before the instant.
	ts := time.Date(2026, 8, 7, 10, 0, 30, 0, time.UTC).Format(time.RFC3339)
	pt := decodePage(t, fx.do("GET", "/feeds/market/BPS?from="+ts, bearer, nil, nil))
	if len(pt.Entries) != 1 || pt.Entries[0].Seq != 5 {
		t.Fatalf("pt = %+v", pt)
	}
	// Bad cursors.
	for _, q := range []string{"?from=xyz", "?limit=0", "?limit=-3", "?limit=zz"} {
		if resp := fx.do("GET", "/feeds/market/BPS"+q, bearer, nil, nil); resp.StatusCode != 400 {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestTimeCursorNonMonotone pins the from=<ts> semantics when data
// times are not monotone in seq (a late-arriving file carries an older
// data time): the read starts at the earliest seq whose time
// qualifies, so no qualifying entry is skipped — a binary search over
// the seq-sorted log would land arbitrarily and drop entries.
func TestTimeCursorNonMonotone(t *testing.T) {
	base := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	fx := newFixture(t, nil)
	fx.setLog("market/BPS", []Entry{
		{Seq: 3, Name: "new.csv", Time: base.Add(2 * time.Minute)},
		{Seq: 5, Name: "straggler.csv", Time: base}, // older data, later seq
		{Seq: 7, Name: "newest.csv", Time: base.Add(3 * time.Minute)},
	})
	ts := base.Add(time.Minute).Format(time.RFC3339)
	page := decodePage(t, fx.do("GET", "/feeds/market/BPS?from="+ts, bearer, nil, nil))
	// Seq 3 qualifies and must not be skipped; the straggler rides
	// along because the page is a contiguous seq suffix.
	if len(page.Entries) != 3 || page.Entries[0].Seq != 3 {
		t.Fatalf("page = %+v", page)
	}
}

func TestLogCachingHeaders(t *testing.T) {
	fx := newFixture(t, nil)
	// A full page (limit reached) is cacheable — but the plane runs with
	// principals, so it must be private (a shared cache would re-serve
	// one principal's authorized read to anyone) and carry a short TTL
	// (the page includes a staged entry quarantine could withdraw).
	resp := fx.do("GET", "/feeds/market/BPS?limit=2", bearer, nil, nil)
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "private") ||
		strings.Contains(cc, "public") || !strings.Contains(cc, "max-age=300") {
		t.Fatalf("full page Cache-Control = %q", cc)
	}
	if v := resp.Header.Get("Vary"); v != "Authorization" {
		t.Fatalf("ACL-gated response Vary = %q", v)
	}
	// A partial (tail) page must revalidate.
	resp = fx.do("GET", "/feeds/market/BPS", bearer, nil, nil)
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("tail page Cache-Control = %q", cc)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on log page")
	}
	// Idle poll with the cursor ETag costs a 304.
	resp = fx.do("GET", "/feeds/market/BPS", bearer, nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != 304 {
		t.Fatalf("revalidation status = %d", resp.StatusCode)
	}
	// New arrival changes the ETag: same request now returns the page.
	fx.mu.Lock()
	fx.log["market/BPS"] = append(fx.log["market/BPS"],
		Entry{Seq: 9, Name: "three.csv", StagedPath: "market/BPS/one.csv", Size: 4, Time: time.Now()})
	fx.mu.Unlock()
	resp = fx.do("GET", "/feeds/market/BPS", bearer, nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != 200 {
		t.Fatalf("post-append status = %d", resp.StatusCode)
	}
}

func TestContentServing(t *testing.T) {
	fx := newFixture(t, nil)
	// Seq 5 is staged: quarantine can still withdraw it, so its cache
	// lifetime is short and not immutable — and private behind the ACL.
	resp := fx.do("GET", "/feeds/market/BPS/files/5", bearer, nil, nil)
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "c,d\ne,f\n" {
		t.Fatalf("content = %q", body)
	}
	if cc := resp.Header.Get("Cache-Control"); strings.Contains(cc, "immutable") ||
		!strings.Contains(cc, "private") || !strings.Contains(cc, "max-age=600") {
		t.Fatalf("staged content Cache-Control = %q", cc)
	}
	// Seq 3 is archived: closed history, long immutable lifetime.
	resp = fx.do("GET", "/feeds/market/BPS/files/3", bearer, nil, nil)
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") ||
		!strings.Contains(cc, "private") || !strings.Contains(cc, "max-age=86400") {
		t.Fatalf("archived content Cache-Control = %q", cc)
	}
	etag := resp.Header.Get("ETag")
	resp = fx.do("GET", "/feeds/market/BPS/files/3", bearer, nil, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != 304 {
		t.Fatalf("content revalidation = %d", resp.StatusCode)
	}
}

// TestOpenModeCaching pins the open-plane (no principals) headers:
// with no ACL there is no credential for a shared cache to leak, so
// responses may be public and carry no Vary.
func TestOpenModeCaching(t *testing.T) {
	fx := newFixture(t, func(o *Options) { o.Principals = nil })
	resp := fx.do("GET", "/feeds/market/BPS/files/3", "", nil, nil)
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "public") {
		t.Fatalf("open-mode archived content Cache-Control = %q", cc)
	}
	if v := resp.Header.Get("Vary"); v != "" {
		t.Fatalf("open-mode Vary = %q", v)
	}
	full := fx.do("GET", "/feeds/market/BPS?limit=2", "", nil, nil)
	if cc := full.Header.Get("Cache-Control"); !strings.Contains(cc, "public") {
		t.Fatalf("open-mode full page Cache-Control = %q", cc)
	}
}

// TestQuarantinedMidRead models a file quarantined between a poller's
// page read and its content fetch: the id vanishes from the log, so
// the content read 404s rather than serving poisoned bytes.
func TestQuarantinedMidRead(t *testing.T) {
	fx := newFixture(t, nil)
	page := decodePage(t, fx.do("GET", "/feeds/market/BPS", bearer, nil, nil))
	if len(page.Entries) != 2 {
		t.Fatalf("page = %+v", page)
	}
	fx.setLog("market/BPS", page1Only(fx))
	if resp := fx.do("GET", "/feeds/market/BPS/files/5", bearer, nil, nil); resp.StatusCode != 404 {
		t.Fatalf("quarantined content status = %d", resp.StatusCode)
	}
}

func page1Only(fx *fixture) []Entry {
	fx.mu.Lock()
	defer fx.mu.Unlock()
	return fx.log["market/BPS"][:1]
}

// TestTornManifestTail serves a log backed by a real manifest whose
// day file has a torn final line (power cut mid-append): the torn
// record is skipped, the good ones serve.
func TestTornManifestTail(t *testing.T) {
	root := t.TempDir()
	day := filepath.Join(root, "market", "BPS")
	if err := os.MkdirAll(day, 0o755); err != nil {
		t.Fatal(err)
	}
	good1 := `{"id":3,"name":"one.csv","staged":"market/BPS/one.csv","feed":"market/BPS","size":4,"crc":170,"arrived":"2026-08-07T10:00:00Z","archived_at":"2026-08-07T11:00:00Z"}`
	good2 := `{"id":5,"name":"two.csv","staged":"market/BPS/two.csv","feed":"market/BPS","size":8,"crc":187,"arrived":"2026-08-07T10:01:00Z","archived_at":"2026-08-07T11:00:00Z"}`
	torn := `{"id":9,"name":"thr`
	if err := os.WriteFile(filepath.Join(day, "20260807.jsonl"),
		[]byte(good1+"\n"+good2+"\n"+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	man, err := archive.OpenManifest(nil, root)
	if err != nil {
		t.Fatal(err)
	}
	fx := newFixture(t, func(o *Options) {
		o.Log = func(feed string) []Entry {
			var out []Entry
			for _, e := range man.EntriesSince(feed, 0) {
				out = append(out, Entry{Seq: e.ID, Name: e.Name, StagedPath: e.StagedPath,
					Size: e.Size, Checksum: e.Checksum, Time: e.Key(), Archived: true})
			}
			return out
		}
	})
	page := decodePage(t, fx.do("GET", "/feeds/market/BPS", bearer, nil, nil))
	if page.Head != 5 || len(page.Entries) != 2 {
		t.Fatalf("page over torn manifest = %+v", page)
	}
	if resp := fx.do("GET", "/feeds/market/BPS/files/9", bearer, nil, nil); resp.StatusCode != 404 {
		t.Fatalf("torn entry content status = %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	fx := newFixture(t, nil)
	resp := fx.do("GET", "/feeds/market/BPS/stats", bearer, nil, nil)
	var st feedStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Head != 5 || st.Files != 2 || st.Archived != 1 || st.Staged != 1 || st.Bytes != 12 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngest(t *testing.T) {
	fx := newFixture(t, func(o *Options) { o.MaxBody = 16 })
	if resp := fx.do("POST", "/feeds/market/BPS?name=bps_1.csv", bearer, []byte("x,y\n"), nil); resp.StatusCode != 201 {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	fx.mu.Lock()
	got := append([]string{}, fx.ingested...)
	fx.mu.Unlock()
	if !reflect.DeepEqual(got, []string{"bps_1.csv"}) {
		t.Fatalf("ingested = %v", got)
	}
	// Missing name.
	if resp := fx.do("POST", "/feeds/market/BPS", bearer, []byte("x"), nil); resp.StatusCode != 400 {
		t.Fatalf("nameless ingest status = %d", resp.StatusCode)
	}
	// Body over the cap.
	if resp := fx.do("POST", "/feeds/market/BPS?name=big.csv", bearer, bytes.Repeat([]byte("z"), 64), nil); resp.StatusCode != 413 {
		t.Fatalf("oversized ingest status = %d", resp.StatusCode)
	}
}

// TestOpenMode pins the no-principals configuration: the plane serves
// without credentials (lab use).
func TestOpenMode(t *testing.T) {
	fx := newFixture(t, func(o *Options) { o.Principals = nil })
	if resp := fx.do("GET", "/feeds/market/BPS", "", nil, nil); resp.StatusCode != 200 {
		t.Fatalf("open mode status = %d", resp.StatusCode)
	}
}

func TestMergeLogs(t *testing.T) {
	staged := []Entry{{Seq: 3}, {Seq: 5}, {Seq: 8}}
	archived := []Entry{{Seq: 3, Archived: true}, {Seq: 6, Archived: true}}
	got := MergeLogs(staged, archived)
	want := []uint64{3, 5, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("merged = %+v", got)
	}
	for i, seq := range want {
		if got[i].Seq != seq {
			t.Fatalf("merged[%d] = %+v, want seq %d", i, got[i], seq)
		}
	}
	// The overlapping id keeps the archived copy.
	if !got[0].Archived {
		t.Fatal("overlap did not prefer the archived entry")
	}
}

func TestMetricsRegistered(t *testing.T) {
	fx := newFixture(t, nil)
	fx.do("GET", "/feeds/market/BPS", bearer, nil, nil)
	fx.do("GET", "/feeds/market/BPS", "Bearer wrong", nil, nil)
	var buf bytes.Buffer
	fx.reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`bistro_http_requests_total{endpoint="log",code="200"} 1`,
		"bistro_http_auth_failures_total 1",
		"bistro_http_poll_latency_seconds_count 1",
		"bistro_http_bytes_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}
