package httpfeed

import (
	"net"
	"testing"
	"time"
)

// TestSlowLorisCutOff pins the header-read timeout: a client that
// opens a connection and dribbles a partial request must be
// disconnected once ReadHeaderTimeout elapses, not hold a connection
// slot forever.
func TestSlowLorisCutOff(t *testing.T) {
	fx := newFixture(t, func(o *Options) {
		o.ReadHeaderTimeout = 150 * time.Millisecond
		o.ReadTimeout = 150 * time.Millisecond
	})
	conn, err := net.Dial("tcp", fx.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /feeds/market/BPS HTTP/1.1\r\nHos")); err != nil {
		t.Fatal(err)
	}
	// The server must cut the connection well before a patient
	// attacker would: a read observes EOF/reset within the deadline.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 256)
	start := time.Now()
	for {
		if _, err := conn.Read(buf); err != nil {
			if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
				t.Fatal("connection still open 3s after a 150ms header timeout")
			}
			break // closed by the server — the regression guard
		}
		if time.Since(start) > 3*time.Second {
			t.Fatal("server kept responding to a stalled request")
		}
	}
}
