package httpfeed

import (
	"crypto/subtle"
	"encoding/base64"
	"fmt"
	"strings"
)

// Principal is one authenticated identity with its feed ACL, resolved
// from a config http principal entry.
type Principal struct {
	// Name is the identity (the basic-auth username, the log label).
	Name string
	// Token is the shared secret: the bearer token or basic-auth
	// password.
	Token string
	// Feeds is the sorted leaf-feed ACL.
	Feeds []string
}

// Allowed reports whether the principal's ACL covers the feed.
func (p *Principal) Allowed(feed string) bool {
	for _, f := range p.Feeds {
		if f == feed {
			return true
		}
	}
	return false
}

// ParseAuthorization extracts the presented credential from an
// Authorization header value. Two schemes are accepted:
//
//	Bearer <token>          → user "", token
//	Basic <base64(u:tok)>   → user u, token tok
//
// The scheme word is case-insensitive. Rejections never panic; an
// accepted credential round-trips through BuildAuthorization.
func ParseAuthorization(header string) (user, token string, err error) {
	scheme, rest, ok := strings.Cut(header, " ")
	if !ok {
		return "", "", fmt.Errorf("httpfeed: malformed Authorization header")
	}
	rest = strings.TrimSpace(rest)
	switch strings.ToLower(scheme) {
	case "bearer":
		if rest == "" || strings.ContainsAny(rest, " \t") {
			return "", "", fmt.Errorf("httpfeed: malformed bearer token")
		}
		return "", rest, nil
	case "basic":
		raw, derr := base64.StdEncoding.DecodeString(rest)
		if derr != nil {
			return "", "", fmt.Errorf("httpfeed: bad basic credentials: %w", derr)
		}
		u, tok, found := strings.Cut(string(raw), ":")
		if !found || u == "" {
			return "", "", fmt.Errorf("httpfeed: bad basic credentials: want user:token")
		}
		return u, tok, nil
	default:
		return "", "", fmt.Errorf("httpfeed: unsupported Authorization scheme %q", scheme)
	}
}

// BuildAuthorization renders a credential back into a header value
// ParseAuthorization accepts: the fuzz round-trip partner of
// ParseAuthorization.
func BuildAuthorization(user, token string) string {
	if user == "" {
		return "Bearer " + token
	}
	return "Basic " + base64.StdEncoding.EncodeToString([]byte(user+":"+token))
}

// authenticate matches a credential against the principal set using
// constant-time token comparison. A bearer token alone names its
// principal (the config layer rejects shared tokens); basic
// credentials must also match the principal's name. Every principal is
// always compared so timing does not reveal which token prefix
// matched.
func authenticate(principals []*Principal, user, token string) *Principal {
	var matched *Principal
	for _, p := range principals {
		ok := subtle.ConstantTimeCompare([]byte(p.Token), []byte(token)) == 1
		if user != "" && p.Name != user {
			ok = false
		}
		if ok && matched == nil {
			matched = p
		}
	}
	return matched
}
