package httpfeed

import (
	"strings"
	"testing"
)

// FuzzParseFrom drives the from= cursor parser with arbitrary query
// values. Invariants: never panics; an accepted cursor round-trips
// through String() to an equivalent cursor (same axis, same sequence
// or instant).
func FuzzParseFrom(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("18446744073709551615")
	f.Add("18446744073709551616")
	f.Add("007")
	f.Add("-1")
	f.Add("1e3")
	f.Add("2026-08-07T10:00:00Z")
	f.Add("2026-08-07T10:00:00.123456789Z")
	f.Add("2026-08-07T10:00:00+05:30")
	f.Add("2026-13-40T99:00:00Z")
	f.Add("yesterday")
	f.Fuzz(func(t *testing.T, s string) {
		from, err := ParseFrom(s)
		if err != nil {
			return
		}
		back, err := ParseFrom(from.String())
		if err != nil {
			t.Fatalf("accepted cursor %q renders as %q, which does not reparse: %v", s, from.String(), err)
		}
		if back.BySeq != from.BySeq || back.Seq != from.Seq || !back.Time.Equal(from.Time) {
			t.Fatalf("cursor %q round-trips to %+v, want %+v", s, back, from)
		}
	})
}

// FuzzParseAuthorization drives the Authorization header parser with
// arbitrary values. Invariants: never panics; an accepted credential
// round-trips through BuildAuthorization; parsed users never contain
// the basic-auth separator.
func FuzzParseAuthorization(f *testing.F) {
	f.Add("Bearer s3cret")
	f.Add("bearer lower-scheme")
	f.Add("Bearer ")
	f.Add("Bearer two words")
	f.Add("Basic d2gxOnMzY3JldA==")     // wh1:s3cret
	f.Add("basic b3BzOnQwazpjb2xvbg==") // ops:t0k:colon
	f.Add("Basic ???not-base64???")
	f.Add("Basic OnRva2Vu") // :token — empty user
	f.Add("Digest nope")
	f.Add("Bearer")
	f.Add("")
	f.Fuzz(func(t *testing.T, header string) {
		user, token, err := ParseAuthorization(header)
		if err != nil {
			return
		}
		if strings.Contains(user, ":") {
			t.Fatalf("header %q parsed to user %q containing a colon", header, user)
		}
		u2, t2, err := ParseAuthorization(BuildAuthorization(user, token))
		if err != nil {
			t.Fatalf("accepted credential (%q, %q) from %q does not reparse: %v", user, token, header, err)
		}
		if u2 != user || t2 != token {
			t.Fatalf("credential from %q round-trips to (%q, %q), want (%q, %q)", header, u2, t2, user, token)
		}
	})
}
