package httpfeed

import "bistro/internal/metrics"

// Metrics are the data plane's bistro_http_* instruments.
type Metrics struct {
	// Requests counts requests by endpoint (log, stats, content,
	// ingest, other) and status code.
	Requests *metrics.CounterVec
	// Bytes counts payload bytes by direction (in for ingest bodies,
	// out for response bodies).
	Bytes *metrics.CounterVec
	// PollLatency observes wall time serving log reads — the latency a
	// poller pays per page.
	PollLatency *metrics.Histogram
	// AuthFailures counts rejected credentials (missing, unparsable,
	// or unknown).
	AuthFailures *metrics.Counter
}

// NewMetrics registers the data plane's instruments on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Requests: reg.CounterVec("bistro_http_requests_total",
			"HTTP data-plane requests by endpoint and status code.",
			"endpoint", "code"),
		Bytes: reg.CounterVec("bistro_http_bytes_total",
			"HTTP data-plane payload bytes by direction.",
			"direction"),
		PollLatency: reg.Histogram("bistro_http_poll_latency_seconds",
			"Wall time serving feed log reads.",
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
		AuthFailures: reg.Counter("bistro_http_auth_failures_total",
			"HTTP data-plane requests rejected for bad or missing credentials."),
	}
}
