// Package baseline implements the feed delivery mechanisms the paper
// compares Bistro against (SIGMOD'11 §2.2): a pull-based subscriber
// that discovers new files by polling the provider's directory tree,
// and an rsync/cron-style push pipeline that keeps no delivery state
// and instead rescans both source and destination trees on every run.
// Both exist so experiments E1 and E2 can measure the directory-scan
// costs the paper criticizes against Bistro's notification + receipt
// approach, on the same workloads.
package baseline

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bistro/internal/clock"
)

// walkDir is filepath.WalkDir behind a seam so tests can inject walk
// errors (wrapped not-exist shapes in particular).
var walkDir = filepath.WalkDir

// PullStats summarizes one polling pass.
type PullStats struct {
	// Entries is the number of directory entries examined (the
	// filesystem metadata cost the paper highlights).
	Entries int
	// NewFiles is how many previously unseen files the pass found.
	NewFiles int
	// Elapsed is the wall-clock cost of the pass.
	Elapsed time.Duration
}

// PullSubscriber models a pull-based feed consumer: it must rescan the
// provider's whole retained history every poll to discover new files,
// because nothing tells it where (or whether) new data appeared —
// including arbitrarily late, out-of-order files in old directories.
type PullSubscriber struct {
	root string

	mu   sync.Mutex
	seen map[string]bool
}

// NewPullSubscriber polls the provider tree rooted at root.
func NewPullSubscriber(root string) *PullSubscriber {
	return &PullSubscriber{root: root, seen: make(map[string]bool)}
}

// Poll performs one full scan, returning newly discovered files and
// the scan cost.
func (p *PullSubscriber) Poll() ([]string, PullStats, error) {
	start := time.Now()
	var stats PullStats
	var fresh []string
	p.mu.Lock()
	defer p.mu.Unlock()
	err := walkDir(p.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// Vanished mid-scan; the error may arrive wrapped.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		stats.Entries++
		if d.IsDir() {
			return nil
		}
		rel, rerr := filepath.Rel(p.root, path)
		if rerr != nil {
			return rerr
		}
		if !p.seen[rel] {
			p.seen[rel] = true
			fresh = append(fresh, rel)
		}
		return nil
	})
	stats.NewFiles = len(fresh)
	stats.Elapsed = time.Since(start)
	if err != nil {
		return nil, stats, fmt.Errorf("baseline: poll: %w", err)
	}
	return fresh, stats, nil
}

// SyncStats summarizes one rsync-style pass.
type SyncStats struct {
	// ScannedSrc and ScannedDst count directory entries examined on
	// each side — the stateless-scan cost that grows with history.
	ScannedSrc int
	ScannedDst int
	// Transferred is how many files were copied.
	Transferred int
	// Bytes is the payload volume copied.
	Bytes int64
	// Elapsed is the wall-clock cost of the pass.
	Elapsed time.Duration
}

// Sync performs one stateless rsync-like synchronization: scan the
// whole source tree, scan the whole destination tree, copy anything
// missing or size-changed. Like rsync, it keeps no record of previous
// runs — every pass pays the full two-sided scan even when nothing is
// new (§2.2.2 drawback 2). It also mirrors the full source history
// into the destination (drawback 3: the subscriber cannot keep a
// smaller landing window).
func Sync(srcRoot, dstRoot string) (SyncStats, error) {
	start := time.Now()
	var stats SyncStats

	type fileInfo struct {
		size int64
	}
	src := make(map[string]fileInfo)
	err := walkDir(srcRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		stats.ScannedSrc++
		if d.IsDir() {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return ierr
		}
		rel, rerr := filepath.Rel(srcRoot, path)
		if rerr != nil {
			return rerr
		}
		src[rel] = fileInfo{size: info.Size()}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("baseline: sync scan src: %w", err)
	}

	dst := make(map[string]fileInfo)
	err = walkDir(dstRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		stats.ScannedDst++
		if d.IsDir() {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return ierr
		}
		rel, rerr := filepath.Rel(dstRoot, path)
		if rerr != nil {
			return rerr
		}
		dst[rel] = fileInfo{size: info.Size()}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("baseline: sync scan dst: %w", err)
	}

	for rel, sf := range src {
		if df, ok := dst[rel]; ok && df.size == sf.size {
			continue
		}
		n, cerr := copyTree(filepath.Join(srcRoot, rel), filepath.Join(dstRoot, rel))
		if cerr != nil {
			return stats, fmt.Errorf("baseline: sync copy %s: %w", rel, cerr)
		}
		stats.Transferred++
		stats.Bytes += n
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}

func copyTree(src, dst string) (int64, error) {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return 0, err
	}
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(out, in)
	if err != nil {
		out.Close()
		return n, err
	}
	return n, out.Close()
}

// Cron drives jobs at a fixed period the way the paper's rsync+cron
// pipelines do (§2.2.2 drawback 4): if the previous run of a job is
// still in flight when the next tick fires, the tick is either skipped
// (overlap guard on) or launched anyway, stepping on the previous run.
type Cron struct {
	clk      clock.Clock
	interval time.Duration
	// SkipOverlap guards against concurrent runs of the same job.
	SkipOverlap bool

	mu      sync.Mutex
	running bool
	ticks   int
	skipped int
	stopCh  chan struct{}
	wg      sync.WaitGroup
	stopped bool
}

// NewCron creates a cron driver.
func NewCron(clk clock.Clock, interval time.Duration) *Cron {
	return &Cron{clk: clk, interval: interval, stopCh: make(chan struct{})}
}

// Start invokes job every interval until Stop.
func (c *Cron) Start(job func()) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			t := c.clk.NewTimer(c.interval)
			select {
			case <-c.stopCh:
				t.Stop()
				return
			case <-t.C():
			}
			c.mu.Lock()
			c.ticks++
			if c.running && c.SkipOverlap {
				c.skipped++
				c.mu.Unlock()
				continue
			}
			c.running = true
			c.mu.Unlock()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				job()
				c.mu.Lock()
				c.running = false
				c.mu.Unlock()
			}()
		}
	}()
}

// Stop terminates the loop and waits for in-flight runs.
func (c *Cron) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	close(c.stopCh)
	c.wg.Wait()
}

// Stats reports (ticks fired, ticks skipped by the overlap guard).
func (c *Cron) Stats() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks, c.skipped
}
