package baseline

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// injectWrappedNotExist makes walkDir report one WRAPPED fs.ErrNotExist
// before delegating to the real walk — the shape a vanished entry takes
// when an fs layer annotates it. os.IsNotExist does not see through the
// wrapping; errors.Is must.
func injectWrappedNotExist(t *testing.T) {
	t.Helper()
	prev := walkDir
	walkDir = func(root string, fn fs.WalkDirFunc) error {
		if err := fn(filepath.Join(root, "ghost"), nil,
			fmt.Errorf("walk %s: entry vanished: %w", root, fs.ErrNotExist)); err != nil {
			return err
		}
		return filepath.WalkDir(root, fn)
	}
	t.Cleanup(func() { walkDir = prev })
}

func TestPollToleratesWrappedNotExist(t *testing.T) {
	injectWrappedNotExist(t)
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "a.csv"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPullSubscriber(root)
	fresh, _, err := p.Poll()
	if err != nil {
		t.Fatalf("poll aborted on a wrapped not-exist: %v", err)
	}
	if len(fresh) != 1 || fresh[0] != "a.csv" {
		t.Fatalf("fresh = %v, want [a.csv]", fresh)
	}
}

func TestSyncToleratesWrappedNotExist(t *testing.T) {
	injectWrappedNotExist(t)
	src, dst := t.TempDir(), t.TempDir()
	if err := os.WriteFile(filepath.Join(src, "a.csv"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := Sync(src, dst)
	if err != nil {
		t.Fatalf("sync aborted on a wrapped not-exist: %v", err)
	}
	if stats.Transferred != 1 {
		t.Fatalf("transferred = %d, want 1", stats.Transferred)
	}
}
