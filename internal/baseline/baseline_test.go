package baseline

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bistro/internal/clock"
)

func mkFiles(t testing.TB, root string, n int, prefix string) {
	t.Helper()
	for i := 0; i < n; i++ {
		dir := filepath.Join(root, fmt.Sprintf("2010/09/%02d", i%28+1))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, fmt.Sprintf("%s%06d.csv", prefix, i))
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPullSubscriberFindsNewFilesOnce(t *testing.T) {
	root := t.TempDir()
	mkFiles(t, root, 10, "a")
	p := NewPullSubscriber(root)
	fresh, stats, err := p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 10 || stats.NewFiles != 10 {
		t.Fatalf("fresh = %d", len(fresh))
	}
	// Second poll: nothing new, but the scan still walks everything.
	fresh, stats, err = p.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatalf("second poll fresh = %d", len(fresh))
	}
	if stats.Entries < 10 {
		t.Fatalf("entries = %d; stateless scan should still walk history", stats.Entries)
	}
}

func TestPullScanCostGrowsWithHistory(t *testing.T) {
	small := t.TempDir()
	big := t.TempDir()
	mkFiles(t, small, 50, "s")
	mkFiles(t, big, 500, "b")
	ps, pb := NewPullSubscriber(small), NewPullSubscriber(big)
	_, ss, _ := ps.Poll()
	_, sb, _ := pb.Poll()
	if sb.Entries <= ss.Entries {
		t.Fatalf("big history scanned %d entries, small %d", sb.Entries, ss.Entries)
	}
}

func TestSyncTransfersMissing(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	mkFiles(t, src, 5, "f")
	stats, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transferred != 5 {
		t.Fatalf("transferred = %d", stats.Transferred)
	}
	// Idempotent: second run copies nothing but scans everything.
	stats, err = Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transferred != 0 {
		t.Fatalf("second sync transferred = %d", stats.Transferred)
	}
	if stats.ScannedSrc < 5 || stats.ScannedDst < 5 {
		t.Fatalf("scans = %d/%d; rsync-style sync must rescan both sides", stats.ScannedSrc, stats.ScannedDst)
	}
}

func TestSyncDetectsSizeChange(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	os.WriteFile(filepath.Join(src, "f.csv"), []byte("v1"), 0o644)
	if _, err := Sync(src, dst); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(src, "f.csv"), []byte("v2-longer"), 0o644)
	stats, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transferred != 1 {
		t.Fatalf("transferred = %d", stats.Transferred)
	}
	got, _ := os.ReadFile(filepath.Join(dst, "f.csv"))
	if string(got) != "v2-longer" {
		t.Fatalf("content = %q", got)
	}
}

func TestSyncMirrorsFullHistory(t *testing.T) {
	// Drawback 3: the destination cannot keep a smaller window.
	src, dst := t.TempDir(), t.TempDir()
	mkFiles(t, src, 20, "h")
	if _, err := Sync(src, dst); err != nil {
		t.Fatal(err)
	}
	count := 0
	filepath.WalkDir(dst, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			count++
		}
		return nil
	})
	if count != 20 {
		t.Fatalf("destination holds %d files, full mirror expected 20", count)
	}
}

func TestCronFiresAndSkipsOverlap(t *testing.T) {
	clk := clock.NewSimulated(time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC))
	c := NewCron(clk, time.Minute)
	c.SkipOverlap = true
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	c.Start(func() {
		started <- struct{}{}
		<-block
	})
	// First tick launches the job.
	advanceUntil(t, clk, func() bool { return len(started) >= 1 })
	// More ticks while the job is stuck: skipped.
	for i := 0; i < 3; i++ {
		clk.Advance(time.Minute)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if ticks, skipped := c.Stats(); ticks >= 4 && skipped >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	_, skipped := c.Stats()
	if skipped == 0 {
		t.Fatal("overlapping ticks not skipped")
	}
	close(block)
	c.Stop()
	c.Stop() // idempotent
}

func advanceUntil(t *testing.T, clk *clock.Simulated, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		clk.Advance(time.Minute)
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func BenchmarkPullPollHistory(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("history=%d", n), func(b *testing.B) {
			root := b.TempDir()
			mkFiles(b, root, n, "f")
			p := NewPullSubscriber(root)
			p.Poll() // warm: everything seen
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Poll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSyncNoChanges(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("history=%d", n), func(b *testing.B) {
			src, dst := b.TempDir(), b.TempDir()
			mkFiles(b, src, n, "f")
			if _, err := Sync(src, dst); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Sync(src, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
