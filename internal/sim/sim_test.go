package sim

import (
	"testing"
	"time"

	"bistro/internal/scheduler"
)

var t0 = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

// stream produces n arrivals of size bytes, one every gap.
func stream(n int, size int64, gap time.Duration) []Arrival {
	out := make([]Arrival, n)
	for i := range out {
		out[i] = Arrival{
			FileID: uint64(i + 1),
			Feed:   "F",
			Size:   size,
			At:     t0.Add(time.Duration(i) * gap),
		}
	}
	return out
}

func singlePartition(policy scheduler.PolicyKind, workers int) scheduler.Config {
	return scheduler.Config{
		Partitions: []scheduler.PartitionConfig{{Name: "all", Workers: workers, Policy: policy}},
	}
}

func TestAllDelivered(t *testing.T) {
	cfg := Config{
		Scheduler: singlePartition(scheduler.EDF, 2),
		Subscribers: []Subscriber{
			{Name: "a", Bandwidth: 1 << 20},
			{Name: "b", Bandwidth: 1 << 20},
		},
		Deadline: time.Minute,
		Start:    t0,
	}
	res, err := Run(cfg, stream(100, 1024, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if got := res.PerSub[name].Delivered; got != 100 {
			t.Fatalf("%s delivered = %d", name, got)
		}
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{
		Scheduler: singlePartition(scheduler.EDF, 2),
		Subscribers: []Subscriber{
			{Name: "a", Bandwidth: 100_000},
			{Name: "b", Bandwidth: 10_000},
		},
		Deadline: time.Minute,
		Start:    t0,
	}
	r1, err := Run(cfg, stream(200, 4096, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, stream(200, 4096, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for name := range r1.PerSub {
		if r1.PerSub[name].TotalTardy != r2.PerSub[name].TotalTardy {
			t.Fatalf("nondeterministic tardiness for %s", name)
		}
	}
	if !r1.Makespan.Equal(r2.Makespan) {
		t.Fatal("nondeterministic makespan")
	}
}

// The paper's core scheduling claim: with heterogeneous subscribers in
// ONE shared queue, slow subscribers consume the workers and fast
// (interactive) subscribers suffer; partitioning isolates them.
func TestPartitioningProtectsFastSubscribers(t *testing.T) {
	subsFor := func(fastPart, slowPart int) []Subscriber {
		subs := []Subscriber{{Name: "fast", Partition: fastPart, Bandwidth: 10 << 20}}
		for _, n := range []string{"slow1", "slow2", "slow3"} {
			subs = append(subs, Subscriber{Name: n, Partition: slowPart, Bandwidth: 20 << 10})
		}
		return subs
	}
	arrivals := stream(300, 64<<10, 500*time.Millisecond)

	// Global: one partition, everyone shares 2 workers.
	global := Config{
		Scheduler:   singlePartition(scheduler.EDF, 2),
		Subscribers: subsFor(0, 0),
		Deadline:    30 * time.Second,
		Start:       t0,
	}
	gres, err := Run(global, arrivals)
	if err != nil {
		t.Fatal(err)
	}

	// Partitioned: fast gets its own worker; slow subscribers share.
	parted := Config{
		Scheduler: scheduler.Config{
			Partitions: []scheduler.PartitionConfig{
				{Name: "interactive", Workers: 1, Policy: scheduler.EDF},
				{Name: "bulk", Workers: 1, Policy: scheduler.EDF},
			},
		},
		Subscribers: subsFor(0, 1),
		Deadline:    30 * time.Second,
		Start:       t0,
	}
	pres, err := Run(parted, arrivals)
	if err != nil {
		t.Fatal(err)
	}

	gf := gres.PerSub["fast"].MaxTardy
	pf := pres.PerSub["fast"].MaxTardy
	if pf >= gf {
		t.Fatalf("partitioning did not protect fast subscriber: global max tardy %v, partitioned %v", gf, pf)
	}
	if pres.PerSub["fast"].Delivered != 300 {
		t.Fatalf("fast delivered = %d", pres.PerSub["fast"].Delivered)
	}
}

// E5's claim: concurrent backfill keeps real-time tardiness flat after
// a reconnect, while in-order backfill (old deadlines first under EDF)
// delays new traffic.
func TestBackfillModes(t *testing.T) {
	outageFrom := t0
	outageTo := t0.Add(30 * time.Minute)
	mkCfg := func(mode scheduler.BackfillMode) Config {
		sched := scheduler.Config{
			Partitions: []scheduler.PartitionConfig{
				{Name: "p", Workers: 2, BackfillWorkers: 1, Policy: scheduler.EDF},
			},
			Backfill: mode,
		}
		if mode == scheduler.BackfillInOrder {
			sched.Partitions[0].BackfillWorkers = 0
		}
		return Config{
			Scheduler: sched,
			Subscribers: []Subscriber{{
				Name: "flappy", Bandwidth: 100 << 10,
				OfflineFrom: outageFrom, OfflineUntil: outageTo,
			}},
			Deadline: time.Minute,
			Start:    t0,
		}
	}
	// Files every 10s for 1h; the first 30min accumulate as backlog.
	arrivals := stream(360, 256<<10, 10*time.Second)

	resConc, err := Run(mkCfg(scheduler.BackfillConcurrent), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	resOrder, err := Run(mkCfg(scheduler.BackfillInOrder), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if resConc.PerSub["flappy"].Delivered != 360 || resOrder.PerSub["flappy"].Delivered != 360 {
		t.Fatalf("deliveries = %d / %d", resConc.PerSub["flappy"].Delivered, resOrder.PerSub["flappy"].Delivered)
	}
	if resConc.PerSub["flappy"].Backfilled == 0 {
		t.Fatal("no backfill recorded")
	}
	// In-order drains the 30-minute backlog before any new file: its
	// post-reconnect real-time traffic waits far longer.
	if resOrder.PerSub["flappy"].MaxTardy <= resConc.PerSub["flappy"].MaxTardy {
		t.Fatalf("in-order max tardy %v should exceed concurrent %v",
			resOrder.PerSub["flappy"].MaxTardy, resConc.PerSub["flappy"].MaxTardy)
	}
}

func TestInterestFilter(t *testing.T) {
	cfg := Config{
		Scheduler: singlePartition(scheduler.EDF, 1),
		Subscribers: []Subscriber{
			{Name: "bps-only", Bandwidth: 1 << 20},
			{Name: "everything", Bandwidth: 1 << 20},
		},
		Interest: map[string][]string{"bps-only": {"BPS"}},
		Deadline: time.Minute,
		Start:    t0,
	}
	arrivals := []Arrival{
		{FileID: 1, Feed: "BPS", Size: 100, At: t0},
		{FileID: 2, Feed: "PPS", Size: 100, At: t0.Add(time.Second)},
	}
	res, err := Run(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerSub["bps-only"].Delivered != 1 {
		t.Fatalf("bps-only delivered = %d", res.PerSub["bps-only"].Delivered)
	}
	if res.PerSub["everything"].Delivered != 2 {
		t.Fatalf("everything delivered = %d", res.PerSub["everything"].Delivered)
	}
}

func TestStatsPercentiles(t *testing.T) {
	s := Stats{}
	for i := 1; i <= 100; i++ {
		d := time.Duration(i) * time.Second
		s.tardySamples = append(s.tardySamples, d)
		s.TotalTardy += d
		s.Delivered++
	}
	if got := s.P99Tardiness(); got != 100*time.Second {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.MeanTardiness(); got != 50500*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
	empty := Stats{}
	if empty.P99Tardiness() != 0 || empty.MeanTardiness() != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestAggregate(t *testing.T) {
	res := Result{PerSub: map[string]*Stats{
		"a": {Delivered: 2, TotalTardy: 4 * time.Second, MaxTardy: 3 * time.Second},
		"b": {Delivered: 3, TotalTardy: 6 * time.Second, MaxTardy: 5 * time.Second},
	}}
	agg := res.Aggregate("a", "b", "missing")
	if agg.Delivered != 5 || agg.MaxTardy != 5*time.Second {
		t.Fatalf("agg = %+v", agg)
	}
}

func BenchmarkSim10kArrivals(b *testing.B) {
	cfg := Config{
		Scheduler: singlePartition(scheduler.EDF, 4),
		Subscribers: []Subscriber{
			{Name: "a", Bandwidth: 1 << 20},
			{Name: "b", Bandwidth: 1 << 19},
			{Name: "c", Bandwidth: 1 << 18},
		},
		Deadline: time.Minute,
		Start:    t0,
	}
	arrivals := stream(10000, 4096, 100*time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, arrivals); err != nil {
			b.Fatal(err)
		}
	}
}
