// Package sim is a deterministic discrete-event simulator for Bistro's
// delivery scheduling experiments (SIGMOD'11 §4.3). It drives the real
// scheduler package — the same queues, policies, partitions, in-flight
// caps, and backfill modes the production engine uses — under virtual
// time, so experiments E4 (scheduler comparison under heterogeneous
// subscribers) and E5 (backfill strategies) are exactly reproducible
// and compress hours of simulated traffic into milliseconds.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"bistro/internal/scheduler"
)

// Subscriber describes one simulated destination.
type Subscriber struct {
	// Name identifies the subscriber.
	Name string
	// Partition pins the subscriber to a scheduler partition.
	Partition int
	// Bandwidth in bytes/second determines transfer service time.
	Bandwidth int64
	// Latency is the fixed per-transfer overhead.
	Latency time.Duration
	// Priority feeds prioritized policies.
	Priority int
	// OfflineFrom/OfflineUntil bound an outage window during which the
	// subscriber receives nothing; files arriving inside it are queued
	// and submitted at reconnect according to the backfill mode.
	OfflineFrom  time.Time
	OfflineUntil time.Time
}

func (s Subscriber) offlineAt(t time.Time) bool {
	return !s.OfflineFrom.IsZero() && !t.Before(s.OfflineFrom) && t.Before(s.OfflineUntil)
}

// serviceTime is the transfer duration for one file.
func (s Subscriber) serviceTime(size int64) time.Duration {
	d := s.Latency
	if s.Bandwidth > 0 {
		d += time.Duration(size * int64(time.Second) / s.Bandwidth)
	}
	return d
}

// Arrival is one staged file entering the delivery queues.
type Arrival struct {
	FileID uint64
	Feed   string
	Size   int64
	At     time.Time
	// Deadline, when non-zero, overrides Config.Deadline for this
	// file (mixed alert/bulk workloads).
	Deadline time.Duration
}

// Stats aggregates delivery quality for one subscriber.
type Stats struct {
	Delivered     int
	Backfilled    int
	TotalTardy    time.Duration
	MaxTardy      time.Duration
	tardySamples  []time.Duration
	LastDelivered time.Time
}

// MeanTardiness is the average lateness across deliveries.
func (s *Stats) MeanTardiness() time.Duration {
	if s.Delivered == 0 {
		return 0
	}
	return s.TotalTardy / time.Duration(s.Delivered)
}

// P99Tardiness is the 99th percentile lateness.
func (s *Stats) P99Tardiness() time.Duration {
	if len(s.tardySamples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.tardySamples))
	copy(sorted, s.tardySamples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Result is the outcome of one simulation run.
type Result struct {
	// PerSub holds per-subscriber stats.
	PerSub map[string]*Stats
	// PerFeed holds per-feed stats aggregated across subscribers.
	PerFeed map[string]*Stats
	// Makespan is when the last delivery completed.
	Makespan time.Time
}

// RealtimeStats aggregates across the named subscribers.
func (r Result) Aggregate(names ...string) Stats {
	var agg Stats
	for _, n := range names {
		s, ok := r.PerSub[n]
		if !ok {
			continue
		}
		agg.Delivered += s.Delivered
		agg.Backfilled += s.Backfilled
		agg.TotalTardy += s.TotalTardy
		if s.MaxTardy > agg.MaxTardy {
			agg.MaxTardy = s.MaxTardy
		}
		agg.tardySamples = append(agg.tardySamples, s.tardySamples...)
	}
	return agg
}

// Config configures a simulation run.
type Config struct {
	// Scheduler is the scheduler layout under test.
	Scheduler scheduler.Config
	// Subscribers receive every arrival (single-feed model; use Feeds
	// filters below for multi-feed runs).
	Subscribers []Subscriber
	// Interest maps subscriber name → feeds it wants (nil = all).
	Interest map[string][]string
	// Deadline is the per-file delivery target.
	Deadline time.Duration
	// Start anchors virtual time.
	Start time.Time
}

// event kinds
const (
	evArrival = iota
	evComplete
	evReconnect
)

type event struct {
	at   time.Time
	kind int
	seq  int64
	// arrival payload
	arr Arrival
	// completion payload
	part   int
	worker int
	jobs   []*scheduler.Job
	sub    string // reconnect payload
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run executes the simulation to completion.
func Run(cfg Config, arrivals []Arrival) (Result, error) {
	if cfg.Deadline == 0 {
		cfg.Deadline = time.Minute
	}
	sched, err := scheduler.New(cfg.Scheduler)
	if err != nil {
		return Result{}, err
	}
	defer sched.Close()

	subs := make(map[string]*Subscriber, len(cfg.Subscribers))
	res := Result{PerSub: make(map[string]*Stats), PerFeed: make(map[string]*Stats)}
	for i := range cfg.Subscribers {
		s := &cfg.Subscribers[i]
		subs[s.Name] = s
		res.PerSub[s.Name] = &Stats{}
		if err := sched.AssignSubscriber(s.Name, s.Partition); err != nil {
			return Result{}, err
		}
	}

	// Worker pools: free[partition][lane] counts idle workers.
	parts := sched.Partitions()
	type lanePool struct{ realtime, backfill int }
	free := make([]lanePool, len(parts))
	for i, pc := range parts {
		free[i] = lanePool{realtime: pc.Workers - pc.BackfillWorkers, backfill: pc.BackfillWorkers}
	}

	var events eventHeap
	var seq int64
	push := func(e *event) {
		e.seq = seq
		seq++
		heap.Push(&events, e)
	}
	for _, a := range arrivals {
		push(&event{at: a.At, kind: evArrival, arr: a})
	}
	// Schedule reconnect events for offline windows.
	heldBackfill := make(map[string][]Arrival)
	for _, s := range cfg.Subscribers {
		if !s.OfflineFrom.IsZero() {
			push(&event{at: s.OfflineUntil, kind: evReconnect, sub: s.Name})
		}
	}

	interested := func(sub string, feed string) bool {
		if cfg.Interest == nil {
			return true
		}
		feeds, ok := cfg.Interest[sub]
		if !ok {
			return true
		}
		for _, f := range feeds {
			if f == feed {
				return true
			}
		}
		return false
	}

	submit := func(now time.Time, sub *Subscriber, a Arrival, backfill bool) {
		target := cfg.Deadline
		if a.Deadline > 0 {
			target = a.Deadline
		}
		deadline := a.At.Add(target)
		if backfill {
			deadline = now.Add(target)
		}
		sched.Submit(&scheduler.Job{
			FileID:     a.FileID,
			Feed:       a.Feed,
			Subscriber: sub.Name,
			Size:       a.Size,
			Release:    now,
			Deadline:   deadline,
			Priority:   sub.Priority,
			Backfill:   backfill,
		})
	}

	// dispatch claims work for idle workers at virtual time now.
	dispatch := func(now time.Time) {
		for pi := range parts {
			for free[pi].realtime > 0 {
				jobs := sched.TryNext(pi, scheduler.LaneRealtime)
				if jobs == nil {
					break
				}
				free[pi].realtime--
				scheduleCompletion(push, subs, now, pi, scheduler.LaneRealtime, jobs)
			}
			for free[pi].backfill > 0 {
				jobs := sched.TryNext(pi, scheduler.LaneBackfill)
				if jobs == nil {
					break
				}
				free[pi].backfill--
				scheduleCompletion(push, subs, now, pi, scheduler.LaneBackfill, jobs)
			}
		}
	}

	inOrderMode := cfg.Scheduler.Backfill == scheduler.BackfillInOrder
	for events.Len() > 0 {
		e := heap.Pop(&events).(*event)
		now := e.at
		switch e.kind {
		case evArrival:
			for _, sub := range cfg.Subscribers {
				s := subs[sub.Name]
				if !interested(s.Name, e.arr.Feed) {
					continue
				}
				if s.offlineAt(now) {
					heldBackfill[s.Name] = append(heldBackfill[s.Name], e.arr)
					continue
				}
				submit(now, s, e.arr, false)
			}
		case evReconnect:
			s := subs[e.sub]
			held := heldBackfill[e.sub]
			heldBackfill[e.sub] = nil
			for _, a := range held {
				// In-order mode keeps the original deadlines so EDF
				// drains history first; concurrent mode routes through
				// the backfill queue.
				if inOrderMode {
					submit(now, s, a, false)
				} else {
					submit(now, s, a, true)
				}
				res.PerSub[e.sub].Backfilled++
			}
		case evComplete:
			for _, j := range e.jobs {
				if sb, ok := subs[j.Subscriber]; ok {
					sched.Observe(j.Subscriber, sb.serviceTime(j.Size))
				}
				tardy := scheduler.Tardiness(j, now)
				fs := res.PerFeed[j.Feed]
				if fs == nil {
					fs = &Stats{}
					res.PerFeed[j.Feed] = fs
				}
				for _, st := range []*Stats{res.PerSub[j.Subscriber], fs} {
					st.Delivered++
					st.TotalTardy += tardy
					st.tardySamples = append(st.tardySamples, tardy)
					if tardy > st.MaxTardy {
						st.MaxTardy = tardy
					}
					st.LastDelivered = now
				}
				sched.Done(j)
			}
			if e.worker == 1 { // lane encoded in worker field
				free[e.part].backfill++
			} else {
				free[e.part].realtime++
			}
			if now.After(res.Makespan) {
				res.Makespan = now
			}
		}
		dispatch(now)
	}
	// Sanity: everything claimable was delivered.
	for pi := range parts {
		if n := sched.QueueLen(pi, scheduler.LaneRealtime) + sched.QueueLen(pi, scheduler.LaneBackfill); n > 0 {
			return res, fmt.Errorf("sim: %d jobs stranded in partition %d", n, pi)
		}
	}
	return res, nil
}

// scheduleCompletion books the group's finish event: the worker streams
// the file to each claimed subscriber concurrently, so the worker is
// busy for the slowest member's service time, and each job completes
// at that moment (conservative: one completion event for the group).
func scheduleCompletion(push func(*event), subs map[string]*Subscriber, now time.Time, part int, lane scheduler.Lane, jobs []*scheduler.Job) {
	var maxSvc time.Duration
	for _, j := range jobs {
		if s, ok := subs[j.Subscriber]; ok {
			if d := s.serviceTime(j.Size); d > maxSvc {
				maxSvc = d
			}
		}
	}
	workerTag := 0
	if lane == scheduler.LaneBackfill {
		workerTag = 1
	}
	push(&event{at: now.Add(maxSvc), kind: evComplete, part: part, worker: workerTag, jobs: jobs})
}
