// Package landing manages Bistro's landing zones (SIGMOD'11 §4.1):
// the directories where data providers deposit raw files. Cooperating
// sources announce each deposit through the notification protocol, so
// ingest is immediate; non-cooperating sources just drop files, so a
// fallback scanner polls the landing directory. Because ingest moves
// files out of landing immediately, the directory stays small and the
// fallback scan stays cheap — this is how the paper achieves
// sub-minute propagation from over a hundred non-cooperating sources.
package landing

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"bistro/internal/clock"
	"bistro/internal/diskfault"
)

// walkDir is filepath.WalkDir behind a seam so tests can inject walk
// errors (wrapped not-exist shapes in particular).
var walkDir = filepath.WalkDir

// Ingest consumes one deposited file. It receives the path relative to
// the landing directory and must move or remove the file (the manager
// does not touch it afterwards).
type Ingest func(relPath string) error

// Manager owns one landing directory.
type Manager struct {
	dir    string
	ingest Ingest
	clk    clock.Clock
	// ScanInterval is the fallback poll cadence for non-cooperating
	// sources (0 disables the scanner).
	scanInterval time.Duration
	// FS is the filesystem seam for deposits; defaults to the real
	// filesystem. Deposits are not fsynced — a file is the provider's
	// responsibility until ingest acknowledges it.
	FS diskfault.FS

	mu      sync.Mutex
	stopCh  chan struct{}
	stopped bool
	wg      sync.WaitGroup
	scans   int64
	scanned int64
}

// New creates a Manager over dir, creating it if needed.
func New(dir string, ingest Ingest, clk clock.Clock, scanInterval time.Duration) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("landing: mkdir: %w", err)
	}
	return &Manager{
		dir:          dir,
		ingest:       ingest,
		clk:          clk,
		scanInterval: scanInterval,
		FS:           diskfault.OS(),
		stopCh:       make(chan struct{}),
	}, nil
}

// Dir returns the landing directory path.
func (m *Manager) Dir() string { return m.dir }

// Deposit writes an uploaded file into the landing directory and
// ingests it immediately (remote sources without a shared filesystem).
func (m *Manager) Deposit(name string, data []byte) error {
	rel := filepath.FromSlash(name)
	if err := validRel(rel); err != nil {
		return err
	}
	dst := filepath.Join(m.dir, rel)
	if err := m.FS.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("landing: mkdir: %w", err)
	}
	if err := diskfault.WriteFile(m.FS, dst, data, 0o644); err != nil {
		return fmt.Errorf("landing: write: %w", err)
	}
	return m.ingest(rel)
}

// FileReady ingests a file a cooperating source already deposited
// (shared-filesystem sources using the notification protocol).
func (m *Manager) FileReady(relPath string) error {
	rel := filepath.FromSlash(relPath)
	if err := validRel(rel); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(m.dir, rel)); err != nil {
		return fmt.Errorf("landing: announced file missing: %w", err)
	}
	return m.ingest(rel)
}

// validRel rejects path escapes.
func validRel(rel string) error {
	if rel == "" || filepath.IsAbs(rel) {
		return fmt.Errorf("landing: invalid path %q", rel)
	}
	clean := filepath.Clean(rel)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return fmt.Errorf("landing: path escapes landing dir: %q", rel)
	}
	return nil
}

// ScanOnce walks the landing directory and ingests every regular file
// found — the fallback for sources that never notify. Returns how many
// files were ingested. Ingest errors are collected but do not stop the
// scan.
func (m *Manager) ScanOnce() (int, error) {
	var ingested int
	var firstErr error
	err := walkDir(m.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// Entries can vanish mid-scan (another ingest moved them);
			// the error may arrive wrapped, so match by identity.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".") {
			return nil // in-progress deposits by convention
		}
		rel, rerr := filepath.Rel(m.dir, path)
		if rerr != nil {
			return rerr
		}
		if ierr := m.ingest(rel); ierr != nil {
			if firstErr == nil {
				firstErr = ierr
			}
			return nil
		}
		ingested++
		return nil
	})
	m.mu.Lock()
	m.scans++
	m.scanned += int64(ingested)
	m.mu.Unlock()
	if err != nil {
		return ingested, fmt.Errorf("landing: scan: %w", err)
	}
	return ingested, firstErr
}

// Start launches the fallback scanner loop (no-op when the interval is
// zero).
func (m *Manager) Start() {
	if m.scanInterval <= 0 {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			t := m.clk.NewTimer(m.scanInterval)
			select {
			case <-m.stopCh:
				t.Stop()
				return
			case <-t.C():
			}
			m.ScanOnce()
		}
	}()
}

// Stop terminates the scanner loop.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stopCh)
	m.wg.Wait()
}

// ScanStats reports (scans performed, files ingested by scans).
func (m *Manager) ScanStats() (int64, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scans, m.scanned
}
