package landing

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bistro/internal/clock"
)

var t0 = time.Date(2011, 6, 12, 10, 0, 0, 0, time.UTC)

// movingIngest emulates the server: it records the path and removes
// the file (move to staging).
type movingIngest struct {
	dir  string
	mu   sync.Mutex
	seen []string
	fail bool
}

func (m *movingIngest) ingest(rel string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail {
		return fmt.Errorf("ingest failure")
	}
	m.seen = append(m.seen, filepath.ToSlash(rel))
	return os.Remove(filepath.Join(m.dir, rel))
}

func (m *movingIngest) got() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.seen))
	copy(out, m.seen)
	return out
}

func newManager(t *testing.T, interval time.Duration) (*Manager, *movingIngest, string) {
	t.Helper()
	dir := t.TempDir()
	ing := &movingIngest{dir: dir}
	m, err := New(dir, ing.ingest, clock.NewSimulated(t0), interval)
	if err != nil {
		t.Fatal(err)
	}
	return m, ing, dir
}

func TestDeposit(t *testing.T) {
	m, ing, dir := newManager(t, 0)
	if err := m.Deposit("BPS_poller1.csv", []byte("a,b\n")); err != nil {
		t.Fatal(err)
	}
	if got := ing.got(); len(got) != 1 || got[0] != "BPS_poller1.csv" {
		t.Fatalf("ingested = %v", got)
	}
	// The ingest moved the file out; landing stays empty.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("landing not empty: %v", entries)
	}
}

func TestDepositNested(t *testing.T) {
	m, ing, _ := newManager(t, 0)
	if err := m.Deposit("2010/09/25/f.csv", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := ing.got(); len(got) != 1 || got[0] != "2010/09/25/f.csv" {
		t.Fatalf("ingested = %v", got)
	}
}

func TestPathEscapeRejected(t *testing.T) {
	m, _, _ := newManager(t, 0)
	for _, p := range []string{"../evil", "/abs/path", "", "a/../../evil"} {
		if err := m.Deposit(p, []byte("x")); err == nil {
			t.Errorf("Deposit(%q) accepted", p)
		}
		if err := m.FileReady(p); err == nil {
			t.Errorf("FileReady(%q) accepted", p)
		}
	}
}

func TestFileReady(t *testing.T) {
	m, ing, dir := newManager(t, 0)
	// Source deposits directly (shared fs), then notifies.
	if err := os.WriteFile(filepath.Join(dir, "f.csv"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.FileReady("f.csv"); err != nil {
		t.Fatal(err)
	}
	if got := ing.got(); len(got) != 1 {
		t.Fatalf("ingested = %v", got)
	}
	// Announcing a missing file errors.
	if err := m.FileReady("nope.csv"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestScanOnce(t *testing.T) {
	m, ing, dir := newManager(t, 0)
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("1"), 0o644)
	os.MkdirAll(filepath.Join(dir, "sub"), 0o755)
	os.WriteFile(filepath.Join(dir, "sub", "b.csv"), []byte("2"), 0o644)
	os.WriteFile(filepath.Join(dir, ".partial"), []byte("ignore"), 0o644)

	n, err := m.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scanned = %d, want 2", n)
	}
	got := ing.got()
	if len(got) != 2 {
		t.Fatalf("ingested = %v", got)
	}
	// Dotfile untouched.
	if _, err := os.Stat(filepath.Join(dir, ".partial")); err != nil {
		t.Fatal("dotfile removed")
	}
	scans, files := m.ScanStats()
	if scans != 1 || files != 2 {
		t.Fatalf("stats = %d,%d", scans, files)
	}
}

func TestScanOnceReportsIngestErrors(t *testing.T) {
	m, ing, dir := newManager(t, 0)
	ing.fail = true
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("1"), 0o644)
	n, err := m.ScanOnce()
	if n != 0 || err == nil {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestScannerLoop(t *testing.T) {
	dir := t.TempDir()
	ing := &movingIngest{dir: dir}
	clk := clock.NewSimulated(t0)
	m, err := New(dir, ing.ingest, clk, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()

	os.WriteFile(filepath.Join(dir, "late.csv"), []byte("x"), 0o644)
	// Keep advancing: the scanner arms its timer asynchronously, so a
	// single advance can race timer creation.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		clk.Advance(time.Minute)
		if len(ing.got()) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := ing.got(); len(got) != 1 || got[0] != "late.csv" {
		t.Fatalf("ingested = %v", got)
	}
	m.Stop()
	m.Stop() // idempotent
}

func TestStartWithoutIntervalIsNoop(t *testing.T) {
	m, _, _ := newManager(t, 0)
	m.Start()
	m.Stop()
}
