package landing

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// ScanOnce must treat a WRAPPED fs.ErrNotExist from the walk as a
// vanished entry, not a scan failure — os.IsNotExist does not see
// through wrapping; errors.Is must.
func TestScanOnceToleratesWrappedNotExist(t *testing.T) {
	prev := walkDir
	walkDir = func(root string, fn fs.WalkDirFunc) error {
		if err := fn(filepath.Join(root, "ghost"), nil,
			fmt.Errorf("walk %s: entry vanished: %w", root, fs.ErrNotExist)); err != nil {
			return err
		}
		return filepath.WalkDir(root, fn)
	}
	t.Cleanup(func() { walkDir = prev })

	m, ing, dir := newManager(t, -1)
	if err := os.WriteFile(filepath.Join(dir, "a.csv"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := m.ScanOnce()
	if err != nil {
		t.Fatalf("scan aborted on a wrapped not-exist: %v", err)
	}
	if n != 1 || len(ing.got()) != 1 {
		t.Fatalf("ingested %d files (%v), want 1", n, ing.got())
	}
}
