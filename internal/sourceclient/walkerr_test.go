package sourceclient

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// WatchDir must treat a WRAPPED fs.ErrNotExist from the walk as a
// vanished entry, not a fatal scan error — os.IsNotExist does not see
// through wrapping; errors.Is must.
func TestWatchDirToleratesWrappedNotExist(t *testing.T) {
	prev := walkDir
	walkDir = func(root string, fn fs.WalkDirFunc) error {
		if err := fn(filepath.Join(root, "ghost"), nil,
			fmt.Errorf("walk %s: entry vanished: %w", root, fs.ErrNotExist)); err != nil {
			return err
		}
		return filepath.WalkDir(root, fn)
	}
	t.Cleanup(func() { walkDir = prev })

	srv := newFakeServer(t)
	c, err := Dial(srv.ln.Addr().String(), "agent", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("1"), 0o644)
	stop := make(chan struct{})
	var mu sync.Mutex
	uploaded := map[string]bool{}
	done := make(chan error, 1)
	go func() {
		done <- c.WatchDir(dir, WatchOptions{
			Interval: 5 * time.Millisecond,
			Stop:     stop,
			OnUpload: func(name string, err error) {
				mu.Lock()
				uploaded[name] = true
				mu.Unlock()
			},
		})
	}()
	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return uploaded["a.csv"]
	})
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("watch aborted on a wrapped not-exist: %v", err)
	}
}
