// Package sourceclient is the lightweight client library feed
// producers embed to talk to a Bistro server (SIGMOD'11 §4.1): deposit
// or announce files and mark end-of-batch punctuation. The paper
// stresses that this client is deliberately minimal so incorporating
// it into existing source software is a small change.
package sourceclient

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bistro/internal/backoff"
	"bistro/internal/clock"
	"bistro/internal/protocol"
)

// walkDir is filepath.WalkDir behind a seam so tests can inject walk
// errors (wrapped not-exist shapes in particular).
var walkDir = filepath.WalkDir

// Client is a connection from a data source to a Bistro server.
type Client struct {
	conn *protocol.Conn
	name string
}

// Dial connects and identifies the source.
func Dial(addr, name string, timeout time.Duration) (*Client, error) {
	conn, err := protocol.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, name: name}
	if err := conn.Call(protocol.Hello{Role: "source", Name: name}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("sourceclient: hello: %w", err)
	}
	return c, nil
}

// DialRetry dials with an exponential-backoff retry schedule: sources
// started before (or surviving a restart of) the Bistro server keep
// trying instead of failing the producer's startup. pol.MaxRetries
// bounds the attempts (default 5 when unset); a nil clk uses the wall
// clock. Permanent errors abort immediately.
func DialRetry(addr, name string, timeout time.Duration, pol backoff.Policy, clk clock.Clock) (*Client, error) {
	if clk == nil {
		clk = clock.NewReal()
	}
	pol = pol.WithDefaults()
	retries := pol.MaxRetries
	if retries <= 0 {
		retries = 5
	}
	bo := backoff.New(pol, backoff.Seed(name+"@"+addr))
	var lastErr error
	for attempt := 1; ; attempt++ {
		c, err := Dial(addr, name, timeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if attempt >= retries || backoff.Classify(err) == backoff.ClassPermanent {
			break
		}
		clk.Sleep(bo.Next())
	}
	return nil, fmt.Errorf("sourceclient: dial %s gave up after %d attempts: %w", addr, retries, lastErr)
}

// Upload ships file content to the server's landing zone (sources
// without a shared filesystem).
func (c *Client) Upload(name string, data []byte) error {
	return c.conn.Call(protocol.Upload{
		Name: name,
		Data: data,
		CRC:  crc32.ChecksumIEEE(data),
	})
}

// FileReady announces a file the source already deposited into the
// landing directory via a shared filesystem.
func (c *Client) FileReady(relPath string) error {
	return c.conn.Call(protocol.FileReady{Path: relPath})
}

// EndOfBatch marks source punctuation for a feed ("" = all feeds this
// source contributes to), enabling per-batch subscriber triggers
// without count/timeout guessing.
func (c *Client) EndOfBatch(feed string) error {
	return c.conn.Call(protocol.EndOfBatch{Feed: feed})
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// WatchOptions configure WatchDir.
type WatchOptions struct {
	// Interval is the poll cadence. Default 2s.
	Interval time.Duration
	// Clock defaults to the wall clock.
	Clock clock.Clock
	// Stop terminates the watch when closed.
	Stop <-chan struct{}
	// OnUpload is called after each attempted upload (may be nil).
	OnUpload func(name string, err error)
	// Remove deletes local files after successful upload.
	Remove bool
	// Backoff stretches the poll interval after a scan with upload
	// failures (zero value = defaults), so a down server is not
	// hammered at the poll cadence. A clean scan resets the stretch.
	Backoff backoff.Policy
}

// WatchDir polls dir and uploads every new regular file to the server
// — the agent mode for sources that cannot embed the client library
// and have no shared filesystem with the Bistro server. Files are
// considered new when their (size, modtime) pair has not been uploaded
// before; dotfiles are skipped as in-progress deposits. Returns when
// Stop closes.
func (c *Client) WatchDir(dir string, opts WatchOptions) error {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = clock.NewReal()
	}
	type stamp struct {
		size int64
		mod  time.Time
	}
	seen := make(map[string]stamp)
	bo := backoff.New(opts.Backoff.WithDefaults(), backoff.Seed(c.name+":"+dir))
	scan := func() (failed bool, _ error) {
		err := walkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				// Vanished mid-scan; the error may arrive wrapped.
				if errors.Is(err, fs.ErrNotExist) {
					return nil
				}
				return err
			}
			if d.IsDir() || strings.HasPrefix(d.Name(), ".") {
				return nil
			}
			info, ierr := d.Info()
			if ierr != nil {
				return nil // vanished mid-scan
			}
			rel, rerr := filepath.Rel(dir, path)
			if rerr != nil {
				return rerr
			}
			key := filepath.ToSlash(rel)
			st := stamp{size: info.Size(), mod: info.ModTime()}
			if prev, ok := seen[key]; ok && prev == st {
				return nil
			}
			data, rerr2 := os.ReadFile(path)
			if rerr2 != nil {
				return nil
			}
			uerr := c.Upload(key, data)
			if uerr == nil {
				seen[key] = st
				if opts.Remove {
					os.Remove(path)
					delete(seen, key)
				}
			} else {
				failed = true
			}
			if opts.OnUpload != nil {
				opts.OnUpload(key, uerr)
			}
			return nil
		})
		return failed, err
	}
	for {
		failed, err := scan()
		if err != nil {
			return fmt.Errorf("sourceclient: watch scan: %w", err)
		}
		wait := opts.Interval
		if failed {
			if d := bo.Next(); d > wait {
				wait = d
			}
		} else {
			bo.Reset()
		}
		t := opts.Clock.NewTimer(wait)
		select {
		case <-opts.Stop:
			t.Stop()
			return nil
		case <-t.C():
		}
	}
}
