package sourceclient

import (
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bistro/internal/backoff"
	"bistro/internal/clock"
	"bistro/internal/protocol"
)

// fakeServer accepts one connection and records the messages, acking
// each.
type fakeServer struct {
	ln   net.Listener
	mu   sync.Mutex
	msgs []any
	fail bool
	wg   sync.WaitGroup
}

func newFakeServer(t *testing.T) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln}
	fs.wg.Add(1)
	go func() {
		defer fs.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fs.wg.Add(1)
			go func() {
				defer fs.wg.Done()
				conn := protocol.NewConn(c)
				defer conn.Close()
				for {
					msg, err := conn.Recv()
					if err != nil {
						return
					}
					fs.mu.Lock()
					fs.msgs = append(fs.msgs, msg)
					failing := fs.fail
					fs.mu.Unlock()
					ack := protocol.Ack{OK: true}
					if failing {
						ack = protocol.Ack{OK: false, Error: "landing full"}
					}
					if err := conn.Send(ack); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		fs.wg.Wait()
	})
	return fs
}

func (fs *fakeServer) messages() []any {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]any, len(fs.msgs))
	copy(out, fs.msgs)
	return out
}

func TestDialSendsHello(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.ln.Addr().String(), "poller7", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msgs := fs.messages()
	if len(msgs) != 1 {
		t.Fatalf("messages = %v", msgs)
	}
	h, ok := msgs[0].(protocol.Hello)
	if !ok || h.Role != "source" || h.Name != "poller7" {
		t.Fatalf("hello = %#v", msgs[0])
	}
}

func TestUploadCarriesChecksum(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.ln.Addr().String(), "p", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := []byte("a,b\n1,2\n")
	if err := c.Upload("f.csv", data); err != nil {
		t.Fatal(err)
	}
	msgs := fs.messages()
	up, ok := msgs[len(msgs)-1].(protocol.Upload)
	if !ok {
		t.Fatalf("last = %#v", msgs[len(msgs)-1])
	}
	if up.Name != "f.csv" || up.CRC != crc32.ChecksumIEEE(data) {
		t.Fatalf("upload = %+v", up)
	}
}

func TestFileReadyAndEndOfBatch(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.ln.Addr().String(), "p", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.FileReady("sub/dir/f.csv"); err != nil {
		t.Fatal(err)
	}
	if err := c.EndOfBatch("SNMP/BPS"); err != nil {
		t.Fatal(err)
	}
	msgs := fs.messages()
	if fr, ok := msgs[1].(protocol.FileReady); !ok || fr.Path != "sub/dir/f.csv" {
		t.Fatalf("file ready = %#v", msgs[1])
	}
	if eob, ok := msgs[2].(protocol.EndOfBatch); !ok || eob.Feed != "SNMP/BPS" {
		t.Fatalf("eob = %#v", msgs[2])
	}
}

func TestServerErrorSurfaces(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.ln.Addr().String(), "p", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs.mu.Lock()
	fs.fail = true
	fs.mu.Unlock()
	err = c.Upload("f", []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "landing full") {
		t.Fatalf("err = %v", err)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "p", 100*time.Millisecond); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestWatchDirUploadsNewFiles(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.ln.Addr().String(), "agent", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "2010", "09"), 0o755)
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("1"), 0o644)
	os.WriteFile(filepath.Join(dir, "2010", "09", "b.csv"), []byte("2"), 0o644)
	os.WriteFile(filepath.Join(dir, ".partial"), []byte("skip"), 0o644)

	stop := make(chan struct{})
	var mu sync.Mutex
	uploaded := map[string]bool{}
	done := make(chan error, 1)
	go func() {
		done <- c.WatchDir(dir, WatchOptions{
			Interval: 5 * time.Millisecond,
			Stop:     stop,
			OnUpload: func(name string, err error) {
				if err != nil {
					t.Errorf("upload %s: %v", name, err)
				}
				mu.Lock()
				uploaded[name] = true
				mu.Unlock()
			},
		})
	}()

	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return uploaded["a.csv"] && uploaded["2010/09/b.csv"]
	})
	// A file appearing later is picked up too.
	os.WriteFile(filepath.Join(dir, "late.csv"), []byte("3"), 0o644)
	waitCond(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return uploaded["late.csv"]
	})
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Exactly three uploads (no re-uploads of unchanged files, no
	// dotfile).
	count := 0
	for _, m := range fs.messages() {
		if _, ok := m.(protocol.Upload); ok {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("uploads = %d, want 3", count)
	}
}

func TestWatchDirRemove(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.ln.Addr().String(), "agent", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("1"), 0o644)
	stop := make(chan struct{})
	go func() {
		waitCond(t, func() bool {
			_, err := os.Stat(filepath.Join(dir, "a.csv"))
			return os.IsNotExist(err)
		})
		close(stop)
	}()
	if err := c.WatchDir(dir, WatchOptions{Interval: 5 * time.Millisecond, Stop: stop, Remove: true}); err != nil {
		t.Fatal(err)
	}
}

func TestDialRetryConnects(t *testing.T) {
	fs := newFakeServer(t)
	c, err := DialRetry(fs.ln.Addr().String(), "p", time.Second, backoff.Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestDialRetryGivesUpAfterMaxRetries(t *testing.T) {
	pol := backoff.Policy{Base: time.Millisecond, Max: time.Millisecond, NoJitter: true, MaxRetries: 3}
	_, err := DialRetry("127.0.0.1:1", "p", 50*time.Millisecond, pol, nil)
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestWatchDirBacksOffOnUploadFailure(t *testing.T) {
	fs := newFakeServer(t)
	c, err := Dial(fs.ln.Addr().String(), "agent", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs.mu.Lock()
	fs.fail = true
	fs.mu.Unlock()

	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("1"), 0o644)

	clk := clock.NewSimulated(time.Unix(0, 0))
	var mu sync.Mutex
	attempts := 0
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- c.WatchDir(dir, WatchOptions{
			Interval: time.Second,
			Clock:    clk,
			Stop:     stop,
			OnUpload: func(name string, err error) {
				mu.Lock()
				attempts++
				mu.Unlock()
			},
			Backoff: backoff.Policy{Base: 4 * time.Second, Max: 4 * time.Second, NoJitter: true},
		})
	}()
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return attempts
	}
	waitCond(t, func() bool { return count() == 1 })
	// The failed upload stretches the wait to the 4s backoff delay:
	// advancing by the plain 1s poll interval must not rescan.
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		time.Sleep(5 * time.Millisecond)
	}
	if got := count(); got != 1 {
		t.Fatalf("attempts = %d during backoff window, want 1", got)
	}
	// Heal the server; crossing the backoff deadline retries and
	// succeeds, resetting the stretch back to the poll interval.
	fs.mu.Lock()
	fs.fail = false
	fs.mu.Unlock()
	clk.Advance(time.Second + time.Millisecond)
	waitCond(t, func() bool { return count() == 2 })
	os.WriteFile(filepath.Join(dir, "b.csv"), []byte("2"), 0o644)
	clk.Advance(time.Second + time.Millisecond)
	waitCond(t, func() bool { return count() == 3 })
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
