// Package workload generates synthetic data feed traffic standing in
// for the AT&T network measurement feeds the paper was built on: fleets
// of SNMP-style pollers emitting periodic per-statistic files with
// realistic naming conventions, out-of-order and late arrivals, and
// feed-evolution events (renamed conventions, new pollers, changed
// formats). The analyzer, classifier, scheduler, and end-to-end
// experiments all consume this generator, so every experiment is
// reproducible from a seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// FeedSpec describes one synthetic feed.
type FeedSpec struct {
	// Name is the feed's statistic name, embedded first in filenames
	// (e.g. "MEMORY", "CPU", "BPS").
	Name string
	// Sources is the number of pollers contributing files per interval.
	Sources int
	// Period is the measurement interval.
	Period time.Duration
	// NamePattern selects the filename convention; see Conventions.
	Convention Convention
	// SizeBytes is the nominal file payload size.
	SizeBytes int
	// MaxDelay is the worst-case lag between an interval's timestamp
	// and the file's arrival (uniform in [0, MaxDelay]).
	MaxDelay time.Duration
	// OutOfOrderProb is the chance a file is held back one full period
	// (late, out-of-order arrival — §2.2.1's motivation).
	OutOfOrderProb float64
}

// Convention is a filename naming convention.
type Convention int

// Conventions modelled on the paper's examples.
const (
	// ConvUnderscoreTS: NAME_POLLERn_YYYYMMDDHH_MM.csv.gz
	ConvUnderscoreTS Convention = iota
	// ConvCompactTS: NAME_POLLn_YYYYMMDDHHMM.txt
	ConvCompactTS
	// ConvDatedDirs: YYYY/MM/DD/NAME_pollern_HHMM.csv
	ConvDatedDirs
	// ConvDaily: NAME_pollern_YYYYMMDD.gz (one file per source per day)
	ConvDaily
	// ConvIPNames: NAME_10.0.n.1_YYYYMMDDHHMM.csv — sources identified
	// by management IP rather than a name (common for routers).
	ConvIPNames
)

// Pattern returns the Bistro pattern matching the convention for a
// given feed name (ground truth for discovery experiments).
func (c Convention) Pattern(feedName string) string {
	switch c {
	case ConvUnderscoreTS:
		return feedName + "_POLLER%i_%Y%m%d%H_%M.csv.gz"
	case ConvCompactTS:
		return feedName + "_POLL%i_%Y%m%d%H%M.txt"
	case ConvDatedDirs:
		return "%Y/%m/%d/" + feedName + "_poller%i_%H%M.csv"
	case ConvDaily:
		return feedName + "_poller%i_%Y%m%d.gz"
	case ConvIPNames:
		return feedName + "_%s_%Y%m%d%H%M.csv"
	default:
		return feedName + "_%i_%Y%m%d%H%M.dat"
	}
}

// filename renders one concrete name.
func (c Convention) filename(feedName string, source int, ts time.Time) string {
	switch c {
	case ConvUnderscoreTS:
		return fmt.Sprintf("%s_POLLER%d_%s_%s.csv.gz", feedName, source, ts.Format("2006010215"), ts.Format("04"))
	case ConvCompactTS:
		return fmt.Sprintf("%s_POLL%d_%s.txt", feedName, source, ts.Format("200601021504"))
	case ConvDatedDirs:
		return fmt.Sprintf("%s/%s_poller%d_%s.csv", ts.Format("2006/01/02"), feedName, source, ts.Format("1504"))
	case ConvDaily:
		return fmt.Sprintf("%s_poller%d_%s.gz", feedName, source, ts.Format("20060102"))
	case ConvIPNames:
		return fmt.Sprintf("%s_10.0.%d.1_%s.csv", feedName, source, ts.Format("200601021504"))
	default:
		return fmt.Sprintf("%s_%d_%s.dat", feedName, source, ts.Format("200601021504"))
	}
}

// File is one generated arrival.
type File struct {
	// Name is the landing-relative filename.
	Name string
	// Feed is the generating feed's name (ground truth).
	Feed string
	// Source is the generating poller id (ground truth).
	Source int
	// DataTime is the measurement interval start.
	DataTime time.Time
	// Arrive is when the file reaches the server.
	Arrive time.Time
	// Size is the payload size.
	Size int
}

// Generator produces a deterministic arrival stream from feed specs.
type Generator struct {
	specs []FeedSpec
	rng   *rand.Rand
}

// New creates a generator with a fixed seed.
func New(seed int64, specs ...FeedSpec) *Generator {
	return &Generator{specs: specs, rng: rand.New(rand.NewSource(seed))}
}

// Specs returns the generator's feed specifications.
func (g *Generator) Specs() []FeedSpec { return g.specs }

// Window generates every arrival with DataTime in [start, end), sorted
// by arrival time.
func (g *Generator) Window(start, end time.Time) []File {
	var out []File
	for _, spec := range g.specs {
		period := spec.Period
		if period <= 0 {
			period = 5 * time.Minute
		}
		for ts := start; ts.Before(end); ts = ts.Add(period) {
			for src := 1; src <= spec.Sources; src++ {
				delay := time.Duration(0)
				if spec.MaxDelay > 0 {
					delay = time.Duration(g.rng.Int63n(int64(spec.MaxDelay)))
				}
				if spec.OutOfOrderProb > 0 && g.rng.Float64() < spec.OutOfOrderProb {
					delay += period
				}
				size := spec.SizeBytes
				if size <= 0 {
					size = 1024
				}
				out = append(out, File{
					Name:     spec.Convention.filename(spec.Name, src, ts),
					Feed:     spec.Name,
					Source:   src,
					DataTime: ts,
					Arrive:   ts.Add(period).Add(delay), // emitted at interval close
					Size:     size,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Arrive.Equal(out[j].Arrive) {
			return out[i].Arrive.Before(out[j].Arrive)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Payload produces deterministic CSV-ish content of the file's size.
func Payload(f File) []byte {
	row := fmt.Sprintf("%s,%d,%d\n", f.DataTime.Format(time.RFC3339), f.Source, f.Size)
	out := make([]byte, 0, f.Size+len(row))
	for len(out) < f.Size {
		out = append(out, row...)
	}
	return out[:f.Size]
}

// Evolve returns a copy of a spec with an evolution event applied —
// the feed-change scenarios of §2.1.3 used by experiment E9.
type Evolution int

// Evolution events.
const (
	// EvolveCapitalize capitalizes the source token ("poller"→"Poller"
	// or "POLLER"→"Poller"), the paper's canonical false negative.
	EvolveCapitalize Evolution = iota
	// EvolveNewSources doubles the source fleet (new pollers appear).
	EvolveNewSources
	// EvolveNewConvention switches the filename convention entirely
	// (software update on the source side).
	EvolveNewConvention
	// EvolveGranularity changes the period (and hence the timestamp
	// granularity encoded in names).
	EvolveGranularity
)

// Apply produces the evolved spec plus a renaming function applied to
// generated names (identity when the event does not rename).
func (ev Evolution) Apply(spec FeedSpec) FeedSpec {
	out := spec
	switch ev {
	case EvolveNewSources:
		out.Sources *= 2
	case EvolveNewConvention:
		out.Convention = (spec.Convention + 1) % 4 // rotate the named conventions
	case EvolveGranularity:
		out.Period = spec.Period * 2
	}
	return out
}

// Rename applies the event's filename mutation (for events that rename
// without changing structure).
func (ev Evolution) Rename(name string) string {
	if ev != EvolveCapitalize {
		return name
	}
	return capitalizePoller(name)
}

func capitalizePoller(name string) string {
	replacements := []struct{ old, new string }{
		{"POLLER", "Poller"},
		{"POLL", "Poll"},
		{"poller", "Poller"},
	}
	for _, r := range replacements {
		if idx := indexOf(name, r.old); idx >= 0 {
			return name[:idx] + r.new + name[idx+len(r.old):]
		}
	}
	return name
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// SNMPFleet returns the paper's running example: a feed group of
// router statistics from a poller fleet.
func SNMPFleet(pollers int, period time.Duration) []FeedSpec {
	stats := []string{"BPS", "PPS", "CPU", "MEMORY", "LINKUTIL", "LINKLOSS"}
	specs := make([]FeedSpec, 0, len(stats))
	for i, name := range stats {
		specs = append(specs, FeedSpec{
			Name:       name,
			Sources:    pollers,
			Period:     period,
			Convention: Convention(i % 3),
			SizeBytes:  2048,
			MaxDelay:   period / 5,
		})
	}
	return specs
}
