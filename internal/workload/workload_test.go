package workload

import (
	"strings"
	"testing"
	"time"

	"bistro/internal/pattern"
)

var t0 = time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)

func TestWindowCountsAndOrder(t *testing.T) {
	g := New(1, FeedSpec{Name: "BPS", Sources: 3, Period: 5 * time.Minute, Convention: ConvUnderscoreTS})
	files := g.Window(t0, t0.Add(time.Hour))
	want := 12 * 3 // 12 intervals x 3 sources
	if len(files) != want {
		t.Fatalf("files = %d, want %d", len(files), want)
	}
	for i := 1; i < len(files); i++ {
		if files[i].Arrive.Before(files[i-1].Arrive) {
			t.Fatal("files not sorted by arrival")
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	mk := func() []File {
		g := New(42, FeedSpec{Name: "CPU", Sources: 2, Period: time.Minute, Convention: ConvCompactTS, MaxDelay: 30 * time.Second, OutOfOrderProb: 0.2})
		return g.Window(t0, t0.Add(30*time.Minute))
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratedNamesMatchGroundTruthPatterns(t *testing.T) {
	for conv := ConvUnderscoreTS; conv <= ConvDaily; conv++ {
		spec := FeedSpec{Name: "MEMORY", Sources: 2, Period: 5 * time.Minute, Convention: conv}
		g := New(7, spec)
		p := pattern.MustCompile(conv.Pattern("MEMORY"))
		for _, f := range g.Window(t0, t0.Add(30*time.Minute)) {
			if !p.Matches(f.Name) {
				t.Fatalf("convention %d: %q does not match its own pattern %q", conv, f.Name, p)
			}
		}
	}
}

func TestArrivalRespectsDelayBounds(t *testing.T) {
	spec := FeedSpec{Name: "X", Sources: 1, Period: 5 * time.Minute, MaxDelay: time.Minute, OutOfOrderProb: 0}
	g := New(3, spec)
	for _, f := range g.Window(t0, t0.Add(2*time.Hour)) {
		lag := f.Arrive.Sub(f.DataTime)
		if lag < spec.Period || lag > spec.Period+spec.MaxDelay {
			t.Fatalf("lag = %v outside [%v, %v]", lag, spec.Period, spec.Period+spec.MaxDelay)
		}
	}
}

func TestOutOfOrderInjection(t *testing.T) {
	spec := FeedSpec{Name: "X", Sources: 1, Period: 5 * time.Minute, OutOfOrderProb: 1}
	g := New(3, spec)
	for _, f := range g.Window(t0, t0.Add(time.Hour)) {
		if lag := f.Arrive.Sub(f.DataTime); lag < 2*spec.Period {
			t.Fatalf("expected full-period holdback, lag = %v", lag)
		}
	}
}

func TestPayloadSizeAndDeterminism(t *testing.T) {
	f := File{DataTime: t0, Source: 3, Size: 1000}
	p1, p2 := Payload(f), Payload(f)
	if len(p1) != 1000 {
		t.Fatalf("payload size = %d", len(p1))
	}
	if string(p1) != string(p2) {
		t.Fatal("payload not deterministic")
	}
}

func TestEvolutions(t *testing.T) {
	spec := FeedSpec{Name: "MEMORY", Sources: 2, Period: 5 * time.Minute, Convention: ConvUnderscoreTS}
	if got := EvolveNewSources.Apply(spec); got.Sources != 4 {
		t.Errorf("new sources = %d", got.Sources)
	}
	if got := EvolveNewConvention.Apply(spec); got.Convention == spec.Convention {
		t.Error("convention unchanged")
	}
	if got := EvolveGranularity.Apply(spec); got.Period != 10*time.Minute {
		t.Errorf("period = %v", got.Period)
	}
	name := "MEMORY_POLLER1_2010092504_51.csv.gz"
	renamed := EvolveCapitalize.Rename(name)
	if renamed != "MEMORY_Poller1_2010092504_51.csv.gz" {
		t.Errorf("renamed = %q", renamed)
	}
	// The renamed file must no longer match the ground-truth pattern —
	// that is the whole point of the false-negative experiment.
	p := pattern.MustCompile(ConvUnderscoreTS.Pattern("MEMORY"))
	if p.Matches(renamed) {
		t.Error("capitalized name still matches")
	}
	if EvolveNewSources.Rename(name) != name {
		t.Error("non-renaming evolution changed the name")
	}
}

func TestSNMPFleet(t *testing.T) {
	specs := SNMPFleet(5, 5*time.Minute)
	if len(specs) != 6 {
		t.Fatalf("specs = %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if s.Sources != 5 || s.Period != 5*time.Minute {
			t.Fatalf("spec = %+v", s)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"BPS", "PPS", "CPU", "MEMORY"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestDatedDirsConventionUsesDirectories(t *testing.T) {
	g := New(1, FeedSpec{Name: "PPS", Sources: 1, Period: time.Hour, Convention: ConvDatedDirs})
	files := g.Window(t0, t0.Add(2*time.Hour))
	for _, f := range files {
		if !strings.HasPrefix(f.Name, "2010/09/25/") {
			t.Fatalf("name = %q", f.Name)
		}
	}
}

func TestIPConvention(t *testing.T) {
	g := New(3, FeedSpec{Name: "FLOW", Sources: 3, Period: 5 * time.Minute, Convention: ConvIPNames})
	files := g.Window(t0, t0.Add(30*time.Minute))
	p := pattern.MustCompile(ConvIPNames.Pattern("FLOW"))
	for _, f := range files {
		if !p.Matches(f.Name) {
			t.Fatalf("%q does not match %q", f.Name, p)
		}
		if !strings.Contains(f.Name, "10.0.") {
			t.Fatalf("no IP in %q", f.Name)
		}
	}
}
