// Package analyzer implements the feed-quality half of Bistro's feed
// analyzer (SIGMOD'11 §5.2–§5.3): detecting likely false negatives
// (files that should have matched a feed but did not) and likely false
// positives (files matched into a feed they do not belong to).
//
// Following the paper, false-negative detection does NOT use raw string
// edit distance — evolved filenames can sit at enormous edit distances
// from their feed pattern while being "obviously" the same feed (the
// TRAP example in §5.2 has edit distance 51). Instead, unmatched files
// are first generalized into atomic-feed patterns by the discovery
// module, and similarity is computed structurally, between field
// sequences. Raw edit distance is still provided as the baseline that
// experiment E9 compares against.
package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"bistro/internal/discovery"
	"bistro/internal/pattern"
	"bistro/internal/tokenizer"
)

// FeedDef names an installed feed definition.
type FeedDef struct {
	Name    string
	Pattern *pattern.Pattern
}

// PatternFields converts a compiled pattern into the analyzer's field
// representation: literal segments are tokenized like filenames, and
// consecutive time conversions collapse into a single timestamp field,
// mirroring how the discovery module sees a concrete timestamp token.
func PatternFields(p *pattern.Pattern) []discovery.Field {
	var out []discovery.Field
	var timeRun []string
	flushTime := func() {
		if len(timeRun) == 0 {
			return
		}
		out = append(out, discovery.Field{
			Type:       discovery.FieldTimestamp,
			TimeLayout: strings.Join(timeRun, ""),
		})
		timeRun = nil
	}
	for _, seg := range p.Segments() {
		switch seg.Kind {
		case pattern.KLiteral:
			flushTime()
			for _, t := range tokenizer.Tokenize(seg.Lit) {
				f := discovery.Field{Type: discovery.FieldLiteral, Literal: t.Text}
				if t.Class == tokenizer.ClassSep {
					f.Type = discovery.FieldSeparator
				}
				out = append(out, f)
			}
		case pattern.KString, pattern.KWild:
			flushTime()
			out = append(out, discovery.Field{Type: discovery.FieldString})
		case pattern.KInt:
			flushTime()
			out = append(out, discovery.Field{Type: discovery.FieldInteger})
		default: // time conversions
			timeRun = append(timeRun, seg.Kind.String())
		}
	}
	flushTime()
	return out
}

// NameFields tokenizes a single concrete filename into fields, typing
// digit tokens that parse as timestamps.
func NameFields(name string) []discovery.Field {
	var out []discovery.Field
	for _, t := range tokenizer.Tokenize(name) {
		switch t.Class {
		case tokenizer.ClassSep:
			out = append(out, discovery.Field{Type: discovery.FieldSeparator, Literal: t.Text})
		case tokenizer.ClassIP:
			out = append(out, discovery.Field{Type: discovery.FieldIP})
		case tokenizer.ClassDigits:
			if _, layout, ok := tokenizer.DetectTimestamp(t.Text); ok {
				out = append(out, discovery.Field{Type: discovery.FieldTimestamp, TimeLayout: layout.Pattern})
			} else {
				out = append(out, discovery.Field{Type: discovery.FieldLiteral, Literal: t.Text})
			}
		case tokenizer.ClassAlpha:
			out = append(out, discovery.Field{Type: discovery.FieldLiteral, Literal: t.Text})
		}
	}
	return out
}

// substCost scores aligning field a (from the candidate) against field
// b (from the installed feed definition). 0 is a perfect match, 1 a
// complete mismatch.
func substCost(a, b discovery.Field) float64 {
	ta, tb := a.Type, b.Type
	// Separator alignment.
	if ta == discovery.FieldSeparator || tb == discovery.FieldSeparator {
		if ta != tb {
			return 1
		}
		if a.Literal == b.Literal {
			return 0
		}
		// Same separator character, different repetition ("_" vs "__")
		// is the classic benign evolution.
		if a.Literal != "" && b.Literal != "" && a.Literal[0] == b.Literal[0] {
			return 0.2
		}
		return 0.5
	}
	switch {
	case ta == discovery.FieldLiteral && tb == discovery.FieldLiteral:
		if a.Literal == b.Literal {
			return 0
		}
		if strings.EqualFold(a.Literal, b.Literal) {
			return 0.1 // the capitalized-Poller case from §5.2
		}
		if isDigits(a.Literal) && isDigits(b.Literal) {
			return 0.2 // two concrete numbers: same integer-ish slot
		}
		return 1
	case ta == discovery.FieldTimestamp && tb == discovery.FieldTimestamp:
		if a.TimeLayout == b.TimeLayout {
			return 0
		}
		return 0.25 // timestamp with changed granularity
	case ta == discovery.FieldCategorical && tb == discovery.FieldCategorical:
		return 0.1
	case ta == discovery.FieldInteger && tb == discovery.FieldInteger,
		ta == discovery.FieldString && tb == discovery.FieldString,
		ta == discovery.FieldIP && tb == discovery.FieldIP:
		return 0
	}
	// Cross-type compatibilities.
	pair := func(x, y discovery.FieldType) bool {
		return (ta == x && tb == y) || (ta == y && tb == x)
	}
	switch {
	case pair(discovery.FieldCategorical, discovery.FieldString),
		pair(discovery.FieldCategorical, discovery.FieldInteger),
		pair(discovery.FieldCategorical, discovery.FieldLiteral):
		return 0.25
	case pair(discovery.FieldLiteral, discovery.FieldString):
		return 0.4
	case pair(discovery.FieldLiteral, discovery.FieldInteger):
		if litIsDigits(a, b) {
			return 0.2
		}
		return 0.7
	case pair(discovery.FieldInteger, discovery.FieldString):
		return 0.5
	case pair(discovery.FieldTimestamp, discovery.FieldInteger):
		return 0.5
	case pair(discovery.FieldTimestamp, discovery.FieldString):
		return 0.6
	case pair(discovery.FieldIP, discovery.FieldString):
		return 0.3
	}
	return 1
}

func litIsDigits(a, b discovery.Field) bool {
	lit := a
	if b.Type == discovery.FieldLiteral {
		lit = b
	}
	return isDigits(lit.Literal)
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Similarity computes a structural similarity in [0,1] between a
// candidate field sequence and an installed feed's field sequence,
// using semi-global alignment: extra fields in the candidate (a feed
// that grew new name components) cost little, while feed fields left
// unmatched cost a lot. 1 means structurally identical.
func Similarity(candidate, feed []discovery.Field) float64 {
	const (
		insCost = 0.25 // candidate field not present in the feed pattern
		delCost = 1.0  // feed field missing from the candidate
	)
	n, m := len(candidate), len(feed)
	if m == 0 {
		return 0
	}
	// dp[i][j]: min cost aligning candidate[:i] against feed[:j].
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + delCost
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + insCost
		for j := 1; j <= m; j++ {
			c := prev[j-1] + substCost(candidate[i-1], feed[j-1])
			if v := prev[j] + insCost; v < c {
				c = v
			}
			if v := cur[j-1] + delCost; v < c {
				c = v
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	cost := prev[m]
	// Normalize by the feed length: a perfect embedding of the feed
	// structure inside a longer candidate still scores high.
	sim := 1 - cost/float64(m)
	if sim < 0 {
		return 0
	}
	return sim
}

// EditDistance is plain Levenshtein distance between two strings: the
// baseline similarity signal the paper shows to be inadequate (§5.2).
func EditDistance(a, b string) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			c := prev[j-1]
			if a[i-1] != b[j-1] {
				c++
			}
			if v := prev[j] + 1; v < c {
				c = v
			}
			if v := cur[j-1] + 1; v < c {
				c = v
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// EditSimilarity converts edit distance to a [0,1] similarity for
// baseline comparisons: 1 - dist/max(len).
func EditSimilarity(a, b string) float64 {
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(EditDistance(a, b))/float64(maxLen)
}

// FalseNegative links a discovered cluster of unmatched files to the
// installed feed it most plausibly belongs to.
type FalseNegative struct {
	// Suggested is the generalized definition of the unmatched files.
	Suggested discovery.AtomicFeed
	// Feed is the best-matching installed feed.
	Feed string
	// FeedPattern is that feed's current pattern source.
	FeedPattern string
	// Similarity is the structural similarity that triggered the report.
	Similarity float64
}

// Options tunes the detectors.
type Options struct {
	// MinSimilarity is the reporting threshold for false negatives.
	// Default 0.5.
	MinSimilarity float64
	// OutlierFraction marks a subfeed as an outlier when its support
	// is below this fraction of the feed total. Default 0.05.
	OutlierFraction float64
	// Discovery configures the embedded discovery pass.
	Discovery discovery.Options
}

func (o Options) withDefaults() Options {
	if o.MinSimilarity == 0 {
		o.MinSimilarity = 0.5
	}
	if o.OutlierFraction == 0 {
		o.OutlierFraction = 0.05
	}
	if o.Discovery == (discovery.Options{}) {
		o.Discovery = discovery.DefaultOptions()
	}
	return o
}

// DetectFalseNegatives generalizes the unmatched observations into
// atomic feeds and reports, for each, the most similar installed feed
// definition above the similarity threshold. One report per discovered
// pattern — this is the warning-volume reduction the paper highlights:
// a thousand unmatched files from one renamed feed produce one warning,
// not a thousand.
func DetectFalseNegatives(feeds []FeedDef, unmatched []discovery.Observation, opts Options) []FalseNegative {
	opts = opts.withDefaults()
	an := discovery.New(opts.Discovery)
	for _, o := range unmatched {
		an.Add(o)
	}
	fields := make([][]discovery.Field, len(feeds))
	for i, fd := range feeds {
		fields[i] = PatternFields(fd.Pattern)
	}
	var out []FalseNegative
	for _, af := range an.Feeds() {
		bestIdx, bestSim := -1, 0.0
		for i := range feeds {
			sim := Similarity(af.Fields, fields[i])
			if sim > bestSim {
				bestIdx, bestSim = i, sim
			}
		}
		if bestIdx >= 0 && bestSim >= opts.MinSimilarity {
			out = append(out, FalseNegative{
				Suggested:   af,
				Feed:        feeds[bestIdx].Name,
				FeedPattern: feeds[bestIdx].Pattern.String(),
				Similarity:  bestSim,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Similarity > out[j].Similarity })
	return out
}

// BestFeedByEditDistance is the E9 baseline: link an unmatched file to
// the installed feed whose pattern text has the highest raw edit
// similarity to the filename.
func BestFeedByEditDistance(feeds []FeedDef, name string) (string, float64) {
	best, bestSim := "", -1.0
	for _, fd := range feeds {
		if sim := EditSimilarity(name, fd.Pattern.String()); sim > bestSim {
			best, bestSim = fd.Name, sim
		}
	}
	return best, bestSim
}

// BestFeedBySimilarity links a single unmatched file to the most
// structurally similar installed feed (no clustering pass); used for
// per-file comparisons in E9.
func BestFeedBySimilarity(feeds []FeedDef, name string) (string, float64) {
	nf := NameFields(name)
	best, bestSim := "", -1.0
	for _, fd := range feeds {
		if sim := Similarity(nf, PatternFields(fd.Pattern)); sim > bestSim {
			best, bestSim = fd.Name, sim
		}
	}
	return best, bestSim
}

// SubfeedReport is the false-positive analysis of one feed (§5.3):
// the atomic subfeeds contained in its matched stream, with outliers
// flagged for subscriber review.
type SubfeedReport struct {
	Feed     string
	Total    int
	Subfeeds []discovery.AtomicFeed
	// Outlier[i] is true when Subfeeds[i] is flagged as a potential
	// false positive.
	Outlier []bool
}

// DetectFalsePositives clusters the files matched into a feed and
// flags atomic subfeeds that are structural outliers: tiny support
// relative to the feed, or low structural similarity to the dominant
// subfeed.
func DetectFalsePositives(feedName string, matched []discovery.Observation, opts Options) SubfeedReport {
	opts = opts.withDefaults()
	an := discovery.New(opts.Discovery)
	for _, o := range matched {
		an.Add(o)
	}
	subs := an.Feeds()
	rep := SubfeedReport{Feed: feedName, Total: an.Total(), Subfeeds: subs, Outlier: make([]bool, len(subs))}
	if len(subs) == 0 {
		return rep
	}
	dominant := subs[0].Fields // Feeds() sorts by support desc
	for i, sf := range subs {
		frac := float64(sf.Support) / float64(rep.Total)
		if frac < opts.OutlierFraction {
			rep.Outlier[i] = true
			continue
		}
		if i > 0 && Similarity(sf.Fields, dominant) < opts.MinSimilarity {
			rep.Outlier[i] = true
		}
	}
	return rep
}

// Format renders the report for operator consumption.
func (r SubfeedReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "feed %s: %d files, %d subfeeds\n", r.Feed, r.Total, len(r.Subfeeds))
	for i, sf := range r.Subfeeds {
		mark := "  "
		if r.Outlier[i] {
			mark = "!!"
		}
		fmt.Fprintf(&b, "%s %s\n", mark, sf.Describe())
	}
	return b.String()
}

// SuggestRefinement proposes a revised definition for a feed whose
// matched stream contains outlier subfeeds (§5.3): the refined
// definition is the set of atomic patterns covering the non-outlier
// subfeeds, ready for the subscribers to approve. Bistro never applies
// such changes automatically — the subscribers own the decision — so
// the result is a recommendation, mirroring the paper's workflow.
func SuggestRefinement(rep SubfeedReport) []string {
	var out []string
	for i, sf := range rep.Subfeeds {
		if i < len(rep.Outlier) && rep.Outlier[i] {
			continue
		}
		out = append(out, sf.Pattern)
	}
	return out
}
