package analyzer

import (
	"sort"

	"bistro/internal/discovery"
)

// Automatic feed grouping is the extension §5.1 names as future work:
// "Developing tools for automatic grouping of related or structurally
// similar atomic feeds into more complex logical feed groups."
//
// The grouper clusters discovered atomic feeds whose field structure
// matches after the feed-name anchor is ignored — the same shape
// signal a human uses when bundling BPS/PPS/CPU/MEMORY poller outputs
// into one "SNMP" group. Clustering is single-linkage over the
// anchor-blind structural similarity.

// FeedGroup is one suggested logical group of atomic feeds.
type FeedGroup struct {
	// Members indexes into the input slice.
	Members []int
	// Similarity is the minimum pairwise link similarity inside the
	// group (1.0 for singletons).
	Similarity float64
}

// anchorBlind returns the field sequence with the leading feed-name
// literal generalized, so structurally identical feeds with different
// names compare as equal.
func anchorBlind(fields []discovery.Field) []discovery.Field {
	out := make([]discovery.Field, len(fields))
	copy(out, fields)
	for i := range out {
		if out[i].Type == discovery.FieldLiteral {
			out[i] = discovery.Field{Type: discovery.FieldString}
			break
		}
		if out[i].Type != discovery.FieldSeparator {
			break
		}
	}
	return out
}

// GroupFeeds clusters atomic feeds into suggested feed groups: feeds
// join a group when their anchor-blind structural similarity to some
// member is at least minSim (single linkage). Groups are returned
// largest first; members are sorted.
func GroupFeeds(feeds []discovery.AtomicFeed, minSim float64) []FeedGroup {
	if minSim <= 0 {
		minSim = 0.8
	}
	n := len(feeds)
	blind := make([][]discovery.Field, n)
	for i, f := range feeds {
		blind[i] = anchorBlind(f.Fields)
	}
	// Union-find over pairwise links.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	linkSim := make(map[int]float64)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Symmetric similarity: take the lower direction so a
			// short pattern embedded in a long one does not merge
			// unrelated feeds.
			s1 := Similarity(blind[i], blind[j])
			s2 := Similarity(blind[j], blind[i])
			s := s1
			if s2 < s {
				s = s2
			}
			if s >= minSim {
				union(i, j)
				root := find(i)
				if cur, ok := linkSim[root]; !ok || s < cur {
					linkSim[root] = s
				}
			}
		}
	}
	byRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	var out []FeedGroup
	for r, members := range byRoot {
		sort.Ints(members)
		sim := 1.0
		if s, ok := linkSim[find(r)]; ok && len(members) > 1 {
			sim = s
		}
		out = append(out, FeedGroup{Members: members, Similarity: sim})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}
