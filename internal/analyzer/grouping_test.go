package analyzer

import (
	"fmt"
	"testing"
	"time"

	"bistro/internal/discovery"
)

// discoverFeeds runs the discovery module over synthetic streams and
// returns its atomic feeds.
func discoverFeeds(t *testing.T, gens map[string]func(src int, ts time.Time) string, sources, hours int) []discovery.AtomicFeed {
	t.Helper()
	an := discovery.New(discovery.DefaultOptions())
	start := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	for h := 0; h < hours; h++ {
		ts := start.Add(time.Duration(h) * time.Hour)
		for _, gen := range gens {
			for s := 1; s <= sources; s++ {
				an.Add(discovery.Observation{Name: gen(s, ts), Arrived: ts})
			}
		}
	}
	return an.Feeds()
}

func TestGroupFeedsBundlesPollerStatistics(t *testing.T) {
	// Four SNMP statistics with identical structure (the paper's SNMP
	// group) plus one structurally different daily feed.
	gens := map[string]func(int, time.Time) string{}
	for _, stat := range []string{"BPS", "PPS", "CPU", "MEMORY"} {
		stat := stat
		gens[stat] = func(s int, ts time.Time) string {
			return fmt.Sprintf("%s_POLL%d_%s.txt", stat, s, ts.Format("200601021504"))
		}
	}
	gens["BILLING"] = func(s int, ts time.Time) string {
		return fmt.Sprintf("billing-export-%d-%s.csv.zip", s, ts.Format("20060102"))
	}
	feeds := discoverFeeds(t, gens, 2, 8)
	if len(feeds) != 5 {
		for _, f := range feeds {
			t.Logf("feed: %s", f.Describe())
		}
		t.Fatalf("discovered %d feeds, want 5", len(feeds))
	}
	groups := GroupFeeds(feeds, 0.8)
	if len(groups) != 2 {
		for _, g := range groups {
			for _, m := range g.Members {
				t.Logf("group sim=%.2f member: %s", g.Similarity, feeds[m].Pattern)
			}
		}
		t.Fatalf("groups = %d, want 2 (SNMP stats + billing)", len(groups))
	}
	if len(groups[0].Members) != 4 {
		t.Fatalf("big group has %d members, want 4", len(groups[0].Members))
	}
	if len(groups[1].Members) != 1 {
		t.Fatalf("billing group has %d members", len(groups[1].Members))
	}
}

func TestGroupFeedsSingletons(t *testing.T) {
	gens := map[string]func(int, time.Time) string{
		"A": func(s int, ts time.Time) string {
			return fmt.Sprintf("alpha_%d_%s.log", s, ts.Format("20060102"))
		},
		"B": func(s int, ts time.Time) string {
			return fmt.Sprintf("%s/beta/poller%d.csv.gz", ts.Format("2006/01/02"), s)
		},
	}
	feeds := discoverFeeds(t, gens, 2, 4)
	groups := GroupFeeds(feeds, 0.9)
	for _, g := range groups {
		if len(g.Members) != 1 {
			t.Fatalf("unrelated feeds grouped: %+v", groups)
		}
		if g.Similarity != 1.0 {
			t.Fatalf("singleton similarity = %v", g.Similarity)
		}
	}
}

func TestGroupFeedsEmpty(t *testing.T) {
	if got := GroupFeeds(nil, 0.8); len(got) != 0 {
		t.Fatalf("groups of nothing = %v", got)
	}
}

func TestAnchorBlind(t *testing.T) {
	fields := []discovery.Field{
		{Type: discovery.FieldLiteral, Literal: "MEMORY"},
		{Type: discovery.FieldSeparator, Literal: "_"},
		{Type: discovery.FieldInteger},
	}
	blind := anchorBlind(fields)
	if blind[0].Type != discovery.FieldString {
		t.Fatalf("anchor not blinded: %+v", blind)
	}
	// Original untouched.
	if fields[0].Type != discovery.FieldLiteral {
		t.Fatal("input mutated")
	}
	// A leading separator is skipped before the anchor.
	fields2 := []discovery.Field{
		{Type: discovery.FieldSeparator, Literal: "/"},
		{Type: discovery.FieldLiteral, Literal: "CPU"},
	}
	blind2 := anchorBlind(fields2)
	if blind2[1].Type != discovery.FieldString {
		t.Fatalf("anchor after separator not blinded: %+v", blind2)
	}
}
