package analyzer

import (
	"fmt"
	"testing"
	"time"

	"bistro/internal/discovery"
	"bistro/internal/pattern"
)

var base = time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)

func TestPatternFields(t *testing.T) {
	p := pattern.MustCompile("TRAP__%Y%m%d_DCTAGN_klpi.txt")
	fs := PatternFields(p)
	// Expect: TRAP, __, TS(%Y%m%d), _, DCTAGN, _, klpi, ., txt
	if len(fs) != 9 {
		t.Fatalf("got %d fields: %+v", len(fs), fs)
	}
	if fs[0].Type != discovery.FieldLiteral || fs[0].Literal != "TRAP" {
		t.Errorf("field 0 = %+v", fs[0])
	}
	if fs[1].Type != discovery.FieldSeparator || fs[1].Literal != "__" {
		t.Errorf("field 1 = %+v", fs[1])
	}
	if fs[2].Type != discovery.FieldTimestamp || fs[2].TimeLayout != "%Y%m%d" {
		t.Errorf("field 2 = %+v", fs[2])
	}
}

func TestPatternFieldsConversions(t *testing.T) {
	p := pattern.MustCompile("x%i_%s_*.gz")
	fs := PatternFields(p)
	types := []discovery.FieldType{}
	for _, f := range fs {
		types = append(types, f.Type)
	}
	want := []discovery.FieldType{
		discovery.FieldLiteral, discovery.FieldInteger, discovery.FieldSeparator,
		discovery.FieldString, discovery.FieldSeparator, discovery.FieldString,
		discovery.FieldSeparator, discovery.FieldLiteral,
	}
	if len(types) != len(want) {
		t.Fatalf("types = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("types = %v, want %v", types, want)
		}
	}
}

func TestSimilarityIdentical(t *testing.T) {
	p := pattern.MustCompile("MEMORY_poller%i_%Y%m%d.gz")
	fs := PatternFields(p)
	if sim := Similarity(fs, fs); sim != 1 {
		t.Fatalf("self similarity = %v, want 1", sim)
	}
}

func TestSimilarityCapitalization(t *testing.T) {
	// §5.2: MEMORY_Poller1_20100926.gz vs MEMORY_poller%i_%Y%m%d.gz
	feed := PatternFields(pattern.MustCompile("MEMORY_poller%i_%Y%m%d.gz"))
	name := NameFields("MEMORY_Poller1_20100926.gz")
	sim := Similarity(name, feed)
	if sim < 0.8 {
		t.Fatalf("capitalization change similarity = %v, want >= 0.8", sim)
	}
}

func TestSimilarityTRAPExample(t *testing.T) {
	// The paper's edit-distance-51 example must still be linked to the
	// TRAP feed by structural similarity when ranked against other
	// plausible feeds.
	feeds := []FeedDef{
		{"trap", pattern.MustCompile("TRAP__%Y%m%d_DCTAGN_klpi.txt")},
		{"memory", pattern.MustCompile("MEMORY_poller%i_%Y%m%d.gz")},
		{"cpu", pattern.MustCompile("CPU_POLL%i_%Y%m%d%H%M.txt")},
		{"bps", pattern.MustCompile("BPS_%s_%Y%m%d%H.csv.gz")},
	}
	name := "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt"
	got, sim := BestFeedBySimilarity(feeds, name)
	if got != "trap" {
		t.Fatalf("structural similarity linked %q to %q (sim %v), want trap", name, got, sim)
	}
	// Sanity: the paper's point — raw edit distance is big.
	if d := EditDistance(name, feeds[0].Pattern.String()); d < 40 {
		t.Fatalf("edit distance = %d, expected the paper's pathological gap", d)
	}
}

func TestEditDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"abc", "abc", 0},
		{"poller", "Poller", 1},
	}
	for _, tc := range tests {
		if got := EditDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEditSimilarityBounds(t *testing.T) {
	if s := EditSimilarity("", ""); s != 1 {
		t.Errorf("empty similarity = %v", s)
	}
	if s := EditSimilarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint similarity = %v", s)
	}
}

func TestDetectFalseNegatives(t *testing.T) {
	feeds := []FeedDef{
		{"memory", pattern.MustCompile("MEMORY_poller%i_%Y%m%d.gz")},
		{"cpu", pattern.MustCompile("CPU_POLL%i_%Y%m%d%H%M.txt")},
	}
	// A software update capitalized "Poller": none of these match the
	// installed definition any more.
	var unmatched []discovery.Observation
	for d := 1; d <= 5; d++ {
		for s := 1; s <= 2; s++ {
			unmatched = append(unmatched, discovery.Observation{
				Name:    fmt.Sprintf("MEMORY_Poller%d_201009%02d.gz", s, 20+d),
				Arrived: base.Add(time.Duration(d) * 24 * time.Hour),
			})
		}
	}
	reports := DetectFalseNegatives(feeds, unmatched, Options{})
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1 (one per generalized pattern)", len(reports))
	}
	r := reports[0]
	if r.Feed != "memory" {
		t.Errorf("linked to %q, want memory", r.Feed)
	}
	if r.Suggested.Support != 10 {
		t.Errorf("suggested support = %d, want 10", r.Suggested.Support)
	}
	// The suggested pattern must cover the unmatched files.
	p, err := pattern.Compile(r.Suggested.Pattern)
	if err != nil {
		t.Fatalf("suggested pattern: %v", err)
	}
	for _, o := range unmatched {
		if !p.Matches(o.Name) {
			t.Errorf("suggested pattern %q misses %q", r.Suggested.Pattern, o.Name)
		}
	}
}

func TestDetectFalseNegativesIgnoresJunk(t *testing.T) {
	feeds := []FeedDef{
		{"memory", pattern.MustCompile("MEMORY_poller%i_%Y%m%d.gz")},
	}
	var unmatched []discovery.Observation
	for i := 0; i < 8; i++ {
		unmatched = append(unmatched, discovery.Observation{
			Name:    fmt.Sprintf("core.dump.%d", i),
			Arrived: base,
		})
	}
	reports := DetectFalseNegatives(feeds, unmatched, Options{})
	if len(reports) != 0 {
		t.Fatalf("junk files produced %d false-negative reports: %+v", len(reports), reports)
	}
}

func TestWarningVolumeReduction(t *testing.T) {
	// 1000 unmatched files from one renamed feed → exactly 1 report.
	feeds := []FeedDef{
		{"memory", pattern.MustCompile("MEMORY_poller%i_%Y%m%d.gz")},
	}
	var unmatched []discovery.Observation
	for i := 0; i < 1000; i++ {
		unmatched = append(unmatched, discovery.Observation{
			Name:    fmt.Sprintf("MEMORY_Poller%d_%s.gz", i%4+1, base.Add(time.Duration(i)*time.Hour).Format("20060102")),
			Arrived: base.Add(time.Duration(i) * time.Hour),
		})
	}
	reports := DetectFalseNegatives(feeds, unmatched, Options{})
	if len(reports) != 1 {
		t.Fatalf("got %d reports for 1000 files, want 1", len(reports))
	}
}

func TestDetectFalsePositives(t *testing.T) {
	// A BPS feed that accidentally also matches PPS files (the §2.1.3.2
	// scenario: wildcard pattern too generic). PPS is a structural
	// sibling but a distinct atomic feed; with small support it must be
	// flagged as an outlier.
	var matched []discovery.Observation
	for iv := 0; iv < 50; iv++ {
		ts := base.Add(time.Duration(iv) * time.Hour)
		for s := 1; s <= 3; s++ {
			matched = append(matched, discovery.Observation{
				Name:    fmt.Sprintf("BPS_poller%d_%s.csv.gz", s, ts.Format("2006010215")),
				Arrived: ts,
			})
		}
	}
	for iv := 0; iv < 3; iv++ {
		ts := base.Add(time.Duration(iv) * time.Hour)
		matched = append(matched, discovery.Observation{
			Name:    fmt.Sprintf("PPS_poller1_%s.csv.gz", ts.Format("2006010215")),
			Arrived: ts,
		})
	}
	rep := DetectFalsePositives("bps", matched, Options{})
	if len(rep.Subfeeds) != 2 {
		t.Fatalf("got %d subfeeds, want 2:\n%s", len(rep.Subfeeds), rep.Format())
	}
	if rep.Outlier[0] {
		t.Error("dominant subfeed flagged as outlier")
	}
	if !rep.Outlier[1] {
		t.Errorf("small PPS subfeed not flagged:\n%s", rep.Format())
	}
}

func TestDetectFalsePositivesCleanFeed(t *testing.T) {
	var matched []discovery.Observation
	for iv := 0; iv < 50; iv++ {
		ts := base.Add(time.Duration(iv) * time.Hour)
		for s := 1; s <= 2; s++ {
			matched = append(matched, discovery.Observation{
				Name:    fmt.Sprintf("BPS_poller%d_%s.csv.gz", s, ts.Format("2006010215")),
				Arrived: ts,
			})
		}
	}
	rep := DetectFalsePositives("bps", matched, Options{})
	for i, o := range rep.Outlier {
		if o {
			t.Errorf("clean feed flagged outlier subfeed %d:\n%s", i, rep.Format())
		}
	}
}

func TestSimilarityEmpty(t *testing.T) {
	fs := PatternFields(pattern.MustCompile("a_%Y.gz"))
	if sim := Similarity(nil, fs); sim != 0 {
		t.Errorf("Similarity(nil, fs) = %v", sim)
	}
	if sim := Similarity(fs, nil); sim != 0 {
		t.Errorf("Similarity(fs, nil) = %v, want 0", sim)
	}
}

func BenchmarkSimilarity(b *testing.B) {
	feed := PatternFields(pattern.MustCompile("TRAP__%Y%m%d_DCTAGN_klpi.txt"))
	name := NameFields("TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Similarity(name, feed)
	}
}

func BenchmarkEditDistance(b *testing.B) {
	x := "TRAP_2010030817_UVIPTV-PER-BAN-DSPS-IPTV_MOM-rcsntxsqlcv122_9234SEC_klpi.txt"
	y := "TRAP__%Y%m%d_DCTAGN_klpi.txt"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditDistance(x, y)
	}
}

func TestSuggestRefinement(t *testing.T) {
	var matched []discovery.Observation
	for iv := 0; iv < 50; iv++ {
		ts := base.Add(time.Duration(iv) * time.Hour)
		for s := 1; s <= 3; s++ {
			matched = append(matched, discovery.Observation{
				Name:    fmt.Sprintf("BPS_poller%d_%s.csv.gz", s, ts.Format("2006010215")),
				Arrived: ts,
			})
		}
	}
	// The accidental extra subfeed the wildcard let in.
	for iv := 0; iv < 2; iv++ {
		ts := base.Add(time.Duration(iv) * time.Hour)
		matched = append(matched, discovery.Observation{
			Name:    fmt.Sprintf("PPS_poller1_%s.csv.gz", ts.Format("2006010215")),
			Arrived: ts,
		})
	}
	rep := DetectFalsePositives("bps", matched, Options{})
	refined := SuggestRefinement(rep)
	if len(refined) != 1 {
		t.Fatalf("refined = %v", refined)
	}
	p, err := pattern.Compile(refined[0])
	if err != nil {
		t.Fatal(err)
	}
	// The refined pattern covers the real stream and excludes the
	// extraneous files.
	for _, o := range matched {
		isPPS := o.Name[0] == 'P' && o.Name[1] == 'P'
		if p.Matches(o.Name) == isPPS {
			t.Fatalf("refined pattern %q wrong on %q", refined[0], o.Name)
		}
	}
}
