package experiments

import (
	"testing"
	"time"
)

func TestE13Shape(t *testing.T) {
	tab, err := E13Overhead(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want classifier + delivery rows: %s", tab.Format())
	}
	cl := row(t, tab, "classifier")
	if num(t, cl[1]) <= 0 || num(t, cl[2]) <= 0 {
		t.Fatalf("classifier timings not positive: %s", tab.Format())
	}
	del := row(t, tab, "delivery")
	if num(t, del[1]) <= 0 || num(t, del[2]) <= 0 {
		t.Fatalf("delivery timings not positive: %s", tab.Format())
	}
}

// TestE13OverheadBudget enforces the design budget from the
// observability work: instrumentation may cost the classifier and
// delivery hot paths less than 5%. Timing comparisons on shared CI
// hardware are noisy, so each attempt takes the min of several
// interleaved trials and the test passes if any attempt lands inside
// the budget.
func TestE13OverheadBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates atomic-op cost; overhead budget not meaningful")
	}
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short mode")
	}

	budget := 1.05
	check := func(name string, trial func(bool) (time.Duration, error)) {
		t.Helper()
		const attempts, trials = 3, 5
		var lastRatio float64
		for a := 0; a < attempts; a++ {
			bare, instr := time.Duration(1<<62), time.Duration(1<<62)
			for i := 0; i < trials; i++ {
				for _, on := range []bool{false, true} {
					d, err := trial(on)
					if err != nil {
						t.Fatal(err)
					}
					if on && d < instr {
						instr = d
					}
					if !on && d < bare {
						bare = d
					}
				}
			}
			lastRatio = float64(instr) / float64(bare)
			if lastRatio < budget {
				return
			}
		}
		t.Errorf("%s: instrumented/bare = %.3f, budget %.2f", name, lastRatio, budget)
	}

	check("classifier", func(on bool) (time.Duration, error) {
		return E13ClassifierTrial(100, 20000, on)
	})
	check("delivery", func(on bool) (time.Duration, error) {
		return E13DeliveryTrial(40, on)
	})
}
