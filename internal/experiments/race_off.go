//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in. Timing
// assertions are skipped under -race: it multiplies the cost of the
// atomic operations being measured and says nothing about production
// overhead.
const raceEnabled = false
