package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path"
	rtmetrics "runtime/metrics"
	"sort"
	"strings"
	"sync"
	"time"

	"bistro/internal/config"
	"bistro/internal/server"
	"bistro/internal/transport"
)

// E19HTTPPull measures the HTTP pull data plane against the push
// protocol on one daemon: many stateless pollers paginating each
// feed's log by cursor versus push subscribers riding the delivery
// engine. Push pays per-subscriber server state (queues, receipts,
// retry timers) to get propagation bounded by the scheduler; pull
// holds zero per-client state — cost scales with request rate, not
// registered clients, and history pages are CDN-cacheable — at the
// price of up to one poll interval of propagation delay. The sweep
// checks the pull plane's exactly-once contract (no duplicate, no
// missed ids per poller) while measuring propagation and server CPU
// per client.
func E19HTTPPull(o Options) (Table, error) {
	t := Table{
		ID:     "E19",
		Title:  "HTTP pull data plane vs push subscribers on one daemon",
		Claim:  "feeds exposed as authenticated consumable HTTP logs serve thousands of cheap stateless pollers beside the push path; per-client cost is a poll request, not standing server state, and no poller misses or repeats a file id",
		Header: []string{"mode", "clients", "p50 propagation", "p99 propagation", "cpu/client", "requests", "dup", "missed"},
	}
	type rowCfg struct {
		mode    string
		clients int
	}
	rows := []rowCfg{
		{"push", 100},
		{"poll", 100},
		{"poll", 500},
		{"poll", 2000},
	}
	if o.Quick {
		rows = []rowCfg{{"push", 50}, {"poll", 50}, {"poll", 300}}
	}
	files := 6
	for _, rc := range rows {
		r, err := E19Trial(E19TrialConfig{
			Mode:         rc.mode,
			Clients:      rc.clients,
			Files:        files,
			FileSize:     2048,
			PollInterval: 150 * time.Millisecond,
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			rc.mode,
			fmt.Sprintf("%d", rc.clients),
			ms(r.PropagationP50),
			ms(r.PropagationP99),
			ms(r.CPUPerClient),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.Duplicates),
			fmt.Sprintf("%d", r.Missed),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("every trial deposits %d files on one feed of a full daemon and waits until every client holds every file id", files),
		"poll clients paginate GET /feeds/<name>?from=<seq> with bearer auth at a 150ms interval; propagation includes up to one interval of polling delay by design",
		"push rows ride the delivery engine over an in-process transport; propagation is scheduler-bound",
		"cpu/client is process CPU (runtime/metrics /cpu/classes/total) divided by clients for the trial; in-process clients inflate it, so read it as an upper bound on the server's share",
		"dup/missed count (client, file id) observations against exactly one — the no-transient-hole guarantee of the merged staging+manifest log view",
		"push rows hold standing per-subscriber state (queues, receipts); poll rows hold none — the daemon forgets each request as it answers it")
	if o.Quick {
		t.Notes = append(t.Notes, "quick mode caps the sweep at 300 pollers; the full run extends to 2000")
	}
	return t, nil
}

// E19TrialConfig parameterizes one pull-vs-push trial.
type E19TrialConfig struct {
	// Mode is "poll" (HTTP pollers) or "push" (protocol subscribers).
	Mode string
	// Clients is the poller or subscriber count.
	Clients int
	// Files and FileSize describe the deposited workload.
	Files    int
	FileSize int
	// PollInterval is each poller's sleep between pages.
	PollInterval time.Duration
}

// E19TrialResult carries one trial's measurements.
type E19TrialResult struct {
	// PropagationP50/P99 are deposit-to-client-observation latencies.
	PropagationP50 time.Duration
	PropagationP99 time.Duration
	// CPUPerClient is process CPU burned during the trial divided by
	// the client count.
	CPUPerClient time.Duration
	// Requests is the number of HTTP requests served (0 in push mode).
	Requests int64
	// Duplicates and Missed count (client, file id) observations beyond
	// or short of exactly once.
	Duplicates int
	Missed     int
}

func cpuSeconds() float64 {
	s := []rtmetrics.Sample{{Name: "/cpu/classes/total:cpu-seconds"}}
	rtmetrics.Read(s)
	return s[0].Value.Float64()
}

// e19Transport records push arrivals per subscriber with timestamps.
type e19Transport struct {
	mu  sync.Mutex
	got map[string]map[uint64]int
	at  []e19Arrival
}

type e19Arrival struct {
	name string
	t    time.Time
}

func (c *e19Transport) Deliver(sub string, f transport.File) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.got[sub] == nil {
		c.got[sub] = make(map[uint64]int)
	}
	c.got[sub][f.FileID]++
	c.at = append(c.at, e19Arrival{name: f.Name, t: time.Now()})
	return nil
}

func (c *e19Transport) Notify(sub string, f transport.File) error { return c.Deliver(sub, f) }

func (c *e19Transport) Trigger(sub, cmd string, paths []string) error { return nil }

func (c *e19Transport) Ping(sub string) error { return nil }

// e19Config builds the daemon config: one feed, the HTTP plane with
// one principal, and (push mode) one subscriber block per client.
func e19Config(mode string, clients int) string {
	var b strings.Builder
	b.WriteString("feed TICKS { pattern \"t%i.csv\" }\n")
	b.WriteString("http {\n    listen \"127.0.0.1:0\"\n    principal poller {\n        token \"e19\"\n        feed TICKS\n    }\n}\n")
	if mode == "push" {
		for i := 0; i < clients; i++ {
			fmt.Fprintf(&b, "subscriber s%05d { dest \"in\" subscribe TICKS retry 20ms }\n", i)
		}
	}
	return b.String()
}

// E19Trial runs one trial: a full daemon, Clients pollers or push
// subscribers, Files deposited live, everyone draining to completion.
func E19Trial(cfg E19TrialConfig) (*E19TrialResult, error) {
	root, err := os.MkdirTemp("", "bistro-e19-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	parsed, err := config.Parse(e19Config(cfg.Mode, cfg.Clients))
	if err != nil {
		return nil, err
	}
	trans := &e19Transport{got: make(map[string]map[uint64]int)}
	opts := server.Options{
		Config:       parsed,
		Root:         root,
		ScanInterval: -1,
		NoSync:       true,
	}
	if cfg.Mode == "push" {
		opts.Transport = trans
	}
	srv, err := server.New(opts)
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		return nil, err
	}

	payload := make([]byte, cfg.FileSize)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	deposited := struct {
		sync.Mutex
		at map[string]time.Time
	}{at: make(map[string]time.Time)}

	res := &E19TrialResult{}
	var wg sync.WaitGroup
	cpuBefore := cpuSeconds()

	if cfg.Mode == "poll" {
		addr := srv.HTTPAddr()
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		}}
		var reqMu sync.Mutex
		var requests int64
		type obs struct {
			name string
			t    time.Time
		}
		seen := make([][]obs, cfg.Clients)
		counts := make([]map[uint64]int, cfg.Clients)
		for p := 0; p < cfg.Clients; p++ {
			counts[p] = make(map[uint64]int)
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				// Stagger phases so the fleet's polls spread over the
				// interval instead of arriving as one thundering herd.
				time.Sleep(time.Duration(p) * cfg.PollInterval / time.Duration(cfg.Clients))
				var from uint64
				deadline := time.Now().Add(120 * time.Second)
				for len(counts[p]) < cfg.Files && time.Now().Before(deadline) {
					req, err := http.NewRequest("GET", fmt.Sprintf("http://%s/feeds/TICKS?from=%d", addr, from), nil)
					if err != nil {
						return
					}
					req.Header.Set("Authorization", "Bearer e19")
					resp, err := client.Do(req)
					if err != nil {
						time.Sleep(cfg.PollInterval)
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					reqMu.Lock()
					requests++
					reqMu.Unlock()
					var page struct {
						Next    uint64 `json:"next"`
						Entries []struct {
							Seq  uint64 `json:"seq"`
							Name string `json:"name"`
						} `json:"entries"`
					}
					if json.Unmarshal(body, &page) != nil || resp.StatusCode != 200 {
						time.Sleep(cfg.PollInterval)
						continue
					}
					now := time.Now()
					for _, e := range page.Entries {
						counts[p][e.Seq]++
						seen[p] = append(seen[p], obs{name: e.Name, t: now})
					}
					from = page.Next
					if len(counts[p]) >= cfg.Files {
						return
					}
					time.Sleep(cfg.PollInterval)
				}
			}(p)
		}
		// Let the fleet settle into its polling rhythm, then feed it.
		time.Sleep(cfg.PollInterval)
		for i := 0; i < cfg.Files; i++ {
			name := fmt.Sprintf("t%d.csv", i)
			deposited.Lock()
			deposited.at[name] = time.Now()
			deposited.Unlock()
			if err := srv.Deposit(name, payload); err != nil {
				return nil, err
			}
			time.Sleep(20 * time.Millisecond)
		}
		wg.Wait()
		res.CPUPerClient = time.Duration((cpuSeconds() - cpuBefore) / float64(cfg.Clients) * float64(time.Second))
		res.Requests = requests
		var props []time.Duration
		for p := range counts {
			for _, n := range counts[p] {
				if n > 1 {
					res.Duplicates += n - 1
				}
			}
			res.Missed += cfg.Files - len(counts[p])
			for _, ob := range seen[p] {
				deposited.Lock()
				d, ok := deposited.at[ob.name]
				deposited.Unlock()
				if ok {
					props = append(props, ob.t.Sub(d))
				}
			}
		}
		res.PropagationP50, res.PropagationP99 = percentiles(props)
		return res, nil
	}

	// Push mode: deposit, then wait for the engine to hand every file
	// to every subscriber.
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("t%d.csv", i)
		deposited.Lock()
		deposited.at[name] = time.Now()
		deposited.Unlock()
		if err := srv.Deposit(name, payload); err != nil {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
	total := cfg.Clients * cfg.Files
	deadline := time.Now().Add(120 * time.Second)
	for {
		trans.mu.Lock()
		n := len(trans.at)
		trans.mu.Unlock()
		if n >= total || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.CPUPerClient = time.Duration((cpuSeconds() - cpuBefore) / float64(cfg.Clients) * float64(time.Second))
	trans.mu.Lock()
	var props []time.Duration
	for _, a := range trans.at {
		// Push names arrive as destination paths ("TICKS/t0.csv");
		// deposits were keyed by bare landing name.
		deposited.Lock()
		d, ok := deposited.at[path.Base(a.name)]
		deposited.Unlock()
		if ok {
			props = append(props, a.t.Sub(d))
		}
	}
	for _, perSub := range trans.got {
		for _, n := range perSub {
			if n > 1 {
				res.Duplicates += n - 1
			}
		}
		res.Missed += cfg.Files - len(perSub)
	}
	if missing := cfg.Clients - len(trans.got); missing > 0 {
		res.Missed += missing * cfg.Files
	}
	trans.mu.Unlock()
	res.PropagationP50, res.PropagationP99 = percentiles(props)
	return res, nil
}

func percentiles(props []time.Duration) (p50, p99 time.Duration) {
	if len(props) == 0 {
		return 0, 0
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	return props[len(props)/2], props[len(props)*99/100]
}
