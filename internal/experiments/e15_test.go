package experiments

import (
	"testing"
	"time"
)

// TestE15Shape asserts the replay subsystem's contract end to end: a
// subscriber joining with FROM three days back catches up the full
// archived history (whose receipts were compacted — the manifest is
// the only record) while live files keep propagating with p99 inside
// the paper's one-minute bound, with zero gaps or duplicates across
// the archive/staging handoff, and the receipt DB's on-disk footprint
// stays below its pre-compaction size.
func TestE15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-server replay trial")
	}
	r, err := E15ReplayTrial(E15TrialConfig{
		HistDays:  3,
		PerDay:    48,
		LiveFiles: 20,
		Rate:      400,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replayed %d/%d in %v (%.0f files/s), live p99 %v, receipts %d->%d files / %d->%d bytes",
		r.Replayed, r.Total, r.CatchupTime, r.CatchupRate, r.LiveP99,
		r.ReceiptsBefore, r.ReceiptsAfter, r.ReceiptBytesBefore, r.ReceiptBytesAfter)
	if r.Replayed != r.Total {
		t.Fatalf("replayed %d of %d archived files (skipped %d)", r.Replayed, r.Total, r.Skipped)
	}
	if r.Duplicates != 0 {
		t.Fatalf("%d duplicate deliveries across the archive/staging handoff", r.Duplicates)
	}
	if r.LiveP99 >= time.Minute {
		t.Fatalf("live propagation p99 %v breaches the one-minute bound during catch-up", r.LiveP99)
	}
	// The rate cap shapes catch-up: 144 files at 400/s cannot finish
	// faster than the pacing allows, and throughput must be sustained
	// (well above a file a second) rather than stalled.
	if r.CatchupRate < 10 {
		t.Fatalf("catch-up throughput %.1f files/s — replay stalled", r.CatchupRate)
	}
	// Compaction bounds the receipt DB: after folding the archived
	// history, on-disk WAL+checkpoint must be smaller than it was with
	// the history's receipts in place, and the store holds only live
	// files.
	if r.ReceiptsAfter >= r.ReceiptsBefore {
		t.Fatalf("receipt files %d -> %d: history not folded", r.ReceiptsBefore, r.ReceiptsAfter)
	}
	if r.ReceiptBytesAfter >= r.ReceiptBytesBefore {
		t.Fatalf("receipt bytes %d -> %d: WAL+checkpoint unbounded", r.ReceiptBytesBefore, r.ReceiptBytesAfter)
	}
}
