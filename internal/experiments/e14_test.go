package experiments

import (
	"testing"
	"time"
)

// TestE14Shape asserts the scaling claim the tentpole was built for:
// with fsync cost modeled at a fixed latency, 4 ingest workers with
// the group-commit flush window must push the classify+commit path to
// at least 2x the serial (1 worker, no window) throughput, while
// propagation p95 stays under the paper's one-minute bound. The
// fixed-latency filesystem makes the ratio about fsync counts and
// overlap, not CI host speed.
func TestE14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-server scaling trial")
	}
	cfg := E14TrialConfig{
		Sources:      8,
		PerSource:    15,
		FsyncLatency: 2 * time.Millisecond,
	}

	serial := cfg
	serial.Workers = 1
	base, err := E14IngestTrial(serial)
	if err != nil {
		t.Fatal(err)
	}

	sharded := cfg
	sharded.Workers = 4
	sharded.GroupCommit = true
	fast, err := E14IngestTrial(sharded)
	if err != nil {
		t.Fatal(err)
	}

	speedup := base.IngestTime.Seconds() / fast.IngestTime.Seconds()
	t.Logf("serial %v, 4 workers+gc %v: %.2fx", base.IngestTime, fast.IngestTime, speedup)
	if speedup < 2 {
		t.Fatalf("classify+commit speedup %.2fx at 4 workers, want >= 2x (serial %v, sharded %v)",
			speedup, base.IngestTime, fast.IngestTime)
	}
	for name, r := range map[string]*E14TrialResult{"serial": base, "sharded": fast} {
		if r.PropagationP95 >= time.Minute {
			t.Fatalf("%s propagation p95 %v breaches the one-minute bound", name, r.PropagationP95)
		}
	}
}
