package experiments

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bistro/internal/config"
	"bistro/internal/delivery"
	"bistro/internal/metrics"
	"bistro/internal/receipts"
	"bistro/internal/transport"
)

// E18FanOut measures what per-feed delivery channels buy on the
// wide-fan-out path: N warehouse subscribers all taking the same feed.
// With individual per-subscriber jobs, every delivery re-reads the
// staged payload, so staging I/O grows as O(subscribers x files); a
// channel performs one staging read per file and fans the bytes out to
// every attached member, so staging I/O stays O(files) no matter how
// wide the group gets. The sweep runs the same workload at 10 to 100k
// members and checks exactly-once per member (zero duplicates, zero
// misses) at every width.
func E18FanOut(o Options) (Table, error) {
	t := Table{
		ID:     "E18",
		Title:  "per-feed channel fan-out: one staging read per file at any width",
		Claim:  "warehouse-style fan-out (many subscribers, one feed, §2.3, §4.2) must not multiply staging reads by the subscriber count; a shared channel read keeps propagation flat as the group grows",
		Header: []string{"subscribers", "delivery", "staging bytes", "bytes/file", "p99 propagation", "dup", "missed"},
	}
	files, size := 4, 4096
	const wire = 50 * time.Microsecond
	type rowCfg struct {
		subs    int
		channel bool
		wire    time.Duration
	}
	// Matched-width pairs (with modeled wire time, so individual
	// claims fragment the way real transfers make them), then the
	// channel-only width sweep.
	rows := []rowCfg{
		{10, false, wire}, {100, false, wire},
		{10, true, wire}, {100, true, wire},
		{1000, true, 0}, {10000, true, 0}, {100000, true, 0},
	}
	if o.Quick {
		rows = rows[:5]
	}
	for _, rc := range rows {
		r, err := E18FanOutTrial(E18TrialConfig{
			Subscribers:     rc.subs,
			Files:           files,
			FileSize:        size,
			Channel:         rc.channel,
			TransferLatency: rc.wire,
		})
		if err != nil {
			return t, err
		}
		mode := "individual"
		if rc.channel {
			mode = "channel"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rc.subs),
			mode,
			fmt.Sprintf("%d", r.StagingBytes),
			fmt.Sprintf("%d", r.StagingBytes/int64(files)),
			ms(r.PropagationP99),
			fmt.Sprintf("%d", r.Duplicates),
			fmt.Sprintf("%d", r.Missed),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("every trial stages %d files of %d bytes on one feed and waits for every member to hold every file", files, size),
		fmt.Sprintf("rows up to 100 members model %s of wire time per transfer; without it the scheduler's same-file locality heuristic hides the individual path's read amplification by batching an all-idle burst", wire),
		"individual delivery re-reads staging once per fragmented claim, approaching subscribers x file size per file as transfers hold members busy",
		"channel rows read staging once per file regardless of width; the group receipt keeps the receipt WAL at O(groups), not O(subscribers)",
		"the width sweep (1000+) omits wire time so the row measures broker overhead, not modeled transfer sleeps",
		"dup/missed count transport-level deliveries per (member, file) against exactly one")
	if o.Quick {
		t.Notes = append(t.Notes, "quick mode caps the sweep at 1000 members; the full run extends to 100000")
	}
	return t, nil
}

// E18TrialConfig parameterizes one fan-out trial.
type E18TrialConfig struct {
	// Subscribers is the fan-out width (all on one feed).
	Subscribers int
	// Files and FileSize describe the staged workload.
	Files    int
	FileSize int
	// Channel routes the feed through one shared channel; false runs
	// the pre-channel path of individual per-subscriber jobs.
	Channel bool
	// TransferLatency models per-delivery wire time. Without it every
	// individual job is claimed while all subscribers are idle, and
	// the scheduler's same-file locality heuristic batches the whole
	// burst behind one read — real transfers hold subscribers busy,
	// fragmenting those claims.
	TransferLatency time.Duration
}

// E18TrialResult carries one trial's measurements.
type E18TrialResult struct {
	// StagingBytes is payload bytes read from the staging area (the
	// engine's bistro_delivery_staging_read_bytes_total counter).
	StagingBytes int64
	// WireBytes is payload bytes handed to the transport (grows with
	// width in every mode — the fan-out itself is irreducible).
	WireBytes int64
	// PropagationP99 is the 99th-percentile stage->member latency.
	PropagationP99 time.Duration
	// Duplicates and Missed count (member, file) pairs delivered more
	// or fewer than exactly once.
	Duplicates int
	Missed     int
}

// e18Transport counts transport-level deliveries per (subscriber,
// file) and stamps each with its arrival time.
type e18Transport struct {
	delay time.Duration

	mu    sync.Mutex
	total int
	bytes int64
	got   map[string]map[uint64]int
	at    []e18Arrival
}

// e18Arrival pairs one transport delivery with its wall-clock time.
type e18Arrival struct {
	id uint64
	t  time.Time
}

func newE18Transport(delay time.Duration) *e18Transport {
	return &e18Transport{delay: delay, got: make(map[string]map[uint64]int)}
}

func (c *e18Transport) Deliver(sub string, f transport.File) error {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.got[sub] == nil {
		c.got[sub] = make(map[uint64]int)
	}
	c.got[sub][f.FileID]++
	c.total++
	c.bytes += int64(len(f.Data))
	c.at = append(c.at, e18Arrival{id: f.FileID, t: time.Now()})
	return nil
}

func (c *e18Transport) Notify(sub string, f transport.File) error { return c.Deliver(sub, f) }

func (c *e18Transport) Trigger(sub, cmd string, paths []string) error { return nil }

func (c *e18Transport) Ping(sub string) error { return nil }

func (c *e18Transport) delivered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// E18FanOutTrial runs one fan-out trial: N subscribers on one feed,
// staged files enqueued through the live path, measuring staging reads,
// propagation, and per-member delivery counts.
func E18FanOutTrial(cfg E18TrialConfig) (*E18TrialResult, error) {
	root, err := os.MkdirTemp("", "bistro-e18-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	store, err := receipts.Open(filepath.Join(root, "db"), receipts.Options{NoSync: true})
	if err != nil {
		return nil, err
	}
	defer store.Close()
	staging := filepath.Join(root, "staging", "TICKS")
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return nil, err
	}

	names := make([]string, cfg.Subscribers)
	subs := make([]*config.Subscriber, cfg.Subscribers)
	for i := range subs {
		names[i] = fmt.Sprintf("s%06d", i)
		subs[i] = &config.Subscriber{
			Name:  names[i],
			Dest:  "in",
			Feeds: []string{"TICKS"},
			Retry: 20 * time.Millisecond,
		}
	}
	trans := newE18Transport(cfg.TransferLatency)
	reg := metrics.NewRegistry()
	opts := delivery.Options{
		Store:       store,
		Transport:   trans,
		Subscribers: subs,
		StagingRoot: filepath.Join(root, "staging"),
		Metrics:     delivery.NewMetrics(reg),
	}
	if cfg.Channel {
		opts.Channels = []delivery.ChannelSpec{{Name: "fan", Feed: "TICKS", Members: names}}
	}
	eng, err := delivery.New(opts)
	if err != nil {
		return nil, err
	}
	eng.Start()
	defer eng.Stop()
	if cfg.Channel {
		// Every member must ride the fan-out before the clock starts;
		// a straggler would be caught up per-member (extra reads).
		deadline := time.Now().Add(120 * time.Second)
		for {
			st := eng.ChannelStats()
			if len(st) == 1 && st[0].Attached == cfg.Subscribers {
				break
			}
			if time.Now().After(deadline) {
				attached := 0
				if len(st) == 1 {
					attached = st[0].Attached
				}
				return nil, fmt.Errorf("e18: %d of %d members attached before timeout", attached, cfg.Subscribers)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	payload := make([]byte, cfg.FileSize)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	staged := make(map[uint64]time.Time, cfg.Files)
	ids := make([]uint64, 0, cfg.Files)
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("TICKS/t%04d.csv", i)
		if err := os.WriteFile(filepath.Join(root, "staging", filepath.FromSlash(name)), payload, 0o644); err != nil {
			return nil, err
		}
		meta := receipts.FileMeta{
			Name:       name,
			StagedPath: name,
			Feeds:      []string{"TICKS"},
			Size:       int64(len(payload)),
			Checksum:   crc32.ChecksumIEEE(payload),
			Arrived:    time.Now(),
		}
		id, err := store.RecordArrival(meta)
		if err != nil {
			return nil, err
		}
		meta.ID = id
		ids = append(ids, id)
		staged[id] = time.Now()
		eng.EnqueueFile(meta)
	}

	total := cfg.Subscribers * cfg.Files
	deadline := time.Now().Add(120 * time.Second)
	for trans.delivered() < total {
		if time.Now().After(deadline) {
			break // missed pairs are counted below, not fatal here
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Settle so late duplicates (retries racing the count) surface.
	time.Sleep(50 * time.Millisecond)
	eng.Stop()

	res := &E18TrialResult{
		StagingBytes: opts.Metrics.StagingReadBytes.Value(),
	}
	trans.mu.Lock()
	res.WireBytes = trans.bytes
	for _, sub := range names {
		for _, id := range ids {
			switch n := trans.got[sub][id]; {
			case n == 0:
				res.Missed++
			case n > 1:
				res.Duplicates += n - 1
			}
		}
	}
	props := make([]time.Duration, len(trans.at))
	for i, a := range trans.at {
		props[i] = a.t.Sub(staged[a.id])
	}
	trans.mu.Unlock()
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	if len(props) > 0 {
		res.PropagationP99 = props[len(props)*99/100]
	}
	return res, nil
}
