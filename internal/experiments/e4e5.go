package experiments

import (
	"fmt"
	"time"

	"bistro/internal/scheduler"
	"bistro/internal/sim"
)

var e4start = time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)

// e4mixed produces a mixed workload: a bulk measurement file every
// second (256KB, 2-minute deadline) and, every fifth second, a small
// network-alert file (4KB, 10-second deadline) — the real-time traffic
// (fault feeds, visualization) whose tardiness the paper cares about.
func e4mixed(n int) []sim.Arrival {
	var out []sim.Arrival
	id := uint64(1)
	for i := 0; i < n; i++ {
		at := e4start.Add(time.Duration(i) * time.Second)
		out = append(out, sim.Arrival{
			FileID: id, Feed: "bulk", Size: 256 << 10, At: at, Deadline: 2 * time.Minute,
		})
		id++
		if i%5 == 0 {
			out = append(out, sim.Arrival{
				FileID: id, Feed: "alert", Size: 4 << 10, At: at, Deadline: 10 * time.Second,
			})
			id++
		}
	}
	return out
}

// E4Scheduler reproduces the §4.3 argument in two parts.
//
// Part 1 (policy rows): with heterogeneous subscribers in ONE global
// queue, slow destinations occupy the workers and delay-sensitive
// traffic suffers regardless of policy; EDF at least orders the queue
// by urgency (alert files jump ahead), but only partitioning — the
// fast subscriber in its own partition with a dedicated worker —
// restores near-zero tardiness for the interactive class.
//
// Part 2 (ablation rows): the same-file locality grouping heuristic
// ("delivery of a file to several subscribers within a group is
// performed concurrently whenever possible") collapses ten queued
// copies of a staged file into one worker claim.
func E4Scheduler(o Options) (Table, error) {
	n := 600
	if o.Quick {
		n = 200
	}
	arrivals := e4mixed(n)

	fast := sim.Subscriber{Name: "fast", Partition: 0, Bandwidth: 10 << 20}
	slows := func(part int) []sim.Subscriber {
		var out []sim.Subscriber
		for i := 1; i <= 3; i++ {
			out = append(out, sim.Subscriber{
				Name: fmt.Sprintf("slow%d", i), Partition: part, Bandwidth: 100 << 10,
			})
		}
		return out
	}

	t := Table{
		ID:     "E4",
		Title:  "scheduler comparison under heterogeneous subscribers",
		Claim:  "slow/overloaded subscribers must not starve responsive ones; partition subscribers by responsiveness, EDF within a partition (§4.3)",
		Header: []string{"scheduler", "fast_max_tardy", "alert_mean_tardy", "alert_max_tardy", "bulk_mean_tardy"},
	}

	type caseDef struct {
		name string
		cfg  scheduler.Config
		subs []sim.Subscriber
	}
	cases := []caseDef{
		{
			name: "global-fifo/2w",
			cfg: scheduler.Config{Partitions: []scheduler.PartitionConfig{
				{Name: "all", Workers: 2, Policy: scheduler.FIFO}}},
			subs: append([]sim.Subscriber{fast}, slows(0)...),
		},
		{
			name: "global-edf/2w",
			cfg: scheduler.Config{Partitions: []scheduler.PartitionConfig{
				{Name: "all", Workers: 2, Policy: scheduler.EDF}}},
			subs: append([]sim.Subscriber{fast}, slows(0)...),
		},
		{
			name: "global-maxbenefit/2w",
			cfg: scheduler.Config{Partitions: []scheduler.PartitionConfig{
				{Name: "all", Workers: 2, Policy: scheduler.MaxBenefit}}},
			subs: append([]sim.Subscriber{fast}, slows(0)...),
		},
		{
			name: "partitioned-edf/1w+1w",
			cfg: scheduler.Config{Partitions: []scheduler.PartitionConfig{
				{Name: "interactive", Workers: 1, Policy: scheduler.EDF},
				{Name: "bulk", Workers: 1, Policy: scheduler.EDF}}},
			subs: append([]sim.Subscriber{fast}, slows(1)...),
		},
		{
			// Future-work extension: everyone starts in the interactive
			// partition; observed service times demote the slow class
			// automatically (§4.3 "dynamic migration of subscriber from
			// one group to another based on observed runtime behavior").
			name: "auto-migrating/1w+1w",
			cfg: scheduler.Config{
				Partitions: []scheduler.PartitionConfig{
					{Name: "interactive", Workers: 1, Policy: scheduler.EDF, MaxMeanService: 500 * time.Millisecond},
					{Name: "bulk", Workers: 1, Policy: scheduler.EDF},
				},
				Migration: scheduler.MigrationConfig{Enabled: true, MinObservations: 5},
			},
			subs: append([]sim.Subscriber{fast}, slows(0)...), // all start fast
		},
	}
	for _, c := range cases {
		res, err := sim.Run(sim.Config{
			Scheduler:   c.cfg,
			Subscribers: c.subs,
			Deadline:    time.Minute,
			Start:       e4start,
		}, arrivals)
		if err != nil {
			return t, err
		}
		f := res.PerSub["fast"]
		alert := res.PerFeed["alert"]
		bulk := res.PerFeed["bulk"]
		t.Rows = append(t.Rows, []string{
			c.name,
			secs(f.MaxTardy),
			secs(alert.MeanTardiness()), secs(alert.MaxTardy),
			secs(bulk.MeanTardiness()),
		})
	}

	// Locality-grouping ablation: ten same-partition subscribers, a
	// heavy stream whose ungrouped copies saturate two workers.
	var groupSubs []sim.Subscriber
	var names []string
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("g%d", i)
		groupSubs = append(groupSubs, sim.Subscriber{Name: name, Bandwidth: 1 << 20})
		names = append(names, name)
	}
	var heavy []sim.Arrival
	for i := 0; i < n/2; i++ {
		heavy = append(heavy, sim.Arrival{
			FileID: uint64(i + 1), Feed: "F", Size: 512 << 10,
			At: e4start.Add(time.Duration(i) * time.Second),
		})
	}
	for _, grouping := range []bool{false, true} {
		res, err := sim.Run(sim.Config{
			Scheduler: scheduler.Config{
				Partitions:    []scheduler.PartitionConfig{{Name: "p", Workers: 2, Policy: scheduler.EDF}},
				GroupSameFile: grouping,
			},
			Subscribers: groupSubs,
			Deadline:    30 * time.Second,
			Start:       e4start,
		}, heavy)
		if err != nil {
			return t, err
		}
		agg := res.Aggregate(names...)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("ablation group-same-file=%v", grouping),
			"-",
			secs(agg.MeanTardiness()), secs(agg.MaxTardy),
			"-",
		})
	}
	t.Notes = append(t.Notes,
		"global FIFO serves the queue in arrival order: alert files wait behind bulk backlogs to slow subscribers",
		"global EDF pulls alerts forward but still shares workers with the saturating slow class",
		"partitioned-EDF gives the interactive subscriber its own worker: its tardiness collapses (the paper's design)",
		"auto-migrating starts everyone interactive; observed service times demote the slow class within a few transfers (§4.3 future-work extension)",
		"the ablation shows one claimed staged read serving all ten subscribers when grouping is on")
	return t, nil
}

// E5Backfill reproduces the §4.3 backfill argument: after an outage,
// delivering the backlog in arrival order (old EDF deadlines first)
// sacrifices real-time delivery; Bistro's concurrent strategy streams
// backlog on a reserved worker while new files stay real-time.
func E5Backfill(o Options) (Table, error) {
	totalMin := 120
	if o.Quick {
		totalMin = 40
	}
	outageMin := totalMin / 4

	t := Table{
		ID:     "E5",
		Title:  "backfill strategies after subscriber outage",
		Claim:  "deliver new data in real time concurrently with backfilling missed history, rather than in order (§4.3)",
		Header: []string{"strategy", "delivered", "backfilled", "rt_mean_tardy", "rt_max_tardy", "drain_time"},
	}

	// One file every 10s; the subscriber is down for the first quarter.
	var arrivals []sim.Arrival
	for i := 0; ; i++ {
		at := e4start.Add(time.Duration(i) * 10 * time.Second)
		if at.After(e4start.Add(time.Duration(totalMin) * time.Minute)) {
			break
		}
		arrivals = append(arrivals, sim.Arrival{FileID: uint64(i + 1), Feed: "F", Size: 200 << 10, At: at})
	}
	outageFrom := e4start
	outageTo := e4start.Add(time.Duration(outageMin) * time.Minute)

	for _, mode := range []scheduler.BackfillMode{scheduler.BackfillInOrder, scheduler.BackfillConcurrent} {
		pc := scheduler.PartitionConfig{Name: "p", Workers: 2, Policy: scheduler.EDF}
		if mode == scheduler.BackfillConcurrent {
			pc.BackfillWorkers = 1
		}
		res, err := sim.Run(sim.Config{
			Scheduler: scheduler.Config{Partitions: []scheduler.PartitionConfig{pc}, Backfill: mode},
			Subscribers: []sim.Subscriber{{
				Name: "wh", Bandwidth: 60 << 10,
				OfflineFrom: outageFrom, OfflineUntil: outageTo,
			}},
			Deadline: time.Minute,
			Start:    e4start,
		}, arrivals)
		if err != nil {
			return t, err
		}
		st := res.PerSub["wh"]
		t.Rows = append(t.Rows, []string{
			mode.String(),
			fmt.Sprintf("%d", st.Delivered),
			fmt.Sprintf("%d", st.Backfilled),
			secs(st.MeanTardiness()),
			secs(st.MaxTardy),
			secs(res.Makespan.Sub(e4start)),
		})
	}
	t.Notes = append(t.Notes,
		"in-order: the reconnecting subscriber drains its 30-minute backlog before any fresh file — fresh traffic inherits the backlog's delay",
		"concurrent: the reserved backfill worker streams history while fresh files keep their real-time deadlines (Bistro's strategy)")
	return t, nil
}
