package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bistro/internal/config"
	"bistro/internal/server"
	"bistro/internal/subclient"
)

// E15HistoricalReplay measures the archive manifest + replay subsystem:
// a subscriber joins with SUBSCRIBE ... FROM several days in the past,
// and the archived history — whose receipts have already been
// compacted away, leaving the manifest as the only record — is
// streamed through the dedicated replay partition while live traffic
// keeps flowing. The claims under test: catch-up throughput is
// sustained and rate-capped, live propagation stays inside the paper's
// one-minute bound while the backlog drains (§4.3's isolation
// argument), delivery across the archive/staging boundary is
// exactly-once, and receipt-store size stays bounded under continuous
// expiry because compaction folds settled history into the manifest.
func E15HistoricalReplay(o Options) (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "historical replay from the archive concurrent with live delivery",
		Claim:  "subscribers can ask for history older than the staging window (§4.2) and catch up from tertiary storage without disturbing live propagation (§4.3); the manifest makes enumeration O(requested range) and compaction keeps the receipt DB bounded",
		Header: []string{"history", "rate cap", "catch-up", "throughput", "live p99", "dups", "receipts after"},
	}
	days, perDay, live := 3, 48, 20
	if o.Quick {
		perDay = 24
	}
	for _, rate := range []int{100, 400, 0} {
		r, err := E15ReplayTrial(E15TrialConfig{
			HistDays: days, PerDay: perDay, LiveFiles: live, Rate: rate,
		})
		if err != nil {
			return t, err
		}
		cap := "none"
		if rate > 0 {
			cap = fmt.Sprintf("%d/s", rate)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dd x %d", days, perDay),
			cap,
			secs(r.CatchupTime),
			fmt.Sprintf("%.0f files/s", r.CatchupRate),
			ms(r.LiveP99),
			fmt.Sprintf("%d", r.Duplicates),
			fmt.Sprintf("%d files, %d bytes", r.ReceiptsAfter, r.ReceiptBytesAfter),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d days x %d files/day deposited with old data times, expired into the archive, and their receipts compacted before the subscriber exists — replay runs entirely off the manifest", days, perDay),
		fmt.Sprintf("%d live files flow concurrently with catch-up; live p99 is deposit-to-daemon-write latency over real TCP", live),
		"dups counts files the subscriber daemon received more than once (must be 0: exactly-once across the archive/staging handoff)",
		"receipts after = receipt DB content once history is folded: live files only, history lives in the manifest")
	return t, nil
}

// E15TrialConfig parameterizes one replay trial.
type E15TrialConfig struct {
	// HistDays x PerDay archived files are replayed.
	HistDays int
	PerDay   int
	// LiveFiles are deposited concurrently with catch-up.
	LiveFiles int
	// Rate caps replay streaming (files/second; 0 = unlimited).
	Rate int
}

// E15TrialResult carries one trial's measurements.
type E15TrialResult struct {
	// Total is the archived-history size (HistDays * PerDay).
	Total int
	// Replayed counts files streamed from the archive; Skipped counts
	// enumerated files the live path owned.
	Replayed, Skipped int
	// CatchupTime is subscribe-to-handoff wall time; CatchupRate is
	// Replayed/CatchupTime.
	CatchupTime time.Duration
	CatchupRate float64
	// LiveP99 is the 99th-percentile deposit→daemon-write latency for
	// live files delivered while catch-up ran.
	LiveP99 time.Duration
	// Duplicates counts files the daemon received more than once.
	Duplicates int
	// ReceiptsBefore/After are receipt-DB file counts before compaction
	// and at trial end; ReceiptBytesBefore/After are WAL+checkpoint
	// bytes on disk at the same points.
	ReceiptsBefore, ReceiptsAfter         int
	ReceiptBytesBefore, ReceiptBytesAfter int64
}

// E15ReplayTrial runs one full trial: archive a multi-day history,
// compact its receipts, then subscribe FROM the past over real TCP
// while live traffic flows.
func E15ReplayTrial(cfg E15TrialConfig) (*E15TrialResult, error) {
	root, err := os.MkdirTemp("", "bistro-e15-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	text := fmt.Sprintf(`
window 1h
archive "arch"

replay {
    rate %d
}

feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M%%S.txt" }
`, cfg.Rate)
	conf, err := config.Parse(text)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Options{
		Config: conf, Root: root,
		ScanInterval: -1, ExpiryInterval: -1, // expiry driven explicitly
		Listen: "127.0.0.1:0",
		NoSync: true,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		return nil, err
	}

	// Phase 1: the archived past. Data times span HistDays days ending
	// well outside the 1h staging window; no subscriber exists yet.
	res := &E15TrialResult{Total: cfg.HistDays * cfg.PerDay}
	histStart := time.Now().UTC().Add(-time.Duration(cfg.HistDays+1) * 24 * time.Hour)
	step := 24 * time.Hour / time.Duration(cfg.PerDay)
	histNames := make(map[string]bool, res.Total)
	for d := 0; d < cfg.HistDays; d++ {
		for i := 0; i < cfg.PerDay; i++ {
			ts := histStart.Add(time.Duration(d)*24*time.Hour + time.Duration(i)*step)
			name := fmt.Sprintf("CPU_POLL1_%s.txt", ts.Format("20060102150405"))
			histNames[name] = true
			if err := srv.Deposit(name, []byte("hist:"+name)); err != nil {
				return nil, fmt.Errorf("e15: deposit %s: %w", name, err)
			}
		}
	}
	if n, err := srv.Archiver().ExpireOnce(); err != nil {
		return nil, err
	} else if n != res.Total {
		return nil, fmt.Errorf("e15: expired %d of %d", n, res.Total)
	}
	res.ReceiptsBefore = srv.Store().Stats().Files
	res.ReceiptBytesBefore = receiptBytes(root)
	if n, err := srv.CompactReceipts(); err != nil {
		return nil, err
	} else if n != res.Total {
		return nil, fmt.Errorf("e15: compacted %d of %d", n, res.Total)
	}

	// Phase 2: subscriber daemon over real TCP, with receive-time taps.
	var (
		mu        sync.Mutex
		received  = make(map[string]int)       // base name -> times received
		liveSeen  = make(map[string]time.Time) // base name -> daemon write time
		liveSent  = make(map[string]time.Time) // base name -> deposit time
		liveNames = make(map[string]bool)
	)
	daemon, err := subclient.Start("127.0.0.1:0", subclient.Options{
		Name: "wh", DestDir: filepath.Join(root, "wh-in"),
		OnFile: func(rel string) {
			base := filepath.Base(rel)
			mu.Lock()
			received[base]++
			if _, ok := liveSeen[base]; !ok {
				liveSeen[base] = time.Now()
			}
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	defer daemon.Stop()

	// Live depositor: files with current data times, concurrent with
	// catch-up. A distinct poller id keeps names disjoint from history.
	liveDone := make(chan error, 1)
	go func() {
		for i := 0; i < cfg.LiveFiles; i++ {
			ts := time.Now().UTC().Add(time.Duration(i) * time.Second)
			name := fmt.Sprintf("CPU_POLL2_%s.txt", ts.Format("20060102150405"))
			mu.Lock()
			liveNames[name] = true
			liveSent[name] = time.Now()
			mu.Unlock()
			if err := srv.Deposit(name, []byte("live:"+name)); err != nil {
				liveDone <- fmt.Errorf("e15: live deposit %s: %w", name, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		liveDone <- nil
	}()

	// SUBSCRIBE CPU FROM before the history started.
	begin := time.Now()
	err = subclient.Subscribe(srv.Addr(), subclient.SubscribeSpec{
		Name: "wh", Host: daemon.Addr(), Dest: "in",
		Feeds: []string{"CPU"},
		From:  histStart.Add(-time.Hour),
	}, 10*time.Second)
	if err != nil {
		return nil, err
	}

	// Wait for handoff, then for every file to land at the daemon.
	deadline := time.Now().Add(120 * time.Second)
	for {
		ss := srv.Replay().Sessions()
		if len(ss) == 1 && ss[0].Done {
			res.CatchupTime = time.Since(begin)
			res.Replayed, res.Skipped = ss[0].Streamed, ss[0].Skipped
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("e15: replay session did not complete")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-liveDone; err != nil {
		return nil, err
	}
	want := res.Total + cfg.LiveFiles
	for {
		mu.Lock()
		n := len(received)
		mu.Unlock()
		if n >= want {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("e15: %d of %d files at the daemon before timeout", n, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if res.CatchupTime > 0 {
		res.CatchupRate = float64(res.Replayed) / res.CatchupTime.Seconds()
	}

	// Exactly-once: every history and live file exactly once, no gaps.
	mu.Lock()
	for name := range histNames {
		if received[name] == 0 {
			mu.Unlock()
			return nil, fmt.Errorf("e15: gap: archived %s never delivered", name)
		}
	}
	props := make([]time.Duration, 0, cfg.LiveFiles)
	for name := range liveNames {
		if received[name] == 0 {
			mu.Unlock()
			return nil, fmt.Errorf("e15: gap: live %s never delivered", name)
		}
		props = append(props, liveSeen[name].Sub(liveSent[name]))
	}
	for _, n := range received {
		if n > 1 {
			res.Duplicates += n - 1
		}
	}
	mu.Unlock()
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	res.LiveP99 = props[len(props)*99/100]

	// Bounded receipts: fold once more and checkpoint so the on-disk
	// footprint reflects live state + delivery history, not the
	// replayed archive.
	if _, err := srv.CompactReceipts(); err != nil {
		return nil, err
	}
	if err := srv.Store().Checkpoint(); err != nil {
		return nil, err
	}
	res.ReceiptsAfter = srv.Store().Stats().Files
	res.ReceiptBytesAfter = receiptBytes(root)
	return res, nil
}

// receiptBytes sums the receipt store's on-disk footprint (WAL +
// checkpoint).
func receiptBytes(root string) int64 {
	var total int64
	for _, name := range []string{"receipts.wal", "receipts.ckpt"} {
		if st, err := os.Stat(filepath.Join(root, "receipts", name)); err == nil {
			total += st.Size()
		}
	}
	return total
}
