package experiments

import (
	"testing"
	"time"
)

// TestE20Shape asserts the placement trade the experiment exists to
// show: at-delivery stages strictly fewer bytes but pays for the join
// on every push (join count scaling with fan-out), while both
// placements deliver the same enriched bytes and stay inside the
// paper's one-minute propagation bound.
func TestE20Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-server placement trial")
	}
	tab, err := E20EnrichmentPlacement(Options{Quick: true})
	if err != nil {
		t.Fatalf("%v\n%s", err, tab.Format())
	}
	ing := row(t, tab, "at-ingest")
	del := row(t, tab, "at-delivery")

	// Fan-out is 3: the at-delivery join must run per push, not per
	// file. Retries can add a few, so assert ≥2x rather than exactly 3x.
	joinsIng := num(t, ing[4])
	joinsDel := num(t, del[4])
	if joinsIng == 0 {
		t.Fatalf("at-ingest ran no joins: %s", tab.Format())
	}
	if joinsDel < joinsIng*2 {
		t.Fatalf("at-delivery joins %v not amplified by fan-out (at-ingest %v): %s",
			joinsDel, joinsIng, tab.Format())
	}

	// Lean staging is the whole point of deferring the join.
	if stagedDel, stagedIng := num(t, del[2]), num(t, ing[2]); stagedDel >= stagedIng {
		t.Fatalf("at-delivery staged %v B not leaner than at-ingest %v B: %s",
			stagedDel, stagedIng, tab.Format())
	}

	// Subscribers must not be able to tell the placements apart.
	if num(t, ing[3]) != num(t, del[3]) {
		t.Fatalf("delivered bytes differ between placements: %s", tab.Format())
	}

	for _, r := range [][]string{ing, del} {
		p95 := num(t, r[5])
		if p95 <= 0 || p95 >= float64(time.Minute/time.Millisecond) {
			t.Fatalf("%s propagation p95 %vms out of bounds: %s", r[0], p95, tab.Format())
		}
	}
}
