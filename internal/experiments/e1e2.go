package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bistro/internal/baseline"
	"bistro/internal/clock"
	"bistro/internal/receipts"
)

// populate writes n small files into a dated directory layout under
// root, mimicking a feed provider's retained history.
func populate(root string, n int, prefix string) error {
	for i := 0; i < n; i++ {
		dir := filepath.Join(root, fmt.Sprintf("2010/%02d/%02d", i%12+1, i%28+1))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		name := filepath.Join(dir, fmt.Sprintf("%s%07d.csv", prefix, i))
		if err := os.WriteFile(name, []byte("r,1\n"), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// E1PullScan measures the §2.2.1 claim: a pull subscriber must rescan
// the provider's whole retained history every poll — a cost that grows
// linearly with history size even when nothing new arrived — while a
// notified landing zone pays a constant per-file cost.
func E1PullScan(o Options) (Table, error) {
	histories := []int{1000, 5000, 20000}
	if o.Quick {
		histories = []int{500, 2000}
	}
	const newFiles = 10
	t := Table{
		ID:     "E1",
		Title:  "pull-polling scan cost vs landing-zone notification",
		Claim:  "cost of filesystem metadata operations grows linearly with stored history; polling must continue even when no data is new (§2.2.1)",
		Header: []string{"history", "poll_entries", "poll_time", "poll_time/new_file", "notify_time_total", "speedup"},
	}
	for _, h := range histories {
		root, err := os.MkdirTemp("", "bistro-e1-*")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(root)
		if err := populate(root, h, "hist"); err != nil {
			return t, err
		}
		sub := baseline.NewPullSubscriber(root)
		if _, _, err := sub.Poll(); err != nil { // absorb history
			return t, err
		}
		// Drop newFiles fresh files, then measure the discovery poll.
		if err := populate(filepath.Join(root, "new"), newFiles, "fresh"); err != nil {
			return t, err
		}
		fresh, stats, err := sub.Poll()
		if err != nil {
			return t, err
		}
		if len(fresh) != newFiles {
			return t, fmt.Errorf("e1: found %d fresh files, want %d", len(fresh), newFiles)
		}

		// Bistro path: the same ten files announced through a landing
		// zone; ingest is a constant-cost move per file (modelled here
		// as the announce + rename, no classification to isolate the
		// discovery cost both systems pay differently).
		land, err := os.MkdirTemp("", "bistro-e1-land-*")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(land)
		staged, err := os.MkdirTemp("", "bistro-e1-staged-*")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(staged)
		var notifyTotal time.Duration
		for i := 0; i < newFiles; i++ {
			name := fmt.Sprintf("fresh%07d.csv", i)
			if err := os.WriteFile(filepath.Join(land, name), []byte("r,1\n"), 0o644); err != nil {
				return t, err
			}
			start := time.Now()
			// The notification names the file: no scan happens at all.
			if err := os.Rename(filepath.Join(land, name), filepath.Join(staged, name)); err != nil {
				return t, err
			}
			notifyTotal += time.Since(start)
		}
		speedup := float64(stats.Elapsed) / float64(maxDur(notifyTotal, time.Microsecond))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%d", stats.Entries),
			ms(stats.Elapsed),
			ms(stats.Elapsed / newFiles),
			ms(notifyTotal),
			fmt.Sprintf("%.0fx", speedup),
		})
	}
	t.Notes = append(t.Notes,
		"poll_entries and poll_time grow with history while the per-notification cost is flat",
		"real deployments amplify the gap: many subscribers scan the same provider concurrently (§2.2.1)")
	return t, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// E2RsyncVsReceipts measures the §2.2.2 claim: rsync-style stateless
// sync rescans source and destination on every run, so as history
// grows the scan dominates the transfer; Bistro's receipt database
// computes the delivery queue from state, independent of on-disk
// history size.
func E2RsyncVsReceipts(o Options) (Table, error) {
	histories := []int{1000, 5000, 20000}
	if o.Quick {
		histories = []int{500, 2000}
	}
	const newFiles = 10
	t := Table{
		ID:     "E2",
		Title:  "rsync/cron stateless sync vs receipt database",
		Claim:  "as stored history grows, rsync's directory scan cost grows linearly and completely dominates data transmission (§2.2.2)",
		Header: []string{"history", "rsync_scanned", "rsync_time", "receipts_pending_time", "receipts_queue_len", "ratio"},
	}
	for _, h := range histories {
		src, err := os.MkdirTemp("", "bistro-e2-src-*")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(src)
		dst, err := os.MkdirTemp("", "bistro-e2-dst-*")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(dst)
		if err := populate(src, h, "hist"); err != nil {
			return t, err
		}
		if _, err := baseline.Sync(src, dst); err != nil { // seed destination
			return t, err
		}
		if err := populate(filepath.Join(src, "new"), newFiles, "fresh"); err != nil {
			return t, err
		}
		stats, err := baseline.Sync(src, dst)
		if err != nil {
			return t, err
		}
		if stats.Transferred != newFiles {
			return t, fmt.Errorf("e2: rsync transferred %d, want %d", stats.Transferred, newFiles)
		}

		// Bistro: the receipt store with the same history (delivered)
		// plus ten new arrivals; the queue computation touches no
		// filesystem metadata at all.
		dbDir, err := os.MkdirTemp("", "bistro-e2-db-*")
		if err != nil {
			return t, err
		}
		defer os.RemoveAll(dbDir)
		store, err := receipts.Open(dbDir, receipts.Options{NoSync: true})
		if err != nil {
			return t, err
		}
		defer store.Close()
		at := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
		for i := 0; i < h; i++ {
			id, err := store.RecordArrival(receipts.FileMeta{
				Name: fmt.Sprintf("hist%07d.csv", i), StagedPath: "x", Feeds: []string{"F"}, Arrived: at,
			})
			if err != nil {
				return t, err
			}
			if err := store.RecordDelivery(id, "sub", at); err != nil {
				return t, err
			}
		}
		for i := 0; i < newFiles; i++ {
			if _, err := store.RecordArrival(receipts.FileMeta{
				Name: fmt.Sprintf("fresh%07d.csv", i), StagedPath: "x", Feeds: []string{"F"}, Arrived: at,
			}); err != nil {
				return t, err
			}
		}
		start := time.Now()
		pending := store.PendingFor("sub", []string{"F"})
		pendTime := time.Since(start)
		if len(pending) != newFiles {
			return t, fmt.Errorf("e2: pending %d, want %d", len(pending), newFiles)
		}
		ratio := float64(stats.Elapsed) / float64(maxDur(pendTime, time.Microsecond))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%d", stats.ScannedSrc+stats.ScannedDst),
			ms(stats.Elapsed),
			ms(pendTime),
			fmt.Sprintf("%d", len(pending)),
			fmt.Sprintf("%.0fx", ratio),
		})
	}
	// Drawback 4: cron steps on unfinished syncs. Drive a cron at a
	// period shorter than the sync over the largest history and count
	// skipped ticks (with the overlap guard, the honest configuration).
	ticks, skipped, err := cronOverlap(histories[len(histories)-1])
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"cron overlap demo",
		"-", "-", "-", "-",
		fmt.Sprintf("%d/%d ticks skipped", skipped, ticks),
	})
	t.Notes = append(t.Notes,
		"rsync scans both trees every run even with nothing to do; the receipt queue computation is in-memory state",
		"rsync also mirrors the provider's full history into the destination (§2.2.2 drawback 3) — the destination tree above holds every historical file",
		"the cron row drives rsync at a period shorter than one sync pass: most ticks are skipped (or, without the guard, would step on the running sync) — §2.2.2 drawback 4")
	return t, nil
}

// cronOverlap runs a cron-driven sync over a history tree at a period
// shorter than one pass, returning (ticks fired, ticks skipped).
func cronOverlap(history int) (int, int, error) {
	src, err := os.MkdirTemp("", "bistro-e2cron-src-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(src)
	dst, err := os.MkdirTemp("", "bistro-e2cron-dst-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dst)
	if err := populate(src, history, "hist"); err != nil {
		return 0, 0, err
	}
	if _, err := baseline.Sync(src, dst); err != nil {
		return 0, 0, err
	}
	// Measure one steady-state pass, then set the cron period to a
	// fraction of it.
	stats, err := baseline.Sync(src, dst)
	if err != nil {
		return 0, 0, err
	}
	period := stats.Elapsed / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	c := baseline.NewCron(clock.NewReal(), period)
	c.SkipOverlap = true
	var mu sync.Mutex
	runs := 0
	c.Start(func() {
		baseline.Sync(src, dst)
		mu.Lock()
		runs++
		mu.Unlock()
	})
	time.Sleep(10 * period)
	c.Stop()
	ticks, skipped := c.Stats()
	_ = runs
	return ticks, skipped, nil
}
