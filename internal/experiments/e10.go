package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bistro/internal/config"
	"bistro/internal/receipts"
	"bistro/internal/server"
	"bistro/internal/workload"
)

// E10Recovery exercises the §4.2 reliability guarantees end to end:
// the server is killed and restarted mid-stream, a second run delivers
// the remainder, and every file reaches the subscriber exactly once —
// plus a WAL group-commit ablation measuring durable receipt
// throughput.
func E10Recovery(o Options) (Table, error) {
	totalFiles := 300
	if o.Quick {
		totalFiles = 80
	}
	t := Table{
		ID:     "E10",
		Title:  "crash recovery, exactly-once delivery, WAL throughput",
		Claim:  "every file received that matches a feed is delivered to all subscribers despite server restarts and subscriber failures (§4.2)",
		Header: []string{"measure", "value"},
	}

	root, err := os.MkdirTemp("", "bistro-e10-*")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(root)
	cfgSrc := `
feed BPS { pattern "BPS_POLLER%i_%Y%m%d%H_%M.csv.gz" }
subscriber wh { dest "in" subscribe BPS }
`
	start := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	gen := workload.New(41, workload.FeedSpec{
		Name: "BPS", Sources: 3, Period: time.Minute,
		Convention: workload.ConvUnderscoreTS, SizeBytes: 256,
	})
	files := gen.Window(start, start.Add(time.Duration(totalFiles/3)*time.Minute))
	if len(files) < totalFiles {
		totalFiles = len(files)
	}
	files = files[:totalFiles]

	runServer := func(deposit []workload.File, waitDelivered int) error {
		cfg, err := config.Parse(cfgSrc)
		if err != nil {
			return err
		}
		srv, err := server.New(server.Options{
			Config: cfg, Root: root, ScanInterval: -1, NoSync: false,
		})
		if err != nil {
			return err
		}
		defer srv.Stop()
		if err := srv.Start(); err != nil {
			return err
		}
		for _, f := range deposit {
			if err := srv.Deposit(f.Name, workload.Payload(f)); err != nil {
				return err
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if srv.Store().DeliveredCount("wh") >= waitDelivered {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("e10: delivered %d, want %d", srv.Store().DeliveredCount("wh"), waitDelivered)
	}

	half := totalFiles / 2
	if err := runServer(files[:half], half); err != nil {
		return t, err
	}
	// "Crash": the first instance stopped; the second starts over the
	// same root, receives the rest, and must not redeliver the past.
	if err := runServer(files[half:], totalFiles); err != nil {
		return t, err
	}

	// Count delivered files on disk: exactly one per generated file.
	delivered := 0
	err = filepath.WalkDir(filepath.Join(root, "in"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			delivered++
		}
		return nil
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"files generated", fmt.Sprintf("%d", totalFiles)},
		[]string{"files on subscriber disk after restart", fmt.Sprintf("%d", delivered)},
		[]string{"duplicates", fmt.Sprintf("%d", delivered-totalFiles)},
	)
	if delivered != totalFiles {
		return t, fmt.Errorf("e10: delivered %d files, want exactly %d", delivered, totalFiles)
	}

	// WAL throughput ablation: group commit vs one fsync per commit.
	for _, mode := range []struct {
		name string
		opts receipts.Options
	}{
		{"wal commits/sec (group commit, 8 writers)", receipts.Options{}},
		{"wal commits/sec (fsync per commit, 8 writers)", receipts.Options{NoGroupCommit: true}},
	} {
		rate, err := walThroughput(mode.opts, o)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{mode.name, fmt.Sprintf("%.0f", rate)})
	}
	t.Notes = append(t.Notes,
		"the restarted server recomputes the subscriber queue from the receipt DB: no duplicates, no losses",
		"group commit batches concurrent fsyncs behind a leader; the ablation shows the per-commit fsync cost it amortizes")
	return t, nil
}

func walThroughput(opts receipts.Options, o Options) (float64, error) {
	dir, err := os.MkdirTemp("", "bistro-e10-wal-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	store, err := receipts.Open(dir, opts)
	if err != nil {
		return 0, err
	}
	defer store.Close()
	const writers = 8
	perWriter := 200
	if o.Quick {
		perWriter = 50
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	startT := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := store.RecordArrival(receipts.FileMeta{
					Name: fmt.Sprintf("w%d-%d", w, i), StagedPath: "x",
					Feeds: []string{"F"}, Arrived: time.Now(),
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	elapsed := time.Since(startT)
	return float64(writers*perWriter) / elapsed.Seconds(), nil
}
