package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bistro/internal/config"
	"bistro/internal/delivery"
	"bistro/internal/diskfault"
	"bistro/internal/normalize"
	"bistro/internal/receipts"
	"bistro/internal/server"
)

// E12CrashConsistency is the randomized crash-restart property harness
// for the §4.2 durability contract: the full server runs over the
// diskfault power-cut filesystem, the power is cut at a random point
// in each round, and the restarted server must show (a) every
// acknowledged arrival still present, deliverable, and never
// quarantined, (b) zero staging/DB divergences surviving the startup
// reconcile, and (c) at-least-once delivery with duplicates bounded by
// the receipts lost to the cut. It also measures recovery time against
// the checkpoint policy.
func E12CrashConsistency(o Options) (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "crash-consistency under randomized power cuts",
		Claim:  "the receipt DB and the staged payloads it points at survive power cuts together; startup reconciliation quarantines any divergence instead of failing transfers (§4.2)",
		Header: []string{"measure", "value"},
	}
	rounds := 50
	perRound := 6
	if o.Quick {
		perRound = 4
	}
	res, err := RunCrashRounds(CrashRoundsConfig{
		Rounds:   rounds,
		PerRound: perRound,
		Seed:     1106,
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"crash-restart rounds", fmt.Sprintf("%d", res.Rounds)},
		[]string{"deposits attempted", fmt.Sprintf("%d", res.Attempted)},
		[]string{"deposits acknowledged", fmt.Sprintf("%d", res.Acked)},
		[]string{"power cuts mid-operation", fmt.Sprintf("%d", res.MidOpCrashes)},
		[]string{"acked arrivals lost", fmt.Sprintf("%d", res.LostAcked)},
		[]string{"unreconciled staging/DB divergences", fmt.Sprintf("%d", res.Divergences)},
		[]string{"receipts quarantined", fmt.Sprintf("%d", res.Quarantined)},
		[]string{"orphan staged files re-ingested", fmt.Sprintf("%d", res.Reingested)},
		[]string{"acked files missing at subscriber", fmt.Sprintf("%d", res.Undelivered)},
		[]string{"duplicate deliveries (at-least-once)", fmt.Sprintf("%d", res.Duplicates)},
	)
	if v := res.Violations(); v != 0 {
		return t, fmt.Errorf("e12: %d invariant violations: %+v", v, res)
	}

	// Plan pipeline under the same power cuts: validate rejects and
	// routed splits must land each record exactly once — re-running a
	// half-finished plan after a crash overwrites deterministic output
	// paths instead of appending or duplicating.
	pres, err := RunPlanCrashRounds(CrashRoundsConfig{
		Rounds:   25,
		PerRound: perRound,
		Seed:     2012,
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"plan crash-restart rounds", fmt.Sprintf("%d", pres.Rounds)},
		[]string{"plan deposits acknowledged", fmt.Sprintf("%d", pres.Acked)},
		[]string{"plan power cuts mid-operation", fmt.Sprintf("%d", pres.MidOpCrashes)},
		[]string{"plan record-level exactly-once violations", fmt.Sprintf("%d", pres.RecordViolations)},
		[]string{"plan outputs missing at subscriber", fmt.Sprintf("%d", pres.Undelivered)},
	)
	if v := pres.RecordViolations + pres.Undelivered; v != 0 {
		return t, fmt.Errorf("e12: %d plan exactly-once violations: %+v", v, pres)
	}

	// Recovery time vs checkpoint policy: replaying a long WAL tail
	// against recovering from a snapshot.
	n := 5000
	if o.Quick {
		n = 1500
	}
	replay, err := recoveryTime(n, false)
	if err != nil {
		return t, err
	}
	ckpt, err := recoveryTime(n, true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("recovery time, %d receipts, full WAL replay", n), ms(replay)},
		[]string{fmt.Sprintf("recovery time, %d receipts, after checkpoint", n), ms(ckpt)},
	)
	t.Notes = append(t.Notes,
		"each round arms a random power cut, runs ingest+delivery over the fault filesystem, rolls the disk back to the fsync-covered state, and restarts",
		"plan rounds run a validate+route plan per arrival: each record must end up in exactly one of primary staging, a derived feed, or the reject quarantine — exactly once — across any number of mid-plan cuts",
		"staged promotes fsync file+directory before the arrival receipt commits, so a surviving receipt implies a surviving payload",
		"delivery receipts lost to a cut cause bounded redelivery: at-least-once, duplicates overwrite in place",
		"checkpoints bound recovery to the snapshot decode instead of the full WAL replay")
	return t, nil
}

// CrashRoundsConfig parameterizes the crash-restart property harness.
type CrashRoundsConfig struct {
	// Rounds is how many crash-restart cycles to run.
	Rounds int
	// PerRound is how many files are deposited per round.
	PerRound int
	// Seed drives the per-round fault RNGs and crash points.
	Seed int64
	// Fault overlays extra diskfault behaviour on every round —
	// LieSyncSubstr in particular deliberately reintroduces the
	// non-durable-rename bug class so tests can prove the harness
	// detects it. PowerCut and TornWrites are always forced on.
	Fault diskfault.Options
	// Workers > 1 switches to the sharded ingest pipeline: three
	// sources deposit concurrently into per-source directories, so
	// crashes land across flush-window and shard boundaries. 0 or 1
	// keeps the original serial harness byte-for-byte.
	Workers int
	// GroupCommit enables the WAL flush window (small batch/delay, so
	// every round crosses many batch boundaries).
	GroupCommit bool
}

// CrashRoundsResult aggregates the harness counters.
type CrashRoundsResult struct {
	Rounds       int
	Attempted    int
	Acked        int
	MidOpCrashes int
	// LostAcked counts acknowledged arrivals missing from the receipt
	// DB after restart, or quarantined, or with a bad payload — the
	// headline durability violation.
	LostAcked int
	// Divergences counts receipts (acked or not) whose staged payload
	// is missing or corrupt after the startup reconcile supposedly
	// repaired the tree.
	Divergences int
	Quarantined int
	Reingested  int
	// Undelivered counts acked files absent from the subscriber tree
	// after the final clean run drained all queues.
	Undelivered int
	Duplicates  int
}

// Violations is the number of invariant breaches (zero for a healthy
// storage path).
func (r *CrashRoundsResult) Violations() int {
	return r.LostAcked + r.Divergences + r.Undelivered
}

const e12Config = `
feed CPU { pattern "CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
`

// e12ConfigText renders the harness configuration for the requested
// pipeline shape. The serial shape is the historical e12Config text.
func e12ConfigText(cfg CrashRoundsConfig) string {
	if cfg.Workers <= 1 && !cfg.GroupCommit {
		return e12Config
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	text := fmt.Sprintf("ingest {\n    workers %d\n", workers)
	if cfg.GroupCommit {
		// A small window so every round crosses many flush boundaries.
		text += "    group_commit { max_batch 8 max_delay 1ms }\n"
	}
	text += "}\n"
	if cfg.Workers > 1 {
		return text + `
feed CPU { pattern "src%i/CPU_POLL%i_%Y%m%d%H%M.txt" }
subscriber wh { dest "in" subscribe CPU }
`
	}
	return text + e12Config
}

// RunCrashRounds executes the crash-restart property loop and checks
// the invariants after every restart. It is exported (within the
// experiments package's test surface) so a test can rerun it with a
// lying fsync and assert the violations become visible.
func RunCrashRounds(cfg CrashRoundsConfig) (*CrashRoundsResult, error) {
	root, err := os.MkdirTemp("", "bistro-e12-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	confText := e12ConfigText(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &CrashRoundsResult{Rounds: cfg.Rounds}
	acked := make(map[string]string) // original name -> payload
	var mu sync.Mutex
	deliveredEvents := 0
	onEvent := func(ev delivery.Event) {
		if ev.Kind == delivery.EvDelivered {
			mu.Lock()
			deliveredEvents++
			mu.Unlock()
		}
	}

	base := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	fileNo := 0
	for round := 0; round < cfg.Rounds; round++ {
		dfOpts := cfg.Fault
		dfOpts.Seed = cfg.Seed + int64(round) + 1
		dfOpts.PowerCut = true
		dfOpts.TornWrites = true
		// NoSync below the fault layer: the simulation tracks durability
		// itself, so real fsyncs would only slow the harness down.
		faulty := diskfault.NewFaulty(diskfault.NoSync(diskfault.OS()), dfOpts)

		srv, err := newE12Server(root, confText, faulty, onEvent)
		if err != nil {
			return nil, fmt.Errorf("e12 round %d: restart: %w", round, err)
		}
		if err := checkInvariants(srv, root, acked, res); err != nil {
			srv.Stop()
			return nil, err
		}

		// Arm the cut somewhere inside this round's operation stream,
		// then feed deposits; ingest and delivery race the countdown.
		faulty.SetCrashAfter(3 + rng.Int63n(45))
		if cfg.Workers > 1 {
			// Sharded shape: three sources deposit concurrently into
			// their own directories, in per-source order, racing the
			// armed cut across shard and flush-window boundaries.
			const nSrc = 3
			type dep struct{ name, payload string }
			plan := make([][]dep, nSrc)
			for i := 0; i < cfg.PerRound; i++ {
				s := i % nSrc
				name := fmt.Sprintf("src%d/CPU_POLL%d_%s.txt", s+1, s+1,
					base.Add(time.Duration(fileNo)*time.Minute).Format("200601021504"))
				fileNo++
				plan[s] = append(plan[s], dep{name,
					fmt.Sprintf("round=%d file=%d payload=%032d", round, fileNo, fileNo)})
			}
			var wg sync.WaitGroup
			for s := range plan {
				wg.Add(1)
				go func(deps []dep) {
					defer wg.Done()
					for _, d := range deps {
						err := srv.Deposit(d.name, []byte(d.payload))
						mu.Lock()
						res.Attempted++
						if err == nil {
							res.Acked++
							acked[d.name] = d.payload
						}
						mu.Unlock()
					}
				}(plan[s])
			}
			wg.Wait()
		} else {
			for i := 0; i < cfg.PerRound; i++ {
				name := fmt.Sprintf("CPU_POLL%d_%s.txt", i%3+1, base.Add(time.Duration(fileNo)*time.Minute).Format("200601021504"))
				fileNo++
				payload := fmt.Sprintf("round=%d file=%d payload=%032d", round, fileNo, fileNo)
				res.Attempted++
				if err := srv.Deposit(name, []byte(payload)); err == nil {
					res.Acked++
					acked[name] = payload
				}
			}
		}
		// Let in-flight deliveries race the countdown briefly.
		deadline := time.Now().Add(300 * time.Millisecond)
		for time.Now().Before(deadline) && !faulty.Crashed() {
			if srv.Store().DeliveredCount("wh") >= len(acked) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if faulty.Crashed() {
			res.MidOpCrashes++
		}
		srv.Stop()
		// Pull the plug: roll the disk back to the durable prefix.
		if err := faulty.Crash(); err != nil {
			return nil, fmt.Errorf("e12 round %d: crash rollback: %w", round, err)
		}
	}

	// Final clean run: drain every queue and verify at-least-once
	// delivery of all acknowledged files.
	srv, err := newE12Server(root, confText, diskfault.OS(), onEvent)
	if err != nil {
		return nil, fmt.Errorf("e12 final restart: %w", err)
	}
	defer srv.Stop()
	if err := checkInvariants(srv, root, acked, res); err != nil {
		return nil, err
	}
	st := srv.Store().Stats()
	res.Quarantined = st.Quarantined
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.Store().PendingFor("wh", []string{"CPU"})) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for name, payload := range acked {
		got, err := os.ReadFile(filepath.Join(root, "in", "CPU", name))
		if err != nil || string(got) != payload {
			res.Undelivered++
		}
	}
	mu.Lock()
	res.Duplicates = deliveredEvents - (st.Files - st.Quarantined)
	if res.Duplicates < 0 {
		res.Duplicates = 0
	}
	mu.Unlock()
	return res, nil
}

func newE12Server(root, confText string, fsys diskfault.FS, onEvent func(delivery.Event)) (*server.Server, error) {
	cfg, err := config.Parse(confText)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Options{
		Config: cfg, Root: root, ScanInterval: -1,
		FS: fsys, OnEvent: onEvent,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		srv.Stop()
		return nil, err
	}
	return srv, nil
}

// checkInvariants runs after every restart (reconcile already ran
// inside Start): every acked arrival must be present, unquarantined,
// and its staged payload intact; no surviving receipt may point at a
// missing or corrupt staged file.
func checkInvariants(srv *server.Server, root string, acked map[string]string, res *CrashRoundsResult) error {
	store := srv.Store()
	byName := make(map[string]receipts.FileMeta)
	res.Reingested = 0
	for _, meta := range store.AllFiles() {
		byName[meta.Name] = meta
		if _, ok := acked[meta.Name]; !ok {
			// A receipt the depositor never got an ack for: either the
			// commit raced the cut, or reconcile re-ingested an orphan.
			res.Reingested++
		}
		if store.Quarantined(meta.ID) || store.IsExpired(meta.ID) {
			continue
		}
		staged := filepath.Join(root, "staging", filepath.FromSlash(meta.StagedPath))
		crc, size, err := normalize.ChecksumFile(staged)
		if err != nil || size != meta.Size || crc != meta.Checksum {
			res.Divergences++
		}
	}
	for name := range acked {
		meta, ok := byName[name]
		if !ok || store.Quarantined(meta.ID) {
			res.LostAcked++
		}
	}
	return nil
}

// e12PlanConfig runs every arrival through a plan exercising the two
// crash seams the exactly-once argument rests on: a validate reject
// (quarantine output committed alongside the primary) and a route
// split (derived feed staged and recorded in the parent's receipt
// batch).
const e12PlanConfig = `
feed CPU {
    pattern "CPU_POLL%i_%Y%m%d%H%M.txt"
    plan {
        parse csv
        validate { columns 2 }
        extract tag 1
        route tag { "d" DERIV }
    }
}
feed DERIV { }
subscriber wh { dest "in" subscribe CPU }
subscriber whd { dest "ind" subscribe DERIV }
`

// PlanCrashResult aggregates the plan crash harness counters.
type PlanCrashResult struct {
	Rounds       int
	Attempted    int
	Acked        int
	MidOpCrashes int
	// RecordViolations counts acked arrivals whose primary, derived, or
	// reject output did not hold exactly the expected records after the
	// final clean restart — record loss or duplication either way.
	RecordViolations int
	// Undelivered counts acked plan outputs missing (or wrong) in a
	// subscriber tree after every queue drained.
	Undelivered int
	// BrokenProvenance counts derived receipts whose Origin does not
	// resolve to a parent arrival after all the restarts.
	BrokenProvenance int
}

// planPayload is one deposit: a record that stays primary, a record
// that routes to DERIV, and a record validate rejects. n makes every
// line globally unique so duplication is detectable as content drift.
func planPayload(n int) string {
	return fmt.Sprintf("p,keep%032d\nd,route%032d\nbad%d\n", n, n, n)
}

// RunPlanCrashRounds is the E12 harness over the plan pipeline: the
// same randomized power cuts and disk rollbacks, but every arrival
// fans into three outputs whose contents are checked record by record
// after the final clean restart. Deterministic output paths make the
// exactly-once claim checkable as plain content equality: a replayed
// half-finished plan overwrites, so any append-or-duplicate bug shows
// up as drift from the expected bytes.
func RunPlanCrashRounds(cfg CrashRoundsConfig) (*PlanCrashResult, error) {
	root, err := os.MkdirTemp("", "bistro-e12p-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &PlanCrashResult{Rounds: cfg.Rounds}
	acked := make(map[string]int) // deposit name -> unique payload number
	base := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	fileNo := 0
	for round := 0; round < cfg.Rounds; round++ {
		dfOpts := cfg.Fault
		dfOpts.Seed = cfg.Seed + int64(round) + 1
		dfOpts.PowerCut = true
		dfOpts.TornWrites = true
		faulty := diskfault.NewFaulty(diskfault.NoSync(diskfault.OS()), dfOpts)
		srv, err := newE12Server(root, e12PlanConfig, faulty, nil)
		if err != nil {
			return nil, fmt.Errorf("e12 plan round %d: restart: %w", round, err)
		}
		// The plan path does several durable commits per arrival
		// (primary, derived, reject, receipt batch), so a wider window
		// still lands cuts inside the seams.
		faulty.SetCrashAfter(3 + rng.Int63n(60))
		for i := 0; i < cfg.PerRound; i++ {
			name := fmt.Sprintf("CPU_POLL%d_%s.txt", i%3+1,
				base.Add(time.Duration(fileNo)*time.Minute).Format("200601021504"))
			fileNo++
			res.Attempted++
			if err := srv.Deposit(name, []byte(planPayload(fileNo))); err == nil {
				res.Acked++
				acked[name] = fileNo
			}
		}
		// Let in-flight deliveries race the countdown briefly.
		deadline := time.Now().Add(150 * time.Millisecond)
		for time.Now().Before(deadline) && !faulty.Crashed() {
			time.Sleep(2 * time.Millisecond)
		}
		if faulty.Crashed() {
			res.MidOpCrashes++
		}
		srv.Stop()
		if err := faulty.Crash(); err != nil {
			return nil, fmt.Errorf("e12 plan round %d: crash rollback: %w", round, err)
		}
	}

	// Final clean run: reconcile, drain, then check record placement.
	srv, err := newE12Server(root, e12PlanConfig, diskfault.OS(), nil)
	if err != nil {
		return nil, fmt.Errorf("e12 plan final restart: %w", err)
	}
	defer srv.Stop()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.Store().PendingFor("wh", []string{"CPU"})) == 0 &&
			len(srv.Store().PendingFor("whd", []string{"DERIV"})) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Provenance: every derived receipt's Origin must resolve to a
	// parent arrival — the WAL batch carried both or neither across
	// every cut.
	byID := make(map[uint64]receipts.FileMeta)
	for _, meta := range srv.Store().AllFiles() {
		byID[meta.ID] = meta
	}
	for _, meta := range byID {
		if len(meta.Feeds) == 1 && meta.Feeds[0] == "DERIV" {
			parent, ok := byID[meta.Origin]
			if !ok || parent.Feeds[0] != "CPU" {
				res.BrokenProvenance++
			}
		}
	}

	for name, n := range acked {
		wantP := fmt.Sprintf("p,keep%032d\n", n)
		wantD := fmt.Sprintf("d,route%032d\n", n)
		wantR := fmt.Sprintf("bad%d\t# reject: columns 1 (want 2)\n", n)
		// Staged outputs: deterministic names, so exactly-once is
		// content equality.
		if got, err := os.ReadFile(filepath.Join(root, "staging", "CPU", name)); err != nil || string(got) != wantP {
			res.RecordViolations++
		}
		if got, err := os.ReadFile(filepath.Join(root, "staging", "DERIV", name)); err != nil || string(got) != wantD {
			res.RecordViolations++
		}
		if got, err := os.ReadFile(filepath.Join(root, "quarantine", "_plan", "CPU", name+".rejects")); err != nil || string(got) != wantR {
			res.RecordViolations++
		}
		// Delivered outputs: at-least-once redelivery overwrites in
		// place, so the final copy must equal the expected bytes.
		if got, err := os.ReadFile(filepath.Join(root, "in", "CPU", name)); err != nil || string(got) != wantP {
			res.Undelivered++
		}
		if got, err := os.ReadFile(filepath.Join(root, "ind", "DERIV", name)); err != nil || string(got) != wantD {
			res.Undelivered++
		}
	}
	res.RecordViolations += res.BrokenProvenance
	return res, nil
}

// recoveryTime measures receipts.Open over a store holding n arrivals,
// with or without a checkpoint taken before the crash point.
func recoveryTime(n int, checkpoint bool) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "bistro-e12-rec-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	store, err := receipts.Open(dir, receipts.Options{NoSync: true})
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if _, err := store.RecordArrival(receipts.FileMeta{
			Name: fmt.Sprintf("f%d", i), StagedPath: fmt.Sprintf("F/f%d", i),
			Feeds: []string{"F"}, Size: 128, Checksum: uint32(i), Arrived: time.Now(),
		}); err != nil {
			store.Close()
			return 0, err
		}
	}
	if checkpoint {
		if err := store.Checkpoint(); err != nil {
			store.Close()
			return 0, err
		}
	}
	if err := store.Close(); err != nil {
		return 0, err
	}
	start := time.Now()
	reopened, err := receipts.Open(dir, receipts.Options{NoSync: true})
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	defer reopened.Close()
	if got := reopened.Stats().Files; got != n {
		return 0, fmt.Errorf("e12: recovered %d receipts, want %d", got, n)
	}
	return elapsed, nil
}
