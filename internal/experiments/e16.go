package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"

	"bistro/internal/cluster"
	"bistro/internal/config"
	"bistro/internal/diskfault"
	"bistro/internal/normalize"
	"bistro/internal/server"
	"bistro/internal/subclient"
)

// E16Failover is the clustered extension of the E12 crash property
// harness: a shard owner replicates its receipt WAL synchronously to a
// warm standby, the owner's disk is killed mid-traffic (power-cut
// semantics, no clean shutdown of the storage path), the standby is
// promoted, and the subscriber re-resolves the feed through the
// surviving node. The invariants are the failover contract: every
// deposit the owner acknowledged must survive on the promoted node —
// present, unquarantined, payload intact, and delivered — with zero
// application-visible duplicate writes at the subscriber (re-sends
// from the two-generals window are suppressed by file-id dedup). The
// harness also measures takeover time (detach → promoted node ready).
func E16Failover(o Options) (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "kill -9 shard failover to a WAL-shipped warm standby",
		Claim:  "synchronous WAL shipping means an owner crash loses no acknowledged arrival: the promoted standby replays the shipped WAL through the normal reconciliation path and serves the shard with exactly-once application at subscribers",
		Header: []string{"measure", "value"},
	}
	rounds := 12
	perRound := 8
	if o.Quick {
		rounds = 6
	}
	res, err := RunFailoverRounds(FailoverRoundsConfig{
		Rounds:   rounds,
		PerRound: perRound,
		Seed:     1611,
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"failover rounds", fmt.Sprintf("%d", res.Rounds)},
		[]string{"deposits attempted", fmt.Sprintf("%d", res.Attempted)},
		[]string{"deposits acknowledged", fmt.Sprintf("%d", res.Acked)},
		[]string{"owner crashes mid-operation", fmt.Sprintf("%d", res.MidOpCrashes)},
		[]string{"acked arrivals lost after promotion", fmt.Sprintf("%d", res.LostAcked)},
		[]string{"replicated staging/DB divergences", fmt.Sprintf("%d", res.Divergences)},
		[]string{"acked files missing at subscriber", fmt.Sprintf("%d", res.Undelivered)},
		[]string{"duplicate writes at subscriber", fmt.Sprintf("%d", res.AppDuplicates)},
		[]string{"re-sends suppressed by file-id dedup", fmt.Sprintf("%d", res.SuppressedDuplicates)},
		[]string{"takeover time mean", ms(meanDuration(res.Takeovers))},
		[]string{"takeover time max", ms(maxDuration(res.Takeovers))},
	)
	if v := res.Violations(); v != 0 {
		return t, fmt.Errorf("e16: %d invariant violations: %+v", v, res)
	}
	t.Notes = append(t.Notes,
		"every commit ships to the standby before the depositor's ack releases, so acked-implies-replicated holds unconditionally (a down standby write-blocks the owner instead)",
		"promotion opens the standby's shipped checkpoint+WAL as a full server: replay and startup reconciliation are the same code path a crash-restart uses",
		"the subscriber re-resolves the feed through any surviving node and re-subscribes; deliveries acked by the daemon whose receipt commit died with the owner are re-sent and suppressed by file-id dedup",
		"takeover time is detach-to-ready: WAL replay, reconciliation, and shard-map promotion, excluding any failure-detection delay")
	return t, nil
}

// FailoverRoundsConfig parameterizes the failover property harness.
type FailoverRoundsConfig struct {
	// Rounds is how many independent kill/promote cycles to run.
	Rounds int
	// PerRound is how many files are deposited per round.
	PerRound int
	// Seed drives the per-round fault RNGs and crash points.
	Seed int64
	// GroupCommit enables the WAL flush window on the owner (small
	// batch/delay), so crashes land inside group-commit windows and the
	// shipped-batch boundary is exercised.
	GroupCommit bool
}

// FailoverRoundsResult aggregates the harness counters.
type FailoverRoundsResult struct {
	Rounds       int
	Attempted    int
	Acked        int
	MidOpCrashes int
	// LostAcked counts acknowledged arrivals missing from the promoted
	// node's receipt DB, or quarantined there — the headline zero-loss
	// violation.
	LostAcked int
	// Divergences counts receipts on the promoted node whose replicated
	// staged payload is missing or corrupt after reconciliation.
	Divergences int
	// Undelivered counts acked files absent (or wrong) in the
	// subscriber tree after the promoted node drained its queues.
	Undelivered int
	// AppDuplicates counts files written more than once at the
	// subscriber — must be zero (exactly-once application).
	AppDuplicates int
	// SuppressedDuplicates counts re-sent deliveries the subscriber's
	// file-id dedup acknowledged without rewriting (the at-least-once
	// tail the dedup absorbs; nonzero in some rounds by design).
	SuppressedDuplicates int
	// Takeovers records each round's promotion time (detach → ready).
	Takeovers []time.Duration
}

// Violations is the number of invariant breaches (zero for a correct
// failover path).
func (r *FailoverRoundsResult) Violations() int {
	return r.LostAcked + r.Divergences + r.Undelivered + r.AppDuplicates
}

// e16Nodes fixes the two-node topology and reports which node the
// harness feed hashes to (the shard owner the harness will kill) and
// which survives. Placeholder addresses are fine: ownership depends
// only on names and the vnode count.
func e16Nodes() (owner, survivor string) {
	sm, err := cluster.NewShardMap(cluster.Topology{Nodes: []cluster.Node{
		{Name: "a", Addr: "x"}, {Name: "b", Addr: "x"},
	}})
	if err != nil {
		panic(err)
	}
	owner = sm.Owner("CPU").Name
	if owner == "a" {
		return "a", "b"
	}
	return "b", "a"
}

// e16ConfigText renders the shared cluster configuration: both nodes,
// the standby attached to the feed's owner, one feed. The same text
// runs the owner (self) and the promoted survivor (NodeName override).
func e16ConfigText(owner, survivor, ownerAddr, survivorAddr, standbyAddr string, groupCommit bool) string {
	text := ""
	if groupCommit {
		text += "ingest {\n    group_commit { max_batch 8 max_delay 1ms }\n}\n"
	}
	text += fmt.Sprintf(`
cluster {
    self "%s"
    node "%s" {
        addr "%s"
        standby "%s"
    }
    node "%s" {
        addr "%s"
    }
}
feed CPU { pattern "CPU_POLL%%i_%%Y%%m%%d%%H%%M.txt" }
`, owner, owner, ownerAddr, standbyAddr, survivor, survivorAddr)
	return text
}

// pickAddr reserves an ephemeral localhost address by binding and
// releasing it — the static topology needs the protocol addresses
// before either server exists.
func pickAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// RunFailoverRounds executes the kill/promote property loop. Each
// round is independent: fresh owner, standby, and subscriber; a seeded
// power cut kills the owner's storage mid-traffic; the standby is
// promoted and must satisfy the zero-loss invariants.
func RunFailoverRounds(cfg FailoverRoundsConfig) (*FailoverRoundsResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &FailoverRoundsResult{Rounds: cfg.Rounds}
	for round := 0; round < cfg.Rounds; round++ {
		if err := failoverRound(cfg, rng, res, round); err != nil {
			return nil, fmt.Errorf("e16 round %d: %w", round, err)
		}
	}
	return res, nil
}

// failoverRound runs one kill/promote cycle and folds its counters
// into res.
func failoverRound(cfg FailoverRoundsConfig, rng *rand.Rand, res *FailoverRoundsResult, round int) error {
	rootA, err := os.MkdirTemp("", "bistro-e16-owner-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(rootA)
	rootB, err := os.MkdirTemp("", "bistro-e16-standby-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(rootB)
	subDir, err := os.MkdirTemp("", "bistro-e16-sub-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(subDir)

	// Subscriber daemon with file-id dedup: re-sends after promotion
	// must not become duplicate writes.
	daemon, err := subclient.Start("127.0.0.1:0", subclient.Options{
		Name: "wh", DestDir: subDir, DedupByID: true,
	})
	if err != nil {
		return err
	}
	defer daemon.Stop()

	// Warm standby for the owner's shard.
	standby, err := cluster.StartStandby("127.0.0.1:0", cluster.StandbyOptions{
		Root: rootB, FS: diskfault.NoSync(diskfault.OS()),
	})
	if err != nil {
		return err
	}
	defer standby.Close()

	ownerName, survivorName := e16Nodes()
	ownerAddr, err := pickAddr()
	if err != nil {
		return err
	}
	survivorAddr, err := pickAddr()
	if err != nil {
		return err
	}
	confText := e16ConfigText(ownerName, survivorName, ownerAddr, survivorAddr, standby.Addr(), cfg.GroupCommit)
	ownerCfg, err := config.Parse(confText)
	if err != nil {
		return err
	}

	// The owner's storage runs over the power-cut filesystem; the cut
	// is armed mid-stream below. NoSync under the fault layer: the
	// simulation tracks durability itself.
	faulty := diskfault.NewFaulty(diskfault.NoSync(diskfault.OS()), diskfault.Options{
		Seed: cfg.Seed + int64(round) + 1, PowerCut: true, TornWrites: true,
	})
	owner, err := server.New(server.Options{
		Config: ownerCfg, Root: rootA, Listen: ownerAddr,
		ScanInterval: -1, FS: faulty,
	})
	if err != nil {
		return err
	}
	if err := owner.Start(); err != nil {
		owner.Stop()
		return err
	}

	// Subscribe through the cluster client: resolve the feed's owner
	// via any configured node, then subscribe there.
	cc := &subclient.Cluster{Nodes: []string{ownerAddr, survivorAddr}, Timeout: 2 * time.Second}
	spec := subclient.SubscribeSpec{
		Name: "wh", Host: daemon.Addr(), Dest: "in", Feeds: []string{"CPU"},
	}
	if err := cc.Subscribe(spec); err != nil {
		owner.Stop()
		return fmt.Errorf("subscribe at owner: %w", err)
	}

	// Deposit with a seeded power cut armed somewhere in the stream;
	// ingest, replication, and delivery race the countdown.
	acked := make(map[string]string)
	base := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	faulty.SetCrashAfter(3 + rng.Int63n(45))
	for i := 0; i < cfg.PerRound; i++ {
		name := fmt.Sprintf("CPU_POLL%d_%s.txt", i%3+1,
			base.Add(time.Duration(round*cfg.PerRound+i)*time.Minute).Format("200601021504"))
		payload := fmt.Sprintf("round=%d file=%d payload=%032d", round, i, i)
		res.Attempted++
		if err := owner.Deposit(name, []byte(payload)); err == nil {
			res.Acked++
			acked[name] = payload
		}
	}
	// Let in-flight deliveries race the countdown briefly.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) && !faulty.Crashed() {
		if owner.Store().DeliveredCount("wh") >= len(acked) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if faulty.Crashed() {
		res.MidOpCrashes++
	}
	// Kill the owner: stop the process and discard its disk wholesale
	// (the deferred RemoveAll). Nothing of the owner's storage survives
	// into the promoted node — only what was shipped.
	owner.Stop()

	// Promote the standby into the surviving node.
	promotedCfg, err := config.Parse(confText)
	if err != nil {
		return err
	}
	promoted, takeover, err := server.PromoteStandby(standby, ownerName, server.Options{
		Config: promotedCfg, NodeName: survivorName, Listen: survivorAddr,
		ScanInterval: -1, NoSync: true,
	})
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	defer promoted.Stop()
	res.Takeovers = append(res.Takeovers, takeover)

	// Invariants on the promoted store: every acked arrival present,
	// unquarantined, replicated payload intact.
	store := promoted.Store()
	byName := make(map[string]bool)
	for _, meta := range store.AllFiles() {
		byName[meta.Name] = !store.Quarantined(meta.ID)
		if store.Quarantined(meta.ID) || store.IsExpired(meta.ID) {
			continue
		}
		staged := filepath.Join(standby.Root(), "staging", filepath.FromSlash(meta.StagedPath))
		crc, size, err := normalize.ChecksumFile(staged)
		if err != nil || size != meta.Size || crc != meta.Checksum {
			res.Divergences++
		}
	}
	for name := range acked {
		if !byName[name] {
			res.LostAcked++
		}
	}

	// The subscriber re-resolves through the survivor (the owner's
	// address is dead) and re-subscribes; backfill drains everything
	// the crash interrupted.
	if err := cc.Subscribe(spec); err != nil {
		return fmt.Errorf("re-subscribe after promotion: %w", err)
	}
	drain := time.Now().Add(30 * time.Second)
	for time.Now().Before(drain) {
		if len(store.PendingFor("wh", []string{"CPU"})) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for name, payload := range acked {
		got, err := os.ReadFile(filepath.Join(subDir, "in", "CPU", name))
		if err != nil || string(got) != payload {
			res.Undelivered++
		}
	}
	writes := make(map[string]int)
	for _, n := range daemon.Received() {
		writes[n]++
	}
	for _, c := range writes {
		if c > 1 {
			res.AppDuplicates += c - 1
		}
	}
	res.SuppressedDuplicates += daemon.DuplicatesSuppressed()
	return nil
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func maxDuration(ds []time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return max
}
