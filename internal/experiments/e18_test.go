package experiments

import (
	"testing"
	"time"
)

// TestE18Shape asserts the fan-out claim the channel broker was built
// for: staging bytes read per file stay ~constant (within 2x) as the
// member count grows 100x, and every member still receives every file
// exactly once — zero duplicates, zero misses. The individual-delivery
// baseline at the small width pins the contrast: without the channel,
// staging reads already multiply by the subscriber count.
func TestE18Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fan-out scaling trial")
	}
	cfg := E18TrialConfig{Files: 3, FileSize: 2048, Channel: true}

	narrow := cfg
	narrow.Subscribers = 10
	small, err := E18FanOutTrial(narrow)
	if err != nil {
		t.Fatal(err)
	}

	wide := cfg
	wide.Subscribers = 1000
	big, err := E18FanOutTrial(wide)
	if err != nil {
		t.Fatal(err)
	}

	perFileSmall := small.StagingBytes / int64(cfg.Files)
	perFileBig := big.StagingBytes / int64(cfg.Files)
	t.Logf("staging bytes/file: %d members %d, %d members %d", narrow.Subscribers, perFileSmall, wide.Subscribers, perFileBig)
	if perFileBig > 2*perFileSmall {
		t.Fatalf("staging read per file grew from %d to %d bytes over a 100x wider group — fan-out is re-reading per member", perFileSmall, perFileBig)
	}
	for name, r := range map[string]*E18TrialResult{"narrow": small, "wide": big} {
		if r.Duplicates != 0 || r.Missed != 0 {
			t.Fatalf("%s trial: %d duplicate and %d missed (member, file) deliveries, want exactly-once", name, r.Duplicates, r.Missed)
		}
	}

	// The pre-channel baseline at the small width: with wire time
	// holding members busy, same-file claims fragment and staging
	// reads multiply with the member count.
	indiv := cfg
	indiv.Subscribers = 10
	indiv.Channel = false
	indiv.TransferLatency = 50 * time.Microsecond
	base, err := E18FanOutTrial(indiv)
	if err != nil {
		t.Fatal(err)
	}
	if base.Duplicates != 0 || base.Missed != 0 {
		t.Fatalf("baseline trial: %d duplicate and %d missed deliveries", base.Duplicates, base.Missed)
	}
	basePerFile := base.StagingBytes / int64(cfg.Files)
	t.Logf("individual baseline: %d bytes/file for %d members", basePerFile, indiv.Subscribers)
	if basePerFile < 3*perFileSmall {
		t.Fatalf("individual delivery read %d bytes/file for 10 members, want >= 3x the channel's %d — the baseline should multiply reads", basePerFile, perFileSmall)
	}
}
