package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"bistro/internal/config"
	"bistro/internal/delivery"
	"bistro/internal/server"
	"bistro/internal/workload"
)

// E3Propagation measures the §4.1 deployment claim: with landing zones
// and immediate move-to-staging, Bistro achieves sub-minute source →
// application propagation from over a hundred non-cooperating sources
// — here scaled onto one machine, comparing notification-driven ingest
// against fallback-scanner ingest at a production-like 5s interval
// (time-compressed to 50ms so the experiment runs in seconds; the
// reported delays are scaled back up by the same factor for
// comparison against the paper's sub-minute bound).
func E3Propagation(o Options) (Table, error) {
	sources := 120
	intervals := 4
	if o.Quick {
		sources = 40
		intervals = 2
	}
	// Time compression: the production 5s scan interval becomes 50ms.
	const compress = 100

	t := Table{
		ID:     "E3",
		Title:  "source-to-subscriber propagation delay",
		Claim:  "sub-minute data source to application propagation delays from 100+ non-cooperating sources (§4.1)",
		Header: []string{"ingest_mode", "sources", "files", "p50", "p95", "max", "scaled_max(x100)"},
	}

	for _, mode := range []string{"notify", "scan"} {
		res, err := runE3(mode, sources, intervals, compress)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, res)
	}
	t.Notes = append(t.Notes,
		"scan mode runs the landing fallback scanner every 50ms (5s production / 100x compression); notify mode ingests on announcement",
		"scaled_max multiplies the measured max by the compression factor: both modes sit well under the paper's one-minute bound")
	return t, nil
}

func runE3(mode string, sources, intervals, compress int) ([]string, error) {
	root, err := os.MkdirTemp("", "bistro-e3-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	cfg, err := config.Parse(`
feed BPS { pattern "BPS_POLLER%i_%Y%m%d%H_%M.csv.gz" }
subscriber wh { dest "in" subscribe BPS }
`)
	if err != nil {
		return nil, err
	}
	scanInterval := time.Duration(-1)
	if mode == "scan" {
		scanInterval = 50 * time.Millisecond
	}

	type sample struct {
		deposited time.Time
		delivered time.Time
	}
	var mu sync.Mutex
	samples := make(map[string]*sample)
	srv, err := server.New(server.Options{
		Config:       cfg,
		Root:         root,
		ScanInterval: scanInterval,
		NoSync:       true,
		OnEvent: func(ev delivery.Event) {
			if ev.Kind != delivery.EvDelivered {
				return
			}
			mu.Lock()
			// ev.Name is dest-prefixed; match by suffix below instead.
			for name, s := range samples {
				if s.delivered.IsZero() && hasSuffix(ev.Name, name) {
					s.delivered = time.Now()
					break
				}
			}
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		return nil, err
	}

	start := time.Date(2010, 9, 25, 4, 0, 0, 0, time.UTC)
	gen := workload.New(11, workload.FeedSpec{
		Name: "BPS", Sources: sources, Period: 5 * time.Minute,
		Convention: workload.ConvUnderscoreTS, SizeBytes: 512,
	})
	files := gen.Window(start, start.Add(time.Duration(intervals)*5*time.Minute))

	for _, f := range files {
		mu.Lock()
		samples[f.Name] = &sample{deposited: time.Now()}
		mu.Unlock()
		if mode == "notify" {
			if err := srv.Deposit(f.Name, workload.Payload(f)); err != nil {
				return nil, err
			}
		} else {
			// Non-cooperating source: drop the file and walk away.
			if err := writeLanding(srv, f.Name, workload.Payload(f)); err != nil {
				return nil, err
			}
		}
	}

	// Wait for every delivery.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := true
		for _, s := range samples {
			if s.delivered.IsZero() {
				done = false
				break
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	var lats []time.Duration
	for _, s := range samples {
		if s.delivered.IsZero() {
			return nil, fmt.Errorf("e3: %s: undelivered files remain", mode)
		}
		lats = append(lats, s.delivered.Sub(s.deposited))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := lats[len(lats)/2]
	p95 := lats[len(lats)*95/100]
	maxL := lats[len(lats)-1]
	return []string{
		mode,
		fmt.Sprintf("%d", sources),
		fmt.Sprintf("%d", len(lats)),
		ms(p50), ms(p95), ms(maxL),
		secs(maxL * time.Duration(compress)),
	}, nil
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

// writeLanding drops a file into the landing directory without any
// notification (non-cooperating source).
func writeLanding(srv *server.Server, name string, data []byte) error {
	dir := srv.Landing().Dir()
	return writeFileMkdir(dir, name, data)
}

func writeFileMkdir(dir, name string, data []byte) error {
	full := dir + "/" + name
	if i := lastSlash(full); i >= 0 {
		if err := os.MkdirAll(full[:i], 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(full, data, 0o644)
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
