package experiments

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"bistro/internal/config"
	"bistro/internal/delivery"
	"bistro/internal/diskfault"
	"bistro/internal/server"
)

// E14ParallelIngest measures what the sharded ingest pipeline and the
// WAL group-commit flush window buy on the classify+commit hot path.
// The server runs over a filesystem whose fsyncs cost a fixed 2ms —
// a model of real disk latency that makes the scaling deterministic
// in CI — while concurrent sources deposit into per-source
// directories. The serial row (1 worker, no flush window) is exactly
// the pre-pipeline code path; the sharded rows show staging fsyncs
// parallelizing across workers and receipt fsyncs amortizing across
// group-commit batches. Propagation p95 (arrival→subscriber) must
// stay under the paper's one-minute bound (§1) throughout.
func E14ParallelIngest(o Options) (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "parallel sharded ingest with WAL group-commit",
		Claim:  "sub-minute propagation at >100 feeds / 300 GB/day needs the ingest path off the single-fsync-per-file floor (§1, §4.1); sharding by source keeps per-source order while fsyncs overlap",
		Header: []string{"workers", "group_commit", "ingest time", "throughput", "speedup", "propagation p95"},
	}
	sources, perSource := 8, 30
	if o.Quick {
		perSource = 15
	}
	const fsyncLatency = 2 * time.Millisecond

	type rowCfg struct {
		workers int
		gc      bool
	}
	var baseline float64
	for _, rc := range []rowCfg{{1, false}, {1, true}, {2, true}, {4, true}} {
		r, err := E14IngestTrial(E14TrialConfig{
			Workers:      rc.workers,
			GroupCommit:  rc.gc,
			Sources:      sources,
			PerSource:    perSource,
			FsyncLatency: fsyncLatency,
		})
		if err != nil {
			return t, err
		}
		thru := float64(sources*perSource) / r.IngestTime.Seconds()
		gcCell := "off"
		if rc.gc {
			gcCell = "64/2ms"
		}
		if baseline == 0 {
			baseline = thru
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rc.workers),
			gcCell,
			secs(r.IngestTime),
			fmt.Sprintf("%.0f files/s", thru),
			fmt.Sprintf("%.2fx", thru/baseline),
			ms(r.PropagationP95),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d sources deposit %d files each concurrently; every fsync costs %s (diskfault.Latency over the real filesystem)", sources, perSource, fsyncLatency),
		"row 1 (1 worker, no flush window) is the pre-pipeline serial path: per-file staging fsyncs plus a private WAL fsync",
		"sharding parallelizes the staging file+dir fsyncs across sources; group commit turns N WAL fsyncs into one per flush window",
		"acknowledgement semantics are identical in every row: Deposit returns only after the receipt batch is fsync-durable (E12's invariant)")
	return t, nil
}

// E14TrialConfig parameterizes one ingest-scaling trial.
type E14TrialConfig struct {
	Workers      int
	GroupCommit  bool
	Sources      int
	PerSource    int
	FsyncLatency time.Duration
}

// E14TrialResult carries one trial's measurements.
type E14TrialResult struct {
	// IngestTime is the wall time for all sources to deposit all files
	// — each Deposit blocks until classify+normalize+commit is
	// durable, so this is the classify+commit path under load.
	IngestTime time.Duration
	// PropagationP95 is the 95th-percentile deposit→delivered latency.
	PropagationP95 time.Duration
}

// E14IngestTrial runs one full-server trial: concurrent per-source
// depositors over a fixed-fsync-latency filesystem, measuring ingest
// wall time and source→subscriber propagation.
func E14IngestTrial(cfg E14TrialConfig) (*E14TrialResult, error) {
	root, err := os.MkdirTemp("", "bistro-e14-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	text := fmt.Sprintf("ingest {\n    workers %d\n", cfg.Workers)
	if cfg.GroupCommit {
		text += "    group_commit { max_batch 64 max_delay 2ms }\n"
	}
	text += "}\n" + `
feed CPU { pattern "src%i/CPU_%Y%m%d%H%M%S.txt" }
subscriber wh { dest "in" subscribe CPU }
`
	conf, err := config.Parse(text)
	if err != nil {
		return nil, err
	}

	var (
		mu        sync.Mutex
		started   = make(map[string]time.Time) // landing name -> deposit start
		delivered = make(map[uint64]time.Time) // file id -> delivered at
	)
	var srv *server.Server
	srv, err = server.New(server.Options{
		Config: conf, Root: root, ScanInterval: -1,
		FS: diskfault.Latency(diskfault.OS(), cfg.FsyncLatency),
		OnEvent: func(ev delivery.Event) {
			if ev.Kind != delivery.EvDelivered {
				return
			}
			mu.Lock()
			delivered[ev.FileID] = time.Now()
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		return nil, err
	}

	base := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	payload := []byte("cpu=42 mem=17\n")
	total := cfg.Sources * cfg.PerSource
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Sources)
	for s := 0; s < cfg.Sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < cfg.PerSource; i++ {
				ts := base.Add(time.Duration(s*cfg.PerSource+i) * time.Second)
				name := fmt.Sprintf("src%d/CPU_%s.txt", s+1, ts.Format("20060102150405"))
				mu.Lock()
				started[name] = time.Now()
				mu.Unlock()
				if err := srv.Deposit(name, payload); err != nil {
					errCh <- fmt.Errorf("e14: deposit %s: %w", name, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	ingestTime := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	// Drain delivery, then pair each receipt with its deposit time.
	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		n := len(delivered)
		mu.Unlock()
		if n >= total {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("e14: %d of %d delivered before timeout", n, total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	props := make([]time.Duration, 0, total)
	mu.Lock()
	for id, at := range delivered {
		meta, ok := srv.Store().File(id)
		if !ok {
			mu.Unlock()
			return nil, fmt.Errorf("e14: delivered file %d has no receipt", id)
		}
		t0, ok := started[meta.Name]
		if !ok {
			mu.Unlock()
			return nil, fmt.Errorf("e14: delivered %q never deposited", meta.Name)
		}
		props = append(props, at.Sub(t0))
	}
	mu.Unlock()
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	return &E14TrialResult{
		IngestTime:     ingestTime,
		PropagationP95: props[len(props)*95/100],
	}, nil
}
