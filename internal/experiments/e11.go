package experiments

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bistro/internal/backoff"
	"bistro/internal/clock"
	"bistro/internal/config"
	"bistro/internal/delivery"
	"bistro/internal/netsim"
	"bistro/internal/receipts"
	"bistro/internal/trigger"
)

// E11Degradation exercises the fault-tolerance layer end to end and
// measures graceful degradation (§4.2's reliability argument under
// injected faults).
//
// Part 1 (scenario rows): three subscribers share the default
// partition layout; one follows a scripted flap schedule (two outage
// windows covering 40% of the run). The claim is isolation: the
// flapping peer's failures — retries, circuit openings, probes — must
// not bleed into the healthy subscribers' tardiness, because backoff
// delays park failing jobs off the worker pool instead of hot-looping
// through it.
//
// Part 2 (probe rows): one subscriber is down for the whole window;
// a fixed 15s probe interval is compared against the breaker's
// exponential open-window schedule (15s doubling to a 2m cap). The
// exponential schedule reaches the dead host with a fraction of the
// probe traffic.
func E11Degradation(o Options) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "graceful degradation under fault injection",
		Claim:  "transfer failures are retried with backoff and flapping subscribers are isolated behind a circuit breaker, so healthy subscribers keep their delivery deadlines (§4.2)",
		Header: []string{"scenario", "delivered", "healthy_mean_tardy", "healthy_max_tardy", "retries", "probes"},
	}

	window := 10 * time.Minute
	if o.Quick {
		window = 4 * time.Minute
	}

	for _, flap := range []bool{false, true} {
		m, err := e11Scenario(window, flap)
		if err != nil {
			return t, err
		}
		name := "no-fault"
		if flap {
			name = "flap-fault"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", m.delivered),
			secs(m.healthyMean),
			secs(m.healthyMax),
			fmt.Sprintf("%d", m.retries),
			fmt.Sprintf("%d", m.probes),
		})
	}

	for _, fixed := range []bool{true, false} {
		probes, err := e11Probes(window, fixed)
		if err != nil {
			return t, err
		}
		name := "probe-exp=15s..2m"
		if fixed {
			name = "probe-fixed=15s"
		}
		t.Rows = append(t.Rows, []string{name, "-", "-", "-", "-", fmt.Sprintf("%d", probes)})
	}

	t.Notes = append(t.Notes,
		"flap-fault: one subscriber is down for two scripted windows (40% of the run); its jobs back off, trip the breaker, and return via backfill after a half-open probe succeeds",
		"healthy tardiness is unchanged by the flapping peer: delayed retries never occupy a worker, so the shared partition stays drained",
		"probe rows: one subscriber dead for the whole window; the exponential open-window schedule sends strictly fewer probes than a fixed 15s interval while still detecting recovery within the cap")
	return t, nil
}

type e11Metrics struct {
	delivered   int
	healthyMean time.Duration
	healthyMax  time.Duration
	retries     int
	probes      int
}

// e11Scenario runs three subscribers (one optionally flapping) over
// window on a simulated clock, a file every 5s, and reports delivery
// and fault-path counters.
func e11Scenario(window time.Duration, flap bool) (e11Metrics, error) {
	var m e11Metrics
	start := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	period := 5 * time.Second
	deadline := time.Minute
	clk := clock.NewSimulated(start)
	ns := netsim.New(clk)
	for _, name := range []string{"wh1", "wh2", "flappy"} {
		ns.Register(name, netsim.HostConfig{})
	}
	if flap {
		ns.SetFaults("flappy", netsim.FaultPlan{Windows: []netsim.FlapWindow{
			{From: start.Add(window / 10), Until: start.Add(3 * window / 10)},
			{From: start.Add(window / 2), Until: start.Add(7 * window / 10)},
		}})
	}

	root, err := os.MkdirTemp("", "bistro-e11-*")
	if err != nil {
		return m, err
	}
	defer os.RemoveAll(root)
	store, err := receipts.Open(filepath.Join(root, "db"), receipts.Options{NoSync: true})
	if err != nil {
		return m, err
	}
	defer store.Close()
	staging := filepath.Join(root, "staging")
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return m, err
	}

	var mu sync.Mutex
	arrivalOf := make(map[uint64]time.Time)
	var healthyTardy []time.Duration
	subs := []*config.Subscriber{
		{Name: "wh1", Dest: "in", Feeds: []string{"F"}},
		{Name: "wh2", Dest: "in", Feeds: []string{"F"}},
		{Name: "flappy", Dest: "in", Feeds: []string{"F"}},
	}
	eng, err := delivery.New(delivery.Options{
		Clock:       clk,
		Store:       store,
		Transport:   ns,
		Subscribers: subs,
		StagingRoot: staging,
		Deadline:    deadline,
		// NoJitter keeps the run deterministic for the shape assertions.
		Backoff: backoff.Policy{Base: time.Second, Max: 30 * time.Second, Multiplier: 2, NoJitter: true, Threshold: 3},
		OnEvent: func(ev delivery.Event) {
			mu.Lock()
			defer mu.Unlock()
			switch ev.Kind {
			case delivery.EvRetryScheduled:
				m.retries++
			case delivery.EvDelivered:
				m.delivered++
				if ev.Subscriber != "flappy" {
					tardy := ev.At.Sub(arrivalOf[ev.FileID].Add(deadline))
					if tardy < 0 {
						tardy = 0
					}
					healthyTardy = append(healthyTardy, tardy)
				}
			}
		},
		TriggerInvoker: trigger.InvokerFunc(func(trigger.Invocation) error { return nil }),
	})
	if err != nil {
		return m, err
	}
	eng.Start()
	defer eng.Stop()

	n := 0
	for at := start; at.Before(start.Add(window)); at = at.Add(period) {
		clk.AdvanceTo(at)
		name := fmt.Sprintf("F/file%04d.csv", n)
		n++
		payload := []byte(fmt.Sprintf("measurement %s\n", at.Format(time.RFC3339)))
		p := filepath.Join(staging, filepath.FromSlash(name))
		os.MkdirAll(filepath.Dir(p), 0o755)
		if err := os.WriteFile(p, payload, 0o644); err != nil {
			return m, err
		}
		meta := receipts.FileMeta{
			Name:       name,
			StagedPath: name,
			Feeds:      []string{"F"},
			Size:       int64(len(payload)),
			Checksum:   crc32.ChecksumIEEE(payload),
			Arrived:    at,
		}
		id, err := store.RecordArrival(meta)
		if err != nil {
			return m, err
		}
		meta.ID = id
		mu.Lock()
		arrivalOf[id] = at
		mu.Unlock()
		eng.EnqueueFile(meta)
		// Step through the period so retry releases and probe timers
		// fire between arrivals.
		for s := 0; s < 5; s++ {
			clk.Advance(period / 5)
			time.Sleep(time.Millisecond)
		}
	}
	// Drain: keep the clock moving until the flapping subscriber's
	// post-recovery backfill lands everything, bounded in real time.
	want := 3 * n
	drainUntil := time.Now().Add(20 * time.Second)
	for time.Now().Before(drainUntil) {
		mu.Lock()
		done := m.delivered >= want
		mu.Unlock()
		if done {
			break
		}
		clk.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	var total time.Duration
	for _, d := range healthyTardy {
		total += d
		if d > m.healthyMax {
			m.healthyMax = d
		}
	}
	if len(healthyTardy) > 0 {
		m.healthyMean = total / time.Duration(len(healthyTardy))
	}
	m.probes = ns.Pings("flappy")
	return m, nil
}

// e11Probes runs one permanently-down subscriber over window and
// counts liveness probes under a fixed 15s interval (fixed=true) or
// the exponential 15s..2m open-window schedule.
func e11Probes(window time.Duration, fixed bool) (int, error) {
	start := time.Date(2011, 6, 12, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSimulated(start)
	ns := netsim.New(clk)
	ns.Register("down", netsim.HostConfig{})
	ns.SetDown("down", true)

	root, err := os.MkdirTemp("", "bistro-e11p-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(root)
	store, err := receipts.Open(filepath.Join(root, "db"), receipts.Options{NoSync: true})
	if err != nil {
		return 0, err
	}
	defer store.Close()
	staging := filepath.Join(root, "staging")
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return 0, err
	}

	pol := backoff.Policy{Base: 15 * time.Second, Max: 2 * time.Minute, Multiplier: 2, NoJitter: true, Threshold: 1}
	if fixed {
		pol.Max = 15 * time.Second
		pol.Multiplier = 1
	}
	eng, err := delivery.New(delivery.Options{
		Clock:          clk,
		Store:          store,
		Transport:      ns,
		Subscribers:    []*config.Subscriber{{Name: "down", Dest: "in", Feeds: []string{"F"}}},
		StagingRoot:    staging,
		Backoff:        pol,
		TriggerInvoker: trigger.InvokerFunc(func(trigger.Invocation) error { return nil }),
	})
	if err != nil {
		return 0, err
	}
	eng.Start()
	defer eng.Stop()

	payload := []byte("x")
	if err := os.WriteFile(filepath.Join(staging, "f.csv"), payload, 0o644); err != nil {
		return 0, err
	}
	meta := receipts.FileMeta{
		Name: "f.csv", StagedPath: "f.csv", Feeds: []string{"F"},
		Size: 1, Checksum: crc32.ChecksumIEEE(payload), Arrived: start,
	}
	id, err := store.RecordArrival(meta)
	if err != nil {
		return 0, err
	}
	meta.ID = id
	eng.EnqueueFile(meta)

	steps := int(window / time.Second)
	for i := 0; i < steps; i++ {
		clk.Advance(time.Second)
		if i%5 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(5 * time.Millisecond)
	return ns.Pings("down"), nil
}
