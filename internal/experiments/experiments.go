// Package experiments implements the reproduction harness for every
// quantitative claim and design argument in the Bistro paper (SIGMOD
// 2011). The paper has no numeric evaluation tables — it is an
// industrial system paper — so the experiment set E1–E10 is derived
// from its deployment claims (§1, §4.1, §7) and design comparisons
// (§2.2, §2.3, §4.2, §4.3, §5); the mapping is recorded in DESIGN.md
// and results in EXPERIMENTS.md.
//
// Each experiment returns a Table; cmd/bistro-bench prints them and
// the root bench_test.go wraps them as testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks workloads for test-suite and CI runs; the shapes
	// the experiments demonstrate hold at both scales.
	Quick bool
}

// Table is one experiment's result.
type Table struct {
	// ID is the experiment id (e.g. "E1").
	ID string
	// Title describes the experiment.
	Title string
	// Claim is the paper statement under test.
	Claim string
	// Header names the columns.
	Header []string
	// Rows hold the measured series.
	Rows [][]string
	// Notes carry caveats and interpretation.
	Notes []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ms renders a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// secs renders a duration in seconds.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Options) (Table, error)
}

// All lists every experiment in order.
func All() []Runner {
	return []Runner{
		{"e1", "pull-polling scan cost vs landing-zone notification", E1PullScan},
		{"e2", "rsync/cron stateless sync vs receipt database", E2RsyncVsReceipts},
		{"e3", "source-to-subscriber propagation delay", E3Propagation},
		{"e4", "scheduler comparison under heterogeneous subscribers", E4Scheduler},
		{"e5", "backfill strategies after subscriber outage", E5Backfill},
		{"e6", "batch trigger policies on a changing poller fleet", E6Batching},
		{"e7", "classifier throughput and prefix-index ablation", E7Classifier},
		{"e8", "new-feed discovery precision/recall", E8Discovery},
		{"e9", "false-negative detection vs edit-distance baseline", E9FalseNegatives},
		{"e10", "crash recovery, exactly-once delivery, WAL throughput", E10Recovery},
		{"e11", "graceful degradation under fault injection", E11Degradation},
		{"e12", "crash-consistency under randomized power cuts", E12CrashConsistency},
		{"e13", "metrics instrumentation overhead on the hot paths", E13Overhead},
		{"e14", "parallel sharded ingest with WAL group-commit", E14ParallelIngest},
		{"e15", "historical replay from the archive concurrent with live delivery", E15HistoricalReplay},
		{"e16", "kill -9 shard failover to a WAL-shipped warm standby", E16Failover},
		{"e17", "kill-and-revive self-healing: lease failover, fencing, online re-seed", E17SelfHealing},
		{"e18", "per-feed channel fan-out: one staging read per file at any width", E18FanOut},
		{"e19", "HTTP pull data plane vs push subscribers on one daemon", E19HTTPPull},
		{"e20", "plan enrichment placement: at-ingest vs at-delivery", E20EnrichmentPlacement},
	}
}
