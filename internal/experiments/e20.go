package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bistro/internal/config"
	"bistro/internal/delivery"
	"bistro/internal/diskfault"
	"bistro/internal/server"
)

// E20EnrichmentPlacement measures the plan engine's enrichment
// placement trade under E14's fsync-latency model: the same side-table
// join run once per file at ingest (fat staged files, no per-push
// work) versus once per push at delivery (lean staged files, the join
// cost multiplied by the feed's fan-out). Both placements deliver
// byte-identical enriched content to every subscriber; what moves is
// where the bytes and CPU land — staging disk versus the delivery hot
// path.
func E20EnrichmentPlacement(o Options) (Table, error) {
	t := Table{
		ID:     "E20",
		Title:  "plan enrichment placement: at-ingest vs at-delivery",
		Claim:  "per-feed processing belongs in the transport, not in per-subscriber scripts (§2.3, §5); where a join runs decides whether staging pays in bytes or delivery pays in repeated work",
		Header: []string{"placement", "ingest time", "staged bytes", "delivered bytes", "enrich joins", "propagation p95"},
	}
	cfg := E20TrialConfig{
		Sources:      4,
		PerSource:    20,
		Subscribers:  3,
		FsyncLatency: 2 * time.Millisecond,
	}
	if o.Quick {
		cfg.PerSource = 10
	}
	for _, atDelivery := range []bool{false, true} {
		c := cfg
		c.AtDelivery = atDelivery
		r, err := E20Trial(c)
		if err != nil {
			return t, err
		}
		place := "at-ingest"
		if atDelivery {
			place = "at-delivery"
		}
		t.Rows = append(t.Rows, []string{
			place,
			secs(r.IngestTime),
			fmt.Sprintf("%d B", r.StagedBytes),
			fmt.Sprintf("%d B", r.DeliveredBytes),
			fmt.Sprintf("%d", r.EnrichJoins),
			ms(r.PropagationP95),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d sources deposit %d files each concurrently; every fsync costs %s; %d push subscribers fan out the feed", cfg.Sources, cfg.PerSource, cfg.FsyncLatency, cfg.Subscribers),
		"at-ingest joins once per file inside the plan worker and stages the enriched (fat) records",
		"at-delivery stages the lean records and re-runs the join on every push, so join count scales with fan-out while staged bytes shrink",
		"delivered bytes are identical either way — subscribers cannot tell the placements apart, only the transport's cost profile changes")
	return t, nil
}

// E20TrialConfig parameterizes one enrichment-placement trial.
type E20TrialConfig struct {
	// AtDelivery moves the enrich join from the ingest plan worker to
	// the per-push delivery transform.
	AtDelivery   bool
	Sources      int
	PerSource    int
	Subscribers  int
	FsyncLatency time.Duration
}

// E20TrialResult carries one trial's measurements.
type E20TrialResult struct {
	// IngestTime is the wall time for all sources to deposit all
	// files (Deposit blocks until the receipt batch is durable).
	IngestTime time.Duration
	// StagedBytes totals the feed's staging tree after the run.
	StagedBytes int64
	// DeliveredBytes totals every subscriber's received tree.
	DeliveredBytes int64
	// EnrichJoins sums bistro_plan_records_total over op="enrich" and
	// op="delivery_enrich": records that passed through the join,
	// wherever it ran.
	EnrichJoins int64
	// PropagationP95 is the 95th-percentile deposit→delivered latency
	// across all (file, subscriber) pairs.
	PropagationP95 time.Duration
}

// e20Payload is one deposited file: six CSV records whose first
// column joins against the hosts side table.
const e20Payload = "h1,37,a\nh2,11,b\nh3,5,c\nh1,2,d\nh2,9,e\nh3,4,f\n"

// E20Trial runs one full-server trial of a planned feed with a
// side-table enrich, placed per cfg, under concurrent depositors and
// a fixed-fsync-latency filesystem.
func E20Trial(cfg E20TrialConfig) (*E20TrialResult, error) {
	root, err := os.MkdirTemp("", "bistro-e20-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	if err := os.MkdirAll(filepath.Join(root, "tables"), 0o755); err != nil {
		return nil, err
	}
	table := "h1,rack1,us\nh2,rack2,eu\nh3,rack3,ap\n"
	if err := os.WriteFile(filepath.Join(root, "tables", "hosts.csv"), []byte(table), 0o644); err != nil {
		return nil, err
	}

	placement := ""
	if cfg.AtDelivery {
		placement = "\n            at delivery"
	}
	text := fmt.Sprintf(`ingest {
    workers 4
    group_commit { max_batch 64 max_delay 2ms }
}
feed EV {
    pattern "src%%i/EV_%%Y%%m%%d%%H%%M%%S.csv"
    plan {
        parse csv
        extract host 1
        enrich {
            table "tables/hosts.csv"
            key host%s
        }
    }
}
`, placement)
	for i := 1; i <= cfg.Subscribers; i++ {
		text += fmt.Sprintf("subscriber s%d { dest \"in%d\" subscribe EV }\n", i, i)
	}
	conf, err := config.Parse(text)
	if err != nil {
		return nil, err
	}

	var (
		mu        sync.Mutex
		started   = make(map[string]time.Time) // landing name -> deposit start
		delivered = make(map[string]time.Time) // fileID/subscriber -> delivered at
	)
	srv, err := server.New(server.Options{
		Config: conf, Root: root, ScanInterval: -1,
		FS: diskfault.Latency(diskfault.OS(), cfg.FsyncLatency),
		OnEvent: func(ev delivery.Event) {
			if ev.Kind != delivery.EvDelivered {
				return
			}
			mu.Lock()
			delivered[fmt.Sprintf("%d/%s", ev.FileID, ev.Subscriber)] = time.Now()
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Stop()
	if err := srv.Start(); err != nil {
		return nil, err
	}

	base := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	total := cfg.Sources * cfg.PerSource
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Sources)
	for s := 0; s < cfg.Sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < cfg.PerSource; i++ {
				ts := base.Add(time.Duration(s*cfg.PerSource+i) * time.Second)
				name := fmt.Sprintf("src%d/EV_%s.csv", s+1, ts.Format("20060102150405"))
				mu.Lock()
				started[name] = time.Now()
				mu.Unlock()
				if err := srv.Deposit(name, []byte(e20Payload)); err != nil {
					errCh <- fmt.Errorf("e20: deposit %s: %w", name, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	ingestTime := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	// Drain: every file must reach every subscriber.
	want := total * cfg.Subscribers
	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		n := len(delivered)
		mu.Unlock()
		if n >= want {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("e20: %d of %d deliveries before timeout", n, want)
		}
		time.Sleep(2 * time.Millisecond)
	}

	props := make([]time.Duration, 0, want)
	mu.Lock()
	for key, at := range delivered {
		var id uint64
		fmt.Sscanf(key, "%d/", &id)
		meta, ok := srv.Store().File(id)
		if !ok {
			mu.Unlock()
			return nil, fmt.Errorf("e20: delivered file %d has no receipt", id)
		}
		t0, ok := started[meta.Name]
		if !ok {
			mu.Unlock()
			return nil, fmt.Errorf("e20: delivered %q never deposited", meta.Name)
		}
		props = append(props, at.Sub(t0))
	}
	mu.Unlock()
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })

	var deliveredBytes int64
	for i := 1; i <= cfg.Subscribers; i++ {
		deliveredBytes += dirBytes(filepath.Join(root, fmt.Sprintf("in%d", i)))
	}
	// Ingest-placed joins count under op="enrich"; the per-push
	// delivery transform counts under op="delivery_enrich" so fan-out
	// cannot inflate the ingest series. E20 wants joins wherever they
	// ran, so it sums both.
	records := srv.Metrics().CounterVec("bistro_plan_records_total",
		"Records emitted by each plan operator.", "feed", "op")
	joins := records.With("EV", "enrich").Value() +
		records.With("EV", "delivery_enrich").Value()
	return &E20TrialResult{
		IngestTime:     ingestTime,
		StagedBytes:    dirBytes(filepath.Join(root, "staging", "EV")),
		DeliveredBytes: deliveredBytes,
		EnrichJoins:    joins,
		PropagationP95: props[len(props)*95/100],
	}, nil
}

// dirBytes totals regular-file sizes under root (0 if absent).
func dirBytes(root string) int64 {
	var n int64
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return nil
		}
		if !info.IsDir() {
			n += info.Size()
		}
		return nil
	})
	return n
}
