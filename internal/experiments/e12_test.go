package experiments

import (
	"testing"

	"bistro/internal/diskfault"
)

func TestE12Shape(t *testing.T) {
	tab, err := E12CrashConsistency(Options{Quick: true})
	if err != nil {
		t.Fatalf("%v\n%s", err, tab.Format())
	}
	if got := num(t, row(t, tab, "crash-restart rounds")[1]); got != 50 {
		t.Fatalf("rounds = %v, want 50: %s", got, tab.Format())
	}
	if num(t, row(t, tab, "acked arrivals lost")[1]) != 0 {
		t.Fatalf("acked arrivals lost: %s", tab.Format())
	}
	if num(t, row(t, tab, "unreconciled staging/DB divergences")[1]) != 0 {
		t.Fatalf("divergences survived reconcile: %s", tab.Format())
	}
	if num(t, row(t, tab, "acked files missing at subscriber")[1]) != 0 {
		t.Fatalf("at-least-once delivery broken: %s", tab.Format())
	}
	// The harness must actually exercise the failure mode: most rounds
	// should cut the power mid-operation.
	if num(t, row(t, tab, "power cuts mid-operation")[1]) < 25 {
		t.Fatalf("too few mid-operation cuts — harness not biting: %s", tab.Format())
	}
	// Plan rounds: every record exactly once across cuts, and the
	// cuts must land mid-plan for the claim to mean anything.
	if num(t, row(t, tab, "plan record-level exactly-once violations")[1]) != 0 {
		t.Fatalf("plan exactly-once broken: %s", tab.Format())
	}
	if num(t, row(t, tab, "plan outputs missing at subscriber")[1]) != 0 {
		t.Fatalf("plan outputs undelivered: %s", tab.Format())
	}
	if num(t, row(t, tab, "plan power cuts mid-operation")[1]) < 12 {
		t.Fatalf("too few mid-plan cuts — plan harness not biting: %s", tab.Format())
	}
	if num(t, row(t, tab, "plan deposits acknowledged")[1]) == 0 {
		t.Fatalf("no plan deposits acknowledged — plan harness vacuous: %s", tab.Format())
	}
	// Both recovery modes must have produced real measurements. The
	// replay-vs-checkpoint comparison itself lives in EXPERIMENTS.md —
	// at Quick scale under instrumented builds (-race) the two are too
	// close to assert an ordering, so only sanity-bound the ratio.
	replay := num(t, row(t, tab, "recovery time")[1])
	ckpt := num(t, tab.Rows[len(tab.Rows)-1][1])
	if replay <= 0 || ckpt <= 0 {
		t.Fatalf("recovery timings missing: replay=%v ckpt=%v: %s", replay, ckpt, tab.Format())
	}
	if ckpt > replay*5 {
		t.Fatalf("checkpoint recovery (%v) far slower than replay (%v): %s", ckpt, replay, tab.Format())
	}
}

// TestE12GroupCommitSharded reruns the crash-restart property harness
// with the sharded ingest pipeline and the WAL flush window enabled:
// concurrent per-source depositors race randomized power cuts across
// shard and group-commit batch boundaries. The acked-durability
// invariant must hold unchanged — no Deposit acknowledgement may ever
// precede its batch's fsync, or the rollback to the fsync-covered
// state would surface the loss here.
func TestE12GroupCommitSharded(t *testing.T) {
	res, err := RunCrashRounds(CrashRoundsConfig{
		Rounds:      20,
		PerRound:    9,
		Seed:        1106,
		Workers:     4,
		GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); v != 0 {
		t.Fatalf("%d invariant violations with workers=4 + group commit: %+v", v, res)
	}
	if res.MidOpCrashes < 10 {
		t.Fatalf("only %d mid-operation cuts — harness not biting", res.MidOpCrashes)
	}
	if res.Acked == 0 {
		t.Fatal("no deposits acknowledged — harness vacuous")
	}
}

// TestE12DetectsNonDurableRename deliberately reintroduces the bug
// class the harness targets: a lying fsync on the staging temp files
// makes the promote rename non-durable again (the pre-hardening
// behaviour), and the harness must report violations — proving E12 can
// catch the bug, not just pass vacuously.
func TestE12DetectsNonDurableRename(t *testing.T) {
	res, err := RunCrashRounds(CrashRoundsConfig{
		Rounds:   15,
		PerRound: 6,
		Seed:     1106,
		Fault:    diskfault.Options{LieSyncSubstr: ".bistro-tmp-"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations() == 0 {
		t.Fatalf("lying fsync produced no violations — the harness cannot detect the bug class it targets: %+v", res)
	}
}
