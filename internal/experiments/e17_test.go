package experiments

import (
	"testing"
)

func TestE17Shape(t *testing.T) {
	tab, err := E17SelfHealing(Options{Quick: true})
	if err != nil {
		t.Fatalf("%v\n%s", err, tab.Format())
	}
	if num(t, row(t, tab, "kill-and-revive rounds")[1]) != 4 {
		t.Fatalf("rounds: %s", tab.Format())
	}
	if num(t, row(t, tab, "acked arrivals lost after promotion")[1]) != 0 {
		t.Fatalf("acked loss across self-healing failover: %s", tab.Format())
	}
	if num(t, row(t, tab, "duplicate writes at subscriber")[1]) != 0 {
		t.Fatalf("exactly-once application broken: %s", tab.Format())
	}
	if num(t, row(t, tab, "takeovers beyond 2 lease intervals")[1]) != 0 {
		t.Fatalf("takeover SLO missed: %s", tab.Format())
	}
}

// TestE17SelfHealing is the full acceptance run: ten seeded
// kill-and-revive rounds with automatic failover on. Every round must
// detect the kill within two lease intervals with no operator, lose
// nothing acknowledged, refuse (and count) every write from the
// revived stale owner, and re-seed the revived node into a caught-up
// warm standby while the survivor keeps serving.
func TestE17SelfHealing(t *testing.T) {
	res, err := RunSelfHealingRounds(SelfHealingConfig{
		Rounds:   10,
		PerRound: 6,
		Seed:     1711,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); v != 0 {
		t.Fatalf("%d invariant violations: %+v", v, res)
	}
	if res.Acked == 0 {
		t.Fatal("no deposits acknowledged — harness vacuous")
	}
	if res.MidOpCrashes < 3 {
		t.Fatalf("only %d mid-operation cuts — harness not biting: %+v", res.MidOpCrashes, res)
	}
	if len(res.TakeoverDetects) != res.Rounds {
		t.Fatalf("takeover time missing for some rounds: %d/%d", len(res.TakeoverDetects), res.Rounds)
	}
	if res.StaleAttempts == 0 || res.StaleRefused != res.StaleAttempts {
		t.Fatalf("stale-owner writes not fully fenced: %d/%d refused", res.StaleRefused, res.StaleAttempts)
	}
	if res.FencedCounted < res.Rounds {
		t.Fatalf("fence refusals not visible in survivor metrics: %d over %d rounds",
			res.FencedCounted, res.Rounds)
	}
	if res.Reseeds != res.Rounds {
		t.Fatalf("online re-seed incomplete: %d/%d rounds", res.Reseeds, res.Rounds)
	}
}
