package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// num parses the leading float of a cell ("23x", "1.59s", "0.87").
func num(t *testing.T, cell string) float64 {
	t.Helper()
	end := 0
	for end < len(cell) && (cell[end] == '.' || cell[end] == '-' || (cell[end] >= '0' && cell[end] <= '9')) {
		end++
	}
	v, err := strconv.ParseFloat(cell[:end], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func row(t *testing.T, tab Table, prefix string) []string {
	t.Helper()
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], prefix) {
			return r
		}
	}
	t.Fatalf("no row with prefix %q in %s", prefix, tab.Format())
	return nil
}

// Every experiment must run clean at quick scale and reproduce the
// paper's qualitative shape — these assertions ARE the reproduction
// criteria recorded in EXPERIMENTS.md.

func TestE1Shape(t *testing.T) {
	tab, err := E1PullScan(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatal("need at least two history sizes")
	}
	// Scan entries grow with history; notification wins at every size.
	prev := 0.0
	for _, r := range tab.Rows {
		entries := num(t, r[1])
		if entries <= prev {
			t.Fatalf("scan entries not growing: %s", tab.Format())
		}
		prev = entries
		if speedup := num(t, r[5]); speedup < 2 {
			t.Fatalf("notification speedup %v < 2: %s", speedup, tab.Format())
		}
	}
}

func TestE2Shape(t *testing.T) {
	tab, err := E2RsyncVsReceipts(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, r := range tab.Rows {
		if strings.HasPrefix(r[0], "cron") {
			// The cron-overlap demo row: assert ticks were skipped.
			if num(t, r[5]) == 0 {
				t.Fatalf("cron overlap skipped nothing: %s", tab.Format())
			}
			continue
		}
		scanned := num(t, r[1])
		if scanned <= prev {
			t.Fatalf("rsync scan not growing: %s", tab.Format())
		}
		prev = scanned
		if ratio := num(t, r[5]); ratio < 2 {
			t.Fatalf("receipts not ahead of rsync: %s", tab.Format())
		}
	}
}

func TestE3Shape(t *testing.T) {
	tab, err := E3Propagation(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	notify := row(t, tab, "notify")
	scan := row(t, tab, "scan")
	// Both modes must beat the paper's one-minute bound after the
	// 100x scale-back; notification is faster than scanning.
	if s := num(t, notify[6]); s >= 60 {
		t.Fatalf("notify scaled max %vs >= 60s", s)
	}
	if s := num(t, scan[6]); s >= 60 {
		t.Fatalf("scan scaled max %vs >= 60s", s)
	}
	if num(t, notify[5]) >= num(t, scan[5]) {
		t.Fatalf("notify not faster than scan: %s", tab.Format())
	}
}

func TestE4Shape(t *testing.T) {
	tab, err := E4Scheduler(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fifo := row(t, tab, "global-fifo")
	edf := row(t, tab, "global-edf")
	part := row(t, tab, "partitioned-edf")
	// Partitioning protects the fast subscriber.
	if num(t, part[1]) >= num(t, fifo[1]) {
		t.Fatalf("partitioned fast tardy not better than FIFO: %s", tab.Format())
	}
	// EDF improves alert tardiness over FIFO in the shared queue.
	if num(t, edf[2]) >= num(t, fifo[2]) {
		t.Fatalf("EDF alerts not better than FIFO: %s", tab.Format())
	}
	// The auto-migration extension matches hand-configured partitions.
	auto := row(t, tab, "auto-migrating")
	if num(t, auto[1]) >= num(t, fifo[1]) {
		t.Fatalf("auto-migration failed to protect fast subscriber: %s", tab.Format())
	}
	// Locality grouping improves on no grouping.
	off := row(t, tab, "ablation group-same-file=false")
	on := row(t, tab, "ablation group-same-file=true")
	if num(t, on[3]) > num(t, off[3]) {
		t.Fatalf("grouping made things worse: %s", tab.Format())
	}
}

func TestE5Shape(t *testing.T) {
	tab, err := E5Backfill(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	inorder := row(t, tab, "in-order")
	conc := row(t, tab, "concurrent")
	if inorder[1] != conc[1] {
		t.Fatalf("delivery counts differ: %s", tab.Format())
	}
	if num(t, conc[4]) >= num(t, inorder[4]) {
		t.Fatalf("concurrent backfill not better: %s", tab.Format())
	}
}

func TestE6Shape(t *testing.T) {
	tab, err := E6Batching(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	count := row(t, tab, "count=3")
	hybrid := row(t, tab, "hybrid")
	adaptive := row(t, tab, "adaptive")
	punct := row(t, tab, "punctuation")
	if num(t, count[2]) == 0 {
		t.Fatalf("count-only policy should break batches on fleet change: %s", tab.Format())
	}
	if num(t, hybrid[2]) != 0 {
		t.Fatalf("hybrid policy broke batches: %s", tab.Format())
	}
	if num(t, punct[2]) != 0 {
		t.Fatalf("punctuation broke batches: %s", tab.Format())
	}
	if num(t, adaptive[2]) != 0 {
		t.Fatalf("adaptive broke batches: %s", tab.Format())
	}
	// The learned policy closes faster than any static one.
	if num(t, adaptive[3]) >= num(t, hybrid[3]) {
		t.Fatalf("adaptive not faster than hybrid: %s", tab.Format())
	}
	// Punctuation closes fastest of all.
	if num(t, punct[3]) > num(t, hybrid[3]) {
		t.Fatalf("punctuation slower than hybrid: %s", tab.Format())
	}
}

func TestE7Shape(t *testing.T) {
	tab, err := E7Classifier(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// For the largest feed count, indexed must beat linear clearly.
	last := tab.Rows[len(tab.Rows)-2:]
	indexed, linear := 0.0, 0.0
	for _, r := range last {
		if r[1] == "true" {
			indexed = num(t, r[2])
		} else {
			linear = num(t, r[2])
		}
	}
	if indexed < 4*linear {
		t.Fatalf("prefix index speedup too small (indexed %v vs linear %v)", indexed, linear)
	}
}

func TestE8Shape(t *testing.T) {
	tab, err := E8Discovery(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	feeds := 0
	for _, r := range tab.Rows {
		if r[0] == "(junk)" {
			continue
		}
		if r[1] == "(not recovered)" {
			t.Fatalf("missed feed: %s", tab.Format())
		}
		feeds++
		if num(t, r[2]) < 0.99 || num(t, r[3]) < 0.99 {
			t.Fatalf("precision/recall below 0.99: %s", tab.Format())
		}
		if r[4] != "true" || r[5] != "true" {
			t.Fatalf("period/source inference failed: %s", tab.Format())
		}
	}
	if feeds < 6 {
		t.Fatalf("expected 6 ground-truth feeds, saw %d", feeds)
	}
}

func TestE9Shape(t *testing.T) {
	tab, err := E9FalseNegatives(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	bistroRow := row(t, tab, "bistro")
	ed := row(t, tab, "edit-distance")
	if num(t, bistroRow[1]) < 0.95 {
		t.Fatalf("bistro linking accuracy too low: %s", tab.Format())
	}
	// Warning-volume reduction: orders of magnitude fewer warnings.
	if num(t, bistroRow[2])*10 > num(t, ed[2]) {
		t.Fatalf("no warning-volume reduction: %s", tab.Format())
	}
	// Structural similarity separates links from noise better than
	// edit distance does.
	if num(t, bistroRow[5]) <= num(t, ed[5]) {
		t.Fatalf("structural margin not ahead of edit distance: %s", tab.Format())
	}
}

func TestE10Shape(t *testing.T) {
	tab, err := E10Recovery(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	dup := row(t, tab, "duplicates")
	if num(t, dup[1]) != 0 {
		t.Fatalf("duplicates after restart: %s", tab.Format())
	}
	group := row(t, tab, "wal commits/sec (group")
	singles := row(t, tab, "wal commits/sec (fsync")
	if num(t, group[1]) < num(t, singles[1]) {
		t.Fatalf("group commit slower than per-commit fsync: %s", tab.Format())
	}
}

func TestE11Shape(t *testing.T) {
	tab, err := E11Degradation(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	nofault := row(t, tab, "no-fault")
	fault := row(t, tab, "flap-fault")
	// Everything arrives eventually in both scenarios (3 subscribers x
	// same arrival count).
	if nofault[1] != fault[1] {
		t.Fatalf("delivered counts differ: %s", tab.Format())
	}
	// Graceful degradation: a flapping peer must not spill into the
	// healthy subscribers' tardiness (<= 2x no-fault plus 1s epsilon).
	if num(t, fault[2]) > 2*num(t, nofault[2])+1 {
		t.Fatalf("healthy mean tardiness degraded: %s", tab.Format())
	}
	// The fault run exercises the retry and probe paths.
	if num(t, fault[4]) == 0 || num(t, fault[5]) == 0 {
		t.Fatalf("no retries/probes under faults: %s", tab.Format())
	}
	if num(t, nofault[4]) != 0 || num(t, nofault[5]) != 0 {
		t.Fatalf("retries/probes without faults: %s", tab.Format())
	}
	// Exponential probing reaches the dead host with strictly less
	// traffic than the fixed interval over the same window.
	fixed := row(t, tab, "probe-fixed=15s")
	exp := row(t, tab, "probe-exp=15s..2m")
	if f, e := num(t, fixed[5]), num(t, exp[5]); e >= f || e == 0 {
		t.Fatalf("exp probes %v not below fixed %v: %s", e, f, tab.Format())
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		ID: "EX", Title: "demo", Claim: "c",
		Header: []string{"a", "long_column"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := tab.Format()
	for _, want := range []string{"EX: demo", "long_column", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestAllRunnersListed(t *testing.T) {
	rs := All()
	if len(rs) != 20 {
		t.Fatalf("runners = %d, want 20", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil {
			t.Fatalf("%s has no runner", r.ID)
		}
	}
}

func TestMsSecsFormat(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.50ms" {
		t.Fatalf("ms = %q", got)
	}
	if got := secs(90 * time.Second); got != "90.00s" {
		t.Fatalf("secs = %q", got)
	}
}
