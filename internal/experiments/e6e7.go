package experiments

import (
	"fmt"
	"sync"
	"time"

	"bistro/internal/batch"
	"bistro/internal/classifier"
	"bistro/internal/clock"
	"bistro/internal/config"
	"bistro/internal/pattern"
)

// E6Batching reproduces the §2.3/§4.1 trigger discussion: count-based
// batches break when the poller fleet changes size, time-based batches
// add latency, the hybrid count+timeout form works well in practice,
// and source punctuation is exact. The workload runs a 5-minute poller
// fleet that grows from 3 to 5 pollers and then shrinks to 2 — the
// paper's "number of pollers goes up or down during the lifetime of
// the feed" scenario.
func E6Batching(o Options) (Table, error) {
	phases := []struct {
		pollers   int
		intervals int
	}{{3, 4}, {5, 4}, {2, 4}}
	if o.Quick {
		for i := range phases {
			phases[i].intervals = 2
		}
	}
	period := 5 * time.Minute

	t := Table{
		ID:     "E6",
		Title:  "batch trigger policies on a changing poller fleet",
		Claim:  "fixed-count batching is not robust to fleet changes; time-based adds delay; count+time hybrid works well in practice; punctuation is exact (§2.3, §4.1)",
		Header: []string{"policy", "batches", "broken_batches", "mean_close_delay", "max_close_delay"},
	}

	type policy struct {
		name        string
		make        func(clk clock.Clock, emit func(batch.Batch)) e6Detector
		punctuation bool
	}
	fixed := func(spec batch.Spec) func(clock.Clock, func(batch.Batch)) e6Detector {
		return func(clk clock.Clock, emit func(batch.Batch)) e6Detector {
			return batch.NewDetector(spec, clk, emit)
		}
	}
	policies := []policy{
		{"count=3", fixed(batch.Spec{Count: 3}), false},
		{"time=3m", fixed(batch.Spec{Timeout: 3 * time.Minute}), false},
		{"hybrid count=3,time=3m", fixed(batch.Spec{Count: 3, Timeout: 3 * time.Minute}), false},
		{"adaptive (learned)", func(clk clock.Clock, emit func(batch.Batch)) e6Detector {
			return batch.NewAdaptiveDetector(batch.AdaptiveSpec{
				MinGap: 30 * time.Second, MaxWait: 3 * time.Minute,
			}, clk, emit)
		}, false},
		{"punctuation", fixed(batch.Spec{Count: 1 << 30, Timeout: 24 * time.Hour}), true},
	}

	for _, p := range policies {
		row, err := runE6(p.name, p.make, p.punctuation, phases, period)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"count=3 matches the initial fleet only: batches stall and mix intervals once the fleet grows to 5 or shrinks to 2",
		"hybrid closes immediately when the expected count arrives and bounds the wait when it never does — no broken batches, low delay",
		"adaptive (the paper's §4.1 future-work extension) learns the fleet size and arrival gaps online: no configuration, no broken batches",
		"broken_batches counts batches mixing files from different measurement intervals",
		"close_delay measures batch close relative to the interval's last file arrival; punctuation closes exactly, hybrid bounds the worst case")
	return t, nil
}

// e6Detector is the behaviour shared by the fixed and adaptive
// detectors.
type e6Detector interface {
	Add(batch.File)
	Punctuate()
	Flush()
}

func runE6(name string, mk func(clock.Clock, func(batch.Batch)) e6Detector, punctuate bool, phases []struct{ pollers, intervals int }, period time.Duration) ([]string, error) {
	start := time.Date(2010, 9, 25, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSimulated(start)
	var mu sync.Mutex
	var batches []batch.Batch
	det := mk(clk, func(b batch.Batch) {
		mu.Lock()
		batches = append(batches, b)
		mu.Unlock()
	})

	interval := start
	for _, ph := range phases {
		for iv := 0; iv < ph.intervals; iv++ {
			// Files for this interval arrive shortly after it closes.
			arriveBase := interval.Add(period)
			clk.AdvanceTo(arriveBase)
			for src := 1; src <= ph.pollers; src++ {
				at := arriveBase.Add(time.Duration(src) * time.Second)
				clk.AdvanceTo(at)
				det.Add(batch.File{
					Name:     fmt.Sprintf("MEM_POLLER%d_%s.csv", src, interval.Format("200601021504")),
					DataTime: interval,
					Arrived:  at,
				})
			}
			if punctuate {
				det.Punctuate()
			}
			// Let any timeout timers armed in this interval fire as the
			// clock advances toward the next one.
			for step := 0; step < 10; step++ {
				clk.Advance(period / 10)
				time.Sleep(time.Millisecond)
			}
			interval = interval.Add(period)
		}
	}
	det.Flush()
	time.Sleep(5 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	broken := 0
	var totalDelay, maxDelay time.Duration
	for _, b := range batches {
		seen := map[time.Time]bool{}
		var lastArrival time.Time
		for _, f := range b.Files {
			seen[f.DataTime] = true
			if f.Arrived.After(lastArrival) {
				lastArrival = f.Arrived
			}
		}
		if len(seen) > 1 {
			broken++
		}
		d := b.Closed.Sub(lastArrival)
		if d < 0 {
			d = 0
		}
		totalDelay += d
		if d > maxDelay {
			maxDelay = d
		}
	}
	mean := time.Duration(0)
	if len(batches) > 0 {
		mean = totalDelay / time.Duration(len(batches))
	}
	return []string{
		name,
		fmt.Sprintf("%d", len(batches)),
		fmt.Sprintf("%d", broken),
		secs(mean),
		secs(maxDelay),
	}, nil
}

// E7Classifier measures the classifier against the paper's deployment
// scale (100+ feeds, real-time classification of every incoming file,
// §3.2), with the literal-prefix index ablation from DESIGN.md.
func E7Classifier(o Options) (Table, error) {
	feedCounts := []int{100, 500, 1000}
	names := 200000
	if o.Quick {
		feedCounts = []int{100, 300}
		names = 20000
	}

	t := Table{
		ID:     "E7",
		Title:  "classifier throughput and prefix-index ablation",
		Claim:  "real-time classification of every incoming file against 100+ feed definitions (§3.2); prefix indexing keeps matching cost flat in the feed count",
		Header: []string{"feeds", "index", "files/sec", "time/file"},
	}

	for _, nf := range feedCounts {
		feeds := make([]*config.Feed, nf)
		for i := range feeds {
			feeds[i] = &config.Feed{
				Name: fmt.Sprintf("F%04d", i),
				Path: fmt.Sprintf("F%04d", i),
				Patterns: []*pattern.Pattern{
					pattern.MustCompile(fmt.Sprintf("FEED%04d_poller%%i_%%Y%%m%%d%%H.csv.gz", i)),
				},
			}
		}
		// A realistic mix: most files match some feed, a tail match none.
		testNames := make([]string, names)
		for i := range testNames {
			if i%10 == 9 {
				testNames[i] = fmt.Sprintf("unknown-junk-%d.tmp", i)
			} else {
				testNames[i] = fmt.Sprintf("FEED%04d_poller%d_2010092504.csv.gz", i%nf, i%7+1)
			}
		}
		for _, indexed := range []bool{true, false} {
			c := classifier.New(feeds, classifier.Options{DisablePrefixIndex: !indexed})
			startT := time.Now()
			matched := 0
			for _, n := range testNames {
				if len(c.Classify(n)) > 0 {
					matched++
				}
			}
			elapsed := time.Since(startT)
			if matched != names-names/10 {
				return t, fmt.Errorf("e7: matched %d of %d", matched, names)
			}
			rate := float64(names) / elapsed.Seconds()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", nf),
				fmt.Sprintf("%v", indexed),
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.2fus", float64(elapsed.Microseconds())/float64(names)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"with the prefix index, per-file cost is near-constant in the number of feeds; linear matching degrades proportionally",
		"at 300GB/day and ~2KB files the deployment classifies ~1.7k files/sec — orders of magnitude below either configuration's capacity")
	return t, nil
}
